// Async observer pipeline: diagnostics delivery and checkpoint I/O off the
// hot step loop.
//
// The paper charges 733 s of the 1.92 h H1024 run to I/O and diagnostics
// that sit on the step path. With WithAsyncObserver the driver's hot loop
// only ever *enqueues*: each completed step posts a value snapshot of the
// solver's Diagnostics (and, at the checkpoint cadence, a captured state
// writer) onto a bounded queue, and a single pipeline goroutine invokes the
// observer and performs the snapshot I/O while the solver computes the next
// step.
//
// Back-pressure is selectable. With Block (the default) a full queue stalls
// the step loop until the pipeline catches up — nothing is ever lost, and
// the run degrades to synchronous speed under a persistently slow consumer.
// With DropOldest a full queue evicts its oldest *observation* to make room,
// so the step loop never waits on diagnostics; the number of evicted
// observations is reported in Report.DroppedObservations. Checkpoint events
// are never dropped under either policy: a checkpoint enqueue may evict
// observations (DropOldest) or wait for space, but the snapshot itself is
// always written.
//
// On every exit path — target reached, budget exhausted, step error,
// context cancellation — Run closes the pipeline and waits for it to drain
// completely, so every enqueued observation is delivered and every enqueued
// checkpoint is on disk before Run returns.
package runner

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// AsyncObserver is the off-thread diagnostics callback of WithAsyncObserver.
// Unlike the synchronous Observer it receives a Diagnostics value snapshot
// rather than the live Solver: the solver is already mutating under the next
// step when the callback runs, so the pipeline hands it only data captured
// on the step path. Returning a non-nil error aborts the run (the hot loop
// notices before its next step).
type AsyncObserver func(step int, d Diagnostics) error

// Backpressure selects what a full async queue does to the step loop.
type Backpressure int

const (
	// Block stalls the enqueue (and hence the step loop) until the pipeline
	// frees a slot. Lossless; a persistently slow observer degrades the run
	// to synchronous speed but never loses an observation.
	Block Backpressure = iota
	// DropOldest evicts the oldest queued observation to make room, so the
	// step loop never waits on diagnostics. Checkpoints are never evicted.
	DropOldest
)

func (b Backpressure) String() string {
	if b == DropOldest {
		return "drop-oldest"
	}
	return "block"
}

// DefaultAsyncBuffer is the queue capacity used when WithAsyncBuffer is not
// given.
const DefaultAsyncBuffer = 64

type asyncOptions struct {
	buffer     int
	policy     Backpressure
	dropNotify func(dropped int64)
}

// AsyncOption tunes the async observer pipeline.
type AsyncOption func(*asyncOptions)

// WithAsyncBuffer sets the pipeline queue capacity (default
// DefaultAsyncBuffer). Must be ≥ 1.
func WithAsyncBuffer(n int) AsyncOption {
	return func(o *asyncOptions) { o.buffer = n }
}

// WithBackpressure selects the full-queue policy (default Block).
func WithBackpressure(p Backpressure) AsyncOption {
	return func(o *asyncOptions) { o.policy = p }
}

// WithDropNotify reports DropOldest evictions while the run is still live:
// fn receives the number of observations evicted since its previous call.
// Report.DroppedObservations only totals the loss after the run — a
// monitoring plane streaming diagnostics to remote watchers needs to know
// *during* the run that its view turned lossy, so it can mark the gap
// instead of presenting a seamless-but-wrong sequence. fn runs on the
// pipeline goroutine (never the hot step loop), before the delivery that
// follows the eviction, and is skipped entirely under Block (which never
// drops).
func WithDropNotify(fn func(dropped int64)) AsyncOption {
	return func(o *asyncOptions) { o.dropNotify = fn }
}

// WithAsyncObserver starts the async pipeline for the run and delivers a
// Diagnostics snapshot to obs after every completed step, off the step
// path. obs may be nil: the pipeline still starts, which routes checkpoint
// I/O through it (see CheckpointCapturer) without any observer traffic.
func WithAsyncObserver(obs AsyncObserver, aopts ...AsyncOption) Option {
	return func(o *options) {
		o.asyncObs = obs
		o.async = true
		o.asyncOpts = asyncOptions{buffer: DefaultAsyncBuffer, policy: Block}
		for _, ao := range aopts {
			ao(&o.asyncOpts)
		}
	}
}

// CheckpointCapturer is implemented by Checkpointer solvers that can capture
// a self-contained value snapshot of their state, cheaply, on the step path.
// CaptureCheckpoint returns a write function closed over the captured state;
// the pipeline goroutine calls it while the solver keeps stepping, so the
// returned closure must not share mutable state with the live solver (deep
// copy — an O(state) memcpy is the price of overlapping the much more
// expensive encode+checksum+write with compute).
//
// When the async pipeline is active and the solver implements
// CheckpointCapturer, WithCheckpoint snapshots ride the pipeline; otherwise
// they are written synchronously on the step path as usual.
type CheckpointCapturer interface {
	CaptureCheckpoint() (write func(w io.Writer) (int64, error), err error)
}

// event is one unit of pipeline work: an observation (ckpt == nil) or a
// captured checkpoint write.
type event struct {
	step  int
	diag  Diagnostics
	clock float64
	ckpt  func(w io.Writer) (int64, error)
}

// pipeline is the bounded queue plus its single consumer goroutine. A
// mutex/condvar ring rather than a channel, because DropOldest must evict
// from the head while checkpoint events stay pinned — a channel cannot
// re-queue a received element ahead of the rest.
type pipeline struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []event
	max    int
	policy Backpressure
	closed bool
	err    error // first observer/checkpoint error; set once

	obs        AsyncObserver
	ckptDir    string
	ckptKeep   int
	ckptNotify func(path string, clock float64)
	ckptTimer  func(clock float64, d time.Duration)
	dropNotify func(dropped int64)

	// Consumer-side results, merged into the Report after drain.
	written  []string
	bytes    int64
	dropped  int64
	notified int64 // drops already reported through dropNotify

	done chan struct{}
}

func newPipeline(o *options) *pipeline {
	p := &pipeline{
		max:        o.asyncOpts.buffer,
		policy:     o.asyncOpts.policy,
		obs:        o.asyncObs,
		ckptDir:    o.ckptDir,
		ckptKeep:   o.ckptKeep,
		ckptNotify: o.ckptNotify,
		ckptTimer:  o.ckptTimer,
		dropNotify: o.asyncOpts.dropNotify,
		done:       make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	go p.consume()
	return p
}

// failed returns the first error recorded by the consumer, if any. The hot
// loop polls it each step so an async observer error aborts the run within
// one step, mirroring the synchronous contract.
func (p *pipeline) failed() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// enqueue posts ev, applying the back-pressure policy. It returns the first
// pipeline error once one is recorded (the event is discarded then — the
// run is aborting anyway).
func (p *pipeline) enqueue(ev event) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.err != nil {
			return p.err
		}
		if len(p.queue) < p.max {
			break
		}
		if p.policy == DropOldest {
			// Evict the oldest observation; checkpoints are pinned. Only if
			// the queue is all checkpoints does the enqueue wait.
			if i := p.oldestObservation(); i >= 0 {
				p.queue = append(p.queue[:i], p.queue[i+1:]...)
				p.dropped++
				break
			}
		}
		p.cond.Wait()
	}
	p.queue = append(p.queue, ev)
	p.cond.Broadcast()
	return nil
}

// oldestObservation returns the index of the first non-checkpoint event, or
// -1. Callers hold mu.
func (p *pipeline) oldestObservation() int {
	for i := range p.queue {
		if p.queue[i].ckpt == nil {
			return i
		}
	}
	return -1
}

// close marks the queue complete and waits for the consumer to drain it.
func (p *pipeline) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	<-p.done
}

// consume is the pipeline goroutine: pop, deliver, repeat until closed and
// drained. After the first error it keeps popping (so a blocked producer
// wakes) but stops delivering.
func (p *pipeline) consume() {
	defer close(p.done)
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		ev := p.queue[0]
		p.queue = p.queue[1:]
		failed := p.err != nil
		newDrops := p.dropped - p.notified
		p.notified = p.dropped
		p.cond.Broadcast()
		p.mu.Unlock()

		if failed {
			continue
		}
		// Surface evictions before the event that follows them, so a live
		// consumer can mark the gap at the position it actually occurred.
		if newDrops > 0 && p.dropNotify != nil {
			p.dropNotify(newDrops)
		}
		var err error
		if ev.ckpt != nil {
			err = p.writeCheckpoint(ev)
		} else if p.obs != nil {
			err = p.obs(ev.step, ev.diag)
		}
		if err != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = err
			}
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// writeCheckpoint performs one captured snapshot write plus retention
// pruning, recording the file and byte count for the post-drain Report
// merge.
func (p *pipeline) writeCheckpoint(ev event) error {
	// Snapshot I/O failures are marked retryable (see the sync path in
	// Run): a scheduler retry re-runs the job from its newest good file.
	writeStart := time.Now()
	path, n, err := writeCheckpointFile(p.ckptDir, ev.clock, ev.ckpt)
	if err != nil {
		return MarkRetryable(fmt.Errorf("runner: async checkpoint after step %d: %w", ev.step, err))
	}
	if p.ckptTimer != nil {
		p.ckptTimer(ev.clock, time.Since(writeStart))
	}
	p.written = append(p.written, path)
	p.bytes += n
	if p.ckptNotify != nil {
		p.ckptNotify(path, ev.clock)
	}
	if p.ckptKeep > 0 {
		p.written, err = pruneCheckpoints(p.ckptDir, p.ckptKeep, p.written)
		if err != nil {
			return MarkRetryable(fmt.Errorf("runner: async checkpoint retention: %w", err))
		}
	}
	return nil
}
