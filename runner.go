// The unified Runner API: one driver loop — Run — shared by every solver
// the facade exposes. The hybrid Vlasov/N-body simulation, its pure N-body
// and ν-particle control modes, and the 1D1V plasma solver all implement
// Solver, so a production service schedules any workload through the same
// call with uniform cancellation, wall-clock budgets, per-step observers
// and checkpoint cadence. See internal/runner for the driver itself.
package vlasov6d

import (
	"context"
	"time"

	"vlasov6d/internal/runner"
)

// Solver is the single run-loop contract: step by dt, suggest a stable dt,
// expose a run coordinate ("clock") and a diagnostics summary. Implemented
// by *Simulation (clock = scale factor) and *PlasmaSolver (clock = plasma
// time).
type Solver = runner.Solver

// RunDiagnostics is the uniform per-step health summary a Solver reports.
type RunDiagnostics = runner.Diagnostics

// RunReport summarises a finished (or aborted) run; Run always returns one,
// even alongside an error, so partial progress is visible.
type RunReport = runner.Report

// RunOption configures a Run call.
type RunOption = runner.Option

// StopReason records why a run stopped without error.
type StopReason = runner.StopReason

// The stop reasons a RunReport can carry.
const (
	ReasonNone      = runner.ReasonNone
	ReasonUntil     = runner.ReasonUntil
	ReasonMaxSteps  = runner.ReasonMaxSteps
	ReasonWallClock = runner.ReasonWallClock
)

// Run drives solver until its clock reaches `until` (a target scale factor
// for cosmological runs, a target time for plasma runs), a step or
// wall-clock budget runs out, or ctx is cancelled. Cancellation returns a
// partial-progress error wrapping ctx.Err().
func Run(ctx context.Context, solver Solver, until float64, opts ...RunOption) (*RunReport, error) {
	return runner.Run(ctx, solver, until, opts...)
}

// WithMaxSteps caps the run at n steps (0 = unlimited).
func WithMaxSteps(n int) RunOption { return runner.WithMaxSteps(n) }

// WithWallClock stops the run once the elapsed wall-clock time reaches
// budget; at least one step is always taken.
func WithWallClock(budget time.Duration) RunOption { return runner.WithWallClock(budget) }

// WithObserver invokes obs after every completed step; a non-nil error
// aborts the run with that error.
func WithObserver(obs func(step int, s Solver) error) RunOption {
	return runner.WithObserver(obs)
}

// WithCheckpoint writes a snapshot into dir every everyN completed steps
// through the snapshot format of WriteSnapshot/ReadSnapshot; resume with
// RestoreSimulation. The solver must support checkpointing (*Simulation
// does, except in the ν-particle baseline mode).
func WithCheckpoint(dir string, everyN int) RunOption { return runner.WithCheckpoint(dir, everyN) }

// WithFixedDT disables adaptive stepping and uses dt for every step (still
// clamped at the target).
func WithFixedDT(dt float64) RunOption { return runner.WithFixedDT(dt) }

// Compile-time checks: every advertised workload drives through Run.
var (
	_ Solver              = (*Simulation)(nil)
	_ Solver              = (*PlasmaSolver)(nil)
	_ runner.DTClamper    = (*Simulation)(nil)
	_ runner.Checkpointer = (*Simulation)(nil)
)
