// Package serve is the HTTP control plane over the streaming scheduler —
// simulation as a service. A Server owns one long-lived sched.Stream (with
// an optional CoreBudget and per-job checkpointing) and a catalog of
// scenarios; remote clients submit serialisable JobSpecs, watch status and
// live diagnostics, cancel jobs, and download checkpoint artifacts:
//
//	POST   /v1/jobs                      submit a catalog.JobSpec, get an id
//	GET    /v1/jobs                      list every submission's status
//	GET    /v1/jobs/{id}                 one submission's status
//	DELETE /v1/jobs/{id}                 cancel (queued or running)
//	GET    /v1/jobs?archived=1           list the tenant's archived (indexed) jobs
//	GET    /v1/jobs/{id}/diagnostics     live SSE stream of per-step diagnostics
//	GET    /v1/jobs/{id}/trace           the job's lifecycle span timeline (live or archived)
//	GET    /v1/jobs/{id}/checkpoints     list the job's snapshot artifacts
//	GET    /v1/jobs/{id}/checkpoints/{file}  download one artifact
//	GET    /v1/scenarios                 the catalog's contract surface
//	POST   /v1/admin/reload              hot key-file reload (admin tenants)
//	GET    /v1/admin/pprof/              net/http/pprof profiles (admin tenants)
//	GET    /healthz                      liveness
//	GET    /metrics                      counters, gauges and latency histograms
//
// Diagnostics ride the runner's async observer pipeline (value snapshots
// off the hot step loop, DropOldest back-pressure), so a slow or absent
// SSE client never stalls a solver. Delivery is replayable: every event a
// job emits is stamped with a monotonic sequence number and retained in a
// bounded per-job ring (Config.RingSize), and the SSE stream carries the
// sequence as its `id:` line. A client that disconnects mid-run resumes
// with a `Last-Event-ID` header (or ?last_event_id=): the handler replays
// the missed window from the ring before going live, delivering every
// retained event exactly once. Loss is never silent — when the requested
// window has been evicted from the ring, or the observer pipeline dropped
// observations under back-pressure, the stream carries an explicit "gap"
// event with the missed count. Running jobs also report an eta_seconds
// projection (internal/machine's online TTS estimator fed by the same
// diagnostics) in their status documents.
//
// Shutdown is graceful: Drain stops
// intake (submissions get 503 with Retry-After), lets queued and running
// jobs finish — checkpointing as they go — until the deadline, then
// cancels the remainder through the scheduler's own cancellation path and
// flushes every result. The paper's campaigns are hand-launched one-shot
// jobs; this is the always-on shape (SK-Gd's real-time monitor is the
// exemplar) the ROADMAP's service north star asks for.
//
// Durability (Config.StoreDir) journals every submission's lifecycle into
// an append-only store: the canonical spec bytes at submission, each
// attempt start, each checkpoint write, and the terminal outcome. On the
// next start the server replays the journal and re-queues every unfinished
// job under its original id; because a recovered job's name — and so its
// checkpoint directory — derives from the same canonical spec, the
// scheduler's restore path resumes it from its newest snapshot instead of
// re-running it. Recovery resolves journaled specs concurrently (bounded
// by the core budget) so a large journal does not stall startup, then
// submits in journal order so priorities and FIFO ties replay
// deterministically. A shutdown cancellation is deliberately NOT journaled
// as terminal — replay IS the recovery path — while a client's DELETE is
// journaled at cancel time, so a cancelled job stays cancelled across a
// crash. Terminal jobs additionally land in a persistent artifact index
// (store.Index): after the bounded in-memory history evicts a finished
// job, GET /v1/jobs/{id} and its checkpoints listing keep answering from
// the index, so a checkpoint written yesterday stays discoverable today.
//
// Tenancy (Config.Tenants) authenticates every /v1 request against a
// bearer-key registry: unknown or missing keys get 401, another tenant's
// jobs are invisible in listings and 403 on direct access, and POST
// /v1/jobs is admission-controlled per tenant — a token-bucket rate limit
// and a queue quota, both answered with 429 plus Retry-After. The
// tenant's core quota rides into the scheduler as a sched.Claim, where the
// CoreBudget divides cores fairly across tenants before priority orders
// jobs within one. /healthz and /metrics stay unauthenticated: they are
// the probe surface infrastructure scrapes without credentials.
//
// Live operation (see admin.go): the registry is hot-reloadable behind an
// atomic pointer (SIGHUP or POST /v1/admin/reload), every admission
// decision is audited to the store's append-only audit.v6da and counted
// in vlasovd_admission_total{tenant,outcome}, the journal compacts itself
// online past Config.JournalCompact* thresholds, and per-tenant
// max_storage_bytes quotas are enforced on the checkpoint-notify path.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vlasov6d/internal/catalog"
	"vlasov6d/internal/machine"
	"vlasov6d/internal/obs"
	"vlasov6d/internal/runner"
	"vlasov6d/internal/sched"
	"vlasov6d/internal/snapio"
	"vlasov6d/internal/store"
	"vlasov6d/internal/tenant"
)

// Config assembles a Server.
type Config struct {
	// Catalog is the scenario registry submissions resolve against
	// (required).
	Catalog *catalog.Catalog
	// Workers bounds the scheduler pool (0 = GOMAXPROCS).
	Workers int
	// Budget is the core budget divided among live jobs (0 = no budget:
	// every job runs unpinned).
	Budget int
	// CheckpointDir is the per-job checkpoint root (empty = no
	// checkpointing; the checkpoints endpoints then return 404).
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in steps (0 = the
	// scheduler default).
	CheckpointEvery int
	// Retries is the default retry policy for transient failures; a spec
	// may override it per job.
	Retries int
	// DiagBuffer is the per-job async diagnostics queue capacity
	// (0 = 256). The queue is lossy (DropOldest): diagnostics are a
	// monitoring surface, not the science record. Drops are not silent —
	// they surface as "gap" events on the job's stream.
	DiagBuffer int
	// RingSize bounds each job's diagnostics replay ring (0 = 512): how
	// far back a disconnected SSE client can resume with Last-Event-ID
	// before hitting an explicit gap. Terminal jobs keep only the newest
	// ringTerminalTail events, so retained history stays cheap.
	RingSize int
	// History bounds how many terminal job records the server (and its
	// stream) retain for the status endpoints (0 = sched.DefaultJobHistory).
	// An always-on daemon accepts work indefinitely; evicting the oldest
	// finished jobs keeps memory and GET /v1/jobs bounded.
	History int
	// StoreDir enables the durable job journal (empty = in-memory only).
	// On start the server replays it and re-queues unfinished jobs; see
	// the package comment.
	StoreDir string
	// Tenants enables bearer-key authentication and per-tenant admission
	// control on the /v1 surface (nil = open access, no tenancy).
	Tenants *tenant.Registry
	// KeysPath is the key file Tenants was loaded from; setting it enables
	// hot reload (SIGHUP in cmd/vlasovd, POST /v1/admin/reload here). A
	// reload re-reads this path and swaps the registry atomically; empty
	// means the registry is fixed for the server's lifetime.
	KeysPath string
	// JournalCompactBytes / JournalCompactRecords arm online journal
	// compaction: when the journal file crosses either threshold (and has
	// terminal records to drop), it is rewritten in place — under the
	// store's own lock, safe against concurrent appends. 0 picks the
	// defaults (1 MiB / 4096 records); negative disables that threshold.
	JournalCompactBytes   int64
	JournalCompactRecords int
	// TraceSpans bounds each job's lifecycle span buffer
	// (0 = obs.DefaultTraceSpans). When full the oldest span is evicted and
	// the trace document reports the drop count — same never-silent
	// contract as the SSE ring.
	TraceSpans int
}

// Default online journal-compaction thresholds: crossing either triggers
// a live rewrite. Both are far above a healthy journal's steady state —
// boot compaction already drops terminal jobs — so the online pass only
// fires on long uptimes, which is exactly when it is needed.
const (
	DefaultJournalCompactBytes   = 1 << 20
	DefaultJournalCompactRecords = 4096
)

// jobEntry is the server-side record of one submission: the spec it came
// from, its replayable event ring, the SSE subscribers watching it, and
// its terminal result. The id is the external (and journal) id — stable
// across restarts — while sid is the stream's session-local submission id.
type jobEntry struct {
	id        int
	sid       int
	spec      catalog.JobSpec
	tenant    string  // owning tenant name ("" in open mode)
	until     float64 // resolved clock target (catalog default applied)
	submitted time.Time
	queuedNow bool // currently counted in the tenant queue-depth gauge
	cancelled bool // client DELETE observed (terminal already journaled)
	// ring retains the job's events for Last-Event-ID replay; subscribers
	// are wake-up channels, each SSE handler reading the ring through its
	// own cursor (a slow client falls behind on the ring, it never makes
	// the publisher drop).
	ring *eventRing
	subs map[chan struct{}]struct{}
	// eta projects the remaining wall time from observed clock progress;
	// runStart anchors its wall axis at the first Running transition.
	eta      *machine.ETAEstimator
	runStart time.Time
	result   *sched.Result // non-nil once terminal
	// ckptDir is the job's checkpoint directory ("" when the server does
	// not checkpoint); ckptBytes is its last measured on-disk size — the
	// tenant storage-quota accounting. quotaErr, once set, marks the job
	// failed-by-quota: its status reports failed even though the scheduler
	// delivers the underlying stop as a cancellation.
	ckptDir   string
	ckptBytes int64
	quotaErr  string
	// trace is the job's lifecycle span timeline; runSpan is the handle of
	// the currently open "run" span (0 = none). At terminal time the trace
	// snapshots into the artifact index, so it outlives history eviction.
	trace   *obs.Trace
	runSpan int64
	// seqReserved is the highest event sequence number journaled as
	// reserved for this job's ring (0 without a store). Reservation runs in
	// blocks so the journal sees one append per eventSeqReserveBlock
	// events, not one per event.
	seqReserved int64
}

// eventSeqReserveBlock is the reservation granularity for durable event
// numbering: each journal append claims this many sequence numbers ahead,
// so a restart resumes past the reservation (a bounded, reported gap)
// instead of resetting every resuming client's cursor to 1.
const eventSeqReserveBlock = 4096

// ringTerminalTail is how many ring events a terminal job keeps: enough
// for a briefly-disconnected client to catch the ending (the last few
// diags plus the done document), small enough that thousands of retained
// terminal jobs stay cheap.
const ringTerminalTail = 64

// Server is the control plane. Construct with New, mount Handler, and
// Drain (or Close) on shutdown.
type Server struct {
	cfg    Config
	stream *sched.Stream
	store  *store.Store // nil without StoreDir
	index  *store.Index // nil without StoreDir — the artifact index
	audit  *store.Audit // nil without StoreDir — the admission audit log
	cancel context.CancelFunc
	start  time.Time

	// tenants is the live registry, swapped whole by ReloadKeys — every
	// request-path lookup goes through registry(), never cfg.Tenants
	// (which only records what the server started with). A nil load means
	// the daemon runs open.
	tenants atomic.Pointer[tenant.Registry]

	mu        sync.Mutex
	jobs      map[int]*jobEntry // keyed by external id
	byStream  map[int]int       // live stream id → external id
	queued    map[string]int    // per-tenant queued (not yet running) jobs
	storage   map[string]int64  // per-tenant tracked checkpoint bytes on disk
	admission map[admKey]int64  // admission decisions by (tenant, outcome)
	nextID    int               // external id counter when no store persists one
	terminal  []int             // terminal entry ids oldest-first — the eviction queue
	draining  bool

	// counters, guarded by mu: the /metrics surface.
	submitted, completed, failed, cancelled, retried, recovered int64
	reloads, reloadsFailed                                      int64
	// sseDropped counts diagnostics events lost before SSE delivery:
	// observer-queue evictions plus ring evictions a connected client was
	// told about via "gap". sseReplayed counts events re-served from rings
	// on Last-Event-ID resumes. stepsObserved counts every diagnostics
	// observation across all jobs; thrBase/thrStart window it into the
	// step-throughput gauge (rate since the previous /metrics scrape).
	sseDropped, sseReplayed, stepsObserved int64
	thrBase                                int64
	thrStart                               time.Time

	drained   chan struct{} // closed when the stream's results are flushed
	storeOnce sync.Once     // Close/Drain both finalise the journal

	// Latency histograms, fed from the scheduler's phase notifications and
	// the runner's timer hooks. Entirely atomic — Observe never takes s.mu,
	// so the runner's hot step loop and the scheduler's workers record
	// without contending with handlers.
	histQueueWait  *obs.Histogram
	histStep       *obs.Histogram
	histCheckpoint *obs.Histogram
	histDispatch   *obs.Histogram
}

// New starts the control plane: the stream's worker pool is live when New
// returns, and — with a StoreDir — every journaled unfinished job is
// already re-queued. ctx bounds the whole service — cancelling it is the
// fast shutdown (running jobs stop mid-run); prefer Drain for the graceful
// one.
func New(ctx context.Context, cfg Config) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("serve: nil catalog")
	}
	if cfg.DiagBuffer == 0 {
		cfg.DiagBuffer = 256
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = 512
	}
	if cfg.History == 0 {
		cfg.History = sched.DefaultJobHistory
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Server{
		cfg:       cfg,
		cancel:    cancel,
		start:     time.Now(),
		jobs:      make(map[int]*jobEntry),
		byStream:  make(map[int]int),
		queued:    make(map[string]int),
		storage:   make(map[string]int64),
		admission: make(map[admKey]int64),
		drained:   make(chan struct{}),
	}
	s.thrStart = s.start
	s.histQueueWait = obs.NewHistogram("vlasovd_queue_wait_seconds",
		"Time a job spent queued before a worker picked it up.", obs.DurationBuckets())
	s.histStep = obs.NewHistogram("vlasovd_step_duration_seconds",
		"Wall time of one solver step.", obs.DurationBuckets())
	s.histCheckpoint = obs.NewHistogram("vlasovd_checkpoint_write_seconds",
		"Wall time writing one checkpoint file.", obs.DurationBuckets())
	s.histDispatch = obs.NewHistogram("vlasovd_dispatch_latency_seconds",
		"Worker pickup to solver start: core-lease wait plus solver construction or restore.", obs.DurationBuckets())
	if cfg.Tenants != nil {
		s.tenants.Store(cfg.Tenants)
	}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			cancel()
			return nil, err
		}
		s.store = st
		compactBytes, compactRecords := cfg.JournalCompactBytes, cfg.JournalCompactRecords
		if compactBytes == 0 {
			compactBytes = DefaultJournalCompactBytes
		}
		if compactRecords == 0 {
			compactRecords = DefaultJournalCompactRecords
		}
		if compactBytes < 0 {
			compactBytes = 0
		}
		if compactRecords < 0 {
			compactRecords = 0
		}
		st.SetAutoCompact(compactBytes, compactRecords)
		ix, err := store.OpenIndex(cfg.StoreDir)
		if err != nil {
			cancel()
			st.Close()
			return nil, err
		}
		s.index = ix
		au, err := store.OpenAudit(cfg.StoreDir)
		if err != nil {
			cancel()
			ix.Close()
			st.Close()
			return nil, err
		}
		s.audit = au
	}
	opts := []sched.Option{
		sched.WithNotify(s.onUpdate),
		sched.WithPhaseNotify(s.onPhase),
		sched.WithRetries(cfg.Retries),
		sched.WithJobHistory(cfg.History),
	}
	if cfg.Workers > 0 {
		opts = append(opts, sched.WithWorkers(cfg.Workers))
	}
	if cfg.Budget > 0 {
		opts = append(opts, sched.WithCoreBudget(cfg.Budget))
	}
	if cfg.CheckpointDir != "" {
		opts = append(opts, sched.WithJobCheckpoints(cfg.CheckpointDir))
		if cfg.CheckpointEvery > 0 {
			opts = append(opts, sched.WithJobCheckpointEvery(cfg.CheckpointEvery))
		}
	}
	stream, err := sched.NewStream(sctx, opts...)
	if err != nil {
		cancel()
		s.closeStore()
		return nil, err
	}
	s.stream = stream
	go s.consumeResults()
	if s.store != nil {
		s.recoverJobs()
	}
	return s, nil
}

// closeStore finalises the journal exactly once (Close and Drain may both
// run, in either order).
func (s *Server) closeStore() {
	s.storeOnce.Do(func() {
		if s.store != nil {
			s.store.Close()
		}
		if s.audit != nil {
			// In-memory reads (index.Get) stay valid after Close; only
			// appends are fenced, and a post-drain append is a bug anyway.
			s.audit.Close()
		}
	})
}

// recoverJobs re-queues every journaled unfinished job into the stream
// under its original external id. This is resumption, not re-execution:
// the recovered job's name (and so its checkpoint directory) derives from
// the same canonical spec, so the scheduler's restore path picks up the
// newest snapshot the previous life wrote. A job whose spec no longer
// resolves — catalog changed across the restart — is journaled failed
// rather than wedging recovery.
//
// Spec resolution (unmarshal + catalog lookup, which builds the solver
// geometry) dominates recovery time on a large journal, and each job's
// resolution is independent — so that stage fans out across the core
// budget. Submission stays sequential in journal order: priorities and
// FIFO ties must replay deterministically, and SubmitID is cheap.
func (s *Server) recoverJobs() {
	recoverStart := time.Now()
	pending := s.store.Pending()
	if len(pending) == 0 {
		return
	}
	type resolved struct {
		job sched.Job
		err error // non-nil: journal this id failed with err
	}
	res := make([]resolved, len(pending))
	specs := make([]catalog.JobSpec, len(pending))
	workers := s.cfg.Budget
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range pending {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			j := pending[i]
			if err := json.Unmarshal(j.Spec, &specs[i]); err != nil {
				res[i].err = fmt.Errorf("journaled spec unreadable: %w", err)
				return
			}
			job, err := s.cfg.Catalog.Job(specs[i])
			if err != nil {
				res[i].err = fmt.Errorf("journaled spec no longer resolves: %w", err)
				return
			}
			res[i].job = job
		}(i)
	}
	wg.Wait()
	for i, j := range pending {
		if res[i].err != nil {
			s.store.Terminal(j.ID, "failed", res[i].err.Error())
			continue
		}
		job := res[i].job
		job.Tenant = j.Tenant
		if reg := s.registry(); reg != nil {
			// Quotas are re-read from the current registry: the key file is
			// the live source of truth, the journal only remembers ownership.
			if tn, ok := reg.ByName(j.Tenant); ok {
				job.TenantCores = tn.MaxCores
			}
		}
		entry := &jobEntry{
			spec:      specs[i],
			tenant:    j.Tenant,
			until:     job.Until,
			submitted: j.Submitted,
			// The ring continues past the journaled reservation instead of
			// resetting to 1, so a client resuming across the restart gets a
			// bounded, explicit gap — never a silently restarted sequence.
			ring:        newEventRingFrom(s.cfg.RingSize, j.EventSeqReserved+1),
			seqReserved: j.EventSeqReserved,
			subs:        make(map[chan struct{}]struct{}),
			eta:         machine.NewETAEstimator(job.Until),
			trace:       obs.NewTrace(s.cfg.TraceSpans),
		}
		if s.cfg.CheckpointDir != "" {
			// Prime the storage accounting with what the previous life left
			// on disk, so a recovered tenant starts its quota from reality.
			entry.ckptDir = sched.JobCheckpointDir(s.cfg.CheckpointDir, job.Name)
			entry.ckptBytes = scanCheckpointBytes(entry.ckptDir)
		}
		s.attach(&job, entry)
		s.mu.Lock()
		sid, err := s.stream.SubmitID(job)
		if err != nil {
			s.mu.Unlock()
			s.store.Terminal(j.ID, "failed", "recovery resubmission rejected: "+err.Error())
			continue
		}
		entry.id, entry.sid, entry.queuedNow = j.ID, sid, true
		s.jobs[j.ID] = entry
		s.byStream[sid] = j.ID
		s.queued[j.Tenant]++
		s.storage[j.Tenant] += entry.ckptBytes
		s.recovered++
		s.mu.Unlock()
		// The recovered trace starts fresh (the previous life's spans are in
		// the index if the job finished there); the recovery span marks the
		// boot-replay cost this life paid before the job was runnable again.
		entry.trace.Observe("recovery", recoverStart, time.Now(), nil)
	}
}

// consumeResults drains the stream's Results channel for the server's
// lifetime, recording terminal outcomes and waking SSE watchers. The
// channel closes when the stream is fully drained (after Close or
// cancellation), which is the service's "everything flushed" signal.
func (s *Server) consumeResults() {
	for r := range s.stream.Results() {
		r := r
		// Scan the job's checkpoint directory before taking the lock: the
		// artifact listing is pure file I/O and must not serialise the
		// notify callbacks and handlers behind it.
		var artifacts []store.Artifact
		if s.index != nil && s.cfg.CheckpointDir != "" && r.Name != "" {
			artifacts, _ = collectArtifacts(sched.JobCheckpointDir(s.cfg.CheckpointDir, r.Name))
		}
		var ixEntry *store.IndexEntry
		s.mu.Lock()
		eid, tracked := s.byStream[r.ID]
		// A storage-quota kill arrives from the scheduler as a cancellation,
		// but the server's truth — already journaled at enforcement time —
		// is a failure. Count and report it as one.
		quotaFailed := tracked && s.jobs[eid] != nil && s.jobs[eid].quotaErr != ""
		switch {
		case quotaFailed:
			s.failed++
		case r.Status == sched.Done:
			s.completed++
		case r.Status == sched.Failed:
			s.failed++
		case r.Status == sched.Cancelled:
			s.cancelled++
		}
		if tracked {
			e := s.jobs[eid]
			e.result = &r
			delete(s.byStream, r.ID)
			if e.queuedNow {
				e.queuedNow = false
				s.queued[e.tenant]--
			}
			if s.store != nil && !quotaFailed {
				// Done and Failed are journaled terminal; a user DELETE was
				// journaled at cancel time, a quota kill at enforcement time.
				// A shutdown cancellation is the one outcome that must NOT
				// reach the journal: the job stays pending there, and
				// replaying it on the next start IS the recovery path.
				switch r.Status {
				case sched.Done:
					s.store.Terminal(eid, "done", "")
				case sched.Failed:
					msg := ""
					if r.Err != nil {
						msg = r.Err.Error()
					}
					s.store.Terminal(eid, "failed", msg)
				}
			}
			// Backstop for the run span: the scheduler's terminal Update
			// normally closed it, but a quota kill's cancel can race the
			// notify — the snapshot below must never persist an open "run".
			if e.runSpan != 0 {
				e.trace.End(e.runSpan, nil)
				e.runSpan = 0
			}
			s.appendEventLocked(e, "done", statusBody(e, s.snapshotFor(r.ID)))
			// Terminal rings keep only a short tail: enough for a briefly
			// disconnected watcher to catch the ending, cheap enough that
			// thousands of retained terminal jobs don't dominate memory.
			e.ring.trimTo(ringTerminalTail)
			if s.index != nil {
				ixEntry = indexEntryLocked(e, &r, artifacts)
				// The snapshot is the trace's durable form: it survives the
				// history eviction below and restarts, served back by the
				// trace endpoint with "archived": true.
				ixEntry.Trace, ixEntry.TraceDropped = e.trace.Snapshot()
			}
			// Mirror the stream's history bound: evict the oldest terminal
			// entries so an always-on daemon's memory stays bounded.
			// Evicted entries disappear from the map only — attached SSE
			// handlers keep their pointer and still see the result.
			s.terminal = append(s.terminal, eid)
			for len(s.terminal) > s.cfg.History {
				// An evicted entry leaves the quota accounting too: its
				// snapshots are no longer eviction candidates, so counting
				// them against the tenant would wedge the quota on bytes
				// the enforcer can never reclaim.
				if old := s.jobs[s.terminal[0]]; old != nil && old.ckptBytes != 0 {
					s.storage[old.tenant] -= old.ckptBytes
				}
				delete(s.jobs, s.terminal[0])
				s.terminal = s.terminal[1:]
			}
		}
		s.mu.Unlock()
		if ixEntry != nil {
			// The index append (and its fsync) happens off s.mu; the index
			// has its own lock.
			s.index.Put(*ixEntry)
		}
	}
	close(s.drained)
}

// indexEntryLocked flattens one terminal job into its durable artifact-index
// record. Callers hold s.mu.
func indexEntryLocked(e *jobEntry, r *sched.Result, artifacts []store.Artifact) *store.IndexEntry {
	ie := &store.IndexEntry{
		ID:                e.id,
		Tenant:            e.tenant,
		Name:              r.Name,
		Scenario:          e.spec.Scenario,
		Status:            r.Status.String(),
		SubmittedUnixNano: e.submitted.UnixNano(),
		FinishedUnixNano:  time.Now().UnixNano(),
		Artifacts:         artifacts,
	}
	if r.Err != nil {
		ie.Error = r.Err.Error()
	}
	if e.quotaErr != "" {
		// The durable record carries the quota failure, not the
		// cancellation the scheduler used to deliver it.
		ie.Status = "failed"
		ie.Error = e.quotaErr
	}
	if rep := r.Report; rep != nil {
		ie.Report = &store.ReportSummary{
			Steps:           rep.Steps,
			Clock:           rep.Clock,
			WallSeconds:     rep.Wall.Seconds(),
			Reason:          rep.Reason.String(),
			Checkpoints:     len(rep.Checkpoints),
			CheckpointBytes: rep.CheckpointBytes,
			DroppedObs:      rep.DroppedObservations,
		}
	}
	return ie
}

// snapshotFor reads the scheduler's view of one submission by stream id
// (zero-value snapshot if the id is unknown — callers pair it with their
// own entry).
func (s *Server) snapshotFor(sid int) sched.JobSnapshot {
	js, _ := s.stream.Job(sid)
	return js
}

// onUpdate receives every scheduler status transition (serialised by the
// stream), maintains the journal's attempt markers and the tenant
// queue-depth bookkeeping, and forwards the transition to the job's SSE
// subscribers.
func (s *Server) onUpdate(u sched.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if u.Status == sched.Retrying {
		s.retried++
	}
	eid, ok := s.byStream[u.Index]
	if !ok {
		return
	}
	e := s.jobs[eid]
	switch {
	case u.Status == sched.Queued && !e.queuedNow:
		e.queuedNow = true
		s.queued[e.tenant]++
	case u.Status != sched.Queued && e.queuedNow:
		e.queuedNow = false
		s.queued[e.tenant]--
	}
	if u.Status == sched.Running {
		// Anchor the ETA estimator's wall axis at the first dispatch; a
		// retry keeps the original anchor so already-burnt wall time stays
		// in the projection.
		if e.runStart.IsZero() {
			e.runStart = time.Now()
		}
		e.runSpan = e.trace.Start("run", map[string]string{"attempt": strconv.Itoa(u.Attempt)})
		if s.store != nil {
			s.store.Started(eid, u.Attempt)
		}
	} else if e.runSpan != 0 {
		// Any transition away from Running closes the running segment; a
		// retry opens a fresh one, so each attempt's compute time is its own
		// span. The segment carries the clock-advance rate the ETA estimator
		// settled on — the per-job throughput the machine model prices.
		var attrs map[string]string
		if rate := e.eta.Rate(); rate > 0 {
			attrs = map[string]string{"clock_per_sec": strconv.FormatFloat(rate, 'g', -1, 64)}
		}
		e.trace.End(e.runSpan, attrs)
		e.runSpan = 0
	}
	body := map[string]any{
		"id":      eid,
		"name":    u.Name,
		"status":  u.Status.String(),
		"attempt": u.Attempt,
	}
	if u.Err != nil {
		body["error"] = u.Err.Error()
	}
	s.appendEventLocked(e, "status", body)
}

// onPhase receives the scheduler's phase timings — queue wait, dispatch
// latency, retry backoff. Unlike onUpdate it is NOT serialised by the
// stream: workers call it concurrently, which is fine because the
// histograms are atomic and the trace has its own per-job lock. s.mu is
// held only for the id lookup, never across the recording.
func (s *Server) onPhase(ev sched.PhaseEvent) {
	s.mu.Lock()
	e := s.jobs[s.byStream[ev.Index]]
	s.mu.Unlock()
	d := ev.End.Sub(ev.Start)
	switch ev.Phase {
	case "queue":
		s.histQueueWait.ObserveDuration(d)
	case "dispatch":
		s.histDispatch.ObserveDuration(d)
	}
	if e == nil {
		return
	}
	var attrs map[string]string
	if ev.Phase != "queue" {
		attrs = map[string]string{"attempt": strconv.Itoa(ev.Attempt)}
	}
	e.trace.Observe(ev.Phase, ev.Start, ev.End, attrs)
}

// attach wires the per-submission runner options onto a job: the lossy
// diagnostics pipe every submission gets (with its eviction notifier, so
// back-pressure drops surface as "gap" events instead of vanishing), and —
// when the server is durable — the checkpoint notification that journals
// each snapshot's clock, which is what a restart consults to promise
// "resumes from the newest checkpoint".
func (s *Server) attach(job *sched.Job, entry *jobEntry) {
	job.Opts = append(job.Opts,
		// The step timer feeds the histogram only — per-step spans would
		// flood a bounded trace; the step distribution is a fleet question.
		runner.WithStepTimer(func(d time.Duration) {
			s.histStep.ObserveDuration(d)
		}),
		// Checkpoint writes are rare enough to trace per job AND cheap to
		// histogram. The callback runs on the writing goroutine (step loop
		// or async pipeline) — atomic + per-trace lock, no s.mu.
		runner.WithCheckpointTimer(func(clock float64, d time.Duration) {
			s.histCheckpoint.ObserveDuration(d)
			end := time.Now()
			entry.trace.Observe("checkpoint", end.Add(-d), end,
				map[string]string{"clock": strconv.FormatFloat(clock, 'g', -1, 64)})
		}),
	)
	job.Opts = append(job.Opts, runner.WithAsyncObserver(
		func(step int, d runner.Diagnostics) error {
			s.observe(entry, step, d)
			return nil
		},
		runner.WithAsyncBuffer(s.cfg.DiagBuffer),
		runner.WithBackpressure(runner.DropOldest),
		runner.WithDropNotify(func(dropped int64) {
			// Runs on the observer pipeline goroutine, never the step loop.
			s.mu.Lock()
			s.sseDropped += dropped
			s.appendEventLocked(entry, "gap", map[string]any{
				"missed": dropped,
				"source": "observer",
			})
			s.mu.Unlock()
		}),
	))
	if s.store != nil {
		job.Opts = append(job.Opts, runner.WithCheckpointNotify(
			func(path string, clock float64) {
				// entry.id is assigned under s.mu during registration; a
				// checkpoint cannot fire before the job starts, but take the
				// lock anyway so the read is ordered after the write.
				s.mu.Lock()
				id := entry.id
				s.mu.Unlock()
				s.store.CheckpointWritten(id, clock)
				// Storage accounting and quota enforcement ride the same
				// notification — it runs off the step loop, so the directory
				// re-measure (and any eviction) never stalls the solver.
				s.noteCheckpoint(entry)
			}))
	}
}

// appendEventLocked marshals one event into the job's ring — assigning its
// sequence number — and wakes every subscriber. The wake is a non-blocking
// send on a capacity-1 channel: a token already pending means the handler
// will drain the ring anyway, so nothing is lost and nothing blocks. A slow
// SSE client falls behind on the ring (and, at worst, sees an explicit gap
// after eviction); it never makes the publisher drop. Callers hold s.mu.
func (s *Server) appendEventLocked(e *jobEntry, typ string, body any) {
	t, data := marshalEvent(typ, body)
	seq := e.ring.append(t, data)
	if s.store != nil && seq > e.seqReserved {
		// Sequence durability is block-granular: one journal append claims
		// the next eventSeqReserveBlock numbers, so the per-event cost is
		// amortised to ~zero and a restart resumes numbering past the
		// reservation. The append rides s.mu like the journal's other
		// bookkeeping writes; it happens once per 4096 events.
		e.seqReserved = seq + eventSeqReserveBlock
		s.store.EventSeqReserve(e.id, e.seqReserved)
	}
	for ch := range e.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// observe ingests one diagnostics snapshot: counts it for the throughput
// gauge, feeds the ETA estimator, and appends the "diag" event to the
// job's ring. It runs on the job's async observer goroutine, off the step
// loop. Unlike the old push surface this always appends — the ring is the
// replay buffer a later Last-Event-ID resume reads, subscribers or not.
func (s *Server) observe(e *jobEntry, step int, d runner.Diagnostics) {
	body := map[string]any{
		"step":  step,
		"clock": safeNum(d.Clock),
		"time":  safeNum(d.Time),
		"mass":  safeNum(d.Mass),
	}
	for k, v := range d.Extra {
		body[k] = safeNum(v)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stepsObserved++
	if e.eta != nil && !e.runStart.IsZero() {
		e.eta.Observe(time.Since(e.runStart).Seconds(), d.Clock)
	}
	s.appendEventLocked(e, "diag", body)
}

// safeNum makes a float JSON-encodable: encoding/json rejects NaN and ±Inf,
// and a diverging run's diagnostics (a client-chosen unstable dt) must
// degrade to a readable value, not silently kill the SSE stream before its
// terminal event.
func safeNum(f float64) any {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Sprintf("%g", f)
	}
	return f
}

// Stream exposes the underlying scheduler (tests and embedders).
func (s *Server) Stream() *sched.Stream { return s.stream }

// Drain is the graceful shutdown: stop accepting submissions, close the
// stream so queued and running jobs finish (checkpointing on their
// cadence), and flush every result. If ctx expires first the remaining
// jobs are cancelled through the scheduler and the drain completes on the
// fast path. Drain returns nil for a clean drain and ctx.Err() when the
// deadline forced cancellation.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stream.Close()
	defer s.closeStore()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-s.drained
		return ctx.Err()
	}
}

// Close is the fast shutdown: cancel everything and wait for the flush.
// With a store, in-flight jobs are NOT journaled terminal — the next Open
// over the same StoreDir replays and resumes them.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stream.Close()
	s.cancel()
	<-s.drained
	s.closeStore()
}

// Handler returns the control plane's routes, wrapped in bearer-key
// authentication when a tenant registry is configured.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/diagnostics", s.handleDiagnostics)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoints", s.handleCheckpoints)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoints/{file}", s.handleCheckpointFile)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("POST /v1/admin/reload", s.handleAdminReload)
	// No method restriction: pprof's symbol endpoint accepts POST. The
	// /v1/ prefix keeps the route behind withAuth; the handler itself
	// enforces the admin capability.
	mux.HandleFunc("/v1/admin/pprof/", s.handlePprof)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Tenants == nil {
		return mux
	}
	return s.withAuth(mux)
}

// withAuth authenticates every /v1 request against the key registry and
// hangs the resolved tenant on the request context. /healthz and /metrics
// pass through: they are the probe surface infrastructure scrapes without
// credentials, and they expose no per-job data.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		key, ok := bearerToken(r)
		if !ok {
			s.recordAdmission("", "401", "missing bearer token", "", 0)
			w.Header().Set("WWW-Authenticate", `Bearer realm="vlasovd"`)
			writeErr(w, http.StatusUnauthorized, fmt.Errorf("serve: missing bearer token"))
			return
		}
		// The lookup goes through the live registry, not the one the server
		// started with: a key rotated out by a reload stops working on the
		// very next request.
		tn, ok := s.registry().Lookup(key)
		if !ok {
			s.recordAdmission("", "401", "unknown bearer token", "", 0)
			w.Header().Set("WWW-Authenticate", `Bearer realm="vlasovd", error="invalid_token"`)
			writeErr(w, http.StatusUnauthorized, fmt.Errorf("serve: unknown bearer token"))
			return
		}
		next.ServeHTTP(w, r.WithContext(tenant.NewContext(r.Context(), tn)))
	})
}

// bearerToken extracts the RFC 6750 bearer credential.
func bearerToken(r *http.Request) (string, bool) {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return "", false
	}
	return auth[len(prefix):], true
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// writeErr writes a JSON error body.
func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeRetryErr is writeErr plus a Retry-After hint — on every 429 and on
// the draining 503, so a well-behaved client backs off instead of
// hammering.
func writeRetryErr(w http.ResponseWriter, code int, wait time.Duration, err error) {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeErr(w, code, err)
}

// drainRetryAfter is the Retry-After on draining 503s: long enough to
// cover a typical restart, short enough that clients notice the new
// process promptly. The drain deadline itself is the caller's (it lives in
// the ctx handed to Drain), so the handler cannot derive a sharper bound.
const drainRetryAfter = 10 * time.Second

// handleSubmit resolves a JobSpec through the catalog, admits it against
// the tenant's rate limit and queue quota, journals it, and submits it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tn, _ := tenant.FromContext(r.Context())
	tenantName := ""
	if tn != nil {
		tenantName = tn.Name
		// The rate limit gates the request, not just the acceptance — a
		// flood of malformed specs is still a flood.
		if ok, wait := tn.Allow(time.Now()); !ok {
			s.recordAdmission(tenantName, "429", "rate-limited", "", 0)
			writeRetryErr(w, http.StatusTooManyRequests, wait,
				fmt.Errorf("serve: tenant %q rate-limited", tn.Name))
			return
		}
	}
	var spec catalog.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad spec: %w", err))
		return
	}
	job, err := s.cfg.Catalog.Job(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	entry := &jobEntry{
		spec:      spec,
		until:     job.Until,
		submitted: time.Now(),
		ring:      newEventRing(s.cfg.RingSize),
		subs:      make(map[chan struct{}]struct{}),
		eta:       machine.NewETAEstimator(job.Until),
		trace:     obs.NewTrace(s.cfg.TraceSpans),
	}
	if tn != nil {
		entry.tenant = tn.Name
		// The tenant tag and core quota ride into the scheduler's two-level
		// fair share: cores divide across tenants before priority divides
		// within one.
		job.Tenant = tn.Name
		job.TenantCores = tn.MaxCores
	}
	if s.cfg.CheckpointDir != "" {
		entry.ckptDir = sched.JobCheckpointDir(s.cfg.CheckpointDir, job.Name)
	}
	hash := specHashOf(spec)
	s.attach(&job, entry)
	// Registration holds s.mu across SubmitID so the notify callback —
	// which also takes s.mu — cannot observe the job before its entry
	// exists, even though a worker may pick it up immediately.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.recordAdmission(tenantName, "503", "draining", hash, 0)
		writeRetryErr(w, http.StatusServiceUnavailable, drainRetryAfter,
			fmt.Errorf("serve: draining, not accepting work"))
		return
	}
	if tn != nil && tn.MaxQueued > 0 && s.queued[tn.Name] >= tn.MaxQueued {
		s.mu.Unlock()
		s.recordAdmission(tenantName, "429",
			fmt.Sprintf("queue quota (%d) exhausted", tn.MaxQueued), hash, 0)
		writeRetryErr(w, http.StatusTooManyRequests, time.Second,
			fmt.Errorf("serve: tenant %q queue quota (%d) exhausted", tn.Name, tn.MaxQueued))
		return
	}
	id := s.allocIDLocked()
	sid, err := s.stream.SubmitID(job)
	if err != nil {
		s.mu.Unlock()
		// A closed or cancelled stream is the service shutting down — the
		// same 503 as the draining gate. Only the duplicate-checkpoint-key
		// rejection is a true conflict with existing state.
		if errors.Is(err, sched.ErrStreamClosed) ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.recordAdmission(tenantName, "503", err.Error(), hash, 0)
			writeRetryErr(w, http.StatusServiceUnavailable, drainRetryAfter, err)
			return
		}
		writeErr(w, http.StatusConflict, err)
		return
	}
	entry.id, entry.sid, entry.queuedNow = id, sid, true
	s.jobs[id] = entry
	s.byStream[sid] = id
	s.queued[entry.tenant]++
	s.submitted++
	if s.store != nil {
		// Canonical bytes, so the journal round-trips the spec byte-stably
		// across write/replay/compact cycles. Canonical cannot fail on a
		// spec that json-decoded above; a failure here would be a journal
		// bug, not a client error, so the submission proceeds regardless.
		if raw, err := spec.Canonical(); err == nil {
			s.store.Submitted(id, entry.tenant, raw, entry.submitted)
		}
	}
	s.mu.Unlock()
	// The admission span brackets spec decode, catalog resolution, quota
	// checks and journaling — the control-plane overhead a client pays
	// before its job is even queued.
	attrs := map[string]string{"scenario": spec.Scenario}
	if tenantName != "" {
		attrs["tenant"] = tenantName
	}
	entry.trace.Observe("admission", entry.submitted, time.Now(), attrs)
	s.recordAdmission(tenantName, "accept", "", hash, id)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     id,
		"name":   job.Name,
		"status": sched.Queued.String(),
	})
}

// allocIDLocked returns the next external job id: the journal's persistent
// counter when durable (ids survive restarts and are never reissued), a
// session counter otherwise. Callers hold s.mu.
func (s *Server) allocIDLocked() int {
	if s.store != nil {
		return s.store.NextID()
	}
	id := s.nextID
	s.nextID++
	return id
}

// statusBody renders one submission's status document. A recorded terminal
// result is authoritative over the scheduler snapshot: the stream's
// bounded history may already have evicted the record (js then reads as a
// zero value), but the result the server holds is the job's true outcome.
// Callers hold s.mu (the ETA estimator is mutated under it).
func statusBody(e *jobEntry, js sched.JobSnapshot) map[string]any {
	name, status, attempt := js.Name, js.Status.String(), js.Attempt
	errMsg := ""
	if js.Err != nil {
		errMsg = js.Err.Error()
	}
	if r := e.result; r != nil {
		name, status, attempt = r.Name, r.Status.String(), r.Attempt
		if r.Err != nil {
			errMsg = r.Err.Error()
		}
	}
	if e.quotaErr != "" {
		// A storage-quota kill travels through the scheduler as a
		// cancellation; the status document reports the truth.
		status = sched.Failed.String()
		errMsg = e.quotaErr
	}
	body := map[string]any{
		"id":        e.id,
		"name":      name,
		"scenario":  e.spec.Scenario,
		"status":    status,
		"attempt":   attempt,
		"priority":  e.spec.Priority,
		"submitted": e.submitted.UTC().Format(time.RFC3339Nano),
	}
	if e.until > 0 {
		body["until"] = e.until
	}
	if e.tenant != "" {
		body["tenant"] = e.tenant
	}
	if errMsg != "" {
		body["error"] = errMsg
	}
	// A live run with an established clock-advance rate carries its wall
	// ETA — the online face of the machine model's time-to-solution. A
	// queued or just-started job has no defensible estimate and omits the
	// field rather than inventing one.
	if e.result == nil && e.eta != nil {
		if eta, ok := e.eta.ETASeconds(); ok {
			body["eta_seconds"] = eta
		}
	}
	if e.result != nil && e.result.Report != nil {
		rep := e.result.Report
		body["report"] = map[string]any{
			"steps":            rep.Steps,
			"clock":            safeNum(rep.Clock),
			"wall_seconds":     rep.Wall.Seconds(),
			"reason":           rep.Reason.String(),
			"checkpoints":      len(rep.Checkpoints),
			"checkpoint_bytes": rep.CheckpointBytes,
			"dropped_obs":      rep.DroppedObservations,
		}
	}
	return body
}

// lookup resolves the {id} path value to the live entry and scheduler
// snapshot — or, when the bounded history has already evicted the job, to
// its record in the durable artifact index (ie non-nil, entry nil). Tenant
// scoping is enforced on both paths: another tenant's job is 403, not
// invisible — ids are dense integers, so a 404 would leak nothing an
// enumeration does not already reveal, and the explicit status is the more
// debuggable contract.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*jobEntry, sched.JobSnapshot, *store.IndexEntry, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad job id %q", r.PathValue("id")))
		return nil, sched.JobSnapshot{}, nil, false
	}
	s.mu.Lock()
	e, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		if s.index != nil {
			if ie, found := s.index.Get(id); found {
				if tn, authed := tenant.FromContext(r.Context()); authed && ie.Tenant != tn.Name {
					s.recordAdmission(tn.Name, "403",
						fmt.Sprintf("job %d belongs to another tenant", id), "", id)
					writeErr(w, http.StatusForbidden, fmt.Errorf("serve: job %d belongs to another tenant", id))
					return nil, sched.JobSnapshot{}, nil, false
				}
				return nil, sched.JobSnapshot{}, &ie, true
			}
		}
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: no job %d", id))
		return nil, sched.JobSnapshot{}, nil, false
	}
	if tn, authed := tenant.FromContext(r.Context()); authed && e.tenant != tn.Name {
		s.recordAdmission(tn.Name, "403",
			fmt.Sprintf("job %d belongs to another tenant", id), "", id)
		writeErr(w, http.StatusForbidden, fmt.Errorf("serve: job %d belongs to another tenant", id))
		return nil, sched.JobSnapshot{}, nil, false
	}
	return e, s.snapshotFor(e.sid), nil, true
}

// statusBodyIndex renders an evicted job's status document from its
// artifact-index record. "archived": true tells clients they are reading
// the durable record, not live scheduler state.
func statusBodyIndex(ie *store.IndexEntry) map[string]any {
	body := map[string]any{
		"id":        ie.ID,
		"name":      ie.Name,
		"status":    ie.Status,
		"submitted": ie.SubmittedAt().UTC().Format(time.RFC3339Nano),
		"archived":  true,
	}
	if ie.Scenario != "" {
		body["scenario"] = ie.Scenario
	}
	if ie.Tenant != "" {
		body["tenant"] = ie.Tenant
	}
	if ie.Error != "" {
		body["error"] = ie.Error
	}
	if ie.FinishedUnixNano != 0 {
		body["finished"] = ie.FinishedAt().UTC().Format(time.RFC3339Nano)
	}
	if rep := ie.Report; rep != nil {
		body["report"] = map[string]any{
			"steps":            rep.Steps,
			"clock":            safeNum(rep.Clock),
			"wall_seconds":     rep.WallSeconds,
			"reason":           rep.Reason,
			"checkpoints":      rep.Checkpoints,
			"checkpoint_bytes": rep.CheckpointBytes,
			"dropped_obs":      rep.DroppedObs,
		}
	}
	return body
}

// handleList reports every retained submission, newest last, scoped to the
// authenticated tenant when tenancy is on. The server's own records drive
// the listing (they, not the stream's bounded history, decide what is
// still reportable); the scheduler snapshot fills in the live statuses.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("archived") == "1" {
		s.handleListArchived(w, r)
		return
	}
	tn, authed := tenant.FromContext(r.Context())
	bySid := make(map[int]sched.JobSnapshot)
	for _, js := range s.stream.Snapshot() {
		bySid[js.ID] = js
	}
	s.mu.Lock()
	ids := make([]int, 0, len(s.jobs))
	for id, e := range s.jobs {
		if authed && e.tenant != tn.Name {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		e := s.jobs[id]
		out = append(out, statusBody(e, bySid[e.sid]))
	}
	depth := s.stream.Pending()
	if authed {
		depth = s.queued[tn.Name]
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out, "queued": depth})
}

// handleGet reports one submission — from live state, or from the artifact
// index once the bounded history has evicted it.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e, js, ie, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if ie != nil {
		writeJSON(w, http.StatusOK, statusBodyIndex(ie))
		return
	}
	s.mu.Lock()
	body := statusBody(e, js)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

// handleCancel cancels one submission (queued or running). Unlike a
// shutdown cancellation, a client's DELETE is journaled terminal at cancel
// time: the user's decision must survive a crash, not be undone by a
// recovery replay.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	e, js, ie, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if ie != nil {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("serve: job %d already %s", ie.ID, ie.Status))
		return
	}
	if !s.stream.Cancel(e.sid) {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("serve: job %d already %s", e.id, js.Status))
		return
	}
	s.mu.Lock()
	if !e.cancelled {
		e.cancelled = true
		if s.store != nil {
			s.store.Terminal(e.id, "cancelled", "")
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{"id": e.id, "status": "cancelling"})
}

// handleScenarios serves the catalog's contract surface.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": s.cfg.Catalog.Scenarios()})
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"draining":       draining,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format (v0.0.4): backslash, double quote, and newline — and nothing
// else. fmt's %q is NOT this escaping: it emits \uXXXX for non-ASCII, and
// a tenant named "団体" would produce a label value no Prometheus parser
// accepts. ASCII-only values pass through byte-identical, so existing
// scrapes and greps keep matching.
var escapeLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace

// handleMetrics serves the Prometheus text exposition format (v0.0.4):
// # HELP/# TYPE annotations per family, counters and gauges, and
// per-tenant labelled gauges for core usage and queue depth. The sample
// lines keep the exact names and shapes of the pre-tenancy plain-text
// endpoint, so existing scrapes and greps continue to match.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.mu.Lock()
	submitted, completed, failed, cancelled, retried, recovered :=
		s.submitted, s.completed, s.failed, s.cancelled, s.retried, s.recovered
	sseDropped, sseReplayed, stepsObserved := s.sseDropped, s.sseReplayed, s.stepsObserved
	// Step throughput is windowed scrape-to-scrape: the rate since the
	// previous /metrics read, which is what a dashboard actually plots.
	throughput := 0.0
	if window := now.Sub(s.thrStart).Seconds(); window > 0 {
		throughput = float64(stepsObserved-s.thrBase) / window
	}
	s.thrBase = stepsObserved
	s.thrStart = now
	queued := make(map[string]int, len(s.queued))
	for name, n := range s.queued {
		queued[name] = n
	}
	storage := make(map[string]int64, len(s.storage))
	for name, n := range s.storage {
		storage[name] = n
	}
	admission := make(map[admKey]int64, len(s.admission))
	for k, n := range s.admission {
		admission[k] = n
	}
	reloads, reloadsFailed := s.reloads, s.reloadsFailed
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("vlasovd_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", submitted)
	counter("vlasovd_jobs_completed_total", "Jobs that reached Done.", completed)
	counter("vlasovd_jobs_failed_total", "Jobs that reached Failed.", failed)
	counter("vlasovd_jobs_cancelled_total", "Jobs that reached Cancelled.", cancelled)
	counter("vlasovd_jobs_retried_total", "Retry attempts across all jobs.", retried)
	counter("vlasovd_jobs_recovered_total", "Journaled jobs re-queued at startup.", recovered)
	if s.registry() != nil {
		counter("vlasovd_key_reloads_total", "Key-file reloads applied (SIGHUP or /v1/admin/reload).", reloads)
		counter("vlasovd_key_reload_failures_total", "Key-file reloads rejected by validation (old registry stayed live).", reloadsFailed)
	}
	if s.store != nil {
		fmt.Fprintf(w, "# HELP vlasovd_journal_bytes On-disk size of the job journal (online compaction keeps it bounded).\n# TYPE vlasovd_journal_bytes gauge\nvlasovd_journal_bytes %d\n", s.store.Size())
	}
	counter("vlasovd_sse_dropped_total", "Diagnostics events lost before SSE delivery (observer back-pressure plus ring evictions seen by connected clients).", sseDropped)
	counter("vlasovd_sse_replayed_total", "Events re-served from per-job rings on Last-Event-ID resumes.", sseReplayed)
	counter("vlasovd_steps_observed_total", "Solver steps observed through the diagnostics pipeline across all jobs.", stepsObserved)
	fmt.Fprintf(w, "# HELP vlasovd_step_throughput Observed solver steps per second since the previous scrape.\n# TYPE vlasovd_step_throughput gauge\nvlasovd_step_throughput %g\n", throughput)
	// The latency histograms: fixed log-spaced buckets (100µs–300s), fed
	// atomically off the hot paths, snapshot-consistent per scrape.
	s.histQueueWait.WriteProm(w)
	s.histDispatch.WriteProm(w)
	s.histStep.WriteProm(w)
	s.histCheckpoint.WriteProm(w)
	gauge("vlasovd_queue_depth", "Jobs queued, not yet dispatched.", s.stream.Pending())
	if b := s.stream.Budget(); b != nil {
		gauge("vlasovd_budget_cores_total", "Cores the budget divides.", b.Total())
		gauge("vlasovd_budget_cores_in_use", "Cores currently claimed by live jobs.", b.Held())
		gauge("vlasovd_budget_jobs_live", "Live core leases.", b.Live())
	}
	// Per-tenant gauges: every registered tenant is emitted (zeros
	// included, so dashboards see a stable series set), plus any tenant
	// the journal resurrected that the current key file no longer lists.
	names := make(map[string]bool)
	if reg := s.registry(); reg != nil {
		// The LIVE registry drives the series set: a tenant added by a
		// reload appears on the next scrape, zeros included.
		for _, tn := range reg.Tenants() {
			names[tn.Name] = true
		}
	}
	for name := range storage {
		if name != "" {
			names[name] = true
		}
	}
	var held map[string]int
	if b := s.stream.Budget(); b != nil {
		held = b.HeldByTenant()
		for name := range held {
			if name != "" {
				names[name] = true
			}
		}
	}
	for name := range queued {
		if name != "" {
			names[name] = true
		}
	}
	if len(names) > 0 {
		ordered := make([]string, 0, len(names))
		for name := range names {
			ordered = append(ordered, name)
		}
		sort.Strings(ordered)
		fmt.Fprintf(w, "# HELP vlasovd_tenant_cores_in_use Cores currently claimed by the tenant's jobs.\n")
		fmt.Fprintf(w, "# TYPE vlasovd_tenant_cores_in_use gauge\n")
		for _, name := range ordered {
			fmt.Fprintf(w, "vlasovd_tenant_cores_in_use{tenant=\"%s\"} %d\n", escapeLabel(name), held[name])
		}
		fmt.Fprintf(w, "# HELP vlasovd_tenant_queue_depth The tenant's jobs queued, not yet dispatched.\n")
		fmt.Fprintf(w, "# TYPE vlasovd_tenant_queue_depth gauge\n")
		for _, name := range ordered {
			fmt.Fprintf(w, "vlasovd_tenant_queue_depth{tenant=\"%s\"} %d\n", escapeLabel(name), queued[name])
		}
		fmt.Fprintf(w, "# HELP vlasovd_tenant_storage_bytes Checkpoint bytes on disk tracked against the tenant's storage quota.\n")
		fmt.Fprintf(w, "# TYPE vlasovd_tenant_storage_bytes gauge\n")
		for _, name := range ordered {
			fmt.Fprintf(w, "vlasovd_tenant_storage_bytes{tenant=\"%s\"} %d\n", escapeLabel(name), storage[name])
		}
	}
	if len(admission) > 0 {
		// Admission outcomes, one series per (tenant, outcome) observed.
		// tenant="" is a request that never authenticated (the 401s).
		keys := make([]admKey, 0, len(admission))
		for k := range admission {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].tenant != keys[j].tenant {
				return keys[i].tenant < keys[j].tenant
			}
			return keys[i].outcome < keys[j].outcome
		})
		fmt.Fprintf(w, "# HELP vlasovd_admission_total Admission decisions by tenant and outcome (accept, 401, 403, 429, 503).\n")
		fmt.Fprintf(w, "# TYPE vlasovd_admission_total counter\n")
		for _, k := range keys {
			fmt.Fprintf(w, "vlasovd_admission_total{tenant=\"%s\",outcome=\"%s\"} %d\n",
				escapeLabel(k.tenant), escapeLabel(k.outcome), admission[k])
		}
	}
}

// resumeCursor extracts the client's replay position: the standard
// Last-Event-ID header EventSource sends on reconnect, or the
// ?last_event_id= query parameter for clients (curl) that cannot set
// headers. Zero means "from the beginning of the retained window".
func resumeCursor(r *http.Request) (int64, bool) {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("last_event_id")
	}
	if v == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// handleDiagnostics streams a job's events as server-sent events: "status"
// on every scheduler transition, "diag" per observed step, "gap" when
// events were lost (observer back-pressure, ring eviction, or an
// unresolvable resume id), and a final "done" carrying the terminal status
// document. Every ring event carries its sequence number as the SSE id:
// a client that reconnects with Last-Event-ID (or ?last_event_id=) resumes
// exactly after the last event it saw — the handler replays the missed
// window from the job's ring, then goes live. Replay is exactly-once over
// the retained window; a window that has been evicted is reported as an
// explicit "gap" with the missed count, never silently skipped. A job
// already terminal replays its retained tail and closes after "done".
func (s *Server) handleDiagnostics(w http.ResponseWriter, r *http.Request) {
	e, _, ie, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if ie != nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf(
			"serve: job %d has been evicted from live history and its diagnostics ring is gone; status and checkpoints remain at /v1/jobs/%d", ie.ID, ie.ID))
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("serve: response writer cannot stream"))
		return
	}
	cursor, resuming := resumeCursor(r)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Flush the headers now: a subscriber to a still-queued job must see
	// the stream open immediately, not block header-less until the first
	// event fires.
	fl.Flush()

	// Register the wake-up channel before the first flush: an event landing
	// between flush and registration would otherwise be announced to
	// nobody. Capacity 1 — a pending token already means "ring has news".
	sub := make(chan struct{}, 1)
	s.mu.Lock()
	if head := e.ring.head(); cursor > head {
		// The id cannot have come from this ring (a restarted daemon's
		// rings restart at 1, or the client is guessing). Clamping it
		// silently would be indistinguishable from a clean resume, so tell
		// the client its position did not resolve before going live.
		cursor = head
		t, data := marshalEvent("gap", map[string]any{"source": "reset"})
		s.mu.Unlock()
		if writeSSE(w, 0, t, data) != nil {
			return
		}
		s.mu.Lock()
	}
	e.subs[sub] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(e.subs, sub)
		s.mu.Unlock()
	}()

	firstFlush := true
	// flush drains the ring from the cursor: a gap notice if part of the
	// window was evicted, then every retained event past the cursor. It
	// reports done=true when the terminal event went out.
	flush := func() (done bool, err error) {
		s.mu.Lock()
		evs, missed := e.ring.since(cursor)
		if len(evs) > 0 {
			cursor = evs[len(evs)-1].seq
		}
		if missed > 0 {
			// Ring eviction observed by a connected client is a real loss.
			s.sseDropped += missed
		}
		if resuming && firstFlush {
			s.sseReplayed += int64(len(evs))
		}
		var synth map[string]any
		if len(evs) == 0 && e.result != nil {
			// Terminal with nothing left to replay: the client already saw
			// (at least) the done event — re-send it so the stream still
			// closes with the terminal document.
			synth = statusBody(e, s.snapshotFor(e.sid))
		}
		s.mu.Unlock()
		firstFlush = false
		wrote := false
		defer func() {
			if wrote {
				fl.Flush()
			}
		}()
		if missed > 0 {
			t, data := marshalEvent("gap", map[string]any{"missed": missed, "source": "ring"})
			if err := writeSSE(w, 0, t, data); err != nil {
				return false, err
			}
			wrote = true
		}
		for _, ev := range evs {
			if err := writeSSE(w, ev.seq, ev.typ, ev.data); err != nil {
				return false, err
			}
			wrote = true
			if ev.typ == "done" {
				return true, nil
			}
		}
		if synth != nil {
			t, data := marshalEvent("done", synth)
			if err := writeSSE(w, 0, t, data); err != nil {
				return false, err
			}
			wrote = true
			return true, nil
		}
		return false, nil
	}

	// The ticker backstops the wake-up channel: delivery correctness lives
	// in the ring, so a missed wake costs latency, never an event.
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		if done, err := flush(); done || err != nil {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub:
		case <-tick.C:
		}
	}
}

// writeSSE writes one event in text/event-stream framing. A positive id
// becomes the event's `id:` line — the resume cursor the client hands back
// as Last-Event-ID; synthetic per-connection events (gap, re-sent done)
// carry no id so they never displace the client's real position.
func writeSSE(w io.Writer, id int64, typ string, data []byte) error {
	var err error
	if id > 0 {
		_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, typ, data)
	} else {
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", typ, data)
	}
	return err
}

// collectArtifacts scans one job's checkpoint directory into artifact
// records, oldest first: file name, size, the clock embedded in the
// fixed-width name, and a format probe ("snapio-v1"/"snapio-v2" for the
// cosmological snapshots, "solver" for solver-private formats). The same
// records serve the live checkpoint listing and the terminal write into
// the artifact index.
func collectArtifacts(dir string) ([]store.Artifact, error) {
	paths, err := runner.ListCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	out := make([]store.Artifact, 0, len(paths))
	for _, p := range paths {
		a := store.Artifact{Name: filepath.Base(p), Format: "solver"}
		if st, err := os.Stat(p); err == nil {
			a.Bytes = st.Size()
		}
		fmt.Sscanf(a.Name, "ckpt_%f.v6d", &a.Clock)
		if f, err := os.Open(p); err == nil {
			if v, _, ok := snapio.Probe(f); ok {
				a.Format = fmt.Sprintf("snapio-v%d", v)
			}
			f.Close()
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// jobCheckpointDir resolves a job's checkpoint directory, or "" when the
// server does not checkpoint. The name comes from the recorded terminal
// result when the stream's bounded history has already evicted its record
// (the snapshot then reads as a zero value, whose empty name would
// silently resolve to the wrong directory).
func (s *Server) jobCheckpointDir(e *jobEntry, js sched.JobSnapshot) string {
	if s.cfg.CheckpointDir == "" {
		return ""
	}
	name := js.Name
	s.mu.Lock()
	if e.result != nil {
		name = e.result.Name
	}
	s.mu.Unlock()
	if name == "" {
		return ""
	}
	return sched.JobCheckpointDir(s.cfg.CheckpointDir, name)
}

// handleCheckpoints lists a job's snapshot artifacts, oldest first. For an
// evicted job the listing answers from the artifact index — the record of
// what the run left behind at terminal time — without touching the
// filesystem.
func (s *Server) handleCheckpoints(w http.ResponseWriter, r *http.Request) {
	e, js, ie, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if ie != nil {
		arts := ie.Artifacts
		if arts == nil {
			arts = []store.Artifact{}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"job": ie.Name, "archived": true, "checkpoints": arts,
		})
		return
	}
	dir := s.jobCheckpointDir(e, js)
	if dir == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: checkpointing disabled"))
		return
	}
	infos, err := collectArtifacts(dir)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	name := js.Name
	s.mu.Lock()
	if e.result != nil {
		name = e.result.Name
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"job": name, "checkpoints": infos})
}

// handleCheckpointFile downloads one artifact. The file name is validated
// against the checkpoint naming scheme — this endpoint serves snapshots,
// not the filesystem.
func (s *Server) handleCheckpointFile(w http.ResponseWriter, r *http.Request) {
	e, js, ie, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var dir string
	if ie != nil {
		// Evicted job: the index remembers the name that keys the
		// checkpoint directory, and the files themselves outlive eviction.
		if s.cfg.CheckpointDir != "" && ie.Name != "" {
			dir = sched.JobCheckpointDir(s.cfg.CheckpointDir, ie.Name)
		}
	} else {
		dir = s.jobCheckpointDir(e, js)
	}
	if dir == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: checkpointing disabled"))
		return
	}
	name := r.PathValue("file")
	if !strings.HasPrefix(name, "ckpt_") || !strings.HasSuffix(name, ".v6d") ||
		strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: %q is not a checkpoint file name", name))
		return
	}
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("serve: no checkpoint %q", name))
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name))
	http.ServeContent(w, r, name, time.Time{}, f)
}
