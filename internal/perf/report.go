package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
)

// Result is one measured run of a spec.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
	BytesOp  int64   `json:"bytes_op"`
	MBs      float64 `json:"mb_s,omitempty"`
	Gflops   float64 `json:"gflops,omitempty"`
}

// Entry pairs a spec with its measurement and, when a prior report is
// supplied, the number it is being compared against.
type Entry struct {
	Name    string  `json:"name"`
	Legacy  string  `json:"legacy,omitempty"`
	Steady  bool    `json:"steady"`
	Before  *Result `json:"before,omitempty"`
	After   Result  `json:"after"`
	Speedup float64 `json:"speedup,omitempty"`
}

// Report is the committed benchmark trajectory artifact (BENCH_*.json).
type Report struct {
	Label      string  `json:"label,omitempty"`
	GoVersion  string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Benches    []Entry `json:"benches"`
}

// NewReport captures the runtime environment for a fresh report.
func NewReport(label string) *Report {
	return &Report{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// RunSpec measures a spec with the standard testing benchmark driver
// (honours the test.benchtime flag) and converts the result.
func RunSpec(s Spec) (Result, error) {
	r := testing.Benchmark(s.Bench)
	if r.N == 0 {
		return Result{}, fmt.Errorf("perf: bench %s failed (zero iterations)", s.Name)
	}
	res := Result{
		NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		res.MBs = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	if g, ok := r.Extra["Gflops"]; ok {
		res.Gflops = g
	}
	return res, nil
}

// Merge attaches before-numbers from a prior report: each entry whose name
// appears in prev gets prev's After as its Before, plus a speedup ratio.
func (r *Report) Merge(prev *Report) {
	byName := make(map[string]Result, len(prev.Benches))
	for _, e := range prev.Benches {
		byName[e.Name] = e.After
	}
	for i := range r.Benches {
		e := &r.Benches[i]
		if before, ok := byName[e.Name]; ok {
			b := before
			e.Before = &b
			if e.After.NsOp > 0 {
				e.Speedup = b.NsOp / e.After.NsOp
			}
		}
	}
}

// Sort orders entries by name for stable diffs.
func (r *Report) Sort() {
	sort.Slice(r.Benches, func(i, j int) bool { return r.Benches[i].Name < r.Benches[j].Name })
}

// LoadReport reads a report JSON file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return &r, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
