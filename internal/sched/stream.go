// The stream layer: a long-lived, channel-fed scheduler over the same
// worker pool and job executor as the batch layer. Where RunBatch takes a
// fixed slice and returns when it is done, a Stream accepts Submit calls
// for as long as it is open — the shape of a service that feeds simulation
// work to a pool continuously, the ROADMAP's "scheduler job streams" item.
package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"vlasov6d/internal/runner"
)

// ErrStreamClosed is returned by Submit after Close.
var ErrStreamClosed = errors.New("sched: stream closed")

// Stream is a long-lived scheduler fed one Submit at a time. Construct
// with NewStream; the worker pool starts immediately and dispatches from a
// priority heap (higher Job.Priority first, submission order within a
// priority).
//
// Lifecycle:
//
//   - Submit enqueues a job; it fails with ErrStreamClosed after Close and
//     with the context error once the stream's context is cancelled.
//   - Close stops intake. Workers drain everything already queued, then the
//     Results channel closes — the graceful shutdown of a service.
//   - Cancelling the context stops running jobs through the runner's own
//     cancellation path, reports still-queued jobs Cancelled, and then
//     closes Results — the fast shutdown. No goroutines are left behind in
//     either case.
//
// Results must be consumed: workers deliver to the Results channel and
// will block (a natural back-pressure) if nobody reads it. Retries,
// per-job checkpoint directories and auto-resume follow the scheduler
// options exactly as in the batch layer (see the package comment).
type Stream struct {
	opts options
	ctx  context.Context
	// budget is the stream-lifetime core budget (nil without
	// WithCoreBudget): the live-job set it divides over churns with every
	// dispatch and completion.
	budget *CoreBudget

	mu      sync.Mutex
	cond    *sync.Cond
	pending jobHeap
	closed  bool
	seq     int
	// active holds the sanitised checkpoint keys of queued + running jobs
	// (only under WithJobCheckpoints): two live jobs sharing a key would
	// silently cross-resume, so Submit rejects the second. Re-submitting a
	// key after its job finishes is allowed — that is the resume path.
	active map[string]bool
	// jobs records every submission by id for Snapshot/Job/Cancel — the
	// status surface a control plane polls. Terminal records are kept as
	// history (a service reports the recent past, not just the live set)
	// up to the WithJobHistory bound; beyond it the oldest terminal
	// records are evicted so an always-on stream's memory stays bounded.
	jobs map[int]*jobRecord
	// terminal lists terminal record ids oldest-first — the eviction queue.
	terminal []int

	notifyMu sync.Mutex

	results chan Result
	done    chan struct{} // closed after all workers exit and results closes
}

// streamJob is one queued submission: the job, its submission sequence
// number (the FIFO tiebreak within a priority and the Update index), and
// the wall time it entered the queue (the start of its "queue" phase).
type streamJob struct {
	job Job
	seq int
	at  time.Time
}

// jobRecord tracks one submission's lifecycle for the status surface. The
// per-job context is derived from the stream's at Submit time; Cancel fires
// it, which stops the job wherever it is — still queued (the worker that
// eventually pops it reports Cancelled without running it) or mid-run
// (the runner's own cancellation path unwinds it between steps).
type jobRecord struct {
	name     string
	priority int
	until    float64
	status   Status
	attempt  int
	err      error
	cancel   context.CancelFunc
	ctx      context.Context
	// keyFreed marks the checkpoint key released. Cancelling a queued job
	// frees its key immediately (so the name is resubmittable before a
	// worker pops the stale entry), and the flag keeps the eventual pop
	// from releasing the key a *resubmitted* job now holds.
	keyFreed bool
}

// JobSnapshot is one submission's point-in-time state, as reported by
// Snapshot and Job.
type JobSnapshot struct {
	// ID is the submission id (SubmitID's return, Update.Index, Result.ID).
	ID int
	// Name echoes the job name.
	Name string
	// Priority echoes the job's dispatch priority.
	Priority int
	// Until echoes the job's clock target — the denominator a monitoring
	// plane needs to turn observed clock progress into an ETA.
	Until float64
	// Status is the lifecycle state. A cancelled-while-queued job reports
	// Cancelled as soon as Cancel is called, even though its Result is
	// delivered only when a worker pops it from the queue.
	Status Status
	// Attempt is the 1-based attempt the status belongs to (0 while
	// queued).
	Attempt int
	// Err is the most recent failure (Failed, Retrying) or cancellation
	// error, nil otherwise.
	Err error
}

// jobHeap is a max-heap on Priority with FIFO order within a priority.
type jobHeap []*streamJob

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*streamJob)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// NewStream starts a stream scheduler: `workers` goroutines (default
// GOMAXPROCS) pulling from the priority queue until Close drains it or ctx
// cancels it. The options are the same as RunBatch's; WithWallClock
// anchors the shared budget at NewStream time.
func NewStream(ctx context.Context, opts ...Option) (*Stream, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	workers := o.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var deadline time.Time
	if o.wall > 0 {
		deadline = time.Now().Add(o.wall)
	}
	s := &Stream{
		opts:    o,
		ctx:     ctx,
		jobs:    make(map[int]*jobRecord),
		results: make(chan Result),
		done:    make(chan struct{}),
	}
	if o.ckptDir != "" {
		s.active = make(map[string]bool)
	}
	if o.budgetSet {
		s.budget = NewCoreBudget(o.budget)
	}
	s.cond = sync.NewCond(&s.mu)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.work(deadline)
		}()
	}
	go func() {
		wg.Wait()
		close(s.results)
		close(s.done)
	}()
	// Cancellation must wake workers parked on the condvar. The watcher
	// exits with the pool, so an uncancelled long-lived stream does not
	// leak it past Close.
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-s.done:
		}
	}()
	return s, nil
}

// Submit enqueues a job for dispatch. It returns ErrStreamClosed after
// Close, the context error once the stream's context is cancelled, and a
// validation error for a job without a factory or (under
// WithJobCheckpoints) a checkpoint key already queued or running. Safe for
// concurrent use.
func (s *Stream) Submit(job Job) error {
	_, err := s.SubmitID(job)
	return err
}

// SubmitID is Submit returning the submission id: the handle Cancel, Job
// and Result.ID identify this submission by. Ids are assigned in
// submission order starting at zero and are never reused.
func (s *Stream) SubmitID(job Job) (int, error) {
	if err := job.validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStreamClosed
	}
	if err := s.ctx.Err(); err != nil {
		return 0, fmt.Errorf("sched: stream context cancelled: %w", err)
	}
	if s.active != nil {
		key := sanitizeJobName(job.Name)
		if s.active[key] {
			return 0, fmt.Errorf("sched: job %q: checkpoint key %q already queued or running", job.Name, key)
		}
		s.active[key] = true
	}
	id := s.seq
	jctx, jcancel := context.WithCancel(s.ctx)
	s.jobs[id] = &jobRecord{
		name:     job.Name,
		priority: job.Priority,
		until:    job.Until,
		status:   Queued,
		ctx:      jctx,
		cancel:   jcancel,
	}
	heap.Push(&s.pending, &streamJob{job: job, seq: id, at: time.Now()})
	s.seq++
	s.cond.Signal()
	return id, nil
}

// Cancel stops one submission by id: a queued job is reported Cancelled
// without ever constructing its solver (its Result is delivered when a
// worker pops it from the queue), a running job is stopped through the
// runner's own cancellation path at its next step boundary. Cancel reports
// whether it took effect — false for an unknown id or a job already in a
// terminal state. Cancelling a job during retry backoff cancels the retry.
func (s *Stream) Cancel(id int) bool {
	s.mu.Lock()
	rec, ok := s.jobs[id]
	if !ok || isTerminal(rec.status) || rec.ctx.Err() != nil {
		s.mu.Unlock()
		return false
	}
	// A still-queued job's checkpoint key frees now, not when a worker
	// eventually pops the stale heap entry: the cancellation is decided,
	// so the name must be immediately resubmittable.
	if rec.status == Queued {
		s.freeKeyLocked(rec)
	}
	cancel := rec.cancel
	s.mu.Unlock()
	// Fire outside the lock: the watcher goroutines context cancellation
	// wakes may themselves take s.mu.
	cancel()
	return true
}

// freeKeyLocked releases a record's checkpoint key exactly once. Callers
// hold s.mu.
func (s *Stream) freeKeyLocked(rec *jobRecord) {
	if s.active == nil || rec.keyFreed {
		return
	}
	rec.keyFreed = true
	delete(s.active, sanitizeJobName(rec.name))
}

// retireLocked enrols a now-terminal record in the history queue and
// evicts the oldest terminal records past the WithJobHistory bound.
// Callers hold s.mu.
func (s *Stream) retireLocked(id int) {
	s.terminal = append(s.terminal, id)
	for len(s.terminal) > s.opts.history {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
}

// isTerminal reports whether a status is final.
func isTerminal(st Status) bool {
	return st == Done || st == Failed || st == Cancelled
}

// snapshotLocked builds the external view of one record. A still-queued
// job whose per-job context is already cancelled reports Cancelled: the
// cancellation is decided, only its Result delivery waits for a worker.
func (r *jobRecord) snapshotLocked(id int) JobSnapshot {
	st := r.status
	if st == Queued && r.ctx.Err() != nil {
		st = Cancelled
	}
	return JobSnapshot{ID: id, Name: r.name, Priority: r.priority, Until: r.until,
		Status: st, Attempt: r.attempt, Err: r.err}
}

// Snapshot returns the point-in-time state of every retained submission
// (every live job plus up to WithJobHistory terminal ones), ordered by id —
// the per-job view a control plane serves from. Safe for concurrent use
// with Submit, Cancel and running workers.
func (s *Stream) Snapshot() []JobSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobSnapshot, 0, len(s.jobs))
	for id, rec := range s.jobs {
		out = append(out, rec.snapshotLocked(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Job returns the point-in-time state of one submission by id.
func (s *Stream) Job(id int) (JobSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return JobSnapshot{}, false
	}
	return rec.snapshotLocked(id), true
}

// Budget returns the stream's core budget (nil without WithCoreBudget) —
// the live Total/Held/Live counters a service exports as metrics.
func (s *Stream) Budget() *CoreBudget {
	return s.budget
}

// Close stops intake. Already-queued jobs still run to completion (drain);
// once the queue empties the workers exit and Results closes. Close is
// idempotent and returns immediately — wait on Results for the drain.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Results returns the delivery channel: one Result per submitted job, in
// completion order. It closes after Close (once the queue drains) or after
// context cancellation (once queued jobs are flushed as Cancelled).
func (s *Stream) Results() <-chan Result {
	return s.results
}

// Pending returns the number of submitted jobs not yet picked up by a
// worker — the queue depth a service monitors.
func (s *Stream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Submitted returns the number of jobs accepted by Submit so far.
func (s *Stream) Submitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// work is one pool goroutine: pop the highest-priority job, execute it
// (with the shared retry/checkpoint executor), deliver its result; on
// cancellation flush the remaining queue as Cancelled.
func (s *Stream) work(deadline time.Time) {
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed && s.ctx.Err() == nil {
			s.cond.Wait()
		}
		if s.ctx.Err() != nil {
			// Fast shutdown: this worker flushes whatever is still queued
			// (the first worker in grabs everything; the rest see an empty
			// heap and exit).
			flush := s.pending
			s.pending = nil
			for _, sj := range flush {
				if rec, ok := s.jobs[sj.seq]; ok {
					rec.status = Cancelled
					rec.cancel()
					s.freeKeyLocked(rec)
					s.retireLocked(sj.seq)
				}
			}
			s.mu.Unlock()
			for _, sj := range flush {
				s.notify(Update{Index: sj.seq, Name: sj.job.Name, Status: Cancelled})
				s.results <- Result{ID: sj.seq, Name: sj.job.Name, Status: Cancelled}
			}
			return
		}
		if len(s.pending) == 0 { // closed and drained
			s.mu.Unlock()
			return
		}
		sj := heap.Pop(&s.pending).(*streamJob)
		s.mu.Unlock()
		s.runOne(sj, deadline)
	}
}

// runOne executes one popped job and delivers its terminal result. The job
// runs under its own context (derived from the stream's at Submit time), so
// Cancel(id) stops exactly this submission: before dispatch it short-cuts
// executeJob's entry check, mid-run it unwinds the runner between steps.
func (s *Stream) runOne(sj *streamJob, deadline time.Time) {
	s.mu.Lock()
	rec := s.jobs[sj.seq]
	s.mu.Unlock()
	// Release the per-job context's resources once the job is terminal; a
	// long-lived service submits indefinitely and each WithCancel context
	// otherwise stays parented to the stream context until shutdown.
	defer rec.cancel()
	var emit phaseEmitter
	if s.opts.phaseNotify != nil {
		emit = func(phase string, attempt int, start, end time.Time) {
			s.opts.phaseNotify(PhaseEvent{Index: sj.seq, Name: sj.job.Name,
				Phase: phase, Attempt: attempt, Start: start, End: end})
		}
		// The queue phase closed the moment the worker popped this job off
		// the heap (runOne is entered immediately after).
		emit("queue", 0, sj.at, time.Now())
	}
	executeJob(rec.ctx, &s.opts, s.budget, sj.job, deadline,
		func(st Status, attempt int, rep *runner.Report, err error) {
			s.mu.Lock()
			rec.status = st
			rec.attempt = attempt
			rec.err = err
			if isTerminal(st) {
				// Release the checkpoint key before delivery, so a consumer
				// reacting to the result can immediately re-submit the job.
				s.freeKeyLocked(rec)
				s.retireLocked(sj.seq)
			}
			s.mu.Unlock()
			s.notify(Update{Index: sj.seq, Name: sj.job.Name, Status: st,
				Attempt: attempt, Err: err, Report: rep})
			if isTerminal(st) {
				s.results <- Result{ID: sj.seq, Name: sj.job.Name, Status: st,
					Attempt: attempt, Report: rep, Err: err}
			}
		}, emit)
}

// notify serialises the WithNotify callback across workers, matching the
// batch layer's contract (the callback needs no locking of its own).
func (s *Stream) notify(u Update) {
	fn := s.opts.notify
	if fn == nil {
		return
	}
	s.notifyMu.Lock()
	fn(u)
	s.notifyMu.Unlock()
}
