package machine

import (
	"fmt"
	"io"
	"math"
)

// TTSConfig parameterises the §7.2 time-to-solution experiment: the H1024 /
// U1024 end-to-end runs from z = 10 to z = 0 on a 1200 h⁻¹Mpc box, compared
// with the TianNu N-body simulation (52 h on Tianhe-2).
type TTSConfig struct {
	// Steps is the number of global time steps from z=10 to z=0 (the
	// expansion cap Δln a ≈ 0.002 used at production accuracy gives ≈1100).
	Steps int
	// IOBandwidth is the aggregate filesystem bandwidth (bytes/s); Fugaku's
	// first-level storage delivers O(1) TB/s to full-system jobs.
	IOBandwidth float64
	// Snapshots counts full phase-space dumps.
	Snapshots int
}

// DefaultTTS matches the paper's setup.
func DefaultTTS() TTSConfig {
	return TTSConfig{Steps: 1100, IOBandwidth: 1.2e12, Snapshots: 2}
}

// TianNuHours is the published TianNu wall-clock time (52 h, §4).
const TianNuHours = 52.0

// TTSResult is the modelled end-to-end time of a run.
type TTSResult struct {
	Run             Run
	ExecSec         float64
	IOSec           float64
	TotalH          float64
	SpeedupVsTianNu float64
}

// TimeToSolution models the end-to-end wall time of a Table 2 run.
func (m *Model) TimeToSolution(r Run, cfg TTSConfig) TTSResult {
	if cfg.Steps <= 0 {
		cfg = DefaultTTS()
	}
	b := m.Step(r)
	exec := b.Total * float64(cfg.Steps)
	bytes := r.PhaseCells()*m.P.BytesPerPhaseCell + r.Particles()*m.P.BytesPerParticle
	io := float64(cfg.Snapshots) * bytes / cfg.IOBandwidth
	tot := (exec + io) / 3600
	return TTSResult{
		Run:             r,
		ExecSec:         exec,
		IOSec:           io,
		TotalH:          tot,
		SpeedupVsTianNu: TianNuHours / tot,
	}
}

// PaperTTS holds the published end-to-end times.
var PaperTTS = map[string]struct {
	ExecSec, IOSec  float64
	SpeedupVsTianNu float64
}{
	"H1024": {6183, 733, 27},
	"U1024": {20342, 782, 8.9},
}

// EffectiveResolution evaluates the paper's eq. (9): the spatial resolution
// ΔL of an N-body neutrino simulation with nuSide³ particles (TianNu:
// 13824³ including the 8× oversampling) smoothed to reach signal-to-noise
// snr, as a fraction of the box size L: ΔL = L·snr^{2/3}/nuSide.
func EffectiveResolution(boxL float64, nuSide int, snr float64) float64 {
	return boxL * math.Pow(snr, 2.0/3.0) / float64(nuSide)
}

// EquivalentGridSide inverts eq. (9): the Vlasov grid side whose cell size
// equals the N-body effective resolution at the given S/N.
func EquivalentGridSide(nuSide int, snr float64) float64 {
	return float64(nuSide) / math.Pow(snr, 2.0/3.0)
}

// WriteTTS renders the §7.2 comparison.
func (m *Model) WriteTTS(w io.Writer, cfg TTSConfig) {
	fmt.Fprintln(w, "§7.2 time-to-solution (model vs paper), TianNu reference = 52 h")
	fmt.Fprintf(w, "%-8s %12s %10s %10s %14s\n", "run", "exec [s]", "I/O [s]", "total [h]", "speedup")
	for _, id := range []string{"H1024", "U1024"} {
		r, err := FindRun(id)
		if err != nil {
			continue
		}
		res := m.TimeToSolution(r, cfg)
		p := PaperTTS[id]
		fmt.Fprintf(w, "%-8s %7.0f (%5.0f) %5.0f (%3.0f) %10.2f %6.1f× (%4.1f×)\n",
			id, res.ExecSec, p.ExecSec, res.IOSec, p.IOSec, res.TotalH,
			res.SpeedupVsTianNu, p.SpeedupVsTianNu)
	}
	fmt.Fprintln(w, "\neq. (9) effective resolution of TianNu (13824³ ν particles):")
	for _, snr := range []float64{100, 50} {
		side := EquivalentGridSide(13824, snr)
		fmt.Fprintf(w, "  S/N = %3.0f → ΔL = L/%.0f\n", snr, side)
	}
}
