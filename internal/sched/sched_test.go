package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vlasov6d/internal/runner"
)

// fake is a minimal Solver: clock = time, constant dt, optional per-step
// sleep and hook.
type fake struct {
	t, dt  float64
	sleep  time.Duration
	onStep func()
}

func (f *fake) Step(dt float64) error {
	if f.onStep != nil {
		f.onStep()
	}
	if f.sleep > 0 {
		time.Sleep(f.sleep)
	}
	f.t += dt
	return nil
}
func (f *fake) SuggestDT() float64 { return f.dt }
func (f *fake) Clock() float64     { return f.t }
func (f *fake) Diagnostics() runner.Diagnostics {
	return runner.Diagnostics{Clock: f.t, Time: f.t, Mass: 1}
}

func TestBatchRunsAllJobsInOrder(t *testing.T) {
	var jobs []Job
	for i := 0; i < 6; i++ {
		i := i
		jobs = append(jobs, Job{
			Name:  fmt.Sprintf("job-%d", i),
			Until: float64(i + 1),
			New:   func() (runner.Solver, error) { return &fake{dt: 0.5}, nil },
		})
	}
	results, err := RunBatch(context.Background(), jobs, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Name != fmt.Sprintf("job-%d", i) {
			t.Fatalf("result %d is %q: order not deterministic", i, r.Name)
		}
		if r.Status != Done || r.Err != nil {
			t.Fatalf("job %d: %v %v", i, r.Status, r.Err)
		}
		if r.Report == nil || r.Report.Reason != runner.ReasonUntil {
			t.Fatalf("job %d report %+v", i, r.Report)
		}
		// until = i+1 at dt = 0.5 → 2(i+1) steps.
		if want := 2 * (i + 1); r.Report.Steps != want {
			t.Fatalf("job %d took %d steps, want %d", i, r.Report.Steps, want)
		}
	}
}

func TestWorkerPoolBound(t *testing.T) {
	const workers = 2
	var live, peak atomic.Int64
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job{
			Name:  fmt.Sprintf("j%d", i),
			Until: 1,
			New: func() (runner.Solver, error) {
				return &fake{dt: 0.2, onStep: func() {
					n := live.Add(1)
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					time.Sleep(time.Millisecond) // hold the slot so overlap is observable
					live.Add(-1)
				}}, nil
			},
		})
	}
	results, err := RunBatch(context.Background(), jobs, WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Status != Done {
			t.Fatalf("job %d: %v", i, r.Status)
		}
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("%d jobs stepped concurrently, pool bound is %d", p, workers)
	}
}

func TestCancellationMidBatchStopsQueuedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var factoryCalls atomic.Int64
	jobs := []Job{
		{
			Name:  "canceller",
			Until: 1e9,
			New: func() (runner.Solver, error) {
				factoryCalls.Add(1)
				return &fake{dt: 0.1}, nil
			},
			Opts: []runner.Option{runner.WithObserver(func(step int, _ runner.Solver) error {
				if step == 1 {
					cancel()
				}
				return nil
			})},
		},
	}
	for i := 0; i < 4; i++ {
		jobs = append(jobs, Job{
			Name:  fmt.Sprintf("queued-%d", i),
			Until: 1e9,
			New: func() (runner.Solver, error) {
				factoryCalls.Add(1)
				return &fake{dt: 0.1}, nil
			},
		})
	}
	results, err := RunBatch(ctx, jobs, WithWorkers(1))
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error %v, want wrapped context.Canceled", err)
	}
	if results[0].Status != Cancelled {
		t.Fatalf("running job status %v", results[0].Status)
	}
	if results[0].Report == nil || results[0].Report.Steps != 2 {
		t.Fatalf("running job lost its partial progress: %+v", results[0].Report)
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("running job err %v", results[0].Err)
	}
	for i, r := range results[1:] {
		if r.Status != Cancelled {
			t.Fatalf("queued job %d status %v, want Cancelled", i, r.Status)
		}
		if r.Report != nil || r.Err != nil {
			t.Fatalf("queued job %d ran: %+v", i, r)
		}
	}
	// Queued jobs must never have constructed their solvers. At most the
	// canceller plus one job the single worker may have dequeued before the
	// dispatcher noticed the cancellation.
	if n := factoryCalls.Load(); n > 2 {
		t.Fatalf("%d factories called after cancellation", n)
	}
}

func TestSharedWallClockFansOutFairly(t *testing.T) {
	// One worker, four jobs whose steps sleep, and a budget one job could
	// exhaust alone: every job must still take at least one step (the
	// runner's forward-progress guarantee fans out through the batch
	// deadline), rather than the first job starving the tail.
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{
			Name:  fmt.Sprintf("fair-%d", i),
			Until: 1e9,
			New: func() (runner.Solver, error) {
				return &fake{dt: 0.1, sleep: 5 * time.Millisecond}, nil
			},
		}
	}
	results, err := RunBatch(context.Background(), jobs,
		WithWorkers(1), WithWallClock(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Status != Done {
			t.Fatalf("job %d: %v (%v)", i, r.Status, r.Err)
		}
		if r.Report.Steps < 1 {
			t.Fatalf("job %d starved: %d steps", i, r.Report.Steps)
		}
		if r.Report.Reason != runner.ReasonWallClock {
			t.Fatalf("job %d reason %v, want wall-clock", i, r.Report.Reason)
		}
	}
	// The tail job started past the deadline and is clamped to the minimum
	// budget: exactly one step.
	if last := results[len(results)-1]; last.Report.Steps != 1 {
		t.Fatalf("tail job took %d steps under an exhausted budget", last.Report.Steps)
	}
}

func TestJobFailureDoesNotAbortBatch(t *testing.T) {
	sentinel := errors.New("factory boom")
	jobs := []Job{
		{Name: "bad", Until: 1, New: func() (runner.Solver, error) { return nil, sentinel }},
		{Name: "good", Until: 1, New: func() (runner.Solver, error) { return &fake{dt: 0.5}, nil }},
	}
	results, err := RunBatch(context.Background(), jobs, WithWorkers(1))
	if err != nil {
		t.Fatalf("batch error %v; a job failure must not abort the batch", err)
	}
	if results[0].Status != Failed || !errors.Is(results[0].Err, sentinel) {
		t.Fatalf("bad job: %v %v", results[0].Status, results[0].Err)
	}
	if results[1].Status != Done {
		t.Fatalf("good job: %v", results[1].Status)
	}
}

func TestNotifyReportsTransitions(t *testing.T) {
	var mu sync.Mutex
	got := map[string][]Status{}
	jobs := []Job{
		{Name: "a", Until: 1, New: func() (runner.Solver, error) { return &fake{dt: 0.5}, nil }},
		{Name: "b", Until: 1, New: func() (runner.Solver, error) { return nil, errors.New("x") }},
	}
	_, err := RunBatch(context.Background(), jobs, WithWorkers(2),
		WithNotify(func(u Update) {
			mu.Lock()
			got[u.Name] = append(got[u.Name], u.Status)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if want := []Status{Running, Done}; !statusSeqEq(got["a"], want) {
		t.Fatalf("job a transitions %v, want %v", got["a"], want)
	}
	if want := []Status{Running, Failed}; !statusSeqEq(got["b"], want) {
		t.Fatalf("job b transitions %v, want %v", got["b"], want)
	}
}

func statusSeqEq(a, b []Status) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBatchValidation(t *testing.T) {
	if _, err := RunBatch(context.Background(), nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := RunBatch(context.Background(), []Job{{Name: "x", Until: 1}}); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := New(WithWorkers(-1)); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := New(WithWallClock(-time.Second)); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Queued: "queued", Running: "running", Done: "done",
		Failed: "failed", Cancelled: "cancelled", Status(99): "status(99)",
	} {
		if s.String() != want {
			t.Fatalf("%d → %q, want %q", s, s.String(), want)
		}
	}
}
