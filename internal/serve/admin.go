// The live-administration tier of the control plane: hot key reload,
// the admission audit trail, and per-tenant checkpoint-storage quotas.
//
// The tenant registry lives behind an atomic pointer. The key file is
// re-read on SIGHUP (cmd/vlasovd) or POST /v1/admin/reload (an admin
// tenant); a file that parses and validates swaps in atomically — new
// requests see the new keys and quotas immediately, while running jobs
// keep the tenant identity they were admitted under. A file that fails
// validation is rejected wholesale: the old registry stays live, because
// a half-applied key rotation is worse than a late one.
//
// Every admission decision — accept, 401, 403, 429, 503 — lands in the
// store's append-only audit log (audit.v6da) and in the
// vlasovd_admission_total{tenant,outcome} counter, so "why was my job
// refused at 3am" is answerable from disk, not from memory of a process
// that may have restarted since.
//
// Storage quotas ride the checkpoint-notify path: each snapshot write
// re-measures the job's checkpoint directory (the runner prunes its own
// keep-N window, so measuring beats bookkeeping), and a tenant over its
// max_storage_bytes has its oldest snapshots evicted — never the newest
// snapshot of a live job, that is the resume floor — until it fits. A
// tenant whose floor alone exceeds the quota has the triggering job
// journaled failed with an explanatory error.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"vlasov6d/internal/catalog"
	"vlasov6d/internal/runner"
	"vlasov6d/internal/store"
	"vlasov6d/internal/tenant"
)

// admKey keys the vlasovd_admission_total counter: one series per
// (tenant, outcome) pair, where outcome is "accept" or the refusing
// status code as a string.
type admKey struct {
	tenant, outcome string
}

// registry returns the live tenant registry — the hot-reloadable view
// every lookup must go through. Nil means the daemon runs open (no
// tenancy was configured at start; a reload cannot turn tenancy on).
func (s *Server) registry() *tenant.Registry {
	return s.tenants.Load()
}

// ReloadKeys re-reads the configured key file and swaps the registry
// atomically. Validation failures reject the whole file: the old
// registry stays live and the error is returned (and audited). Running
// and queued jobs are untouched either way — they carry their admitted
// tenant identity; only future requests see the new keys and quotas.
func (s *Server) ReloadKeys() (int, error) { return s.reloadKeys("") }

// reloadKeys is ReloadKeys with the acting principal recorded in the
// audit log ("" for a signal-driven reload, which has no tenant).
func (s *Server) reloadKeys(actor string) (int, error) {
	if s.registry() == nil || s.cfg.KeysPath == "" {
		return 0, fmt.Errorf("serve: no reloadable key file (daemon started without tenancy)")
	}
	reg, err := tenant.Load(s.cfg.KeysPath)
	if err != nil {
		s.mu.Lock()
		s.reloadsFailed++
		s.mu.Unlock()
		s.auditAppend(store.AuditRecord{Tenant: actor, Outcome: "reload_failed", Reason: err.Error()})
		return 0, err
	}
	s.tenants.Store(reg)
	s.mu.Lock()
	s.reloads++
	s.mu.Unlock()
	s.auditAppend(store.AuditRecord{
		Tenant:  actor,
		Outcome: "reload",
		Reason:  fmt.Sprintf("%d tenants from %s", len(reg.Tenants()), s.cfg.KeysPath),
	})
	return len(reg.Tenants()), nil
}

// handleAdminReload is POST /v1/admin/reload: the HTTP face of
// ReloadKeys, gated on the authenticated tenant's admin capability. An
// unreadable or invalid key file is 422 — the caller's rotation is
// broken and the old keys are still live, which the body says outright.
func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	tn, authed := tenant.FromContext(r.Context())
	if !authed {
		// Open mode has no admin surface: there is nothing to rotate.
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: no tenancy configured"))
		return
	}
	if !tn.Admin {
		s.recordAdmission(tn.Name, "403", "admin capability required for /v1/admin/reload", "", 0)
		writeErr(w, http.StatusForbidden, fmt.Errorf("serve: tenant %q is not an admin", tn.Name))
		return
	}
	n, err := s.reloadKeys(tn.Name)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity,
			fmt.Errorf("serve: key file rejected, previous registry stays live: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"reloaded": true, "tenants": n})
}

// auditAppend stamps and writes one audit record; a no-op without a
// store (the audit log shares the journal's directory and durability).
func (s *Server) auditAppend(rec store.AuditRecord) {
	if s.audit == nil {
		return
	}
	rec.UnixNano = time.Now().UnixNano()
	s.audit.Append(rec)
}

// recordAdmission counts one admission decision for /metrics and appends
// it to the audit log. Callers must NOT hold s.mu.
func (s *Server) recordAdmission(tenantName, outcome, reason, specHash string, jobID int) {
	s.mu.Lock()
	s.admission[admKey{tenantName, outcome}]++
	s.mu.Unlock()
	s.auditAppend(store.AuditRecord{
		Tenant:   tenantName,
		Outcome:  outcome,
		Reason:   reason,
		SpecHash: specHash,
		JobID:    jobID,
	})
}

// specHashOf is the SHA-256 hex of the spec's canonical bytes — the same
// bytes the journal persists, so an audit entry's hash can be matched
// against the journaled submission it admitted.
func specHashOf(spec catalog.JobSpec) string {
	raw, err := spec.Canonical()
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// scanCheckpointBytes sums the checkpoint files under one job's
// directory (0 on any listing error — quota accounting degrades open,
// never blocks a healthy job on a transient stat failure).
func scanCheckpointBytes(dir string) int64 {
	paths, err := runner.ListCheckpoints(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, p := range paths {
		if st, err := os.Stat(p); err == nil {
			total += st.Size()
		}
	}
	return total
}

// noteCheckpoint runs on the runner's checkpoint-notify goroutine after
// the write is journaled: re-measure the job's directory (the runner
// prunes its own keep-N window, so measuring self-corrects where delta
// bookkeeping would drift), fold the change into the tenant's tracked
// total, and enforce the tenant's storage quota when one is set.
func (s *Server) noteCheckpoint(e *jobEntry) {
	s.mu.Lock()
	dir, tenantName := e.ckptDir, e.tenant
	s.mu.Unlock()
	if dir == "" {
		return
	}
	bytes := scanCheckpointBytes(dir)
	s.mu.Lock()
	s.storage[tenantName] += bytes - e.ckptBytes
	e.ckptBytes = bytes
	total := s.storage[tenantName]
	s.mu.Unlock()
	reg := s.registry()
	if reg == nil || tenantName == "" {
		return
	}
	// Quotas come from the LIVE registry: a reload that tightens (or
	// grants) max_storage_bytes applies to the very next snapshot.
	tn, ok := reg.ByName(tenantName)
	if !ok || tn.MaxStorageBytes <= 0 || total <= tn.MaxStorageBytes {
		return
	}
	s.enforceStorageQuota(e, tn)
}

// enforceStorageQuota brings one over-quota tenant back under
// max_storage_bytes: evict the tenant's oldest snapshots — across all
// its tracked jobs, oldest clock first — sparing each live job's newest
// snapshot (the resume floor). If the floor alone still exceeds the
// quota, the triggering job is journaled failed with an explanatory
// error and cancelled through the scheduler; its snapshots then stop
// growing and its peers keep their resume currency.
func (s *Server) enforceStorageQuota(trigger *jobEntry, tn *tenant.Tenant) {
	evictStart := time.Now()
	type tracked struct {
		e    *jobEntry
		dir  string
		live bool
	}
	s.mu.Lock()
	var jobs []tracked
	for _, e := range s.jobs {
		if e.tenant == tn.Name && e.ckptDir != "" {
			jobs = append(jobs, tracked{e: e, dir: e.ckptDir, live: e.result == nil && e.quotaErr == ""})
		}
	}
	s.mu.Unlock()

	// All file I/O happens off s.mu. ListCheckpoints returns name order,
	// and the fixed-width clock in each name makes name order clock
	// order — both within a job and, near enough for an eviction policy,
	// across the tenant's jobs.
	type snapshot struct {
		job   int // index into jobs
		path  string
		name  string
		bytes int64
	}
	var files []snapshot
	totals := make([]int64, len(jobs))
	protected := make(map[string]bool)
	var total int64
	for i := range jobs {
		paths, err := runner.ListCheckpoints(jobs[i].dir)
		if err != nil {
			continue
		}
		for _, p := range paths {
			st, err := os.Stat(p)
			if err != nil {
				continue
			}
			files = append(files, snapshot{job: i, path: p, name: filepath.Base(p), bytes: st.Size()})
			totals[i] += st.Size()
			total += st.Size()
		}
		if jobs[i].live && len(paths) > 0 {
			protected[paths[len(paths)-1]] = true
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].name < files[j].name })
	for _, f := range files {
		if total <= tn.MaxStorageBytes {
			break
		}
		if protected[f.path] {
			continue
		}
		if os.Remove(f.path) != nil {
			continue
		}
		total -= f.bytes
		totals[f.job] -= f.bytes
	}

	s.mu.Lock()
	var freed int64
	for i := range jobs {
		e := jobs[i].e
		freed += e.ckptBytes - totals[i]
		s.storage[tn.Name] += totals[i] - e.ckptBytes
		e.ckptBytes = totals[i]
	}
	failNow := s.storage[tn.Name] > tn.MaxStorageBytes &&
		trigger.result == nil && trigger.quotaErr == ""
	var sid int
	if failNow {
		trigger.quotaErr = fmt.Sprintf(
			"serve: tenant %q over storage quota (%d bytes) even after evicting old snapshots",
			tn.Name, tn.MaxStorageBytes)
		sid = trigger.sid
		if s.store != nil {
			s.store.Terminal(trigger.id, "failed", trigger.quotaErr)
		}
	}
	s.mu.Unlock()
	// The eviction lands in the triggering job's trace: quota enforcement
	// is wall time the tenant's snapshot pressure cost this job's pipeline.
	trigger.trace.Observe("quota_eviction", evictStart, time.Now(), map[string]string{
		"freed_bytes": strconv.FormatInt(freed, 10),
		"failed":      strconv.FormatBool(failNow),
	})
	if failNow {
		// The scheduler's cancel path stops the run; consumeResults sees
		// quotaErr and reports the job failed, not cancelled.
		s.stream.Cancel(sid)
	}
}
