package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fake is a minimal Solver: clock = time, constant suggested dt.
type fake struct {
	t     float64
	dt    float64
	steps int
	fail  int // step index (1-based count) at which Step errors, 0 = never
}

func (f *fake) Step(dt float64) error {
	if f.fail > 0 && f.steps+1 >= f.fail {
		return fmt.Errorf("fake: induced failure")
	}
	f.t += dt
	f.steps++
	return nil
}
func (f *fake) SuggestDT() float64 { return f.dt }
func (f *fake) Clock() float64     { return f.t }
func (f *fake) Diagnostics() Diagnostics {
	return Diagnostics{Clock: f.t, Time: f.t, Mass: 1}
}

// ckptFake additionally checkpoints its clock as 8 bytes.
type ckptFake struct{ fake }

func (c *ckptFake) Checkpoint(w io.Writer) (int64, error) {
	n, err := fmt.Fprintf(w, "%8.5f", c.t)
	return int64(n), err
}

func TestRunReachesTargetWithClamp(t *testing.T) {
	f := &fake{dt: 0.3}
	rep, err := Run(context.Background(), f, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != ReasonUntil {
		t.Fatalf("reason %v", rep.Reason)
	}
	// 0.3 + 0.3 + 0.3 + clamped 0.1.
	if rep.Steps != 4 {
		t.Fatalf("steps %d", rep.Steps)
	}
	if math.Abs(rep.Clock-1.0) > 1e-12 {
		t.Fatalf("clock %v", rep.Clock)
	}
	if rep.Wall <= 0 {
		t.Fatal("wall time not recorded")
	}
}

func TestRunMaxSteps(t *testing.T) {
	f := &fake{dt: 0.1}
	rep, err := Run(context.Background(), f, 100, WithMaxSteps(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != ReasonMaxSteps || rep.Steps != 3 {
		t.Fatalf("reason %v steps %d", rep.Reason, rep.Steps)
	}
}

func TestRunWallClockTakesAtLeastOneStep(t *testing.T) {
	f := &fake{dt: 0.1}
	rep, err := Run(context.Background(), f, 100, WithWallClock(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != ReasonWallClock {
		t.Fatalf("reason %v", rep.Reason)
	}
	if rep.Steps != 1 {
		t.Fatalf("steps %d, want exactly 1 under a 1ns budget", rep.Steps)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	f := &fake{dt: 0.1}
	rep, err := Run(ctx, f, 100, WithObserver(func(step int, s Solver) error {
		if step == 1 {
			cancel()
		}
		return nil
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if rep.Steps != 2 {
		t.Fatalf("partial progress %d steps, want 2", rep.Steps)
	}
	if rep.Reason != ReasonNone {
		t.Fatalf("reason %v", rep.Reason)
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, &fake{dt: 0.1}, 1)
	if !errors.Is(err, context.Canceled) || rep.Steps != 0 {
		t.Fatalf("err %v steps %d", err, rep.Steps)
	}
}

func TestRunStepErrorPartialReport(t *testing.T) {
	f := &fake{dt: 0.1, fail: 3}
	rep, err := Run(context.Background(), f, 100)
	if err == nil {
		t.Fatal("induced step failure not propagated")
	}
	if rep.Steps != 2 {
		t.Fatalf("steps %d", rep.Steps)
	}
}

func TestRunObserverErrorAborts(t *testing.T) {
	sentinel := errors.New("stop now")
	f := &fake{dt: 0.1}
	_, err := Run(context.Background(), f, 100, WithObserver(func(int, Solver) error {
		return sentinel
	}))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err %v", err)
	}
}

func TestRunFixedDT(t *testing.T) {
	f := &fake{dt: 99} // SuggestDT must not be used
	rep, err := Run(context.Background(), f, 1.0, WithFixedDT(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 4 || math.Abs(rep.Clock-1.0) > 1e-12 {
		t.Fatalf("steps %d clock %v", rep.Steps, rep.Clock)
	}
}

func TestRunValidation(t *testing.T) {
	f := &fake{t: 5, dt: 0.1}
	if _, err := Run(context.Background(), f, 5); err == nil {
		t.Fatal("target ≤ clock accepted")
	}
	if _, err := Run(context.Background(), f, 6, WithFixedDT(-1)); err == nil {
		t.Fatal("negative fixed dt accepted")
	}
	if _, err := Run(context.Background(), f, 6, WithFixedDT(0)); err == nil {
		t.Fatal("explicit zero fixed dt accepted (would silently fall back to adaptive)")
	}
	if _, err := Run(context.Background(), f, 6, WithMaxSteps(-1)); err == nil {
		t.Fatal("negative max steps accepted")
	}
	if _, err := Run(context.Background(), f, 6, WithCheckpoint(t.TempDir(), 0)); err == nil {
		t.Fatal("zero checkpoint cadence accepted")
	}
	if _, err := Run(context.Background(), nil, 6); err == nil {
		t.Fatal("nil solver accepted")
	}
}

func TestRunCheckpointUnsupportedSolver(t *testing.T) {
	f := &fake{dt: 0.1}
	_, err := Run(context.Background(), f, 1, WithCheckpoint(t.TempDir(), 1))
	if err == nil {
		t.Fatal("checkpointing accepted for a solver without Checkpoint")
	}
}

func TestRunCheckpointCadence(t *testing.T) {
	dir := t.TempDir()
	f := &ckptFake{fake{dt: 0.1}}
	rep, err := Run(context.Background(), f, 100, WithMaxSteps(5), WithCheckpoint(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpoints) != 2 {
		t.Fatalf("checkpoints %v", rep.Checkpoints)
	}
	// Names are keyed to the monotone solver clock (not the per-Run step
	// counter), so a resumed run into the same directory cannot overwrite
	// the earlier segment's files.
	want := []string{
		filepath.Join(dir, "ckpt_00000.20000000.v6d"),
		filepath.Join(dir, "ckpt_00000.40000000.v6d"),
	}
	for i, p := range rep.Checkpoints {
		if p != want[i] {
			t.Fatalf("checkpoint %d = %s, want %s", i, p, want[i])
		}
		if _, err := os.Stat(p); err != nil {
			t.Fatal(err)
		}
	}
	if rep.CheckpointBytes != 16 {
		t.Fatalf("checkpoint bytes %d", rep.CheckpointBytes)
	}
	// No leftover temp files from the atomic write path.
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil || len(matches) != 0 {
		t.Fatalf("leftover temp files %v (err %v)", matches, err)
	}
}

func TestStopReasonString(t *testing.T) {
	for r, want := range map[StopReason]string{
		ReasonNone: "none", ReasonUntil: "until",
		ReasonMaxSteps: "max-steps", ReasonWallClock: "wall-clock",
	} {
		if r.String() != want {
			t.Fatalf("%d → %q, want %q", r, r.String(), want)
		}
	}
}
