package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// obsLog collects async observations thread-safely.
type obsLog struct {
	mu    sync.Mutex
	steps []int
	diags []Diagnostics
}

func (l *obsLog) observe(step int, d Diagnostics) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.steps = append(l.steps, step)
	l.diags = append(l.diags, d)
	return nil
}

func (l *obsLog) snapshot() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.steps...)
}

// capFake is a ckptFake whose state can be captured for off-thread
// serialisation: the capture closes over the clock value at capture time.
type capFake struct{ ckptFake }

func (c *capFake) CaptureCheckpoint() (func(io.Writer) (int64, error), error) {
	t := c.t
	return func(w io.Writer) (int64, error) {
		n, err := fmt.Fprintf(w, "%8.5f", t)
		return int64(n), err
	}, nil
}

func TestAsyncObserverDrainsOnNormalExit(t *testing.T) {
	var log obsLog
	f := &fake{dt: 0.1}
	rep, err := Run(context.Background(), f, 100, WithMaxSteps(10),
		WithAsyncObserver(log.observe))
	if err != nil {
		t.Fatal(err)
	}
	steps := log.snapshot()
	if len(steps) != 10 {
		t.Fatalf("observed %d steps, want all 10 delivered before Run returns", len(steps))
	}
	for i, s := range steps {
		if s != i {
			t.Fatalf("observation %d has step %d; want in-order delivery", i, s)
		}
	}
	if rep.DroppedObservations != 0 {
		t.Fatalf("dropped %d under Block policy", rep.DroppedObservations)
	}
	// The delivered diagnostics are value snapshots of each step's state.
	log.mu.Lock()
	defer log.mu.Unlock()
	for i, d := range log.diags {
		want := 0.1 * float64(i+1)
		if diff := d.Clock - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("observation %d clock %v, want %v", i, d.Clock, want)
		}
	}
}

func TestAsyncObserverDrainsOnCancel(t *testing.T) {
	var log obsLog
	ctx, cancel := context.WithCancel(context.Background())
	f := &fake{dt: 0.1}
	_, err := Run(ctx, f, 100,
		WithObserver(func(step int, _ Solver) error {
			if step == 4 {
				cancel()
			}
			return nil
		}),
		WithAsyncObserver(log.observe))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if steps := log.snapshot(); len(steps) != 5 {
		t.Fatalf("observed %d steps after cancel, want all 5 enqueued before it", len(steps))
	}
}

func TestAsyncObserverErrorAbortsRun(t *testing.T) {
	sentinel := errors.New("async stop")
	f := &fake{dt: 0.1}
	rep, err := Run(context.Background(), f, 1e9, WithAsyncObserver(
		func(step int, d Diagnostics) error {
			if step == 2 {
				return sentinel
			}
			return nil
		}))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err %v, want sentinel", err)
	}
	if rep.Steps < 3 || rep.Steps > 3+DefaultAsyncBuffer {
		t.Fatalf("run took %d steps; the abort should land within the queue depth", rep.Steps)
	}
}

func TestAsyncDropOldestNeverBlocksStepLoop(t *testing.T) {
	const steps = 20
	const delay = 5 * time.Millisecond
	slowObs := func(int, Solver) error { time.Sleep(delay); return nil }
	slowAsync := func(int, Diagnostics) error { time.Sleep(delay); return nil }

	// Synchronous baseline: the step loop pays the observer delay on every
	// step.
	f := &fake{dt: 0.1}
	repSync, err := Run(context.Background(), f, 1e9, WithMaxSteps(steps),
		WithObserver(slowObs))
	if err != nil {
		t.Fatal(err)
	}
	if repSync.Wall < steps*delay {
		t.Fatalf("sync run %v, must block for ≥ %v", repSync.Wall, steps*delay)
	}

	// Async with DropOldest: the hot loop only enqueues, so the run
	// completes in a fraction of the synchronous wall time even with the
	// same slow observer (the drain at exit pays at most buffer×delay).
	f = &fake{dt: 0.1}
	repAsync, err := Run(context.Background(), f, 1e9, WithMaxSteps(steps),
		WithAsyncObserver(slowAsync, WithAsyncBuffer(2), WithBackpressure(DropOldest)))
	if err != nil {
		t.Fatal(err)
	}
	if repAsync.Wall >= repSync.Wall/2 {
		t.Fatalf("async run %v not faster than half the sync run %v", repAsync.Wall, repSync.Wall)
	}
	if repAsync.DroppedObservations == 0 {
		t.Fatal("a 2-deep queue under a slow consumer must drop observations")
	}
	if repAsync.DroppedObservations >= steps {
		t.Fatalf("dropped %d of %d: nothing was delivered", repAsync.DroppedObservations, steps)
	}
}

func TestAsyncDropOldestKeepsOrder(t *testing.T) {
	var log obsLog
	block := make(chan struct{})
	first := true
	f := &fake{dt: 0.1}
	_, err := Run(context.Background(), f, 1e9, WithMaxSteps(30),
		// Release the pipeline from the hot loop at the last step, so the
		// exit drain (which waits for the observer) cannot deadlock.
		WithObserver(func(step int, _ Solver) error {
			if step == 29 {
				close(block)
			}
			return nil
		}),
		WithAsyncObserver(func(step int, d Diagnostics) error {
			if first {
				first = false
				<-block // hold the pipeline so the queue overflows
			}
			return log.observe(step, d)
		}, WithAsyncBuffer(4), WithBackpressure(DropOldest)))
	if err != nil {
		t.Fatal(err)
	}
	steps := log.snapshot()
	if len(steps) == 0 {
		t.Fatal("nothing delivered")
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] <= steps[i-1] {
			t.Fatalf("out-of-order delivery: %v", steps)
		}
	}
	if last := steps[len(steps)-1]; last != 29 {
		t.Fatalf("last delivered step %d; drop-oldest must keep the newest", last)
	}
}

func TestAsyncCheckpointRidesPipeline(t *testing.T) {
	dir := t.TempDir()
	f := &capFake{ckptFake{fake{dt: 0.1}}}
	rep, err := Run(context.Background(), f, 100, WithMaxSteps(6),
		WithCheckpoint(dir, 2),
		WithAsyncObserver(nil)) // checkpoint-only pipeline
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpoints) != 3 {
		t.Fatalf("checkpoints %v, want 3 at cadence 2 over 6 steps", rep.Checkpoints)
	}
	// Capture semantics: each file holds the clock at enqueue time, even
	// though the solver kept stepping while the pipeline wrote.
	for i, p := range rep.Checkpoints {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%8.5f", 0.2*float64(i+1))
		if string(raw) != want {
			t.Fatalf("checkpoint %d holds %q, want %q", i, raw, want)
		}
	}
	if rep.CheckpointBytes != 24 {
		t.Fatalf("checkpoint bytes %d", rep.CheckpointBytes)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(matches) != 0 {
		t.Fatalf("leftover temp files %v", matches)
	}
}

func TestAsyncCheckpointNeverDropped(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	var once sync.Once
	f := &capFake{ckptFake{fake{dt: 0.1}}}
	rep, err := Run(context.Background(), f, 100, WithMaxSteps(12),
		WithCheckpoint(dir, 2),
		// Release the pipeline from the hot loop once the queue has had a
		// chance to fill with a checkpoint/observation mix; with a 3-deep
		// buffer at cadence 2 at most two checkpoints are pinned by then,
		// so the step loop itself cannot stall on an all-checkpoint queue.
		WithObserver(func(step int, _ Solver) error {
			if step == 5 {
				close(block)
			}
			return nil
		}),
		WithAsyncObserver(func(int, Diagnostics) error {
			once.Do(func() { <-block }) // hold the pipeline: queue fills with a mix
			return nil
		}, WithAsyncBuffer(3), WithBackpressure(DropOldest)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpoints) != 6 {
		t.Fatalf("%d checkpoints survived, want all 6 (never dropped)", len(rep.Checkpoints))
	}
	if rep.DroppedObservations == 0 {
		t.Fatal("expected observation drops while checkpoints were pinned")
	}
}

func TestCheckpointKeepPrunesSyncPath(t *testing.T) {
	dir := t.TempDir()
	f := &ckptFake{fake{dt: 0.1}}
	rep, err := Run(context.Background(), f, 100, WithMaxSteps(10),
		WithCheckpoint(dir, 2), WithCheckpointKeep(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpoints) != 2 {
		t.Fatalf("report retains %v, want the newest 2", rep.Checkpoints)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt_*.v6d"))
	if err != nil || len(matches) != 2 {
		t.Fatalf("on disk: %v (err %v)", matches, err)
	}
	// Bytes still count every write: 5 writes × 8 bytes.
	if rep.CheckpointBytes != 40 {
		t.Fatalf("checkpoint bytes %d, want 40 (pruning must not uncount volume)", rep.CheckpointBytes)
	}
	want := []string{
		filepath.Join(dir, "ckpt_00000.80000000.v6d"),
		filepath.Join(dir, "ckpt_00001.00000000.v6d"),
	}
	for i, p := range rep.Checkpoints {
		if p != want[i] {
			t.Fatalf("retained %v, want %v", rep.Checkpoints, want)
		}
	}
}

func TestCheckpointKeepPrunesAsyncPath(t *testing.T) {
	dir := t.TempDir()
	f := &capFake{ckptFake{fake{dt: 0.1}}}
	rep, err := Run(context.Background(), f, 100, WithMaxSteps(10),
		WithCheckpoint(dir, 2), WithCheckpointKeep(2),
		WithAsyncObserver(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpoints) != 2 {
		t.Fatalf("report retains %v, want the newest 2", rep.Checkpoints)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "ckpt_*.v6d"))
	if len(matches) != 2 {
		t.Fatalf("on disk: %v", matches)
	}
}

func TestLatestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if _, err := LatestCheckpoint(dir); err == nil {
		t.Fatal("empty directory accepted")
	}
	f := &ckptFake{fake{dt: 0.1}}
	rep, err := Run(context.Background(), f, 100, WithMaxSteps(6), WithCheckpoint(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	latest, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := rep.Checkpoints[len(rep.Checkpoints)-1]; latest != want {
		t.Fatalf("latest %s, want %s", latest, want)
	}
}

func TestAsyncValidation(t *testing.T) {
	f := &fake{dt: 0.1}
	if _, err := Run(context.Background(), f, 1,
		WithAsyncObserver(nil, WithAsyncBuffer(0))); err == nil {
		t.Fatal("zero async buffer accepted")
	}
	if _, err := Run(context.Background(), f, 1, WithCheckpointKeep(-1)); err == nil {
		t.Fatal("negative retention accepted")
	}
	if _, err := Run(context.Background(), f, 1, WithCheckpointKeep(2)); err == nil {
		t.Fatal("retention without checkpointing accepted")
	}
}

func TestBackpressureString(t *testing.T) {
	if Block.String() != "block" || DropOldest.String() != "drop-oldest" {
		t.Fatal("Backpressure strings")
	}
}

func TestCheckpointNotifyBothPaths(t *testing.T) {
	// One notification per durable file, carrying the path and the clock
	// it captures — on the sync step-loop path and on the async pipeline.
	type note struct {
		path  string
		clock float64
	}
	for name, wrap := range map[string]func(dir string, notify func(string, float64)) (*Report, error){
		"sync": func(dir string, notify func(string, float64)) (*Report, error) {
			f := &ckptFake{fake{dt: 0.1}}
			return Run(context.Background(), f, 100, WithMaxSteps(6),
				WithCheckpoint(dir, 2), WithCheckpointNotify(notify))
		},
		"async": func(dir string, notify func(string, float64)) (*Report, error) {
			f := &capFake{ckptFake{fake{dt: 0.1}}}
			return Run(context.Background(), f, 100, WithMaxSteps(6),
				WithCheckpoint(dir, 2), WithCheckpointNotify(notify),
				WithAsyncObserver(nil))
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			var mu sync.Mutex
			var notes []note
			rep, err := wrap(dir, func(path string, clock float64) {
				mu.Lock()
				notes = append(notes, note{path, clock})
				mu.Unlock()
			})
			if err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(notes) != len(rep.Checkpoints) {
				t.Fatalf("%d notifications for %d checkpoints", len(notes), len(rep.Checkpoints))
			}
			for i, n := range notes {
				if n.path != rep.Checkpoints[i] {
					t.Fatalf("notification %d path %q, want %q", i, n.path, rep.Checkpoints[i])
				}
				want := 0.2 * float64(i+1)
				if diff := n.clock - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("notification %d clock %v, want %v", i, n.clock, want)
				}
			}
		})
	}
}

// TestAsyncDropNotify: the consumer-side eviction notifier must account
// for every DropOldest eviction exactly once, and must see drops as they
// happen (not only at exit), so a live surface can report the loss.
func TestAsyncDropNotify(t *testing.T) {
	var mu sync.Mutex
	var notified int64
	var calls int
	block := make(chan struct{})
	first := true
	f := &fake{dt: 0.1}
	rep, err := Run(context.Background(), f, 1e9, WithMaxSteps(30),
		WithObserver(func(step int, _ Solver) error {
			if step == 29 {
				close(block)
			}
			return nil
		}),
		WithAsyncObserver(func(step int, d Diagnostics) error {
			if first {
				first = false
				<-block // hold the pipeline so the queue overflows
			}
			return nil
		}, WithAsyncBuffer(4), WithBackpressure(DropOldest),
			WithDropNotify(func(dropped int64) {
				mu.Lock()
				notified += dropped
				calls++
				mu.Unlock()
			})))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedObservations == 0 {
		t.Fatal("test needs drops to exercise the notifier")
	}
	mu.Lock()
	defer mu.Unlock()
	if notified != rep.DroppedObservations {
		t.Fatalf("notifier saw %d drops, report says %d", notified, rep.DroppedObservations)
	}
	if calls == 0 {
		t.Fatal("notifier never called")
	}
}

// TestAsyncDropNotifyQuietWithoutDrops: no evictions → no calls.
func TestAsyncDropNotifyQuietWithoutDrops(t *testing.T) {
	var mu sync.Mutex
	var calls int
	f := &fake{dt: 0.1}
	rep, err := Run(context.Background(), f, 1e9, WithMaxSteps(10),
		WithAsyncObserver(func(int, Diagnostics) error { return nil },
			WithDropNotify(func(int64) {
				mu.Lock()
				calls++
				mu.Unlock()
			})))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedObservations != 0 {
		t.Fatalf("unexpected drops: %d", rep.DroppedObservations)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 0 {
		t.Fatalf("notifier called %d times with zero drops", calls)
	}
}
