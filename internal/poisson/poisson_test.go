package poisson

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewSolverValidation(t *testing.T) {
	if _, err := NewSolver([3]int{1, 8, 8}, [3]float64{1, 1, 1}); err == nil {
		t.Fatal("mesh extent 1 accepted")
	}
	if _, err := NewSolver([3]int{8, 8, 8}, [3]float64{1, -1, 1}); err == nil {
		t.Fatal("negative box accepted")
	}
}

// planeWaveTest solves ∇²φ = coeff·cos(k·x) and compares with the analytic
// φ = −coeff·cos(k·x)/k².
func planeWaveTest(t *testing.T, n [3]int, box [3]float64, mode [3]int, coeff float64) {
	t.Helper()
	s, err := NewSolver(n, box)
	if err != nil {
		t.Fatal(err)
	}
	var k [3]float64
	for d := 0; d < 3; d++ {
		k[d] = 2 * math.Pi * float64(mode[d]) / box[d]
	}
	k2 := k[0]*k[0] + k[1]*k[1] + k[2]*k[2]
	src := make([]float64, s.Size())
	want := make([]float64, s.Size())
	idx := 0
	for ix := 0; ix < n[0]; ix++ {
		x := float64(ix) * box[0] / float64(n[0])
		for iy := 0; iy < n[1]; iy++ {
			y := float64(iy) * box[1] / float64(n[1])
			for iz := 0; iz < n[2]; iz++ {
				z := float64(iz) * box[2] / float64(n[2])
				ph := k[0]*x + k[1]*y + k[2]*z
				src[idx] = math.Cos(ph)
				want[idx] = -coeff * math.Cos(ph) / k2
				idx++
			}
		}
	}
	phi, err := s.Solve(src, coeff, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range phi {
		if d := math.Abs(phi[i] - want[i]); d > 1e-10*math.Abs(coeff/k2) {
			t.Fatalf("mode %v: phi[%d] = %v, want %v", mode, i, phi[i], want[i])
		}
	}
}

func TestPlaneWaveSolutions(t *testing.T) {
	planeWaveTest(t, [3]int{16, 16, 16}, [3]float64{100, 100, 100}, [3]int{1, 0, 0}, 1)
	planeWaveTest(t, [3]int{16, 16, 16}, [3]float64{100, 100, 100}, [3]int{2, 3, 1}, 5.5)
	planeWaveTest(t, [3]int{12, 8, 16}, [3]float64{50, 80, 120}, [3]int{1, 2, 3}, 0.7)
}

func TestMeanRemoved(t *testing.T) {
	// A constant source has no periodic solution; the solver must project
	// it out and return φ = 0.
	s, _ := NewSolver([3]int{8, 8, 8}, [3]float64{1, 1, 1})
	src := make([]float64, s.Size())
	for i := range src {
		src[i] = 42.0
	}
	phi, err := s.Solve(src, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range phi {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("phi[%d] = %v for constant source", i, v)
		}
	}
}

func TestSuperpositionProperty(t *testing.T) {
	// Poisson is linear: Solve(a·s1 + b·s2) = a·Solve(s1) + b·Solve(s2).
	s, _ := NewSolver([3]int{8, 8, 8}, [3]float64{10, 10, 10})
	n := s.Size()
	s1 := make([]float64, n)
	s2 := make([]float64, n)
	for i := range s1 {
		s1[i] = math.Sin(float64(i))
		s2[i] = math.Cos(float64(3 * i))
	}
	p1, _ := s.Solve(s1, 1, nil)
	p2, _ := s.Solve(s2, 1, nil)
	f := func(ar, br float64) bool {
		a := math.Mod(ar, 10)
		b := math.Mod(br, 10)
		mix := make([]float64, n)
		for i := range mix {
			mix[i] = a*s1[i] + b*s2[i]
		}
		pm, err := s.Solve(mix, 1, nil)
		if err != nil {
			return false
		}
		for i := range pm {
			if math.Abs(pm[i]-(a*p1[i]+b*p2[i])) > 1e-9*(1+math.Abs(a)+math.Abs(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGradientPlaneWave(t *testing.T) {
	// ∂/∂x cos(kx) = −k sin(kx); fourth-order differences on 32 cells per
	// wavelength are accurate to ~(kΔ)⁴/30 ≈ 5e-5 relative.
	n := [3]int{32, 4, 4}
	box := [3]float64{1, 1, 1}
	s, _ := NewSolver(n, box)
	phi := make([]float64, s.Size())
	k := 2 * math.Pi / box[0]
	idx := 0
	for ix := 0; ix < n[0]; ix++ {
		x := float64(ix) / float64(n[0])
		for iy := 0; iy < n[1]; iy++ {
			for iz := 0; iz < n[2]; iz++ {
				phi[idx] = math.Cos(k * x)
				idx++
			}
		}
	}
	g := make([]float64, s.Size())
	if err := s.Gradient(phi, 0, g); err != nil {
		t.Fatal(err)
	}
	idx = 0
	for ix := 0; ix < n[0]; ix++ {
		x := float64(ix) / float64(n[0])
		want := -k * math.Sin(k*x)
		for iy := 0; iy < n[1]; iy++ {
			for iz := 0; iz < n[2]; iz++ {
				if d := math.Abs(g[idx] - want); d > 2e-4*k {
					t.Fatalf("gradient at ix=%d: %v, want %v", ix, g[idx], want)
				}
				idx++
			}
		}
	}
}

func TestGradientValidation(t *testing.T) {
	s, _ := NewSolver([3]int{8, 8, 8}, [3]float64{1, 1, 1})
	phi := make([]float64, s.Size())
	g := make([]float64, s.Size())
	if err := s.Gradient(phi, 3, g); err == nil {
		t.Fatal("dim 3 accepted")
	}
	if err := s.Gradient(phi[:10], 0, g); err == nil {
		t.Fatal("short phi accepted")
	}
}

func TestAccelPointsDownhill(t *testing.T) {
	// For a single overdense peak the acceleration must point toward the
	// peak (negative gradient of potential, potential negative at peak).
	n := [3]int{16, 16, 16}
	s, _ := NewSolver(n, [3]float64{16, 16, 16})
	src := make([]float64, s.Size())
	peak := (8*16 + 8) * 16
	src[peak+8] = 100 // overdensity at (8,8,8)
	phi, err := s.Solve(src, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if phi[peak+8] >= 0 {
		t.Fatalf("potential at peak %v, want negative", phi[peak+8])
	}
	acc, err := s.Accel(phi)
	if err != nil {
		t.Fatal(err)
	}
	// At (4,8,8), ax must be positive (pull toward larger x).
	at := ((4*16 + 8) * 16) + 8
	if acc[0][at] <= 0 {
		t.Fatalf("acceleration does not point toward the peak: %v", acc[0][at])
	}
	// At (12,8,8), ax must be negative.
	at = ((12*16 + 8) * 16) + 8
	if acc[0][at] >= 0 {
		t.Fatalf("acceleration does not point back toward the peak: %v", acc[0][at])
	}
}

func TestSolveReusesPhiBuffer(t *testing.T) {
	s, _ := NewSolver([3]int{8, 8, 8}, [3]float64{1, 1, 1})
	src := make([]float64, s.Size())
	src[5] = 1
	buf := make([]float64, s.Size())
	out, err := s.Solve(src, 1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[0] {
		t.Fatal("provided buffer not used")
	}
	if _, err := s.Solve(src, 1, make([]float64, 3)); err == nil {
		t.Fatal("short phi buffer accepted")
	}
	if _, err := s.Solve(src[:5], 1, nil); err == nil {
		t.Fatal("short source accepted")
	}
}
