package sched

// Tests for the control-plane surface of the scheduler: per-job status
// snapshots, per-submission cancellation, bounded core shares and budgeted
// construction — the hooks the HTTP service layer (internal/serve) is built
// on. Everything here runs in milliseconds and under -race in CI.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"vlasov6d/internal/runner"
)

// acquireBoundedPolled acquires a bounded lease while a background
// goroutine polls the already-held leases' Workers() — the runner's
// between-step poll, without which holders never commit shrunk shares and
// a fresh Acquire would block forever (the documented contract).
func acquireBoundedPolled(t *testing.T, b *CoreBudget, priority, min, max int, held ...*Lease) *Lease {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, l := range held {
					l.Workers()
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	l, err := b.AcquireBounded(context.Background(), priority, min, max)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestCoreBudgetBoundedSharesMax(t *testing.T) {
	b := NewCoreBudget(8)
	// A capped lease keeps only its max; the surplus water-fills the rest.
	capped := acquireBoundedPolled(t, b, 0, 0, 1)
	l1 := acquireBoundedPolled(t, b, 0, 0, 0, capped)
	l2 := acquireBoundedPolled(t, b, 0, 0, 0, capped, l1)
	all := []*Lease{capped, l1, l2}
	settle(all)
	// 7 cores left for two unbounded leases: 4 + 3 (earlier lease first).
	if got := shares(all); got[0] != 1 || got[1] != 4 || got[2] != 3 {
		t.Fatalf("settled shares %v, want [1 4 3]", got)
	}
	for _, l := range all {
		l.Release()
	}
}

func TestCoreBudgetBoundedSharesMin(t *testing.T) {
	b := NewCoreBudget(8)
	heavy := acquireBoundedPolled(t, b, 0, 6, 0)
	l1 := acquireBoundedPolled(t, b, 0, 0, 0, heavy)
	l2 := acquireBoundedPolled(t, b, 0, 0, 0, heavy, l1)
	all := []*Lease{heavy, l1, l2}
	settle(all)
	// The min floor is met by shrinking the others to their floor of one.
	if got := shares(all); got[0] != 6 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("settled shares %v, want [6 1 1]", got)
	}
	// Releasing the heavy job re-expands the small ones.
	heavy.Release()
	rest := []*Lease{l1, l2}
	settle(rest)
	if got := shares(rest); got[0] != 4 || got[1] != 4 {
		t.Fatalf("shares after release %v, want [4 4]", got)
	}
	l1.Release()
	l2.Release()
}

func TestCoreBudgetMinsDegradeWhenUncoverable(t *testing.T) {
	// A min equal to the whole budget must not monopolise it: when a
	// second lease arrives the floors (4+1) exceed the budget, the min
	// degrades to the universal floor of one, and both jobs settle at an
	// equal split within one polling round — the second acquire never
	// blocks for the first job's whole run.
	b := NewCoreBudget(4)
	greedy := acquireBoundedPolled(t, b, 0, 4, 0)
	other := acquireBoundedPolled(t, b, 0, 0, 0, greedy)
	all := []*Lease{greedy, other}
	settle(all)
	if got := shares(all); got[0] != 2 || got[1] != 2 {
		t.Fatalf("settled shares %v, want [2 2] (degraded min)", got)
	}
	// The min comes back when the live set shrinks enough to cover it.
	other.Release()
	settle(all[:1])
	if w := greedy.Workers(); w != 4 {
		t.Fatalf("solo share %d, want the min of 4 restored", w)
	}
	greedy.Release()
}

func TestCoreBudgetMinClampedToTotal(t *testing.T) {
	b := NewCoreBudget(4)
	l, err := b.AcquireBounded(context.Background(), 0, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if w := l.Workers(); w != 4 {
		t.Fatalf("over-min lease holds %d, want the whole budget 4", w)
	}
}

func TestCoreBudgetBoundsValidation(t *testing.T) {
	b := NewCoreBudget(4)
	ctx := context.Background()
	if _, err := b.AcquireBounded(ctx, 0, -1, 0); err == nil {
		t.Fatal("negative min accepted")
	}
	if _, err := b.AcquireBounded(ctx, 0, 3, 2); err == nil {
		t.Fatal("max below min accepted")
	}
	if b.Live() != 0 {
		t.Fatalf("rejected acquires left %d live leases", b.Live())
	}
}

func TestJobValidate(t *testing.T) {
	mk := func() (runner.Solver, error) { return &fake{dt: 1}, nil }
	mkB := func(runner.WorkerLease) (runner.Solver, error) { return &fake{dt: 1}, nil }
	neg := -1
	cases := []struct {
		name string
		job  Job
		ok   bool
	}{
		{"no factory", Job{Name: "a"}, false},
		{"both factories", Job{Name: "a", New: mk, NewBudgeted: mkB}, false},
		{"budgeted only", Job{Name: "a", NewBudgeted: mkB}, true},
		{"negative min", Job{Name: "a", New: mk, MinWorkers: -1}, false},
		{"max below min", Job{Name: "a", New: mk, MinWorkers: 3, MaxWorkers: 2}, false},
		{"negative retries", Job{Name: "a", New: mk, Retries: &neg}, false},
		{"plain", Job{Name: "a", New: mk}, true},
	}
	for _, c := range cases {
		if err := c.job.validate(); (err == nil) != c.ok {
			t.Errorf("%s: validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestStreamSubmitIDAndResultID(t *testing.T) {
	s, err := NewStream(context.Background(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("j%d", i)
		id, err := s.SubmitID(quickJob(name, 0))
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("submission %d got id %d", i, id)
		}
		want[id] = name
	}
	s.Close()
	for r := range s.Results() {
		if want[r.ID] != r.Name {
			t.Fatalf("result id %d carries name %q, want %q", r.ID, r.Name, want[r.ID])
		}
		delete(want, r.ID)
	}
	if len(want) != 0 {
		t.Fatalf("missing results for %v", want)
	}
}

func TestStreamSnapshot(t *testing.T) {
	// One worker; the first job blocks mid-run so the rest stay queued,
	// giving Snapshot a mixed live set to report. Concurrent Snapshot
	// calls while the worker churns keep the locking honest under -race.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s, err := NewStream(context.Background(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	blocker := Job{
		Name:  "blocker",
		Until: 1,
		New: func() (runner.Solver, error) {
			return &fake{dt: 1, onStep: func() {
				once.Do(func() { close(started) })
				<-release
			}}, nil
		},
	}
	id0, err := s.SubmitID(blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	id1, _ := s.SubmitID(quickJob("queued-lo", 0))
	id2, _ := s.SubmitID(quickJob("queued-hi", 7))

	stopPoll := make(chan struct{})
	var poll sync.WaitGroup
	poll.Add(1)
	go func() { // hammer Snapshot concurrently with the running worker
		defer poll.Done()
		for {
			select {
			case <-stopPoll:
				return
			default:
				s.Snapshot()
			}
		}
	}()

	snaps := s.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("%d snapshots, want 3", len(snaps))
	}
	byID := map[int]JobSnapshot{}
	for _, js := range snaps {
		byID[js.ID] = js
	}
	if js := byID[id0]; js.Status != Running || js.Attempt != 1 || js.Name != "blocker" {
		t.Fatalf("blocker snapshot %+v", js)
	}
	if js := byID[id1]; js.Status != Queued || js.Attempt != 0 {
		t.Fatalf("queued snapshot %+v", js)
	}
	if js := byID[id2]; js.Status != Queued || js.Priority != 7 {
		t.Fatalf("priority snapshot %+v", js)
	}
	if _, ok := s.Job(99); ok {
		t.Fatal("Job(99) found a record for an id never issued")
	}

	close(release)
	s.Close()
	drainAll(s)
	close(stopPoll)
	poll.Wait()

	for _, id := range []int{id0, id1, id2} {
		js, ok := s.Job(id)
		if !ok || js.Status != Done {
			t.Fatalf("job %d after drain: %+v ok=%v", id, js, ok)
		}
	}
}

func TestStreamCancelQueued(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s, err := NewStream(context.Background(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.SubmitID(Job{
		Name:  "blocker",
		Until: 1,
		New: func() (runner.Solver, error) {
			return &fake{dt: 1, onStep: func() {
				once.Do(func() { close(started) })
				<-release
			}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var built bool
	victim, err := s.SubmitID(Job{
		Name:  "victim",
		Until: 1,
		New: func() (runner.Solver, error) {
			built = true
			return &fake{dt: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(victim) {
		t.Fatal("Cancel(queued) reported no effect")
	}
	// The snapshot reports the decided cancellation before the worker pops
	// the job and delivers its Result.
	if js, ok := s.Job(victim); !ok || js.Status != Cancelled {
		t.Fatalf("cancelled-while-queued snapshot %+v ok=%v", js, ok)
	}
	if s.Cancel(victim) {
		t.Fatal("second Cancel on a decided cancellation reported effect")
	}
	close(release)
	s.Close()
	for _, r := range drainAll(s) {
		if r.ID == victim {
			if r.Status != Cancelled {
				t.Fatalf("victim result %+v", r)
			}
		} else if r.Status != Done {
			t.Fatalf("blocker result %+v", r)
		}
	}
	if built {
		t.Fatal("cancelled-while-queued job constructed its solver")
	}
}

func TestStreamCancelQueuedFreesCheckpointKey(t *testing.T) {
	// Cancelling a queued job frees its checkpoint key immediately: the
	// corrected resubmission must not wait for a worker to pop the stale
	// entry — and when the stale entry IS popped, it must not free the
	// key the resubmitted job now holds.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s, err := NewStream(context.Background(), WithWorkers(1), WithJobCheckpoints(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	ckptJob := func(name string) Job {
		return Job{Name: name, Until: 1,
			New: func() (runner.Solver, error) { return &ckptFake{fake{dt: 1}}, nil }}
	}
	blocker := Job{
		Name:  "blocker",
		Until: 1,
		New: func() (runner.Solver, error) {
			return &ckptFake{fake{dt: 1, onStep: func() {
				once.Do(func() { close(started) })
				<-release
			}}}, nil
		},
	}
	if _, err := s.SubmitID(blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	victim, err := s.SubmitID(ckptJob("dup"))
	if err != nil {
		t.Fatal(err)
	}
	// While queued, the name is taken.
	if _, err := s.SubmitID(ckptJob("dup")); err == nil {
		t.Fatal("duplicate checkpoint key accepted while queued")
	}
	if !s.Cancel(victim) {
		t.Fatal("cancel failed")
	}
	// The decided cancellation frees the key before any worker pops it.
	second, err := s.SubmitID(ckptJob("dup"))
	if err != nil {
		t.Fatalf("resubmission after queued-cancel rejected: %v", err)
	}
	// And the second holder's key survives the stale entry's eventual pop:
	// a third submission while the second is live must still be rejected.
	if _, err := s.SubmitID(ckptJob("dup")); err == nil {
		t.Fatal("duplicate checkpoint key accepted while the resubmission is live")
	}
	close(release)
	s.Close()
	statuses := map[int]Status{}
	for r := range s.Results() {
		statuses[r.ID] = r.Status
	}
	if statuses[victim] != Cancelled || statuses[second] != Done {
		t.Fatalf("victim %v, resubmission %v", statuses[victim], statuses[second])
	}
}

func TestStreamCancelRunning(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	s, err := NewStream(context.Background(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	// Slow many-step job: cancellation lands between steps.
	id, err := s.SubmitID(Job{
		Name:  "long",
		Until: 1e9,
		New: func() (runner.Solver, error) {
			return &fake{dt: 1, sleep: time.Millisecond, onStep: func() {
				once.Do(func() { close(started) })
			}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !s.Cancel(id) {
		t.Fatal("Cancel(running) reported no effect")
	}
	s.Close()
	results := drainAll(s)
	if len(results) != 1 {
		t.Fatalf("%d results", len(results))
	}
	r := results[0]
	if r.ID != id || r.Status != Cancelled {
		t.Fatalf("cancelled running job result %+v", r)
	}
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("cancelled running job err = %v", r.Err)
	}
	// The stream itself is still healthy: later submissions run.
	if s.Cancel(999) {
		t.Fatal("Cancel(unknown id) reported effect")
	}
}

func TestStreamCancelDoesNotTouchSiblings(t *testing.T) {
	// Cancelling one running job must not disturb the other running job or
	// the stream's intake.
	type gate struct {
		started chan struct{}
		once    sync.Once
	}
	gates := []*gate{{started: make(chan struct{})}, {started: make(chan struct{})}}
	s, err := NewStream(context.Background(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 2)
	for i := range gates {
		g := gates[i]
		ids[i], err = s.SubmitID(Job{
			Name:  fmt.Sprintf("long-%d", i),
			Until: 1e9,
			New: func() (runner.Solver, error) {
				return &fake{dt: 1, sleep: time.Millisecond, onStep: func() {
					g.once.Do(func() { close(g.started) })
				}}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	<-gates[0].started
	<-gates[1].started
	if !s.Cancel(ids[0]) {
		t.Fatal("cancel failed")
	}
	// The sibling keeps running until its own cancellation.
	time.Sleep(5 * time.Millisecond)
	if js, _ := s.Job(ids[1]); js.Status != Running {
		t.Fatalf("sibling status %v after cancelling job 0", js.Status)
	}
	s.Cancel(ids[1])
	s.Close()
	for _, r := range drainAll(s) {
		if r.Status != Cancelled {
			t.Fatalf("result %+v, want cancelled", r)
		}
	}
}

func TestStreamJobHistoryBound(t *testing.T) {
	// Terminal records beyond the WithJobHistory bound are evicted oldest
	// first — the status surface of an always-on stream must not grow
	// without bound.
	s, err := NewStream(context.Background(), WithWorkers(1), WithJobHistory(2))
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := s.SubmitID(quickJob(fmt.Sprintf("h%d", i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	drainAll(s)
	snaps := s.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("%d records retained, want 2", len(snaps))
	}
	// One worker → completion order is submission order: the newest two
	// ids survive.
	if snaps[0].ID != n-2 || snaps[1].ID != n-1 {
		t.Fatalf("retained ids %d, %d; want %d, %d", snaps[0].ID, snaps[1].ID, n-2, n-1)
	}
	if _, ok := s.Job(0); ok {
		t.Fatal("evicted record still resolvable")
	}
	if s.Cancel(0) {
		t.Fatal("Cancel of an evicted record reported effect")
	}
}

func TestJobRetriesOverride(t *testing.T) {
	// Stream default: no retries. The override job asks for 2 and succeeds
	// on its third attempt; a sibling without the override fails fast.
	var overrideAttempts, plainAttempts int
	transient := func(n *int, failures int) func() (runner.Solver, error) {
		return func() (runner.Solver, error) {
			*n++
			if *n <= failures {
				return nil, runner.MarkRetryable(errors.New("flaky"))
			}
			return &fake{dt: 1}, nil
		}
	}
	s, err := NewStream(context.Background(), WithWorkers(1), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	two := 2
	idOverride, _ := s.SubmitID(Job{Name: "override", Until: 1, Retries: &two,
		New: transient(&overrideAttempts, 2)})
	idPlain, _ := s.SubmitID(Job{Name: "plain", Until: 1,
		New: transient(&plainAttempts, 2)})
	s.Close()
	for r := range s.Results() {
		switch r.ID {
		case idOverride:
			if r.Status != Done || r.Attempt != 3 {
				t.Fatalf("override result %+v", r)
			}
		case idPlain:
			if r.Status != Failed || r.Attempt != 1 {
				t.Fatalf("plain result %+v", r)
			}
		}
	}
	// The reverse: a scheduler-wide retry policy silenced per-job.
	s2, err := NewStream(context.Background(), WithWorkers(1),
		WithRetries(5), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	attempts := 0
	s2.Submit(Job{Name: "never-retry", Until: 1, Retries: &zero,
		New: transient(&attempts, 99)})
	s2.Close()
	for r := range s2.Results() {
		if r.Status != Failed || r.Attempt != 1 {
			t.Fatalf("never-retry result %+v", r)
		}
	}
}

func TestNewBudgetedFactoryReceivesLease(t *testing.T) {
	// Under WithCoreBudget the factory sees the job's lease before the
	// first step — construction is budgeted, the ROADMAP's "last
	// oversubscription window".
	var factoryShare int
	s, err := NewStream(context.Background(), WithWorkers(1), WithCoreBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(Job{
		Name:  "budgeted",
		Until: 1,
		NewBudgeted: func(lease runner.WorkerLease) (runner.Solver, error) {
			if lease == nil {
				return nil, errors.New("nil lease under an active budget")
			}
			factoryShare = lease.Workers()
			return &fake{dt: 1}, nil
		},
	})
	s.Close()
	for r := range s.Results() {
		if r.Status != Done {
			t.Fatalf("budgeted job result %+v", r)
		}
	}
	if factoryShare != 4 {
		t.Fatalf("factory saw share %d, want the whole 4-core budget", factoryShare)
	}

	// Without a budget the lease is a true nil.
	var sawNil bool
	s2, err := NewStream(context.Background(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	s2.Submit(Job{
		Name:  "unbudgeted",
		Until: 1,
		NewBudgeted: func(lease runner.WorkerLease) (runner.Solver, error) {
			sawNil = lease == nil
			return &fake{dt: 1}, nil
		},
	})
	s2.Close()
	drainAll(s2)
	if !sawNil {
		t.Fatal("factory did not see a nil lease without a budget")
	}
}

func TestStreamWorkerBoundsWired(t *testing.T) {
	// A MaxWorkers-1 job never sees more than one core even as the only
	// live job of a 4-core budget.
	var share int
	s, err := NewStream(context.Background(), WithWorkers(1), WithCoreBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(Job{
		Name:       "capped",
		Until:      1,
		MaxWorkers: 1,
		NewBudgeted: func(lease runner.WorkerLease) (runner.Solver, error) {
			share = lease.Workers()
			return &fake{dt: 1}, nil
		},
	})
	s.Close()
	drainAll(s)
	if share != 1 {
		t.Fatalf("capped job saw share %d, want 1", share)
	}
}
