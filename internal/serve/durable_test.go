package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vlasov6d/internal/runner"
	"vlasov6d/internal/sched"
	"vlasov6d/internal/tenant"
)

// authJSON performs a request with a bearer token and decodes the JSON
// response, returning the headers as well (Retry-After assertions).
func authJSON(t *testing.T, method, url, token, body string) (int, http.Header, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	raw, _ := io.ReadAll(resp.Body)
	if len(bytes.TrimSpace(raw)) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode %s %s: %v (%s)", method, url, err, raw)
		}
	}
	return resp.StatusCode, resp.Header, out
}

// pollStatusAuth is pollStatus with a bearer token.
func pollStatusAuth(t *testing.T, base string, id int, token string, want ...string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, _, body := authJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%d", base, id), token, "")
		if code != http.StatusOK {
			t.Fatalf("job %d status code %d: %v", id, code, body)
		}
		st, _ := body["status"].(string)
		for _, w := range want {
			if st == w {
				return body
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %d never reached %v", id, want)
	return nil
}

// scrapeMetrics fetches /metrics as raw text.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q is not the Prometheus text exposition", ct)
	}
	return string(raw)
}

// TestRestartRecovery is the durability proof: a job is killed mid-run with
// the FAST shutdown (no Drain — the moral equivalent of a SIGKILL for the
// control plane's state), a new server is built over the same store and
// checkpoint directories, and the job re-queues under its original id,
// resumes from the newest snapshot on disk, and finishes at the clock an
// uninterrupted run would have reached.
func TestRestartRecovery(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	cfg := Config{
		Workers:         1,
		CheckpointDir:   ckptDir,
		CheckpointEvery: 20,
		StoreDir:        storeDir,
	}
	srv, ts := newTestServer(t, cfg)

	// 1000 fixed-dt steps to until=10; a checkpoint every 20 steps.
	const until, dt = 10.0, 0.01
	code, body := postJSON(t, ts.URL+"/v1/jobs",
		fmt.Sprintf(`{"scenario":"landau","name":"phoenix","until":%g,"fixed_dt":%g}`, until, dt))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))

	// Wait for the first durable snapshot, then kill the server mid-run.
	jobDir := sched.JobCheckpointDir(ckptDir, "phoenix")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if paths, err := runner.ListCheckpoints(jobDir); err == nil && len(paths) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	ts.Close()
	srv.Close()

	// The newest snapshot's clock is where the resumed run must pick up.
	paths, err := runner.ListCheckpoints(jobDir)
	if err != nil || len(paths) == 0 {
		t.Fatalf("checkpoints after kill: %v (%v)", paths, err)
	}
	var ckptClock float64
	fmt.Sscanf(filepath.Base(paths[len(paths)-1]), "ckpt_%f.v6d", &ckptClock)
	if ckptClock <= 0 || ckptClock >= until {
		t.Fatalf("kill landed outside the run: newest checkpoint clock %g", ckptClock)
	}

	// Rebuild over the same directories: the journal replays, the job
	// re-queues under its original id.
	srv2, ts2 := newTestServer(t, cfg)
	defer srv2.Close()
	if m := scrapeMetrics(t, ts2.URL); !strings.Contains(m, "vlasovd_jobs_recovered_total 1") {
		t.Fatalf("metrics after restart missing recovered counter:\n%s", m)
	}
	final := pollStatus(t, ts2.URL, id, "done", "failed")
	if final["status"] != "done" {
		t.Fatalf("recovered job: %v", final)
	}
	rep := final["report"].(map[string]any)
	if clock := rep["clock"].(float64); clock < until-1e-6 {
		t.Fatalf("recovered run stopped at clock %v, want the uninterrupted target %v", clock, until)
	}
	// Resumption, not re-execution: the second life stepped only the
	// remainder past the snapshot, not the full run.
	steps := rep["steps"].(float64)
	remainder := (until-ckptClock)/dt + 2
	if steps > remainder {
		t.Fatalf("recovered run stepped %v times; resume from clock %g needed at most %g",
			steps, ckptClock, remainder)
	}
	if steps >= until/dt {
		t.Fatalf("recovered run stepped %v times — it re-ran from scratch", steps)
	}

	// A third open finds nothing to recover: the journal holds the done
	// record (and compaction drops it on open).
	srv3, ts3 := newTestServer(t, cfg)
	defer srv3.Close()
	if m := scrapeMetrics(t, ts3.URL); !strings.Contains(m, "vlasovd_jobs_recovered_total 0") {
		t.Fatalf("finished job recovered again:\n%s", m)
	}
}

// TestUserCancelSurvivesRestart: a DELETE is journaled terminal at cancel
// time, so the restarted server does NOT resurrect the job — the one
// cancellation that must not be undone by recovery.
func TestUserCancelSurvivesRestart(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	cfg := Config{Workers: 1, CheckpointDir: ckptDir, CheckpointEvery: 10, StoreDir: storeDir}
	srv, ts := newTestServer(t, cfg)
	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","name":"doomed","until":1000,"fixed_dt":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	pollStatus(t, ts.URL, id, "running")
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	pollStatus(t, ts.URL, id, "cancelled")
	ts.Close()
	srv.Close()

	srv2, ts2 := newTestServer(t, cfg)
	defer srv2.Close()
	if m := scrapeMetrics(t, ts2.URL); !strings.Contains(m, "vlasovd_jobs_recovered_total 0") {
		t.Fatalf("user-cancelled job resurrected:\n%s", m)
	}
}

func TestTenantAuthAndQuotas(t *testing.T) {
	reg, err := tenant.Parse(strings.NewReader(`{
	  "tenants": [
	    {"name": "alice", "key": "alice-key", "max_queued": 1},
	    {"name": "bob", "key": "bob-key", "rate_per_sec": 0.001, "burst": 2}
	  ]}`))
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Workers: 1, Tenants: reg})
	defer srv.Close()
	long := `{"scenario":"landau","name":"%s","until":1000,"fixed_dt":0.01}`

	// No token and an unknown token are both 401 with a challenge.
	code, hdr, _ := authJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "", "")
	if code != http.StatusUnauthorized || !strings.Contains(hdr.Get("WWW-Authenticate"), "Bearer") {
		t.Fatalf("anonymous list: %d %q", code, hdr.Get("WWW-Authenticate"))
	}
	if code, _, _ := authJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "stolen", fmt.Sprintf(long, "x")); code != http.StatusUnauthorized {
		t.Fatalf("unknown key submit: %d", code)
	}
	// /healthz and /metrics stay open — the unauthenticated probe surface.
	if code, _ := getJSON(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz behind auth: %d", code)
	}
	scrapeMetrics(t, ts.URL)

	// Alice fills the single worker, then her queue quota (1), then hits it.
	code, _, body := authJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "alice-key", fmt.Sprintf(long, "a1"))
	if code != http.StatusAccepted {
		t.Fatalf("alice submit 1: %d %v", code, body)
	}
	a1 := int(body["id"].(float64))
	pollStatusAuth(t, ts.URL, a1, "alice-key", "running")
	code, _, body = authJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "alice-key", fmt.Sprintf(long, "a2"))
	if code != http.StatusAccepted {
		t.Fatalf("alice submit 2: %d %v", code, body)
	}
	a2 := int(body["id"].(float64))
	code, hdr, body = authJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "alice-key", fmt.Sprintf(long, "a3"))
	if code != http.StatusTooManyRequests || hdr.Get("Retry-After") == "" {
		t.Fatalf("queue quota: %d (Retry-After %q) %v", code, hdr.Get("Retry-After"), body)
	}

	// Bob's bucket holds 2 tokens and refills at a glacial rate: the third
	// request inside the window is rate-limited with a Retry-After.
	for i := 0; i < 2; i++ {
		if code, _, body := authJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "bob-key",
			fmt.Sprintf(long, fmt.Sprintf("b%d", i))); code != http.StatusAccepted {
			t.Fatalf("bob submit %d: %d %v", i, code, body)
		}
	}
	code, hdr, _ = authJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "bob-key", fmt.Sprintf(long, "b2"))
	if code != http.StatusTooManyRequests || hdr.Get("Retry-After") == "" {
		t.Fatalf("rate limit: %d (Retry-After %q)", code, hdr.Get("Retry-After"))
	}

	// Tenant scoping: bob cannot see or touch alice's job, and his listing
	// holds only his own.
	if code, _, _ := authJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, a1), "bob-key", ""); code != http.StatusForbidden {
		t.Fatalf("cross-tenant get: %d", code)
	}
	if code, _, _ := authJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, a1), "bob-key", ""); code != http.StatusForbidden {
		t.Fatalf("cross-tenant cancel: %d", code)
	}
	code, _, list := authJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "bob-key", "")
	if code != http.StatusOK {
		t.Fatalf("bob list: %d", code)
	}
	for _, j := range list["jobs"].([]any) {
		if j.(map[string]any)["tenant"] != "bob" {
			t.Fatalf("bob's listing leaked another tenant's job: %v", j)
		}
	}
	if n := len(list["jobs"].([]any)); n != 2 {
		t.Fatalf("bob sees %d jobs, submitted 2", n)
	}

	// The per-tenant gauges are labelled Prometheus series.
	m := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`vlasovd_tenant_queue_depth{tenant="alice"} 1`,
		`# TYPE vlasovd_tenant_cores_in_use gauge`,
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}

	// Draining answers 503 with a Retry-After so clients back off.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		srv.Drain(ctx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, hdr, _ = authJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "alice-key", fmt.Sprintf(long, "late"))
		if code == http.StatusServiceUnavailable {
			if hdr.Get("Retry-After") == "" {
				t.Fatal("draining 503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never refused intake (last code %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = a2
}

// TestPlainMetricsStillGreppable pins the compatibility contract: the
// Prometheus exposition's sample lines keep the exact "name value" shape
// the pre-tenancy endpoint served, so existing scrapes keep matching.
func TestPlainMetricsStillGreppable(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, Budget: 2})
	defer srv.Close()
	m := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"\nvlasovd_jobs_submitted_total 0\n",
		"\nvlasovd_queue_depth 0\n",
		"\nvlasovd_budget_cores_total 2\n",
		"# TYPE vlasovd_jobs_submitted_total counter",
		"# HELP vlasovd_queue_depth ",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}
}
