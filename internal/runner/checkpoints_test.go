package runner

import (
	"os"
	"path/filepath"
	"testing"
)

func touch(t *testing.T, path string) {
	t.Helper()
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestListCheckpointsLiteralDirectory(t *testing.T) {
	// The directory is data, not a glob pattern: metacharacters in a
	// user-chosen checkpoint root ("run[1]") must not disable listing —
	// silently losing resume and retention would recompute whole campaigns.
	dir := filepath.Join(t.TempDir(), "run[1]")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	touch(t, filepath.Join(dir, "ckpt_00000002.00000000.v6d"))
	touch(t, filepath.Join(dir, "ckpt_00000001.00000000.v6d"))
	touch(t, filepath.Join(dir, "ckpt_00000001.00000000.v6d.corrupt")) // quarantined: excluded
	touch(t, filepath.Join(dir, "notes.txt"))                          // unrelated: excluded

	got, err := ListCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("listed %v, want the 2 ckpt files", got)
	}
	if filepath.Base(got[0]) != "ckpt_00000001.00000000.v6d" ||
		filepath.Base(got[1]) != "ckpt_00000002.00000000.v6d" {
		t.Fatalf("order %v, want oldest first", got)
	}
	latest, err := LatestCheckpoint(dir)
	if err != nil || filepath.Base(latest) != "ckpt_00000002.00000000.v6d" {
		t.Fatalf("latest %q (%v)", latest, err)
	}
}

func TestListCheckpointsMissingDirEmpty(t *testing.T) {
	got, err := ListCheckpoints(filepath.Join(t.TempDir(), "never-created"))
	if err != nil || len(got) != 0 {
		t.Fatalf("missing dir: %v, %v — want empty list, nil error", got, err)
	}
}
