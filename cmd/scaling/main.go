// Command scaling regenerates the paper's performance artefacts: the run
// matrix (Table 2), the per-direction SIMD/LAT kernel study (Table 1), the
// weak and strong scaling efficiencies (Tables 3–4) and the wall-time-per-
// step decomposition (Fig. 7), plus the §7.2 time-to-solution comparison.
//
// Usage:
//
//	scaling [-table1] [-runs] [-weak] [-strong] [-fig7] [-tts] [-all]
//
// Modelled numbers are printed next to the published values in parentheses.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vlasov6d/internal/kernel"
	"vlasov6d/internal/machine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling: ")
	var (
		table1 = flag.Bool("table1", false, "measure the Table 1 kernel study on this machine")
		runs   = flag.Bool("runs", false, "print the Table 2 run matrix")
		weak   = flag.Bool("weak", false, "print Table 3 (weak scaling, model vs paper)")
		strong = flag.Bool("strong", false, "print Table 4 (strong scaling, model vs paper)")
		fig7   = flag.Bool("fig7", false, "print the Fig. 7 per-step time decomposition")
		tts    = flag.Bool("tts", false, "print the §7.2 time-to-solution comparison")
		all    = flag.Bool("all", false, "print everything")
	)
	flag.Parse()
	if !(*table1 || *runs || *weak || *strong || *fig7 || *tts) {
		*all = true
	}
	m, err := machine.New(machine.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	out := os.Stdout

	if *all || *table1 {
		fmt.Fprintln(out, "Measuring Table 1 kernels (this machine's memory system; "+
			"expect the paper's ORDERING, not its absolute Gflops)...")
		rows, err := kernel.Measure(kernel.DefaultTable1Config())
		if err != nil {
			log.Fatal(err)
		}
		kernel.WriteTable1(out, rows)
		fmt.Fprintln(out)
	}
	if *all || *runs {
		fmt.Fprintln(out, "Table 2: run matrix")
		fmt.Fprintf(out, "%-8s %6s %6s %8s %8s %14s %6s\n",
			"ID", "Nx", "Nu", "N_CDM", "nodes", "(nx,ny,nz)", "p/node")
		for _, r := range machine.Table2 {
			fmt.Fprintf(out, "%-8s %5d³ %5d³ %7d³ %8d (%3d,%3d,%3d) %6d\n",
				r.ID, r.NxSide, r.NuSide, r.NCDMSide, r.Nodes,
				r.Proc[0], r.Proc[1], r.Proc[2], r.ProcsPerNode)
		}
		fmt.Fprintln(out)
	}
	if *all || *weak {
		if err := m.WriteTable3(out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if *all || *strong {
		if err := m.WriteTable4(out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if *all || *fig7 {
		m.WriteFig7(out)
		fmt.Fprintln(out)
	}
	if *all || *tts {
		m.WriteTTS(out, machine.DefaultTTS())
	}
}
