package runner

import (
	"context"
	"testing"
)

// resizeFake is a budgetable test solver recording every SetWorkers call
// and the worker count in effect at each step.
type resizeFake struct {
	t, dt   float64
	cur     int
	sets    []int // SetWorkers calls, in order
	perStep []int // worker count in effect when each step ran
}

func (f *resizeFake) SetWorkers(n int) { f.cur = n; f.sets = append(f.sets, n) }
func (f *resizeFake) Step(dt float64) error {
	f.perStep = append(f.perStep, f.cur)
	f.t += dt
	return nil
}
func (f *resizeFake) SuggestDT() float64 { return f.dt }
func (f *resizeFake) Clock() float64     { return f.t }
func (f *resizeFake) Diagnostics() Diagnostics {
	return Diagnostics{Clock: f.t, Time: f.t, Mass: 1}
}

// scriptedLease returns a fixed share sequence, repeating the last value.
type scriptedLease struct {
	shares []int
	calls  int
}

func (l *scriptedLease) Workers() int {
	i := l.calls
	l.calls++
	if i >= len(l.shares) {
		i = len(l.shares) - 1
	}
	return l.shares[i]
}

// TestWorkerBudgetResizesBetweenSteps: the lease is polled before every
// step and SetWorkers fires only when the share changes — including before
// the first step, so the solver never steps on its construction default.
func TestWorkerBudgetResizesBetweenSteps(t *testing.T) {
	f := &resizeFake{dt: 1, cur: 99} // 99 = "construction default", must never step
	lease := &scriptedLease{shares: []int{2, 2, 3, 1}}
	rep, err := Run(context.Background(), f, 4, WithWorkerBudget(lease))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 4 {
		t.Fatalf("%d steps, want 4", rep.Steps)
	}
	wantSets := []int{2, 3, 1}
	if len(f.sets) != len(wantSets) {
		t.Fatalf("SetWorkers calls %v, want %v (resize only on change)", f.sets, wantSets)
	}
	for i := range wantSets {
		if f.sets[i] != wantSets[i] {
			t.Fatalf("SetWorkers calls %v, want %v", f.sets, wantSets)
		}
	}
	wantPerStep := []int{2, 2, 3, 1}
	for i := range wantPerStep {
		if f.perStep[i] != wantPerStep[i] {
			t.Fatalf("per-step workers %v, want %v", f.perStep, wantPerStep)
		}
	}
	if lease.calls != 4 {
		t.Fatalf("lease polled %d times, want once per step", lease.calls)
	}
}

// TestWorkerBudgetUnbudgetedSolver: a solver without WorkerBudgeted runs
// normally under a lease — unpinned, but with the lease still polled so the
// allocator's accounting stays fresh.
func TestWorkerBudgetUnbudgetedSolver(t *testing.T) {
	f := &fake{dt: 1}
	lease := &scriptedLease{shares: []int{2}}
	rep, err := Run(context.Background(), f, 3, WithWorkerBudget(lease))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 3 {
		t.Fatalf("%d steps, want 3", rep.Steps)
	}
	if lease.calls != 3 {
		t.Fatalf("lease polled %d times, want once per step", lease.calls)
	}
}

// TestWorkerBudgetZeroShareSkipped: a zero share (e.g. a released lease) is
// never applied — the solver keeps its last positive worker count.
func TestWorkerBudgetZeroShareSkipped(t *testing.T) {
	f := &resizeFake{dt: 1, cur: 1}
	lease := &scriptedLease{shares: []int{2, 0, 0}}
	if _, err := Run(context.Background(), f, 3, WithWorkerBudget(lease)); err != nil {
		t.Fatal(err)
	}
	if len(f.sets) != 1 || f.sets[0] != 2 {
		t.Fatalf("SetWorkers calls %v, want [2]: zero shares must not be applied", f.sets)
	}
}
