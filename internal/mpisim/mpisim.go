// Package mpisim is an in-process stand-in for the MPI runtime the paper
// runs on Fugaku. Ranks are goroutines; point-to-point messages travel over
// buffered channels; the collectives used by the simulation (Barrier, Bcast,
// Reduce/Allreduce, Gather/Allgather, Alltoall) are built from them exactly
// as a flat MPI implementation would be.
//
// The package preserves the programming model the paper's code is written
// against — ghost exchange between Cartesian neighbours, the 3D→2D layout
// exchange feeding the parallel FFT, tree-boundary particle exchange — so
// that the decomposition logic is exercised for real, including its deadlock
// and ordering hazards. Per-rank traffic counters feed the machine model
// that extrapolates communication cost to Fugaku scale (Tables 3–4, Fig. 7).
package mpisim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// message is one point-to-point transfer.
type message struct {
	tag  int
	data any
}

// World owns the communication state for a fixed number of ranks.
type World struct {
	size  int
	chans [][]chan message // chans[src][dst]

	barrierMu  sync.Mutex
	barrierGen int
	barrierCnt int
	barrierCv  *sync.Cond

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
}

// chanBuf is the per-pair channel depth. It bounds how far a sender can run
// ahead of the matching receive; the collectives below are written to be
// deadlock-free under any positive depth.
const chanBuf = 1024

// NewWorld creates a communication world with n ranks.
func NewWorld(n int) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("mpisim: invalid world size %d", n)
	}
	w := &World{size: n}
	w.barrierCv = sync.NewCond(&w.barrierMu)
	w.chans = make([][]chan message, n)
	for i := range w.chans {
		w.chans[i] = make([]chan message, n)
		for j := range w.chans[i] {
			w.chans[i][j] = make(chan message, chanBuf)
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// BytesSent returns the cumulative point-to-point traffic in bytes.
func (w *World) BytesSent() int64 { return w.bytesSent.Load() }

// MessagesSent returns the cumulative number of point-to-point messages.
func (w *World) MessagesSent() int64 { return w.msgsSent.Load() }

// Run executes fn concurrently on every rank and waits for completion. A
// panic inside a rank is recovered and reported; the first error wins.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpisim: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(&Comm{w: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one rank's endpoint into the world.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// dataBytes estimates the wire size of a payload for the traffic counters.
func dataBytes(data any) int64 {
	switch d := data.(type) {
	case []float32:
		return int64(4 * len(d))
	case []float64:
		return int64(8 * len(d))
	case []int:
		return int64(8 * len(d))
	case []byte:
		return int64(len(d))
	case float64, int64, int:
		return 8
	case float32, int32:
		return 4
	default:
		return 16
	}
}

// copyPayload deep-copies slice payloads so that sender and receiver never
// alias (matching MPI's value semantics across the wire).
func copyPayload(data any) any {
	switch d := data.(type) {
	case []float32:
		return append([]float32(nil), d...)
	case []float64:
		return append([]float64(nil), d...)
	case []int:
		return append([]int(nil), d...)
	case []byte:
		return append([]byte(nil), d...)
	default:
		return data
	}
}

// Send delivers data to rank `to` with a matching tag. Slice payloads are
// copied. Send blocks only when the channel buffer is full.
func (c *Comm) Send(to, tag int, data any) error {
	if to < 0 || to >= c.w.size {
		return fmt.Errorf("mpisim: send to invalid rank %d", to)
	}
	c.w.bytesSent.Add(dataBytes(data))
	c.w.msgsSent.Add(1)
	c.w.chans[c.rank][to] <- message{tag: tag, data: copyPayload(data)}
	return nil
}

// Recv receives the next message from rank `from`, which must carry `tag`;
// a tag mismatch is a protocol error (the simulation's exchanges are fully
// ordered per rank pair).
func (c *Comm) Recv(from, tag int) (any, error) {
	if from < 0 || from >= c.w.size {
		return nil, fmt.Errorf("mpisim: recv from invalid rank %d", from)
	}
	m := <-c.w.chans[from][c.rank]
	if m.tag != tag {
		return nil, fmt.Errorf("mpisim: rank %d expected tag %d from %d, got %d",
			c.rank, tag, from, m.tag)
	}
	return m.data, nil
}

// RecvF64 receives a []float64 payload.
func (c *Comm) RecvF64(from, tag int) ([]float64, error) {
	d, err := c.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	s, ok := d.([]float64)
	if !ok {
		return nil, fmt.Errorf("mpisim: expected []float64, got %T", d)
	}
	return s, nil
}

// RecvF32 receives a []float32 payload.
func (c *Comm) RecvF32(from, tag int) ([]float32, error) {
	d, err := c.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	s, ok := d.([]float32)
	if !ok {
		return nil, fmt.Errorf("mpisim: expected []float32, got %T", d)
	}
	return s, nil
}

// Sendrecv posts a send to `to` and then receives from `from` — the ghost-
// exchange primitive. Deadlock-free because Send only blocks on a full
// buffer, and exchanges are paired.
func (c *Comm) Sendrecv(to, sendTag int, data any, from, recvTag int) (any, error) {
	if err := c.Send(to, sendTag, data); err != nil {
		return nil, err
	}
	return c.Recv(from, recvTag)
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	w := c.w
	w.barrierMu.Lock()
	gen := w.barrierGen
	w.barrierCnt++
	if w.barrierCnt == w.size {
		w.barrierCnt = 0
		w.barrierGen++
		w.barrierCv.Broadcast()
	} else {
		for gen == w.barrierGen {
			w.barrierCv.Wait()
		}
	}
	w.barrierMu.Unlock()
}

// Bcast distributes root's data to all ranks and returns each rank's copy.
func (c *Comm) Bcast(root int, data any) (any, error) {
	const tag = -101
	if c.rank == root {
		for r := 0; r < c.w.size; r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tag, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	return c.Recv(root, tag)
}

// ReduceOp names a reduction operator.
type ReduceOp int

// Supported reductions.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func applyOp(op ReduceOp, acc, v []float64) {
	switch op {
	case OpSum:
		for i := range acc {
			acc[i] += v[i]
		}
	case OpMax:
		for i := range acc {
			if v[i] > acc[i] {
				acc[i] = v[i]
			}
		}
	case OpMin:
		for i := range acc {
			if v[i] < acc[i] {
				acc[i] = v[i]
			}
		}
	}
}

// Allreduce combines vec across all ranks with op and returns the result on
// every rank (gather-to-root + broadcast, as flat MPI implementations do at
// small scale).
func (c *Comm) Allreduce(op ReduceOp, vec []float64) ([]float64, error) {
	const tag = -102
	if c.rank == 0 {
		acc := append([]float64(nil), vec...)
		for r := 1; r < c.w.size; r++ {
			d, err := c.RecvF64(r, tag)
			if err != nil {
				return nil, err
			}
			if len(d) != len(acc) {
				return nil, fmt.Errorf("mpisim: allreduce length mismatch %d vs %d", len(d), len(acc))
			}
			applyOp(op, acc, d)
		}
		out, err := c.Bcast(0, acc)
		if err != nil {
			return nil, err
		}
		return out.([]float64), nil
	}
	if err := c.Send(0, tag, vec); err != nil {
		return nil, err
	}
	out, err := c.Bcast(0, nil)
	if err != nil {
		return nil, err
	}
	s, ok := out.([]float64)
	if !ok {
		return nil, fmt.Errorf("mpisim: allreduce expected []float64, got %T", out)
	}
	return s, nil
}

// AllreduceScalar reduces a single float64.
func (c *Comm) AllreduceScalar(op ReduceOp, v float64) (float64, error) {
	out, err := c.Allreduce(op, []float64{v})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// Gather collects each rank's slice on root (concatenated in rank order);
// non-root ranks receive nil.
func (c *Comm) Gather(root int, vec []float64) ([][]float64, error) {
	const tag = -103
	if c.rank != root {
		return nil, c.Send(root, tag, vec)
	}
	out := make([][]float64, c.w.size)
	out[root] = append([]float64(nil), vec...)
	for r := 0; r < c.w.size; r++ {
		if r == root {
			continue
		}
		d, err := c.RecvF64(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = d
	}
	return out, nil
}

// Alltoall exchanges send[r] with every rank r and returns recv where
// recv[r] is the slice sent by rank r to this rank. The exchange is staged
// in relative-offset order, the standard deadlock-free schedule.
func (c *Comm) Alltoall(send [][]float64) ([][]float64, error) {
	const tag = -104
	n := c.w.size
	if len(send) != n {
		return nil, fmt.Errorf("mpisim: alltoall needs %d buckets, got %d", n, len(send))
	}
	recv := make([][]float64, n)
	recv[c.rank] = append([]float64(nil), send[c.rank]...)
	for off := 1; off < n; off++ {
		to := (c.rank + off) % n
		from := (c.rank - off + n) % n
		d, err := c.Sendrecv(to, tag, send[to], from, tag)
		if err != nil {
			return nil, err
		}
		s, ok := d.([]float64)
		if !ok && d != nil {
			return nil, fmt.Errorf("mpisim: alltoall expected []float64, got %T", d)
		}
		recv[from] = s
	}
	return recv, nil
}

// AlltoallF32 is Alltoall for float32 payloads (the Vlasov ghost and FFT
// layers are single precision).
func (c *Comm) AlltoallF32(send [][]float32) ([][]float32, error) {
	const tag = -105
	n := c.w.size
	if len(send) != n {
		return nil, fmt.Errorf("mpisim: alltoall needs %d buckets, got %d", n, len(send))
	}
	recv := make([][]float32, n)
	recv[c.rank] = append([]float32(nil), send[c.rank]...)
	for off := 1; off < n; off++ {
		to := (c.rank + off) % n
		from := (c.rank - off + n) % n
		d, err := c.Sendrecv(to, tag, send[to], from, tag)
		if err != nil {
			return nil, err
		}
		s, ok := d.([]float32)
		if !ok && d != nil {
			return nil, fmt.Errorf("mpisim: alltoall expected []float32, got %T", d)
		}
		recv[from] = s
	}
	return recv, nil
}

// Request is a handle to a non-blocking operation; Wait blocks until it
// completes and returns the received payload (nil for sends).
type Request struct {
	done chan any
	err  error
}

// Wait blocks for completion.
func (r *Request) Wait() (any, error) {
	if r.done == nil {
		return nil, r.err
	}
	d := <-r.done
	return d, r.err
}

// Isend posts a send that completes asynchronously (the channel buffer makes
// the enqueue itself non-blocking in all but pathological backlogs; the
// goroutine absorbs even those).
func (c *Comm) Isend(to, tag int, data any) *Request {
	if to < 0 || to >= c.w.size {
		return &Request{err: fmt.Errorf("mpisim: isend to invalid rank %d", to)}
	}
	req := &Request{done: make(chan any, 1)}
	payload := copyPayload(data)
	c.w.bytesSent.Add(dataBytes(data))
	c.w.msgsSent.Add(1)
	go func() {
		c.w.chans[c.rank][to] <- message{tag: tag, data: payload}
		req.done <- nil
	}()
	return req
}

// Irecv posts a receive that completes asynchronously; Wait returns the
// payload. Tag mismatches surface as errors at Wait.
func (c *Comm) Irecv(from, tag int) *Request {
	if from < 0 || from >= c.w.size {
		return &Request{err: fmt.Errorf("mpisim: irecv from invalid rank %d", from)}
	}
	req := &Request{done: make(chan any, 1)}
	go func() {
		m := <-c.w.chans[from][c.rank]
		if m.tag != tag {
			req.err = fmt.Errorf("mpisim: rank %d expected tag %d from %d, got %d",
				c.rank, tag, from, m.tag)
			req.done <- nil
			return
		}
		req.done <- m.data
	}()
	return req
}
