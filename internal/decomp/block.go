// Package decomp implements the paper's §5.1.3 parallel decomposition on
// top of the mpisim runtime: the spatial grid is split evenly along each
// axis across a Cartesian process grid while VELOCITY SPACE IS NEVER
// DECOMPOSED — each rank holds complete velocity cubes, so all moments stay
// communication-free. Position-space advection exchanges three ghost planes
// (the SL-MPP5 stencil half-width) with the two neighbours along the sweep
// axis; interface fluxes are computed from identical stencil data on both
// sides, so global mass conservation holds to round-off.
//
// The package also provides the distributed FFT used by the PM part: ranks
// re-distribute the 3D-decomposed density into slabs (the analogue of the
// paper's 3D→2D layout exchange feeding the SSL II FFT), transform, and
// return.
package decomp

import (
	"fmt"
	"math"

	"vlasov6d/internal/advect"
	"vlasov6d/internal/mpisim"
	"vlasov6d/internal/phase"
)

// GhostWidth is the stencil half-width of SL-MPP5 for |CFL| ≤ 1.
const GhostWidth = 3

// Block is one rank's piece of the global phase-space grid.
type Block struct {
	Comm   *mpisim.Comm
	Cart   *mpisim.Cart
	G      *phase.Grid
	Global [3]int // global spatial extents
	Coords [3]int // this rank's process coordinates

	open *advect.SLMPP5
}

// NewBlock builds the local block for this rank. globalN must be divisible
// by the process grid along each axis, and each local extent must be at
// least GhostWidth.
func NewBlock(comm *mpisim.Comm, cart *mpisim.Cart, globalN [3]int, nu [3]int,
	box [3]float64, umax float64) (*Block, error) {
	var local [3]int
	var localBox [3]float64
	for d := 0; d < 3; d++ {
		if globalN[d]%cart.N[d] != 0 {
			return nil, fmt.Errorf("decomp: global N[%d]=%d not divisible by %d ranks",
				d, globalN[d], cart.N[d])
		}
		local[d] = globalN[d] / cart.N[d]
		if local[d] < GhostWidth {
			return nil, fmt.Errorf("decomp: local extent %d < ghost width %d", local[d], GhostWidth)
		}
		localBox[d] = box[d] / float64(cart.N[d])
	}
	g, err := phase.New(local[0], local[1], local[2], nu, localBox, umax)
	if err != nil {
		return nil, err
	}
	return &Block{
		Comm:   comm,
		Cart:   cart,
		G:      g,
		Global: globalN,
		Coords: cart.Coords(comm.Rank()),
		open:   advect.NewSLMPP5(),
	}, nil
}

// GlobalOrigin returns the global index of the block's first cell along d.
func (b *Block) GlobalOrigin(d int) int {
	return b.Coords[d] * b.localN(d)
}

func (b *Block) localN(d int) int {
	switch d {
	case 0:
		return b.G.NX
	case 1:
		return b.G.NY
	default:
		return b.G.NZ
	}
}

// packPlanes copies `count` spatial planes perpendicular to axis, starting
// at plane index `from`, into a flat buffer (plane-major).
func (b *Block) packPlanes(axis, from, count int) []float32 {
	g := b.G
	nc := g.NCube()
	planeCells := g.NCells() / b.localN(axis)
	out := make([]float32, count*planeCells*nc)
	o := 0
	for p := 0; p < count; p++ {
		idx := from + p
		b.forEachPlaneCell(axis, idx, func(cell int) {
			copy(out[o:o+nc], g.CubeAt(cell))
			o += nc
		})
	}
	return out
}

// forEachPlaneCell visits the flat spatial index of every cell in the
// perpendicular plane at position idx along axis, in a fixed order.
func (b *Block) forEachPlaneCell(axis, idx int, fn func(cell int)) {
	g := b.G
	switch axis {
	case 0:
		for iy := 0; iy < g.NY; iy++ {
			for iz := 0; iz < g.NZ; iz++ {
				fn(g.CellIndex(idx, iy, iz))
			}
		}
	case 1:
		for ix := 0; ix < g.NX; ix++ {
			for iz := 0; iz < g.NZ; iz++ {
				fn(g.CellIndex(ix, idx, iz))
			}
		}
	default:
		for ix := 0; ix < g.NX; ix++ {
			for iy := 0; iy < g.NY; iy++ {
				fn(g.CellIndex(ix, iy, idx))
			}
		}
	}
}

// ExchangeGhosts trades GhostWidth boundary planes with both neighbours
// along axis and returns (loGhost, hiGhost): the remote planes adjacent to
// the low and high faces, plane-major with the plane nearest the boundary
// LAST in loGhost (i.e. loGhost holds global planes origin−3, −2, −1 in
// ascending order) and ascending in hiGhost (origin+n, +1, +2).
func (b *Block) ExchangeGhosts(axis int) (lo, hi []float32, err error) {
	n := b.localN(axis)
	loNbr, hiNbr := b.Cart.Shift(b.Comm.Rank(), axis)
	// Send my low face to the low neighbour (it becomes their hiGhost), my
	// high face to the high neighbour.
	tagBase := 1000 + axis*4
	myLow := b.packPlanes(axis, 0, GhostWidth)
	myHigh := b.packPlanes(axis, n-GhostWidth, GhostWidth)
	// Stage 1: send high face up, receive loGhost from below.
	d, err := b.Comm.Sendrecv(hiNbr, tagBase, myHigh, loNbr, tagBase)
	if err != nil {
		return nil, nil, err
	}
	lo = d.([]float32)
	// Stage 2: send low face down, receive hiGhost from above.
	d, err = b.Comm.Sendrecv(loNbr, tagBase+1, myLow, hiNbr, tagBase+1)
	if err != nil {
		return nil, nil, err
	}
	hi = d.([]float32)
	return lo, hi, nil
}

// DriftAxis advances the position-space advection along axis by dt at scale
// factor a. The per-step CFL must satisfy |c| ≤ 1 (the ghost width); the
// caller splits larger steps.
func (b *Block) DriftAxis(axis int, dt, a float64) error {
	g := b.G
	dx := g.DX(axis) // local box / local N = global box / global N
	cmax := g.UMax * dt / (a * a * dx)
	if cmax > 1+1e-12 {
		return fmt.Errorf("decomp: drift CFL %v exceeds ghost width (split the step)", cmax)
	}
	lo, hi, err := b.ExchangeGhosts(axis)
	if err != nil {
		return err
	}
	n := b.localN(axis)
	nc := g.NCube()
	planeCells := g.NCells() / n
	nu := g.NU
	nud := nu[axis] // velocity index along the same axis drives the CFL
	cfl := make([]float64, nud)
	for j := 0; j < nud; j++ {
		cfl[j] = g.U(axis, j) * dt / (a * a * dx)
	}
	// For each perpendicular cell column p (index within a plane) and cube
	// element e, assemble the padded line and update in place.
	padded := make([]float64, n+2*GhostWidth)
	flux := make([]float64, n+1)
	// Cell offsets along the line for column p: need the flat cell index at
	// (line position i, column p). Build a lookup per column.
	colCells := make([][]int, planeCells)
	{
		p := 0
		// Column order must match packPlanes' plane-cell order.
		b.forEachPlaneCell(axis, 0, func(cell0 int) {
			cells := make([]int, n)
			for i := 0; i < n; i++ {
				cells[i] = cell0 + i*b.cellStride(axis)
			}
			colCells[p] = cells
			p++
		})
	}
	at := func(f []float64, j int) float64 {
		return padded[j+GhostWidth]
	}
	interior := padded[GhostWidth : GhostWidth+n]
	for p := 0; p < planeCells; p++ {
		cells := colCells[p]
		for e := 0; e < nc; e++ {
			j := velIndexAlong(axis, e, nu)
			c := cfl[j]
			if c == 0 {
				continue
			}
			for i := 0; i < n; i++ {
				padded[GhostWidth+i] = float64(g.Data[cells[i]*nc+e])
			}
			for k := 0; k < GhostWidth; k++ {
				padded[k] = float64(lo[(k*planeCells+p)*nc+e])
				padded[GhostWidth+n+k] = float64(hi[(k*planeCells+p)*nc+e])
			}
			b.open.Fluxes(interior, c, flux, at)
			for i := 0; i < n; i++ {
				v := padded[GhostWidth+i] - (flux[i+1] - flux[i])
				g.Data[cells[i]*nc+e] = float32(v)
			}
		}
	}
	return nil
}

// cellStride returns the flat spatial-index stride along axis.
func (b *Block) cellStride(axis int) int {
	switch axis {
	case 0:
		return b.G.NY * b.G.NZ
	case 1:
		return b.G.NZ
	default:
		return 1
	}
}

// Drift applies all three spatial advections, splitting each into enough
// sub-steps to honour the ghost-width CFL limit.
func (b *Block) Drift(dt, a float64) error {
	for axis := 0; axis < 3; axis++ {
		cmax := b.G.UMax * dt / (a * a * b.G.DX(axis))
		sub := int(math.Ceil(cmax))
		if sub < 1 {
			sub = 1
		}
		for s := 0; s < sub; s++ {
			if err := b.DriftAxis(axis, dt/float64(sub), a); err != nil {
				return err
			}
		}
	}
	return nil
}

// velIndexAlong extracts the velocity index along axis d from a flat cube
// element index (duplicated from package vlasov to keep the packages
// decoupled).
func velIndexAlong(d, e int, nu [3]int) int {
	switch d {
	case 0:
		return e / (nu[1] * nu[2])
	case 1:
		return (e / nu[2]) % nu[1]
	default:
		return e % nu[2]
	}
}

// LocalMass returns this block's total phase-space mass.
func (b *Block) LocalMass() float64 { return b.G.TotalMass() }

// GlobalMass reduces the total mass across all ranks.
func (b *Block) GlobalMass() (float64, error) {
	return b.Comm.AllreduceScalar(mpisim.OpSum, b.LocalMass())
}

// GatherDensity assembles the GLOBAL density moment field on every rank:
// each rank computes its local moments and contributes them into its slots
// of a global mesh, combined with an all-reduce. This is the shared-mesh
// step feeding the PM solve.
func (b *Block) GatherDensity() ([]float64, error) {
	m := b.G.ComputeMoments()
	nx, ny, nz := b.Global[0], b.Global[1], b.Global[2]
	mesh := make([]float64, nx*ny*nz)
	ox, oy, oz := b.GlobalOrigin(0), b.GlobalOrigin(1), b.GlobalOrigin(2)
	for ix := 0; ix < b.G.NX; ix++ {
		for iy := 0; iy < b.G.NY; iy++ {
			for iz := 0; iz < b.G.NZ; iz++ {
				mesh[((ox+ix)*ny+oy+iy)*nz+oz+iz] = m.Density[b.G.CellIndex(ix, iy, iz)]
			}
		}
	}
	return b.Comm.Allreduce(mpisim.OpSum, mesh)
}
