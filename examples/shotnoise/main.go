// Shot noise: the §5.4 / Figs. 5–6 experiment in miniature. The same
// neutrino component is evolved twice — once as a continuous distribution
// function on the 6D grid, once as TianNu-style particles — and the
// cell-to-cell fluctuation of the density, velocity and dispersion fields is
// compared. The Vlasov fields are smooth; the particle fields carry Poisson
// noise that no amount of smoothing removes without destroying resolution
// (the paper's eq. 9 trade-off).
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"vlasov6d"
	"vlasov6d/internal/analysis"
)

func main() {
	log.SetFlags(0)
	base := vlasov6d.Config{
		Par:       vlasov6d.Planck2015(0.4),
		Box:       200,
		NGrid:     8,
		NU:        8,
		NPartSide: 8,
		Seed:      7,
	}
	// The comparison pair runs concurrently through the batch scheduler —
	// one worker each for the Vlasov run and the ν-particle baseline, the
	// same RunBatch call a production sweep uses.
	var simV, simP *vlasov6d.Simulation
	jobs := []vlasov6d.BatchJob{
		{
			Name:  "vlasov",
			Until: 0.2,
			New: func() (vlasov6d.Solver, error) {
				var err error
				simV, err = vlasov6d.NewSimulation(base, 1.0/11, vlasov6d.WithPMFactor(2))
				return simV, err
			},
			Opts: []vlasov6d.RunOption{vlasov6d.WithMaxSteps(100000)},
		},
		{
			Name:  "nu-particles",
			Until: 0.2,
			New: func() (vlasov6d.Solver, error) {
				var err error
				simP, err = vlasov6d.NewSimulation(base, 1.0/11, vlasov6d.WithPMFactor(2),
					vlasov6d.WithNuParticleBaseline(2*base.NPartSide))
				return simP, err
			},
			Opts: []vlasov6d.RunOption{vlasov6d.WithMaxSteps(100000)},
		},
	}
	fmt.Println("evolving the Vlasov run and the ν-particle baseline (8× CDM count, as TianNu) concurrently ...")
	results, err := vlasov6d.RunBatch(context.Background(), jobs,
		vlasov6d.WithBatchNotify(func(u vlasov6d.BatchUpdate) {
			if u.Status == vlasov6d.JobDone {
				fmt.Printf("  %-14s done: %d steps in %.2fs\n", u.Name, u.Report.Steps, u.Report.Wall.Seconds())
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Status != vlasov6d.JobDone {
			log.Fatalf("job %s: %v (%v)", r.Name, r.Status, r.Err)
		}
	}

	momV := simV.Grid.ComputeMoments()
	n3 := [3]int{simV.Grid.NX, simV.Grid.NY, simV.Grid.NZ}
	momP, err := analysis.MomentsFromParticles(simP.NuPart, n3)
	if err != nil {
		log.Fatal(err)
	}
	meanV := make([]float64, len(momV.Density))
	for c := range meanV {
		var m2 float64
		for d := 0; d < 3; d++ {
			m2 += momV.MeanU[d][c] * momV.MeanU[d][c]
		}
		meanV[c] = math.Sqrt(m2)
	}
	perCell := float64(simP.NuPart.N) / float64(len(momV.Density))
	fmt.Printf("\nν particles per cell in the baseline: %.0f → expected Poisson noise 1/√N = %.3f\n",
		perCell, 1/math.Sqrt(perCell))
	fmt.Printf("%-12s %16s %16s\n", "field", "Vlasov RMS", "N-body RMS")
	rows := []struct {
		name   string
		vl, nb []float64
	}{
		{"density", momV.Density, momP.Density},
		{"velocity", meanV, momP.MeanV},
		{"dispersion", momV.Sigma, momP.Sigma},
	}
	for _, r := range rows {
		nc := analysis.CompareNoise(r.vl, r.nb)
		fmt.Printf("%-12s %16.4f %16.4f\n", r.name, nc.VlasovRMS, nc.ParticleRMS)
	}
	fmt.Println("\nthe N-body dispersion/velocity maps fluctuate cell-to-cell while the")
	fmt.Println("Vlasov maps are smooth — Fig. 6's message, measured rather than plotted.")
}
