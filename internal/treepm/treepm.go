// Package treepm combines the particle-mesh long-range solver (package
// poisson) with the Barnes–Hut short-range tree (package tree) into the full
// TreePM gravity of §5.1.2.
//
// The split is the standard Gaussian one: the PM Green's function carries
// exp(−k²·r_s²) and the tree supplies the erfc complement, so PM + tree sums
// to the exact periodic Newtonian force. The PM density mesh is shared with
// the Vlasov component — the caller adds the neutrino density (a velocity
// moment of f) to the particle CIC deposit before the solve, which is
// exactly the paper's coupling of eq. (2).
package treepm

import (
	"fmt"

	"vlasov6d/internal/nbody"
	"vlasov6d/internal/poisson"
	"vlasov6d/internal/tree"
)

// Config sizes the TreePM solver.
type Config struct {
	Mesh [3]int     // PM mesh shape (the paper sets N_PM = N_CDM/3³)
	Box  [3]float64 // comoving box (h⁻¹Mpc)
	// RSplitCells is r_s in units of PM cells (GADGET's ASMTH, default 1.25).
	RSplitCells float64
	// Theta is the tree opening angle (default 0.5).
	Theta float64
	// Soft is the Plummer softening length (default 1/30 of a PM cell… set
	// explicitly for production runs).
	Soft float64
	// ScalarKernel selects the erfc-per-pair baseline kernel.
	ScalarKernel bool
	// PMOnly disables the tree (pure PM gravity, used by the Vlasov-only
	// configurations and by the ablation benchmarks).
	PMOnly bool
}

func (c *Config) setDefaults() error {
	for d := 0; d < 3; d++ {
		if c.Mesh[d] < 2 {
			return fmt.Errorf("treepm: invalid mesh %v", c.Mesh)
		}
		if c.Box[d] <= 0 {
			return fmt.Errorf("treepm: invalid box %v", c.Box)
		}
	}
	if c.RSplitCells == 0 {
		c.RSplitCells = 1.25
	}
	if c.RSplitCells < 0 {
		return fmt.Errorf("treepm: negative RSplitCells")
	}
	if c.Theta == 0 {
		c.Theta = 0.5
	}
	if c.Soft == 0 {
		c.Soft = c.Box[0] / float64(c.Mesh[0]) / 30
	}
	return nil
}

// Solver evaluates TreePM accelerations and exposes the shared PM state.
type Solver struct {
	cfg   Config
	pm    *poisson.Solver
	rs    float64
	mesh  []float64 // density scratch
	phi   []float64
	accP  [3][]float64 // per-particle interpolation scratch
	Stats Stats
	// workers pins the parallelism of the PM FFTs and of every tree built
	// by Accel (0 = GOMAXPROCS at call time); set through SetWorkers.
	workers int
}

// SetWorkers pins the intra-call worker count (minimum 1): the PM FFTs and
// the parallel walk of every tree Accel builds, so a scheduler-owned core
// budget bounds the whole force evaluation.
func (s *Solver) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
	s.pm.SetWorkers(n)
}

// Stats records the per-part work of the last Accel call, feeding the
// machine model's calibration.
type Stats struct {
	PMCells       int
	TreeParticles int
}

// New constructs a TreePM solver.
func New(cfg Config) (*Solver, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	pm, err := poisson.NewSolver(cfg.Mesh, cfg.Box)
	if err != nil {
		return nil, err
	}
	cell := cfg.Box[0] / float64(cfg.Mesh[0])
	return &Solver{
		cfg:  cfg,
		pm:   pm,
		rs:   cfg.RSplitCells * cell,
		mesh: make([]float64, pm.Size()),
		phi:  make([]float64, pm.Size()),
	}, nil
}

// RSplit returns the force-split scale in h⁻¹Mpc.
func (s *Solver) RSplit() float64 { return s.rs }

// Mesh returns the PM mesh shape.
func (s *Solver) Mesh() [3]int { return s.cfg.Mesh }

// DensityMesh deposits the particles on the PM mesh and adds extraRho
// (e.g. the neutrino density moment, same mesh layout) when non-nil. The
// result is the total comoving mass density.
func (s *Solver) DensityMesh(p *nbody.Particles, extraRho []float64) ([]float64, error) {
	for i := range s.mesh {
		s.mesh[i] = 0
	}
	if p != nil {
		if err := p.CICDeposit(s.mesh, s.cfg.Mesh); err != nil {
			return nil, err
		}
	}
	if extraRho != nil {
		if len(extraRho) != len(s.mesh) {
			return nil, fmt.Errorf("treepm: extraRho length %d != %d", len(extraRho), len(s.mesh))
		}
		for i, v := range extraRho {
			s.mesh[i] += v
		}
	}
	return s.mesh, nil
}

// Potential solves the (optionally long-range-filtered) Poisson equation for
// the given density mesh with the supplied coefficient (4πG/a in the hybrid
// simulation) and returns the mesh potential.
func (s *Solver) Potential(rho []float64, pmCoeff float64, filtered bool) ([]float64, error) {
	rs := 0.0
	if filtered && !s.cfg.PMOnly {
		rs = s.rs
	}
	return s.pm.SolveFiltered(rho, pmCoeff, rs, s.phi)
}

// MeshAccel differentiates the potential into the three acceleration
// component meshes −∇φ.
func (s *Solver) MeshAccel(phi []float64) ([3][]float64, error) {
	return s.pm.Accel(phi)
}

// Accel computes the total gravitational acceleration du/dt = −∇φ on every
// particle: PM long-range (filtered Poisson + CIC gather) plus tree
// short-range scaled by shortScale (1/a in comoving coordinates; the PM part
// is already scaled through pmCoeff = 4πG/a). extraRho optionally adds the
// Vlasov component's density to the shared mesh.
func (s *Solver) Accel(p *nbody.Particles, extraRho []float64, pmCoeff, shortScale float64, acc [3][]float64) error {
	for d := 0; d < 3; d++ {
		if len(acc[d]) != p.N {
			return fmt.Errorf("treepm: acc[%d] length %d != %d", d, len(acc[d]), p.N)
		}
	}
	rho, err := s.DensityMesh(p, extraRho)
	if err != nil {
		return err
	}
	phi, err := s.Potential(rho, pmCoeff, true)
	if err != nil {
		return err
	}
	meshAcc, err := s.MeshAccel(phi)
	if err != nil {
		return err
	}
	for d := 0; d < 3; d++ {
		if err := p.CICInterp(meshAcc[d], s.cfg.Mesh, acc[d]); err != nil {
			return err
		}
	}
	s.Stats = Stats{PMCells: s.pm.Size(), TreeParticles: 0}
	if s.cfg.PMOnly {
		return nil
	}
	tr, err := tree.Build(p, tree.Options{
		Theta:  s.cfg.Theta,
		RSplit: s.rs,
		Soft:   s.cfg.Soft,
		Scalar: s.cfg.ScalarKernel,
	})
	if err != nil {
		return err
	}
	if s.workers > 0 {
		tr.SetWorkers(s.workers)
	}
	var short [3][]float64
	for d := 0; d < 3; d++ {
		if cap(s.accP[d]) < p.N {
			s.accP[d] = make([]float64, p.N)
		}
		short[d] = s.accP[d][:p.N]
	}
	if err := tr.AccelAll(short); err != nil {
		return err
	}
	for d := 0; d < 3; d++ {
		av, sv := acc[d], short[d]
		for i := range av {
			av[i] += shortScale * sv[i]
		}
	}
	s.Stats.TreeParticles = p.N
	return nil
}
