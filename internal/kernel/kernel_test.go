package kernel

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomBrick(t *testing.T, dims ...int) *Brick {
	t.Helper()
	b, err := NewBrick(dims...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := range b.Data {
		b.Data[i] = rng.Float32()
	}
	return b
}

func cloneBrick(b *Brick) *Brick {
	return &Brick{
		Dims: append([]int(nil), b.Dims...),
		Data: append([]float32(nil), b.Data...),
	}
}

func TestNewBrickValidation(t *testing.T) {
	if _, err := NewBrick(); err == nil {
		t.Fatal("empty dims accepted")
	}
	if _, err := NewBrick(4, 0, 4); err == nil {
		t.Fatal("zero dim accepted")
	}
	b, err := NewBrick(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Data) != 24 {
		t.Fatalf("data length %d, want 24", len(b.Data))
	}
}

func TestShape3(t *testing.T) {
	b, _ := NewBrick(2, 3, 4, 5)
	pre, n, post, err := b.Shape3(1)
	if err != nil {
		t.Fatal(err)
	}
	if pre != 2 || n != 3 || post != 20 {
		t.Fatalf("shape3(1) = (%d,%d,%d)", pre, n, post)
	}
	if _, _, _, err := b.Shape3(4); err == nil {
		t.Fatal("bad axis accepted")
	}
}

func TestModesAgreeBitwise(t *testing.T) {
	// All modes must produce the identical float32 result: they reorder
	// memory traffic, never arithmetic.
	dims := []int{6, 6, 6, 8, 7, 16}
	for axis := 0; axis < 6; axis++ {
		ref := randomBrick(t, dims...)
		got := cloneBrick(ref)
		if err := ref.Sweep(axis, Strided, 0.4); err != nil {
			t.Fatal(err)
		}
		if err := got.Sweep(axis, Contig, 0.4); err != nil {
			t.Fatal(err)
		}
		for i := range ref.Data {
			if ref.Data[i] != got.Data[i] {
				t.Fatalf("axis %d: Contig differs from Strided at %d: %v vs %v",
					axis, i, got.Data[i], ref.Data[i])
			}
		}
	}
}

func TestLATAgreesBitwise(t *testing.T) {
	dims := []int{6, 6, 6, 8, 7, 16}
	ref := randomBrick(t, dims...)
	got := cloneBrick(ref)
	if err := ref.Sweep(5, Strided, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := got.Sweep(5, LAT, 0.4); err != nil {
		t.Fatal(err)
	}
	for i := range ref.Data {
		if ref.Data[i] != got.Data[i] {
			t.Fatalf("LAT differs at %d: %v vs %v", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestLATRejectedOffFastestAxis(t *testing.T) {
	b := randomBrick(t, 8, 8, 8)
	if err := b.Sweep(0, LAT, 0.3); err == nil {
		t.Fatal("LAT accepted on a non-fastest axis")
	}
}

func TestSweepValidation(t *testing.T) {
	b := randomBrick(t, 4, 16)
	if err := b.Sweep(0, Strided, 0.3); err == nil {
		t.Fatal("extent < 6 accepted")
	}
	if err := b.Sweep(1, Strided, float32(math.NaN())); err == nil {
		t.Fatal("NaN CFL accepted")
	}
	if err := b.Sweep(7, Strided, 0.1); err == nil {
		t.Fatal("bad axis accepted")
	}
	if err := b.Sweep(1, Mode(42), 0.1); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestSweepConservesMass(t *testing.T) {
	b := randomBrick(t, 6, 6, 8, 16)
	total := func() float64 {
		s := 0.0
		for _, v := range b.Data {
			s += float64(v)
		}
		return s
	}
	m0 := total()
	for axis := 0; axis < 4; axis++ {
		if err := b.Sweep(axis, Contig, 0.35); err != nil {
			t.Fatal(err)
		}
	}
	if d := math.Abs(total() - m0); d > 1e-3*m0 {
		t.Fatalf("mass drift %v (float32 accumulation)", d)
	}
}

func TestZeroCFLIsIdentity(t *testing.T) {
	b := randomBrick(t, 6, 8, 16)
	ref := cloneBrick(b)
	for axis := 0; axis < 3; axis++ {
		for _, m := range []Mode{Strided, Contig} {
			if err := b.Sweep(axis, m, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Sweep(2, LAT, 0); err != nil {
		t.Fatal(err)
	}
	for i := range b.Data {
		if b.Data[i] != ref.Data[i] {
			t.Fatalf("zero CFL changed data at %d", i)
		}
	}
}

func TestUpdateLine5ShiftsSine(t *testing.T) {
	// One full period at CFL 0.5 returns a smooth profile to itself with
	// only high-order error.
	n := 64
	line := make([]float32, n)
	for i := range line {
		line[i] = float32(2 + math.Sin(2*math.Pi*float64(i)/float64(n)))
	}
	orig := append([]float32(nil), line...)
	a := cslCoefs(0.5)
	for it := 0; it < 2*n; it++ {
		updateLine5(line, &a)
	}
	for i := range line {
		if d := math.Abs(float64(line[i] - orig[i])); d > 1e-3 {
			t.Fatalf("cell %d error %v after one period", i, d)
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(60)
		b := 1 + rng.Intn(TileB)
		src := make([]float32, n*b)
		for i := range src {
			src[i] = rng.Float32()
		}
		tbuf := make([]float32, n*b)
		dst := make([]float32, n*b)
		transposeIn(src, tbuf, n, b)
		transposeOut(tbuf, dst, n, b)
		for i := range src {
			if src[i] != dst[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureTable1SmokeAndShape(t *testing.T) {
	cfg := Table1Config{NX: 6, NY: 6, NZ: 6, NUX: 8, NUY: 8, NUZ: 16, Reps: 1}
	rows, err := Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 6 directions × 2 modes + 1 LAT row.
	if len(rows) != 13 {
		t.Fatalf("got %d rows, want 13", len(rows))
	}
	for _, r := range rows {
		if r.GFlops <= 0 {
			t.Fatalf("non-positive throughput for %s %s", r.Direction, r.Mode)
		}
	}
	var sb strings.Builder
	WriteTable1(&sb, rows)
	out := sb.String()
	for _, d := range Directions {
		if !strings.Contains(out, d) {
			t.Fatalf("table output missing direction %s:\n%s", d, out)
		}
	}
	if !strings.Contains(out, "–") {
		t.Fatalf("table should mark inapplicable LAT cells with –:\n%s", out)
	}
}

func TestContigBeatsStridedOffFastAxis(t *testing.T) {
	// The Table 1 effect, asserted qualitatively: for a sweep along a
	// large-stride axis, the contiguous-inner-loop kernel must be faster.
	// Use a brick large enough to defeat L1 caching of whole lines.
	cfg := Table1Config{NX: 6, NY: 6, NZ: 6, NUX: 24, NUY: 24, NUZ: 24, Reps: 2}
	rows, err := Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string]map[Mode]float64{}
	for _, r := range rows {
		if perf[r.Direction] == nil {
			perf[r.Direction] = map[Mode]float64{}
		}
		perf[r.Direction][r.Mode] = r.GFlops
	}
	// Quantitative layout ratios are measured by the benchmarks (shared CI
	// machines are too noisy for hard thresholds in unit tests); here we
	// assert only that the restructured kernels are not pathologically
	// slower than the naive path. Note the LAT-vs-gather race cannot be won
	// in scalar Go: without SIMD lanes there is no reward for cross-line
	// contiguity, only the transpose cost (see EXPERIMENTS.md) — so LAT is
	// held to a correctness+sanity bar, not the paper's speedup.
	if perf["ux"][Contig] < 0.7*perf["ux"][Strided] {
		t.Errorf("ux: Contig %.2f far below Strided %.2f",
			perf["ux"][Contig], perf["ux"][Strided])
	}
	if perf["uz"][LAT] < perf["uz"][Contig]*0.3 {
		t.Errorf("uz: LAT %.2f pathologically below gather %.2f", perf["uz"][LAT], perf["uz"][Contig])
	}
}

func TestModeString(t *testing.T) {
	if Strided.String() != "w/o SIMD" || Contig.String() != "w/ SIMD" || LAT.String() != "w/ LAT" {
		t.Fatal("mode labels drifted from the paper's headers")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Fatal("unknown mode label")
	}
}
