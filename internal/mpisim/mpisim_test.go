package mpisim

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Fatal("zero-size world accepted")
	}
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 4 {
		t.Fatalf("size %d", w.Size())
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []float64{1, 2, 3})
		}
		d, err := c.RecvF64(0, 7)
		if err != nil {
			return err
		}
		if len(d) != 3 || d[2] != 3 {
			return fmt.Errorf("bad payload %v", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not be visible to the receiver
			return c.Send(1, 1, []float64{0})
		}
		d, err := c.RecvF64(0, 0)
		if err != nil {
			return err
		}
		if _, err := c.RecvF64(0, 1); err != nil {
			return err
		}
		if d[0] != 1 {
			return fmt.Errorf("aliasing: got %v", d[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchDetected(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []float64{1})
		}
		_, err := c.Recv(0, 6)
		if err == nil {
			return fmt.Errorf("tag mismatch unnoticed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanks(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return fmt.Errorf("bad dest accepted")
		}
		if _, err := c.Recv(-1, 0); err == nil {
			return fmt.Errorf("bad source accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicInRankIsReported(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestBarrierOrdering(t *testing.T) {
	w, _ := NewWorld(8)
	var before, after atomic.Int32
	err := w.Run(func(c *Comm) error {
		before.Add(1)
		c.Barrier()
		if before.Load() != 8 {
			return fmt.Errorf("rank %d passed barrier before all arrived", c.Rank())
		}
		after.Add(1)
		c.Barrier()
		if after.Load() != 8 {
			return fmt.Errorf("second barrier broken")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	w, _ := NewWorld(5)
	err := w.Run(func(c *Comm) error {
		var payload []float64
		if c.Rank() == 2 {
			payload = []float64{3.14, 2.71}
		}
		out, err := c.Bcast(2, payload)
		if err != nil {
			return err
		}
		d := out.([]float64)
		if d[0] != 3.14 || d[1] != 2.71 {
			return fmt.Errorf("rank %d got %v", c.Rank(), d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	w, _ := NewWorld(6)
	err := w.Run(func(c *Comm) error {
		v := []float64{float64(c.Rank()), 1}
		out, err := c.Allreduce(OpSum, v)
		if err != nil {
			return err
		}
		if out[0] != 15 || out[1] != 6 {
			return fmt.Errorf("rank %d: %v", c.Rank(), out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	w, _ := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		mx, err := c.AllreduceScalar(OpMax, float64(c.Rank()*c.Rank()))
		if err != nil {
			return err
		}
		if mx != 9 {
			return fmt.Errorf("max %v", mx)
		}
		mn, err := c.AllreduceScalar(OpMin, float64(c.Rank())-1)
		if err != nil {
			return err
		}
		if mn != -1 {
			return fmt.Errorf("min %v", mn)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	w, _ := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		out, err := c.Gather(1, []float64{float64(c.Rank() * 10)})
		if err != nil {
			return err
		}
		if c.Rank() != 1 {
			if out != nil {
				return fmt.Errorf("non-root got data")
			}
			return nil
		}
		for r := 0; r < 3; r++ {
			if out[r][0] != float64(r*10) {
				return fmt.Errorf("gather slot %d = %v", r, out[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	w, _ := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		send := make([][]float64, 4)
		for r := range send {
			send[r] = []float64{float64(c.Rank()*100 + r)}
		}
		recv, err := c.Alltoall(send)
		if err != nil {
			return err
		}
		for r := range recv {
			want := float64(r*100 + c.Rank())
			if len(recv[r]) != 1 || recv[r][0] != want {
				return fmt.Errorf("rank %d from %d: got %v want %v", c.Rank(), r, recv[r], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallF32(t *testing.T) {
	w, _ := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		send := make([][]float32, 3)
		for r := range send {
			send[r] = []float32{float32(c.Rank()), float32(r)}
		}
		recv, err := c.AlltoallF32(send)
		if err != nil {
			return err
		}
		for r := range recv {
			if recv[r][0] != float32(r) || recv[r][1] != float32(c.Rank()) {
				return fmt.Errorf("bad bucket %d: %v", r, recv[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRing(t *testing.T) {
	// Every rank passes its value around a ring N times; deadlock-freedom
	// and delivery order are both exercised.
	const n = 5
	w, _ := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		val := []float64{float64(c.Rank())}
		for hop := 0; hop < n; hop++ {
			to := (c.Rank() + 1) % n
			from := (c.Rank() - 1 + n) % n
			d, err := c.Sendrecv(to, hop, val, from, hop)
			if err != nil {
				return err
			}
			val = d.([]float64)
		}
		if val[0] != float64(c.Rank()) {
			return fmt.Errorf("rank %d: ring returned %v", c.Rank(), val[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficCounters(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]float64, 100))
		}
		_, err := c.RecvF64(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.BytesSent() != 800 {
		t.Fatalf("BytesSent = %d, want 800", w.BytesSent())
	}
	if w.MessagesSent() != 1 {
		t.Fatalf("MessagesSent = %d", w.MessagesSent())
	}
}

func TestCartMapping(t *testing.T) {
	c, err := NewCart(24, [3]int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Coords/Rank must be inverse bijections.
	seen := map[[3]int]bool{}
	for r := 0; r < 24; r++ {
		p := c.Coords(r)
		if c.Rank(p) != r {
			t.Fatalf("rank %d -> %v -> %d", r, p, c.Rank(p))
		}
		seen[p] = true
	}
	if len(seen) != 24 {
		t.Fatal("coords not unique")
	}
}

func TestCartValidation(t *testing.T) {
	if _, err := NewCart(8, [3]int{2, 2, 3}); err == nil {
		t.Fatal("non-tiling dims accepted")
	}
	if _, err := NewCart(0, [3]int{0, 1, 1}); err == nil {
		t.Fatal("zero dims accepted")
	}
}

func TestCartShiftPeriodic(t *testing.T) {
	c, _ := NewCart(8, [3]int{2, 2, 2})
	lo, hi := c.Shift(0, 0) // coords (0,0,0) along x
	if lo != c.Rank([3]int{1, 0, 0}) || hi != c.Rank([3]int{1, 0, 0}) {
		t.Fatalf("shift got (%d,%d)", lo, hi)
	}
	c2, _ := NewCart(27, [3]int{3, 3, 3})
	lo, hi = c2.Shift(13, 1) // centre cell (1,1,1)
	if lo != c2.Rank([3]int{1, 0, 1}) || hi != c2.Rank([3]int{1, 2, 1}) {
		t.Fatalf("shift got (%d,%d)", lo, hi)
	}
}

func TestCartRankWrapProperty(t *testing.T) {
	c, _ := NewCart(27, [3]int{3, 3, 3})
	f := func(a, b, d int8) bool {
		p := [3]int{int(a), int(b), int(d)}
		r := c.Rank(p)
		return r >= 0 && r < 27
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceAssociativityProperty(t *testing.T) {
	// Sum over ranks must equal the serial sum regardless of world size.
	for _, n := range []int{1, 2, 3, 7} {
		w, _ := NewWorld(n)
		want := 0.0
		for r := 0; r < n; r++ {
			want += math.Sqrt(float64(r + 1))
		}
		err := w.Run(func(c *Comm) error {
			got, err := c.AllreduceScalar(OpSum, math.Sqrt(float64(c.Rank()+1)))
			if err != nil {
				return err
			}
			if math.Abs(got-want) > 1e-12 {
				return fmt.Errorf("sum %v want %v", got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	// Post all receives first, then all sends — the overlap pattern real
	// ghost exchanges use to hide latency.
	const n = 4
	w, _ := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		var recvs []*Request
		for r := 0; r < n; r++ {
			if r == c.Rank() {
				continue
			}
			recvs = append(recvs, c.Irecv(r, 9))
		}
		var sends []*Request
		for r := 0; r < n; r++ {
			if r == c.Rank() {
				continue
			}
			sends = append(sends, c.Isend(r, 9, []float64{float64(c.Rank())}))
		}
		for _, s := range sends {
			if _, err := s.Wait(); err != nil {
				return err
			}
		}
		sum := 0.0
		for _, r := range recvs {
			d, err := r.Wait()
			if err != nil {
				return err
			}
			sum += d.([]float64)[0]
		}
		want := float64(n*(n-1)/2 - c.Rank())
		if sum != want {
			return fmt.Errorf("rank %d: sum %v want %v", c.Rank(), sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingValidation(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if _, err := c.Isend(9, 0, nil).Wait(); err == nil {
			return fmt.Errorf("bad dest accepted")
		}
		if _, err := c.Irecv(-2, 0).Wait(); err == nil {
			return fmt.Errorf("bad source accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
