package cosmo

import "math"

// TransferKind selects the linear transfer function used by PowerSpectrum.
type TransferKind int

// Available transfer functions.
const (
	// TransferBBKS is the Bardeen–Bond–Kaiser–Szalay fit with Sugiyama's
	// shape parameter (the default).
	TransferBBKS TransferKind = iota
	// TransferEH is the Eisenstein & Hu (1998) "no-wiggle" form, which
	// models the baryon suppression of the shape around the sound horizon
	// and is accurate to a few percent against Boltzmann codes.
	TransferEH
)

// ehNoWiggle evaluates the EH98 zero-baryon-oscillation transfer function at
// comoving wavenumber k (h/Mpc) for parameters p.
func ehNoWiggle(p Params, k float64) float64 {
	if k <= 0 {
		return 1
	}
	h := p.H
	om := p.OmegaM * h * h // Ωm h²
	ob := p.OmegaB * h * h // Ωb h²
	theta := 2.7255 / 2.7  // CMB temperature in units of 2.7 K
	fb := p.OmegaB / p.OmegaM
	// Sound horizon (EH98 eq. 26), Mpc.
	s := 44.5 * math.Log(9.83/om) / math.Sqrt(1+10*math.Pow(ob, 0.75))
	// Shape suppression from baryons (eq. 31).
	alpha := 1 - 0.328*math.Log(431*om)*fb + 0.38*math.Log(22.3*om)*fb*fb
	// Effective shape (eq. 30); k s uses k in 1/Mpc = (k h/Mpc)·h.
	ks := k * h * s
	gammaEff := p.OmegaM * h * (alpha + (1-alpha)/(1+math.Pow(0.43*ks, 4)))
	// eq. 28: q = k Θ² / Γ_eff with k in h/Mpc.
	q := k * theta * theta / gammaEff
	l0 := math.Log(2*math.E + 1.8*q)
	c0 := 14.2 + 731/(1+62.5*q)
	return l0 / (l0 + c0*q*q)
}

// NewPowerSpectrumKind constructs a σ8-normalised spectrum using the chosen
// transfer function.
func NewPowerSpectrumKind(p Params, kind TransferKind) *PowerSpectrum {
	ps := &PowerSpectrum{par: p, kind: kind}
	ps.gamma = p.OmegaM * p.H * math.Exp(-p.OmegaB*(1+math.Sqrt(2*p.H)/p.OmegaM))
	ps.amp = 1
	s2 := ps.sigmaR(8.0)
	ps.amp = p.Sigma8 * p.Sigma8 / (s2 * s2)
	return ps
}

// transfer dispatches on the configured transfer kind.
func (ps *PowerSpectrum) transfer(k float64) float64 {
	switch ps.kind {
	case TransferEH:
		return ehNoWiggle(ps.par, k)
	default:
		return transferBBKS(k / ps.gamma)
	}
}
