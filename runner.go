// The unified Runner API: one driver loop — Run — shared by every solver
// the facade exposes. The hybrid Vlasov/N-body simulation, its pure N-body
// and ν-particle control modes, and the 1D1V plasma solver all implement
// Solver, so a production service schedules any workload through the same
// call with uniform cancellation, wall-clock budgets, per-step observers
// and checkpoint cadence. See internal/runner for the driver itself.
//
// Execution scales through three layers, each built on the one below:
//
//   - Run drives one solver: one driver loop with cancellation, budgets,
//     observers and a checkpoint cadence.
//   - RunBatch / Scheduler (internal/sched) multiplex a fixed slice of
//     named jobs — parameter sweeps, scheme comparisons, control runs —
//     over a bounded worker pool with a shared context and a shared
//     wall-clock budget, returning results in job order.
//   - Stream (NewStream / Submit / Close / Results) is the long-lived
//     form: a channel-fed scheduler that accepts jobs continuously,
//     dispatches them by priority (higher first, FIFO within a priority),
//     retries transient failures with doubling backoff, and drains
//     gracefully on Close or context cancellation.
//
// Checkpoint-resume contract (batch and stream): WithJobCheckpoints(dir)
// keys a private checkpoint directory under dir by each job's sanitised
// Name and wires the runner's checkpoint cadence and retention into every
// run. A job carrying a Restore hook auto-resumes from the newest snapshot
// in its directory — killing a campaign and re-submitting the same job
// names continues from the last checkpoints instead of recomputing. A
// corrupt newest snapshot is quarantined (renamed *.corrupt) and the next
// newest tried; a cold start through the factory is the last resort. The
// job name is the resume key, so names must be unique per checkpoint root.
//
// Orthogonally, WithAsyncObserver (internal/runner) moves diagnostics
// delivery and checkpoint I/O off the hot step loop onto a buffered
// pipeline with a selectable back-pressure policy, so the solver never
// blocks on a slow observer or a disk write.
package vlasov6d

import (
	"context"
	"fmt"
	"os"
	"time"

	"vlasov6d/internal/runner"
	"vlasov6d/internal/sched"
)

// Solver is the single run-loop contract: step by dt, suggest a stable dt,
// expose a run coordinate ("clock") and a diagnostics summary. Implemented
// by *Simulation (clock = scale factor) and *PlasmaSolver (clock = plasma
// time).
type Solver = runner.Solver

// RunDiagnostics is the uniform per-step health summary a Solver reports.
type RunDiagnostics = runner.Diagnostics

// RunReport summarises a finished (or aborted) run; Run always returns one,
// even alongside an error, so partial progress is visible.
type RunReport = runner.Report

// RunOption configures a Run call.
type RunOption = runner.Option

// StopReason records why a run stopped without error.
type StopReason = runner.StopReason

// The stop reasons a RunReport can carry.
const (
	ReasonNone      = runner.ReasonNone
	ReasonUntil     = runner.ReasonUntil
	ReasonMaxSteps  = runner.ReasonMaxSteps
	ReasonWallClock = runner.ReasonWallClock
)

// Run drives solver until its clock reaches `until` (a target scale factor
// for cosmological runs, a target time for plasma runs), a step or
// wall-clock budget runs out, or ctx is cancelled. Cancellation returns a
// partial-progress error wrapping ctx.Err().
func Run(ctx context.Context, solver Solver, until float64, opts ...RunOption) (*RunReport, error) {
	return runner.Run(ctx, solver, until, opts...)
}

// WithMaxSteps caps the run at n steps (0 = unlimited).
func WithMaxSteps(n int) RunOption { return runner.WithMaxSteps(n) }

// WithWallClock stops the run once the elapsed wall-clock time reaches
// budget; at least one step is always taken.
func WithWallClock(budget time.Duration) RunOption { return runner.WithWallClock(budget) }

// WithObserver invokes obs after every completed step; a non-nil error
// aborts the run with that error.
func WithObserver(obs func(step int, s Solver) error) RunOption {
	return runner.WithObserver(obs)
}

// WithCheckpoint writes a snapshot into dir every everyN completed steps
// through the snapshot format of WriteSnapshot/ReadSnapshot; resume with
// RestoreSimulation (the ν-particle baseline checkpoints through snapio
// format v2). The solver must support checkpointing (*Simulation does).
func WithCheckpoint(dir string, everyN int) RunOption { return runner.WithCheckpoint(dir, everyN) }

// WithCheckpointKeep prunes the checkpoint directory to the newest n
// snapshots after every write (0 keeps everything).
func WithCheckpointKeep(n int) RunOption { return runner.WithCheckpointKeep(n) }

// WithFixedDT disables adaptive stepping and uses dt for every step (still
// clamped at the target).
func WithFixedDT(dt float64) RunOption { return runner.WithFixedDT(dt) }

// WorkerBudgeted is implemented by solvers whose intra-step parallelism can
// be resized between steps (*Simulation and *PlasmaSolver both do; the
// worker count never changes the computed physics, only wall-clock).
type WorkerBudgeted = runner.WorkerBudgeted

// WorkerLease supplies a run's current share of a CoreBudget; the runner
// polls it between steps (see WithWorkerBudget).
type WorkerLease = runner.WorkerLease

// CoreBudget divides a fixed number of CPU cores among live jobs: integer
// shares, floor one, remainder to higher-priority (then earlier) jobs,
// rebalanced as jobs come and go. The scheduler layers create one
// internally under WithBatchCoreBudget; NewCoreBudget is the standalone
// form for composing parallel work by hand (see examples/distributed).
type CoreBudget = sched.CoreBudget

// CoreLease is one live job's share of a CoreBudget; it implements
// WorkerLease.
type CoreLease = sched.Lease

// NewCoreBudget builds a core budget over total cores (0 = GOMAXPROCS).
func NewCoreBudget(total int) *CoreBudget { return sched.NewCoreBudget(total) }

// WithWorkerBudget ties a Run call's intra-step parallelism to a core
// lease: the runner polls lease.Workers() between steps and applies changed
// shares to solvers implementing WorkerBudgeted, so a mid-run rebalance is
// observed by a running job at its next step boundary.
func WithWorkerBudget(lease WorkerLease) RunOption { return runner.WithWorkerBudget(lease) }

// AsyncRunObserver is the off-thread diagnostics callback of
// WithAsyncObserver: it receives a value snapshot of the solver's
// Diagnostics, never the live solver, so it can run concurrently with the
// next steps.
type AsyncRunObserver = runner.AsyncObserver

// AsyncOption tunes the async observer pipeline.
type AsyncOption = runner.AsyncOption

// Backpressure selects what a full async pipeline does to the step loop:
// BackpressureBlock (lossless) or BackpressureDropOldest (lossy for
// observations, never for checkpoints).
type Backpressure = runner.Backpressure

// The back-pressure policies of the async observer pipeline.
const (
	BackpressureBlock      = runner.Block
	BackpressureDropOldest = runner.DropOldest
)

// WithAsyncObserver delivers per-step diagnostics (and, for solvers that
// support state capture, checkpoint I/O) through a buffered pipeline off
// the hot step loop. obs may be nil to route only checkpoint traffic.
func WithAsyncObserver(obs AsyncRunObserver, opts ...AsyncOption) RunOption {
	return runner.WithAsyncObserver(obs, opts...)
}

// WithAsyncBuffer sets the pipeline queue capacity (default
// runner.DefaultAsyncBuffer).
func WithAsyncBuffer(n int) AsyncOption { return runner.WithAsyncBuffer(n) }

// WithBackpressure selects the full-queue policy (default
// BackpressureBlock).
func WithBackpressure(p Backpressure) AsyncOption { return runner.WithBackpressure(p) }

// LatestCheckpoint returns the newest checkpoint file in dir (checkpoint
// names embed a fixed-width clock, so lexicographic order is clock order).
func LatestCheckpoint(dir string) (string, error) { return runner.LatestCheckpoint(dir) }

// ResumeLatest reads the newest checkpoint in dir and returns the snapshot
// together with the file it came from; rebuild the simulation with
// RestoreSimulation.
func ResumeLatest(dir string) (*Snapshot, string, error) {
	path, err := runner.LatestCheckpoint(dir)
	if err != nil {
		return nil, "", err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	snap, err := ReadSnapshot(f)
	if err != nil {
		return nil, "", fmt.Errorf("vlasov6d: resume from %s: %w", path, err)
	}
	return snap, path, nil
}

// Scheduler executes batches of named jobs over a bounded worker pool; see
// RunBatch for the one-call form and internal/sched for the semantics.
type Scheduler = sched.Scheduler

// BatchJob is one named unit of batch work: a solver factory, a clock
// target, and per-job run options. The factory runs on the worker that
// executes the job, so at most `workers` solvers are live at once.
type BatchJob = sched.Job

// BatchResult is the outcome of one batch job, in job order.
type BatchResult = sched.Result

// BatchUpdate is one job status transition, delivered to WithBatchNotify.
type BatchUpdate = sched.Update

// JobStatus is the lifecycle state of a batch job.
type JobStatus = sched.Status

// The batch job states.
const (
	JobQueued    = sched.Queued
	JobRunning   = sched.Running
	JobDone      = sched.Done
	JobFailed    = sched.Failed
	JobCancelled = sched.Cancelled
	JobRetrying  = sched.Retrying
)

// BatchOption configures a Scheduler or RunBatch call.
type BatchOption = sched.Option

// NewScheduler builds a scheduler with the given defaults.
func NewScheduler(opts ...BatchOption) (*Scheduler, error) { return sched.New(opts...) }

// RunBatch executes jobs over a bounded worker pool (default GOMAXPROCS
// workers) under one shared context, returning one result per job in job
// order. Per-job failures are reported in the results, not as the batch
// error.
func RunBatch(ctx context.Context, jobs []BatchJob, opts ...BatchOption) ([]BatchResult, error) {
	return sched.RunBatch(ctx, jobs, opts...)
}

// WithBatchWorkers bounds the batch worker pool (default GOMAXPROCS,
// capped at the job count).
func WithBatchWorkers(n int) BatchOption { return sched.WithWorkers(n) }

// WithBatchWallClock gives the whole batch one shared wall-clock budget;
// once exhausted, every remaining job still takes at least one step (the
// runner's forward-progress guarantee), so nothing starves.
func WithBatchWallClock(budget time.Duration) BatchOption { return sched.WithWallClock(budget) }

// WithBatchNotify registers a serialised callback for job status
// transitions — the hook progress displays hang off.
func WithBatchNotify(fn func(BatchUpdate)) BatchOption { return sched.WithNotify(fn) }

// WithBatchRetries allows each job up to n extra attempts after a failure
// classified transient by IsRetryable (default 0: fail fast).
func WithBatchRetries(n int) BatchOption { return sched.WithRetries(n) }

// WithBatchRetryBackoff sets the delay before a job's first retry (default
// 100 ms; doubling per further retry, cancellable).
func WithBatchRetryBackoff(d time.Duration) BatchOption { return sched.WithRetryBackoff(d) }

// WithBatchCoreBudget hands the scheduler (batch or stream) ownership of
// intra-step parallelism: total cores (0 = GOMAXPROCS) are divided among
// the live jobs and rebalanced as jobs start, finish, fail or retry, each
// job's share plumbed into its Run call as a worker-budget lease. This is
// what lets job-level and cell-level parallelism compose to the machine
// size instead of multiplying past it (N jobs × GOMAXPROCS workers).
func WithBatchCoreBudget(total int) BatchOption { return sched.WithCoreBudget(total) }

// WithJobCheckpoints gives every job a private checkpoint directory under
// dir keyed by its sanitised name and wires checkpoint cadence + retention
// into each run; jobs with a Restore hook auto-resume from their newest
// snapshot. See the package comment for the full contract.
func WithJobCheckpoints(dir string) BatchOption { return sched.WithJobCheckpoints(dir) }

// WithJobCheckpointEvery sets the per-job checkpoint cadence in steps used
// by WithJobCheckpoints (default 10).
func WithJobCheckpointEvery(n int) BatchOption { return sched.WithJobCheckpointEvery(n) }

// WithJobCheckpointKeep sets the per-job checkpoint retention used by
// WithJobCheckpoints (default 3; 0 keeps everything).
func WithJobCheckpointKeep(n int) BatchOption { return sched.WithJobCheckpointKeep(n) }

// Stream is the long-lived, channel-fed scheduler: Submit jobs while
// earlier ones run, dispatched by priority with retries and checkpoint
// resume; see internal/sched for the full contract.
type Stream = sched.Stream

// ErrStreamClosed is returned by Stream.Submit after Close.
var ErrStreamClosed = sched.ErrStreamClosed

// NewStream starts a stream scheduler on a worker pool (default GOMAXPROCS
// workers); Close it to drain, or cancel ctx to stop.
func NewStream(ctx context.Context, opts ...BatchOption) (*Stream, error) {
	return sched.NewStream(ctx, opts...)
}

// MarkRetryable marks err transient so the scheduler's retry policy will
// re-run the failing job (see WithBatchRetries).
func MarkRetryable(err error) error { return runner.MarkRetryable(err) }

// IsRetryable reports whether err is marked transient (MarkRetryable, or
// any error implementing `Retryable() bool`); cancellation never is.
func IsRetryable(err error) bool { return runner.IsRetryable(err) }

// Compile-time checks: every advertised workload drives through Run, and
// both the hybrid simulation and the plasma solver support the full
// checkpoint surface (snapshots, async capture) — the latter is what makes
// scheduler-level resume work for sweep campaigns.
var (
	_ Solver                    = (*Simulation)(nil)
	_ Solver                    = (*PlasmaSolver)(nil)
	_ runner.DTClamper          = (*Simulation)(nil)
	_ runner.Checkpointer       = (*Simulation)(nil)
	_ runner.CheckpointCapturer = (*Simulation)(nil)
	_ runner.Checkpointer       = (*PlasmaSolver)(nil)
	_ runner.CheckpointCapturer = (*PlasmaSolver)(nil)
	_ runner.WorkerBudgeted     = (*Simulation)(nil)
	_ runner.WorkerBudgeted     = (*PlasmaSolver)(nil)
	_ runner.WorkerLease        = (*CoreLease)(nil)
)
