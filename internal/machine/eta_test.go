package machine

import (
	"math"
	"testing"
)

// TestETAEstimatorSteadyRate checks the basic projection: a run advancing
// its clock at a constant rate projects remaining/rate.
func TestETAEstimatorSteadyRate(t *testing.T) {
	e := NewETAEstimator(10)
	if _, ok := e.ETASeconds(); ok {
		t.Fatal("ETA before any samples")
	}
	e.Observe(1, 1)
	if _, ok := e.ETASeconds(); ok {
		t.Fatal("ETA after a single sample: one point has no rate")
	}
	// 1 clock unit per wall second.
	for w := 2.0; w <= 5; w++ {
		e.Observe(w, w)
	}
	eta, ok := e.ETASeconds()
	if !ok {
		t.Fatal("no ETA after steady samples")
	}
	// At wall 5 the clock is 5, target 10, rate 1 → 5 seconds remain.
	if math.Abs(eta-5) > 1e-9 {
		t.Fatalf("eta %g, want 5", eta)
	}
}

// TestETAEstimatorSlowingRun checks the EWMA tracks drift: when the run
// slows, the projection grows beyond the naive whole-history average.
func TestETAEstimatorSlowingRun(t *testing.T) {
	e := NewETAEstimator(100)
	w, c := 0.0, 0.0
	for i := 0; i < 20; i++ { // fast phase: 2 clock/s
		w, c = w+1, c+2
		e.Observe(w, c)
	}
	for i := 0; i < 30; i++ { // slow phase: 0.5 clock/s
		w, c = w+1, c+0.5
		e.Observe(w, c)
	}
	eta, ok := e.ETASeconds()
	if !ok {
		t.Fatal("no ETA")
	}
	remaining := 100 - c
	if naive := remaining / (c / w); eta <= naive {
		t.Fatalf("eta %g did not adapt to the slowdown (whole-history average %g)", eta, naive)
	}
	if eta < remaining/0.5*0.8 || eta > remaining/0.5*1.2 {
		t.Fatalf("eta %g far from the converged slow-phase projection %g", eta, remaining/0.5)
	}
}

// TestETAEstimatorEdgeCases: zero wall advance must not divide by zero, a
// run past its target reports zero, a stalled run reports no ETA.
func TestETAEstimatorEdgeCases(t *testing.T) {
	e := NewETAEstimator(1)
	e.Observe(1, 0.5)
	e.Observe(1, 0.6) // same wall instant: folded into the next interval
	e.Observe(2, 2)   // past the target
	eta, ok := e.ETASeconds()
	if !ok || eta != 0 {
		t.Fatalf("past-target eta = %g, %v; want 0, true", eta, ok)
	}

	stalled := NewETAEstimator(10)
	stalled.Observe(1, 1)
	stalled.Observe(2, 1) // zero clock advance → rate 0
	if _, ok := stalled.ETASeconds(); ok {
		t.Fatal("stalled run produced an ETA")
	}
	if stalled.Target() != 10 {
		t.Fatalf("target %g", stalled.Target())
	}
}
