package plasma

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func landauSolver(t *testing.T, scheme string) *Solver {
	t.Helper()
	s, err := NewWithScheme(32, 64, 4*math.Pi, 6, scheme)
	if err != nil {
		t.Fatal(err)
	}
	s.LandauInit(0.01, 0.5, 1)
	return s
}

func stepN(t *testing.T, s *Solver, n int, dt float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Step(dt); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := landauSolver(t, "mp5")
	s.CFL = 0.3
	stepN(t, s, 7, 0.05)

	var buf bytes.Buffer
	n, err := s.Checkpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.NX != s.NX || r.NV != s.NV || r.L != s.L || r.VMax != s.VMax {
		t.Fatalf("restored shape %dx%d L=%v Vmax=%v", r.NX, r.NV, r.L, r.VMax)
	}
	if r.Scheme() != "mp5" {
		t.Fatalf("restored scheme %q", r.Scheme())
	}
	if r.Time != s.Time || r.CFL != s.CFL {
		t.Fatalf("restored time %v cfl %v, want %v %v", r.Time, r.CFL, s.Time, s.CFL)
	}
	for i := range s.F {
		if r.F[i] != s.F[i] {
			t.Fatalf("F differs at %d: %v vs %v", i, r.F[i], s.F[i])
		}
	}
	// The restored solver must be immediately usable: the field cache is
	// rebuilt, so SuggestDT and Diagnostics work before the first step.
	if dt := r.SuggestDT(); dt <= 0 {
		t.Fatalf("restored SuggestDT %v", dt)
	}
	if e := r.Diagnostics().Extra["field_energy"]; e <= 0 {
		t.Fatalf("restored field energy %v", e)
	}
}

func TestCheckpointChecksumDetectsCorruption(t *testing.T) {
	s := landauSolver(t, "slmpp5")
	stepN(t, s, 3, 0.05)
	var buf bytes.Buffer
	if _, err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x40
	if _, err := Restore(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if _, err := Restore(bytes.NewReader(raw[:len(raw)/3])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestRestoreRejectsImplausibleGridWithoutAllocating(t *testing.T) {
	// A corrupt header whose dimensions pass the per-axis bound must still
	// fail with an error (which schedulers quarantine on), never reach a
	// makeslice panic or an OOM-sized allocation.
	s := landauSolver(t, "slmpp5")
	var buf bytes.Buffer
	if _, err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Layout: magic(8) + nameLen(8) + "slmpp5"(6) + nx(8) + nv(8) + ...
	le := binary.LittleEndian
	le.PutUint64(raw[22:], 1<<24) // nx: within the per-axis bound
	le.PutUint64(raw[30:], 1<<24) // nv: product 2^48 cells
	if _, err := Restore(bytes.NewReader(raw)); err == nil {
		t.Fatal("2^48-cell grid accepted")
	}
}

func TestCaptureCheckpointIsolatesState(t *testing.T) {
	// The captured write closure must serialise the state at capture time,
	// not whatever the live solver holds when the async pipeline finally
	// writes it.
	s := landauSolver(t, "slmpp5")
	stepN(t, s, 4, 0.05)
	var want bytes.Buffer
	if _, err := s.Checkpoint(&want); err != nil {
		t.Fatal(err)
	}
	write, err := s.CaptureCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, s, 5, 0.05) // mutate after capture
	var got bytes.Buffer
	if _, err := write(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("captured checkpoint drifted with the live solver")
	}
}

func TestCheckpointResumeContinuesBitIdentically(t *testing.T) {
	// Stop/restore/continue must land bit-identically on an uninterrupted
	// run: resume correctness is exactness, not approximation.
	const dt = 0.05
	ref := landauSolver(t, "slmpp5")
	stepN(t, ref, 20, dt)

	half := landauSolver(t, "slmpp5")
	stepN(t, half, 10, dt)
	var buf bytes.Buffer
	if _, err := half.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, resumed, 10, dt)

	if resumed.Time != ref.Time {
		t.Fatalf("clock %v vs %v", resumed.Time, ref.Time)
	}
	for i := range ref.F {
		if resumed.F[i] != ref.F[i] {
			t.Fatalf("resumed F differs at %d: %v vs %v", i, resumed.F[i], ref.F[i])
		}
	}
}
