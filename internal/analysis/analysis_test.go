package analysis

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vlasov6d/internal/nbody"
	"vlasov6d/internal/phase"
)

func TestPowerSpectrumSingleMode(t *testing.T) {
	n := 32
	boxL := 100.0
	rho := make([]float64, n*n*n)
	kMode := 4
	amp := 0.1
	idx := 0
	for ix := 0; ix < n; ix++ {
		x := float64(ix) / float64(n)
		for iy := 0; iy < n; iy++ {
			for iz := 0; iz < n; iz++ {
				rho[idx] = 1 + amp*math.Cos(2*math.Pi*float64(kMode)*x)
				idx++
			}
		}
	}
	ks, pk, counts, err := PowerSpectrum(rho, n, boxL, 12)
	if err != nil {
		t.Fatal(err)
	}
	// The signal lives at k = kMode·2π/L with P = V·amp²/4 (cosine splits
	// into two modes of amplitude amp/2 each; estimator averages
	// |δ_k|²=amp²/4 over the shell... both conjugate modes fall in the same
	// |k| shell).
	kTarget := 2 * math.Pi * float64(kMode) / boxL
	best, bestP := -1, 0.0
	for i, k := range ks {
		if pk[i] > bestP {
			best, bestP = i, pk[i]
		}
		_ = k
	}
	if best < 0 {
		t.Fatal("no bins")
	}
	if math.Abs(math.Log(ks[best]/kTarget)) > 0.3 {
		t.Fatalf("peak at k=%v, want %v", ks[best], kTarget)
	}
	// All other bins should be ~0.
	for i := range ks {
		if i != best && pk[i] > 1e-6*bestP {
			t.Fatalf("leakage at bin %d: %v vs peak %v", i, pk[i], bestP)
		}
	}
	// Amplitude: the shell holds the two conjugate modes of power
	// V·(amp/2)² each, diluted over the shell's mode count:
	// P_shell·count = 2·V·amp²/4.
	want := 2 * boxL * boxL * boxL * amp * amp / 4
	got := bestP * counts[best]
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("shell-integrated power %v, want %v", got, want)
	}
}

func TestPowerSpectrumValidation(t *testing.T) {
	if _, _, _, err := PowerSpectrum(make([]float64, 10), 4, 1, 4); err == nil {
		t.Fatal("bad length accepted")
	}
	if _, _, _, err := PowerSpectrum(make([]float64, 64), 4, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, _, _, err := PowerSpectrum(make([]float64, 64), 4, 1, 4); err == nil {
		t.Fatal("zero-mean field accepted")
	}
}

func TestProjectMeanPreserved(t *testing.T) {
	n := [3]int{4, 6, 8}
	field := make([]float64, 4*6*8)
	rng := rand.New(rand.NewSource(1))
	mean := 0.0
	for i := range field {
		field[i] = rng.Float64()
		mean += field[i]
	}
	mean /= float64(len(field))
	for axis := 0; axis < 3; axis++ {
		m, w, h, err := Project(field, n, axis)
		if err != nil {
			t.Fatal(err)
		}
		if w*h != len(m) {
			t.Fatalf("axis %d: dims %dx%d vs len %d", axis, w, h, len(m))
		}
		pm := 0.0
		for _, v := range m {
			pm += v
		}
		pm /= float64(len(m))
		if math.Abs(pm-mean) > 1e-12 {
			t.Fatalf("axis %d: projection mean %v != %v", axis, pm, mean)
		}
	}
	if _, _, _, err := Project(field, n, 3); err == nil {
		t.Fatal("bad axis accepted")
	}
}

func TestStats(t *testing.T) {
	st := Stats([]float64{1, 2, 3})
	if st.Mean != 2 || st.Min != 1 || st.Max != 3 {
		t.Fatalf("stats %+v", st)
	}
	want := math.Sqrt((0.25 + 0 + 0.25) / 3)
	if math.Abs(st.RMSContrast-want) > 1e-12 {
		t.Fatalf("contrast %v, want %v", st.RMSContrast, want)
	}
	if s := Stats(nil); s.Mean != 0 {
		t.Fatal("empty stats")
	}
}

func TestWritePGM(t *testing.T) {
	var sb strings.Builder
	m := []float64{0, 1, 2, 3, 4, 5}
	if err := WritePGM(&sb, m, 3, 2, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "P2\n3 2\n255\n") {
		t.Fatalf("bad header:\n%s", out)
	}
	if !strings.Contains(out, "255") || !strings.Contains(out, "0") {
		t.Fatal("range not normalised")
	}
	if err := WritePGM(&sb, m, 2, 2, false); err == nil {
		t.Fatal("bad dims accepted")
	}
	// Log scale must not blow up on zeros.
	var sb2 strings.Builder
	if err := WritePGM(&sb2, []float64{0, 0, 1, 10}, 2, 2, true); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, []string{"k", "pk"}, []float64{1, 2}, []float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "k,pk\n1,10\n2,20\n") {
		t.Fatalf("csv:\n%s", out)
	}
	if err := WriteCSV(&sb, []string{"a"}, []float64{1}, []float64{2}); err == nil {
		t.Fatal("header mismatch accepted")
	}
	if err := WriteCSV(&sb, []string{"a", "b"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestVelocityPlane(t *testing.T) {
	g, err := phase.New(2, 2, 2, [3]int{6, 6, 6}, [3]float64{10, 10, 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		return math.Exp(-(ux*ux + uy*uy + uz*uz))
	})
	plane, ux, uy, err := VelocityPlane(g, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plane) != 36 || len(ux) != 6 || len(uy) != 6 {
		t.Fatal("bad shapes")
	}
	// Plane must integrate f over uz: peak at the central velocity bins.
	maxV, maxI := 0.0, 0
	for i, v := range plane {
		if v > maxV {
			maxV, maxI = v, i
		}
	}
	jx, jy := maxI/6, maxI%6
	if jx < 2 || jx > 3 || jy < 2 || jy > 3 {
		t.Fatalf("peak at (%d,%d), want centre", jx, jy)
	}
	if _, _, _, err := VelocityPlane(g, 5, 0, 0); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
}

func TestParticlesInCell(t *testing.T) {
	p, _ := nbody.NewParticles(3, 1, [3]float64{10, 10, 10})
	p.Pos[0][0], p.Pos[1][0], p.Pos[2][0] = 1, 1, 1 // cell (0,0,0) at n=5
	p.Vel[0][0] = 42
	p.Pos[0][1], p.Pos[1][1], p.Pos[2][1] = 9, 9, 9
	p.Pos[0][2], p.Pos[1][2], p.Pos[2][2] = 1.5, 0.5, 1.9
	p.Vel[0][2] = 7
	ux, uy := ParticlesInCell(p, [3]int{5, 5, 5}, 0, 0, 0)
	if len(ux) != 2 || len(uy) != 2 {
		t.Fatalf("found %d particles, want 2", len(ux))
	}
	if ux[0] != 42 || ux[1] != 7 {
		t.Fatalf("velocities %v", ux)
	}
}

func TestMomentsFromParticles(t *testing.T) {
	p, _ := nbody.NewParticles(1000, 2, [3]float64{10, 10, 10})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < p.N; i++ {
		for d := 0; d < 3; d++ {
			p.Pos[d][i] = rng.Float64() * 10
			p.Vel[d][i] = 100 + rng.NormFloat64()*50
		}
	}
	m, err := MomentsFromParticles(p, [3]int{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Mass conservation.
	cellVol := 2.5 * 2.5 * 2.5
	tot := 0.0
	for _, v := range m.Density {
		tot += v * cellVol
	}
	if math.Abs(tot-2000)/2000 > 1e-12 {
		t.Fatalf("mass %v, want 2000", tot)
	}
	// Mean velocity magnitude ≈ sqrt(3)·100, dispersion ≈ 50.
	occ := 0
	for c := range m.Count {
		if m.Count[c] < 5 {
			continue
		}
		occ++
		if math.Abs(m.MeanV[c]-math.Sqrt(3)*100) > 60 {
			t.Fatalf("cell %d meanV %v", c, m.MeanV[c])
		}
		if m.Sigma[c] < 15 || m.Sigma[c] > 90 {
			t.Fatalf("cell %d sigma %v", c, m.Sigma[c])
		}
	}
	if occ == 0 {
		t.Fatal("no occupied cells")
	}
	if _, err := MomentsFromParticles(p, [3]int{0, 4, 4}); err == nil {
		t.Fatal("bad mesh accepted")
	}
}

func TestShotNoiseScaling(t *testing.T) {
	// The core §5.4 claim in miniature: the particle density field's RMS
	// contrast from Poisson noise scales as 1/sqrt(N per cell).
	mk := func(n int, seed int64) float64 {
		p, _ := nbody.NewParticles(n, 1, [3]float64{8, 8, 8})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < p.N; i++ {
			for d := 0; d < 3; d++ {
				p.Pos[d][i] = rng.Float64() * 8
			}
		}
		m, err := MomentsFromParticles(p, [3]int{4, 4, 4})
		if err != nil {
			t.Fatal(err)
		}
		return Stats(m.Density).RMSContrast
	}
	lo := mk(640, 9)   // 10 particles/cell
	hi := mk(64000, 9) // 1000 particles/cell
	ratio := lo / hi
	if ratio < 5 || ratio > 20 { // expect ≈ sqrt(100) = 10
		t.Fatalf("shot noise ratio %v, want ≈ 10", ratio)
	}
}

func TestCompareNoise(t *testing.T) {
	smooth := []float64{1, 1, 1, 1}
	noisy := []float64{0.5, 1.5, 0.7, 1.3}
	nc := CompareNoise(smooth, noisy)
	if nc.VlasovRMS != 0 {
		t.Fatalf("smooth RMS %v", nc.VlasovRMS)
	}
	if nc.ParticleRMS <= 0.2 {
		t.Fatalf("noisy RMS %v", nc.ParticleRMS)
	}
}

func TestCrossSpectrumIdenticalFields(t *testing.T) {
	n := 16
	rho := make([]float64, n*n*n)
	rng := rand.New(rand.NewSource(2))
	for i := range rho {
		rho[i] = 1 + 0.2*rng.NormFloat64()
	}
	ks, r, err := CrossSpectrum(rho, rho, n, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) == 0 {
		t.Fatal("no bins")
	}
	for i := range r {
		if math.Abs(r[i]-1) > 1e-10 {
			t.Fatalf("self-correlation r[%d] = %v, want 1", i, r[i])
		}
	}
}

func TestCrossSpectrumIndependentFields(t *testing.T) {
	n := 16
	a := make([]float64, n*n*n)
	b := make([]float64, n*n*n)
	ra := rand.New(rand.NewSource(3))
	rb := rand.New(rand.NewSource(4))
	for i := range a {
		a[i] = 1 + 0.2*ra.NormFloat64()
		b[i] = 1 + 0.2*rb.NormFloat64()
	}
	_, r, err := CrossSpectrum(a, b, n, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Independent noise decorrelates as 1/√(2N_modes); the lowest-k shells
	// hold only a handful of modes, so test the mode-rich upper half.
	for i := len(r) / 2; i < len(r); i++ {
		if math.Abs(r[i]) > 0.3 {
			t.Fatalf("independent fields r[%d] = %v", i, r[i])
		}
	}
	if _, _, err := CrossSpectrum(a[:5], b, n, 100, 4); err == nil {
		t.Fatal("bad lengths accepted")
	}
}

func TestCrossSpectrumBoundedProperty(t *testing.T) {
	// Cauchy-Schwarz: |r(k)| ≤ 1 for any pair of fields.
	n := 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, n*n*n)
		b := make([]float64, n*n*n)
		for i := range a {
			a[i] = 1 + 0.3*rng.NormFloat64()
			b[i] = 1 + 0.3*rng.NormFloat64() + 0.2*a[i]
		}
		_, r, err := CrossSpectrum(a, b, n, 50, 3)
		if err != nil {
			return false
		}
		for _, v := range r {
			if math.Abs(v) > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
