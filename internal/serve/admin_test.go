package serve

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vlasov6d/internal/sched"
	"vlasov6d/internal/store"
	"vlasov6d/internal/tenant"
)

// writeKeys writes a key file and returns its parsed registry.
func writeKeys(t *testing.T, path, doc string) *tenant.Registry {
	t.Helper()
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	reg, err := tenant.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestHotReloadKeys is the rotation proof: a long job runs under the old
// key file, the file is rewritten and reloaded over the admin endpoint,
// and the swap is total — the rotated-out key 401s, the new key works,
// and the running job never notices.
func TestHotReloadKeys(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	keysPath := filepath.Join(t.TempDir(), "keys.json")
	reg := writeKeys(t, keysPath, `{"tenants": [
		{"name": "ops", "key": "ops-key", "admin": true},
		{"name": "alice", "key": "alice-key-1"}
	]}`)
	srv, ts := newTestServer(t, Config{
		Workers:         1,
		CheckpointDir:   ckptDir,
		CheckpointEvery: 20,
		StoreDir:        storeDir,
		Tenants:         reg,
		KeysPath:        keysPath,
	})
	defer srv.Close()

	code, _, body := authJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "alice-key-1",
		`{"scenario":"landau","name":"steady","until":30,"fixed_dt":0.001}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	pollStatusAuth(t, ts.URL, id, "alice-key-1", "running")

	// Rotate alice's key and drop nobody; reload over the admin surface.
	writeKeys(t, keysPath, `{"tenants": [
		{"name": "ops", "key": "ops-key", "admin": true},
		{"name": "alice", "key": "alice-key-2"}
	]}`)
	code, _, body = authJSON(t, http.MethodPost, ts.URL+"/v1/admin/reload", "ops-key", "")
	if code != http.StatusOK || body["reloaded"] != true {
		t.Fatalf("reload: %d %v", code, body)
	}

	// The swap is immediate: old key dead, new key live, job untouched.
	if code, _, _ = authJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "alice-key-1", ""); code != http.StatusUnauthorized {
		t.Fatalf("rotated-out key got %d, want 401", code)
	}
	st := pollStatusAuth(t, ts.URL, id, "alice-key-2", "running")
	if st["tenant"] != "alice" {
		t.Fatalf("job changed hands across reload: %v", st)
	}
	code, _, _ = authJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), "alice-key-2", "")
	if code != http.StatusAccepted {
		t.Fatalf("cancel with rotated key: %d", code)
	}
	pollStatusAuth(t, ts.URL, id, "alice-key-2", "cancelled")

	metrics := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"vlasovd_key_reloads_total 1",
		`vlasovd_admission_total{tenant="",outcome="401"}`,
		`vlasovd_admission_total{tenant="alice",outcome="accept"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	recs, err := store.ReadAuditLog(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	var sawReload bool
	for _, r := range recs {
		if r.Outcome == "reload" && r.Tenant == "ops" {
			sawReload = true
		}
	}
	if !sawReload {
		t.Fatalf("no reload audit record: %+v", recs)
	}
}

// TestAdminReloadGuards covers the refusal paths: a non-admin tenant is
// 403 (and audited), and a key file that fails validation is rejected
// wholesale — 422, the failure is counted, and the old registry keeps
// serving.
func TestAdminReloadGuards(t *testing.T) {
	storeDir := t.TempDir()
	keysPath := filepath.Join(t.TempDir(), "keys.json")
	reg := writeKeys(t, keysPath, `{"tenants": [
		{"name": "ops", "key": "ops-key", "admin": true},
		{"name": "alice", "key": "alice-key"}
	]}`)
	srv, ts := newTestServer(t, Config{
		Workers:  1,
		StoreDir: storeDir,
		Tenants:  reg,
		KeysPath: keysPath,
	})
	defer srv.Close()

	code, _, _ := authJSON(t, http.MethodPost, ts.URL+"/v1/admin/reload", "alice-key", "")
	if code != http.StatusForbidden {
		t.Fatalf("non-admin reload got %d, want 403", code)
	}

	// Corrupt the key file: duplicate keys fail validation.
	if err := os.WriteFile(keysPath, []byte(`{"tenants": [
		{"name": "a", "key": "same"}, {"name": "b", "key": "same"}
	]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	code, _, body := authJSON(t, http.MethodPost, ts.URL+"/v1/admin/reload", "ops-key", "")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid key file reload got %d %v, want 422", code, body)
	}
	// Wholesale rejection: the pre-reload keys still authenticate.
	if code, _, _ = authJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "alice-key", ""); code != http.StatusOK {
		t.Fatalf("old registry not live after failed reload: %d", code)
	}
	if _, err := srv.ReloadKeys(); err == nil {
		t.Fatal("ReloadKeys accepted an invalid file")
	}

	metrics := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"vlasovd_key_reload_failures_total 2",
		`vlasovd_admission_total{tenant="alice",outcome="403"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	recs, err := store.ReadAuditLog(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	var saw403, sawFailed bool
	for _, r := range recs {
		if r.Outcome == "403" && r.Tenant == "alice" {
			saw403 = true
		}
		if r.Outcome == "reload_failed" {
			sawFailed = true
		}
	}
	if !saw403 || !sawFailed {
		t.Fatalf("audit log missing records (403=%v reload_failed=%v): %+v", saw403, sawFailed, recs)
	}
}

// TestAdmissionAudit pins the audit trail's content: an accepted
// submission carries the job id and the canonical spec's hash, a bad
// bearer token lands as an anonymous 401.
func TestAdmissionAudit(t *testing.T) {
	storeDir := t.TempDir()
	reg, err := tenant.Parse(strings.NewReader(`{"tenants": [{"name": "alice", "key": "alice-key"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Workers: 1, StoreDir: storeDir, Tenants: reg})
	defer srv.Close()

	code, _, body := authJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "alice-key",
		`{"scenario":"landau","name":"audited","until":0.05,"fixed_dt":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	if code, _, _ = authJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "wrong-key", ""); code != http.StatusUnauthorized {
		t.Fatalf("bad key got %d, want 401", code)
	}
	pollStatusAuth(t, ts.URL, id, "alice-key", "done")

	recs, err := store.ReadAuditLog(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	var accept, unauthorized *store.AuditRecord
	for i := range recs {
		switch recs[i].Outcome {
		case "accept":
			accept = &recs[i]
		case "401":
			unauthorized = &recs[i]
		}
	}
	if accept == nil || accept.Tenant != "alice" || accept.JobID != id || len(accept.SpecHash) != 64 {
		t.Fatalf("accept audit record wrong: %+v", accept)
	}
	if unauthorized == nil || unauthorized.Tenant != "" || unauthorized.Reason == "" {
		t.Fatalf("401 audit record wrong: %+v", unauthorized)
	}
}

// fakeSnapshot drops a checkpoint-shaped file of the given size.
func fakeSnapshot(t *testing.T, dir string, clock float64, size int) string {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("ckpt_%014.8f.v6d", clock))
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStorageQuotaEviction drives the enforcer directly over fabricated
// snapshot sets: eviction is oldest-clock-first across the tenant's
// jobs, a live job's newest snapshot is the untouchable floor, and a
// floor that alone exceeds the quota fails the triggering job — with the
// failure journaled.
func TestStorageQuotaEviction(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	srv, _ := newTestServer(t, Config{Workers: 1, StoreDir: storeDir, CheckpointDir: ckptDir})
	defer srv.Close()

	dirA := filepath.Join(ckptDir, "jobA")
	dirB := filepath.Join(ckptDir, "jobB")
	a1 := fakeSnapshot(t, dirA, 1, 1000)
	a2 := fakeSnapshot(t, dirA, 2, 1000)
	b3 := fakeSnapshot(t, dirB, 3, 1000)
	b4 := fakeSnapshot(t, dirB, 4, 1000)

	terminalA := &jobEntry{id: 101, tenant: "carol", ckptDir: dirA, ckptBytes: 2000, result: &sched.Result{}}
	liveB := &jobEntry{id: 102, tenant: "carol", ckptDir: dirB, ckptBytes: 2000}
	srv.mu.Lock()
	srv.jobs[101], srv.jobs[102] = terminalA, liveB
	srv.storage["carol"] = 4000
	srv.mu.Unlock()
	srv.store.Submitted(102, "carol", []byte(`{"scenario":"landau"}`), time.Now())

	// Quota 3000 over 4000 on disk: exactly the oldest snapshot goes.
	srv.enforceStorageQuota(liveB, &tenant.Tenant{Name: "carol", MaxStorageBytes: 3000})
	if _, err := os.Stat(a1); !os.IsNotExist(err) {
		t.Fatal("oldest snapshot survived eviction")
	}
	for _, p := range []string{a2, b3, b4} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("eviction overshot: %s gone", p)
		}
	}
	srv.mu.Lock()
	tracked, quotaErr := srv.storage["carol"], liveB.quotaErr
	srv.mu.Unlock()
	if tracked != 3000 || quotaErr != "" {
		t.Fatalf("after eviction: tracked=%d quotaErr=%q", tracked, quotaErr)
	}

	// Quota 500: everything evictable goes, the live job's newest
	// snapshot (the resume floor) stays, and the trigger fails.
	srv.enforceStorageQuota(liveB, &tenant.Tenant{Name: "carol", MaxStorageBytes: 500})
	if _, err := os.Stat(b4); err != nil {
		t.Fatal("the resume floor was evicted")
	}
	for _, p := range []string{a2, b3} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("evictable snapshot survived: %s", p)
		}
	}
	srv.mu.Lock()
	quotaErr = liveB.quotaErr
	srv.mu.Unlock()
	if !strings.Contains(quotaErr, "storage quota") {
		t.Fatalf("trigger not failed by quota: %q", quotaErr)
	}

	// The failure is durable: a reoplen of the journal shows job 102
	// terminal, not pending.
	srv.Close()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, j := range st.Pending() {
		if j.ID == 102 {
			t.Fatal("quota-failed job still pending in the journal")
		}
	}
}

// TestStorageQuotaFailsJob is the end-to-end face of the quota: a tenant
// whose cap is smaller than a single snapshot has its job failed on the
// first checkpoint write, with the explanatory error in the status
// document and the failure journaled.
func TestStorageQuotaFailsJob(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	reg, err := tenant.Parse(strings.NewReader(
		`{"tenants": [{"name": "dave", "key": "dave-key", "max_storage_bytes": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{
		Workers:         1,
		CheckpointDir:   ckptDir,
		CheckpointEvery: 10,
		StoreDir:        storeDir,
		Tenants:         reg,
		KeysPath:        filepath.Join(t.TempDir(), "unused.json"),
	})
	defer srv.Close()

	code, _, body := authJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "dave-key",
		`{"scenario":"landau","name":"hog","until":30,"fixed_dt":0.001}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	st := pollStatusAuth(t, ts.URL, id, "dave-key", "failed")
	if msg, _ := st["error"].(string); !strings.Contains(msg, "storage quota") {
		t.Fatalf("failure does not explain the quota: %v", st)
	}
	metrics := scrapeMetrics(t, ts.URL)
	if !strings.Contains(metrics, `vlasovd_tenant_storage_bytes{tenant="dave"}`) {
		t.Fatalf("no storage gauge for dave:\n%s", metrics)
	}

	srv.Close()
	jst, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer jst.Close()
	for _, j := range jst.Pending() {
		if j.ID == id {
			t.Fatal("quota-failed job still pending in the journal")
		}
	}
}

// TestRecoveryAfterCompactionCrash is the crash-consistency proof for
// online compaction at the serve layer: a daemon with aggressive
// compaction thresholds churns jobs (forcing live rewrites), dies the
// fast way with a stale compaction temp file left behind — the on-disk
// shape a kill -9 mid-rename leaves — and the next daemon over the same
// directories recovers the unfinished job under its original id.
func TestRecoveryAfterCompactionCrash(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	cfg := Config{
		Workers:               1,
		CheckpointDir:         ckptDir,
		CheckpointEvery:       20,
		StoreDir:              storeDir,
		JournalCompactRecords: 8, // every few records: compaction runs DURING the churn
	}
	srv, ts := newTestServer(t, cfg)

	// Churn short jobs to terminal: their journal records cross the
	// 8-record threshold repeatedly, so online compaction rewrites the
	// live journal several times during this loop.
	for i := 0; i < 6; i++ {
		code, body := postJSON(t, ts.URL+"/v1/jobs",
			fmt.Sprintf(`{"scenario":"landau","name":"churn-%d","until":0.02,"fixed_dt":0.01}`, i))
		if code != http.StatusAccepted {
			t.Fatalf("churn submit: %d %v", code, body)
		}
		pollStatus(t, ts.URL, int(body["id"].(float64)), "done")
	}
	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","name":"longhaul","until":30,"fixed_dt":0.001}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	longID := int(body["id"].(float64))
	pollStatus(t, ts.URL, longID, "running")

	// Die fast, then plant a poisoned journal.v6dj.tmp: what a SIGKILL
	// between compaction's write and rename leaves. It must be ignored
	// and removed, never replayed.
	ts.Close()
	srv.Close()
	tmp := filepath.Join(storeDir, "journal.v6dj.tmp")
	if err := os.WriteFile(tmp, []byte("half-written compaction output"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := newTestServer(t, cfg)
	defer srv2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale compaction temp file survived reopen")
	}
	if !strings.Contains(scrapeMetrics(t, ts2.URL), "vlasovd_jobs_recovered_total 1") {
		t.Fatal("long job not recovered after compaction crash")
	}
	st := pollStatus(t, ts2.URL, longID, "running", "queued")
	if st["name"] != "longhaul" {
		t.Fatalf("recovered job lost its identity: %v", st)
	}
	code, _, _ = authJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts2.URL, longID), "", "")
	if code != http.StatusAccepted {
		t.Fatalf("cancel recovered job: %d", code)
	}
	pollStatus(t, ts2.URL, longID, "cancelled")
}
