// Package obs is the observability core of the control plane: a span-based
// job-lifecycle tracer and a fixed-bucket histogram, both cheap enough to
// sit on hot paths.
//
// The paper's headline metric is time-to-solution at extreme scale, and its
// §7 accounting splits a run's wall clock into phases (compute, diagnostics,
// snapshot I/O). The service form of that accounting is a trace: every job
// carries a bounded buffer of timed spans — admission, queue wait, each
// dispatch attempt, each running segment, each checkpoint write, recovery
// after a restart — so "where did this job's three hours go" is answerable
// per job, not just as a fleet-wide total. The same measurements feed
// Histograms, the fleet-wide distribution view /metrics scrapes.
//
// Both types are designed for the serve layer's concurrency shape: a Trace
// has its own small mutex (never the server lock), and a Histogram is
// entirely atomic — Observe from the runner's step loop costs two atomic
// adds and a CAS, no lock, no allocation.
package obs

import (
	"sync"
	"time"
)

// Span is one timed phase of a job's life. Spans are JSON-serialisable and
// persist into the artifact index at terminal time, so a trace outlives the
// daemon that recorded it.
type Span struct {
	// Name is the phase: "admission", "queue", "dispatch", "run",
	// "checkpoint", "backoff", "recovery", "quota_eviction", …
	Name string `json:"name"`
	// StartUnixNano / EndUnixNano bracket the span in wall time.
	// EndUnixNano is 0 while the span is still open (a live trace read
	// mid-run shows in-flight phases).
	StartUnixNano int64 `json:"start_unix_nano"`
	EndUnixNano   int64 `json:"end_unix_nano,omitempty"`
	// Attrs carries phase-specific detail (attempt number, checkpoint
	// clock, ETA projection at segment end, …) as strings.
	Attrs map[string]string `json:"attrs,omitempty"`

	id int64 // Start handle; 0 for spans recorded whole via Observe
}

// DurationSeconds is the span's length (0 for a still-open span).
func (s Span) DurationSeconds() float64 {
	if s.EndUnixNano == 0 {
		return 0
	}
	return float64(s.EndUnixNano-s.StartUnixNano) / 1e9
}

// DefaultTraceSpans is the per-job span-buffer capacity when the caller
// passes 0: enough for the full lifecycle of a long job (admission + queue
// + a handful of attempts + running segments + a couple hundred checkpoint
// writes) without letting one pathological job hold unbounded memory.
const DefaultTraceSpans = 256

// Trace is one job's bounded span buffer. When the buffer is full the
// oldest span is evicted and counted — the trace document reports the loss
// explicitly, mirroring the SSE ring's never-silent contract. Safe for
// concurrent use; the lock is per-trace, so recording a span never
// contends with any other job (or with the server lock). A nil *Trace is
// a valid no-op recorder: every method tolerates it, so callers holding
// an optional trace never need a guard on the recording path.
type Trace struct {
	mu      sync.Mutex
	cap     int
	spans   []Span
	nextID  int64
	dropped int64
}

// NewTrace returns a trace retaining up to capacity spans (0 picks
// DefaultTraceSpans, minimum 8 so a minimal lifecycle always fits whole).
func NewTrace(capacity int) *Trace {
	if capacity == 0 {
		capacity = DefaultTraceSpans
	}
	if capacity < 8 {
		capacity = 8
	}
	return &Trace{cap: capacity}
}

// Start opens a span and returns its handle for End. Attrs may be nil.
func (t *Trace) Start(name string, attrs map[string]string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.appendLocked(Span{
		Name:          name,
		StartUnixNano: time.Now().UnixNano(),
		Attrs:         attrs,
		id:            t.nextID,
	})
	return t.nextID
}

// End closes the span opened under handle id, merging extra attrs into it.
// Ending an unknown (or already-evicted) handle is a no-op — eviction must
// not turn a late End into a panic.
func (t *Trace) End(id int64, attrs map[string]string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		if t.spans[i].id == id {
			t.spans[i].EndUnixNano = time.Now().UnixNano()
			if len(attrs) > 0 {
				if t.spans[i].Attrs == nil {
					t.spans[i].Attrs = make(map[string]string, len(attrs))
				}
				for k, v := range attrs {
					t.spans[i].Attrs[k] = v
				}
			}
			return
		}
	}
}

// Observe records one already-completed span (a phase whose start and end
// are both known at record time: a checkpoint write, a queue wait reported
// by the scheduler at dispatch).
func (t *Trace) Observe(name string, start, end time.Time, attrs map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.appendLocked(Span{
		Name:          name,
		StartUnixNano: start.UnixNano(),
		EndUnixNano:   end.UnixNano(),
		Attrs:         attrs,
	})
}

// appendLocked retains a span, evicting the oldest when full. Callers hold
// t.mu.
func (t *Trace) appendLocked(s Span) {
	if len(t.spans) >= t.cap {
		copy(t.spans, t.spans[1:])
		t.spans = t.spans[:len(t.spans)-1]
		t.dropped++
	}
	t.spans = append(t.spans, s)
}

// Snapshot returns a copy of the retained spans in record order plus the
// count of spans evicted from the buffer. Attr maps are copied, so the
// caller may serialise the result after dropping every lock.
func (t *Trace) Snapshot() ([]Span, int64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = s
		out[i].id = 0
		if s.Attrs != nil {
			a := make(map[string]string, len(s.Attrs))
			for k, v := range s.Attrs {
				a[k] = v
			}
			out[i].Attrs = a
		}
	}
	return out, t.dropped
}

// Len returns the number of retained spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
