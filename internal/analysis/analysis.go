// Package analysis provides the measurement tools behind the paper's
// science figures: binned matter power spectra, projected density/velocity/
// dispersion maps (Figs. 4, 6, 8), local velocity-distribution extraction
// (Fig. 5), particle-field moments with their shot noise, and writers for
// portable greymap images and CSV series.
package analysis

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"

	"vlasov6d/internal/fft"
	"vlasov6d/internal/nbody"
	"vlasov6d/internal/phase"
)

// PowerSpectrum bins the 3D power spectrum of the density field rho
// (row-major n³ mesh over a cubic box of side boxL) into nbins logarithmic
// shells between the fundamental and Nyquist wavenumbers. It returns the
// bin-centre k values (h/Mpc), P(k) ((h⁻¹Mpc)³) shell averages following
// the standard estimator P(k) = V·⟨|δ̂_k|²⟩/N⁶, and the mode count per
// shell.
func PowerSpectrum(rho []float64, n int, boxL float64, nbins int) (ks, pk, counts []float64, err error) {
	if n < 2 || len(rho) != n*n*n {
		return nil, nil, nil, fmt.Errorf("analysis: bad mesh length %d for n=%d", len(rho), n)
	}
	if nbins < 1 {
		return nil, nil, nil, fmt.Errorf("analysis: nbins %d", nbins)
	}
	mean := 0.0
	for _, v := range rho {
		mean += v
	}
	mean /= float64(len(rho))
	if mean == 0 {
		return nil, nil, nil, fmt.Errorf("analysis: zero mean density")
	}
	data := make([]complex128, len(rho))
	for i, v := range rho {
		data[i] = complex(v/mean-1, 0)
	}
	f3, err := fft.NewFFT3(n, n, n)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := f3.Forward(data); err != nil {
		return nil, nil, nil, err
	}
	kf := 2 * math.Pi / boxL
	kNyq := kf * float64(n) / 2
	lkMin, lkMax := math.Log(kf), math.Log(kNyq)
	dlk := (lkMax - lkMin) / float64(nbins)
	sum := make([]float64, nbins)
	cnt := make([]float64, nbins)
	vol := boxL * boxL * boxL
	norm := vol / math.Pow(float64(n), 6)
	idx := 0
	for ix := 0; ix < n; ix++ {
		mx := modeIdx(ix, n)
		for iy := 0; iy < n; iy++ {
			my := modeIdx(iy, n)
			for iz := 0; iz < n; iz++ {
				mz := modeIdx(iz, n)
				k := kf * math.Sqrt(float64(mx*mx+my*my+mz*mz))
				if k > 0 {
					b := int((math.Log(k) - lkMin) / dlk)
					if b >= 0 && b < nbins {
						p := cmplx.Abs(data[idx])
						sum[b] += p * p * norm
						cnt[b]++
					}
				}
				idx++
			}
		}
	}
	for b := 0; b < nbins; b++ {
		kc := math.Exp(lkMin + (float64(b)+0.5)*dlk)
		if cnt[b] > 0 {
			ks = append(ks, kc)
			pk = append(pk, sum[b]/cnt[b])
			counts = append(counts, cnt[b])
		}
	}
	return ks, pk, counts, nil
}

func modeIdx(i, n int) int {
	if i > n/2 {
		return i - n
	}
	return i
}

// Project collapses a 3D field (shape n, row-major) along axis into a 2D
// map (mean along the line of sight), returning the map and its dimensions.
func Project(field []float64, n [3]int, axis int) ([]float64, int, int, error) {
	if len(field) != n[0]*n[1]*n[2] {
		return nil, 0, 0, fmt.Errorf("analysis: field length %d != %v", len(field), n)
	}
	if axis < 0 || axis > 2 {
		return nil, 0, 0, fmt.Errorf("analysis: bad axis %d", axis)
	}
	var w, h, depth int
	switch axis {
	case 0:
		w, h, depth = n[1], n[2], n[0]
	case 1:
		w, h, depth = n[0], n[2], n[1]
	default:
		w, h, depth = n[0], n[1], n[2]
	}
	out := make([]float64, w*h)
	at := func(ix, iy, iz int) float64 { return field[(ix*n[1]+iy)*n[2]+iz] }
	for a := 0; a < w; a++ {
		for b := 0; b < h; b++ {
			s := 0.0
			for d := 0; d < depth; d++ {
				switch axis {
				case 0:
					s += at(d, a, b)
				case 1:
					s += at(a, d, b)
				default:
					s += at(a, b, d)
				}
			}
			out[a*h+b] = s / float64(depth)
		}
	}
	return out, w, h, nil
}

// FieldStats summarises a field.
type FieldStats struct {
	Mean, Min, Max, RMSContrast float64
}

// Stats computes mean, extrema and the RMS density contrast of a field.
func Stats(field []float64) FieldStats {
	if len(field) == 0 {
		return FieldStats{}
	}
	st := FieldStats{Min: field[0], Max: field[0]}
	for _, v := range field {
		st.Mean += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean /= float64(len(field))
	if st.Mean != 0 {
		s := 0.0
		for _, v := range field {
			d := v/st.Mean - 1
			s += d * d
		}
		st.RMSContrast = math.Sqrt(s / float64(len(field)))
	}
	return st
}

// WritePGM renders a 2D map (w×h, row-major) as an 8-bit PGM image.
// When logScale is true values are log10-compressed above floor·max.
func WritePGM(w io.Writer, m []float64, width, height int, logScale bool) error {
	if len(m) != width*height {
		return fmt.Errorf("analysis: map length %d != %d×%d", len(m), width, height)
	}
	lo, hi := m[0], m[0]
	vals := make([]float64, len(m))
	copy(vals, m)
	if logScale {
		mx := 0.0
		for _, v := range m {
			if v > mx {
				mx = v
			}
		}
		floor := mx * 1e-4
		if floor <= 0 {
			floor = 1e-30
		}
		for i, v := range vals {
			if v < floor {
				v = floor
			}
			vals[i] = math.Log10(v)
		}
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	if _, err := fmt.Fprintf(w, "P2\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			v := int(255 * (vals[y*width+x] - lo) / (hi - lo))
			if x > 0 {
				if _, err := fmt.Fprint(w, " "); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%d", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes column series with a header row.
func WriteCSV(w io.Writer, header []string, cols ...[]float64) error {
	if len(cols) == 0 || len(header) != len(cols) {
		return fmt.Errorf("analysis: header/column mismatch")
	}
	n := len(cols[0])
	for _, c := range cols {
		if len(c) != n {
			return fmt.Errorf("analysis: ragged columns")
		}
	}
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, h)
	}
	fmt.Fprintln(w)
	for r := 0; r < n; r++ {
		for i := range cols {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, "%.8g", cols[i][r])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// VelocityPlane extracts the Fig. 5 data: the 2D (ux, uy) distribution at a
// single spatial cell, summed over uz. Returns the plane (NU0×NU1,
// row-major) and the velocity coordinates.
func VelocityPlane(g *phase.Grid, ix, iy, iz int) (plane []float64, ux, uy []float64, err error) {
	if ix < 0 || ix >= g.NX || iy < 0 || iy >= g.NY || iz < 0 || iz >= g.NZ {
		return nil, nil, nil, fmt.Errorf("analysis: cell (%d,%d,%d) out of range", ix, iy, iz)
	}
	cube := g.Cube(ix, iy, iz)
	nu := g.NU
	plane = make([]float64, nu[0]*nu[1])
	for jx := 0; jx < nu[0]; jx++ {
		for jy := 0; jy < nu[1]; jy++ {
			s := 0.0
			base := (jx*nu[1] + jy) * nu[2]
			for jz := 0; jz < nu[2]; jz++ {
				s += float64(cube[base+jz])
			}
			plane[jx*nu[1]+jy] = s * g.DU(2)
		}
	}
	ux = make([]float64, nu[0])
	for j := range ux {
		ux[j] = g.U(0, j)
	}
	uy = make([]float64, nu[1])
	for j := range uy {
		uy[j] = g.U(1, j)
	}
	return plane, ux, uy, nil
}

// ParticlesInCell returns the (ux, uy) velocities of the particles whose
// position falls inside the spatial cell (ix, iy, iz) of a mesh with shape
// n — the open circles of Fig. 5.
func ParticlesInCell(p *nbody.Particles, n [3]int, ix, iy, iz int) (ux, uy []float64) {
	var h [3]float64
	for d := 0; d < 3; d++ {
		h[d] = p.Box[d] / float64(n[d])
	}
	for i := 0; i < p.N; i++ {
		cx := int(p.Pos[0][i] / h[0])
		cy := int(p.Pos[1][i] / h[1])
		cz := int(p.Pos[2][i] / h[2])
		if cx == ix && cy == iy && cz == iz {
			ux = append(ux, p.Vel[0][i])
			uy = append(uy, p.Vel[1][i])
		}
	}
	return ux, uy
}

// ParticleMoments bins particles onto an n-shaped mesh with NGP assignment
// and returns the density, mean-velocity magnitude and 1D velocity
// dispersion per cell — the N-body columns of Fig. 6, including their shot
// noise.
type ParticleMoments struct {
	N       [3]int
	Density []float64
	MeanV   []float64 // |⟨u⟩| per cell
	Sigma   []float64
	Count   []int
}

// MomentsFromParticles computes ParticleMoments.
func MomentsFromParticles(p *nbody.Particles, n [3]int) (*ParticleMoments, error) {
	size := n[0] * n[1] * n[2]
	if size <= 0 {
		return nil, fmt.Errorf("analysis: bad mesh %v", n)
	}
	var h [3]float64
	for d := 0; d < 3; d++ {
		h[d] = p.Box[d] / float64(n[d])
	}
	m := &ParticleMoments{
		N:       n,
		Density: make([]float64, size),
		MeanV:   make([]float64, size),
		Sigma:   make([]float64, size),
		Count:   make([]int, size),
	}
	sum := make([][3]float64, size)
	sum2 := make([][3]float64, size)
	cellVol := h[0] * h[1] * h[2]
	for i := 0; i < p.N; i++ {
		cx := clampIdx(int(p.Pos[0][i]/h[0]), n[0])
		cy := clampIdx(int(p.Pos[1][i]/h[1]), n[1])
		cz := clampIdx(int(p.Pos[2][i]/h[2]), n[2])
		c := (cx*n[1]+cy)*n[2] + cz
		m.Count[c]++
		m.Density[c] += p.Mass / cellVol
		for d := 0; d < 3; d++ {
			v := p.Vel[d][i]
			sum[c][d] += v
			sum2[c][d] += v * v
		}
	}
	for c := 0; c < size; c++ {
		if m.Count[c] == 0 {
			continue
		}
		cnt := float64(m.Count[c])
		var mv, tr float64
		for d := 0; d < 3; d++ {
			mean := sum[c][d] / cnt
			mv += mean * mean
			varD := sum2[c][d]/cnt - mean*mean
			if varD > 0 {
				tr += varD
			}
		}
		m.MeanV[c] = math.Sqrt(mv)
		m.Sigma[c] = math.Sqrt(tr / 3)
	}
	return m, nil
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// NoiseComparison quantifies Fig. 6's point: the cell-to-cell fluctuation
// of each field. For the velocity-dispersion field of a hot component the
// Vlasov value is smooth while the particle estimate fluctuates with
// relative error ~1/sqrt(2·N_cell).
type NoiseComparison struct {
	VlasovRMS   float64 // RMS fractional fluctuation of the Vlasov field
	ParticleRMS float64 // same for the particle field
}

// CompareNoise computes fractional RMS fluctuations of two fields about
// their means.
func CompareNoise(vlasov, particles []float64) NoiseComparison {
	return NoiseComparison{
		VlasovRMS:   Stats(vlasov).RMSContrast,
		ParticleRMS: Stats(particles).RMSContrast,
	}
}

// CrossSpectrum bins the cross power spectrum of two density fields on the
// same n³ mesh and their correlation coefficient per shell,
// r(k) = P_ab/sqrt(P_a·P_b) — the standard measure of how faithfully the
// neutrino field traces the CDM field across scales (the quantitative
// version of Fig. 4's "roughly traces on large scales").
func CrossSpectrum(rhoA, rhoB []float64, n int, boxL float64, nbins int) (ks, r []float64, err error) {
	if n < 2 || len(rhoA) != n*n*n || len(rhoB) != n*n*n {
		return nil, nil, fmt.Errorf("analysis: bad mesh lengths %d/%d for n=%d", len(rhoA), len(rhoB), n)
	}
	if nbins < 1 {
		return nil, nil, fmt.Errorf("analysis: nbins %d", nbins)
	}
	toDelta := func(rho []float64) ([]complex128, error) {
		mean := 0.0
		for _, v := range rho {
			mean += v
		}
		mean /= float64(len(rho))
		if mean == 0 {
			return nil, fmt.Errorf("analysis: zero mean density")
		}
		d := make([]complex128, len(rho))
		for i, v := range rho {
			d[i] = complex(v/mean-1, 0)
		}
		return d, nil
	}
	da, err := toDelta(rhoA)
	if err != nil {
		return nil, nil, err
	}
	db, err := toDelta(rhoB)
	if err != nil {
		return nil, nil, err
	}
	f3, err := fft.NewFFT3(n, n, n)
	if err != nil {
		return nil, nil, err
	}
	if err := f3.Forward(da); err != nil {
		return nil, nil, err
	}
	if err := f3.Forward(db); err != nil {
		return nil, nil, err
	}
	kf := 2 * math.Pi / boxL
	kNyq := kf * float64(n) / 2
	lkMin := math.Log(kf)
	dlk := (math.Log(kNyq) - lkMin) / float64(nbins)
	pab := make([]float64, nbins)
	paa := make([]float64, nbins)
	pbb := make([]float64, nbins)
	idx := 0
	for ix := 0; ix < n; ix++ {
		mx := modeIdx(ix, n)
		for iy := 0; iy < n; iy++ {
			my := modeIdx(iy, n)
			for iz := 0; iz < n; iz++ {
				mz := modeIdx(iz, n)
				k := kf * math.Sqrt(float64(mx*mx+my*my+mz*mz))
				if k > 0 {
					b := int((math.Log(k) - lkMin) / dlk)
					if b >= 0 && b < nbins {
						a, bb := da[idx], db[idx]
						pab[b] += real(a)*real(bb) + imag(a)*imag(bb)
						paa[b] += real(a)*real(a) + imag(a)*imag(a)
						pbb[b] += real(bb)*real(bb) + imag(bb)*imag(bb)
					}
				}
				idx++
			}
		}
	}
	for b := 0; b < nbins; b++ {
		if paa[b] > 0 && pbb[b] > 0 {
			ks = append(ks, math.Exp(lkMin+(float64(b)+0.5)*dlk))
			r = append(r, pab[b]/math.Sqrt(paa[b]*pbb[b]))
		}
	}
	return ks, r, nil
}
