package decomp

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"vlasov6d/internal/fft"
	"vlasov6d/internal/mpisim"
	"vlasov6d/internal/phase"
	"vlasov6d/internal/vlasov"
)

// fillGlobal evaluates a deterministic f at GLOBAL coordinates so that every
// decomposition produces the same physical state.
func fillGlobal(b *Block, globalBox [3]float64) {
	g := b.G
	ox := float64(b.GlobalOrigin(0)) * g.DX(0)
	oy := float64(b.GlobalOrigin(1)) * g.DX(1)
	oz := float64(b.GlobalOrigin(2)) * g.DX(2)
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		gx, gy, gz := x+ox, y+oy, z+oz
		w := 1 + 0.5*math.Sin(2*math.Pi*gx/globalBox[0])*math.Cos(2*math.Pi*(gy+gz)/globalBox[1])
		return w * math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*900*900))
	})
}

// runDistributedDrift drifts the decomposed grid and returns the global
// reassembled density and total mass.
func runDistributedDrift(t *testing.T, procs [3]int, dt, a float64) ([]float64, float64) {
	t.Helper()
	globalN := [3]int{12, 12, 12}
	nu := [3]int{6, 6, 6}
	box := [3]float64{100, 100, 100}
	nranks := procs[0] * procs[1] * procs[2]
	w, err := mpisim.NewWorld(nranks)
	if err != nil {
		t.Fatal(err)
	}
	cart, err := mpisim.NewCart(nranks, procs)
	if err != nil {
		t.Fatal(err)
	}
	var density []float64
	var mass float64
	err = w.Run(func(c *mpisim.Comm) error {
		b, err := NewBlock(c, cart, globalN, nu, box, 3000)
		if err != nil {
			return err
		}
		fillGlobal(b, box)
		if err := b.Drift(dt, a); err != nil {
			return err
		}
		m, err := b.GlobalMass()
		if err != nil {
			return err
		}
		rho, err := b.GatherDensity()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			density = rho
			mass = m
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return density, mass
}

func TestNewBlockValidation(t *testing.T) {
	w, _ := mpisim.NewWorld(2)
	cart, _ := mpisim.NewCart(2, [3]int{2, 1, 1})
	err := w.Run(func(c *mpisim.Comm) error {
		if _, err := NewBlock(c, cart, [3]int{7, 8, 8}, [3]int{6, 6, 6}, [3]float64{1, 1, 1}, 1); err == nil {
			return fmt.Errorf("non-divisible extent accepted")
		}
		if _, err := NewBlock(c, cart, [3]int{4, 8, 8}, [3]int{6, 6, 6}, [3]float64{1, 1, 1}, 1); err == nil {
			return fmt.Errorf("local extent < ghost width accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributedDriftMatchesSerial(t *testing.T) {
	// CFL < 1 so both paths take a single sweep with identical arithmetic
	// (at larger dt the decomposed driver legitimately sub-steps).
	dt, a := 0.0018, 0.9
	// Serial reference via the vlasov package (periodic whole box).
	g, err := phase.New(12, 12, 12, [3]int{6, 6, 6}, [3]float64{100, 100, 100}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		w := 1 + 0.5*math.Sin(2*math.Pi*x/100)*math.Cos(2*math.Pi*(y+z)/100)
		return w * math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*900*900))
	})
	vs, err := vlasov.New(g, "slmpp5")
	if err != nil {
		t.Fatal(err)
	}
	vs.SetWorkers(1)
	if err := vs.Drift(dt, a); err != nil {
		t.Fatal(err)
	}
	mRef := g.ComputeMoments()

	for _, procs := range [][3]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 1}, {2, 2, 2}, {1, 3, 1}} {
		rho, mass := runDistributedDrift(t, procs, dt, a)
		refMass := g.TotalMass()
		if math.Abs(mass-refMass)/refMass > 1e-6 {
			t.Fatalf("procs %v: mass %v vs serial %v", procs, mass, refMass)
		}
		worst := 0.0
		for i := range rho {
			d := math.Abs(rho[i] - mRef.Density[i])
			if d > worst {
				worst = d
			}
		}
		mean := 0.0
		for _, v := range mRef.Density {
			mean += v
		}
		mean /= float64(len(mRef.Density))
		if worst/mean > 1e-5 {
			t.Fatalf("procs %v: worst density mismatch %v (mean %v)", procs, worst, mean)
		}
	}
}

func TestDriftConservesMassAcrossRanks(t *testing.T) {
	globalN := [3]int{12, 6, 6}
	nu := [3]int{6, 6, 6}
	box := [3]float64{50, 25, 25}
	w, _ := mpisim.NewWorld(4)
	cart, _ := mpisim.NewCart(4, [3]int{4, 1, 1})
	err := w.Run(func(c *mpisim.Comm) error {
		b, err := NewBlock(c, cart, globalN, nu, box, 2000)
		if err != nil {
			return err
		}
		fillGlobal(b, box)
		m0, err := b.GlobalMass()
		if err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if err := b.Drift(0.002, 1.0); err != nil {
				return err
			}
		}
		m1, err := b.GlobalMass()
		if err != nil {
			return err
		}
		if math.Abs(m1-m0)/m0 > 1e-6 {
			return fmt.Errorf("mass drift %v", math.Abs(m1-m0)/m0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDriftCFLGuard(t *testing.T) {
	w, _ := mpisim.NewWorld(1)
	cart, _ := mpisim.NewCart(1, [3]int{1, 1, 1})
	err := w.Run(func(c *mpisim.Comm) error {
		b, err := NewBlock(c, cart, [3]int{6, 6, 6}, [3]int{6, 6, 6}, [3]float64{10, 10, 10}, 5000)
		if err != nil {
			return err
		}
		// Huge dt: DriftAxis must refuse, Drift must sub-step and succeed.
		if err := b.DriftAxis(0, 1.0, 1.0); err == nil {
			return fmt.Errorf("CFL violation accepted")
		}
		return b.Drift(0.01, 1.0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSlabFFTMatchesSerial(t *testing.T) {
	n := [3]int{8, 8, 6}
	rng := rand.New(rand.NewSource(21))
	global := make([]complex128, n[0]*n[1]*n[2])
	for i := range global {
		global[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	ref := append([]complex128(nil), global...)
	f3, err := fft.NewFFT3(n[0], n[1], n[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := f3.Forward(ref); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		w, _ := mpisim.NewWorld(p)
		got := make([]complex128, len(global))
		err := w.Run(func(c *mpisim.Comm) error {
			s, err := NewSlabFFT(c, n)
			if err != nil {
				return err
			}
			lx := n[0] / p
			slab := make([]complex128, s.LocalLen())
			copy(slab, global[c.Rank()*lx*n[1]*n[2]:(c.Rank()+1)*lx*n[1]*n[2]])
			if err := s.Forward(slab); err != nil {
				return err
			}
			copy(got[c.Rank()*lx*n[1]*n[2]:], slab)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if cmplx.Abs(ref[i]-got[i]) > 1e-9 {
				t.Fatalf("p=%d: mismatch at %d: %v vs %v", p, i, got[i], ref[i])
			}
		}
	}
}

func TestSlabFFTRoundTrip(t *testing.T) {
	n := [3]int{8, 8, 4}
	w, _ := mpisim.NewWorld(2)
	err := w.Run(func(c *mpisim.Comm) error {
		s, err := NewSlabFFT(c, n)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		slab := make([]complex128, s.LocalLen())
		for i := range slab {
			slab[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		orig := append([]complex128(nil), slab...)
		if err := s.Forward(slab); err != nil {
			return err
		}
		if err := s.Inverse(slab); err != nil {
			return err
		}
		for i := range slab {
			if cmplx.Abs(slab[i]-orig[i]) > 1e-10 {
				return fmt.Errorf("roundtrip mismatch at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSlabFFTValidation(t *testing.T) {
	w, _ := mpisim.NewWorld(3)
	err := w.Run(func(c *mpisim.Comm) error {
		if _, err := NewSlabFFT(c, [3]int{8, 8, 8}); err == nil {
			return fmt.Errorf("non-divisible dims accepted for 3 ranks")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGhostExchangeIdentity(t *testing.T) {
	// With a single rank along an axis the ghosts are the rank's own
	// periodic wrap.
	w, _ := mpisim.NewWorld(1)
	cart, _ := mpisim.NewCart(1, [3]int{1, 1, 1})
	err := w.Run(func(c *mpisim.Comm) error {
		b, err := NewBlock(c, cart, [3]int{6, 6, 6}, [3]int{6, 6, 6}, [3]float64{10, 10, 10}, 100)
		if err != nil {
			return err
		}
		for i := range b.G.Data {
			b.G.Data[i] = float32(i % 251)
		}
		lo, hi, err := b.ExchangeGhosts(0)
		if err != nil {
			return err
		}
		wantLo := b.packPlanes(0, 3, 3) // planes n−3..n−1 == 3..5
		for i := range lo {
			if lo[i] != wantLo[i] {
				return fmt.Errorf("loGhost mismatch at %d", i)
			}
		}
		wantHi := b.packPlanes(0, 0, 3)
		for i := range hi {
			if hi[i] != wantHi[i] {
				return fmt.Errorf("hiGhost mismatch at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDistributedFullVlasovStep combines the local velocity kick (which
// needs no communication — the §5.1.3 design point) with the distributed
// drift into a complete eq.-(5) step, and compares against the serial
// solver.
func TestDistributedFullVlasovStep(t *testing.T) {
	globalN := [3]int{8, 8, 8}
	nu := [3]int{6, 6, 6}
	box := [3]float64{80, 80, 80}
	dt, a := 0.0015, 1.0
	accVal := [3]float64{40, -25, 10}

	// Serial reference.
	g, err := phase.New(8, 8, 8, nu, box, 2500)
	if err != nil {
		t.Fatal(err)
	}
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		w := 1 + 0.4*math.Sin(2*math.Pi*x/80)*math.Cos(2*math.Pi*y/80)
		return w * math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*700*700))
	})
	vs, err := vlasov.New(g, "slmpp5")
	if err != nil {
		t.Fatal(err)
	}
	vs.SetWorkers(1)
	var acc [3][]float64
	for d := 0; d < 3; d++ {
		acc[d] = make([]float64, g.NCells())
		for c := range acc[d] {
			acc[d][c] = accVal[d]
		}
	}
	if err := vs.Step(dt, a, acc); err != nil {
		t.Fatal(err)
	}
	mRef := g.ComputeMoments()

	// Distributed: 2×2×1 ranks, same physical state, kick locally via a
	// per-rank vlasov solver + drift via the ghost-exchange path.
	w, _ := mpisim.NewWorld(4)
	cart, _ := mpisim.NewCart(4, [3]int{2, 2, 1})
	var rho []float64
	err = w.Run(func(c *mpisim.Comm) error {
		b, err := NewBlock(c, cart, globalN, nu, box, 2500)
		if err != nil {
			return err
		}
		ox := float64(b.GlobalOrigin(0)) * b.G.DX(0)
		oy := float64(b.GlobalOrigin(1)) * b.G.DX(1)
		b.G.Fill(func(x, y, z, ux, uy, uz float64) float64 {
			wv := 1 + 0.4*math.Sin(2*math.Pi*(x+ox)/80)*math.Cos(2*math.Pi*(y+oy)/80)
			return wv * math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*700*700))
		})
		lvs, err := vlasov.New(b.G, "slmpp5")
		if err != nil {
			return err
		}
		lvs.SetWorkers(1)
		var lacc [3][]float64
		for d := 0; d < 3; d++ {
			lacc[d] = make([]float64, b.G.NCells())
			for cc := range lacc[d] {
				lacc[d][cc] = accVal[d]
			}
		}
		if err := lvs.KickHalf(dt, lacc); err != nil {
			return err
		}
		if err := b.Drift(dt, a); err != nil {
			return err
		}
		if err := lvs.KickHalf(dt, lacc); err != nil {
			return err
		}
		out, err := b.GatherDensity()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			rho = out
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range mRef.Density {
		mean += v
	}
	mean /= float64(len(mRef.Density))
	for i := range rho {
		if d := math.Abs(rho[i] - mRef.Density[i]); d > 1e-5*mean {
			t.Fatalf("cell %d: distributed %v vs serial %v", i, rho[i], mRef.Density[i])
		}
	}
}
