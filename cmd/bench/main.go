// Command bench runs the named performance suite (internal/perf) outside
// `go test`, emits the trajectory JSON committed with perf PRs
// (BENCH_*.json), and enforces the steady-state zero-allocation gate.
//
// Typical uses:
//
//	go run ./cmd/bench -list
//	go run ./cmd/bench -run 'kernel/' -benchtime 2s
//	go run ./cmd/bench -label PR7 -before BENCH_PR6.json -out BENCH_PR7.json
//	go run ./cmd/bench -check-allocs            # CI gate, no timing run
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"vlasov6d/internal/perf"
)

func main() {
	var (
		out         = flag.String("out", "", "write the JSON report to this file")
		label       = flag.String("label", "", "report label recorded in the JSON (e.g. PR7)")
		beforePath  = flag.String("before", "", "prior report JSON; its results become the before column")
		runPat      = flag.String("run", "", "regexp selecting spec names to run")
		benchtime   = flag.Duration("benchtime", time.Second, "minimum measuring time per bench")
		count       = flag.Int("count", 1, "runs per bench; the fastest is kept (rejects scheduler noise)")
		checkAllocs = flag.Bool("check-allocs", false, "verify steady-state specs allocate 0/op (skips timing unless -out/-run given)")
		list        = flag.Bool("list", false, "list spec names and exit")
	)
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}

	specs := perf.Suite()
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			fatal(err)
		}
		kept := specs[:0]
		for _, s := range specs {
			if re.MatchString(s.Name) {
				kept = append(kept, s)
			}
		}
		specs = kept
		if len(specs) == 0 {
			fatal(fmt.Errorf("no specs match -run %q", *runPat))
		}
	}

	if *list {
		for _, s := range specs {
			steady := ""
			if s.Steady {
				steady = "  [steady]"
			}
			fmt.Printf("%s%s\n", s.Name, steady)
		}
		return
	}

	if *checkAllocs {
		if !checkSteady(specs) {
			os.Exit(1)
		}
		// Allocation gate only, unless a timing run was also requested.
		if *out == "" {
			return
		}
	}

	report := perf.NewReport(*label)
	fmt.Printf("go=%s GOMAXPROCS=%d benchtime=%s\n\n", runtime.Version(), runtime.GOMAXPROCS(0), *benchtime)
	for _, s := range specs {
		res, err := perf.RunSpec(s)
		if err != nil {
			fatal(err)
		}
		for i := 1; i < *count; i++ {
			again, err := perf.RunSpec(s)
			if err != nil {
				fatal(err)
			}
			if again.NsOp < res.NsOp {
				res = again
			}
		}
		line := fmt.Sprintf("%-28s %12.0f ns/op %6d allocs/op", s.Name, res.NsOp, res.AllocsOp)
		if res.Gflops > 0 {
			line += fmt.Sprintf("  %6.3f Gflops", res.Gflops)
		}
		if res.MBs > 0 {
			line += fmt.Sprintf("  %8.1f MB/s", res.MBs)
		}
		fmt.Println(line)
		report.Benches = append(report.Benches, perf.Entry{
			Name: s.Name, Legacy: s.Legacy, Steady: s.Steady, After: res,
		})
	}

	if *beforePath != "" {
		prev, err := perf.LoadReport(*beforePath)
		if err != nil {
			fatal(err)
		}
		report.Merge(prev)
		fmt.Println()
		for _, e := range report.Benches {
			if e.Before != nil {
				fmt.Printf("%-28s %12.0f -> %12.0f ns/op  (%.2fx)\n", e.Name, e.Before.NsOp, e.After.NsOp, e.Speedup)
			}
		}
	}
	report.Sort()

	if *out != "" {
		if err := report.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}

// checkSteady runs the zero-allocation gate over every steady spec in the
// selection and reports offenders.
func checkSteady(specs []perf.Spec) bool {
	ok := true
	for _, s := range specs {
		if !s.Steady {
			continue
		}
		allocs, err := s.SteadyAllocs()
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "FAIL %-28s %v\n", s.Name, err)
			ok = false
		case allocs != 0:
			fmt.Fprintf(os.Stderr, "FAIL %-28s %.1f allocs/op in steady state, want 0\n", s.Name, allocs)
			ok = false
		default:
			fmt.Printf("ok   %-28s 0 allocs/op\n", s.Name)
		}
	}
	return ok
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
