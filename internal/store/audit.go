// The admission audit log: an append-only record of every decision the
// control plane's front door makes. The journal (store.go) remembers
// accepted work and the index (index.go) remembers finished work; neither
// remembers the requests the daemon REFUSED — the 401 from a rotated-out
// key, the 429 that throttled a runaway submitter, the 503 during a
// drain. For a machine shared by many groups over a long campaign
// (the paper's T2K-style operation model), that refusal record is what an
// operator consults when a tenant claims their jobs "disappeared": the
// audit log says exactly what was presented, when, and why it was turned
// away — or accepted, with the hash of the spec that was admitted.
//
// One AuditRecord per decision, CRC-framed JSON (the same frame codec as
// the journal, so a SIGKILL mid-append leaves at worst a torn tail that
// the next OpenAudit truncates). The log is deliberately never compacted:
// it is the history, and history is append-only. Rotation, when a
// deployment needs it, is an operator move (rename the file, HUP the
// daemon) — the daemon itself never rewrites audit.v6da.
package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// auditName is the audit log file inside the store directory.
const auditName = "audit.v6da"

// AuditRecord is one admission decision.
type AuditRecord struct {
	// UnixNano is when the decision was made.
	UnixNano int64 `json:"unix_nano"`
	// Tenant names the authenticated tenant ("" when authentication itself
	// failed, or when the daemon runs open).
	Tenant string `json:"tenant,omitempty"`
	// Outcome is the decision: "accept" for an admitted submission, or the
	// refusing status code as a string — "401", "403", "429", "503" — plus
	// the operator events "reload" / "reload_failed" for key-file swaps.
	Outcome string `json:"outcome"`
	// Reason is the human-readable explanation (the same text the HTTP
	// error body carried).
	Reason string `json:"reason,omitempty"`
	// SpecHash is the SHA-256 hex of the canonical spec bytes, when the
	// decision concerned a parseable spec (accepts always carry it).
	SpecHash string `json:"spec_hash,omitempty"`
	// JobID is the admitted job's persistent id (accepts only).
	JobID int `json:"job_id,omitempty"`
}

// At converts the wire timestamp.
func (r AuditRecord) At() time.Time { return time.Unix(0, r.UnixNano) }

// Audit is an open audit log. All methods are safe for concurrent use.
type Audit struct {
	dir string

	mu sync.Mutex
	f  *os.File
}

// OpenAudit opens (creating if absent) the audit log under dir. A torn
// tail — the half-written record a SIGKILL can leave — is truncated at
// the last whole record. Unlike the journal, nothing is dropped:
// replay here only finds the end of the valid prefix.
func OpenAudit(dir string) (*Audit, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	a := &Audit{dir: dir}
	f, err := os.OpenFile(a.path(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: audit: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: audit: %w", err)
	}
	good := int64(0)
	r := &countingReader{r: f}
	for {
		if _, err := readFrame(r); err != nil {
			break // io.EOF: clean end; anything else: torn tail
		}
		good = r.n
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: audit truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: audit: %w", err)
	}
	a.f = f
	return a, nil
}

// path is the audit log file path.
func (a *Audit) path() string { return filepath.Join(a.dir, auditName) }

// Append records one decision and fsyncs it. An audit entry that could be
// lost to a crash is not an audit entry.
func (a *Audit) Append(rec AuditRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: audit record: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return fmt.Errorf("store: audit closed")
	}
	if _, err := writeFrame(a.f, payload); err != nil {
		return fmt.Errorf("store: audit append: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("store: audit sync: %w", err)
	}
	return nil
}

// ReadAuditLog reads every whole record from an audit log file, stopping
// cleanly at a torn tail — the offline consumer (tests, operator
// tooling). Reading does not require, or take, the writing daemon's lock:
// the log is append-only, so a concurrent read sees a valid prefix.
func ReadAuditLog(dir string) ([]AuditRecord, error) {
	f, err := os.Open(filepath.Join(dir, auditName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: audit: %w", err)
	}
	defer f.Close()
	var out []AuditRecord
	r := &countingReader{r: f}
	for {
		payload, err := readFrame(r)
		if err != nil {
			return out, nil
		}
		var rec AuditRecord
		if json.Unmarshal(payload, &rec) != nil {
			continue // unknown shape from a newer daemon: skip, keep reading
		}
		out = append(out, rec)
	}
}

// Close closes the audit log. Appends after Close fail.
func (a *Audit) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil
	}
	err := a.f.Close()
	a.f = nil
	return err
}
