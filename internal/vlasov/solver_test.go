package vlasov

import (
	"math"
	"testing"

	"vlasov6d/internal/phase"
)

// testGrid builds an 8³ spatial × 8³ velocity grid on a 100³ box.
func testGrid(t *testing.T) *phase.Grid {
	t.Helper()
	g, err := phase.New(8, 8, 8, [3]int{8, 8, 8}, [3]float64{100, 100, 100}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func zeroAcc(n int) [3][]float64 {
	var acc [3][]float64
	for d := 0; d < 3; d++ {
		acc[d] = make([]float64, n)
	}
	return acc
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, "slmpp5"); err == nil {
		t.Fatal("nil grid accepted")
	}
	g := testGrid(t)
	if _, err := New(g, "bogus"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	s, err := New(g, "slmpp5")
	if err != nil {
		t.Fatal(err)
	}
	if s.SchemeName() != "slmpp5" {
		t.Fatalf("scheme %s", s.SchemeName())
	}
}

func TestDriftExactIntegerShift(t *testing.T) {
	// Populate a single velocity plane whose drift CFL is exactly 1, with a
	// spatial pattern; one step must shift the pattern by one cell.
	g := testGrid(t)
	s, err := New(g, "slmpp5")
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(1)
	// Velocity index j along x with u = U(0, j): pick j = 5.
	j := 5
	u := g.U(0, j)
	a := 1.0
	dx := g.DX(0)
	dt := dx * a * a / u // CFL = 1 exactly
	// f = ix in that velocity plane only.
	for ix := 0; ix < g.NX; ix++ {
		for iy := 0; iy < g.NY; iy++ {
			for iz := 0; iz < g.NZ; iz++ {
				cube := g.Cube(ix, iy, iz)
				cube[(j*g.NU[1]+3)*g.NU[2]+4] = float32(ix + 1)
			}
		}
	}
	if err := s.Drift(dt, a); err != nil {
		t.Fatal(err)
	}
	for ix := 0; ix < g.NX; ix++ {
		want := float32((ix-1+g.NX)%g.NX + 1)
		got := g.Cube(ix, 0, 0)[(j*g.NU[1]+3)*g.NU[2]+4]
		if math.Abs(float64(got-want)) > 1e-5 {
			t.Fatalf("ix=%d: got %v, want %v", ix, got, want)
		}
	}
}

func TestDriftUniformInvariant(t *testing.T) {
	// A spatially uniform f is a fixed point of the drift operators.
	g := testGrid(t)
	s, _ := New(g, "slmpp5")
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		return math.Exp(-(ux*ux + uy*uy + uz*uz) / (2 * 1000 * 1000))
	})
	before := append([]float32(nil), g.Data...)
	if err := s.Drift(0.001, 1.0); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if math.Abs(float64(g.Data[i]-before[i])) > 1e-6 {
			t.Fatalf("uniform f changed at %d: %v -> %v", i, before[i], g.Data[i])
		}
	}
}

func TestKickShiftsVelocity(t *testing.T) {
	// Constant acceleration for an integer-CFL half-kick must shift the
	// cube exactly one cell along ux.
	g := testGrid(t)
	s, _ := New(g, "slmpp5")
	s.SetWorkers(2)
	jx := 3
	for c := 0; c < g.NCells(); c++ {
		cube := g.CubeAt(c)
		cube[(jx*g.NU[1]+4)*g.NU[2]+4] = 2
	}
	acc := zeroAcc(g.NCells())
	du := g.DU(0)
	dt := 1.0
	for c := range acc[0] {
		acc[0][c] = 2 * du / dt // CFL over dt/2 = acc·(dt/2)/du = 1
	}
	if err := s.KickHalf(dt, acc); err != nil {
		t.Fatal(err)
	}
	cube := g.CubeAt(0)
	if got := cube[((jx+1)*g.NU[1]+4)*g.NU[2]+4]; math.Abs(float64(got-2)) > 1e-5 {
		t.Fatalf("shifted value %v, want 2", got)
	}
	if got := cube[(jx*g.NU[1]+4)*g.NU[2]+4]; math.Abs(float64(got)) > 1e-5 {
		t.Fatalf("origin value %v, want 0", got)
	}
}

func TestMassConservationFullStep(t *testing.T) {
	g := testGrid(t)
	s, _ := New(g, "slmpp5")
	// Compact Maxwellian well inside the velocity boundary plus a density
	// wave in x.
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		w := 1 + 0.3*math.Sin(2*math.Pi*x/100)
		return w * math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*800*800))
	})
	m0 := g.TotalMass()
	acc := zeroAcc(g.NCells())
	for c := range acc[0] {
		acc[0][c] = 50 // mild kick, support stays inside the grid
		acc[1][c] = -30
	}
	for step := 0; step < 5; step++ {
		if err := s.Step(0.002, 1.0, acc); err != nil {
			t.Fatal(err)
		}
	}
	m1 := g.TotalMass()
	if rel := math.Abs(m1+s.BoundaryLoss-m0) / m0; rel > 2e-5 {
		t.Fatalf("mass drift %v (m0=%v m1=%v loss=%v)", rel, m0, m1, s.BoundaryLoss)
	}
}

func TestPositivityFullStep(t *testing.T) {
	g := testGrid(t)
	s, _ := New(g, "slmpp5")
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		w := 1 + 0.9*math.Sin(2*math.Pi*x/100)*math.Cos(2*math.Pi*y/100)
		return w * math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*600*600))
	})
	acc := zeroAcc(g.NCells())
	for c := range acc[0] {
		acc[2][c] = 100
	}
	for step := 0; step < 3; step++ {
		if err := s.Step(0.002, 1.0, acc); err != nil {
			t.Fatal(err)
		}
	}
	if mn := g.MinValue(); mn < 0 {
		t.Fatalf("negative distribution value %v", mn)
	}
}

func TestBoundaryLossAccounted(t *testing.T) {
	g := testGrid(t)
	s, _ := New(g, "slmpp5")
	// Mass near the +ux boundary, strong positive acceleration pushes it out.
	jEdge := g.NU[0] - 1
	for c := 0; c < g.NCells(); c++ {
		g.CubeAt(c)[(jEdge*g.NU[1]+4)*g.NU[2]+4] = 1
	}
	m0 := g.TotalMass()
	acc := zeroAcc(g.NCells())
	for c := range acc[0] {
		acc[0][c] = 4 * g.DU(0) // CFL 2 per half-kick over dt=1
	}
	if err := s.KickHalf(1.0, acc); err != nil {
		t.Fatal(err)
	}
	m1 := g.TotalMass()
	if m1 >= m0 {
		t.Fatal("mass should have left through the velocity boundary")
	}
	if rel := math.Abs((m0-m1)-s.BoundaryLoss) / m0; rel > 1e-6 {
		t.Fatalf("loss accounting off: escaped %v, recorded %v", m0-m1, s.BoundaryLoss)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []float32 {
		g := testGrid(t)
		s, _ := New(g, "slmpp5")
		s.SetWorkers(workers)
		g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
			return (1 + 0.2*math.Sin(2*math.Pi*(x+y)/100)) *
				math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*900*900))
		})
		acc := zeroAcc(g.NCells())
		for c := range acc[0] {
			acc[0][c] = 40
			acc[1][c] = -25
			acc[2][c] = 10
		}
		if err := s.Step(0.003, 0.8, acc); err != nil {
			t.Fatal(err)
		}
		return g.Data
	}
	ref := run(1)
	for _, w := range []int{2, 5, 16} {
		got := run(w)
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("workers=%d: data diverges at %d", w, i)
			}
		}
	}
}

func TestCFLAndSuggestDT(t *testing.T) {
	g := testGrid(t)
	s, _ := New(g, "slmpp5")
	acc := zeroAcc(g.NCells())
	for c := range acc[0] {
		acc[0][c] = 100
	}
	dt := s.SuggestDT(1.0, acc, 0.5, 0.5)
	if dt <= 0 || math.IsInf(dt, 0) {
		t.Fatalf("bad dt %v", dt)
	}
	cx, cu := s.CFLNumbers(dt, 1.0, acc)
	if cx > 0.5+1e-9 || cu > 0.5+1e-9 {
		t.Fatalf("CFL targets exceeded: cx=%v cu=%v", cx, cu)
	}
	if cx < 0.49 && cu < 0.49 {
		t.Fatalf("dt not tight: cx=%v cu=%v", cx, cu)
	}
}

func TestFreeStreamingDampsDensityWave(t *testing.T) {
	// Physics check of collisionless (free-streaming) damping: with no
	// gravity, a density wave in a warm medium phase-mixes away — the
	// paper's core argument for why neutrinos suppress structure.
	g, err := phase.New(8, 6, 6, [3]int{10, 8, 8}, [3]float64{100, 100, 100}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := New(g, "slmpp5")
	sigma := 1000.0
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		w := 1 + 0.5*math.Sin(2*math.Pi*x/100)
		return w * math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*sigma*sigma))
	})
	amp := func() float64 {
		m := g.ComputeMoments()
		mn, mx := m.Density[0], m.Density[0]
		for _, v := range m.Density {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return (mx - mn) / (mx + mn)
	}
	a0 := amp()
	// Free-stream for roughly one phase-mixing time L/σ.
	dtTot := 100.0 / sigma
	nStep := 20
	for i := 0; i < nStep; i++ {
		if err := s.Drift(dtTot/float64(nStep), 1.0); err != nil {
			t.Fatal(err)
		}
	}
	a1 := amp()
	if a1 > 0.5*a0 {
		t.Fatalf("free streaming did not damp the wave: %v -> %v", a0, a1)
	}
}

func TestDiagnosticsInvariants(t *testing.T) {
	g := testGrid(t)
	s, _ := New(g, "slmpp5")
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		w := 1 + 0.4*math.Sin(2*math.Pi*x/100)
		return w * math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*800*800))
	})
	d0 := ComputeDiagnostics(g)
	if d0.Mass <= 0 || d0.L2 <= 0 {
		t.Fatal("bad initial diagnostics")
	}
	if math.Abs(d0.Mass-g.TotalMass())/d0.Mass > 1e-12 {
		t.Fatalf("diagnostic mass %v vs TotalMass %v", d0.Mass, g.TotalMass())
	}
	// For non-negative f, L1 = mass exactly.
	if math.Abs(d0.L1-d0.Mass)/d0.Mass > 1e-12 {
		t.Fatal("L1 != mass for non-negative f")
	}
	acc := zeroAcc(g.NCells())
	for c := range acc[0] {
		acc[0][c] = 40
	}
	for i := 0; i < 6; i++ {
		if err := s.Step(0.002, 1.0, acc); err != nil {
			t.Fatal(err)
		}
	}
	d1 := ComputeDiagnostics(g)
	// Limiter dissipation: L2 must not grow; entropy must not decrease
	// (beyond round-off); f stays within its initial global bounds.
	if d1.L2 > d0.L2*(1+1e-9) {
		t.Fatalf("L2 grew: %v -> %v", d0.L2, d1.L2)
	}
	if d1.Entropy < d0.Entropy*(1-1e-9) {
		t.Fatalf("entropy decreased: %v -> %v", d0.Entropy, d1.Entropy)
	}
	if d1.MinF < -1e-12 {
		t.Fatalf("negative f: %v", d1.MinF)
	}
	// Each 1D sweep is monotone, but DIRECTIONAL SPLITTING does not bound
	// the joint 6D maximum: successive sweeps can legitimately raise the
	// global max by a few percent. Guard against runaway only.
	if d1.MaxF > d0.MaxF*1.10 {
		t.Fatalf("global max grew beyond the splitting allowance: %v -> %v", d0.MaxF, d1.MaxF)
	}
}
