// Neutrino-mass comparison: the Fig. 4 workload. Two hybrid runs from the
// SAME random phases with ΣMν = 0.4 eV and 0.2 eV show the mass-dependent
// neutrino clustering (heavier = slower = more clustered) and the
// suppression of the total-matter power spectrum — the observable signal
// future galaxy surveys will use to weigh the neutrino.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"vlasov6d"
)

func run(mnu float64) (*vlasov6d.Simulation, float64) {
	cfg := vlasov6d.Config{
		Par:       vlasov6d.Planck2015(mnu),
		Box:       200,
		NGrid:     8,
		NU:        8,
		NPartSide: 8,
		Seed:      20211114, // shared phases across masses
	}
	sim, err := vlasov6d.NewSimulation(cfg, 1.0/11, vlasov6d.WithPMFactor(2))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := vlasov6d.Run(context.Background(), sim, 0.25, vlasov6d.WithMaxSteps(100000)); err != nil {
		log.Fatal(err)
	}
	m := sim.Grid.ComputeMoments()
	mean, rms := 0.0, 0.0
	for _, v := range m.Density {
		mean += v
	}
	mean /= float64(len(m.Density))
	for _, v := range m.Density {
		d := v/mean - 1
		rms += d * d
	}
	return sim, math.Sqrt(rms / float64(len(m.Density)))
}

func main() {
	log.SetFlags(0)
	fmt.Println("evolving two hybrid runs (shared phases) to z = 3 ...")
	sim4, c4 := run(0.4)
	_, c2 := run(0.2)

	fmt.Printf("\nν density contrast at z = 3:\n")
	fmt.Printf("  ΣMν = 0.4 eV : %.4f\n", c4)
	fmt.Printf("  ΣMν = 0.2 eV : %.4f\n", c2)
	fmt.Printf("  heavier neutrinos cluster more: %v (the Fig. 4 middle-vs-right contrast)\n\n", c4 > c2)

	// Total-matter spectrum of the 0.4 eV run.
	mesh := make([]float64, sim4.PM.Size())
	if err := sim4.Part.CICDeposit(mesh, sim4.PM.N); err != nil {
		log.Fatal(err)
	}
	if nu := sim4.NeutrinoDensityPM(); nu != nil {
		for i, v := range nu {
			mesh[i] += v
		}
	}
	ks, pk, _, err := vlasov6d.MeasurePowerSpectrum(mesh, sim4.PM.N[0], 200, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("total-matter P(k) at z = 3 (ΣMν = 0.4 eV):")
	fmt.Printf("%12s %14s\n", "k [h/Mpc]", "P(k) [(Mpc/h)³]")
	for i := range ks {
		fmt.Printf("%12.4f %14.4e\n", ks[i], pk[i])
	}
}
