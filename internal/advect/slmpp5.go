package advect

import (
	"fmt"
	"math"
)

// SLMPP5 is the paper's single-stage, spatially fifth-order, monotonicity-
// and positivity-preserving conservative semi-Lagrangian scheme (SL-MPP5,
// Tanaka, Yoshikawa, Minoshima & Yoshida 2017).
//
// The update is written in conservative flux form
//
//	f_i^{n+1} = f_i^n − (Φ_{i+1/2} − Φ_{i−1/2}),
//
// where Φ_{i+1/2} is the total mass (in units of cell averages) crossing the
// interface during Δt. For CFL number c = s + ξ (integer shift s, fraction
// ξ ∈ [0,1)) the flux is the sum of the s whole upstream cells plus a
// fractional contribution from the partially swept cell. The fractional part
// is obtained by interpolating the primitive function W(x) = ∫f dx with a
// quintic Lagrange polynomial through six interface nodes — the conservative
// semi-Lagrangian reconstruction of Qiu & Christlieb (2010) — which yields
// fifth-order spatial accuracy from a single flux evaluation and no CFL
// restriction.
//
// Monotonicity: the swept-cell average Φ_frac/ξ is constrained by the
// Suresh–Huynh (1997) MP limiter bounds built from the upwind stencil, which
// suppresses oscillations while retaining full order at smooth extrema.
// Positivity: the fractional flux is clipped to the donor cell's available
// mass, which (for the constant-velocity lines produced by directional
// splitting) guarantees f ≥ 0 exactly while conserving mass to round-off.
type SLMPP5 struct {
	flux []float64
	// Limiting can be disabled for order-of-accuracy studies.
	DisableMP bool
	DisablePP bool
}

// NewSLMPP5 returns the scheme with MP and PP limiting enabled.
func NewSLMPP5() *SLMPP5 { return &SLMPP5{} }

// Name implements Scheme.
func (s *SLMPP5) Name() string { return "slmpp5" }

// Stages implements Scheme: a single flux evaluation per step.
func (s *SLMPP5) Stages() int { return 1 }

// MaxCFL implements Scheme: the semi-Lagrangian update is unconditionally
// stable (0 denotes no restriction).
func (s *SLMPP5) MaxCFL() float64 { return 0 }

// Clone implements Scheme.
func (s *SLMPP5) Clone() Scheme {
	return &SLMPP5{DisableMP: s.DisableMP, DisablePP: s.DisablePP}
}

// Step advances a periodic line by CFL number c (any magnitude, any sign).
func (s *SLMPP5) Step(f []float64, c float64) error {
	n := len(f)
	if n < 6 {
		return fmt.Errorf("slmpp5: line length %d < 6", n)
	}
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return fmt.Errorf("slmpp5: invalid CFL %v", c)
	}
	if cap(s.flux) < n+1 {
		s.flux = make([]float64, n+1)
	}
	fl := s.flux[:n+1]
	s.Fluxes(f, c, fl, periodicAt)
	for i := 0; i < n; i++ {
		f[i] -= fl[i+1] - fl[i]
	}
	return nil
}

// periodicAt indexes f periodically.
func periodicAt(f []float64, i int) float64 { return f[mod(i, len(f))] }

// zeroAt indexes f with zero (vacuum) boundary values, used for the open
// velocity-space boundaries where the distribution function has compact
// support.
func zeroAt(f []float64, i int) float64 {
	if i < 0 || i >= len(f) {
		return 0
	}
	return f[i]
}

// StepOpen advances a line with vacuum (zero-inflow) boundaries, as used
// along the velocity axes: f has compact support and mass leaving the grid
// through the boundary is lost (and accounted by the caller).
func (s *SLMPP5) StepOpen(f []float64, c float64) error {
	n := len(f)
	if n < 6 {
		return fmt.Errorf("slmpp5: line length %d < 6", n)
	}
	if cap(s.flux) < n+1 {
		s.flux = make([]float64, n+1)
	}
	fl := s.flux[:n+1]
	s.Fluxes(f, c, fl, zeroAt)
	for i := 0; i < n; i++ {
		f[i] -= fl[i+1] - fl[i]
	}
	return nil
}

// Fluxes fills fl[0..n] with the interface fluxes Φ_{i−1/2} for i = 0..n,
// using at(f, j) to fetch (possibly out-of-range) cell values. fl[i] is the
// mass crossing the left interface of cell i, positive rightward.
func (s *SLMPP5) Fluxes(f []float64, c float64, fl []float64, at func([]float64, int) float64) {
	n := len(f)
	if c >= 0 {
		sh := int(math.Floor(c))
		xi := c - float64(sh)
		for i := 0; i <= n; i++ {
			// Interface i−1/2: whole upstream cells i−sh … i−1.
			sum := 0.0
			for j := i - sh; j <= i-1; j++ {
				sum += at(f, j)
			}
			k := i - sh - 1 // partially swept donor cell
			sum += s.fracRight(f, k, xi, at)
			fl[i] = sum
		}
		return
	}
	cc := -c
	sh := int(math.Floor(cc))
	eta := cc - float64(sh)
	for i := 0; i <= n; i++ {
		// Interface i−1/2 with leftward transport: whole cells i … i+sh−1
		// cross to the left, plus the left fraction of cell i+sh.
		sum := 0.0
		for j := i; j <= i+sh-1; j++ {
			sum += at(f, j)
		}
		k := i + sh
		sum += s.fracLeft(f, k, eta, at)
		fl[i] = -sum
	}
}

// fracRight returns the mass in the rightmost fraction ξ of cell k,
// reconstructed at fifth order and limited.
func (s *SLMPP5) fracRight(f []float64, k int, xi float64, at func([]float64, int) float64) float64 {
	if xi <= 0 {
		return 0
	}
	fk := at(f, k)
	if xi >= 1 {
		return fk
	}
	// Primitive-function nodes: W_m = Σ of cells k−2 … k−3+m (W_0 = 0).
	var w [6]float64
	acc := 0.0
	for m := 1; m <= 5; m++ {
		acc += at(f, k-3+m)
		w[m] = acc
	}
	// Interface k+1/2 is node m = 3; departure point is t = 3 − ξ.
	raw := w[3] - quintic(&w, 3-xi)
	return s.limitFrac(raw, xi, fk,
		at(f, k-2), at(f, k-1), fk, at(f, k+1), at(f, k+2))
}

// fracLeft returns the mass in the leftmost fraction η of cell k.
func (s *SLMPP5) fracLeft(f []float64, k int, eta float64, at func([]float64, int) float64) float64 {
	if eta <= 0 {
		return 0
	}
	fk := at(f, k)
	if eta >= 1 {
		return fk
	}
	var w [6]float64
	acc := 0.0
	for m := 1; m <= 5; m++ {
		acc += at(f, k-3+m)
		w[m] = acc
	}
	// Interface k−1/2 is node m = 2; integrate rightward a distance η.
	raw := quintic(&w, 2+eta) - w[2]
	return s.limitFrac(raw, eta, fk,
		at(f, k+2), at(f, k+1), fk, at(f, k-1), at(f, k-2))
}

// limitFrac applies the MP constraint to the swept average raw/xi and the
// positivity clip to the resulting flux. The stencil (m2,m1,c0,p1,p2) is
// ordered in the upwind sense: m* lie on the side the information comes
// from (for a left-edge fraction the physical stencil is reflected).
func (s *SLMPP5) limitFrac(raw, xi, avail, m2, m1, c0, p1, p2 float64) float64 {
	fbar := raw / xi
	if !s.DisableMP {
		// Fully-discrete monotonicity requires the Suresh–Huynh steepness
		// parameter to honour α·ξ ≤ 1−ξ (for RK method-of-lines SH use the
		// equivalent CFL ≤ 1/(1+α)); with the fixed α = 4 a single-stage
		// update overshoots by O(1%) on steps. This CFL-adaptive α is the
		// single-stage modification of Tanaka et al. (2017).
		alpha := (1 - xi) / math.Max(xi, 1e-12)
		if alpha > 4 {
			alpha = 4
		}
		fbar = mpLimitAlpha(fbar, m2, m1, c0, p1, p2, alpha)
	}
	flx := fbar * xi
	if !s.DisablePP {
		if flx < 0 {
			flx = 0
		}
		if flx > avail {
			flx = avail
		}
	}
	return flx
}

// mpLimit applies the Suresh–Huynh monotonicity-preserving constraint to the
// candidate interface/swept value v given the upwind-ordered stencil
// (f_{j-2}, f_{j-1}, f_j, f_{j+1}, f_{j+2}) where f_j is the donor cell,
// with the standard steepness parameter α = 4 (method-of-lines usage).
func mpLimit(v, fm2, fm1, f0, fp1, fp2 float64) float64 {
	return mpLimitAlpha(v, fm2, fm1, f0, fp1, fp2, 4.0)
}

// mpLimitAlpha is mpLimit with an explicit steepness parameter α.
func mpLimitAlpha(v, fm2, fm1, f0, fp1, fp2, alpha float64) float64 {
	const eps = 1e-20
	fMP := f0 + minmod2(fp1-f0, alpha*(f0-fm1))
	if (v-f0)*(v-fMP) <= eps {
		return v
	}
	dm1 := fm2 - 2*fm1 + f0
	d0 := fm1 - 2*f0 + fp1
	dp1 := f0 - 2*fp1 + fp2
	dMp := minmod4(4*d0-dp1, 4*dp1-d0, d0, dp1)
	dMm := minmod4(4*d0-dm1, 4*dm1-d0, d0, dm1)
	fUL := f0 + alpha*(f0-fm1)
	fAV := 0.5 * (f0 + fp1)
	fMD := fAV - 0.5*dMp
	fLC := f0 + 0.5*(f0-fm1) + (4.0/3.0)*dMm
	fmin := math.Max(math.Min(math.Min(f0, fp1), fMD), math.Min(math.Min(f0, fUL), fLC))
	fmax := math.Min(math.Max(math.Max(f0, fp1), fMD), math.Max(math.Max(f0, fUL), fLC))
	return median(v, fmin, fmax)
}

// quintic evaluates the degree-5 Lagrange polynomial through the nodes
// (m, w[m]) for m = 0..5 at position t.
func quintic(w *[6]float64, t float64) float64 {
	// Precomputed denominators Π_{j≠m}(m−j): for m=0..5 they are
	// −120, 24, −12, 12, −24, 120.
	var den = [6]float64{-120, 24, -12, 12, -24, 120}
	// Products (t−j).
	var d [6]float64
	for j := 0; j < 6; j++ {
		d[j] = t - float64(j)
	}
	full := 1.0
	exactNode := -1
	for j := 0; j < 6; j++ {
		if d[j] == 0 {
			exactNode = j
		}
	}
	if exactNode >= 0 {
		return w[exactNode]
	}
	for j := 0; j < 6; j++ {
		full *= d[j]
	}
	out := 0.0
	for m := 0; m < 6; m++ {
		out += w[m] * (full / d[m]) / den[m]
	}
	return out
}
