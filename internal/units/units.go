// Package units defines the physical constants and the internal unit system
// used throughout the simulation.
//
// The code works in comoving cosmological units:
//
//   - length:   h⁻¹ Mpc (comoving)
//   - velocity: km/s (canonical velocity u = a²ẋ, as in the paper's eq. 1)
//   - time:     (h⁻¹ Mpc)/(km/s) ≈ 977.8 h⁻¹ Gyr
//   - mass:     10¹⁰ h⁻¹ M_sun
//
// With this choice the gravitational constant takes the numerical value
// G = 43.0071 (km/s)² (h⁻¹ Mpc) / (10¹⁰ h⁻¹ M_sun) — the GADGET convention
// rescaled from kpc to Mpc lengths — which keeps typical densities and
// potentials near unity.
package units

import "math"

// Fundamental constants (CODATA / PDG values).
const (
	// CLight is the speed of light in km/s.
	CLight = 299792.458
	// GravCGS is Newton's constant in cm³ g⁻¹ s⁻².
	GravCGS = 6.6743e-8
	// KBoltzCGS is the Boltzmann constant in erg/K.
	KBoltzCGS = 1.380649e-16
	// EVErg is one electron-volt in erg.
	EVErg = 1.602176634e-12
	// MpcCM is one megaparsec in cm.
	MpcCM = 3.0856775814913673e24
	// MSunG is one solar mass in g.
	MSunG = 1.98892e33
	// KmCM is one kilometre in cm.
	KmCM = 1e5
)

// Internal unit system (GADGET-like).
const (
	// UnitLengthCM is the internal length unit (1 h⁻¹ Mpc) in cm (for h=1).
	UnitLengthCM = MpcCM
	// UnitVelocityCMS is the internal velocity unit (1 km/s) in cm/s.
	UnitVelocityCMS = KmCM
	// UnitMassG is the internal mass unit (10¹⁰ M_sun) in g (for h=1).
	UnitMassG = 1e10 * MSunG
	// UnitTimeS is the internal time unit in seconds: length/velocity.
	UnitTimeS = UnitLengthCM / UnitVelocityCMS
)

// G is Newton's constant in internal units:
// (km/s)² (h⁻¹Mpc) (10¹⁰ h⁻¹M_sun)⁻¹.
const G = GravCGS * UnitMassG / (UnitLengthCM * UnitVelocityCMS * UnitVelocityCMS)

// HubbleInternal is H for h=1 (100 km/s/Mpc) expressed in internal inverse
// time units, i.e. 100 km/s / (1 h⁻¹Mpc · km/s) = 100.
const HubbleInternal = 100.0

// RhoCrit0 returns the present-day critical density 3H₀²/(8πG) in internal
// units (10¹⁰ h⁻¹ M_sun per (h⁻¹ Mpc)³). It is independent of h in these
// h-scaled units.
func RhoCrit0() float64 {
	h0 := HubbleInternal
	return 3 * h0 * h0 / (8 * math.Pi * G)
}

// NeutrinoThermalVelocity returns the characteristic thermal velocity (km/s)
// of a relic neutrino of mass mNu (eV) at scale factor a. The relic neutrino
// background temperature today is Tν0 = (4/11)^(1/3)·T_CMB; a neutrino of
// momentum p = y·kTν/c has velocity v ≈ p c²/(m c²) in the non-relativistic
// regime, and the Fermi-Dirac mean momentum is ⟨y⟩ ≈ 3.151.
//
// v_th(a) = 3.151 · (kTν0/a) / (mν c²) · c.
func NeutrinoThermalVelocity(mNuEV, a float64) float64 {
	const tNu0K = 2.7255 * 0.7137658555036082 // (4/11)^(1/3) × T_CMB
	kT := KBoltzCGS * tNu0K / a               // erg
	mc2 := mNuEV * EVErg                      // erg
	return 3.15137 * kT / mc2 * CLight
}

// OmegaNuFromMass returns the present-day neutrino density parameter Ων h²
// divided by h², i.e. Ων for a given total mass ΣMν (eV) and Hubble h:
// Ων = ΣMν / (93.14 eV · h²).
func OmegaNuFromMass(sumMNuEV, h float64) float64 {
	return sumMNuEV / (93.14 * h * h)
}

// FermiDirac returns the (unnormalised) relativistic Fermi-Dirac occupation
// for dimensionless momentum y = pc/(kTν): 1/(e^y + 1).
func FermiDirac(y float64) float64 {
	return 1 / (math.Exp(y) + 1)
}

// FermiDiracNorm is ∫₀^∞ y² /(e^y+1) dy = 3ζ(3)/2 ≈ 1.803085.
const FermiDiracNorm = 1.8030853547393952
