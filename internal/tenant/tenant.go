// Package tenant is the multi-tenancy layer of the control plane: bearer
// API keys, per-tenant quotas, and token-bucket rate limiting. The paper's
// T2K-style operation model is many groups sharing one machine — per-group
// isolation on shared compute — and the ROADMAP's "millions of users"
// north star disqualifies a daemon that trusts its network. A Registry is
// loaded from a key file at daemon start; the HTTP layer authenticates
// every /v1 request against it, scopes job visibility to the owning
// tenant, and admits submissions against the tenant's queue quota and
// rate limit. The core quota (MaxCores) rides into the scheduler as the
// tenant's collective cap on the CoreBudget's fair-share division — see
// sched.Claim.
//
// Key file format (JSON):
//
//	{
//	  "tenants": [
//	    {"name": "ops", "key": "an-operator-string", "admin": true},
//	    {"name": "alice", "key": "a-long-random-string",
//	     "max_queued": 16, "max_cores": 4,
//	     "rate_per_sec": 2, "burst": 4,
//	     "max_storage_bytes": 1073741824},
//	    {"name": "bob", "key": "another-long-random-string"}
//	  ]
//	}
//
// Every quota field is optional; zero means unlimited (no queue bound, no
// core cap, no rate limit, no storage cap). Names and keys must be unique
// and non-empty. "admin" grants the /v1/admin surface (hot key reload);
// an always-on daemon needs at least one admin tenant to rotate keys over
// HTTP, though SIGHUP reloads work regardless.
//
// The registry itself is immutable — key rotation swaps a whole new
// Registry in behind the control plane's atomic pointer (see serve), so a
// reload that fails validation leaves the old registry untouched.
package tenant

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"
)

// Tenant is one authenticated principal and its quotas. The quota fields
// are immutable after load; the token bucket behind Allow is internally
// synchronised, so one *Tenant is shared safely across request handlers.
type Tenant struct {
	// Name identifies the tenant in job records, metrics labels and logs.
	Name string `json:"name"`
	// Key is the bearer token presented as "Authorization: Bearer <key>".
	Key string `json:"key"`
	// MaxQueued bounds how many of the tenant's jobs may be queued
	// (submitted, not yet dispatched) at once. 0 = unlimited.
	MaxQueued int `json:"max_queued"`
	// MaxCores caps the collective core share of the tenant's live jobs
	// under the scheduler's CoreBudget. 0 = uncapped (fair share only).
	MaxCores int `json:"max_cores"`
	// RatePerSec refills the submission token bucket (POST /v1/jobs).
	// 0 = no rate limit.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst is the bucket capacity (defaults to ceil(RatePerSec), at
	// least 1, when a rate is set).
	Burst int `json:"burst"`
	// MaxStorageBytes caps the tenant's checkpoint-artifact bytes on disk.
	// Over the cap, the control plane evicts the tenant's oldest snapshots
	// down to a retention floor and then fails the over-quota job.
	// 0 = unlimited.
	MaxStorageBytes int64 `json:"max_storage_bytes"`
	// Admin grants the /v1/admin surface (key-file reload). Admin is an
	// operator capability, not a quota exemption — admin tenants still
	// submit under their own quotas.
	Admin bool `json:"admin"`

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// Allow consumes one submission token if available. When the bucket is
// empty it reports false plus the wait until the next token — the
// Retry-After a 429 response carries. A tenant without a rate limit always
// allows.
func (t *Tenant) Allow(now time.Time) (bool, time.Duration) {
	if t.RatePerSec <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	burst := float64(t.Burst)
	// last advances only when time does: a backwards clock step (NTP
	// correction, VM migration) must not rewind the refill anchor, or the
	// interval it rewound over would accrue tokens twice once the clock
	// recovers.
	if t.last.IsZero() {
		t.tokens = burst
		t.last = now
	} else if dt := now.Sub(t.last).Seconds(); dt > 0 {
		t.tokens = math.Min(burst, t.tokens+dt*t.RatePerSec)
		t.last = now
	}
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	wait := time.Duration((1 - t.tokens) / t.RatePerSec * float64(time.Second))
	return false, wait
}

// Registry maps bearer keys to tenants. Construct with Load or Parse; a
// loaded registry is immutable and safe for concurrent use.
//
// Keys are held as SHA-256 digests and Lookup compares digests in
// constant time over the whole tenant list — a raw map probe on the
// secret would leak prefix-match timing to an attacker iterating
// candidate keys.
type Registry struct {
	digests [][sha256.Size]byte // parallel to order
	order   []*Tenant
}

// Load reads and parses a key file.
func Load(path string) (*Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: key file: %w", err)
	}
	defer f.Close()
	r, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("tenant: key file %s: %w", path, err)
	}
	return r, nil
}

// Parse decodes a key file. Duplicate names or keys, empty names or keys,
// and negative quotas are errors — the key file is the service's trust
// anchor and typos in it must fail loudly at startup.
func Parse(r io.Reader) (*Registry, error) {
	var doc struct {
		Tenants []*Tenant `json:"tenants"`
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	if len(doc.Tenants) == 0 {
		return nil, fmt.Errorf("no tenants declared")
	}
	reg := &Registry{}
	names := make(map[string]bool, len(doc.Tenants))
	keys := make(map[[sha256.Size]byte]bool, len(doc.Tenants))
	for i, t := range doc.Tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("tenant %d: empty name", i)
		}
		if t.Key == "" {
			return nil, fmt.Errorf("tenant %q: empty key", t.Name)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("duplicate tenant name %q", t.Name)
		}
		digest := sha256.Sum256([]byte(t.Key))
		if keys[digest] {
			return nil, fmt.Errorf("tenant %q: key already in use", t.Name)
		}
		if t.MaxQueued < 0 || t.MaxCores < 0 || t.RatePerSec < 0 || t.Burst < 0 || t.MaxStorageBytes < 0 {
			return nil, fmt.Errorf("tenant %q: negative quota", t.Name)
		}
		if t.RatePerSec > 0 && t.Burst == 0 {
			t.Burst = int(math.Ceil(t.RatePerSec))
			if t.Burst < 1 {
				t.Burst = 1
			}
		}
		names[t.Name] = true
		keys[digest] = true
		reg.digests = append(reg.digests, digest)
		reg.order = append(reg.order, t)
	}
	return reg, nil
}

// Lookup resolves a bearer key to its tenant. The comparison is constant
// time in the presented key: the key is hashed once, every registered
// digest is compared with crypto/subtle (no early exit), and the match is
// selected without branching on position. Timing reveals only the
// registry's size, never how close a guess came.
func (r *Registry) Lookup(key string) (*Tenant, bool) {
	digest := sha256.Sum256([]byte(key))
	idx := -1
	for i := range r.digests {
		// ConstantTimeSelect keeps even the bookkeeping branch-free.
		idx = subtle.ConstantTimeSelect(
			subtle.ConstantTimeCompare(r.digests[i][:], digest[:]), i, idx)
	}
	if idx < 0 {
		return nil, false
	}
	return r.order[idx], true
}

// ByName resolves a tenant by name — how a restarting control plane maps a
// journaled tenant name back to its current quotas (the key may have
// rotated since the job was submitted).
func (r *Registry) ByName(name string) (*Tenant, bool) {
	for _, t := range r.order {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}

// Tenants lists the registry in declaration order (metrics enumeration).
func (r *Registry) Tenants() []*Tenant {
	return append([]*Tenant(nil), r.order...)
}

// ctxKey is the context key carrying the authenticated tenant.
type ctxKey struct{}

// NewContext returns ctx carrying the authenticated tenant.
func NewContext(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the authenticated tenant, if any.
func FromContext(ctx context.Context) (*Tenant, bool) {
	t, ok := ctx.Value(ctxKey{}).(*Tenant)
	return t, ok
}
