// Distributed: the §5.1.3 parallelisation demonstrated live. The phase-space
// grid is decomposed 2×2×1 across four in-process "MPI" ranks, each rank
// kicks its velocity cubes locally (no communication — velocity space is
// never decomposed), and position drifts exchange three ghost planes per
// axis. The run verifies bit-faithful agreement with the serial solver and
// reports the communication volume actually exchanged.
package main

import (
	"fmt"
	"log"
	"math"

	"vlasov6d/internal/decomp"
	"vlasov6d/internal/mpisim"
	"vlasov6d/internal/phase"
	"vlasov6d/internal/vlasov"
)

const (
	boxL   = 100.0
	nGlob  = 12
	nu     = 8
	umax   = 2500.0
	dtStep = 0.0015
)

func fill(g *phase.Grid, ox, oy float64) {
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		w := 1 + 0.4*math.Sin(2*math.Pi*(x+ox)/boxL)*math.Cos(2*math.Pi*(y+oy)/boxL)
		return w * math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*800*800))
	})
}

func main() {
	log.SetFlags(0)
	// Serial reference.
	gs, err := phase.New(nGlob, nGlob, nGlob, [3]int{nu, nu, nu},
		[3]float64{boxL, boxL, boxL}, umax)
	if err != nil {
		log.Fatal(err)
	}
	fill(gs, 0, 0)
	vs, err := vlasov.New(gs, "slmpp5")
	if err != nil {
		log.Fatal(err)
	}
	vs.SetWorkers(1)
	if err := vs.Drift(dtStep, 1.0); err != nil {
		log.Fatal(err)
	}
	ref := gs.ComputeMoments()

	// Distributed run: 4 ranks on a 2×2×1 process grid.
	world, err := mpisim.NewWorld(4)
	if err != nil {
		log.Fatal(err)
	}
	cart, err := mpisim.NewCart(4, [3]int{2, 2, 1})
	if err != nil {
		log.Fatal(err)
	}
	var rho []float64
	var mass float64
	err = world.Run(func(c *mpisim.Comm) error {
		b, err := decomp.NewBlock(c, cart, [3]int{nGlob, nGlob, nGlob},
			[3]int{nu, nu, nu}, [3]float64{boxL, boxL, boxL}, umax)
		if err != nil {
			return err
		}
		fill(b.G, float64(b.GlobalOrigin(0))*b.G.DX(0), float64(b.GlobalOrigin(1))*b.G.DX(1))
		if err := b.Drift(dtStep, 1.0); err != nil {
			return err
		}
		m, err := b.GlobalMass()
		if err != nil {
			return err
		}
		d, err := b.GatherDensity()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			rho = d
			mass = m
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	worst := 0.0
	mean := 0.0
	for i := range rho {
		if d := math.Abs(rho[i] - ref.Density[i]); d > worst {
			worst = d
		}
		mean += ref.Density[i]
	}
	mean /= float64(len(rho))
	fmt.Printf("distributed Vlasov drift on 4 ranks (2×2×1), %d³ cells × %d³ velocities\n", nGlob, nu)
	fmt.Printf("  global mass            : %.6e (serial %.6e)\n", mass, gs.TotalMass())
	fmt.Printf("  worst density mismatch : %.3e of mean %.3e (%.1e relative)\n",
		worst, mean, worst/mean)
	fmt.Printf("  ghost traffic          : %.2f MiB in %d messages\n",
		float64(world.BytesSent())/(1<<20), world.MessagesSent())
	fmt.Printf("  velocity moments needed ZERO communication — the §5.1.3 design point\n")
}
