package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)

	spec := json.RawMessage(`{"scenario":"landau","params":{"nv":64,"nx":32}}`)
	at := time.Unix(1700000000, 123456789)
	id := s.NextID()
	if id != 0 {
		t.Fatalf("first id = %d", id)
	}
	if err := s.Submitted(id, "alice", spec, at); err != nil {
		t.Fatal(err)
	}
	if err := s.Started(id, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointWritten(id, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointWritten(id, 5.0); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A fresh Open replays everything: the job is pending (no terminal
	// record), its spec byte-identical, its progress markers intact.
	s2 := openStore(t, dir)
	pending := s2.Pending()
	if len(pending) != 1 {
		t.Fatalf("pending = %d jobs", len(pending))
	}
	j := pending[0]
	if j.ID != 0 || j.Tenant != "alice" || j.Attempts != 1 {
		t.Fatalf("replayed state: %+v", j)
	}
	if !bytes.Equal(j.Spec, spec) {
		t.Fatalf("spec did not round-trip byte-stably: %s vs %s", j.Spec, spec)
	}
	if !j.Submitted.Equal(at) {
		t.Fatalf("submitted time %v, want %v", j.Submitted, at)
	}
	if j.LastCheckpointClock != 5.0 || j.Checkpoints == 0 {
		t.Fatalf("checkpoint state: %+v", j)
	}
	if next := s2.NextID(); next != 1 {
		t.Fatalf("NextID after replay = %d", next)
	}
}

func TestTerminalJobsCompactedAway(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	spec := json.RawMessage(`{"scenario":"landau"}`)
	now := time.Now()
	for i := 0; i < 3; i++ {
		id := s.NextID()
		if err := s.Submitted(id, "", spec, now); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Terminal(0, "done", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Terminal(2, "failed", "boom"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	sizeBefore := journalSize(t, dir)

	// Reopen: only job 1 survives, the journal shrank (compaction dropped
	// the terminal jobs' records), and the id counter did not rewind.
	s2 := openStore(t, dir)
	pending := s2.Pending()
	if len(pending) != 1 || pending[0].ID != 1 {
		t.Fatalf("pending after compaction: %+v", pending)
	}
	if got := journalSize(t, dir); got >= sizeBefore {
		t.Fatalf("journal did not shrink: %d -> %d bytes", sizeBefore, got)
	}
	if next := s2.NextID(); next != 3 {
		t.Fatalf("NextID after compaction = %d (terminal ids must not be reissued)", next)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	spec := json.RawMessage(`{"scenario":"landau"}`)
	if err := s.Submitted(s.NextID(), "", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.Submitted(s.NextID(), "", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a SIGKILL mid-append: a torn frame (header promising more
	// bytes than exist) at the tail.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x12, 0x34}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openStore(t, dir)
	if got := len(s2.Pending()); got != 2 {
		t.Fatalf("pending after torn tail = %d, want 2", got)
	}
	// The torn bytes are gone: appending and replaying again works.
	if err := s2.Submitted(s2.NextID(), "", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openStore(t, dir)
	if got := len(s3.Pending()); got != 3 {
		t.Fatalf("pending after re-append = %d, want 3", got)
	}
}

func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	spec := json.RawMessage(`{"scenario":"landau"}`)
	if err := s.Submitted(s.NextID(), "", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a payload byte: the CRC catches it and replay keeps only the
	// records before the damage (here: none after).
	path := filepath.Join(dir, journalName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	// The first frame is the compaction seq record; the damaged submitted
	// frame is dropped.
	if got := len(s2.Pending()); got != 0 {
		t.Fatalf("pending after corrupt frame = %d, want 0", got)
	}
}

func TestUserCancelIsTerminal(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	id := s.NextID()
	if err := s.Submitted(id, "", json.RawMessage(`{}`), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.Terminal(id, "cancelled", ""); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	if got := len(s2.Pending()); got != 0 {
		t.Fatalf("user-cancelled job replayed as pending")
	}
}

func journalSize(t *testing.T, dir string) int64 {
	t.Helper()
	st, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}
