// Retryable-error classification: the contract between solvers (and their
// factories) and the schedulers that re-run them.
//
// A long-lived service re-submits work that failed for a *transient* reason
// — a full disk that an operator is clearing, a checkpoint volume briefly
// unmounted, a flaky downstream collector — but must never retry a
// deterministic failure (an unstable configuration diverges identically on
// every attempt, so retrying it only burns the pool). The boundary between
// the two is knowledge only the failing code has, so it is expressed by
// wrapping: whoever returns an error it knows to be transient marks it with
// MarkRetryable, and the scheduler's retry policy fires only on errors that
// carry the mark somewhere in their chain.
package runner

import (
	"context"
	"errors"
	"fmt"
)

// retryableError wraps an error to mark it transient. It participates in
// errors.Is/As chains through Unwrap.
type retryableError struct{ err error }

func (r *retryableError) Error() string { return fmt.Sprintf("retryable: %v", r.err) }

func (r *retryableError) Unwrap() error { return r.err }

// Retryable implements the classification interface IsRetryable looks for.
func (r *retryableError) Retryable() bool { return true }

// MarkRetryable wraps err so IsRetryable reports it as transient. A nil err
// returns nil. Cancellation is never retryable regardless of marking: a
// cancelled job was stopped on purpose, not by a fault.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// IsRetryable reports whether err carries a transient mark anywhere in its
// wrap chain — either a MarkRetryable wrapper or any error implementing
// `Retryable() bool` (so solver packages can classify their own error types
// without importing this one). Context cancellation and deadline errors are
// never retryable, even if a careless wrapper marked them.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}
