// Package store is the durable half of the control plane: an append-only
// journal of job lifecycle events that survives a daemon kill. The HTTP
// layer (internal/serve) keeps its queue in memory — the stream scheduler
// is deliberately volatile — so without this package a restart forgets
// every queued and running job, which disqualifies the service for the
// ROADMAP's always-on exemplar (SK-Gd's real-time monitor: a campaign that
// must survive process restarts without losing state).
//
// The journal records five event kinds per job, keyed by a persistent job
// id that outlives any single process:
//
//	submitted   the tenant and the canonical spec JSON (catalog.JobSpec)
//	started     an attempt began (1-based attempt number)
//	checkpoint  a snapshot reached disk, with its clock
//	events      SSE event sequence numbers reserved for the job's ring, so
//	            numbering survives restarts (reserved in blocks, not per
//	            event)
//	terminal    the job finished: done, failed, or user-cancelled
//
// Records are CRC-framed (length + CRC32 + JSON payload) and fsynced, so a
// SIGKILL mid-write leaves at worst a torn tail, which Open truncates at
// the last whole record. Shutdown-driven cancellation is deliberately NOT
// journaled as terminal — a job cancelled because the daemon died is
// unfinished work, and replaying it is the whole point.
//
// Open replays the journal, then compacts: terminal jobs' records are
// dropped and the survivors rewritten (atomically, temp + rename), so the
// file stays proportional to the unfinished set, not the service's entire
// history. Pending returns the unfinished jobs oldest-first; the control
// plane re-queues them into the stream and the existing checkpoint-resume
// machinery (sched's WithJobCheckpoints + the catalog Restore hooks)
// continues each one from its newest snapshot.
//
// Compaction is also available online: Compact is safe to call while
// appends are in flight (it runs under the store mutex, temp + rename,
// and the directory is fsynced after the rename so a power loss cannot
// roll the rename back and resurrect terminal jobs), and SetAutoCompact
// arms size/record thresholds that trigger it from the append path — a
// long-running daemon's journal stays proportional to its live work
// instead of growing until the next boot. A compaction interrupted by a
// kill leaves at worst a stale journal.v6dj.tmp, which the next Open
// removes without ever replaying it.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// journalName is the journal file inside the store directory.
const journalName = "journal.v6dj"

// maxRecordLen bounds a single record frame. A length prefix past it means
// the frame is garbage (a torn or corrupt header), not a real record.
const maxRecordLen = 16 << 20

// record is the on-disk payload of one journal frame.
type record struct {
	// Type is the event kind: "seq", "submitted", "started", "checkpoint"
	// or "terminal".
	Type string `json:"type"`
	// ID is the persistent job id the event belongs to (all but "seq").
	ID int `json:"id,omitempty"`
	// Next seeds the id counter ("seq" records, written by compaction).
	Next int `json:"next,omitempty"`
	// Tenant and Spec accompany "submitted".
	Tenant string          `json:"tenant,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	// UnixNano is the submission time ("submitted").
	UnixNano int64 `json:"unix_nano,omitempty"`
	// Attempt accompanies "started".
	Attempt int `json:"attempt,omitempty"`
	// Clock accompanies "checkpoint".
	Clock float64 `json:"clock,omitempty"`
	// Status and Error accompany "terminal".
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
	// Seq accompanies "events": the highest SSE event sequence reserved for
	// the job, so a restarted daemon continues numbering instead of
	// resetting every resuming client's cursor.
	Seq int64 `json:"seq,omitempty"`
}

// JobState is the replayed state of one journaled job.
type JobState struct {
	// ID is the persistent job id (stable across restarts — the handle a
	// remote client keeps polling after the daemon it submitted to dies).
	ID int
	// Tenant names the submitting tenant ("" when the daemon ran open).
	Tenant string
	// Spec is the canonical JSON of the submitted catalog.JobSpec, byte
	// for byte as journaled.
	Spec json.RawMessage
	// Submitted is the original submission time.
	Submitted time.Time
	// Attempts is the highest started attempt (0 = never dispatched).
	Attempts int
	// Checkpoints counts journaled snapshot writes; LastCheckpointClock is
	// the newest one's clock.
	Checkpoints         int
	LastCheckpointClock float64
	// Terminal reports whether the job reached a journaled final state;
	// Status/Error describe it ("done", "failed", "cancelled").
	Terminal bool
	Status   string
	Error    string
	// EventSeqReserved is the highest SSE event sequence number reserved
	// for this job (0 = none journaled). A restarted daemon resumes its
	// event numbering after this value, so sequence ids are never reused
	// across restarts and resuming clients keep a meaningful cursor.
	EventSeqReserved int64
}

// Store is an open journal. All methods are safe for concurrent use.
type Store struct {
	dir string

	mu   sync.Mutex
	f    *os.File
	jobs map[int]*JobState
	next int

	// size/records track the journal file so auto-compaction can keep it
	// bounded; terminals counts jobs whose records compaction would drop
	// (compacting with nothing to drop would just rewrite the same bytes).
	size      int64
	records   int
	terminals int
	// autoBytes/autoRecords arm online auto-compaction (0 = off).
	autoBytes   int64
	autoRecords int
}

// Open replays (and compacts) the journal under dir, creating the
// directory and an empty journal when none exists. A torn tail — the
// half-written record a SIGKILL can leave — is truncated at the last whole
// record; everything before it replays normally. A stale journal.v6dj.tmp
// left by a compaction that was killed mid-rewrite is removed unread: the
// rename never happened, so the real journal is authoritative and the tmp
// must never be replayed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, jobs: make(map[int]*JobState)}
	os.Remove(s.path() + ".tmp")
	if err := s.replay(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	err := s.compactLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// SetAutoCompact arms online compaction: after any append that leaves the
// journal over maxBytes bytes or maxRecords records (and with at least one
// terminal job whose records compaction can drop), the journal is
// compacted in place under the same mutex the append holds. Zero disables
// the corresponding threshold.
func (s *Store) SetAutoCompact(maxBytes int64, maxRecords int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.autoBytes = maxBytes
	s.autoRecords = maxRecords
}

// Size reports the journal's current byte size (tests and metrics).
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// path is the journal file path.
func (s *Store) path() string { return filepath.Join(s.dir, journalName) }

// replay reads every whole record, truncating a torn or corrupt tail.
func (s *Store) replay() error {
	f, err := os.OpenFile(s.path(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Make the journal's directory entry durable: a file created just
	// before a power loss otherwise vanishes with the unfsynced directory,
	// taking the first appended records with it.
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	good := int64(0)
	r := &countingReader{r: f}
	for {
		rec, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn tail (SIGKILL mid-append) or a corrupt frame: keep
			// everything up to the last whole record, drop the rest. The
			// journal is an intent log — a half-written event never
			// happened.
			break
		}
		good = r.n
		s.records++
		s.apply(rec)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return fmt.Errorf("store: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.f = f
	s.size = good
	return nil
}

// apply folds one record into the replay state.
func (s *Store) apply(rec record) {
	switch rec.Type {
	case "seq":
		if rec.Next > s.next {
			s.next = rec.Next
		}
	case "submitted":
		s.jobs[rec.ID] = &JobState{
			ID:        rec.ID,
			Tenant:    rec.Tenant,
			Spec:      rec.Spec,
			Submitted: time.Unix(0, rec.UnixNano),
		}
		if rec.ID >= s.next {
			s.next = rec.ID + 1
		}
	case "started":
		if j := s.jobs[rec.ID]; j != nil && rec.Attempt > j.Attempts {
			j.Attempts = rec.Attempt
		}
	case "checkpoint":
		if j := s.jobs[rec.ID]; j != nil {
			j.Checkpoints++
			if rec.Clock > j.LastCheckpointClock {
				j.LastCheckpointClock = rec.Clock
			}
		}
	case "terminal":
		if j := s.jobs[rec.ID]; j != nil {
			if !j.Terminal {
				s.terminals++
			}
			j.Terminal = true
			j.Status = rec.Status
			j.Error = rec.Error
		}
	case "events":
		if j := s.jobs[rec.ID]; j != nil && rec.Seq > j.EventSeqReserved {
			j.EventSeqReserved = rec.Seq
		}
	}
	// Unknown types are skipped: an older daemon replaying a newer journal
	// must not lose the records it does understand.
}

// Compact rewrites the journal to just the unfinished jobs (plus the id
// seed), atomically, and drops terminal jobs from memory. Safe to call
// while appends are in flight: the rewrite holds the same mutex every
// append takes, so it sees (and preserves) a consistent snapshot and no
// append can land between the temp write and the rename.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked is Compact's body. Callers hold s.mu (or, during Open,
// exclusive access). The journal's size afterwards is proportional to the
// live campaign, not the daemon's whole history.
//
// Durability: the temp file is fsynced before the rename, and the parent
// directory is fsynced after it — without the second fsync a power loss
// can roll the rename back to the pre-compaction journal, resurrecting
// jobs whose terminal records were only in the window the rewrite dropped
// folds away. (Post-compaction appends land in the new file; if the
// rename un-happened they would be lost with it.)
func (s *Store) compactLocked() error {
	if s.f == nil {
		return fmt.Errorf("store: closed")
	}
	tmp := s.path() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	var size int64
	records := 0
	write := func(rec record) error {
		n, err := writeRecord(f, rec)
		size += int64(n)
		records++
		return err
	}
	err = write(record{Type: "seq", Next: s.next})
	for _, j := range s.pendingLocked() {
		if err != nil {
			break
		}
		err = write(record{Type: "submitted", ID: j.ID, Tenant: j.Tenant,
			Spec: j.Spec, UnixNano: j.Submitted.UnixNano()})
		if err == nil && j.Attempts > 0 {
			err = write(record{Type: "started", ID: j.ID, Attempt: j.Attempts})
		}
		if err == nil && j.Checkpoints > 0 {
			err = write(record{Type: "checkpoint", ID: j.ID, Clock: j.LastCheckpointClock})
		}
		if err == nil && j.EventSeqReserved > 0 {
			err = write(record{Type: "events", ID: j.ID, Seq: j.EventSeqReserved})
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, s.path()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	s.f.Close()
	f, err = os.OpenFile(s.path(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen after compact: %w", err)
	}
	s.f = f
	s.size = size
	s.records = records
	s.terminals = 0
	for id, j := range s.jobs {
		if j.Terminal {
			delete(s.jobs, id)
		}
	}
	// The compacted replay state folded multiple checkpoint events into
	// one; keep the count consistent with what the rewritten journal holds.
	for _, j := range s.jobs {
		if j.Checkpoints > 1 {
			j.Checkpoints = 1
		}
	}
	return nil
}

// pendingLocked returns the unfinished jobs oldest-first. Callers hold
// s.mu (or, during Open, exclusive access).
func (s *Store) pendingLocked() []*JobState {
	out := make([]*JobState, 0, len(s.jobs))
	for _, j := range s.jobs {
		if !j.Terminal {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Pending returns a copy of every unfinished job's state, oldest first —
// the work a restarting control plane re-queues.
func (s *Store) Pending() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := s.pendingLocked()
	out := make([]JobState, len(ps))
	for i, j := range ps {
		out[i] = *j
		out[i].Spec = append(json.RawMessage(nil), j.Spec...)
	}
	return out
}

// NextID allocates the next persistent job id. The allocation itself is
// durable only once Submitted journals the id; a crash between the two
// burns the number, which is fine — ids are unique, not dense.
func (s *Store) NextID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	return id
}

// Submitted journals a new job: its id, tenant and canonical spec bytes.
// The spec is stored verbatim — replay hands back the same bytes, so a
// spec round-trips the journal byte-stably.
func (s *Store) Submitted(id int, tenantName string, spec json.RawMessage, at time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id >= s.next {
		s.next = id + 1
	}
	if err := s.appendLocked(record{Type: "submitted", ID: id, Tenant: tenantName,
		Spec: spec, UnixNano: at.UnixNano()}); err != nil {
		return err
	}
	s.jobs[id] = &JobState{ID: id, Tenant: tenantName,
		Spec: append(json.RawMessage(nil), spec...), Submitted: at}
	s.maybeAutoCompactLocked()
	return nil
}

// Started journals the beginning of an attempt.
func (s *Store) Started(id, attempt int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(record{Type: "started", ID: id, Attempt: attempt}); err != nil {
		return err
	}
	if j := s.jobs[id]; j != nil && attempt > j.Attempts {
		j.Attempts = attempt
	}
	s.maybeAutoCompactLocked()
	return nil
}

// CheckpointWritten journals a snapshot reaching disk at the given clock.
func (s *Store) CheckpointWritten(id int, clock float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(record{Type: "checkpoint", ID: id, Clock: clock}); err != nil {
		return err
	}
	if j := s.jobs[id]; j != nil {
		j.Checkpoints++
		if clock > j.LastCheckpointClock {
			j.LastCheckpointClock = clock
		}
	}
	s.maybeAutoCompactLocked()
	return nil
}

// EventSeqReserve journals that event sequence numbers up to and including
// upTo are spoken for on the job's SSE ring. The serve layer reserves in
// blocks (one fsync per block, not per event); after a restart it resumes
// numbering at the reservation's end + 1, which keeps sequence ids unique
// across daemon generations at the cost of a bounded gap.
func (s *Store) EventSeqReserve(id int, upTo int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(record{Type: "events", ID: id, Seq: upTo}); err != nil {
		return err
	}
	if j := s.jobs[id]; j != nil && upTo > j.EventSeqReserved {
		j.EventSeqReserved = upTo
	}
	s.maybeAutoCompactLocked()
	return nil
}

// Terminal journals a job's final state ("done", "failed" or "cancelled").
// Shutdown-driven cancellation must NOT be journaled here: an unfinished
// job with no terminal record is exactly what a restart replays.
func (s *Store) Terminal(id int, status, errMsg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(record{Type: "terminal", ID: id, Status: status, Error: errMsg}); err != nil {
		return err
	}
	if j := s.jobs[id]; j != nil {
		if !j.Terminal {
			s.terminals++
		}
		j.Terminal = true
		j.Status = status
		j.Error = errMsg
	}
	s.maybeAutoCompactLocked()
	return nil
}

// appendLocked frames, writes and fsyncs one record. Callers hold s.mu.
func (s *Store) appendLocked(rec record) error {
	if s.f == nil {
		return fmt.Errorf("store: closed")
	}
	n, err := writeRecord(s.f, rec)
	s.size += int64(n)
	if err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	s.records++
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	return nil
}

// maybeAutoCompactLocked compacts when an armed threshold is crossed and
// compaction would actually shrink the journal (at least one terminal
// job's records to drop — without that guard a journal sitting over the
// threshold on live work alone would be rewritten on every append).
// Called by the mutators AFTER their in-memory state update, never from
// appendLocked itself: compacting between a terminal record's append and
// its state update would rewrite the job as still pending. Compaction
// failure is deliberately swallowed — the append that triggered it
// already succeeded and fsynced, and a journal that has merely grown past
// its soft bound is a working journal.
func (s *Store) maybeAutoCompactLocked() {
	if s.terminals == 0 {
		return
	}
	if (s.autoBytes > 0 && s.size >= s.autoBytes) ||
		(s.autoRecords > 0 && s.records >= s.autoRecords) {
		s.compactLocked()
	}
}

// Close closes the journal file. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// syncDir fsyncs a directory: the durability step for metadata operations
// (file creation, rename). An fsynced file inside an unfsynced directory
// is not crash-durable — the rename that installed a compacted journal
// can roll back on power loss, resurrecting the jobs it dropped.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFrame writes one CRC frame: u32-LE payload length, u32-LE CRC32
// (IEEE) of the payload, payload bytes. Shared by the journal and the
// artifact index, so both survive a SIGKILL mid-append the same way.
func writeFrame(w io.Writer, payload []byte) (int, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(payload)
	return 8 + n, err
}

// readFrame reads one CRC frame's payload. io.EOF means a clean end; any
// other error means a torn or corrupt frame starting at the current offset.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("store: torn frame header")
		}
		return nil, err // io.EOF: clean end
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxRecordLen {
		return nil, fmt.Errorf("store: frame length %d exceeds limit", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("store: torn frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("store: frame CRC mismatch")
	}
	return payload, nil
}

// writeRecord frames one journal record as JSON.
func writeRecord(w io.Writer, rec record) (int, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	return writeFrame(w, payload)
}

// readRecord reads one journal frame. io.EOF means a clean end; any other
// error means a torn or corrupt frame starting at the current offset.
func readRecord(r io.Reader) (record, error) {
	var rec record
	payload, err := readFrame(r)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("store: frame payload: %w", err)
	}
	return rec, nil
}

// countingReader tracks how many bytes have been consumed, so replay knows
// where the last whole record ended.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
