package hybrid

import (
	"bytes"
	"context"
	"math"
	"testing"

	"vlasov6d/internal/analysis"
	"vlasov6d/internal/cosmo"
	"vlasov6d/internal/nbody"
	"vlasov6d/internal/phase"
	"vlasov6d/internal/runner"
	"vlasov6d/internal/snapio"
)

// smallConfig is a laptop-scale hybrid run: 8³ Vlasov cells × 8³ velocity
// cells, 8³ particles, 16³ PM mesh.
func smallConfig() Config {
	return Config{
		Par:       cosmo.Planck2015(0.4),
		Box:       200,
		NGrid:     8,
		NU:        8,
		NPartSide: 8,
		PMFactor:  2,
		Seed:      42,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative Box", func(c *Config) { c.Box = -1 }},
		{"zero Box", func(c *Config) { c.Box = 0 }},
		{"NGrid below stencil", func(c *Config) { c.NGrid = 4 }},
		{"zero NGrid", func(c *Config) { c.NGrid = 0 }},
		{"negative NGrid", func(c *Config) { c.NGrid = -8 }},
		{"NU below stencil", func(c *Config) { c.NU = 5 }},
		{"negative NU", func(c *Config) { c.NU = -8 }},
		{"NPartSide too small", func(c *Config) { c.NPartSide = 1 }},
		{"negative PMFactor", func(c *Config) { c.PMFactor = -2 }},
		{"negative UMaxFactor", func(c *Config) { c.UMaxFactor = -1 }},
		{"negative Theta", func(c *Config) { c.Theta = -0.5 }},
		{"negative CFLX", func(c *Config) { c.CFLX = -0.4 }},
		{"negative MaxDLnA", func(c *Config) { c.MaxDLnA = -0.02 }},
		{"negative PMMesh", func(c *Config) { c.PMMesh = -16 }},
		{"PMMesh not a refinement", func(c *Config) { c.PMMesh = 12 }}, // NGrid = 8
	}
	for _, tc := range bad {
		c := smallConfig()
		tc.mut(&c)
		if _, err := New(c, 0.1); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	c := smallConfig()
	if _, err := New(c, 0); err == nil {
		t.Fatal("aInit = 0 accepted")
	}
	if _, err := New(c, 2); err == nil {
		t.Fatal("aInit > 1 accepted")
	}
}

func TestApplyDefaultsFillsPaperValues(t *testing.T) {
	c := smallConfig()
	c.PMFactor = 0
	c.ApplyDefaults()
	if c.PMFactor != 3 || c.UMaxFactor != 12 || c.Scheme != "slmpp5" ||
		c.Theta != 0.5 || c.CFLX != 0.4 || c.CFLU != 0.4 || c.MaxDLnA != 0.02 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewSetsUpComponents(t *testing.T) {
	s, err := New(smallConfig(), 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	if s.Grid == nil || s.VSol == nil || s.Part == nil || s.PM == nil {
		t.Fatal("missing components")
	}
	if s.Part.N != 512 {
		t.Fatalf("particle count %d", s.Part.N)
	}
	if s.pmMesh != [3]int{16, 16, 16} {
		t.Fatalf("PM mesh %v", s.pmMesh)
	}
	if math.Abs(s.Redshift()-10) > 0.01 {
		t.Fatalf("initial redshift %v, want 10", s.Redshift())
	}
	// Mean densities: ν mass fraction should match fν = Ων/Ωm.
	nu, cdm := s.TotalMass()
	fnu := nu / (nu + cdm)
	want := s.Cfg.Par.FNu()
	if math.Abs(fnu-want)/want > 0.02 {
		t.Fatalf("ν mass fraction %v, want %v", fnu, want)
	}
}

func TestNoNeutrinoMode(t *testing.T) {
	c := smallConfig()
	c.NoNeutrino = true
	c.NPartSide = 12
	s, err := New(c, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Grid != nil || s.VSol != nil {
		t.Fatal("neutrino component created in NoNeutrino mode")
	}
	if s.pmMesh[0] != 4 { // 12/3
		t.Fatalf("PM mesh %v", s.pmMesh)
	}
	if err := s.Step(s.Cfg.Par.CosmicTime(0.1) * 0.01); err != nil {
		t.Fatal(err)
	}
}

func TestStepConservesMass(t *testing.T) {
	s, err := New(smallConfig(), 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	nu0, _ := s.TotalMass()
	if err := s.computeForces(); err != nil {
		t.Fatal(err)
	}
	dt := s.SuggestDT()
	for i := 0; i < 2; i++ {
		if err := s.Step(dt); err != nil {
			t.Fatal(err)
		}
	}
	nu1, _ := s.TotalMass()
	if rel := math.Abs(nu1+s.VSol.BoundaryLoss-nu0) / nu0; rel > 1e-4 {
		t.Fatalf("ν mass drift %v", rel)
	}
	if s.A <= 0.0909 {
		t.Fatalf("scale factor did not advance: %v", s.A)
	}
}

func TestStepPreservesPositivity(t *testing.T) {
	s, err := New(smallConfig(), 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.computeForces(); err != nil {
		t.Fatal(err)
	}
	dt := s.SuggestDT()
	for i := 0; i < 2; i++ {
		if err := s.Step(dt); err != nil {
			t.Fatal(err)
		}
	}
	if mn := s.Grid.MinValue(); mn < 0 {
		t.Fatalf("negative f: %v", mn)
	}
}

func TestMomentumConservation(t *testing.T) {
	// Total canonical particle momentum should stay near zero (forces are
	// momentum-conserving; the Vlasov component exchanges momentum with the
	// particles only through the shared potential, which is small over two
	// steps from near-homogeneous ICs).
	s, err := New(smallConfig(), 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.computeForces(); err != nil {
		t.Fatal(err)
	}
	dt := s.SuggestDT()
	if err := s.Step(dt); err != nil {
		t.Fatal(err)
	}
	mom := s.Part.TotalMomentum()
	// Scale: typical |u|·m·N.
	scale := 0.0
	for i := 0; i < s.Part.N; i++ {
		scale += math.Abs(s.Part.Vel[0][i]) * s.Part.Mass
	}
	if scale == 0 {
		t.Skip("zero velocities")
	}
	if math.Abs(mom[0])/scale > 0.05 {
		t.Fatalf("net momentum fraction %v", math.Abs(mom[0])/scale)
	}
}

func TestRunnerAdvancesToTarget(t *testing.T) {
	s, err := New(smallConfig(), 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	rep, err := runner.Run(context.Background(), s, 0.095,
		runner.WithMaxSteps(50),
		runner.WithObserver(func(step int, _ runner.Solver) error {
			calls++
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if s.A < 0.0949 {
		t.Fatalf("a = %v, want ≈ 0.095", s.A)
	}
	if calls == 0 {
		t.Fatal("observer never invoked")
	}
	if s.Tim.Steps != calls || rep.Steps != calls {
		t.Fatalf("timed steps %d, report %d, observer calls %d", s.Tim.Steps, rep.Steps, calls)
	}
	if s.Tim.Vlasov == 0 || s.Tim.PM == 0 {
		t.Fatal("phase timers not accumulating")
	}
	if _, err := runner.Run(context.Background(), s, 0.01); err == nil {
		t.Fatal("backward evolution accepted")
	}
}

func TestSolverContract(t *testing.T) {
	s, err := New(smallConfig(), 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Clock(); got != s.A {
		t.Fatalf("Clock %v != A %v", got, s.A)
	}
	// ClampDT caps the cosmic-time step at the target scale factor.
	tEnd := s.Cfg.Par.CosmicTime(0.095)
	if dt := s.ClampDT(1e12, 0.095); math.Abs(dt-(tEnd-s.Time)) > 1e-12*tEnd {
		t.Fatalf("ClampDT %v, want %v", dt, tEnd-s.Time)
	}
	if dt := s.ClampDT(1e-12, 0.095); dt != 1e-12 {
		t.Fatalf("ClampDT shrank an already-safe dt to %v", dt)
	}
	d := s.Diagnostics()
	nu, cdm := s.TotalMass()
	if d.Clock != s.A || d.Time != s.Time || math.Abs(d.Mass-(nu+cdm)) > 1e-12*(nu+cdm) {
		t.Fatalf("diagnostics %+v", d)
	}
	if d.Extra["nu_mass"] != nu || d.Extra["cdm_mass"] != cdm {
		t.Fatalf("diagnostics extras %+v", d.Extra)
	}
}

func TestCheckpointRoundTripNuParticleBaseline(t *testing.T) {
	// The §5.4 baseline checkpoints through snapio v2's second particle
	// section and restores bit-identically.
	c := smallConfig()
	c.NuParticles = true
	s, err := New(c, 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(s.SuggestDT()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := snapio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NuPart == nil || snap.NuPart.N != s.NuPart.N {
		t.Fatalf("ν particles lost in checkpoint: %+v", snap.NuPart)
	}
	r, err := Restore(c, snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.NuPart == nil || r.Grid != nil || r.VSol != nil {
		t.Fatal("restored baseline has the wrong components")
	}
	for d := 0; d < 3; d++ {
		for i := 0; i < s.NuPart.N; i += 53 {
			if r.NuPart.Pos[d][i] != s.NuPart.Pos[d][i] || r.NuPart.Vel[d][i] != s.NuPart.Vel[d][i] {
				t.Fatalf("ν particle %d dim %d not bit-identical", i, d)
			}
		}
	}
	if r.Time != s.Time || r.A != s.A {
		t.Fatalf("clock not restored: a %v vs %v, t %v vs %v", r.A, s.A, r.Time, s.Time)
	}
	// And the restored run keeps stepping.
	if err := r.Step(r.SuggestDT()); err != nil {
		t.Fatal(err)
	}
}

func TestCaptureCheckpointIsImmutableSnapshot(t *testing.T) {
	// The captured writer must serialise the state at capture time even
	// after the live simulation steps on — the property asynchronous
	// checkpoint I/O relies on.
	s, err := New(smallConfig(), 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(s.SuggestDT()); err != nil {
		t.Fatal(err)
	}
	write, err := s.CaptureCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if _, err := s.Checkpoint(&direct); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(s.SuggestDT()); err != nil { // mutate after capture
		t.Fatal(err)
	}
	var captured bytes.Buffer
	if _, err := write(&captured); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(captured.Bytes(), direct.Bytes()) {
		t.Fatal("captured checkpoint drifted with the live simulation")
	}
}

func TestGravityAmplifiesContrast(t *testing.T) {
	// Physics: over an expansion interval the CDM density contrast must
	// grow (gravitational instability), and the neutrino contrast must stay
	// well below the CDM contrast (free streaming).
	c := smallConfig()
	c.Seed = 7
	s, err := New(c, 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	contrast := func() (cdm, nu float64) {
		mesh := make([]float64, s.PM.Size())
		if err := s.Part.CICDeposit(mesh, s.pmMesh); err != nil {
			t.Fatal(err)
		}
		cdm = rmsContrast(mesh)
		m := s.Grid.ComputeMoments()
		nu = rmsContrast(m.Density)
		return cdm, nu
	}
	c0, n0 := contrast()
	if _, err := runner.Run(context.Background(), s, 0.14, runner.WithMaxSteps(200)); err != nil {
		t.Fatal(err)
	}
	c1, n1 := contrast()
	if c1 <= c0 {
		t.Fatalf("CDM contrast did not grow: %v -> %v", c0, c1)
	}
	if n1 >= c1 {
		t.Fatalf("ν contrast %v not below CDM %v (free streaming)", n1, c1)
	}
	_ = n0
}

func rmsContrast(rho []float64) float64 {
	mean := 0.0
	for _, v := range rho {
		mean += v
	}
	mean /= float64(len(rho))
	if mean == 0 {
		return 0
	}
	s := 0.0
	for _, v := range rho {
		d := v/mean - 1
		s += d * d
	}
	return math.Sqrt(s / float64(len(rho)))
}

func TestNuParticlesBaselineMode(t *testing.T) {
	c := smallConfig()
	c.NuParticles = true
	s, err := New(c, 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	if s.Grid != nil || s.VSol != nil {
		t.Fatal("Vlasov component created in particle-baseline mode")
	}
	if s.NuPart == nil || s.NuPart.N != 16*16*16 {
		t.Fatalf("neutrino particles missing or wrong count")
	}
	// Mass fraction still matches fν.
	nu, cdm := s.TotalMass()
	fnu := nu / (nu + cdm)
	if math.Abs(fnu-s.Cfg.Par.FNu())/s.Cfg.Par.FNu() > 0.02 {
		t.Fatalf("ν mass fraction %v", fnu)
	}
	if err := s.computeForces(); err != nil {
		t.Fatal(err)
	}
	dt := s.SuggestDT()
	if err := s.Step(dt); err != nil {
		t.Fatal(err)
	}
	if s.A <= 0.0909 {
		t.Fatal("no progress")
	}
}

func TestNuParticlesExclusiveWithNoNeutrino(t *testing.T) {
	c := smallConfig()
	c.NuParticles = true
	c.NoNeutrino = true
	if _, err := New(c, 0.1); err == nil {
		t.Fatal("exclusive modes accepted")
	}
}

func TestLinearGrowthMatchesTheory(t *testing.T) {
	// Quantitative physics regression: in the linear regime the amplitude
	// of large-scale density modes grows by D(a1)/D(a0). Evolve a pure-CDM
	// PM run z = 10 → 5 and compare the lowest-k power ratio with the
	// growth factor squared.
	if testing.Short() {
		t.Skip("multi-second physics run")
	}
	c := Config{
		Par:        cosmo.Planck2015(0.0),
		Box:        500,
		NGrid:      8, // unused (NoNeutrino) but validated
		NU:         8,
		NPartSide:  16,
		PMMesh:     32, // fine mesh: a 5³ mesh loses half the k₁ force
		Seed:       11,
		NoNeutrino: true,
		NoTree:     true,
	}
	a0, a1 := 1.0/11, 0.2
	s, err := New(c, a0)
	if err != nil {
		t.Fatal(err)
	}
	lowK := func() float64 {
		mesh := make([]float64, s.PM.Size())
		if err := s.Part.CICDeposit(mesh, s.pmMesh); err != nil {
			t.Fatal(err)
		}
		_, pk, _, err := analysis.PowerSpectrum(mesh, s.pmMesh[0], c.Box, 4)
		if err != nil {
			t.Fatal(err)
		}
		return pk[0] // lowest-k bin
	}
	p0 := lowK()
	if _, err := runner.Run(context.Background(), s, a1); err != nil {
		t.Fatal(err)
	}
	p1 := lowK()
	growth := math.Sqrt(p1 / p0)
	want := s.Cfg.Par.GrowthFactor(a1) / s.Cfg.Par.GrowthFactor(a0)
	if math.Abs(growth-want)/want > 0.15 {
		t.Fatalf("mode growth %v, linear theory %v (%.0f%% off)",
			growth, want, 100*math.Abs(growth-want)/want)
	}
}

func TestRestoreContinuesRun(t *testing.T) {
	// Reference: one continuous run.
	cfg := smallConfig()
	ref, err := New(cfg, 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.computeForces(); err != nil {
		t.Fatal(err)
	}
	dt := ref.SuggestDT()
	for i := 0; i < 2; i++ {
		if err := ref.Step(dt); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpointed: one step, save, restore, one step.
	s1, err := New(cfg, 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Step(dt); err != nil {
		t.Fatal(err)
	}
	s2, err := Restore(cfg, &snapio.Snapshot{A: s1.A, Time: s1.Time, Part: s1.Part, Grid: s1.Grid})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Step(dt); err != nil {
		t.Fatal(err)
	}
	// The restored run should track the continuous one closely (time
	// origins differ at round-off through ScaleFactorAt inversion).
	if math.Abs(s2.A-ref.A) > 1e-6 {
		t.Fatalf("scale factors diverged: %v vs %v", s2.A, ref.A)
	}
	nuRef, _ := ref.TotalMass()
	nu2, _ := s2.TotalMass()
	if math.Abs(nu2-nuRef)/nuRef > 1e-3 {
		t.Fatalf("ν mass diverged: %v vs %v", nu2, nuRef)
	}
	for i := 0; i < ref.Part.N; i += 97 {
		for d := 0; d < 3; d++ {
			if math.Abs(ref.Part.Pos[d][i]-s2.Part.Pos[d][i]) > 1e-6*cfg.Box {
				t.Fatalf("particle %d dim %d: %v vs %v", i, d,
					s2.Part.Pos[d][i], ref.Part.Pos[d][i])
			}
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := Restore(cfg, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := Restore(cfg, &snapio.Snapshot{A: 0.1}); err == nil {
		t.Fatal("snapshot without particles accepted")
	}
	s, err := New(cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	small, _ := nbody.NewParticles(8, 1, [3]float64{200, 200, 200})
	if _, err := Restore(cfg, &snapio.Snapshot{A: 0.1, Part: small, Grid: s.Grid}); err == nil {
		t.Fatal("particle count mismatch accepted")
	}
	wrongGrid, _ := phase.New(6, 6, 6, [3]int{6, 6, 6}, [3]float64{200, 200, 200}, 1000)
	if _, err := Restore(cfg, &snapio.Snapshot{A: 0.1, Part: s.Part, Grid: wrongGrid}); err == nil {
		t.Fatal("grid shape mismatch accepted")
	}
	// A ν-particle config needs a snapshot that actually holds neutrino
	// particles: regenerating them would mix evolved CDM with fresh ICs.
	nuCfg := smallConfig()
	nuCfg.NuParticles = true
	if _, err := Restore(nuCfg, &snapio.Snapshot{A: 0.1, Part: s.Part}); err == nil {
		t.Fatal("ν-particle restore without ν particles accepted")
	}
	// And the converse: ν particles in the snapshot demand NuParticles mode.
	nu, _ := nbody.NewParticles(16*16*16, 1, [3]float64{200, 200, 200})
	if _, err := Restore(cfg, &snapio.Snapshot{A: 0.1, Part: s.Part, Grid: s.Grid, NuPart: nu}); err == nil {
		t.Fatal("stray ν particles accepted outside NuParticles mode")
	}
	// Wrong ν-particle count.
	badNu, _ := nbody.NewParticles(10, 1, [3]float64{200, 200, 200})
	if _, err := Restore(nuCfg, &snapio.Snapshot{A: 0.1, Part: s.Part, NuPart: badNu}); err == nil {
		t.Fatal("ν-particle count mismatch accepted")
	}
}

func TestRestoreSkipsICGeneration(t *testing.T) {
	// The fast-restore contract: a skeleton build installs snapshot state
	// without filling initial conditions, so the restored fields are the
	// snapshot's own slices (no copy, no regenerated-and-discarded ICs).
	cfg := smallConfig()
	s, err := New(cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	snap := &snapio.Snapshot{A: s.A, Time: s.Time, Part: s.Part, Grid: s.Grid}
	r, err := Restore(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Part != snap.Part || r.Grid != snap.Grid {
		t.Fatal("restore copied or regenerated component state")
	}
	if len(r.accPart[0]) != r.Part.N || len(r.accCell[0]) != r.Grid.NCells() {
		t.Fatal("force arrays not sized to the installed state")
	}
	if r.VSol == nil || r.PM == nil {
		t.Fatal("solver plumbing missing after skeleton restore")
	}
}
