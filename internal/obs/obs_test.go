package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceStartEnd(t *testing.T) {
	tr := NewTrace(0)
	id := tr.Start("admission", map[string]string{"tenant": "alice"})
	if id == 0 {
		t.Fatalf("Start returned zero handle")
	}
	tr.End(id, map[string]string{"status": "accepted"})
	spans, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(spans) != 1 {
		t.Fatalf("len(spans) = %d, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "admission" {
		t.Fatalf("name = %q", s.Name)
	}
	if s.EndUnixNano == 0 || s.EndUnixNano < s.StartUnixNano {
		t.Fatalf("bad span times: start=%d end=%d", s.StartUnixNano, s.EndUnixNano)
	}
	if s.Attrs["tenant"] != "alice" || s.Attrs["status"] != "accepted" {
		t.Fatalf("attrs not merged: %v", s.Attrs)
	}
}

func TestTraceObserveWhole(t *testing.T) {
	tr := NewTrace(0)
	start := time.Now().Add(-time.Second)
	end := time.Now()
	tr.Observe("queue", start, end, nil)
	spans, _ := tr.Snapshot()
	if len(spans) != 1 || spans[0].Name != "queue" {
		t.Fatalf("spans = %v", spans)
	}
	if d := spans[0].DurationSeconds(); d < 0.9 || d > 1.1 {
		t.Fatalf("duration = %v, want ~1s", d)
	}
}

func TestTraceEvictionCountsDrops(t *testing.T) {
	tr := NewTrace(8)
	for i := 0; i < 20; i++ {
		tr.Observe("checkpoint", time.Now(), time.Now(), nil)
	}
	spans, dropped := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("len(spans) = %d, want cap 8", len(spans))
	}
	if dropped != 12 {
		t.Fatalf("dropped = %d, want 12", dropped)
	}
}

func TestTraceEndAfterEvictionIsNoop(t *testing.T) {
	tr := NewTrace(8)
	id := tr.Start("run", nil)
	for i := 0; i < 10; i++ {
		tr.Observe("checkpoint", time.Now(), time.Now(), nil)
	}
	tr.End(id, nil) // evicted; must not panic or corrupt
	tr.End(0, nil)  // zero handle is always a no-op
	if tr.Len() != 8 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestTraceSnapshotIsDeepCopy(t *testing.T) {
	tr := NewTrace(0)
	tr.Observe("run", time.Now(), time.Now(), map[string]string{"attempt": "1"})
	spans, _ := tr.Snapshot()
	spans[0].Attrs["attempt"] = "tampered"
	again, _ := tr.Snapshot()
	if again[0].Attrs["attempt"] != "1" {
		t.Fatalf("snapshot aliases internal attrs")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := tr.Start("run", nil)
				tr.End(id, nil)
				tr.Observe("checkpoint", time.Now(), time.Now(), nil)
				tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	spans, dropped := tr.Snapshot()
	if int64(len(spans))+dropped != 1600 {
		t.Fatalf("retained %d + dropped %d != 1600", len(spans), dropped)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram("x_seconds", "help", []float64{0.01, 0.1, 1})
	// Exactly on a bound lands in that bucket (le is inclusive).
	h.Observe(0.01)
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(10) // +Inf only
	var b strings.Builder
	h.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE x_seconds histogram\n",
		"x_seconds_bucket{le=\"0.01\"} 2\n",
		"x_seconds_bucket{le=\"0.1\"} 2\n",
		"x_seconds_bucket{le=\"1\"} 3\n",
		"x_seconds_bucket{le=\"+Inf\"} 4\n",
		"x_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if got, want := h.Sum(), 0.01+0.005+0.5+10; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramDedupAndInfBounds(t *testing.T) {
	h := NewHistogram("y", "help", []float64{1, 1, 0.5, math.Inf(1)})
	if len(h.upper) != 2 {
		t.Fatalf("upper = %v, want [0.5 1]", h.upper)
	}
	h.Observe(math.NaN()) // dropped
	if h.Count() != 0 {
		t.Fatalf("NaN was counted")
	}
}

func TestHistogramConcurrentMonotone(t *testing.T) {
	h := NewHistogram("z_seconds", "help", DurationBuckets())
	const goroutines, perG = 4, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := 0.0001 * float64(g+1)
			for i := 0; i < perG; i++ {
				h.Observe(v)
			}
		}(g)
	}
	// Scrape repeatedly while observers run: every exposition must be
	// internally cumulative-monotone and have _count == +Inf bucket.
	var prevCount int64
	for i := 0; i < 50; i++ {
		var b strings.Builder
		h.WriteProm(&b)
		count, inf := parseExposition(t, b.String(), "z_seconds")
		if count != inf {
			t.Fatalf("scrape %d: _count %d != +Inf bucket %d", i, count, inf)
		}
		if count < prevCount {
			t.Fatalf("scrape %d: _count went backwards %d -> %d", i, prevCount, count)
		}
		prevCount = count
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	if got, want := h.Sum(), 5000*(0.0001+0.0002+0.0003+0.0004); math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// parseExposition checks cumulative monotonicity across the _bucket lines of
// family name and returns (_count value, +Inf bucket value).
func parseExposition(t *testing.T, text, name string) (count, inf int64) {
	t.Helper()
	var prev int64 = -1
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket{"):
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("bad bucket line %q", line)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket value %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("buckets not cumulative: %q after %d", line, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, name+"_count "):
			v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = v
		}
	}
	return count, inf
}
