package ic

import (
	"math"
	"math/rand"
	"testing"

	"vlasov6d/internal/cosmo"
	"vlasov6d/internal/phase"
)

func gen(t *testing.T, mnu float64) *Generator {
	t.Helper()
	g, err := NewGenerator(cosmo.Planck2015(mnu), 200, 12345)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(cosmo.Planck2015(0.4), -1, 0); err == nil {
		t.Fatal("negative box accepted")
	}
	bad := cosmo.Planck2015(0.4)
	bad.H = -1
	if _, err := NewGenerator(bad, 100, 0); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestDeltaFieldBasicStatistics(t *testing.T) {
	g := gen(t, 0.4)
	d, err := g.DeltaField(16, 1.0, CDM)
	if err != nil {
		t.Fatal(err)
	}
	mean, v := 0.0, 0.0
	for _, x := range d {
		mean += x
	}
	mean /= float64(len(d))
	for _, x := range d {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(d))
	if math.Abs(mean) > 1e-10 {
		t.Fatalf("field mean %v, want 0 (DC mode removed)", mean)
	}
	if v <= 0 || math.IsNaN(v) {
		t.Fatalf("field variance %v", v)
	}
	// On a 200 Mpc/h box at 16³ resolution σ_cell should be O(0.1–3).
	if s := math.Sqrt(v); s < 0.05 || s > 5 {
		t.Fatalf("cell σ = %v implausible", s)
	}
}

func TestDeltaFieldGrowthScaling(t *testing.T) {
	g := gen(t, 0.0)
	d1, err := g.DeltaField(8, 1.0, CDM)
	if err != nil {
		t.Fatal(err)
	}
	d05, err := g.DeltaField(8, 0.5, CDM)
	if err != nil {
		t.Fatal(err)
	}
	ratio := g.Par.GrowthFactor(0.5)
	for i := range d1 {
		if math.Abs(d05[i]-ratio*d1[i]) > 1e-9*(1+math.Abs(d1[i])) {
			t.Fatalf("growth scaling broken at %d: %v vs %v", i, d05[i], ratio*d1[i])
		}
	}
}

func TestComponentsPhaseCoherent(t *testing.T) {
	g := gen(t, 0.4)
	dc, err := g.DeltaField(16, 1.0, CDM)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := g.DeltaField(16, 1.0, Neutrino)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-correlation coefficient must be strongly positive (same phases,
	// different transfer amplitudes).
	var cc, vc, vn float64
	for i := range dc {
		cc += dc[i] * dn[i]
		vc += dc[i] * dc[i]
		vn += dn[i] * dn[i]
	}
	// Mode-by-mode the phases are identical, but the k-dependent amplitude
	// ratio (free-streaming suppression) caps the real-space coefficient
	// below 1; it must still be strongly positive.
	r := cc / math.Sqrt(vc*vn)
	if r < 0.5 {
		t.Fatalf("components decorrelated: r = %v", r)
	}
	// Neutrino field must carry less small-scale power: lower variance.
	if vn >= vc {
		t.Fatalf("ν variance %v not suppressed vs CDM %v", vn, vc)
	}
}

func TestCDMParticlesLattice(t *testing.T) {
	g := gen(t, 0.0)
	p, err := g.CDMParticles(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 512 {
		t.Fatalf("N = %d", p.N)
	}
	wantMass := g.Par.MeanCBDensity() * 200 * 200 * 200 / 512
	if math.Abs(p.Mass-wantMass)/wantMass > 1e-12 {
		t.Fatalf("particle mass %v, want %v", p.Mass, wantMass)
	}
	// Velocities are proportional to displacements (Zel'dovich):
	// u = vfac·ψ with ψ = pos − lattice (minimum image).
	vfac := 0.5 * 0.5 * g.Par.Hubble(0.5) * g.Par.GrowthRate(0.5)
	h := 200.0 / 8
	i := 0
	for ix := 0; ix < 8; ix++ {
		for iy := 0; iy < 8; iy++ {
			for iz := 0; iz < 8; iz++ {
				q := [3]float64{(float64(ix) + 0.5) * h, (float64(iy) + 0.5) * h, (float64(iz) + 0.5) * h}
				for d := 0; d < 3; d++ {
					psi := p.MinimumImage(d, q[d], p.Pos[d][i])
					if math.Abs(p.Vel[d][i]-vfac*psi) > 1e-8*(1+math.Abs(psi)) {
						t.Fatalf("particle %d dim %d: u=%v, vfac·ψ=%v", i, d, p.Vel[d][i], vfac*psi)
					}
				}
				i++
			}
		}
	}
}

func TestNeutrinoParticlesThermal(t *testing.T) {
	g := gen(t, 0.4)
	p, err := g.NeutrinoParticles(12, 0.0909)
	if err != nil {
		t.Fatal(err)
	}
	// Mean speed should approach the FD mean 3.151·u_T (bulk flows are
	// small at z=10 compared to thermal speeds).
	uT := g.ThermalScale()
	mean := 0.0
	for i := 0; i < p.N; i++ {
		v := math.Sqrt(p.Vel[0][i]*p.Vel[0][i] + p.Vel[1][i]*p.Vel[1][i] + p.Vel[2][i]*p.Vel[2][i])
		mean += v
	}
	mean /= float64(p.N)
	want := 3.15137 * uT
	if math.Abs(mean-want)/want > 0.1 {
		t.Fatalf("mean thermal speed %v, want ≈ %v", mean, want)
	}
}

func TestSampleFermiDiracMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n = 20000
	uT := 100.0
	mean := 0.0
	for i := 0; i < n; i++ {
		v := sampleFermiDirac(rng, uT)
		mean += math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	}
	mean /= n
	// FD mean speed = 3.15137·u_T.
	if math.Abs(mean-315.137)/315.137 > 0.03 {
		t.Fatalf("FD sample mean %v, want ≈ 315", mean)
	}
}

func TestFillNeutrinoGrid(t *testing.T) {
	g := gen(t, 0.4)
	uT := g.ThermalScale()
	grid, err := phase.New(8, 8, 8, [3]int{10, 10, 10}, [3]float64{200, 200, 200}, 8*uT)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.FillNeutrinoGrid(grid, 0.0909); err != nil {
		t.Fatal(err)
	}
	m := grid.ComputeMoments()
	rhoBar := g.Par.MeanNuDensity()
	mean := 0.0
	for _, v := range m.Density {
		mean += v
	}
	mean /= float64(len(m.Density))
	if math.Abs(mean-rhoBar)/rhoBar > 1e-3 {
		t.Fatalf("mean ν density %v, want %v", mean, rhoBar)
	}
	// Per-cell contrast matches the generated δν field exactly (discrete FD
	// normalisation).
	delta, err := g.DeltaField(8, 0.0909, Neutrino)
	if err != nil {
		t.Fatal(err)
	}
	for c := range delta {
		want := rhoBar * (1 + delta[c])
		if math.Abs(m.Density[c]-want)/rhoBar > 1e-3 {
			t.Fatalf("cell %d: ρ=%v, want %v", c, m.Density[c], want)
		}
	}
	// Velocity dispersion is isotropic and of order the FD spread.
	sig := m.Sigma[0]
	if sig < 2*uT || sig > 5*uT {
		t.Fatalf("σ = %v not in the FD range (u_T = %v)", sig, uT)
	}
	if grid.MinValue() < 0 {
		t.Fatal("negative f in initial conditions")
	}
}

func TestFillNeutrinoGridValidation(t *testing.T) {
	g := gen(t, 0.4)
	grid, _ := phase.New(4, 8, 8, [3]int{8, 8, 8}, [3]float64{100, 100, 100}, 1000)
	if err := g.FillNeutrinoGrid(grid, 1); err == nil {
		t.Fatal("non-cubic grid accepted")
	}
	// A velocity grid far too small to resolve the FD profile errors out…
	// UMax ≪ u_T means the profile is flat but nonzero, so it normalises;
	// instead check the opposite failure: huge UMax with few cells still
	// normalises but a zero u_T cannot happen (mass > 0 validated upstream).
}
