package plasma

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(4, 32, 10, 6); err == nil {
		t.Fatal("nx < 6 accepted")
	}
	if _, err := New(32, 4, 10, 6); err == nil {
		t.Fatal("nv < 6 accepted")
	}
	if _, err := New(32, 32, -1, 6); err == nil {
		t.Fatal("bad L accepted")
	}
	if _, err := New(32, 32, 10, 0); err == nil {
		t.Fatal("bad Vmax accepted")
	}
	if _, err := NewWithScheme(32, 32, 10, 6, "no-such-scheme"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSchemeSelectionDampsLandau(t *testing.T) {
	// The x-drift scheme is swappable: the MP5 comparator integrates the
	// same Landau problem stably (its CFL ≤ 1 limit caps SuggestDT), and
	// the low-order upwind baseline over-damps — the measurable difference
	// scheme-comparison sweeps exist to show.
	// Compare decay envelopes (the peak field energy over the final time
	// window), which is phase-insensitive, unlike an instantaneous ratio.
	run := func(scheme string) (envelope float64) {
		s, err := NewWithScheme(32, 64, 4*math.Pi, 6, scheme)
		if err != nil {
			t.Fatal(err)
		}
		s.LandauInit(0.05, 0.5, 1)
		e0 := s.FieldEnergy()
		for s.Time < 8 {
			if err := s.Step(s.SuggestDT()); err != nil {
				t.Fatalf("%s: %v", scheme, err)
			}
			if s.Time > 6 {
				if e := s.FieldEnergy(); e > envelope {
					envelope = e
				}
			}
		}
		return envelope / e0
	}
	mp5 := run("mp5")
	if mp5 <= 0 || mp5 >= 1 {
		t.Fatalf("mp5 field envelope ratio %v, want damping in (0, 1)", mp5)
	}
	upwind := run("upwind1")
	if upwind >= mp5/2 {
		t.Fatalf("upwind1 envelope %v not well below mp5 %v (first order must over-damp)", upwind, mp5)
	}
}

func TestSuggestDTRespectsSchemeCFLLimit(t *testing.T) {
	s, err := NewWithScheme(32, 64, 4*math.Pi, 6, "mp5")
	if err != nil {
		t.Fatal(err)
	}
	s.LandauInit(0.01, 0.5, 1)
	s.CFL = 3 // beyond MP5's stability bound of 1
	if dt := s.SuggestDT(); dt > s.DX()/s.VMax+1e-15 {
		t.Fatalf("SuggestDT %v exceeds the scheme's CFL ≤ 1 limit (dx/vmax = %v)", dt, s.DX()/s.VMax)
	}
}

func TestFaddeevaKnownValues(t *testing.T) {
	// w(0) = 1.
	if d := cmplx.Abs(faddeeva(0) - 1); d > 1e-8 {
		t.Fatalf("w(0) error %v", d)
	}
	// w(i) = e^{1}·erfc(1) ≈ 0.42758357615580700442.
	want := math.E * math.Erfc(1)
	if d := cmplx.Abs(faddeeva(complex(0, 1)) - complex(want, 0)); d > 1e-8 {
		t.Fatalf("w(i) error %v", d)
	}
	// Pure real argument: w(x) = e^{−x²} + i·(2/√π)·Dawson-type imaginary
	// part; check the real part only.
	x := 1.5
	got := faddeeva(complex(x, 1e-12))
	if d := math.Abs(real(got) - math.Exp(-x*x)); d > 1e-6 {
		t.Fatalf("Re w(1.5) error %v", d)
	}
	// Reflection: w(z) + w(−z) = 2e^{−z²}.
	z := complex(1.2, -0.4)
	lhs := faddeeva(z) + faddeeva(-z)
	rhs := 2 * cmplx.Exp(-z*z)
	if d := cmplx.Abs(lhs - rhs); d > 1e-8 {
		t.Fatalf("reflection identity error %v", d)
	}
}

func TestLandauDampingRateTextbookValues(t *testing.T) {
	// Canonical kinetic results (e.g. Chen, Nicholson): for vth = 1,
	// k = 0.5: γ ≈ −0.1533; k = 0.3: γ ≈ −0.0126.
	g := LandauDampingRate(0.5, 1.0)
	if math.Abs(g-(-0.1533)) > 0.005 {
		t.Fatalf("γ(k=0.5) = %v, want ≈ −0.1533", g)
	}
	g = LandauDampingRate(0.3, 1.0)
	if math.Abs(g-(-0.0126)) > 0.002 {
		t.Fatalf("γ(k=0.3) = %v, want ≈ −0.0126", g)
	}
	// Damping strengthens with k.
	if LandauDampingRate(0.6, 1) >= LandauDampingRate(0.4, 1) {
		t.Fatal("γ should become more negative with k")
	}
}

func TestMassConservation(t *testing.T) {
	s, err := New(32, 64, 4*math.Pi, 6)
	if err != nil {
		t.Fatal(err)
	}
	s.LandauInit(0.05, 0.5, 1.0)
	m0 := s.TotalMass()
	for i := 0; i < 40; i++ {
		if err := s.Step(0.05); err != nil {
			t.Fatal(err)
		}
	}
	if rel := math.Abs(s.TotalMass()-m0) / m0; rel > 1e-8 {
		t.Fatalf("mass drift %v", rel)
	}
}

func TestNeutralityAndField(t *testing.T) {
	s, err := New(32, 64, 2*math.Pi, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Unperturbed Maxwellian: E must vanish.
	s.LandauInit(0, 1, 1)
	e := s.ElectricField()
	for i, v := range e {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("uniform plasma has E[%d] = %v", i, v)
		}
	}
	// Sinusoidal density → E = (α/k)sin(kx)·(normalisation).
	s.LandauInit(0.1, 1, 1)
	e = s.ElectricField()
	// At x where cos(kx) = 0 crossing downward, E should peak; just check
	// amplitude ≈ α/k = 0.1 (ρ amplitude α, E amplitude α/k).
	amp := 0.0
	for _, v := range e {
		if math.Abs(v) > amp {
			amp = math.Abs(v)
		}
	}
	if math.Abs(amp-0.1) > 0.005 {
		t.Fatalf("E amplitude %v, want ≈ 0.1", amp)
	}
}

// measureDampingRate fits ln(fieldEnergy) maxima over the run.
func measureDampingRate(t *testing.T, s *Solver, dt float64, steps int) float64 {
	t.Helper()
	type peak struct{ t, e float64 }
	var peaks []peak
	prev2, prev1 := 0.0, 0.0
	for i := 0; i < steps; i++ {
		if err := s.Step(dt); err != nil {
			t.Fatal(err)
		}
		e := s.FieldEnergy()
		if i >= 2 && prev1 > prev2 && prev1 > e {
			peaks = append(peaks, peak{t: float64(i) * dt, e: prev1})
		}
		prev2, prev1 = prev1, e
	}
	if len(peaks) < 3 {
		t.Fatalf("too few oscillation peaks: %d", len(peaks))
	}
	// Least-squares slope of ln E vs t over the peaks → 2γ.
	n := float64(len(peaks))
	var sx, sy, sxx, sxy float64
	for _, p := range peaks {
		x, y := p.t, math.Log(p.e)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	return slope / 2
}

func TestLandauDampingMeasured(t *testing.T) {
	// The flagship validation: the measured field-energy decay rate must
	// match the kinetic-theory Landau rate within ~15%.
	k := 0.5
	s, err := New(64, 256, 2*math.Pi/k, 8)
	if err != nil {
		t.Fatal(err)
	}
	s.LandauInit(0.01, k, 1.0)
	got := measureDampingRate(t, s, 0.05, 500)
	want := LandauDampingRate(k, 1.0)
	if math.Abs(got-want) > 0.15*math.Abs(want) {
		t.Fatalf("measured γ = %v, theory %v", got, want)
	}
}

func TestTwoStreamInstabilityGrows(t *testing.T) {
	// Counter-streaming beams at v0 = 2.4 with k = 0.2 are unstable: the
	// field energy must grow by orders of magnitude before saturation.
	k := 0.2
	s, err := New(32, 128, 2*math.Pi/k, 8)
	if err != nil {
		t.Fatal(err)
	}
	s.TwoStreamInit(1e-3, k, 2.4, 0.5)
	e0 := s.FieldEnergy()
	for i := 0; i < 400; i++ {
		if err := s.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	e1 := s.FieldEnergy()
	if e1 < 100*e0 {
		t.Fatalf("two-stream instability did not grow: %v -> %v", e0, e1)
	}
	// f must remain non-negative through the nonlinear stage.
	for i, v := range s.F {
		if v < 0 {
			t.Fatalf("negative f at %d: %v", i, v)
		}
	}
}

func TestLandauStableMaxwellianStaysQuiet(t *testing.T) {
	// Control: with no perturbation the field energy stays at round-off.
	s, err := New(32, 64, 4*math.Pi, 6)
	if err != nil {
		t.Fatal(err)
	}
	s.LandauInit(0, 0.5, 1.0)
	for i := 0; i < 50; i++ {
		if err := s.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	if e := s.FieldEnergy(); e > 1e-20 {
		t.Fatalf("unperturbed plasma grew field energy %v", e)
	}
}

func TestSolverContractForRunner(t *testing.T) {
	// The solver carries its own clock and CFL-based dt suggestion so the
	// unified runner can drive it like any other workload.
	s, err := New(32, 64, 4*math.Pi, 6)
	if err != nil {
		t.Fatal(err)
	}
	s.LandauInit(0.01, 0.5, 1.0)
	if s.Clock() != 0 {
		t.Fatalf("initial clock %v", s.Clock())
	}
	dt := s.SuggestDT()
	xBound := s.CFL * s.DX() / s.VMax
	if dt <= 0 || dt > xBound+1e-15 {
		t.Fatalf("SuggestDT %v outside (0, %v]", dt, xBound)
	}
	for i := 0; i < 3; i++ {
		if err := s.Step(dt); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := s.Clock(), 3*dt; math.Abs(got-want) > 1e-12 {
		t.Fatalf("clock %v after 3 steps of %v", got, dt)
	}
	d := s.Diagnostics()
	if d.Clock != s.Time || d.Mass <= 0 || d.Extra["field_energy"] < 0 {
		t.Fatalf("diagnostics %+v", d)
	}
}

// TestWorkerCountInvariance: the worker count must never change the
// physics. Lines are independent and computed identically, so the evolved
// state is bit-identical for any SetWorkers setting — the property that
// makes a scheduler-owned core budget free to resize a running solver.
func TestWorkerCountInvariance(t *testing.T) {
	build := func(workers int) *Solver {
		s, err := New(32, 64, 4*math.Pi, 8)
		if err != nil {
			t.Fatal(err)
		}
		s.LandauInit(0.05, 0.5, 1.0)
		s.SetWorkers(workers)
		return s
	}
	s1 := build(1)
	s4 := build(4)
	const dt = 0.05
	for i := 0; i < 25; i++ {
		if err := s1.Step(dt); err != nil {
			t.Fatal(err)
		}
		if err := s4.Step(dt); err != nil {
			t.Fatal(err)
		}
		// A mid-run resize between steps must be equally invisible.
		if i == 12 {
			s4.SetWorkers(3)
		}
	}
	for i := range s1.F {
		if s1.F[i] != s4.F[i] {
			t.Fatalf("F[%d]: 1-worker %v != multi-worker %v — worker count changed the physics", i, s1.F[i], s4.F[i])
		}
	}
	if s1.Time != s4.Time {
		t.Fatalf("Time diverged: %v vs %v", s1.Time, s4.Time)
	}
}

// TestSetWorkersFloor: the worker count floors at one.
func TestSetWorkersFloor(t *testing.T) {
	s, err := New(16, 16, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(0)
	if s.workers != 1 {
		t.Fatalf("workers %d after SetWorkers(0), want 1", s.workers)
	}
	s.SetWorkers(-3)
	if s.workers != 1 {
		t.Fatalf("workers %d after SetWorkers(-3), want 1", s.workers)
	}
}
