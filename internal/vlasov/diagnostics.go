package vlasov

import (
	"math"

	"vlasov6d/internal/phase"
)

// Diagnostics bundles the global invariants the Vlasov literature tracks:
// total mass, L1/L2 norms and the Casimir entropy −∫f ln f. Under exact
// transport mass and every Casimir are conserved; the MP/PP limiters add a
// controlled dissipation that makes the L2 norm monotonically non-increasing
// and the entropy non-decreasing — a useful fingerprint that the limiters
// are active but not runaway.
type Diagnostics struct {
	Mass    float64
	L1      float64
	L2      float64
	Entropy float64
	MinF    float64
	MaxF    float64
}

// ComputeDiagnostics evaluates the invariants over a grid.
func ComputeDiagnostics(g *phase.Grid) Diagnostics {
	dv := g.DX(0) * g.DX(1) * g.DX(2) * g.DU(0) * g.DU(1) * g.DU(2)
	ncell := g.NCells()
	type cellPart struct{ mass, l1, l2, ent, mn, mx float64 }
	parts := make([]cellPart, ncell)
	g.ParallelCells(func(ix, iy, iz int) {
		c := g.CellIndex(ix, iy, iz)
		cube := g.CubeAt(c)
		p := cellPart{mn: math.Inf(1), mx: math.Inf(-1)}
		for _, v := range cube {
			f := float64(v)
			p.mass += f
			p.l1 += math.Abs(f)
			p.l2 += f * f
			if f > 0 {
				p.ent -= f * math.Log(f)
			}
			if f < p.mn {
				p.mn = f
			}
			if f > p.mx {
				p.mx = f
			}
		}
		parts[c] = p
	})
	d := Diagnostics{MinF: math.Inf(1), MaxF: math.Inf(-1)}
	for _, p := range parts {
		d.Mass += p.mass
		d.L1 += p.l1
		d.L2 += p.l2
		d.Entropy += p.ent
		if p.mn < d.MinF {
			d.MinF = p.mn
		}
		if p.mx > d.MaxF {
			d.MaxF = p.mx
		}
	}
	d.Mass *= dv
	d.L1 *= dv
	d.L2 *= dv
	d.Entropy *= dv
	return d
}
