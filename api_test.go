package vlasov6d

import (
	"bytes"
	"context"
	"math"
	"testing"
)

// TestPublicAPIQuickstart exercises the documented quick-start path end to
// end through the facade.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := Config{
		Par:       Planck2015(0.4),
		Box:       200,
		NGrid:     6,
		NU:        6,
		NPartSide: 6,
		PMFactor:  2,
		Seed:      1,
	}
	sim, err := NewSimulation(cfg, 1.0/11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), sim, 0.095, WithMaxSteps(10)); err != nil {
		t.Fatal(err)
	}
	if sim.A <= 1.0/11 {
		t.Fatal("no progress")
	}
	m := sim.Grid.ComputeMoments()
	if len(m.Density) != 216 {
		t.Fatalf("moments size %d", len(m.Density))
	}
}

func TestPublicAPICosmology(t *testing.T) {
	p := Planck2015(0.4)
	if p.FNu() <= 0 {
		t.Fatal("fν must be positive with massive neutrinos")
	}
	ps := NewLinearPower(p)
	if ps.Total(0.1) <= 0 {
		t.Fatal("P(k) must be positive")
	}
}

func TestPublicAPISchemes(t *testing.T) {
	names := SchemeNames()
	if len(names) < 4 {
		t.Fatalf("schemes: %v", names)
	}
	for _, n := range names {
		s, err := NewScheme(n)
		if err != nil {
			t.Fatal(err)
		}
		line := make([]float64, 32)
		for i := range line {
			line[i] = 1 + 0.1*math.Sin(float64(i))
		}
		if err := s.Step(line, 0.5); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}

func TestPublicAPIPlasma(t *testing.T) {
	s, err := NewPlasmaSolver(32, 64, 4*math.Pi, 6)
	if err != nil {
		t.Fatal(err)
	}
	s.LandauInit(0.01, 0.5, 1)
	if err := s.Step(0.1); err != nil {
		t.Fatal(err)
	}
	if g := LandauDampingRate(0.5, 1); g >= 0 {
		t.Fatalf("Landau rate %v should be negative", g)
	}
}

func TestPublicAPIMachine(t *testing.T) {
	m, err := NewMachineModel()
	if err != nil {
		t.Fatal(err)
	}
	runs := RunTable()
	if len(runs) != 18 {
		t.Fatalf("run table %d", len(runs))
	}
	b := m.Step(runs[len(runs)-1])
	if b.Total <= 0 {
		t.Fatal("model broken")
	}
	if dl := EffectiveResolution(1200, 13824, 100); math.Abs(dl-1200.0/642) > 0.01 {
		t.Fatalf("eq. 9: %v", dl)
	}
}

func TestPublicAPISnapshotRoundTrip(t *testing.T) {
	cfg := Config{
		Par:       Planck2015(0.2),
		Box:       100,
		NGrid:     6,
		NU:        6,
		NPartSide: 6,
		Seed:      9,
	}
	sim, err := NewSimulation(cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := WriteSnapshot(&buf, &Snapshot{A: sim.A, Time: sim.Time, Part: sim.Part, Grid: sim.Grid})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty snapshot")
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.A != sim.A || got.Part.N != sim.Part.N || got.Grid == nil {
		t.Fatal("snapshot mismatch")
	}
}

func TestPublicAPIPowerSpectrum(t *testing.T) {
	n := 16
	rho := make([]float64, n*n*n)
	for i := range rho {
		rho[i] = 1 + 0.1*math.Sin(float64(i%n))
	}
	ks, pk, counts, err := MeasurePowerSpectrum(rho, n, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) == 0 || len(ks) != len(pk) || len(pk) != len(counts) {
		t.Fatal("bad spectrum shape")
	}
}
