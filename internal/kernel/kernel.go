// Package kernel contains the layout-aware advection micro-kernels that
// reproduce the paper's §5.3 SIMD study (Table 1 and Figures 1–3).
//
// The paper's A64FX implementation contrasts three ways of sweeping a 1D
// advection update through a multi-dimensional array:
//
//   - "w/o SIMD": scalar code whose inner loop walks along the advection
//     axis, making strided memory accesses when that axis is not the fastest
//     (innermost) one;
//   - "w/ SIMD": the inner loop runs along the fastest axis so that whole
//     SIMD vectors are loaded with unit stride (Fig. 1) — impossible when
//     the advection axis IS the fastest axis, where vectorising across
//     lines needs strided gathers (Fig. 2);
//   - "w/ LAT": load-and-transpose — load unit-stride vectors, transpose a
//     B×B tile in registers (Fig. 3), sweep, and transpose back.
//
// Go has no vector intrinsics, but the *memory-system* half of the effect —
// unit-stride streaming vs. large-stride gathers — is architecture
// independent, and the Go compiler keeps contiguous inner loops free of
// bounds checks. The three modes here reproduce the ordering of Table 1
// (Strided ≪ Contig ≈ LAT) with Go-scale ratios; the Measure harness prints
// the same rows as the paper's table.
//
// All modes compute the identical single-stage conservative semi-Lagrangian
// fifth-order (CSL5) update
//
//	f_i ← f_i − (Φ_{i+1/2} − Φ_{i−1/2}),   Φ = Σ_r a_r(ξ)·f_{i−3+r},
//
// on periodic lines, where the five coefficients a_r(ξ) come from the quintic
// primitive-function reconstruction at CFL fraction ξ ∈ [0,1] — the unlimited
// linear core of the paper's SL-MPP5 flux (a plain fifth-order
// method-of-lines flux would be unstable in a single Euler stage, which is
// precisely the cost problem SL-MPP5 solves). Tests assert bit-level
// agreement between the modes.
package kernel

import (
	"fmt"
	"math"
)

// Mode selects the sweep implementation.
type Mode int

// The three sweep implementations of §5.3.
const (
	// Strided walks the advection axis line by line, gathering each line
	// with stride `post` ("w/o SIMD").
	Strided Mode = iota
	// Contig keeps the innermost loop on the fastest memory axis
	// ("w/ SIMD"); for a sweep along the fastest axis itself it degrades to
	// strided gathers across lines, exactly like Fig. 2.
	Contig
	// LAT transposes B×B tiles so that sweeps along the fastest axis also
	// stream with unit stride ("w/ LAT").
	LAT
)

// String implements fmt.Stringer using the paper's column headers.
func (m Mode) String() string {
	switch m {
	case Strided:
		return "w/o SIMD"
	case Contig:
		return "w/ SIMD"
	case LAT:
		return "w/ LAT"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// TileB is the LAT tile edge, the software analogue of the paper's 16×16
// register transpose (64 shuffle instructions on SVE).
const TileB = 16

// FlopsPerCell is the flop count of one fifth-order update per cell
// (5 multiplies + 4 adds for the flux, 2 for the update, with the left flux
// reused), used to convert timings into the paper's Gflops metric.
const FlopsPerCell = 12

// Brick is a dense multi-dimensional array of float32 (the paper's Vlasov
// arrays are single precision) with row-major layout: the LAST dimension is
// fastest, matching List 1's per-cell velocity cubes.
type Brick struct {
	Dims []int
	Data []float32
}

// NewBrick allocates a brick with the given dimensions.
func NewBrick(dims ...int) (*Brick, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("kernel: no dimensions")
	}
	n := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("kernel: invalid dim %d", d)
		}
		n *= d
	}
	return &Brick{Dims: append([]int(nil), dims...), Data: make([]float32, n)}, nil
}

// Shape3 returns the (pre, n, post) factorisation of the brick around axis:
// the array is equivalent to a row-major [pre][n][post] view where n is the
// advected extent.
func (b *Brick) Shape3(axis int) (pre, n, post int, err error) {
	if axis < 0 || axis >= len(b.Dims) {
		return 0, 0, 0, fmt.Errorf("kernel: axis %d out of range", axis)
	}
	pre, post = 1, 1
	for i := 0; i < axis; i++ {
		pre *= b.Dims[i]
	}
	n = b.Dims[axis]
	for i := axis + 1; i < len(b.Dims); i++ {
		post *= b.Dims[i]
	}
	return pre, n, post, nil
}

// Sweep applies one periodic fifth-order advection update with CFL c along
// axis using the requested mode. LAT is only accepted for the fastest axis
// (post == 1), where it exists to fix the Fig. 2 gather problem.
func (b *Brick) Sweep(axis int, mode Mode, c float32) error {
	pre, n, post, err := b.Shape3(axis)
	if err != nil {
		return err
	}
	if n < 6 {
		return fmt.Errorf("kernel: axis %d extent %d < 6", axis, n)
	}
	if math.IsNaN(float64(c)) || math.IsInf(float64(c), 0) || c < 0 || c > 1 {
		return fmt.Errorf("kernel: CFL %v outside [0,1] (micro-kernel handles the fractional flux only)", c)
	}
	a := cslCoefs(float64(c))
	switch mode {
	case Strided:
		sweepStrided(b.Data, pre, n, post, &a)
	case Contig:
		if post > 1 {
			s := newPlaneScratch(post)
			for p := 0; p < pre; p++ {
				updatePlane(b.Data[p*n*post:(p+1)*n*post], n, post, &a, s)
			}
		} else {
			sweepGather(b.Data, pre, n, &a)
		}
	case LAT:
		if post != 1 {
			return fmt.Errorf("kernel: LAT applies to the fastest axis only")
		}
		sweepLAT(b.Data, pre, n, &a)
	default:
		return fmt.Errorf("kernel: unknown mode %v", mode)
	}
	return nil
}

// coef5 holds the five CSL5 flux coefficients for a fixed CFL fraction ξ:
// Φ_{i+1/2} = a[0]f_{i−2} + a[1]f_{i−1} + a[2]f_i + a[3]f_{i+1} + a[4]f_{i+2}.
type coef5 [5]float32

// cslCoefs derives the coefficients from the quintic Lagrange basis on the
// primitive function: with t = 3−ξ and basis values ℓ_m(t),
// a_r = [r ≤ 3] − Σ_{m≥r} ℓ_m(t) for r = 1..5.
func cslCoefs(xi float64) coef5 {
	t := 3 - xi
	var ell [6]float64
	for m := 0; m < 6; m++ {
		num, den := 1.0, 1.0
		for j := 0; j < 6; j++ {
			if j == m {
				continue
			}
			num *= t - float64(j)
			den *= float64(m - j)
		}
		ell[m] = num / den
	}
	var a coef5
	suffix := 0.0
	for r := 5; r >= 1; r-- {
		suffix += ell[r]
		v := -suffix
		if r <= 3 {
			v += 1
		}
		a[r-1] = float32(v)
	}
	return a
}

// flux5 evaluates the CSL5 interface flux from the upwind stencil
// (f_{i−2}, …, f_{i+2}).
func flux5(a *coef5, fm2, fm1, f0, fp1, fp2 float32) float32 {
	return a[0]*fm2 + a[1]*fm1 + a[2]*f0 + a[3]*fp1 + a[4]*fp2
}

// updateLine5 applies the periodic CSL5 update to one line held contiguously
// in memory.
func updateLine5(line []float32, a *coef5) {
	n := len(line)
	f0orig, f1orig := line[0], line[1]
	fm2, fm1 := line[n-2], line[n-1]
	fc, fp1 := line[0], line[1]
	prev := flux5(a, line[n-3], fm2, fm1, fc, fp1) // Φ_{−1/2}
	for i := 0; i < n; i++ {
		var fp2 float32
		switch {
		case i+2 < n:
			fp2 = line[i+2]
		case i+2 == n:
			fp2 = f0orig
		default:
			fp2 = f1orig
		}
		cur := flux5(a, fm2, fm1, fc, fp1, fp2)
		newv := fc - (cur - prev)
		fm2, fm1, fc, fp1, prev = fm1, fc, fp1, fp2, cur
		line[i] = newv
	}
}

// sweepStrided is the "w/o SIMD" reference: every line along the advection
// axis is gathered element by element with stride `post`, updated, and
// scattered back.
func sweepStrided(data []float32, pre, n, post int, a *coef5) {
	line := make([]float32, n)
	for p := 0; p < pre; p++ {
		base := p * n * post
		for q := 0; q < post; q++ {
			off := base + q
			for i := 0; i < n; i++ {
				line[i] = data[off+i*post]
			}
			updateLine5(line, a)
			for i := 0; i < n; i++ {
				data[off+i*post] = line[i]
			}
		}
	}
}

// planeChunk caps the column-block width so the flux planes stay
// cache-resident even for very wide planes (the x/y/z sweeps have widths of
// 10⁵–10⁶ columns).
const planeChunk = 2048

// planeScratch holds the per-block flux planes used to update a [n][width]
// plane in place without copying rows: all interface fluxes of a column
// block are evaluated from the original data first, then the rows are
// updated. This keeps every inner loop unit-stride (the Fig. 1 data flow)
// with zero memmove traffic.
type planeScratch struct {
	flux  [][]float32 // flux[i][q] = Φ_{i−1/2} for the block columns
	width int
}

func newPlaneScratch(width int) *planeScratch {
	if width > planeChunk {
		width = planeChunk
	}
	return &planeScratch{width: width}
}

// ensure sizes the flux planes for (rows n+1) × width.
func (s *planeScratch) ensure(n, width int) {
	if len(s.flux) < n+1 || s.width < width {
		if width < s.width {
			width = s.width
		}
		s.flux = make([][]float32, n+1)
		for i := range s.flux {
			s.flux[i] = make([]float32, width)
		}
		s.width = width
	}
}

// updatePlane advances a row-major [n][width] plane in place, periodic along
// the row index, tiling over column blocks.
func updatePlane(buf []float32, n, width int, a *coef5, s *planeScratch) {
	for col := 0; col < width; col += planeChunk {
		cw := planeChunk
		if col+cw > width {
			cw = width - col
		}
		updatePlaneBlock(buf, n, width, col, cw, a, s)
	}
}

// updatePlaneBlock updates columns [col, col+cw): first every interface flux
// of the block is computed from the ORIGINAL rows (Φ_{i−1/2} uses rows
// i−3 … i+1, matching updateLine5), then each row is updated in place.
func updatePlaneBlock(buf []float32, n, width, col, cw int, a *coef5, s *planeScratch) {
	s.ensure(n, cw)
	row := func(i int) []float32 {
		if i >= n {
			i -= n
		} else if i < 0 {
			i += n
		}
		return buf[i*width+col : i*width+col+cw]
	}
	for i := 0; i <= n; i++ {
		r0, r1, r2, r3, r4 := row(i-3), row(i-2), row(i-1), row(i), row(i+1)
		fl := s.flux[i][:cw]
		for q := 0; q < cw; q++ {
			fl[q] = flux5(a, r0[q], r1[q], r2[q], r3[q], r4[q])
		}
	}
	for i := 0; i < n; i++ {
		out := row(i)
		lo := s.flux[i][:cw]
		hi := s.flux[i+1][:cw]
		for q := 0; q < cw; q++ {
			out[q] -= hi[q] - lo[q]
		}
	}
}

// sweepGather is the Fig. 2 path: the sweep runs along the fastest axis, and
// "vectorising" across TileB lines forces every stencil access to stride by
// the full line length n. It produces identical results to the other modes
// but at gather speed — the paper's 17.9 Gflops row.
func sweepGather(data []float32, pre, n int, a *coef5) {
	s := newPlaneScratch(TileB)
	for g := 0; g < pre; g += TileB {
		b := TileB
		if g+b > pre {
			b = pre - g
		}
		s.ensure(n, b)
		base := g * n
		wrap := func(i int) int {
			if i >= n {
				return i - n
			}
			if i < 0 {
				return i + n
			}
			return i
		}
		// Phase 1: every interface flux, gathered with stride n across the
		// b lines (the Fig. 2 access pattern).
		for i := 0; i <= n; i++ {
			i0, i1, i2, i3, i4 := wrap(i-3), wrap(i-2), wrap(i-1), wrap(i), wrap(i+1)
			fl := s.flux[i][:b]
			for l := 0; l < b; l++ {
				off := base + l*n
				fl[l] = flux5(a, data[off+i0], data[off+i1], data[off+i2],
					data[off+i3], data[off+i4])
			}
		}
		// Phase 2: strided scatter of the update.
		for i := 0; i < n; i++ {
			lo := s.flux[i][:b]
			hi := s.flux[i+1][:b]
			for l := 0; l < b; l++ {
				data[base+l*n+i] -= hi[l] - lo[l]
			}
		}
	}
}

// sweepLAT is the Fig. 3 fix: groups of TileB lines are transposed (in B×B
// tiles, the software analogue of the in-register shuffles) into a
// position-major scratch so the update streams with unit stride, then
// transposed back.
func sweepLAT(data []float32, pre, n int, a *coef5) {
	s := newPlaneScratch(TileB)
	t := make([]float32, n*TileB)
	for g := 0; g < pre; g += TileB {
		b := TileB
		if g+b > pre {
			b = pre - g
		}
		base := g * n
		transposeIn(data[base:], t, n, b)
		updatePlane(t[:n*b], n, b, a, s)
		transposeOut(t, data[base:], n, b)
	}
}

// transposeIn rearranges b lines of length n (row-major [b][n]) into a
// position-major [n][b] buffer, tile by tile.
func transposeIn(src, dst []float32, n, b int) {
	for i0 := 0; i0 < n; i0 += TileB {
		imax := i0 + TileB
		if imax > n {
			imax = n
		}
		for l := 0; l < b; l++ {
			lrow := src[l*n:]
			for i := i0; i < imax; i++ {
				dst[i*b+l] = lrow[i]
			}
		}
	}
}

// transposeOut is the inverse of transposeIn.
func transposeOut(src, dst []float32, n, b int) {
	for i0 := 0; i0 < n; i0 += TileB {
		imax := i0 + TileB
		if imax > n {
			imax = n
		}
		for l := 0; l < b; l++ {
			lrow := dst[l*n:]
			for i := i0; i < imax; i++ {
				lrow[i] = src[i*b+l]
			}
		}
	}
}
