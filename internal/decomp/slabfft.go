package decomp

import (
	"fmt"

	"vlasov6d/internal/fft"
	"vlasov6d/internal/mpisim"
)

// SlabFFT is the distributed 3D FFT used by the PM solver: the global
// nx×ny×nz complex field is decomposed into x-slabs (rank r owns
// nx/P contiguous x-planes). Forward() transforms the y and z axes locally,
// redistributes the data into y-slabs with an all-to-all (the counterpart of
// the paper's 3D→2D layout exchange into the SSL II FFT), transforms x, and
// redistributes back, so the caller always sees x-slab layout.
type SlabFFT struct {
	comm *mpisim.Comm
	n    [3]int
	p    int // world size
	lx   int // local x extent (n[0]/p)
	ly   int // local y extent for the transposed layout (n[1]/p)
}

// NewSlabFFT validates divisibility of the x and y extents by the world
// size.
func NewSlabFFT(comm *mpisim.Comm, n [3]int) (*SlabFFT, error) {
	p := comm.Size()
	if n[0]%p != 0 || n[1]%p != 0 {
		return nil, fmt.Errorf("decomp: dims %v not divisible by %d ranks", n, p)
	}
	for d := 0; d < 3; d++ {
		if n[d] < 1 {
			return nil, fmt.Errorf("decomp: invalid dims %v", n)
		}
	}
	return &SlabFFT{comm: comm, n: n, p: p, lx: n[0] / p, ly: n[1] / p}, nil
}

// LocalLen returns the slab buffer length: lx·ny·nz.
func (s *SlabFFT) LocalLen() int { return s.lx * s.n[1] * s.n[2] }

// Forward transforms the local x-slab in place.
func (s *SlabFFT) Forward(slab []complex128) error { return s.transform(slab, true) }

// Inverse applies the normalised inverse transform in place.
func (s *SlabFFT) Inverse(slab []complex128) error { return s.transform(slab, false) }

func (s *SlabFFT) transform(slab []complex128, fwd bool) error {
	if len(slab) != s.LocalLen() {
		return fmt.Errorf("decomp: slab length %d != %d", len(slab), s.LocalLen())
	}
	ny, nz := s.n[1], s.n[2]
	// Local y and z transforms for each owned x-plane.
	planYZ, err := fft.NewFFT3(1, ny, nz)
	if err != nil {
		return err
	}
	for x := 0; x < s.lx; x++ {
		pl := slab[x*ny*nz : (x+1)*ny*nz]
		if fwd {
			err = planYZ.Forward(pl)
		} else {
			err = planYZ.Inverse(pl)
		}
		if err != nil {
			return err
		}
	}
	// Redistribute to y-slabs: rank q receives my x-range for its y-range.
	yslab, err := s.toYSlabs(slab)
	if err != nil {
		return err
	}
	// Transform x on full lines: layout [ly][nx][nz] with x contiguous in
	// the middle — gather lines along x (stride nz).
	nx := s.n[0]
	plan, err := fft.NewPlan(nx)
	if err != nil {
		return err
	}
	line := make([]complex128, nx)
	for y := 0; y < s.ly; y++ {
		for z := 0; z < nz; z++ {
			base := y*nx*nz + z
			for x := 0; x < nx; x++ {
				line[x] = yslab[base+x*nz]
			}
			if fwd {
				plan.Forward(line)
			} else {
				plan.Inverse(line)
			}
			for x := 0; x < nx; x++ {
				yslab[base+x*nz] = line[x]
			}
		}
	}
	// Back to x-slabs.
	return s.toXSlabs(yslab, slab)
}

// toYSlabs exchanges the x-slab into a y-slab: result layout [ly][nx][nz].
func (s *SlabFFT) toYSlabs(slab []complex128) ([]complex128, error) {
	ny, nz := s.n[1], s.n[2]
	send := make([][]float64, s.p)
	for q := 0; q < s.p; q++ {
		// Block destined for rank q: my x-range × q's y-range × all z,
		// packed as [lx][ly][nz] complex → interleaved float64.
		buf := make([]float64, 2*s.lx*s.ly*nz)
		o := 0
		for x := 0; x < s.lx; x++ {
			for y := q * s.ly; y < (q+1)*s.ly; y++ {
				base := (x*ny + y) * nz
				for z := 0; z < nz; z++ {
					c := slab[base+z]
					buf[o] = real(c)
					buf[o+1] = imag(c)
					o += 2
				}
			}
		}
		send[q] = buf
	}
	recv, err := s.comm.Alltoall(send)
	if err != nil {
		return nil, err
	}
	nx := s.n[0]
	out := make([]complex128, s.ly*nx*nz)
	for q := 0; q < s.p; q++ {
		buf := recv[q]
		o := 0
		for xl := 0; xl < s.lx; xl++ {
			x := q*s.lx + xl
			for yl := 0; yl < s.ly; yl++ {
				base := (yl*nx + x) * nz
				for z := 0; z < nz; z++ {
					out[base+z] = complex(buf[o], buf[o+1])
					o += 2
				}
			}
		}
	}
	return out, nil
}

// toXSlabs is the inverse redistribution: y-slab [ly][nx][nz] → x-slab
// [lx][ny][nz] written into dst.
func (s *SlabFFT) toXSlabs(yslab []complex128, dst []complex128) error {
	ny, nz := s.n[1], s.n[2]
	nx := s.n[0]
	send := make([][]float64, s.p)
	for q := 0; q < s.p; q++ {
		buf := make([]float64, 2*s.lx*s.ly*nz)
		o := 0
		for xl := 0; xl < s.lx; xl++ {
			x := q*s.lx + xl
			for yl := 0; yl < s.ly; yl++ {
				base := (yl*nx + x) * nz
				for z := 0; z < nz; z++ {
					c := yslab[base+z]
					buf[o] = real(c)
					buf[o+1] = imag(c)
					o += 2
				}
			}
		}
		send[q] = buf
	}
	recv, err := s.comm.Alltoall(send)
	if err != nil {
		return err
	}
	for q := 0; q < s.p; q++ {
		buf := recv[q]
		o := 0
		for x := 0; x < s.lx; x++ {
			for yl := 0; yl < s.ly; yl++ {
				y := q*s.ly + yl
				base := (x*ny + y) * nz
				for z := 0; z < nz; z++ {
					dst[base+z] = complex(buf[o], buf[o+1])
					o += 2
				}
			}
		}
	}
	return nil
}
