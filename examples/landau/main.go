// Landau damping: the canonical kinetic validation of any Vlasov solver.
// A Langmuir wave in a Maxwellian plasma decays at the collisionless rate
// first derived by Landau — a pure phase-mixing effect that fluid models
// cannot capture and that particle codes bury in shot noise. The example
// runs the 1D1V solver (the same SL-MPP5 advection as the 6D code), measures
// the field-energy decay and compares it with the kinetic-theory rate from
// the plasma dispersion function.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"vlasov6d"
)

func main() {
	log.SetFlags(0)
	const (
		k     = 0.5  // wavenumber in Debye-length units
		vth   = 1.0  // thermal speed
		alpha = 0.01 // perturbation amplitude
		dt    = 0.05
		steps = 500
	)
	s, err := vlasov6d.NewPlasmaSolver(64, 256, 2*math.Pi/k, 8)
	if err != nil {
		log.Fatal(err)
	}
	s.LandauInit(alpha, k, vth)

	fmt.Printf("Landau damping: k·λ_D = %.2f, α = %.3f\n", k, alpha)
	fmt.Printf("%8s %14s\n", "t", "field energy")
	// The same Run driver as the 6D cosmological runs: fixed dt, with the
	// peak bookkeeping riding along as a per-step observer.
	type peak struct{ t, e float64 }
	var peaks []peak
	prev2, prev1 := 0.0, 0.0
	_, err = vlasov6d.Run(context.Background(), s, steps*dt,
		vlasov6d.WithFixedDT(dt),
		vlasov6d.WithMaxSteps(steps),
		vlasov6d.WithObserver(func(i int, _ vlasov6d.Solver) error {
			e := s.FieldEnergy()
			if i%25 == 0 {
				fmt.Printf("%8.2f %14.6e\n", float64(i)*dt, e)
			}
			if i >= 2 && prev1 > prev2 && prev1 > e {
				peaks = append(peaks, peak{float64(i) * dt, prev1})
			}
			prev2, prev1 = prev1, e
			return nil
		}))
	if err != nil {
		log.Fatal(err)
	}
	// Fit ln E over the oscillation peaks: slope = 2γ.
	if len(peaks) < 3 {
		log.Fatal("too few oscillation peaks to fit")
	}
	n := float64(len(peaks))
	var sx, sy, sxx, sxy float64
	for _, p := range peaks {
		x, y := p.t, math.Log(p.e)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	gamma := (n*sxy - sx*sy) / (n*sxx - sx*sx) / 2
	theory := vlasov6d.LandauDampingRate(k, vth)
	fmt.Printf("\nmeasured damping rate γ = %.4f\n", gamma)
	fmt.Printf("kinetic theory        γ = %.4f  (dispersion-function root)\n", theory)
	fmt.Printf("relative error          = %.1f%%\n", 100*math.Abs(gamma-theory)/math.Abs(theory))
}
