// Package vlasov advances the six-dimensional Vlasov equation (eq. 1) with
// the directional-splitting sequence of eq. (5): three velocity-space
// half-steps, three position-space full steps, and the mirrored velocity
// half-steps, each a set of one-dimensional advections handled by the
// SL-MPP5 scheme of package advect.
//
//   - Position sweeps: ∂f/∂t + (u_i/a²)·∂f/∂x_i = 0, CFL depends only on the
//     velocity index; lines are periodic across the box.
//   - Velocity sweeps: ∂f/∂t − (∂φ/∂x_i)·∂f/∂u_i = 0, CFL is the per-cell
//     acceleration; lines are open (vacuum) at the velocity boundary, and
//     mass crossing it is recorded as BoundaryLoss.
//
// Lines are gathered from the List-1 layout into per-worker float64 buffers
// (the arithmetic runs in double precision, storage is float32 as in the
// paper's mixed-precision design) and scattered back. Work is parallelised
// over independent lines with one scheme clone per worker.
package vlasov

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"vlasov6d/internal/advect"
	"vlasov6d/internal/phase"
)

// Solver advances a phase-space grid in time.
type Solver struct {
	g       *phase.Grid
	proto   advect.Scheme
	workers int

	// BoundaryLoss accumulates the mass that has left the velocity grid
	// through its open boundary (in f·d³x·d³u units), a diagnostic for
	// choosing UMax.
	BoundaryLoss float64

	mu sync.Mutex // guards BoundaryLoss accumulation from workers

	// pool holds per-worker sweep scratch (gather line + scheme clones),
	// grown on demand and reused across steps so steady-state stepping
	// allocates nothing.
	pool []*worker
	// cfl is the reusable per-velocity-index CFL table of driftAxis.
	cfl []float64
	// kg/dg carry the geometry of the sweep in flight: written before the
	// serial or parallel range calls of one axis, read-only during them
	// (axes advance strictly one at a time).
	kg kickGeom
	dg driftGeom
}

// kickGeom is the line geometry of one velocity-axis kick sweep.
type kickGeom struct {
	dt, du               float64
	acc                  []float64
	nLine, stride, nPerp int
	d                    int
}

// driftGeom is the line geometry of one spatial-axis drift sweep.
type driftGeom struct {
	cfl        []float64
	nLine      int
	cellStride int
	ncube      int
	d          int
}

// New creates a solver using the named advection scheme ("slmpp5" for the
// paper's method; "mp5", "upwind1", "laxwendroff2" for comparisons).
func New(g *phase.Grid, scheme string) (*Solver, error) {
	if g == nil {
		return nil, fmt.Errorf("vlasov: nil grid")
	}
	s, err := advect.New(scheme)
	if err != nil {
		return nil, err
	}
	return &Solver{g: g, proto: s, workers: runtime.GOMAXPROCS(0)}, nil
}

// Grid returns the underlying phase-space grid.
func (s *Solver) Grid() *phase.Grid { return s.g }

// SetWorkers pins the worker count (tests use 1 for determinism).
func (s *Solver) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// SchemeName reports the advection scheme in use.
func (s *Solver) SchemeName() string { return s.proto.Name() }

// CFLNumbers returns the maximum position-space and velocity-space CFL
// numbers for time step dt at scale factor a with acceleration fields acc
// (three arrays over spatial cells).
func (s *Solver) CFLNumbers(dt, a float64, acc [3][]float64) (cx, cu float64) {
	g := s.g
	uMax := g.UMax
	for d := 0; d < 3; d++ {
		c := uMax * dt / (a * a * g.DX(d))
		if c > cx {
			cx = c
		}
		if acc[d] == nil {
			continue
		}
		aMax := 0.0
		for _, v := range acc[d] {
			if av := math.Abs(v); av > aMax {
				aMax = av
			}
		}
		if c := aMax * dt / (2 * g.DU(d)); c > cu {
			cu = c
		}
	}
	return cx, cu
}

// SuggestDT returns a time step that keeps the position-space CFL at
// cflX (the semi-Lagrangian scheme has no stability limit, but accuracy and
// the ghost-exchange width favour CFL ≲ 1) and the velocity-space half-kick
// CFL at cflU.
func (s *Solver) SuggestDT(a float64, acc [3][]float64, cflX, cflU float64) float64 {
	g := s.g
	dt := math.Inf(1)
	for d := 0; d < 3; d++ {
		dtx := cflX * g.DX(d) * a * a / g.UMax
		if dtx < dt {
			dt = dtx
		}
		if acc[d] == nil {
			continue
		}
		aMax := 0.0
		for _, v := range acc[d] {
			if av := math.Abs(v); av > aMax {
				aMax = av
			}
		}
		if aMax > 0 {
			dtu := 2 * cflU * g.DU(d) / aMax
			if dtu < dt {
				dt = dtu
			}
		}
	}
	return dt
}

// Step advances one full time step of eq. (5):
// u-kicks(dt/2) → x-drifts(dt) → u-kicks(dt/2).
// acc holds the acceleration −∇φ per spatial cell (flat index). The paper's
// sequence applies the same potential in both half-kicks; the hybrid driver
// refreshes acc between steps.
func (s *Solver) Step(dt, a float64, acc [3][]float64) error {
	if err := s.KickHalf(dt, acc); err != nil {
		return err
	}
	if err := s.Drift(dt, a); err != nil {
		return err
	}
	return s.KickHalf(dt, acc)
}

// KickHalf applies the three velocity-space advections for dt/2.
func (s *Solver) KickHalf(dt float64, acc [3][]float64) error {
	ncell := s.g.NCells()
	for d := 0; d < 3; d++ {
		if len(acc[d]) != ncell {
			return fmt.Errorf("vlasov: acc[%d] length %d != %d cells", d, len(acc[d]), ncell)
		}
	}
	for d := 0; d < 3; d++ {
		if err := s.kickAxis(d, dt/2, acc[d]); err != nil {
			return err
		}
	}
	return nil
}

// Drift applies the three position-space advections for dt.
func (s *Solver) Drift(dt, a float64) error {
	for d := 0; d < 3; d++ {
		if err := s.driftAxis(d, dt, a); err != nil {
			return err
		}
	}
	return nil
}

// kickAxis advects every velocity cube along velocity axis d with the
// per-cell CFL  c = acc·dt / Δu  (the minus sign of eq. (4) is carried by
// the advection velocity being −∂φ/∂x = acc).
func (s *Solver) kickAxis(d int, dt float64, accD []float64) error {
	g := s.g
	nu := g.NU
	// Line geometry within a cube for axis d.
	var nLine, stride, nPerp int
	switch d {
	case 0:
		nLine, stride, nPerp = nu[0], nu[1]*nu[2], nu[1]*nu[2]
	case 1:
		nLine, stride, nPerp = nu[1], nu[2], nu[0]*nu[2]
	default:
		nLine, stride, nPerp = nu[2], 1, nu[0]*nu[1]
	}
	s.kg = kickGeom{dt: dt, du: g.DU(d), acc: accD, nLine: nLine, stride: stride, nPerp: nPerp, d: d}
	ncell := g.NCells()
	nw := s.clampWorkers(ncell)
	if nw <= 1 {
		w := s.worker(0)
		err := s.kickRange(w, 0, ncell)
		s.addLoss(w)
		return err
	}
	return s.runRanges(ncell, nw, (*Solver).kickRange)
}

// kickRange advects the velocity cubes of spatial cells [lo, hi) along the
// axis described by s.kg.
func (s *Solver) kickRange(w *worker, lo, hi int) error {
	g := s.g
	kg := &s.kg
	nu := g.NU
	for cell := lo; cell < hi; cell++ {
		c := kg.acc[cell] * kg.dt / kg.du
		if c == 0 {
			continue
		}
		cube := g.CubeAt(cell)
		loss := 0.0
		for p := 0; p < kg.nPerp; p++ {
			off := perpOffset(kg.d, p, nu)
			line := w.line[:kg.nLine]
			for i := 0; i < kg.nLine; i++ {
				line[i] = float64(cube[off+i*kg.stride])
			}
			var before float64
			for _, v := range line {
				before += v
			}
			if err := w.open.StepOpen(line, c); err != nil {
				return err
			}
			var after float64
			for _, v := range line {
				after += v
			}
			loss += before - after
			for i := 0; i < kg.nLine; i++ {
				cube[off+i*kg.stride] = float32(line[i])
			}
		}
		if loss != 0 {
			w.loss += loss // raw Σf; converted to mass units in addLoss
		}
	}
	return nil
}

// perpOffset returns the cube offset of the p-th perpendicular line for
// velocity axis d.
func perpOffset(d, p int, nu [3]int) int {
	switch d {
	case 0: // lines vary jx; perp = (jy, jz)
		return p // jy*nu2 + jz, stride nu1*nu2 applied per element
	case 1: // lines vary jy; perp = (jx, jz)
		jx, jz := p/nu[2], p%nu[2]
		return jx*nu[1]*nu[2] + jz
	default: // lines vary jz; perp = (jx, jy)
		return p * nu[2]
	}
}

// driftAxis advects along spatial axis d with per-velocity-index CFL
// c = u_d·dt/(a²·Δx). Lines are periodic across the (single-block) box; the
// decomposed version exchanges ghosts in package decomp before calling the
// same kernels.
func (s *Solver) driftAxis(d int, dt, a float64) error {
	g := s.g
	dx := g.DX(d)
	nu := g.NU
	// Precompute CFL per velocity index along d into the reusable table.
	nud := nu[d]
	if cap(s.cfl) < nud {
		s.cfl = make([]float64, nud)
	}
	cfl := s.cfl[:nud]
	for j := 0; j < nud; j++ {
		cfl[j] = g.U(d, j) * dt / (a * a * dx)
	}
	// Spatial line geometry.
	var nLine, cellStride, nPerpSpace int
	switch d {
	case 0:
		nLine, cellStride, nPerpSpace = g.NX, g.NY*g.NZ, g.NY*g.NZ
	case 1:
		nLine, cellStride, nPerpSpace = g.NY, g.NZ, g.NX*g.NZ
	default:
		nLine, cellStride, nPerpSpace = g.NZ, 1, g.NX*g.NY
	}
	if nLine < 6 {
		return fmt.Errorf("vlasov: spatial extent %d along axis %d < 6 (SL-MPP5 stencil)", nLine, d)
	}
	s.dg = driftGeom{cfl: cfl, nLine: nLine, cellStride: cellStride, ncube: g.NCube(), d: d}
	// Parallelise over perpendicular spatial columns; each column sweeps all
	// velocity elements.
	nw := s.clampWorkers(nPerpSpace)
	if nw <= 1 {
		w := s.worker(0)
		err := s.driftRange(w, 0, nPerpSpace)
		s.addLoss(w)
		return err
	}
	return s.runRanges(nPerpSpace, nw, (*Solver).driftRange)
}

// driftRange advects perpendicular spatial columns [lo, hi) along the axis
// described by s.dg.
func (s *Solver) driftRange(w *worker, lo, hi int) error {
	g := s.g
	dg := &s.dg
	nu := g.NU
	str := dg.cellStride * dg.ncube
	for p := lo; p < hi; p++ {
		base := spatialPerpOffset(dg.d, p, g)
		line := w.line[:dg.nLine]
		for e := 0; e < dg.ncube; e++ {
			j := velIndexAlong(dg.d, e, nu)
			c := dg.cfl[j]
			if c == 0 {
				continue
			}
			off := base*dg.ncube + e
			for i := 0; i < dg.nLine; i++ {
				line[i] = float64(g.Data[off+i*str])
			}
			if err := w.per.Step(line, c); err != nil {
				return err
			}
			for i := 0; i < dg.nLine; i++ {
				g.Data[off+i*str] = float32(line[i])
			}
		}
	}
	return nil
}

// spatialPerpOffset returns the flat spatial cell index of the p-th
// perpendicular column for axis d (the column's first cell).
func spatialPerpOffset(d, p int, g *phase.Grid) int {
	switch d {
	case 0: // lines vary ix; perp = (iy, iz)
		return p
	case 1: // lines vary iy; perp = (ix, iz)
		ix, iz := p/g.NZ, p%g.NZ
		return ix*g.NY*g.NZ + iz
	default: // lines vary iz; perp = (ix, iy)
		return p * g.NZ
	}
}

// velIndexAlong extracts the velocity index along axis d from a flat cube
// element index.
func velIndexAlong(d, e int, nu [3]int) int {
	switch d {
	case 0:
		return e / (nu[1] * nu[2])
	case 1:
		return (e / nu[2]) % nu[1]
	default:
		return e % nu[2]
	}
}

// worker carries per-goroutine scratch.
type worker struct {
	line []float64
	per  advect.Scheme // periodic stepper
	open *advect.SLMPP5
	loss float64
}

func (s *Solver) newWorker() *worker {
	g := s.g
	maxLen := g.NX
	for _, n := range []int{g.NY, g.NZ, g.NU[0], g.NU[1], g.NU[2]} {
		if n > maxLen {
			maxLen = n
		}
	}
	return &worker{
		line: make([]float64, maxLen),
		per:  s.proto.Clone(),
		open: advect.NewSLMPP5(),
	}
}

// worker returns worker k's scratch, growing the pool on demand. Workers
// persist for the life of the solver (the grid's extents are fixed), so
// steady-state stepping stops re-cloning schemes and reallocating lines.
func (s *Solver) worker(k int) *worker {
	for len(s.pool) <= k {
		s.pool = append(s.pool, s.newWorker())
	}
	return s.pool[k]
}

// clampWorkers bounds the sweep parallelism by the number of independent
// work items.
func (s *Solver) clampWorkers(items int) int {
	nw := s.workers
	if nw > items {
		nw = items
	}
	if nw < 1 {
		nw = 1
	}
	return nw
}

// runRanges is the parallel dispatch path of one axis sweep: [0, n) splits
// into one contiguous range per worker, each running the range method with
// its pooled scratch; the first reported error wins and every worker's
// boundary loss is folded in. Callers handle nw ≤ 1 with a direct serial
// range call — no goroutines or closures — which keeps the steady-state
// single-worker step allocation-free.
func (s *Solver) runRanges(n, nw int, run func(*Solver, *worker, int, int) error) error {
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	chunk := (n + nw - 1) / nw
	for k := 0; k < nw; k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w *worker, lo, hi int) {
			defer wg.Done()
			if err := run(s, w, lo, hi); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
			s.addLoss(w)
		}(s.worker(k), lo, hi)
	}
	wg.Wait()
	return firstErr
}

func (s *Solver) addLoss(w *worker) {
	if w.loss == 0 {
		return
	}
	g := s.g
	// w.loss is a raw Σf over lost cell values; one phase-space cell has
	// volume Δx³·Δu³, giving the escaped mass.
	vol := g.DX(0) * g.DX(1) * g.DX(2)
	du3 := g.DU(0) * g.DU(1) * g.DU(2)
	s.mu.Lock()
	s.BoundaryLoss += w.loss * vol * du3
	s.mu.Unlock()
	w.loss = 0
}
