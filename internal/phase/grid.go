// Package phase implements the discretised six-dimensional phase-space
// distribution function of the massive neutrinos.
//
// The memory layout follows the paper's List 1: the spatial grid is the
// slow index and each spatial cell owns a complete, contiguous velocity-space
// cube. As §5.1.3 explains, this makes every velocity moment (density, mean
// velocity, velocity-dispersion tensor) a purely local reduction that needs
// no communication under spatial domain decomposition. Values are stored in
// float32 — the paper's Vlasov arrays are single precision — while all
// reductions accumulate in float64.
package phase

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Grid is a block of 6D phase space: NX×NY×NZ spatial cells, each holding an
// NU[0]×NU[1]×NU[2] velocity cube.
type Grid struct {
	NX, NY, NZ int
	NU         [3]int
	// Box is the physical extent covered by this block along x, y, z in
	// comoving h⁻¹Mpc (for a decomposed run, the sub-domain extent).
	Box [3]float64
	// UMax is the velocity-space half-extent: u ∈ [−UMax, +UMax) km/s.
	UMax float64
	// Data holds f(x, u) in row-major order
	// (((ix·NY+iy)·NZ+iz)·NU0+jx)·NU1+jy)·NU2+jz.
	Data []float32

	// workers pins the ParallelCells worker count (0 = GOMAXPROCS at call
	// time, the historical default); set through SetWorkers.
	workers int

	// partial is the reusable per-cell reduction scratch of TotalMass.
	// Clone drops it so a snapshot never shares scratch with the evolving
	// original.
	partial []float64
}

// SetWorkers pins the number of goroutines ParallelCells (and everything
// built on it: Fill, ComputeMoments, the moment maps) parallelises over
// (minimum 1). Without it the reductions read GOMAXPROCS at call time,
// invisible to any scheduler-owned core budget. Cells are disjoint, so the
// worker count never changes the computed values.
func (g *Grid) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	g.workers = n
}

// New allocates a phase-space grid. All extents must be positive and the
// velocity extents at least 6 (the SL-MPP5 stencil width).
func New(nx, ny, nz int, nu [3]int, box [3]float64, umax float64) (*Grid, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("phase: invalid spatial extents %d×%d×%d", nx, ny, nz)
	}
	for d, n := range nu {
		if n < 6 {
			return nil, fmt.Errorf("phase: velocity extent NU[%d]=%d < 6", d, n)
		}
	}
	for d, b := range box {
		if b <= 0 {
			return nil, fmt.Errorf("phase: invalid box extent Box[%d]=%v", d, b)
		}
	}
	if umax <= 0 {
		return nil, fmt.Errorf("phase: invalid UMax %v", umax)
	}
	ncell := nx * ny * nz
	ncube := nu[0] * nu[1] * nu[2]
	return &Grid{
		NX: nx, NY: ny, NZ: nz, NU: nu, Box: box, UMax: umax,
		Data: make([]float32, ncell*ncube),
	}, nil
}

// Clone returns a deep copy sharing no storage with g — the value snapshot
// asynchronous checkpointing serialises while the original keeps evolving.
func (g *Grid) Clone() *Grid {
	c := *g
	c.Data = append([]float32(nil), g.Data...)
	c.partial = nil
	return &c
}

// NCells returns the number of spatial cells in the block.
func (g *Grid) NCells() int { return g.NX * g.NY * g.NZ }

// NCube returns the number of velocity cells per spatial cell.
func (g *Grid) NCube() int { return g.NU[0] * g.NU[1] * g.NU[2] }

// DX returns the spatial cell width along dimension d.
func (g *Grid) DX(d int) float64 {
	switch d {
	case 0:
		return g.Box[0] / float64(g.NX)
	case 1:
		return g.Box[1] / float64(g.NY)
	default:
		return g.Box[2] / float64(g.NZ)
	}
}

// DU returns the velocity cell width along velocity dimension d.
func (g *Grid) DU(d int) float64 { return 2 * g.UMax / float64(g.NU[d]) }

// U returns the velocity-cell-centre coordinate of index j along dimension d.
func (g *Grid) U(d, j int) float64 {
	return -g.UMax + (float64(j)+0.5)*g.DU(d)
}

// X returns the cell-centre spatial coordinate of index i along dimension d
// relative to the block origin.
func (g *Grid) X(d, i int) float64 {
	return (float64(i) + 0.5) * g.DX(d)
}

// CellIndex returns the flat spatial index of (ix, iy, iz).
func (g *Grid) CellIndex(ix, iy, iz int) int {
	return (ix*g.NY+iy)*g.NZ + iz
}

// Cube returns the contiguous velocity cube of spatial cell (ix, iy, iz).
func (g *Grid) Cube(ix, iy, iz int) []float32 {
	nc := g.NCube()
	off := g.CellIndex(ix, iy, iz) * nc
	return g.Data[off : off+nc]
}

// CubeAt returns the velocity cube of a flat spatial index.
func (g *Grid) CubeAt(cell int) []float32 {
	nc := g.NCube()
	return g.Data[cell*nc : (cell+1)*nc]
}

// Fill evaluates f(x, y, z, ux, uy, uz) at every phase-space cell centre,
// with spatial coordinates relative to the block origin. Evaluation is
// parallel over spatial cells.
func (g *Grid) Fill(f func(x, y, z, ux, uy, uz float64) float64) {
	g.ParallelCells(func(ix, iy, iz int) {
		cube := g.Cube(ix, iy, iz)
		x, y, z := g.X(0, ix), g.X(1, iy), g.X(2, iz)
		idx := 0
		for jx := 0; jx < g.NU[0]; jx++ {
			ux := g.U(0, jx)
			for jy := 0; jy < g.NU[1]; jy++ {
				uy := g.U(1, jy)
				for jz := 0; jz < g.NU[2]; jz++ {
					cube[idx] = float32(f(x, y, z, ux, uy, g.U(2, jz)))
					idx++
				}
			}
		}
	})
}

// rangeWorkers resolves the effective worker count for items independent
// work items (0 = GOMAXPROCS at call time, clamped to items).
func (g *Grid) rangeWorkers(items int) int {
	nw := g.workers
	if nw == 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > items {
		nw = items
	}
	return nw
}

// runCellRanges is the parallel dispatch path of the built-in reductions:
// [0, ncell) is split into one contiguous range per worker. Callers handle
// nw ≤ 1 serially first with a direct method call — no closure is created,
// which keeps steady-state single-worker reductions allocation-free.
func (g *Grid) runCellRanges(ncell, nw int, run func(lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (ncell + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > ncell {
			hi = ncell
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelCells runs fn over every spatial cell, using all CPUs unless
// SetWorkers pinned the count.
func (g *Grid) ParallelCells(fn func(ix, iy, iz int)) {
	ncell := g.NCells()
	nw := g.rangeWorkers(ncell)
	if nw <= 1 {
		for c := 0; c < ncell; c++ {
			fn(c/(g.NY*g.NZ), (c/g.NZ)%g.NY, c%g.NZ)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (ncell + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > ncell {
			hi = ncell
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for c := lo; c < hi; c++ {
				fn(c/(g.NY*g.NZ), (c/g.NZ)%g.NY, c%g.NZ)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Moments holds the velocity moments of the distribution function on the
// spatial grid: the paper's dens, u*_mean fields of List 1 plus the scalar
// velocity dispersion used in Fig. 6.
type Moments struct {
	NX, NY, NZ int
	// Density is ρ(x) = ∫ f d³u (mass per comoving volume).
	Density []float64
	// MeanU is the density-weighted mean canonical velocity per component.
	MeanU [3][]float64
	// Sigma is the 1D velocity dispersion σ = sqrt(trace(σ²ᵢⱼ)/3).
	Sigma []float64
}

// ensureF64 returns s resized to n, reusing the backing array when it fits.
func ensureF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// ComputeMoments reduces the velocity cubes to their first three moments.
// The reduction is local per spatial cell — the design property the paper's
// domain decomposition (§5.1.3) is built around — and parallel over cells.
// It allocates a fresh Moments every call; step loops that recompute moments
// every step should use ComputeMomentsInto with a reused buffer instead.
func (g *Grid) ComputeMoments() *Moments {
	return g.ComputeMomentsInto(nil)
}

// ComputeMomentsInto is ComputeMoments writing into m, reusing its slices
// when they fit (m == nil allocates a new one). Every cell of every field is
// written, so a recycled Moments never leaks stale values. With a warm m and
// one worker the reduction is allocation-free.
func (g *Grid) ComputeMomentsInto(m *Moments) *Moments {
	ncell := g.NCells()
	if m == nil {
		m = &Moments{}
	}
	m.NX, m.NY, m.NZ = g.NX, g.NY, g.NZ
	m.Density = ensureF64(m.Density, ncell)
	m.Sigma = ensureF64(m.Sigma, ncell)
	for d := 0; d < 3; d++ {
		m.MeanU[d] = ensureF64(m.MeanU[d], ncell)
	}
	du3 := g.DU(0) * g.DU(1) * g.DU(2)
	nw := g.rangeWorkers(ncell)
	if nw <= 1 {
		g.momentsRange(m, 0, ncell, du3)
		return m
	}
	g.runCellRanges(ncell, nw, func(lo, hi int) {
		g.momentsRange(m, lo, hi, du3)
	})
	return m
}

func (g *Grid) momentsRange(m *Moments, lo, hi int, du3 float64) {
	du0, du1, du2 := g.DU(0), g.DU(1), g.DU(2)
	for cell := lo; cell < hi; cell++ {
		cube := g.CubeAt(cell)
		var mass, px, py, pz, uxx, uyy, uzz float64
		idx := 0
		for jx := 0; jx < g.NU[0]; jx++ {
			ux := -g.UMax + (float64(jx)+0.5)*du0
			for jy := 0; jy < g.NU[1]; jy++ {
				uy := -g.UMax + (float64(jy)+0.5)*du1
				for jz := 0; jz < g.NU[2]; jz++ {
					f := float64(cube[idx])
					idx++
					if f == 0 {
						continue
					}
					uz := -g.UMax + (float64(jz)+0.5)*du2
					mass += f
					px += f * ux
					py += f * uy
					pz += f * uz
					uxx += f * ux * ux
					uyy += f * uy * uy
					uzz += f * uz * uz
				}
			}
		}
		m.Density[cell] = mass * du3
		if mass > 0 {
			mx, my, mz := px/mass, py/mass, pz/mass
			m.MeanU[0][cell] = mx
			m.MeanU[1][cell] = my
			m.MeanU[2][cell] = mz
			tr := uxx/mass - mx*mx + uyy/mass - my*my + uzz/mass - mz*mz
			if tr < 0 {
				tr = 0
			}
			m.Sigma[cell] = math.Sqrt(tr / 3)
		} else {
			m.MeanU[0][cell] = 0
			m.MeanU[1][cell] = 0
			m.MeanU[2][cell] = 0
			m.Sigma[cell] = 0
		}
	}
}

// TotalMass returns ∫ f d³x d³u over the block. The per-cell partial-sum
// scratch is owned by the grid and reused across calls.
func (g *Grid) TotalMass() float64 {
	dv := g.DX(0) * g.DX(1) * g.DX(2) * g.DU(0) * g.DU(1) * g.DU(2)
	// Accumulate per spatial cell in parallel, then reduce.
	ncell := g.NCells()
	g.partial = ensureF64(g.partial, ncell)
	partial := g.partial
	nw := g.rangeWorkers(ncell)
	if nw <= 1 {
		g.massRange(partial, 0, ncell)
	} else {
		g.runCellRanges(ncell, nw, func(lo, hi int) {
			g.massRange(partial, lo, hi)
		})
	}
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total * dv
}

func (g *Grid) massRange(partial []float64, lo, hi int) {
	for cell := lo; cell < hi; cell++ {
		cube := g.CubeAt(cell)
		s := 0.0
		for _, v := range cube {
			s += float64(v)
		}
		partial[cell] = s
	}
}

// MinValue returns the minimum of f over the block (negative values indicate
// a positivity violation).
func (g *Grid) MinValue() float32 {
	if len(g.Data) == 0 {
		return 0
	}
	mn := g.Data[0]
	for _, v := range g.Data {
		if v < mn {
			mn = v
		}
	}
	return mn
}

// Scale multiplies every value by s (used to normalise initial conditions to
// a target mean density).
func (g *Grid) Scale(s float64) {
	fs := float32(s)
	for i := range g.Data {
		g.Data[i] *= fs
	}
}

// DispersionTensor holds the full symmetric velocity-dispersion tensor
// σ²ᵢⱼ = ⟨uᵢuⱼ⟩ − ⟨uᵢ⟩⟨uⱼ⟩ per spatial cell, ordered
// (xx, yy, zz, xy, xz, yz). The scalar Sigma of Moments is
// sqrt((σ²xx+σ²yy+σ²zz)/3).
type DispersionTensor struct {
	NX, NY, NZ int
	S          [6][]float64
}

// ComputeDispersionTensor reduces the cubes to the six independent
// components of σ²ᵢⱼ — the anisotropy diagnostic of collisionless
// collapse (isotropic for the initial Fermi-Dirac state, anisotropic once
// phase mixing starts).
func (g *Grid) ComputeDispersionTensor() *DispersionTensor {
	return g.ComputeDispersionTensorInto(nil)
}

// ComputeDispersionTensorInto is ComputeDispersionTensor writing into dt,
// reusing its component slices when they fit (dt == nil allocates a new
// one). Every cell of every component is written, so a recycled tensor never
// leaks stale values.
func (g *Grid) ComputeDispersionTensorInto(dt *DispersionTensor) *DispersionTensor {
	ncell := g.NCells()
	if dt == nil {
		dt = &DispersionTensor{}
	}
	dt.NX, dt.NY, dt.NZ = g.NX, g.NY, g.NZ
	for i := range dt.S {
		dt.S[i] = ensureF64(dt.S[i], ncell)
	}
	nw := g.rangeWorkers(ncell)
	if nw <= 1 {
		g.dispersionRange(dt, 0, ncell)
		return dt
	}
	g.runCellRanges(ncell, nw, func(lo, hi int) {
		g.dispersionRange(dt, lo, hi)
	})
	return dt
}

func (g *Grid) dispersionRange(dt *DispersionTensor, lo, hi int) {
	du0, du1, du2 := g.DU(0), g.DU(1), g.DU(2)
	for cell := lo; cell < hi; cell++ {
		cube := g.CubeAt(cell)
		var mass float64
		var m1 [3]float64
		var m2 [6]float64 // xx, yy, zz, xy, xz, yz
		idx := 0
		for jx := 0; jx < g.NU[0]; jx++ {
			ux := -g.UMax + (float64(jx)+0.5)*du0
			for jy := 0; jy < g.NU[1]; jy++ {
				uy := -g.UMax + (float64(jy)+0.5)*du1
				for jz := 0; jz < g.NU[2]; jz++ {
					f := float64(cube[idx])
					idx++
					if f == 0 {
						continue
					}
					uz := -g.UMax + (float64(jz)+0.5)*du2
					mass += f
					m1[0] += f * ux
					m1[1] += f * uy
					m1[2] += f * uz
					m2[0] += f * ux * ux
					m2[1] += f * uy * uy
					m2[2] += f * uz * uz
					m2[3] += f * ux * uy
					m2[4] += f * ux * uz
					m2[5] += f * uy * uz
				}
			}
		}
		if mass <= 0 {
			for i := range dt.S {
				dt.S[i][cell] = 0
			}
			continue
		}
		mx, my, mz := m1[0]/mass, m1[1]/mass, m1[2]/mass
		dt.S[0][cell] = m2[0]/mass - mx*mx
		dt.S[1][cell] = m2[1]/mass - my*my
		dt.S[2][cell] = m2[2]/mass - mz*mz
		dt.S[3][cell] = m2[3]/mass - mx*my
		dt.S[4][cell] = m2[4]/mass - mx*mz
		dt.S[5][cell] = m2[5]/mass - my*mz
	}
}

// Anisotropy returns a scalar anisotropy measure per cell: the RMS of the
// off-diagonal components over the mean diagonal, zero for an isotropic
// distribution.
func (dt *DispersionTensor) Anisotropy(cell int) float64 {
	diag := (dt.S[0][cell] + dt.S[1][cell] + dt.S[2][cell]) / 3
	if diag <= 0 {
		return 0
	}
	off := dt.S[3][cell]*dt.S[3][cell] + dt.S[4][cell]*dt.S[4][cell] + dt.S[5][cell]*dt.S[5][cell]
	return math.Sqrt(off/3) / diag
}
