// Package advect implements the one-dimensional advection solvers at the
// heart of the paper's Vlasov method (§5.2). The directional-splitting
// approach (eq. 3–5) reduces the 6D Vlasov equation to sweeps of the linear
// advection equation ∂f/∂t + v ∂f/∂x = 0 with a velocity v that is constant
// along each sweep line.
//
// The schemes provided are
//
//   - SLMPP5 — the paper's novel scheme (Tanaka et al. 2017): a conservative
//     semi-Lagrangian flux of spatially fifth order, limited by the
//     Suresh–Huynh monotonicity-preserving (MP) constraints and a
//     positivity-preserving flux clip, advanced with a SINGLE flux stage per
//     step and no CFL restriction.
//   - MP5 — the conventional comparator: Suresh–Huynh MP5 reconstruction with
//     three-stage TVD Runge-Kutta time integration (three flux evaluations
//     per step, CFL ≤ 1).
//   - Upwind1, LaxWendroff2 — first- and second-order baselines.
//
// All schemes advance periodic lines in place; the Vlasov solver feeds them
// ghost-padded lines through the same flux kernels.
package advect

import "fmt"

// Scheme advances the 1D linear advection equation on a periodic line.
// Implementations keep private scratch buffers and are therefore not safe
// for concurrent use; call Clone to obtain per-worker instances.
type Scheme interface {
	// Name identifies the scheme in tables and benchmarks.
	Name() string
	// Stages returns the number of flux evaluations per time step (the
	// paper's cost argument: SL-MPP5 = 1, MP5-RK3 = 3).
	Stages() int
	// MaxCFL returns the largest stable CFL number (0 means unconditional).
	MaxCFL() float64
	// Step advances f in place by one step with CFL number c = v·Δt/Δx.
	// The line is treated as periodic.
	Step(f []float64, c float64) error
	// Clone returns an independent instance for use by another goroutine.
	Clone() Scheme
}

// New constructs a scheme by name: "slmpp5", "mp5", "upwind1", "laxwendroff2".
func New(name string) (Scheme, error) {
	switch name {
	case "slmpp5":
		return NewSLMPP5(), nil
	case "mp5":
		return NewMP5(), nil
	case "upwind1":
		return NewUpwind1(), nil
	case "laxwendroff2":
		return NewLaxWendroff2(), nil
	}
	return nil, fmt.Errorf("advect: unknown scheme %q", name)
}

// Names lists the registered scheme names.
func Names() []string { return []string{"slmpp5", "mp5", "upwind1", "laxwendroff2"} }

// minmod2 returns the minmod of two arguments.
func minmod2(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if a > 0 {
		if a < b {
			return a
		}
		return b
	}
	if a > b {
		return a
	}
	return b
}

// minmod4 returns the minmod of four arguments.
func minmod4(a, b, c, d float64) float64 {
	return minmod2(minmod2(a, b), minmod2(c, d))
}

// median returns the median of three values.
func median(a, b, c float64) float64 {
	return a + minmod2(b-a, c-a)
}

// mod returns i modulo n in [0, n).
func mod(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}
