package mpisim

import "fmt"

// Cart maps ranks onto a periodic 3D Cartesian process grid — the paper's
// (n_x, n_y, n_z) domain decomposition of §5.1.3. Rank order is row-major:
// rank = (px·ny + py)·nz + pz.
type Cart struct {
	N [3]int
}

// NewCart validates the process-grid shape against the world size.
func NewCart(size int, n [3]int) (*Cart, error) {
	if n[0] < 1 || n[1] < 1 || n[2] < 1 {
		return nil, fmt.Errorf("mpisim: invalid cart dims %v", n)
	}
	if n[0]*n[1]*n[2] != size {
		return nil, fmt.Errorf("mpisim: cart dims %v do not tile %d ranks", n, size)
	}
	return &Cart{N: n}, nil
}

// Coords returns the process coordinates of a rank.
func (c *Cart) Coords(rank int) [3]int {
	pz := rank % c.N[2]
	py := (rank / c.N[2]) % c.N[1]
	px := rank / (c.N[1] * c.N[2])
	return [3]int{px, py, pz}
}

// Rank returns the rank at process coordinates p (periodically wrapped).
func (c *Cart) Rank(p [3]int) int {
	for d := 0; d < 3; d++ {
		p[d] %= c.N[d]
		if p[d] < 0 {
			p[d] += c.N[d]
		}
	}
	return (p[0]*c.N[1]+p[1])*c.N[2] + p[2]
}

// Shift returns the ranks of the neighbours at −1 and +1 along dim.
func (c *Cart) Shift(rank, dim int) (lo, hi int) {
	p := c.Coords(rank)
	pm, pp := p, p
	pm[dim]--
	pp[dim]++
	return c.Rank(pm), c.Rank(pp)
}
