package plasma

import (
	"math"
	"testing"
)

// TestStepSteadyStateZeroAlloc asserts the hot-loop contract: with one
// worker, a warmed-up solver advances whole split steps (field solve
// included) without allocating.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	s, err := New(64, 64, 4*math.Pi, 8)
	if err != nil {
		t.Fatal(err)
	}
	s.LandauInit(0.01, 0.5, 1)
	s.SetWorkers(1)
	for i := 0; i < 3; i++ { // warm every cached buffer
		if err := s.Step(0.05); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := s.Step(0.05); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestParallelWorkerPoolReused checks that the parallel path reuses its
// worker pool across steps and stays physically identical to serial.
func TestParallelWorkerPoolReused(t *testing.T) {
	mk := func(workers int) *Solver {
		s, err := New(32, 32, 4*math.Pi, 8)
		if err != nil {
			t.Fatal(err)
		}
		s.LandauInit(0.01, 0.5, 1)
		s.SetWorkers(workers)
		for i := 0; i < 5; i++ {
			if err := s.Step(0.05); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	ref, par := mk(1), mk(3)
	if len(par.pool) == 0 {
		t.Fatal("parallel stepping did not build a worker pool")
	}
	for i := range ref.F {
		if ref.F[i] != par.F[i] {
			t.Fatalf("F[%d] differs between 1 and 3 workers: %v vs %v", i, ref.F[i], par.F[i])
		}
	}
}
