package machine

// ETAEstimator is the online counterpart of the §7.2 time-to-solution
// model. TimeToSolution predicts a run's wall time *a priori* from
// hardware constants and the run geometry; the estimator does the same
// projection *a posteriori*, from a live run's own progress: feed it
// (wall-seconds, clock) samples as diagnostics arrive and it maintains an
// exponentially-weighted estimate of the clock-advance rate, from which
// ETASeconds projects the remaining wall time to the run's clock target.
// The control plane feeds it per-step diagnostics off the hot loop and
// serves the projection as the `eta_seconds` field of a job's status
// document — the operational face of the paper's TTS accounting.
//
// The estimator is deliberately rate-based rather than linear-fit-based:
// adaptive-dt runs advance their clock unevenly (a CFL-limited plasma run
// slows as the field steepens), and an EWMA of the instantaneous rate
// tracks that drift with O(1) state, no sample history, and no matrix
// solve per observation.
//
// Not safe for concurrent use; callers serialise Observe/ETASeconds (the
// serve layer guards it with the server mutex).
type ETAEstimator struct {
	target    float64
	rate      float64 // clock units per wall second, EWMA
	lastWall  float64
	lastClock float64
	samples   int
}

// etaAlpha is the EWMA weight of the newest instantaneous rate: low enough
// to ride out bursty async-observer delivery (many steps can arrive in one
// pipeline drain), high enough to track a genuinely slowing run within a
// few tens of observations.
const etaAlpha = 0.2

// NewETAEstimator returns an estimator projecting toward the given clock
// target (runner.Run's `until`).
func NewETAEstimator(target float64) *ETAEstimator {
	return &ETAEstimator{target: target}
}

// Observe feeds one progress sample: the run's elapsed wall time in
// seconds and its clock coordinate at that instant. Samples must arrive in
// wall order; a sample not advancing the wall clock (two observations from
// one pipeline drain) is folded into the next interval rather than
// producing an infinite rate.
func (e *ETAEstimator) Observe(wallSeconds, clock float64) {
	if e.samples == 0 {
		e.lastWall, e.lastClock = wallSeconds, clock
		e.samples = 1
		return
	}
	dw := wallSeconds - e.lastWall
	if dw <= 0 {
		return
	}
	inst := (clock - e.lastClock) / dw
	if e.samples == 1 {
		e.rate = inst
	} else {
		e.rate = etaAlpha*inst + (1-etaAlpha)*e.rate
	}
	e.lastWall, e.lastClock = wallSeconds, clock
	e.samples++
}

// ETASeconds projects the remaining wall seconds until the clock target.
// It reports ok=false until two wall-separated samples have established a
// positive rate — a queued or stalled run has no defensible ETA, and the
// caller should omit the field rather than invent one. A run already past
// its target reports zero.
func (e *ETAEstimator) ETASeconds() (float64, bool) {
	if e.samples < 2 || e.rate <= 0 {
		return 0, false
	}
	remaining := e.target - e.lastClock
	if remaining <= 0 {
		return 0, true
	}
	return remaining / e.rate, true
}

// Target returns the clock target the estimator projects toward.
func (e *ETAEstimator) Target() float64 { return e.target }

// Rate returns the current EWMA clock-advance rate in clock units per wall
// second (0 until two wall-separated samples have arrived) — the per-job
// throughput figure a trace span records alongside the ETA projection.
func (e *ETAEstimator) Rate() float64 {
	if e.samples < 2 {
		return 0
	}
	return e.rate
}
