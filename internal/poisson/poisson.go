// Package poisson solves the comoving Poisson equation (the paper's eq. 2)
// on a periodic Cartesian mesh with the FFT convolution method of Hockney &
// Eastwood, exactly as the paper's PM solver does:
//
//	∇²φ(x) = coeff · δρ(x),   φ_k = −coeff · δρ_k / k²,   φ_{k=0} = 0,
//
// where coeff = 4πG a²(ρ−ρ̄)-normalisation is supplied by the caller (see
// cosmo.Params.PoissonCoeff) and δρ is the comoving overdensity contributed
// by BOTH matter components — the CIC-deposited N-body particles and the
// velocity-space integral of the neutrino distribution function.
//
// The mesh-space gravitational acceleration −∇φ is obtained with
// fourth-order central differences, the standard PM choice.
package poisson

import (
	"fmt"
	"math"

	"vlasov6d/internal/fft"
)

// Solver holds the transform plans and Green's function for a fixed mesh.
type Solver struct {
	N    [3]int
	Box  [3]float64
	f3   *fft.FFT3
	kfac [3][]float64 // squared wavenumbers per axis
	work []complex128
}

// NewSolver creates a Poisson solver for an n[0]×n[1]×n[2] periodic mesh
// covering a box of physical size box (h⁻¹Mpc).
func NewSolver(n [3]int, box [3]float64) (*Solver, error) {
	for d := 0; d < 3; d++ {
		if n[d] < 2 {
			return nil, fmt.Errorf("poisson: invalid mesh %v", n)
		}
		if box[d] <= 0 {
			return nil, fmt.Errorf("poisson: invalid box %v", box)
		}
	}
	f3, err := fft.NewFFT3(n[0], n[1], n[2])
	if err != nil {
		return nil, err
	}
	s := &Solver{N: n, Box: box, f3: f3}
	for d := 0; d < 3; d++ {
		s.kfac[d] = make([]float64, n[d])
		for i := 0; i < n[d]; i++ {
			m := i
			if m > n[d]/2 {
				m -= n[d]
			}
			k := 2 * math.Pi * float64(m) / box[d]
			s.kfac[d][i] = k * k
		}
	}
	s.work = make([]complex128, n[0]*n[1]*n[2])
	return s, nil
}

// Size returns the number of mesh cells.
func (s *Solver) Size() int { return s.N[0] * s.N[1] * s.N[2] }

// SetWorkers pins the worker count of the underlying 3D FFTs (minimum 1),
// so a scheduler-owned core budget bounds the PM solve's parallelism.
func (s *Solver) SetWorkers(n int) { s.f3.SetWorkers(n) }

// Solve computes the potential for the given source: ∇²φ = coeff·src.
// src is a real field of length Size(); the result is written into phi
// (allocated when nil) and returned. The mean of src is projected out, which
// implements the (ρ − ρ̄) subtraction of eq. (2).
func (s *Solver) Solve(src []float64, coeff float64, phi []float64) ([]float64, error) {
	return s.SolveFiltered(src, coeff, 0, phi)
}

// SolveFiltered is Solve with the TreePM long-range filter applied in
// Fourier space: φ_k = −coeff·exp(−k²·rs²)·δρ_k/k². With rs = 0 it reduces
// to the plain periodic solution; with rs > 0 it returns the long-range
// potential whose complement is supplied by the tree's erfc short-range
// force (package tree).
func (s *Solver) SolveFiltered(src []float64, coeff, rs float64, phi []float64) ([]float64, error) {
	n := s.Size()
	if len(src) != n {
		return nil, fmt.Errorf("poisson: source length %d != %d", len(src), n)
	}
	if phi == nil {
		phi = make([]float64, n)
	} else if len(phi) != n {
		return nil, fmt.Errorf("poisson: phi length %d != %d", len(phi), n)
	}
	w := s.work
	for i, v := range src {
		w[i] = complex(v, 0)
	}
	if err := s.f3.Forward(w); err != nil {
		return nil, err
	}
	idx := 0
	for ix := 0; ix < s.N[0]; ix++ {
		kx2 := s.kfac[0][ix]
		for iy := 0; iy < s.N[1]; iy++ {
			ky2 := s.kfac[1][iy]
			for iz := 0; iz < s.N[2]; iz++ {
				k2 := kx2 + ky2 + s.kfac[2][iz]
				if k2 == 0 {
					w[idx] = 0 // remove the mean: φ is defined up to a constant
				} else {
					g := -coeff / k2
					if rs > 0 {
						g *= math.Exp(-k2 * rs * rs)
					}
					w[idx] *= complex(g, 0)
				}
				idx++
			}
		}
	}
	if err := s.f3.Inverse(w); err != nil {
		return nil, err
	}
	for i := range phi {
		phi[i] = real(w[i])
	}
	return phi, nil
}

// idx3 returns the flat index of (ix, iy, iz) with periodic wrapping.
func (s *Solver) idx3(ix, iy, iz int) int {
	ix = wrap(ix, s.N[0])
	iy = wrap(iy, s.N[1])
	iz = wrap(iz, s.N[2])
	return (ix*s.N[1]+iy)*s.N[2] + iz
}

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Gradient fills g with ∂φ/∂x_dim using fourth-order central differences:
// f'(x) ≈ [8(f₊₁−f₋₁) − (f₊₂−f₋₂)]/(12Δ).
func (s *Solver) Gradient(phi []float64, dim int, g []float64) error {
	n := s.Size()
	if len(phi) != n || len(g) != n {
		return fmt.Errorf("poisson: gradient length mismatch")
	}
	if dim < 0 || dim > 2 {
		return fmt.Errorf("poisson: invalid dim %d", dim)
	}
	h := s.Box[dim] / float64(s.N[dim])
	inv12h := 1 / (12 * h)
	var di [3]int
	di[dim] = 1
	for ix := 0; ix < s.N[0]; ix++ {
		for iy := 0; iy < s.N[1]; iy++ {
			for iz := 0; iz < s.N[2]; iz++ {
				p1 := phi[s.idx3(ix+di[0], iy+di[1], iz+di[2])]
				m1 := phi[s.idx3(ix-di[0], iy-di[1], iz-di[2])]
				p2 := phi[s.idx3(ix+2*di[0], iy+2*di[1], iz+2*di[2])]
				m2 := phi[s.idx3(ix-2*di[0], iy-2*di[1], iz-2*di[2])]
				g[s.idx3(ix, iy, iz)] = (8*(p1-m1) - (p2 - m2)) * inv12h
			}
		}
	}
	return nil
}

// Accel computes the acceleration field −∇φ into three freshly allocated
// component arrays. Step loops should use AccelInto with a reused buffer.
func (s *Solver) Accel(phi []float64) ([3][]float64, error) {
	var acc [3][]float64
	if err := s.AccelInto(phi, &acc); err != nil {
		return acc, err
	}
	return acc, nil
}

// AccelInto computes −∇φ into acc, reusing each component slice when it
// already has the mesh size (missing or mis-sized components are allocated).
func (s *Solver) AccelInto(phi []float64, acc *[3][]float64) error {
	n := s.Size()
	for d := 0; d < 3; d++ {
		if len(acc[d]) != n {
			acc[d] = make([]float64, n)
		}
		if err := s.Gradient(phi, d, acc[d]); err != nil {
			return err
		}
		g := acc[d]
		for i := range g {
			g[i] = -g[i]
		}
	}
	return nil
}
