package vlasov6d

import (
	"context"
	"math"
	"runtime"
	"testing"

	"vlasov6d/internal/analysis"
)

// TestGoldenLandauDampingRate is the physics regression gate for the
// runner/scheduler stack: the 1D1V Landau-damping problem, driven through
// the same Run call every scheduler layer bottoms out in, must reproduce
// the kinetic-theory damping rate for both the paper's SL-MPP5 scheme and
// the MP5 comparator. A refactor of the driver, the batch layer or the
// stream layer that corrupts stepping, clocking or observer delivery
// cannot pass this test silently.
func TestGoldenLandauDampingRate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second physics run; the plain CI job covers it")
	}
	const (
		k     = 0.5
		alpha = 0.01
		until = 25.0
	)
	theory := LandauDampingRate(k, 1) // γ ≈ −0.1533 at k·λ_D = 0.5
	for _, scheme := range []string{"slmpp5", "mp5"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			s, err := NewPlasmaSolverWithScheme(64, 256, 2*math.Pi/k, 8, scheme)
			if err != nil {
				t.Fatal(err)
			}
			s.LandauInit(alpha, k, 1)
			// Adaptive stepping: SuggestDT caps the step at each scheme's
			// own stability limit (MP5 requires CFL ≤ 1; SL-MPP5 does not).
			var fit analysis.DecayFit
			rep, err := Run(context.Background(), s, until,
				WithObserver(func(step int, sv Solver) error {
					d := sv.Diagnostics()
					fit.Add(d.Time, d.Extra["field_energy"])
					return nil
				}))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Reason != ReasonUntil {
				t.Fatalf("stop reason %v", rep.Reason)
			}
			if fit.Peaks() < 3 {
				t.Fatalf("only %d field-energy peaks: no trustworthy fit", fit.Peaks())
			}
			gamma := fit.Gamma()
			if relErr := math.Abs(gamma-theory) / math.Abs(theory); relErr > 0.15 {
				t.Fatalf("%s: fitted γ = %.4f, theory %.4f (rel err %.1f%%)",
					scheme, gamma, theory, 100*relErr)
			}
		})
	}
}

// TestGoldenLandauBudgetedDeterminism gates the CPU-budget layer's physics
// contract: the worker count must never change the physics. The golden
// Landau case is run once with its default GOMAXPROCS workers and once
// pinned to a single core through a worker-budget lease, and the two fitted
// damping rates must be IDENTICAL — not merely close — because every sweep
// line is computed by the same floating-point operations regardless of how
// many goroutines share them. Any divergence means the budget plumbing
// leaked into the numerics.
func TestGoldenLandauBudgetedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second physics run; the plain CI job covers it")
	}
	const (
		k     = 0.5
		alpha = 0.01
		until = 25.0
	)
	run := func(opts ...RunOption) float64 {
		t.Helper()
		s, err := NewPlasmaSolverWithScheme(64, 256, 2*math.Pi/k, 8, "slmpp5")
		if err != nil {
			t.Fatal(err)
		}
		s.LandauInit(alpha, k, 1)
		var fit analysis.DecayFit
		opts = append(opts, WithObserver(func(step int, sv Solver) error {
			d := sv.Diagnostics()
			fit.Add(d.Time, d.Extra["field_energy"])
			return nil
		}))
		rep, err := Run(context.Background(), s, until, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Reason != ReasonUntil {
			t.Fatalf("stop reason %v", rep.Reason)
		}
		if fit.Peaks() < 3 {
			t.Fatalf("only %d field-energy peaks: no trustworthy fit", fit.Peaks())
		}
		return fit.Gamma()
	}
	base := run() // GOMAXPROCS intra-step workers, unbudgeted
	budget := NewCoreBudget(1)
	lease, err := budget.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	budgeted := run(WithWorkerBudget(lease)) // pinned to one core
	if budgeted != base {
		t.Fatalf("budgeted γ = %v != GOMAXPROCS(%d) γ = %v: the worker count changed the physics",
			budgeted, runtime.GOMAXPROCS(0), base)
	}
}
