// Package machine models Fugaku — A64FX compute-memory groups (CMGs) and
// the Tofu-D interconnect — well enough to replay the paper's run matrix
// (Table 2) and regenerate the weak/strong scaling results (Tables 3–4 and
// Fig. 7) at full 147,456-node scale, which no laptop can execute directly.
//
// The model is analytic but *calibrated*: its single-CMG compute rates come
// from the paper's own microbenchmarks (Table 1 and the Phantom-GRAPE
// interaction rate), and its communication terms follow the Tofu-D
// bandwidth/latency with the decomposition-derived message sizes. The shape
// of the scaling curves — near-perfect Vlasov scaling, tree in the middle,
// the 2D-parallel FFT eroding the PM part at scale — emerges from the
// structure, not from fitting the answers.
package machine

import "fmt"

// Run is one row of the paper's Table 2.
type Run struct {
	ID           string
	NxSide       int // spatial grid per side (Vlasov)
	NuSide       int // velocity grid per side
	NCDMSide     int // CDM particles per side
	Nodes        int
	Proc         [3]int // MPI process grid (n_x, n_y, n_z)
	ProcsPerNode int
}

// NProc returns the total MPI process count.
func (r Run) NProc() int { return r.Proc[0] * r.Proc[1] * r.Proc[2] }

// PhaseCells returns the total phase-space cell count Nx·Nu.
func (r Run) PhaseCells() float64 {
	nx := float64(r.NxSide)
	nu := float64(r.NuSide)
	return nx * nx * nx * nu * nu * nu
}

// Particles returns the CDM particle count.
func (r Run) Particles() float64 {
	n := float64(r.NCDMSide)
	return n * n * n
}

// Table2 reproduces the paper's run list. The M32 node count is 4608: the
// paper's table prints 3456, but (24·24·16) processes at 2 per node is
// 4608 nodes — an evident typo we resolve arithmetically (EXPERIMENTS.md).
var Table2 = []Run{
	{"S1", 96, 64, 864, 144, [3]int{12, 12, 2}, 2},
	{"S2", 96, 64, 864, 288, [3]int{12, 12, 4}, 2},
	{"S4", 96, 64, 864, 576, [3]int{12, 12, 8}, 2},
	{"M8", 192, 64, 1728, 1152, [3]int{24, 24, 4}, 2},
	{"M12", 192, 64, 1728, 1728, [3]int{24, 24, 6}, 2},
	{"M16", 192, 64, 1728, 2304, [3]int{24, 24, 8}, 2},
	{"M24", 192, 64, 1728, 3456, [3]int{24, 24, 12}, 2},
	{"M32", 192, 64, 1728, 4608, [3]int{24, 24, 16}, 2},
	{"L48", 384, 64, 3456, 6912, [3]int{48, 48, 6}, 2},
	{"L64", 384, 64, 3456, 9216, [3]int{48, 48, 8}, 2},
	{"L96", 384, 64, 3456, 13824, [3]int{48, 48, 12}, 2},
	{"L128", 384, 64, 3456, 18432, [3]int{48, 48, 16}, 2},
	{"L256", 384, 64, 3456, 36864, [3]int{48, 48, 32}, 2},
	{"H384", 768, 64, 6912, 55296, [3]int{96, 96, 24}, 4},
	{"H512", 768, 64, 6912, 73728, [3]int{96, 96, 32}, 4},
	{"H768", 768, 64, 6912, 110592, [3]int{96, 96, 48}, 4},
	{"H1024", 768, 64, 6912, 147456, [3]int{96, 96, 64}, 4},
	{"U1024", 1152, 64, 6912, 147456, [3]int{48, 48, 128}, 2},
}

// FindRun returns the Table 2 entry with the given ID.
func FindRun(id string) (Run, error) {
	for _, r := range Table2 {
		if r.ID == id {
			return r, nil
		}
	}
	return Run{}, fmt.Errorf("machine: unknown run %q", id)
}

// Group returns the runs whose ID starts with the group letter, in table
// order (used for strong-scaling sequences).
func Group(letter string) []Run {
	var out []Run
	for _, r := range Table2 {
		if r.ID[:1] == letter {
			out = append(out, r)
		}
	}
	return out
}

// WeakSequence is the paper's weak-scaling chain S2 → M16 → L128 → H1024:
// per-node load is constant (8× cells, 8× nodes at each hop).
func WeakSequence() []Run {
	ids := []string{"S2", "M16", "L128", "H1024"}
	out := make([]Run, 0, len(ids))
	for _, id := range ids {
		r, err := FindRun(id)
		if err != nil {
			panic(err) // static table; cannot happen
		}
		out = append(out, r)
	}
	return out
}
