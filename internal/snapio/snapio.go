// Package snapio reads and writes simulation snapshots in a simple
// checksummed little-endian binary format. Snapshot volume is what the
// paper's end-to-end time-to-solution measurement charges to I/O (733 s of
// the 1.92 h H1024 run), so the writers report byte counts to the caller.
//
// Layout (v1): a fixed header (magic, version, scale factor, time, box,
// particle and grid shapes), followed by the particle section (positions,
// velocities as float64) and, when present, the phase-space section
// (float32 cube data), each section followed by its CRC-32 (IEEE).
//
// Format v2 adds a second particle section for the ν-particle baseline
// (the §5.4 TianNu-style control runs): the header grows a neutrino
// particle count and mass after the grid box, and the neutrino section
// (same layout as the CDM one) follows the CDM particle section. The
// writer emits v2 only when the snapshot carries neutrino particles, so
// Vlasov-mode and pure-N-body snapshots stay byte-identical to v1; the
// reader accepts both versions.
package snapio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"vlasov6d/internal/nbody"
	"vlasov6d/internal/phase"
)

// Magic identifies format v1 ("V6D" + version byte).
const Magic = 0x56364431 // "V6D1"

// MagicV2 identifies format v2, which carries the optional second
// (ν-particle) section.
const MagicV2 = 0x56364432 // "V6D2"

// Snapshot bundles the state written to disk.
type Snapshot struct {
	A    float64
	Time float64
	Part *nbody.Particles
	Grid *phase.Grid // optional
	// NuPart holds the particle-sampled neutrinos of the §5.4 baseline
	// mode (optional; forces format v2 on write).
	NuPart *nbody.Particles
}

// Probe reads just the fixed header prefix of a snapshot file and reports
// its snapio format version (1 or 2) and the scale factor it was taken at.
// ok is false when the file does not start with a snapio magic — solvers
// with private checkpoint formats (the 1D1V plasma solver) share the
// runner's ckpt_*.v6d naming, so an artifact listing uses Probe to tell
// which files a snapio reader can open without decoding whole snapshots.
func Probe(r io.Reader) (version int, a float64, ok bool) {
	var b [16]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, 0, false
	}
	le := binary.LittleEndian
	switch le.Uint64(b[:8]) {
	case Magic:
		version = 1
	case MagicV2:
		version = 2
	default:
		return 0, 0, false
	}
	return version, math.Float64frombits(le.Uint64(b[8:16])), true
}

// countingWriter tracks bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Write serialises the snapshot and returns the number of bytes written.
func Write(w io.Writer, s *Snapshot) (int64, error) {
	if s == nil || s.Part == nil {
		return 0, fmt.Errorf("snapio: nil snapshot or particles")
	}
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<20)
	le := binary.LittleEndian

	writeU64 := func(h hash.Hash32, v uint64) error {
		var b [8]byte
		le.PutUint64(b[:], v)
		if h != nil {
			h.Write(b[:])
		}
		_, err := bw.Write(b[:])
		return err
	}
	writeF64 := func(h hash.Hash32, v float64) error {
		return writeU64(h, math.Float64bits(v))
	}

	// Header. The magic doubles as the version: v2 only when the optional
	// ν-particle section is present, so v1-shaped snapshots stay
	// byte-identical to the v1 writer.
	magic := uint64(Magic)
	if s.NuPart != nil {
		magic = MagicV2
	}
	hdr := crc32.NewIEEE()
	if err := writeU64(hdr, magic); err != nil {
		return cw.n, err
	}
	if err := writeF64(hdr, s.A); err != nil {
		return cw.n, err
	}
	if err := writeF64(hdr, s.Time); err != nil {
		return cw.n, err
	}
	if err := writeU64(hdr, uint64(s.Part.N)); err != nil {
		return cw.n, err
	}
	if err := writeF64(hdr, s.Part.Mass); err != nil {
		return cw.n, err
	}
	for d := 0; d < 3; d++ {
		if err := writeF64(hdr, s.Part.Box[d]); err != nil {
			return cw.n, err
		}
	}
	// Grid shape (zeros when absent).
	var gdims [7]uint64
	if s.Grid != nil {
		gdims = [7]uint64{
			uint64(s.Grid.NX), uint64(s.Grid.NY), uint64(s.Grid.NZ),
			uint64(s.Grid.NU[0]), uint64(s.Grid.NU[1]), uint64(s.Grid.NU[2]),
			math.Float64bits(s.Grid.UMax),
		}
	}
	for _, v := range gdims {
		if err := writeU64(hdr, v); err != nil {
			return cw.n, err
		}
	}
	if s.Grid != nil {
		for d := 0; d < 3; d++ {
			if err := writeF64(hdr, s.Grid.Box[d]); err != nil {
				return cw.n, err
			}
		}
	} else {
		for d := 0; d < 3; d++ {
			if err := writeF64(hdr, 0); err != nil {
				return cw.n, err
			}
		}
	}
	if s.NuPart != nil {
		if err := writeU64(hdr, uint64(s.NuPart.N)); err != nil {
			return cw.n, err
		}
		if err := writeF64(hdr, s.NuPart.Mass); err != nil {
			return cw.n, err
		}
	}
	if err := writeU64(nil, uint64(hdr.Sum32())); err != nil {
		return cw.n, err
	}

	// Particle section.
	ps := crc32.NewIEEE()
	buf := make([]byte, 8)
	writeFloats := func(h hash.Hash32, vals []float64) error {
		for _, v := range vals {
			le.PutUint64(buf, math.Float64bits(v))
			h.Write(buf)
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
		return nil
	}
	for d := 0; d < 3; d++ {
		if err := writeFloats(ps, s.Part.Pos[d]); err != nil {
			return cw.n, err
		}
	}
	for d := 0; d < 3; d++ {
		if err := writeFloats(ps, s.Part.Vel[d]); err != nil {
			return cw.n, err
		}
	}
	if err := writeU64(nil, uint64(ps.Sum32())); err != nil {
		return cw.n, err
	}

	// ν-particle section (v2 only), same layout as the CDM section.
	if s.NuPart != nil {
		ns := crc32.NewIEEE()
		for d := 0; d < 3; d++ {
			if err := writeFloats(ns, s.NuPart.Pos[d]); err != nil {
				return cw.n, err
			}
		}
		for d := 0; d < 3; d++ {
			if err := writeFloats(ns, s.NuPart.Vel[d]); err != nil {
				return cw.n, err
			}
		}
		if err := writeU64(nil, uint64(ns.Sum32())); err != nil {
			return cw.n, err
		}
	}

	// Phase-space section.
	if s.Grid != nil {
		gs := crc32.NewIEEE()
		b4 := make([]byte, 4)
		for _, v := range s.Grid.Data {
			le.PutUint32(b4, math.Float32bits(v))
			gs.Write(b4)
			if _, err := bw.Write(b4); err != nil {
				return cw.n, err
			}
		}
		if err := writeU64(nil, uint64(gs.Sum32())); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Read deserialises a snapshot, verifying every checksum.
func Read(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	le := binary.LittleEndian
	readU64 := func(h hash.Hash32) (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		if h != nil {
			h.Write(b[:])
		}
		return le.Uint64(b[:]), nil
	}
	readF64 := func(h hash.Hash32) (float64, error) {
		v, err := readU64(h)
		return math.Float64frombits(v), err
	}

	hdr := crc32.NewIEEE()
	magic, err := readU64(hdr)
	if err != nil {
		return nil, err
	}
	if magic != Magic && magic != MagicV2 {
		return nil, fmt.Errorf("snapio: bad magic %#x", magic)
	}
	v2 := magic == MagicV2
	s := &Snapshot{}
	if s.A, err = readF64(hdr); err != nil {
		return nil, err
	}
	if s.Time, err = readF64(hdr); err != nil {
		return nil, err
	}
	n64, err := readU64(hdr)
	if err != nil {
		return nil, err
	}
	mass, err := readF64(hdr)
	if err != nil {
		return nil, err
	}
	var box [3]float64
	for d := 0; d < 3; d++ {
		if box[d], err = readF64(hdr); err != nil {
			return nil, err
		}
	}
	var gdims [7]uint64
	for i := range gdims {
		if gdims[i], err = readU64(hdr); err != nil {
			return nil, err
		}
	}
	var gbox [3]float64
	for d := 0; d < 3; d++ {
		if gbox[d], err = readF64(hdr); err != nil {
			return nil, err
		}
	}
	var nuN64 uint64
	var nuMass float64
	if v2 {
		if nuN64, err = readU64(hdr); err != nil {
			return nil, err
		}
		if nuMass, err = readF64(hdr); err != nil {
			return nil, err
		}
	}
	wantSum := hdr.Sum32()
	sum, err := readU64(nil)
	if err != nil {
		return nil, err
	}
	if uint32(sum) != wantSum {
		return nil, fmt.Errorf("snapio: header checksum mismatch")
	}

	part, err := nbody.NewParticles(int(n64), mass, box)
	if err != nil {
		return nil, err
	}
	ps := crc32.NewIEEE()
	readFloats := func(h hash.Hash32, dst []float64) error {
		b := make([]byte, 8)
		for i := range dst {
			if _, err := io.ReadFull(br, b); err != nil {
				return err
			}
			h.Write(b)
			dst[i] = math.Float64frombits(le.Uint64(b))
		}
		return nil
	}
	for d := 0; d < 3; d++ {
		if err := readFloats(ps, part.Pos[d]); err != nil {
			return nil, err
		}
	}
	for d := 0; d < 3; d++ {
		if err := readFloats(ps, part.Vel[d]); err != nil {
			return nil, err
		}
	}
	wantSum = ps.Sum32()
	if sum, err = readU64(nil); err != nil {
		return nil, err
	}
	if uint32(sum) != wantSum {
		return nil, fmt.Errorf("snapio: particle checksum mismatch")
	}
	s.Part = part

	if v2 && nuN64 > 0 {
		nuPart, err := nbody.NewParticles(int(nuN64), nuMass, box)
		if err != nil {
			return nil, err
		}
		ns := crc32.NewIEEE()
		for d := 0; d < 3; d++ {
			if err := readFloats(ns, nuPart.Pos[d]); err != nil {
				return nil, err
			}
		}
		for d := 0; d < 3; d++ {
			if err := readFloats(ns, nuPart.Vel[d]); err != nil {
				return nil, err
			}
		}
		wantSum = ns.Sum32()
		if sum, err = readU64(nil); err != nil {
			return nil, err
		}
		if uint32(sum) != wantSum {
			return nil, fmt.Errorf("snapio: ν-particle checksum mismatch")
		}
		s.NuPart = nuPart
	}

	if gdims[0] > 0 {
		g, err := phase.New(int(gdims[0]), int(gdims[1]), int(gdims[2]),
			[3]int{int(gdims[3]), int(gdims[4]), int(gdims[5])},
			gbox, math.Float64frombits(gdims[6]))
		if err != nil {
			return nil, err
		}
		gs := crc32.NewIEEE()
		b4 := make([]byte, 4)
		for i := range g.Data {
			if _, err := io.ReadFull(br, b4); err != nil {
				return nil, err
			}
			gs.Write(b4)
			g.Data[i] = math.Float32frombits(le.Uint32(b4))
		}
		wantSum = gs.Sum32()
		if sum, err = readU64(nil); err != nil {
			return nil, err
		}
		if uint32(sum) != wantSum {
			return nil, fmt.Errorf("snapio: phase-space checksum mismatch")
		}
		s.Grid = g
	}
	return s, nil
}
