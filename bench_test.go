// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus component and ablation benches for the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Table/figure benches print their artefact once (the same rows the paper
// reports) and then time the underlying workload.
package vlasov6d

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"vlasov6d/internal/advect"
	"vlasov6d/internal/analysis"
	"vlasov6d/internal/cosmo"
	"vlasov6d/internal/fft"
	"vlasov6d/internal/hybrid"
	"vlasov6d/internal/kernel"
	"vlasov6d/internal/machine"
	"vlasov6d/internal/nbody"
	"vlasov6d/internal/phase"
	"vlasov6d/internal/plasma"
	"vlasov6d/internal/poisson"
	"vlasov6d/internal/tree"
	"vlasov6d/internal/treepm"
	"vlasov6d/internal/units"
	"vlasov6d/internal/vlasov"
)

var printOnce sync.Once

// ---------------------------------------------------------------- Table 1

// benchSweep times one direction × mode of the Table 1 kernel study.
func benchSweep(b *testing.B, axis int, mode kernel.Mode) {
	b.Helper()
	br, err := kernel.NewBrick(6, 6, 6, 24, 24, 24)
	if err != nil {
		b.Fatal(err)
	}
	for i := range br.Data {
		br.Data[i] = 1
	}
	cells := len(br.Data)
	b.SetBytes(int64(4 * cells))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Sweep(axis, mode, 0.3); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cells)*kernel.FlopsPerCell*float64(b.N)/b.Elapsed().Seconds()/1e9,
		"Gflops")
}

func BenchmarkTable1_ux_woSIMD(b *testing.B) { benchSweep(b, 3, kernel.Strided) }
func BenchmarkTable1_ux_wSIMD(b *testing.B)  { benchSweep(b, 3, kernel.Contig) }
func BenchmarkTable1_uy_woSIMD(b *testing.B) { benchSweep(b, 4, kernel.Strided) }
func BenchmarkTable1_uy_wSIMD(b *testing.B)  { benchSweep(b, 4, kernel.Contig) }
func BenchmarkTable1_uz_woSIMD(b *testing.B) { benchSweep(b, 5, kernel.Strided) }
func BenchmarkTable1_uz_gather(b *testing.B) { benchSweep(b, 5, kernel.Contig) }
func BenchmarkTable1_uz_LAT(b *testing.B)    { benchSweep(b, 5, kernel.LAT) }
func BenchmarkTable1_x_woSIMD(b *testing.B)  { benchSweep(b, 0, kernel.Strided) }
func BenchmarkTable1_x_wSIMD(b *testing.B)   { benchSweep(b, 0, kernel.Contig) }
func BenchmarkTable1_y_wSIMD(b *testing.B)   { benchSweep(b, 1, kernel.Contig) }
func BenchmarkTable1_z_wSIMD(b *testing.B)   { benchSweep(b, 2, kernel.Contig) }

// BenchmarkTable1Full prints the complete Table 1 reproduction once.
func BenchmarkTable1Full(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := kernel.Measure(kernel.Table1Config{
			NX: 6, NY: 6, NZ: 6, NUX: 16, NUY: 16, NUZ: 16, Reps: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce.Do(func() { kernel.WriteTable1(os.Stdout, rows) })
		}
	}
}

// ------------------------------------------------------- Tables 2–4, Fig 7

var table3Once, table4Once, fig7Once, ttsOnce sync.Once

// BenchmarkTable3Weak regenerates the weak-scaling table from the machine
// model (printed once) and times the model evaluation.
func BenchmarkTable3Weak(b *testing.B) {
	m, err := machine.New(machine.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	table3Once.Do(func() { _ = m.WriteTable3(os.Stdout) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.WeakScaling(machine.WeakSequence()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Strong regenerates the strong-scaling table.
func BenchmarkTable4Strong(b *testing.B) {
	m, err := machine.New(machine.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	table4Once.Do(func() { _ = m.WriteTable4(os.Stdout) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range []string{"S", "M", "L", "H"} {
			if _, err := m.StrongScaling(machine.Group(g)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig7 regenerates the per-step wall-time decomposition series.
func BenchmarkFig7(b *testing.B) {
	m, err := machine.New(machine.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	fig7Once.Do(func() { m.WriteFig7(os.Stdout) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := m.Fig7Series()
		if len(rows) != len(machine.Table2) {
			b.Fatal("short series")
		}
	}
}

// BenchmarkTTS regenerates the §7.2 time-to-solution comparison.
func BenchmarkTTS(b *testing.B) {
	m, err := machine.New(machine.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	ttsOnce.Do(func() { m.WriteTTS(os.Stdout, machine.DefaultTTS()) })
	h, err := machine.FindRun("H1024")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.TimeToSolution(h, machine.DefaultTTS())
		if res.SpeedupVsTianNu < 1 {
			b.Fatal("speedup claim lost")
		}
	}
}

// ----------------------------------------------------------- Figs 4, 5, 6

// fig4Sim builds the small hybrid run used by the figure benches.
func fig4Sim(b *testing.B, mnu float64, nuParticles bool) *hybrid.Simulation {
	b.Helper()
	cfg := hybrid.Config{
		Par:         cosmo.Planck2015(mnu),
		Box:         200,
		NGrid:       8,
		NU:          8,
		NPartSide:   8,
		PMFactor:    2,
		Seed:        3,
		NuParticles: nuParticles,
	}
	sim, err := hybrid.New(cfg, 1.0/11)
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

// BenchmarkFig4Workload times one full hybrid step of the Fig. 4 run
// (the projected-density-map workload is dominated by stepping).
func BenchmarkFig4Workload(b *testing.B) {
	sim := fig4Sim(b, 0.4, false)
	dt := sim.Cfg.Par.CosmicTime(sim.A) * 0.02
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(dt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Workload times the velocity-plane extraction (Fig. 5) from a
// live grid.
func BenchmarkFig5Workload(b *testing.B) {
	sim := fig4Sim(b, 0.4, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := analysis.VelocityPlane(sim.Grid, 4, 4, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Moments times the moment maps on both sides of the Fig. 6
// comparison: Vlasov moments and particle moments.
func BenchmarkFig6Moments(b *testing.B) {
	simV := fig4Sim(b, 0.4, false)
	simP := fig4Sim(b, 0.4, true)
	n3 := [3]int{simV.Grid.NX, simV.Grid.NY, simV.Grid.NZ}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = simV.Grid.ComputeMoments()
		if _, err := analysis.MomentsFromParticles(simP.NuPart, n3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Projection times the multi-scale projection of Fig. 8.
func BenchmarkFig8Projection(b *testing.B) {
	sim := fig4Sim(b, 0.4, false)
	m := sim.Grid.ComputeMoments()
	n3 := [3]int{sim.Grid.NX, sim.Grid.NY, sim.Grid.NZ}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := analysis.Project(m.Density, n3, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --------------------------------------------- scheme ablations (§5.2 claim)

// benchScheme1D times one advection step per scheme on a fixed line — the
// single-stage vs three-stage cost argument of §5.2.
func benchScheme1D(b *testing.B, name string, cflMax float64) {
	s, err := advect.New(name)
	if err != nil {
		b.Fatal(err)
	}
	line := make([]float64, 512)
	for i := range line {
		line[i] = 2 + math.Sin(2*math.Pi*float64(i)/512)
	}
	b.SetBytes(int64(8 * len(line)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(line, cflMax); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchemeSLMPP5(b *testing.B)  { benchScheme1D(b, "slmpp5", 0.9) }
func BenchmarkSchemeMP5RK3(b *testing.B)  { benchScheme1D(b, "mp5", 0.9) }
func BenchmarkSchemeUpwind1(b *testing.B) { benchScheme1D(b, "upwind1", 0.9) }

// BenchmarkSchemeSLMPP5LargeCFL demonstrates the unique SL capability: a
// CFL-3 step in one stage (the three-stage comparator simply cannot).
func BenchmarkSchemeSLMPP5LargeCFL(b *testing.B) { benchScheme1D(b, "slmpp5", 3.2) }

// ------------------------------------------------- component micro-benches

// BenchmarkVlasovStep6D times one full 6D split step (eq. 5).
func BenchmarkVlasovStep6D(b *testing.B) {
	g, err := phase.New(8, 8, 8, [3]int{8, 8, 8}, [3]float64{100, 100, 100}, 3000)
	if err != nil {
		b.Fatal(err)
	}
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		return math.Exp(-(ux*ux + uy*uy + uz*uz) / (2 * 800 * 800))
	})
	s, err := vlasov.New(g, "slmpp5")
	if err != nil {
		b.Fatal(err)
	}
	var acc [3][]float64
	for d := 0; d < 3; d++ {
		acc[d] = make([]float64, g.NCells())
		for c := range acc[d] {
			acc[d][c] = 30
		}
	}
	b.SetBytes(int64(4 * len(g.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(0.001, 1.0, acc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g.Data))*9*float64(b.N)/b.Elapsed().Seconds()/1e6,
		"Mcell-sweeps/s")
}

// BenchmarkMoments times the per-cell velocity-moment reduction.
func BenchmarkMoments(b *testing.B) {
	g, err := phase.New(8, 8, 8, [3]int{8, 8, 8}, [3]float64{100, 100, 100}, 3000)
	if err != nil {
		b.Fatal(err)
	}
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 { return 1 })
	b.SetBytes(int64(4 * len(g.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ComputeMoments()
	}
}

// BenchmarkFFT3 times the 3D transform at PM-mesh scale.
func BenchmarkFFT3(b *testing.B) {
	n := 64
	f3, err := fft.NewFFT3(n, n, n)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]complex128, n*n*n)
	for i := range data {
		data[i] = complex(float64(i%17), 0)
	}
	b.SetBytes(int64(16 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f3.Forward(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoissonSolve times the PM potential solve.
func BenchmarkPoissonSolve(b *testing.B) {
	s, err := poisson.NewSolver([3]int{64, 64, 64}, [3]float64{200, 200, 200})
	if err != nil {
		b.Fatal(err)
	}
	src := make([]float64, s.Size())
	for i := range src {
		src[i] = math.Sin(float64(i))
	}
	phi := make([]float64, s.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(src, 1, phi); err != nil {
			b.Fatal(err)
		}
	}
}

// phantomParticles builds a clustered particle set for the kernel benches.
func phantomParticles(b *testing.B, n int) *nbody.Particles {
	b.Helper()
	p, err := nbody.NewParticles(n, 1, [3]float64{100, 100, 100})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p.Pos[0][i] = math.Mod(float64(i)*17.77, 100)
		p.Pos[1][i] = math.Mod(float64(i)*5.33, 100)
		p.Pos[2][i] = math.Mod(float64(i)*29.1, 100)
	}
	return p
}

// BenchmarkPhantomGRAPEBatched times the tabulated branch-light force
// kernel (the paper's 1.2×10⁹ interactions/s path).
func BenchmarkPhantomGRAPEBatched(b *testing.B) { benchTreeKernel(b, false) }

// BenchmarkPhantomGRAPEScalar times the erfc-per-pair baseline (the paper's
// 2.4×10⁷ interactions/s path).
func BenchmarkPhantomGRAPEScalar(b *testing.B) { benchTreeKernel(b, true) }

func benchTreeKernel(b *testing.B, scalar bool) {
	p := phantomParticles(b, 3000)
	tr, err := tree.Build(p, tree.Options{Theta: 0.5, RSplit: 5, Soft: 0.1, Scalar: scalar})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Accel([3]float64{50, 50, 50})
	}
}

// BenchmarkTreePMForce times the full force evaluation (PM + tree).
func BenchmarkTreePMForce(b *testing.B) {
	p := phantomParticles(b, 4096)
	s, err := treepm.New(treepm.Config{Mesh: [3]int{32, 32, 32}, Box: [3]float64{100, 100, 100}})
	if err != nil {
		b.Fatal(err)
	}
	var acc [3][]float64
	for d := 0; d < 3; d++ {
		acc[d] = make([]float64, p.N)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Accel(p, nil, 4*math.Pi*units.G, 1, acc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridStep times one fully-coupled step of the end-to-end system.
func BenchmarkHybridStep(b *testing.B) {
	sim := fig4Sim(b, 0.4, false)
	dt := sim.Cfg.Par.CosmicTime(sim.A) * 0.01
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(dt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBudgetedSweep runs the same multi-job Landau grid two ways —
// oversubscribed (every job defaults to GOMAXPROCS intra-step workers, so
// N concurrent jobs spawn N×GOMAXPROCS goroutines per sweep) and budgeted
// (the scheduler's CoreBudget divides the machine among the live jobs, so
// job-level × cell-level parallelism composes to GOMAXPROCS). Work is
// identical in both modes; the delta is pure scheduling overhead, and the
// budgeted mode must be no slower than the baseline it replaces.
func BenchmarkBudgetedSweep(b *testing.B) {
	const njobs = 4
	newJobs := func() []BatchJob {
		jobs := make([]BatchJob, njobs)
		for i := range jobs {
			jobs[i] = BatchJob{
				Name:  fmt.Sprintf("landau-%d", i),
				Until: 5,
				New: func() (Solver, error) {
					s, err := NewPlasmaSolverWithScheme(64, 128, 4*math.Pi, 8, "slmpp5")
					if err != nil {
						return nil, err
					}
					s.LandauInit(0.01, 0.5, 1)
					return s, nil
				},
			}
		}
		return jobs
	}
	for _, mode := range []struct {
		name string
		opts []BatchOption
	}{
		{"oversubscribed", nil},
		{"budgeted", []BatchOption{WithBatchCoreBudget(0)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ctx := context.Background()
			opts := append([]BatchOption{WithBatchWorkers(njobs)}, mode.opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := RunBatch(ctx, newJobs(), opts...)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Status != JobDone {
						b.Fatalf("job %s: %v (%v)", r.Name, r.Status, r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkPlasmaStep times a 1D1V step (the §8 extension workload).
func BenchmarkPlasmaStep(b *testing.B) {
	s, err := plasma.New(64, 256, 4*math.Pi, 8)
	if err != nil {
		b.Fatal(err)
	}
	s.LandauInit(0.01, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEq9Resolution times the effective-resolution calculator (trivial
// but keeps eq. (9) wired into the bench surface).
func BenchmarkEq9Resolution(b *testing.B) {
	sum := 0.0
	for i := 0; i < b.N; i++ {
		sum += machine.EffectiveResolution(1200, 13824, 100)
	}
	if sum < 0 {
		fmt.Fprintln(os.Stderr, sum)
	}
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationPMOnly times the hybrid step with the tree disabled —
// the control for the TreePM force-split design choice.
func BenchmarkAblationPMOnly(b *testing.B) {
	cfg := hybrid.Config{
		Par: cosmo.Planck2015(0.4), Box: 200,
		NGrid: 8, NU: 8, NPartSide: 8, PMFactor: 2, Seed: 3,
		NoTree: true,
	}
	sim, err := hybrid.New(cfg, 1.0/11)
	if err != nil {
		b.Fatal(err)
	}
	dt := cfg.Par.CosmicTime(sim.A) * 0.02
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(dt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSchemes compares the full 6D step cost across advection
// schemes (the §5.2 single-stage argument at system level). SL-MPP5's
// single flux stage vs MP5's three shows up directly in the step time.
func BenchmarkAblationSchemes(b *testing.B) {
	for _, scheme := range []string{"slmpp5", "mp5"} {
		b.Run(scheme, func(b *testing.B) {
			g, err := phase.New(6, 6, 6, [3]int{8, 8, 8}, [3]float64{100, 100, 100}, 3000)
			if err != nil {
				b.Fatal(err)
			}
			g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
				return math.Exp(-(ux*ux + uy*uy + uz*uz) / (2 * 800 * 800))
			})
			s, err := vlasov.New(g, scheme)
			if err != nil {
				b.Fatal(err)
			}
			var acc [3][]float64
			for d := 0; d < 3; d++ {
				acc[d] = make([]float64, g.NCells())
				for c := range acc[d] {
					acc[d][c] = 20
				}
			}
			// Keep CFL < 1 so MP5 is admissible.
			dt := 0.4 * g.DX(0) / g.UMax
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Step(dt, 1.0, acc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
