// Exponential decay-rate measurement for oscillating diagnostics — the
// standard way a Landau-damping run is reduced to one number. The field
// energy E(t) of a damped Langmuir wave oscillates under an envelope
// e^{2γt}; fitting ln E over the oscillation *peaks* recovers γ without
// the phase sensitivity of instantaneous ratios.
package analysis

import "math"

// DecayFit incrementally measures the exponential decay (or growth) rate of
// an oscillating positive signal from its local maxima. Feed samples in
// time order with Add; Gamma returns the least-squares slope of ln e over
// the detected peaks divided by two (energy ∝ amplitude², so the amplitude
// rate is half the energy rate). The zero value is ready to use.
type DecayFit struct {
	samples          int
	prev2, prev1     float64
	prevT            float64
	sx, sy, sxx, sxy float64
	peaks            int
}

// Add feeds the next (t, e) sample. Samples must arrive in increasing t;
// e must be positive at the peaks (ln is taken there).
func (f *DecayFit) Add(t, e float64) {
	if f.samples >= 2 && f.prev1 > f.prev2 && f.prev1 > e {
		pt, py := f.prevT, math.Log(f.prev1)
		f.sx += pt
		f.sy += py
		f.sxx += pt * pt
		f.sxy += pt * py
		f.peaks++
	}
	f.prev2, f.prev1, f.prevT = f.prev1, e, t
	f.samples++
}

// Peaks returns the number of local maxima detected so far. A trustworthy
// Gamma needs at least three.
func (f *DecayFit) Peaks() int { return f.peaks }

// Gamma returns the fitted amplitude rate γ (negative for damping) from
// ln e_peak ≈ 2γ·t + c, or 0 while fewer than two peaks are available.
func (f *DecayFit) Gamma() float64 {
	if f.peaks < 2 {
		return 0
	}
	n := float64(f.peaks)
	return (n*f.sxy - f.sx*f.sy) / (n*f.sxx - f.sx*f.sx) / 2
}
