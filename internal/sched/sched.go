// Package sched multiplexes many runner.Run calls over a bounded worker
// pool: the batch layer the unified Runner API was built to enable.
//
// The paper's production campaign is not one simulation but a matrix of
// them — scheme comparisons, resolution scalings, control runs — and the
// ROADMAP's north star is serving many scenarios concurrently rather than
// one hand-launched binary at a time. A batch is a slice of named Jobs,
// each a solver *factory* plus run options; the scheduler executes them on
// at most WithWorkers goroutines (default GOMAXPROCS, capped at the job
// count) under one shared context and, optionally, one shared wall-clock
// budget.
//
// Semantics:
//
//   - Solvers are constructed by the job's factory on the worker that runs
//     it, never up front, so a 100-job sweep holds at most `workers` live
//     simulations in memory.
//   - Results come back in job order, regardless of completion order, with
//     a per-job Status (Queued → Running → Done/Failed/Cancelled) and the
//     runner.Report of every job that ran.
//   - Cancelling the context stops running jobs through the runner's own
//     cancellation path and marks still-queued jobs Cancelled without
//     constructing their solvers.
//   - A shared wall-clock budget (WithWallClock) is a batch deadline: each
//     job starts with the remaining budget as its runner wall-clock limit.
//     Because the runner always takes at least one step under a positive
//     budget, late jobs still make forward progress after the deadline —
//     an exhausted budget degrades the batch to one-step-per-job fairness
//     instead of starving the tail of the queue.
//   - One job failing does not abort the batch (a sweep where one
//     configuration diverges should still deliver the rest); inspect each
//     Result. The batch-level error reports only scheduler-level problems:
//     an empty or invalid job list, or context cancellation.
//
// Jobs combine freely with the runner's async observer pipeline
// (runner.WithAsyncObserver in a job's Opts): each job then gets its own
// bounded diagnostics/checkpoint queue with the back-pressure policy it
// selects (block = lossless, drop-oldest = the step loop never waits), so
// a sweep's per-job I/O stays off every worker's hot loop.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"vlasov6d/internal/runner"
)

// Job is one named unit of batch work: a solver factory, the clock target
// to drive it to, and the runner options for its Run call.
type Job struct {
	// Name identifies the job in Results and progress updates.
	Name string
	// New constructs the solver. It runs on the worker goroutine executing
	// the job (not at submission), so per-job memory is bounded by the
	// worker count and an expensive construction (IC generation) counts
	// against the job's share of the batch, not the caller's.
	New func() (runner.Solver, error)
	// Until is the clock target handed to runner.Run.
	Until float64
	// Opts are the runner options for this job's Run call. The scheduler
	// may append a wall-clock option when the batch has a shared budget.
	Opts []runner.Option
}

// Status is the lifecycle state of a job in a batch.
type Status int

const (
	// Queued: not yet picked up by a worker.
	Queued Status = iota
	// Running: a worker is constructing or driving the solver.
	Running
	// Done: runner.Run returned without error (any stop reason).
	Done
	// Failed: the factory or runner.Run returned a non-cancellation error.
	Failed
	// Cancelled: the batch context was cancelled before or during the job.
	Cancelled
)

func (s Status) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Result is the outcome of one job. Results are returned in job order.
type Result struct {
	// Name echoes the job name.
	Name string
	// Status is the job's final state.
	Status Status
	// Report is the runner report of a job that ran (nil for jobs
	// cancelled while still queued or whose factory failed).
	Report *runner.Report
	// Err is the factory/run error of a Failed job, or the cancellation
	// error of a Cancelled job that was already running.
	Err error
}

// Update is one job status transition, delivered to the WithNotify callback
// as the batch executes — the hook progress tables hang off.
type Update struct {
	// Index is the job's position in the batch.
	Index int
	// Name echoes the job name.
	Name string
	// Status is the state just entered.
	Status Status
	// Err accompanies Failed and (when the job was running) Cancelled.
	Err error
	// Report accompanies Done and run-level failures.
	Report *runner.Report
}

type options struct {
	workers int
	wall    time.Duration
	notify  func(Update)
}

// Option configures a Scheduler or a RunBatch call.
type Option func(*options)

// WithWorkers bounds the worker pool (default GOMAXPROCS; always further
// capped at the number of jobs).
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithWallClock gives the whole batch one shared wall-clock budget. Each
// job starts with the budget remaining at its start time as its own
// runner wall-clock limit; once the budget is exhausted, every remaining
// job still takes at least one step (the runner's forward-progress
// guarantee), so a checkpoint-cadenced batch can be resumed job by job.
func WithWallClock(budget time.Duration) Option {
	return func(o *options) { o.wall = budget }
}

// WithNotify registers a callback for job status transitions. Calls are
// serialised by the scheduler, so the callback may print or mutate shared
// state without its own locking; it must not block for long (it stalls the
// notifying worker, not the whole batch).
func WithNotify(fn func(Update)) Option {
	return func(o *options) { o.notify = fn }
}

// Scheduler executes batches of jobs over a bounded worker pool. The zero
// value is not usable; construct with New. A Scheduler is stateless across
// batches and safe for concurrent Run calls.
type Scheduler struct {
	opts options
}

// New builds a scheduler with the given defaults.
func New(opts ...Option) (*Scheduler, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 0 {
		return nil, fmt.Errorf("sched: worker count %d must be non-negative", o.workers)
	}
	if o.wall < 0 {
		return nil, fmt.Errorf("sched: wall-clock budget %v must be non-negative", o.wall)
	}
	return &Scheduler{opts: o}, nil
}

// RunBatch executes jobs over a bounded worker pool — the one-call form of
// New(opts...).Run(ctx, jobs).
func RunBatch(ctx context.Context, jobs []Job, opts ...Option) ([]Result, error) {
	s, err := New(opts...)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx, jobs)
}

// Run executes the batch and returns one Result per job, in job order. The
// returned error is non-nil only for scheduler-level problems (invalid
// jobs, context cancellation); per-job failures are reported in Results.
func (s *Scheduler) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sched: empty batch")
	}
	for i, j := range jobs {
		if j.New == nil {
			return nil, fmt.Errorf("sched: job %d (%q) has no solver factory", i, j.Name)
		}
	}
	workers := s.opts.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var deadline time.Time
	if s.opts.wall > 0 {
		deadline = time.Now().Add(s.opts.wall)
	}

	results := make([]Result, len(jobs))
	for i, j := range jobs {
		results[i] = Result{Name: j.Name, Status: Queued}
	}

	var mu sync.Mutex // guards results transitions and serialises notify
	transition := func(i int, st Status, rep *runner.Report, err error) {
		mu.Lock()
		results[i].Status = st
		results[i].Report = rep
		results[i].Err = err
		fn := s.opts.notify
		if fn != nil {
			fn(Update{Index: i, Name: jobs[i].Name, Status: st, Err: err, Report: rep})
		}
		mu.Unlock()
	}

	// Work distribution: a closed channel of job indices. Workers stop
	// pulling as soon as the context dies; the post-wait sweep below marks
	// whatever they never picked up.
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range jobs {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				s.runJob(ctx, i, jobs[i], deadline, transition)
			}
		}()
	}
	wg.Wait()

	// Jobs the dispatcher never handed out (context cancelled) are still
	// Queued: mark them Cancelled so every Result reaches a final state.
	if err := ctx.Err(); err != nil {
		for i := range results {
			mu.Lock()
			queued := results[i].Status == Queued
			mu.Unlock()
			if queued {
				transition(i, Cancelled, nil, nil)
			}
		}
		return results, fmt.Errorf("sched: batch cancelled: %w", err)
	}
	return results, nil
}

// runJob executes one job on the calling worker goroutine.
func (s *Scheduler) runJob(ctx context.Context, i int, job Job, deadline time.Time,
	transition func(int, Status, *runner.Report, error)) {
	if ctx.Err() != nil {
		transition(i, Cancelled, nil, nil)
		return
	}
	transition(i, Running, nil, nil)
	solver, err := job.New()
	if err != nil {
		transition(i, Failed, nil, fmt.Errorf("sched: job %q: factory: %w", job.Name, err))
		return
	}
	opts := job.Opts
	if !deadline.IsZero() {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			// Budget exhausted before this job started: hand the runner the
			// smallest positive budget, which its forward-progress guarantee
			// turns into exactly one step — fairness for the queue's tail.
			remaining = time.Nanosecond
		}
		opts = append(opts[:len(opts):len(opts)], runner.WithWallClock(remaining))
	}
	rep, err := runner.Run(ctx, solver, job.Until, opts...)
	switch {
	case err == nil:
		transition(i, Done, rep, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		transition(i, Cancelled, rep, err)
	default:
		transition(i, Failed, rep, err)
	}
}
