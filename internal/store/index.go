// The artifact index: the durable memory of *finished* work. The journal
// (store.go) deliberately forgets terminal jobs — boot compaction drops
// them so the file stays proportional to the unfinished set — and the
// control plane's in-memory history is bounded (sched.WithJobHistory), so
// without this file a job that finished an hour ago on a busy daemon is
// unreachable: its status 404s and its checkpoints, still sitting on disk,
// are unlisted. Long-running physics monitors keep exactly this record —
// the T2K detector-ageing analysis spans a decade of runs precisely
// because every run's summary and artifacts stay queryable long after the
// acquisition process that produced them is gone.
//
// One IndexEntry per terminal job: the outcome, the final report summary,
// and the checkpoint artifacts the run left (name, size, clock, format —
// enough to serve a listing without touching the filesystem). Entries are
// CRC-framed JSON in index.v6di, appended at terminal time and fsynced;
// OpenIndex replays the file (truncating a torn tail like the journal)
// and compacts duplicates, keeping the newest entry per id.
package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"vlasov6d/internal/obs"
)

// indexName is the artifact index file inside the store directory.
const indexName = "index.v6di"

// Artifact describes one checkpoint file a finished job left behind.
type Artifact struct {
	// Name is the file name inside the job's checkpoint directory.
	Name string `json:"name"`
	// Bytes is the file size at terminal time.
	Bytes int64 `json:"bytes"`
	// Clock is the solver clock embedded in the file name.
	Clock float64 `json:"clock"`
	// Format tags what can open the file ("snapio-v1", "snapio-v2",
	// "solver").
	Format string `json:"format"`
}

// ReportSummary is the terminal runner report, flattened to the fields the
// status document serves.
type ReportSummary struct {
	Steps           int     `json:"steps"`
	Clock           float64 `json:"clock"`
	WallSeconds     float64 `json:"wall_seconds"`
	Reason          string  `json:"reason"`
	Checkpoints     int     `json:"checkpoints"`
	CheckpointBytes int64   `json:"checkpoint_bytes"`
	DroppedObs      int64   `json:"dropped_obs"`
}

// IndexEntry is one finished job's durable record.
type IndexEntry struct {
	// ID is the persistent external job id (the same id space as the
	// journal's).
	ID int `json:"id"`
	// Tenant names the owning tenant ("" when the daemon ran open) —
	// post-eviction queries stay tenant-scoped.
	Tenant string `json:"tenant,omitempty"`
	// Name is the job name, which keys the checkpoint directory.
	Name string `json:"name"`
	// Scenario echoes the spec's scenario.
	Scenario string `json:"scenario,omitempty"`
	// Status is the terminal outcome ("done", "failed", "cancelled");
	// Error describes a failure.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// SubmittedUnixNano / FinishedUnixNano bracket the job's lifetime.
	SubmittedUnixNano int64 `json:"submitted_unix_nano,omitempty"`
	FinishedUnixNano  int64 `json:"finished_unix_nano,omitempty"`
	// Report summarises the terminal runner report (nil when the job never
	// ran — a queued cancellation).
	Report *ReportSummary `json:"report,omitempty"`
	// Artifacts lists the checkpoint files at terminal time, oldest first.
	Artifacts []Artifact `json:"artifacts,omitempty"`
	// Trace is the job's lifecycle span timeline, snapshotted at terminal
	// time so it survives history eviction; TraceDropped counts spans the
	// bounded buffer evicted before the snapshot (0 = the timeline is
	// complete).
	Trace        []obs.Span `json:"trace,omitempty"`
	TraceDropped int64      `json:"trace_dropped,omitempty"`
}

// Submitted / Finished convert the wire timestamps.
func (e IndexEntry) SubmittedAt() time.Time { return time.Unix(0, e.SubmittedUnixNano) }
func (e IndexEntry) FinishedAt() time.Time  { return time.Unix(0, e.FinishedUnixNano) }

// Index is an open artifact index. All methods are safe for concurrent
// use.
type Index struct {
	dir string

	mu   sync.Mutex
	f    *os.File
	byID map[int]*IndexEntry
}

// OpenIndex replays (and compacts) the artifact index under dir, creating
// the directory and an empty index when none exists. A torn tail is
// truncated at the last whole entry; duplicate ids keep the newest entry.
// A stale index.v6di.tmp from a compaction killed mid-rewrite is removed
// unread — the rename never happened, so the real index is authoritative.
func OpenIndex(dir string) (*Index, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ix := &Index{dir: dir, byID: make(map[int]*IndexEntry)}
	os.Remove(ix.path() + ".tmp")
	if err := ix.replay(); err != nil {
		return nil, err
	}
	ix.mu.Lock()
	err := ix.compactLocked()
	ix.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// path is the index file path.
func (ix *Index) path() string { return filepath.Join(ix.dir, indexName) }

// replay reads every whole entry, truncating a torn or corrupt tail.
func (ix *Index) replay() error {
	f, err := os.OpenFile(ix.path(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// First-create durability: the file's directory entry must survive a
	// power loss, same as the journal's.
	if err := syncDir(ix.dir); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	good := int64(0)
	r := &countingReader{r: f}
	for {
		payload, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			break // torn tail: keep everything up to the last whole entry
		}
		good = r.n
		var e IndexEntry
		if json.Unmarshal(payload, &e) != nil {
			continue // unknown shape from a newer daemon: skip, keep reading
		}
		ix.byID[e.ID] = &e
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return fmt.Errorf("store: truncate torn index tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	ix.f = f
	return nil
}

// Compact rewrites the index to one entry per id (the newest),
// atomically, under the same mutex Put holds — safe to call on a live
// daemon.
func (ix *Index) Compact() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.compactLocked()
}

// compactLocked rewrites the index to one entry per id (the newest),
// atomically. A daemon that re-runs a recovered job terminal-journals it
// twice across lives; compaction keeps the file proportional to the
// distinct finished set. Callers hold ix.mu (or, during OpenIndex,
// exclusive access). The parent directory is fsynced after the rename —
// see compactLocked on Store for why.
func (ix *Index) compactLocked() error {
	if ix.f == nil {
		return fmt.Errorf("store: index closed")
	}
	tmp := ix.path() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: index compact: %w", err)
	}
	for _, e := range ix.entriesLocked() {
		payload, merr := json.Marshal(e)
		if merr != nil {
			err = merr
			break
		}
		if _, werr := writeFrame(f, payload); werr != nil {
			err = werr
			break
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: index compact: %w", err)
	}
	if err := os.Rename(tmp, ix.path()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: index compact: %w", err)
	}
	if err := syncDir(ix.dir); err != nil {
		return fmt.Errorf("store: index compact: %w", err)
	}
	ix.f.Close()
	f, err = os.OpenFile(ix.path(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen index after compact: %w", err)
	}
	ix.f = f
	return nil
}

// entriesLocked returns the entries in id order. Callers hold ix.mu (or,
// during OpenIndex, exclusive access).
func (ix *Index) entriesLocked() []*IndexEntry {
	out := make([]*IndexEntry, 0, len(ix.byID))
	for _, e := range ix.byID {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Put appends one terminal job's record and fsyncs it. A repeated id
// overwrites the in-memory entry; the duplicate frame is dropped at the
// next OpenIndex compaction.
func (ix *Index) Put(e IndexEntry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: index entry: %w", err)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.f == nil {
		return fmt.Errorf("store: index closed")
	}
	if _, err := writeFrame(ix.f, payload); err != nil {
		return fmt.Errorf("store: index append: %w", err)
	}
	if err := ix.f.Sync(); err != nil {
		return fmt.Errorf("store: index sync: %w", err)
	}
	ix.byID[e.ID] = &e
	return nil
}

// Get returns one finished job's record by id.
func (ix *Index) Get(id int) (IndexEntry, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e, ok := ix.byID[id]
	if !ok {
		return IndexEntry{}, false
	}
	return e.copyLocked(), true
}

// copyLocked deep-copies an entry so callers can serialise it after the
// lock drops. Span attr maps are shared read-only by convention (nothing
// mutates an indexed trace), so the span slice copy is shallow per element.
func (e *IndexEntry) copyLocked() IndexEntry {
	out := *e
	out.Artifacts = append([]Artifact(nil), e.Artifacts...)
	out.Trace = append([]obs.Span(nil), e.Trace...)
	if e.Report != nil {
		rep := *e.Report
		out.Report = &rep
	}
	return out
}

// Entries returns every indexed job's record, id order, deep-copied — the
// archived listing a control plane filters per tenant.
func (ix *Index) Entries() []IndexEntry {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	out := make([]IndexEntry, 0, len(ix.byID))
	for _, e := range ix.entriesLocked() {
		out = append(out, e.copyLocked())
	}
	return out
}

// Len returns the number of indexed jobs.
func (ix *Index) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.byID)
}

// Close closes the index file. Puts after Close fail.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.f == nil {
		return nil
	}
	err := ix.f.Close()
	ix.f = nil
	return err
}
