package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vlasov6d/internal/plasma"
	"vlasov6d/internal/runner"
)

// quickJob returns a job that finishes in a handful of trivial steps.
func quickJob(name string, priority int) Job {
	return Job{
		Name:     name,
		Until:    1,
		Priority: priority,
		New:      func() (runner.Solver, error) { return &fake{dt: 0.5}, nil },
	}
}

// drainAll reads Results to closure and returns everything delivered.
func drainAll(s *Stream) []Result {
	var out []Result
	for r := range s.Results() {
		out = append(out, r)
	}
	return out
}

func TestStreamRunsSubmittedJobs(t *testing.T) {
	s, err := NewStream(context.Background(), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 9
	for i := 0; i < n; i++ {
		if err := s.Submit(quickJob(fmt.Sprintf("j%d", i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	results := drainAll(s)
	if len(results) != n {
		t.Fatalf("%d results, want %d", len(results), n)
	}
	if s.Submitted() != n {
		t.Fatalf("Submitted() = %d", s.Submitted())
	}
	for _, r := range results {
		if r.Status != Done || r.Err != nil || r.Attempt != 1 {
			t.Fatalf("job %q: %v attempt %d err %v", r.Name, r.Status, r.Attempt, r.Err)
		}
		if r.Report == nil || r.Report.Reason != runner.ReasonUntil {
			t.Fatalf("job %q report %+v", r.Name, r.Report)
		}
	}
}

func TestStreamPriorityOrdering(t *testing.T) {
	// One worker; the first job blocks the pool while the rest are
	// submitted, so the heap alone decides dispatch order: highest
	// priority first, submission order within a priority.
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s, err := NewStream(context.Background(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	blocker := Job{
		Name:  "blocker",
		Until: 1,
		New: func() (runner.Solver, error) {
			return &fake{dt: 1, onStep: func() {
				once.Do(func() { close(started) })
				<-release
			}}, nil
		},
	}
	if err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	// Queued while the worker is held: two background jobs, then an
	// urgent one submitted last but dispatched first, then a tiebreak
	// pair proving FIFO within a priority.
	for _, j := range []Job{
		quickJob("bg-1", 0),
		quickJob("bg-2", 0),
		quickJob("urgent", 10),
		quickJob("mid-1", 5),
		quickJob("mid-2", 5),
	} {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if d := s.Pending(); d != 5 {
		t.Fatalf("queue depth %d, want 5", d)
	}
	close(release)
	s.Close()
	var order []string
	for r := range s.Results() {
		if r.Status != Done {
			t.Fatalf("job %q: %v (%v)", r.Name, r.Status, r.Err)
		}
		order = append(order, r.Name)
	}
	want := []string{"blocker", "urgent", "mid-1", "mid-2", "bg-1", "bg-2"}
	if len(order) != len(want) {
		t.Fatalf("completion order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
}

func TestStreamRetryThenSucceed(t *testing.T) {
	var attempts atomic.Int64
	var mu sync.Mutex
	var seen []Status
	s, err := NewStream(context.Background(), WithWorkers(1),
		WithRetries(3), WithRetryBackoff(time.Millisecond),
		WithNotify(func(u Update) {
			mu.Lock()
			seen = append(seen, u.Status)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{
		Name:  "flaky",
		Until: 1,
		New: func() (runner.Solver, error) {
			if attempts.Add(1) < 3 {
				return nil, runner.MarkRetryable(errors.New("transient"))
			}
			return &fake{dt: 0.5}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	results := drainAll(s)
	if len(results) != 1 {
		t.Fatalf("%d results", len(results))
	}
	r := results[0]
	if r.Status != Done || r.Attempt != 3 || r.Err != nil {
		t.Fatalf("flaky job: %v attempt %d err %v", r.Status, r.Attempt, r.Err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []Status{Running, Retrying, Running, Retrying, Running, Done}
	if !statusSeqEq(seen, want) {
		t.Fatalf("transitions %v, want %v", seen, want)
	}
}

func TestStreamRetryExhaustion(t *testing.T) {
	sentinel := errors.New("disk still full")
	var attempts atomic.Int64
	s, err := NewStream(context.Background(), WithWorkers(1),
		WithRetries(2), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{
		Name:  "doomed",
		Until: 1,
		New: func() (runner.Solver, error) {
			attempts.Add(1)
			return nil, runner.MarkRetryable(sentinel)
		},
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := drainAll(s)[0]
	if r.Status != Failed || !errors.Is(r.Err, sentinel) {
		t.Fatalf("doomed job: %v %v", r.Status, r.Err)
	}
	if r.Attempt != 3 || attempts.Load() != 3 {
		t.Fatalf("attempt %d, factory calls %d, want 3 each", r.Attempt, attempts.Load())
	}
}

func TestStreamNonRetryableFailsFast(t *testing.T) {
	sentinel := errors.New("deterministic divergence")
	var attempts atomic.Int64
	s, err := NewStream(context.Background(), WithWorkers(1),
		WithRetries(5), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{
		Name:  "divergent",
		Until: 1,
		New: func() (runner.Solver, error) {
			attempts.Add(1)
			return nil, sentinel // unmarked: retrying cannot help
		},
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := drainAll(s)[0]
	if r.Status != Failed || !errors.Is(r.Err, sentinel) {
		t.Fatalf("divergent job: %v %v", r.Status, r.Err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("%d attempts on a non-retryable failure", attempts.Load())
	}
}

func TestStreamSubmitAfterCloseErrors(t *testing.T) {
	s, err := NewStream(context.Background(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Submit(quickJob("late", 0)); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Submit after Close: %v, want ErrStreamClosed", err)
	}
	if err := s.Submit(Job{Name: "no-factory", Until: 1}); err == nil {
		t.Fatal("job without factory accepted")
	}
	drainAll(s)
	// Close is idempotent.
	s.Close()
}

func TestStreamSubmitAfterCancelErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewStream(ctx, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := s.Submit(quickJob("dead", 0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit after cancel: %v, want wrapped context.Canceled", err)
	}
	drainAll(s)
}

func TestStreamDrainOnCancelLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewStream(ctx, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	// Three jobs occupy every worker with never-finishing runs; five more
	// wait in the queue and must come back Cancelled without running.
	var stepped atomic.Int64
	for i := 0; i < 8; i++ {
		if err := s.Submit(Job{
			Name:  fmt.Sprintf("j%d", i),
			Until: 1e9,
			New: func() (runner.Solver, error) {
				return &fake{dt: 0.1, sleep: time.Millisecond,
					onStep: func() { stepped.Add(1) }}, nil
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for stepped.Load() < 3 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	results := drainAll(s)
	if len(results) != 8 {
		t.Fatalf("%d results after cancel, want 8", len(results))
	}
	for _, r := range results {
		if r.Status != Cancelled {
			t.Fatalf("job %q: %v after cancel", r.Name, r.Status)
		}
	}
	<-s.done

	// Every stream goroutine (workers, closer, cancellation watcher) must
	// be gone; allow the runtime a moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still alive, started with %d", g, before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStreamCloseLeavesNoGoroutines(t *testing.T) {
	// The graceful path must also release the cancellation watcher, whose
	// ctx never fires.
	before := runtime.NumGoroutine()
	s, err := NewStream(context.Background(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Submit(quickJob(fmt.Sprintf("j%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if n := len(drainAll(s)); n != 4 {
		t.Fatalf("%d results", n)
	}
	<-s.done
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still alive, started with %d", g, before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// landauStreamJob builds the plasma job the checkpoint-resume tests share:
// deterministic fixed-dt Landau damping with a restore hook, and a reference
// to the live solver so tests can inspect final state.
func landauStreamJob(t *testing.T, until float64, live **plasma.Solver, cancelAt int, cancel context.CancelFunc) Job {
	t.Helper()
	const dt = 0.05
	opts := []runner.Option{runner.WithFixedDT(dt)}
	if cancelAt > 0 {
		opts = append(opts, runner.WithObserver(func(step int, _ runner.Solver) error {
			if step == cancelAt {
				cancel()
			}
			return nil
		}))
	}
	return Job{
		Name:  "landau 32x64", // the space exercises name sanitisation
		Until: until,
		Opts:  opts,
		New: func() (runner.Solver, error) {
			s, err := plasma.New(32, 64, 4*math.Pi, 6)
			if err != nil {
				return nil, err
			}
			s.LandauInit(0.01, 0.5, 1)
			*live = s
			return s, nil
		},
		Restore: func(path string) (runner.Solver, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			s, err := plasma.Restore(f)
			if err != nil {
				return nil, err
			}
			*live = s
			return s, nil
		},
	}
}

func TestStreamCheckpointResumeBitIdentical(t *testing.T) {
	// Kill a checkpointing job mid-run, re-submit it on a fresh stream,
	// and require the resumed run to finish in exactly the state of an
	// uninterrupted one — same clock, same bits.
	const until = 2.0
	dir := t.TempDir()

	// Uninterrupted reference.
	var ref *plasma.Solver
	refStream, err := NewStream(context.Background(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := refStream.Submit(landauStreamJob(t, until, &ref, 0, nil)); err != nil {
		t.Fatal(err)
	}
	refStream.Close()
	if r := drainAll(refStream)[0]; r.Status != Done {
		t.Fatalf("reference run: %v (%v)", r.Status, r.Err)
	}

	// First attempt: checkpoints every 5 steps, killed after step 12 —
	// past the checkpoints at steps 5 and 10, mid-flight to the next.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var killed *plasma.Solver
	s1, err := NewStream(ctx, WithWorkers(1),
		WithJobCheckpoints(dir), WithJobCheckpointEvery(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Submit(landauStreamJob(t, until, &killed, 12, cancel)); err != nil {
		t.Fatal(err)
	}
	if r := drainAll(s1)[0]; r.Status != Cancelled {
		t.Fatalf("killed run: %v (%v)", r.Status, r.Err)
	}
	jobDir := filepath.Join(dir, "landau_32x64")
	ckpts, err := runner.ListCheckpoints(jobDir)
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoints in %s (%v)", jobDir, err)
	}

	// Re-submission resumes from the newest snapshot instead of t = 0.
	var resumed *plasma.Solver
	s2, err := NewStream(context.Background(), WithWorkers(1),
		WithJobCheckpoints(dir), WithJobCheckpointEvery(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Submit(landauStreamJob(t, until, &resumed, 0, nil)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	r := drainAll(s2)[0]
	if r.Status != Done {
		t.Fatalf("resumed run: %v (%v)", r.Status, r.Err)
	}
	// 40 steps cover until = 2.0 at dt = 0.05; the resumed segment must be
	// strictly shorter — otherwise it recomputed from scratch.
	if r.Report.Steps >= 40 {
		t.Fatalf("resumed run took %d steps: did not resume", r.Report.Steps)
	}
	if resumed.Time != ref.Time {
		t.Fatalf("resumed clock %v, reference %v", resumed.Time, ref.Time)
	}
	for i := range ref.F {
		if resumed.F[i] != ref.F[i] {
			t.Fatalf("resumed state differs at %d: %v vs %v", i, resumed.F[i], ref.F[i])
		}
	}
}

func TestStreamCorruptNewestSnapshotQuarantined(t *testing.T) {
	// A corrupt newest snapshot must not wedge the job: it is renamed
	// *.corrupt and the next-newest (valid) snapshot restores.
	const until = 1.0
	dir := t.TempDir()
	jobDir := filepath.Join(dir, "landau_32x64")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A valid early snapshot...
	good, err := plasma.New(32, 64, 4*math.Pi, 6)
	if err != nil {
		t.Fatal(err)
	}
	good.LandauInit(0.01, 0.5, 1)
	for i := 0; i < 4; i++ {
		if err := good.Step(0.05); err != nil {
			t.Fatal(err)
		}
	}
	gf, err := os.Create(filepath.Join(jobDir, "ckpt_00000000.20000000.v6d"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.Checkpoint(gf); err != nil {
		t.Fatal(err)
	}
	gf.Close()
	// ...shadowed by a corrupt later one.
	corrupt := filepath.Join(jobDir, "ckpt_00000000.90000000.v6d")
	if err := os.WriteFile(corrupt, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	var live *plasma.Solver
	var coldStarts atomic.Int64
	job := landauStreamJob(t, until, &live, 0, nil)
	inner := job.New
	job.New = func() (runner.Solver, error) {
		coldStarts.Add(1)
		return inner()
	}
	s, err := NewStream(context.Background(), WithWorkers(1),
		WithJobCheckpoints(dir), WithJobCheckpointEvery(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := drainAll(s)[0]
	if r.Status != Done {
		t.Fatalf("job: %v (%v)", r.Status, r.Err)
	}
	if coldStarts.Load() != 0 {
		t.Fatal("fell back to a cold start despite a valid snapshot")
	}
	if _, err := os.Stat(corrupt + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	if live.Time != until {
		t.Fatalf("final clock %v, want %v", live.Time, until)
	}
}

// ckptFake is a fake that satisfies runner.Checkpointer, for stream tests
// that run trivial jobs under WithJobCheckpoints.
type ckptFake struct{ fake }

func (c *ckptFake) Checkpoint(w io.Writer) (int64, error) {
	n, err := w.Write([]byte{1})
	return int64(n), err
}

func TestStreamDuplicateActiveCheckpointKeyRejected(t *testing.T) {
	// Two concurrently-live jobs sharing a sanitised name would interleave
	// snapshots in one directory and cross-resume; Submit must reject the
	// second while the first is queued or running, and accept the same key
	// again once the first reaches a terminal state (the resume path).
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s, err := NewStream(context.Background(), WithWorkers(1),
		WithJobCheckpoints(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	blocker := Job{
		Name:  "a b", // sanitises to a_b
		Until: 1,
		New: func() (runner.Solver, error) {
			return &ckptFake{fake{dt: 1, onStep: func() {
				once.Do(func() { close(started) })
				<-release
			}}}, nil
		},
	}
	ckptJob := func(name string) Job {
		return Job{
			Name:  name,
			Until: 1,
			New:   func() (runner.Solver, error) { return &ckptFake{fake{dt: 1}}, nil },
		}
	}
	if err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Submit(ckptJob("a_b")); err == nil {
		t.Fatal("colliding checkpoint key accepted while the first job is live")
	}
	close(release)
	if r := <-s.Results(); r.Status != Done {
		t.Fatalf("blocker: %v (%v)", r.Status, r.Err)
	}
	// Terminal state frees the key: re-submission is the resume mechanism.
	if err := s.Submit(ckptJob("a_b")); err != nil {
		t.Fatalf("re-submission after terminal state rejected: %v", err)
	}
	s.Close()
	drainAll(s)
}

func TestBatchDuplicateCheckpointKeysRejected(t *testing.T) {
	jobs := []Job{
		{Name: "a b", Until: 1, New: func() (runner.Solver, error) { return &fake{dt: 0.5}, nil }},
		{Name: "a_b", Until: 1, New: func() (runner.Solver, error) { return &fake{dt: 0.5}, nil }},
	}
	if _, err := RunBatch(context.Background(), jobs, WithJobCheckpoints(t.TempDir())); err == nil {
		t.Fatal("colliding sanitised names accepted under WithJobCheckpoints")
	}
	// Without checkpoint keying the same batch is fine.
	if _, err := RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
}

func TestRetryDelayDoublesAndClamps(t *testing.T) {
	base := 100 * time.Millisecond
	if d := retryDelay(base, 1); d != base {
		t.Fatalf("attempt 1: %v", d)
	}
	if d := retryDelay(base, 3); d != 4*base {
		t.Fatalf("attempt 3: %v", d)
	}
	// High attempt counts must clamp, never overflow into a zero-delay
	// hot loop against the failing resource.
	for _, attempt := range []int{12, 40, 64, 1 << 20} {
		if d := retryDelay(base, attempt); d != maxRetryBackoff {
			t.Fatalf("attempt %d: %v, want clamp at %v", attempt, d, maxRetryBackoff)
		}
	}
	if d := retryDelay(0, 5); d != 0 {
		t.Fatalf("explicit zero backoff: %v", d)
	}
	if d := retryDelay(2*time.Minute, 1); d != maxRetryBackoff {
		t.Fatalf("oversized base: %v, want clamp", d)
	}
}

func TestStreamOptionValidation(t *testing.T) {
	if _, err := NewStream(context.Background(), WithWorkers(-1)); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := NewStream(context.Background(), WithRetries(-1)); err == nil {
		t.Fatal("negative retries accepted")
	}
	if _, err := NewStream(context.Background(), WithRetryBackoff(-time.Second)); err == nil {
		t.Fatal("negative backoff accepted")
	}
	if _, err := NewStream(context.Background(), WithJobCheckpointEvery(0)); err == nil {
		t.Fatal("zero checkpoint cadence accepted")
	}
	if _, err := NewStream(context.Background(), WithJobCheckpointKeep(-1)); err == nil {
		t.Fatal("negative retention accepted")
	}
}
