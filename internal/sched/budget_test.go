package sched

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vlasov6d/internal/runner"
)

// acquireLeases acquires one lease per priority, standing in for the
// between-step polls running jobs would make: a background goroutine keeps
// polling already-held leases so waiting acquires can claim the cores those
// polls free, then every lease is polled to convergence.
func acquireLeases(t *testing.T, b *CoreBudget, prios []int) []*Lease {
	t.Helper()
	leases := make([]*Lease, len(prios))
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			mu.Lock()
			for _, l := range leases {
				if l != nil {
					l.Workers()
				}
			}
			mu.Unlock()
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for i, p := range prios {
		l, err := b.Acquire(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		leases[i] = l
		mu.Unlock()
	}
	close(done)
	settle(leases)
	return leases
}

// settle polls every lease a few rounds so shrinks commit and grows claim
// the freed cores — the steady state a set of stepping jobs reaches.
func settle(leases []*Lease) {
	for round := 0; round < 4; round++ {
		for _, l := range leases {
			if l != nil {
				l.Workers()
			}
		}
	}
}

func shares(leases []*Lease) []int {
	out := make([]int, len(leases))
	for i, l := range leases {
		out[i] = l.Workers()
	}
	return out
}

func TestCoreBudgetEqualShares(t *testing.T) {
	b := NewCoreBudget(8)
	leases := acquireLeases(t, b, []int{0, 0, 0})
	got := shares(leases)
	// 8 cores over 3 equal-priority jobs: base 2, the 8%3 = 2 remainder
	// cores to the two earliest.
	want := []int{3, 3, 2}
	sum := 0
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("shares %v, want %v", got, want)
		}
		sum += got[i]
	}
	if sum != b.Total() {
		t.Fatalf("shares sum to %d, want the full budget %d", sum, b.Total())
	}
	if held := b.Held(); held != 8 {
		t.Fatalf("held %d, want 8", held)
	}
}

func TestCoreBudgetPriorityRemainder(t *testing.T) {
	b := NewCoreBudget(7)
	leases := acquireLeases(t, b, []int{0, 5, 0})
	got := shares(leases)
	// base 2, one remainder core: it goes to the priority-5 job even though
	// it acquired second.
	want := []int{2, 3, 2}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("shares %v, want %v", got, want)
		}
	}
}

func TestCoreBudgetFloorOne(t *testing.T) {
	b := NewCoreBudget(2)
	leases := acquireLeases(t, b, []int{0, 0, 0, 0})
	for i, l := range leases {
		if w := l.Workers(); w != 1 {
			t.Fatalf("lease %d holds %d workers, want floor 1", i, w)
		}
	}
}

func TestCoreBudgetRebalanceOnRelease(t *testing.T) {
	b := NewCoreBudget(4)
	leases := acquireLeases(t, b, []int{0, 0})
	if got := shares(leases); got[0] != 2 || got[1] != 2 {
		t.Fatalf("initial shares %v, want [2 2]", got)
	}
	leases[0].Release()
	if w := leases[1].Workers(); w != 4 {
		t.Fatalf("survivor holds %d workers after release, want 4", w)
	}
	if w := leases[0].Workers(); w != 0 {
		t.Fatalf("released lease reports %d workers, want 0", w)
	}
	leases[0].Release() // idempotent
	if live := b.Live(); live != 1 {
		t.Fatalf("live %d, want 1", live)
	}
}

func TestCoreBudgetAcquireCancellable(t *testing.T) {
	b := NewCoreBudget(2)
	// Hold both cores and never poll: a second acquire (2 live ≤ 2 cores,
	// nothing free) must block, and cancelling its context must unblock it
	// with the registration undone.
	l1, err := b.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Release()
	if w := l1.Workers(); w != 2 {
		t.Fatalf("sole lease holds %d workers, want 2", w)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := b.Acquire(ctx, 0); err == nil {
		t.Fatal("blocked acquire returned without error under a cancelled context")
	}
	if live := b.Live(); live != 1 {
		t.Fatalf("live %d after cancelled acquire, want 1", live)
	}
	// The cancelled waiter's registration must not leave a stale target:
	// the holder polls back up to the full budget.
	if w := l1.Workers(); w != 2 {
		t.Fatalf("holder has %d workers after cancelled acquire, want 2", w)
	}
}

// budgetedFake is a Solver implementing runner.WorkerBudgeted: it records
// the share the runner last applied and runs a per-step hook.
type budgetedFake struct {
	t, dt   float64
	workers atomic.Int64
	onStep  func(f *budgetedFake)
}

func (f *budgetedFake) SetWorkers(n int) { f.workers.Store(int64(n)) }
func (f *budgetedFake) Step(dt float64) error {
	if f.onStep != nil {
		f.onStep(f)
	}
	f.t += dt
	return nil
}
func (f *budgetedFake) SuggestDT() float64 { return f.dt }
func (f *budgetedFake) Clock() float64     { return f.t }
func (f *budgetedFake) Diagnostics() runner.Diagnostics {
	return runner.Diagnostics{Clock: f.t, Time: f.t, Mass: 1}
}

// TestBatchBudgetNeverOversubscribes is the acceptance gate: four concurrent
// jobs on a 4-core budget, and at no instant do the intra-step workers of
// the stepping jobs sum past the budget. Each fake adds its applied share
// on step entry and removes it on exit, so the tracked peak is exactly the
// number of cores the jobs believed they could use simultaneously.
func TestBatchBudgetNeverOversubscribes(t *testing.T) {
	const total = 4
	var live, peak atomic.Int64
	var jobs []Job
	for i := 0; i < total; i++ {
		jobs = append(jobs, Job{
			Name:  fmt.Sprintf("j%d", i),
			Until: 1,
			New: func() (runner.Solver, error) {
				return &budgetedFake{dt: 0.05, onStep: func(f *budgetedFake) {
					w := f.workers.Load()
					if w < 1 {
						t.Errorf("job stepping with %d workers; the lease floor is 1", w)
					}
					cur := live.Add(w)
					for {
						p := peak.Load()
						if cur <= p || peak.CompareAndSwap(p, cur) {
							break
						}
					}
					time.Sleep(200 * time.Microsecond)
					live.Add(-w)
				}}, nil
			},
		})
	}
	results, err := RunBatch(context.Background(), jobs,
		WithWorkers(total), WithCoreBudget(total))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Status != Done {
			t.Fatalf("job %s: %v (%v)", r.Name, r.Status, r.Err)
		}
	}
	if p := peak.Load(); p > total {
		t.Fatalf("peak concurrent intra-step workers %d exceeds the %d-core budget", p, total)
	}
}

// TestStreamBudgetRebalanceDuringDispatch exercises the stream layer's
// continuously churning live set under the race detector: a long-running
// job keeps stepping while short jobs are submitted, run and finish, and
// the budget invariant must hold throughout. The long job only finishes
// once a between-step poll has handed it the whole budget back — the
// mid-run resize observed by a running job.
func TestStreamBudgetRebalanceDuringDispatch(t *testing.T) {
	const total = 4
	ctx := context.Background()
	var live, peak atomic.Int64
	track := func(f *budgetedFake) {
		w := f.workers.Load()
		cur := live.Add(w)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		live.Add(-w)
	}
	s, err := NewStream(ctx, WithWorkers(total), WithCoreBudget(total))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan map[string]Result)
	go func() {
		out := make(map[string]Result)
		for r := range s.Results() {
			out[r.Name] = r
		}
		done <- out
	}()

	var sawShrink, sawGrow atomic.Bool
	long := Job{
		Name:  "long",
		Until: 1,
		New: func() (runner.Solver, error) {
			f := &budgetedFake{dt: 1e-6}
			f.onStep = func(f *budgetedFake) {
				track(f)
				w := f.workers.Load()
				if w < total {
					// Shares rebalanced away while the short jobs live.
					sawShrink.Store(true)
				}
				if sawShrink.Load() && w == total {
					// The queue drained and a between-step poll handed the
					// whole budget back: the mid-run grow was observed.
					sawGrow.Store(true)
					f.t = 1 // reach Until on this step
				}
				time.Sleep(20 * time.Microsecond)
			}
			return f, nil
		},
	}
	if err := s.Submit(long); err != nil {
		t.Fatal(err)
	}
	// Churn: short jobs submitted while the long job runs, in waves so the
	// live set both grows and drains repeatedly.
	for wave := 0; wave < 3; wave++ {
		for i := 0; i < total; i++ {
			short := Job{
				Name:  fmt.Sprintf("short-%d-%d", wave, i),
				Until: 1,
				New: func() (runner.Solver, error) {
					return &budgetedFake{dt: 0.2, onStep: track}, nil
				},
			}
			if err := s.Submit(short); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Close()
	results := <-done
	for name, r := range results {
		if r.Status != Done {
			t.Fatalf("job %s: %v (%v)", name, r.Status, r.Err)
		}
	}
	if len(results) != 1+3*total {
		t.Fatalf("%d results, want %d", len(results), 1+3*total)
	}
	if p := peak.Load(); p > total {
		t.Fatalf("peak concurrent intra-step workers %d exceeds the %d-core budget", p, total)
	}
	if !sawShrink.Load() {
		t.Fatal("long job never saw its share rebalanced down while short jobs ran")
	}
	if !sawGrow.Load() {
		t.Fatal("long job never observed the mid-run share increase between steps")
	}
}

// TestBudgetRetryReleasesCores: a job backing off between retry attempts
// must not hold its lease, so the other job can poll its way to the whole
// budget while the failing one sleeps. The steady job keeps stepping until
// it observes the full budget — termination is the assertion (the flaky
// job's lease exists only during its instant factory attempts).
func TestBudgetRetryReleasesCores(t *testing.T) {
	const total = 4
	fails := 0
	jobs := []Job{
		{
			Name:  "flaky",
			Until: 1,
			New: func() (runner.Solver, error) {
				if fails < 2 {
					fails++
					return nil, runner.MarkRetryable(fmt.Errorf("transient %d", fails))
				}
				return &budgetedFake{dt: 1}, nil
			},
		},
		{
			Name:  "steady",
			Until: 1,
			New: func() (runner.Solver, error) {
				f := &budgetedFake{dt: 1e-6}
				f.onStep = func(f *budgetedFake) {
					w := f.workers.Load()
					if w > total {
						t.Errorf("steady job stepped with %d workers on a %d-core budget", w, total)
					}
					if w == total {
						f.t = 1 // full budget reclaimed: finish
					}
					time.Sleep(50 * time.Microsecond)
				}
				return f, nil
			},
		},
	}
	results, err := RunBatch(context.Background(), jobs,
		WithWorkers(2), WithCoreBudget(total),
		WithRetries(3), WithRetryBackoff(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Status != Done {
			t.Fatalf("job %s: %v (%v)", r.Name, r.Status, r.Err)
		}
	}
}

// TestCoreBudgetOptionValidation rejects a negative budget.
func TestCoreBudgetOptionValidation(t *testing.T) {
	if _, err := New(WithCoreBudget(-1)); err == nil {
		t.Fatal("negative core budget accepted")
	}
}

// TestCoreBudgetAcquireAll: a group acquire divides the budget atomically —
// no member blocks on another, which is what hand-composed process grids
// (ranks that synchronise with each other) require.
func TestCoreBudgetAcquireAll(t *testing.T) {
	b := NewCoreBudget(8)
	leases, err := b.AcquireAll(context.Background(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := shares(leases)
	want := []int{3, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("group shares %v, want %v", got, want)
		}
	}
	if held := b.Held(); held != 8 {
		t.Fatalf("held %d, want the full budget", held)
	}
	for _, l := range leases {
		l.Release()
	}
	if live := b.Live(); live != 0 {
		t.Fatalf("live %d after releases, want 0", live)
	}
	// Oversubscribed group: floor one each, immediately.
	many, err := b.AcquireAll(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range many {
		if w := l.Workers(); w != 1 {
			t.Fatalf("lease %d of oversubscribed group holds %d, want 1", i, w)
		}
	}
	if _, err := b.AcquireAll(context.Background(), 0, 0); err == nil {
		t.Fatal("empty group accepted")
	}
}

// TestCoreBudgetAcquireAllBlockedCancellable: a group blocked behind a
// non-polling holder unblocks on context cancellation with the whole
// registration undone.
func TestCoreBudgetAcquireAllBlockedCancellable(t *testing.T) {
	b := NewCoreBudget(4)
	l1, err := b.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Release()
	if w := l1.Workers(); w != 4 {
		t.Fatalf("holder has %d, want 4", w)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// 3 more leases (4 live ≤ 4 cores) but nothing free and the holder
	// never polls: must cancel cleanly.
	if _, err := b.AcquireAll(ctx, 3, 0); err == nil {
		t.Fatal("blocked group acquire returned without error under a cancelled context")
	}
	if live := b.Live(); live != 1 {
		t.Fatalf("live %d after cancelled group acquire, want 1", live)
	}
	if w := l1.Workers(); w != 4 {
		t.Fatalf("holder has %d after cancelled group acquire, want 4", w)
	}
}
