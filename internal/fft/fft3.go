package fft

import (
	"fmt"
	"runtime"
	"sync"
)

// FFT3 performs in-place 3D complex transforms on a dense row-major array
// with index (ix·ny + iy)·nz + iz. Lines along each axis are transformed by a
// pool of workers, each with its own Plan, mirroring the thread-parallel
// per-CMG FFT of the paper's PM solver.
type FFT3 struct {
	nx, ny, nz int
	workers    int
}

// NewFFT3 creates a 3D transform descriptor for an nx×ny×nz array.
func NewFFT3(nx, ny, nz int) (*FFT3, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("fft: invalid dims %dx%dx%d", nx, ny, nz)
	}
	return &FFT3{nx: nx, ny: ny, nz: nz, workers: runtime.GOMAXPROCS(0)}, nil
}

// SetWorkers overrides the worker count (minimum 1); used by tests and by
// the machine model to pin parallelism.
func (f *FFT3) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	f.workers = w
}

// Dims returns the grid dimensions.
func (f *FFT3) Dims() (nx, ny, nz int) { return f.nx, f.ny, f.nz }

// Forward computes the 3D forward DFT in place.
func (f *FFT3) Forward(data []complex128) error { return f.transform(data, true) }

// Inverse computes the normalised 3D inverse DFT in place.
func (f *FFT3) Inverse(data []complex128) error { return f.transform(data, false) }

func (f *FFT3) transform(data []complex128, fwd bool) error {
	if len(data) != f.nx*f.ny*f.nz {
		return fmt.Errorf("fft: data length %d != %d", len(data), f.nx*f.ny*f.nz)
	}
	// z-lines are contiguous; x and y lines are gathered into per-worker
	// scratch (the software analogue of the paper's load-and-transpose).
	f.axisZ(data, fwd)
	f.axisY(data, fwd)
	f.axisX(data, fwd)
	return nil
}

// parallelLines runs fn(worker, line) for line in [0, lines).
func (f *FFT3) parallelLines(lines int, fn func(w, line int)) {
	nw := f.workers
	if nw > lines {
		nw = lines
	}
	if nw <= 1 {
		for l := 0; l < lines; l++ {
			fn(0, l)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (lines + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > lines {
			hi = lines
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for l := lo; l < hi; l++ {
				fn(w, l)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

func (f *FFT3) axisZ(data []complex128, fwd bool) {
	lines := f.nx * f.ny
	plans := f.makePlans(f.nz)
	f.parallelLines(lines, func(w, l int) {
		seg := data[l*f.nz : (l+1)*f.nz]
		if fwd {
			plans[w].Forward(seg)
		} else {
			plans[w].Inverse(seg)
		}
	})
}

func (f *FFT3) axisY(data []complex128, fwd bool) {
	lines := f.nx * f.nz
	plans := f.makePlans(f.ny)
	bufs := make([][]complex128, f.workers)
	for i := range bufs {
		bufs[i] = make([]complex128, f.ny)
	}
	f.parallelLines(lines, func(w, l int) {
		ix, iz := l/f.nz, l%f.nz
		base := ix*f.ny*f.nz + iz
		buf := bufs[w]
		for iy := 0; iy < f.ny; iy++ {
			buf[iy] = data[base+iy*f.nz]
		}
		if fwd {
			plans[w].Forward(buf)
		} else {
			plans[w].Inverse(buf)
		}
		for iy := 0; iy < f.ny; iy++ {
			data[base+iy*f.nz] = buf[iy]
		}
	})
}

func (f *FFT3) axisX(data []complex128, fwd bool) {
	lines := f.ny * f.nz
	plans := f.makePlans(f.nx)
	bufs := make([][]complex128, f.workers)
	for i := range bufs {
		bufs[i] = make([]complex128, f.nx)
	}
	stride := f.ny * f.nz
	f.parallelLines(lines, func(w, l int) {
		buf := bufs[w]
		for ix := 0; ix < f.nx; ix++ {
			buf[ix] = data[l+ix*stride]
		}
		if fwd {
			plans[w].Forward(buf)
		} else {
			plans[w].Inverse(buf)
		}
		for ix := 0; ix < f.nx; ix++ {
			data[l+ix*stride] = buf[ix]
		}
	})
}

func (f *FFT3) makePlans(n int) []*Plan {
	plans := make([]*Plan, f.workers)
	for i := range plans {
		p, err := NewPlan(n)
		if err != nil {
			// NewFFT3 validated dims > 0, so this cannot happen.
			panic(err)
		}
		plans[i] = p
	}
	return plans
}
