// Example service: a long-lived, channel-fed scheduler — the shape of a
// production deployment that accepts simulation work continuously instead
// of running one hand-launched batch.
//
// A producer goroutine plays the role of incoming traffic: it submits
// Landau-damping jobs to a Stream while earlier ones are still running.
// Most are routine background work, every third is an "interactive"
// request carrying higher priority (it jumps the queue), and one is flaky —
// its factory fails twice with a transient error before succeeding, which
// the stream's retry policy absorbs invisibly. A consumer goroutine reads
// Results as they complete, exactly as a service would stream them back to
// clients. Ctrl-C cancels: running jobs stop, queued ones come back
// cancelled, and the stream drains without leaking a goroutine.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"vlasov6d"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("service: ")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stream, err := vlasov6d.NewStream(ctx,
		vlasov6d.WithBatchWorkers(2),
		vlasov6d.WithBatchRetries(2),
		vlasov6d.WithBatchRetryBackoff(50*time.Millisecond),
		vlasov6d.WithBatchNotify(func(u vlasov6d.BatchUpdate) {
			switch u.Status {
			case vlasov6d.JobRetrying:
				log.Printf("%-14s attempt %d failed transiently, backing off: %v",
					u.Name, u.Attempt, u.Err)
			case vlasov6d.JobRunning:
				if u.Attempt > 1 {
					log.Printf("%-14s retrying (attempt %d)", u.Name, u.Attempt)
				}
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	// The producer: 12 jobs trickling in while the pool works. Priority 10
	// marks the interactive requests; the flaky job's factory fails twice
	// with a retryable error before constructing its solver.
	const jobs = 12
	go func() {
		var flakyAttempts atomic.Int64
		for i := 0; i < jobs; i++ {
			name := fmt.Sprintf("bg-%02d", i)
			priority := 0
			if i%3 == 2 {
				name = fmt.Sprintf("interactive-%02d", i)
				priority = 10
			}
			flaky := i == 4
			if flaky {
				name = "flaky-04"
			}
			job := vlasov6d.BatchJob{
				Name:     name,
				Until:    8,
				Priority: priority,
				New: func() (vlasov6d.Solver, error) {
					if flaky && flakyAttempts.Add(1) < 3 {
						return nil, vlasov6d.MarkRetryable(errors.New("checkpoint volume briefly unavailable"))
					}
					s, err := vlasov6d.NewPlasmaSolver(32, 64, 4*math.Pi, 6)
					if err != nil {
						return nil, err
					}
					s.LandauInit(0.01, 0.5, 1)
					return s, nil
				},
			}
			if err := stream.Submit(job); err != nil {
				log.Printf("submit %s: %v", name, err)
				return
			}
			log.Printf("%-14s submitted (priority %d, queue depth %d)",
				name, priority, stream.Pending())
			select {
			case <-time.After(40 * time.Millisecond):
			case <-ctx.Done():
				return
			}
		}
		stream.Close() // intake ends; the pool drains what is queued
	}()

	// The consumer: results stream back in completion order.
	var done, failed, cancelled int
	for r := range stream.Results() {
		switch r.Status {
		case vlasov6d.JobDone:
			done++
			log.Printf("%-14s done: %d steps in %v (attempt %d)",
				r.Name, r.Report.Steps, r.Report.Wall.Round(time.Millisecond), r.Attempt)
		case vlasov6d.JobFailed:
			failed++
			log.Printf("%-14s failed after %d attempt(s): %v", r.Name, r.Attempt, r.Err)
		case vlasov6d.JobCancelled:
			cancelled++
			log.Printf("%-14s cancelled", r.Name)
		}
	}
	log.Printf("stream drained: %d done, %d failed, %d cancelled of %d submitted",
		done, failed, cancelled, stream.Submitted())
	if ctx.Err() != nil {
		os.Exit(1)
	}
}
