// The stream layer: a long-lived, channel-fed scheduler over the same
// worker pool and job executor as the batch layer. Where RunBatch takes a
// fixed slice and returns when it is done, a Stream accepts Submit calls
// for as long as it is open — the shape of a service that feeds simulation
// work to a pool continuously, the ROADMAP's "scheduler job streams" item.
package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"vlasov6d/internal/runner"
)

// ErrStreamClosed is returned by Submit after Close.
var ErrStreamClosed = errors.New("sched: stream closed")

// Stream is a long-lived scheduler fed one Submit at a time. Construct
// with NewStream; the worker pool starts immediately and dispatches from a
// priority heap (higher Job.Priority first, submission order within a
// priority).
//
// Lifecycle:
//
//   - Submit enqueues a job; it fails with ErrStreamClosed after Close and
//     with the context error once the stream's context is cancelled.
//   - Close stops intake. Workers drain everything already queued, then the
//     Results channel closes — the graceful shutdown of a service.
//   - Cancelling the context stops running jobs through the runner's own
//     cancellation path, reports still-queued jobs Cancelled, and then
//     closes Results — the fast shutdown. No goroutines are left behind in
//     either case.
//
// Results must be consumed: workers deliver to the Results channel and
// will block (a natural back-pressure) if nobody reads it. Retries,
// per-job checkpoint directories and auto-resume follow the scheduler
// options exactly as in the batch layer (see the package comment).
type Stream struct {
	opts options
	ctx  context.Context
	// budget is the stream-lifetime core budget (nil without
	// WithCoreBudget): the live-job set it divides over churns with every
	// dispatch and completion.
	budget *CoreBudget

	mu      sync.Mutex
	cond    *sync.Cond
	pending jobHeap
	closed  bool
	seq     int
	// active holds the sanitised checkpoint keys of queued + running jobs
	// (only under WithJobCheckpoints): two live jobs sharing a key would
	// silently cross-resume, so Submit rejects the second. Re-submitting a
	// key after its job finishes is allowed — that is the resume path.
	active map[string]bool

	notifyMu sync.Mutex

	results chan Result
	done    chan struct{} // closed after all workers exit and results closes
}

// streamJob is one queued submission: the job plus its submission sequence
// number (the FIFO tiebreak within a priority and the Update index).
type streamJob struct {
	job Job
	seq int
}

// jobHeap is a max-heap on Priority with FIFO order within a priority.
type jobHeap []*streamJob

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*streamJob)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// NewStream starts a stream scheduler: `workers` goroutines (default
// GOMAXPROCS) pulling from the priority queue until Close drains it or ctx
// cancels it. The options are the same as RunBatch's; WithWallClock
// anchors the shared budget at NewStream time.
func NewStream(ctx context.Context, opts ...Option) (*Stream, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	workers := o.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var deadline time.Time
	if o.wall > 0 {
		deadline = time.Now().Add(o.wall)
	}
	s := &Stream{
		opts:    o,
		ctx:     ctx,
		results: make(chan Result),
		done:    make(chan struct{}),
	}
	if o.ckptDir != "" {
		s.active = make(map[string]bool)
	}
	if o.budgetSet {
		s.budget = NewCoreBudget(o.budget)
	}
	s.cond = sync.NewCond(&s.mu)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.work(deadline)
		}()
	}
	go func() {
		wg.Wait()
		close(s.results)
		close(s.done)
	}()
	// Cancellation must wake workers parked on the condvar. The watcher
	// exits with the pool, so an uncancelled long-lived stream does not
	// leak it past Close.
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-s.done:
		}
	}()
	return s, nil
}

// Submit enqueues a job for dispatch. It returns ErrStreamClosed after
// Close, the context error once the stream's context is cancelled, and a
// validation error for a job without a factory or (under
// WithJobCheckpoints) a checkpoint key already queued or running. Safe for
// concurrent use.
func (s *Stream) Submit(job Job) error {
	if job.New == nil {
		return fmt.Errorf("sched: job %q has no solver factory", job.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStreamClosed
	}
	if err := s.ctx.Err(); err != nil {
		return fmt.Errorf("sched: stream context cancelled: %w", err)
	}
	if s.active != nil {
		key := sanitizeJobName(job.Name)
		if s.active[key] {
			return fmt.Errorf("sched: job %q: checkpoint key %q already queued or running", job.Name, key)
		}
		s.active[key] = true
	}
	heap.Push(&s.pending, &streamJob{job: job, seq: s.seq})
	s.seq++
	s.cond.Signal()
	return nil
}

// Close stops intake. Already-queued jobs still run to completion (drain);
// once the queue empties the workers exit and Results closes. Close is
// idempotent and returns immediately — wait on Results for the drain.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Results returns the delivery channel: one Result per submitted job, in
// completion order. It closes after Close (once the queue drains) or after
// context cancellation (once queued jobs are flushed as Cancelled).
func (s *Stream) Results() <-chan Result {
	return s.results
}

// Pending returns the number of submitted jobs not yet picked up by a
// worker — the queue depth a service monitors.
func (s *Stream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Submitted returns the number of jobs accepted by Submit so far.
func (s *Stream) Submitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// work is one pool goroutine: pop the highest-priority job, execute it
// (with the shared retry/checkpoint executor), deliver its result; on
// cancellation flush the remaining queue as Cancelled.
func (s *Stream) work(deadline time.Time) {
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed && s.ctx.Err() == nil {
			s.cond.Wait()
		}
		if s.ctx.Err() != nil {
			// Fast shutdown: this worker flushes whatever is still queued
			// (the first worker in grabs everything; the rest see an empty
			// heap and exit).
			flush := s.pending
			s.pending = nil
			s.mu.Unlock()
			for _, sj := range flush {
				s.releaseKey(sj.job.Name)
				s.notify(Update{Index: sj.seq, Name: sj.job.Name, Status: Cancelled})
				s.results <- Result{Name: sj.job.Name, Status: Cancelled}
			}
			return
		}
		if len(s.pending) == 0 { // closed and drained
			s.mu.Unlock()
			return
		}
		sj := heap.Pop(&s.pending).(*streamJob)
		s.mu.Unlock()
		s.runOne(sj, deadline)
	}
}

// runOne executes one popped job and delivers its terminal result.
func (s *Stream) runOne(sj *streamJob, deadline time.Time) {
	executeJob(s.ctx, &s.opts, s.budget, sj.job, deadline,
		func(st Status, attempt int, rep *runner.Report, err error) {
			s.notify(Update{Index: sj.seq, Name: sj.job.Name, Status: st,
				Attempt: attempt, Err: err, Report: rep})
			switch st {
			case Done, Failed, Cancelled:
				// Release the checkpoint key before delivery, so a consumer
				// reacting to the result can immediately re-submit the job.
				s.releaseKey(sj.job.Name)
				s.results <- Result{Name: sj.job.Name, Status: st,
					Attempt: attempt, Report: rep, Err: err}
			}
		})
}

// releaseKey frees a terminal job's checkpoint key for re-submission.
func (s *Stream) releaseKey(name string) {
	if s.active == nil {
		return
	}
	s.mu.Lock()
	delete(s.active, sanitizeJobName(name))
	s.mu.Unlock()
}

// notify serialises the WithNotify callback across workers, matching the
// batch layer's contract (the callback needs no locking of its own).
func (s *Stream) notify(u Update) {
	fn := s.opts.notify
	if fn == nil {
		return
	}
	s.notifyMu.Lock()
	fn(u)
	s.notifyMu.Unlock()
}
