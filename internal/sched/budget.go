// The CPU-budget layer: a core-lease allocator that lets job-level and
// cell-level parallelism compose instead of compete. The paper's production
// runs partition a fixed machine — Table 2's Nodes × ProcsPerNode grid with
// a fixed thread count per process — whereas an unbudgeted scheduler pool
// does the opposite: every job's solver defaults to GOMAXPROCS intra-step
// workers, so an N-job batch oversubscribes the machine N-fold.
//
// A CoreBudget owns a fixed number of cores and divides them among the live
// jobs: integer shares, floor one, remainder cores to the higher-priority
// (then earlier-acquired) jobs. The division is a *target*; what a job may
// actually use is its *held* share, and the two converge through a
// claim/commit protocol designed so the held shares never sum past the
// budget while the live-job count is within it:
//
//   - Acquire registers the job and blocks until it can claim cores: its
//     target if free, otherwise whatever is free (at least one). Running
//     jobs surrender cores only between steps, so the wait is bounded by
//     one step of the slowest running job — provided every holder IS
//     polled between steps, which runner.WithWorkerBudget guarantees.
//     Hand-composed holders that never poll must not Acquire one at a
//     time from a single goroutine (the first lease would hold the whole
//     budget forever); they acquire their group atomically with
//     AcquireAll.
//   - Workers — polled by the runner between steps — commits changes:
//     a shrunk target takes effect immediately (the job steps with fewer
//     workers from now on, freeing cores for waiters), a grown target is
//     claimed only as far as free capacity allows.
//   - Release returns the job's cores and rebalances the rest.
//
// When the caller oversubscribes the budget itself — more live jobs than
// cores — the floor-one guarantee wins: every job claims one core
// immediately and the held sum is the live-job count, not the budget. That
// regime only arises when the worker pool is sized past the budget; the
// default pool (GOMAXPROCS workers) with the default budget (GOMAXPROCS
// cores) never enters it.
//
// Tenancy (AcquireClaim) makes the division two-level: leases tagged with
// a tenant form a group, cores are water-filled FAIRLY across the groups
// first — each group's running total grows one core at a time, lowest
// total first, regardless of how many jobs the group holds or what their
// priorities are — and only then does priority order the division *within*
// a group. A tenant cap (Claim.TenantCores) bounds its group's collective
// share; capped-out surplus flows to the other groups. Untagged leases
// (plain Acquire) all share one implicit group, which reduces exactly to
// the single-level arithmetic above.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// CoreBudget divides a fixed pool of CPU cores among live job leases. The
// zero value is not usable; construct with NewCoreBudget. All methods are
// safe for concurrent use.
type CoreBudget struct {
	mu     sync.Mutex
	cond   *sync.Cond
	total  int
	seq    int
	leases []*Lease // live leases in acquisition order
}

// NewCoreBudget builds a budget of total cores (total ≤ 0 selects
// GOMAXPROCS at construction time).
func NewCoreBudget(total int) *CoreBudget {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	b := &CoreBudget{total: total}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Total returns the number of cores the budget divides.
func (b *CoreBudget) Total() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Live returns the number of live (acquired, unreleased) leases.
func (b *CoreBudget) Live() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.leases)
}

// Held returns the sum of currently claimed shares — the number of cores
// live jobs may be using right now. While Live() ≤ Total() it never
// exceeds Total().
func (b *CoreBudget) Held() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.heldLocked()
}

// HeldByTenant returns the currently claimed shares summed per tenant tag
// (untagged leases under "") — the per-tenant core-usage gauge a control
// plane exports.
func (b *CoreBudget) HeldByTenant() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int)
	for _, l := range b.leases {
		if l.held > 0 {
			out[l.tenant] += l.held
		}
	}
	return out
}

// Claim describes one lease acquisition: who is asking (the tenant tag and
// its collective cap), how urgent it is within its tenant, and the per-
// lease share bounds. The zero Claim is a plain untenanted, unbounded
// acquire.
type Claim struct {
	// Tenant groups this lease for the two-level division: cores are
	// fair-shared across tenant groups before priority splits a group's
	// total among its members. "" joins the implicit default group.
	Tenant string
	// TenantCores caps the group's collective share (0 = uncapped). When
	// members disagree — quotas reconfigured between submissions — the
	// smallest positive cap wins.
	TenantCores int
	// Priority orders the within-group remainder (higher first).
	Priority int
	// Min/Max are the per-lease share bounds of AcquireBounded.
	Min, Max int
}

// Acquire registers a live job with the given dispatch priority and blocks
// until the lease holds at least one core (see the package comment for the
// claim rules). It returns the context's error if ctx is cancelled while
// waiting, with the registration undone. Acquire is the single-lease form
// of AcquireAll: the grant and cancellation semantics are identical.
func (b *CoreBudget) Acquire(ctx context.Context, priority int) (*Lease, error) {
	return b.AcquireBounded(ctx, priority, 0, 0)
}

// AcquireClaim is the full-surface acquire: tenant tag, tenant cap,
// priority and share bounds in one Claim. The stream and batch schedulers
// call this for tenant-tagged jobs; everything else is a convenience
// wrapper over it.
func (b *CoreBudget) AcquireClaim(ctx context.Context, c Claim) (*Lease, error) {
	if c.Min < 0 || c.Max < 0 {
		return nil, fmt.Errorf("sched: negative worker bound min=%d max=%d", c.Min, c.Max)
	}
	if c.Max > 0 && (c.Max < c.Min || c.Max < 1) {
		return nil, fmt.Errorf("sched: worker bound max=%d below min=%d", c.Max, c.Min)
	}
	if c.TenantCores < 0 {
		return nil, fmt.Errorf("sched: negative tenant core cap %d", c.TenantCores)
	}
	leases, err := b.acquire(ctx, 1, c)
	if err != nil {
		return nil, err
	}
	return leases[0], nil
}

// AcquireBounded is Acquire with per-lease share bounds: the rebalancer
// never targets this lease below min cores or above max cores (0 leaves the
// bound unset). Bounds reshape the division, they do not reserve capacity:
// a min larger than the equal share is met by shrinking the other live
// leases' targets (they keep their floor of one), and a min is only
// guaranteed while the budget can cover every live lease's floor — when it
// cannot (mins summing past the budget, or more live jobs than cores) every
// min degrades to the universal floor of one until the live set shrinks
// enough to cover the mins again, so no single min-heavy lease can
// monopolise the budget and stall later acquires. min is clamped to the
// budget total; max must be 0 or ≥ max(min, 1).
func (b *CoreBudget) AcquireBounded(ctx context.Context, priority, min, max int) (*Lease, error) {
	if min < 0 || max < 0 {
		return nil, fmt.Errorf("sched: negative worker bound min=%d max=%d", min, max)
	}
	if max > 0 && (max < min || max < 1) {
		return nil, fmt.Errorf("sched: worker bound max=%d below min=%d", max, min)
	}
	leases, err := b.acquire(ctx, 1, Claim{Priority: priority, Min: min, Max: max})
	if err != nil {
		return nil, err
	}
	return leases[0], nil
}

// AcquireAll registers n equal-priority leases in one atomic step and
// blocks until every one of them holds at least one core. This is the
// group form hand-composed process grids need (see examples/distributed):
// n sequential Acquire calls from one goroutine would deadlock, because the
// first lease claims the whole budget and — without a runner loop polling
// Workers between steps — never surrenders it to the waiting second call.
// Registering the group atomically divides the budget across all n members
// before anyone claims. Cancelling ctx while waiting undoes the whole
// registration.
func (b *CoreBudget) AcquireAll(ctx context.Context, n, priority int) ([]*Lease, error) {
	return b.acquire(ctx, n, Claim{Priority: priority})
}

// acquire implements the Acquire* family: register, rebalance, block until
// granted or cancelled.
func (b *CoreBudget) acquire(ctx context.Context, n int, c Claim) ([]*Lease, error) {
	if n < 1 {
		return nil, fmt.Errorf("sched: group acquire of %d leases", n)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if c.Min > b.total {
		// A floor the machine cannot supply degrades to the machine: the
		// lease simply always holds every core it can get.
		c.Min = b.total
	}
	leases := make([]*Lease, n)
	for i := range leases {
		leases[i] = &Lease{
			b: b, priority: c.Priority, seq: b.seq,
			min: c.Min, max: c.Max,
			tenant: c.Tenant, tenantCap: c.TenantCores,
		}
		b.seq++
		b.leases = append(b.leases, leases[i])
	}
	b.rebalanceLocked()
	// A cancelled context must wake the condvar wait below; AfterFunc is
	// unregistered on return so an uncancelled acquire leaks nothing.
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	defer stop()
	for {
		if err := ctx.Err(); err != nil {
			for _, l := range leases {
				l.released = true
				b.removeLocked(l)
			}
			return nil, err
		}
		if len(b.leases) > b.total {
			// Caller-oversubscribed regime: floor one each, immediately.
			for _, l := range leases {
				l.held = 1
			}
			return leases, nil
		}
		if free := b.total - b.heldLocked(); free >= n {
			// Enough for a core each: grant targets, capped so every later
			// member of the group still gets at least one.
			for i, l := range leases {
				rest := n - i - 1
				grant := l.target
				if grant > free-rest {
					grant = free - rest
				}
				l.held = grant
				free -= grant
			}
			return leases, nil
		}
		b.cond.Wait()
	}
}

// heldLocked sums the claimed shares. Callers hold b.mu.
func (b *CoreBudget) heldLocked() int {
	sum := 0
	for _, l := range b.leases {
		sum += l.held
	}
	return sum
}

// removeLocked unregisters a lease and redivides the budget among the rest.
// Callers hold b.mu.
func (b *CoreBudget) removeLocked(l *Lease) {
	for i, cur := range b.leases {
		if cur == l {
			b.leases = append(b.leases[:i], b.leases[i+1:]...)
			break
		}
	}
	b.rebalanceLocked()
}

// tenantGroup is the rebalancer's view of one tenant's leases: the members
// in within-group dispatch order, the collective cap, and the running total
// of targets the across-group water-fill grows.
type tenantGroup struct {
	members []*Lease // sorted priority desc, then seq asc
	cap     int      // smallest positive member tenantCap; 0 = uncapped
	total   int      // sum of member targets so far
}

// growable reports whether the across-group water-fill may give this group
// another core: the group cap is not reached and some member can still grow.
func (g *tenantGroup) growable() bool {
	if g.cap > 0 && g.total >= g.cap {
		return false
	}
	for _, l := range g.members {
		if l.max == 0 || l.target < l.max {
			return true
		}
	}
	return false
}

// grow gives the group one more core, targeting the member with the lowest
// current target that is still below its max, ties broken by priority
// (higher first) then acquisition order — the member list is pre-sorted so
// the first strictly-lowest wins.
func (g *tenantGroup) grow() {
	var pick *Lease
	for _, l := range g.members {
		if l.max > 0 && l.target >= l.max {
			continue
		}
		if pick == nil || l.target < pick.target {
			pick = l
		}
	}
	pick.target++
	g.total++
}

// rebalanceLocked recomputes every live lease's target share by two-level
// bounded water-filling. Each lease starts at its floor (max(1, min));
// the remaining cores are then granted one at a time, first choosing the
// tenant group with the lowest running total (ties to the earliest-
// acquired group) — cores divide FAIRLY across tenants no matter how many
// jobs each tenant runs — and within the chosen group choosing the member
// with the lowest current target that is still below its max, ties broken
// by priority (higher first) then acquisition order. A group stops
// receiving once its tenant cap (or every member's max) is reached; the
// surplus flows to the other groups. With a single group — all leases
// untagged, the pre-tenancy world — the group choice is vacuous and this
// reproduces the original arithmetic exactly: total/n each, floor one,
// remainder to the higher-priority (then earlier) leases, because
// water-filling from a uniform floor is equal division. When the floors
// alone exceed the budget the min bounds degrade to one (see below); only
// when the live jobs themselves outnumber the cores does the sum
// overshoot — one core each, the documented caller-oversubscribed regime.
// Targets take effect as jobs poll Workers between steps. Callers hold
// b.mu.
func (b *CoreBudget) rebalanceLocked() {
	n := len(b.leases)
	if n == 0 {
		b.cond.Broadcast()
		return
	}
	// Group by tenant tag; b.leases is in acquisition order, so the groups
	// slice is ordered by each tenant's first acquisition — the across-group
	// tiebreak.
	byTenant := make(map[string]*tenantGroup)
	var groups []*tenantGroup
	for _, l := range b.leases {
		g, ok := byTenant[l.tenant]
		if !ok {
			g = &tenantGroup{}
			byTenant[l.tenant] = g
			groups = append(groups, g)
		}
		g.members = append(g.members, l)
		if l.tenantCap > 0 && (g.cap == 0 || l.tenantCap < g.cap) {
			g.cap = l.tenantCap
		}
	}
	for _, g := range groups {
		sort.SliceStable(g.members, func(i, j int) bool {
			if g.members[i].priority != g.members[j].priority {
				return g.members[i].priority > g.members[j].priority
			}
			return g.members[i].seq < g.members[j].seq
		})
	}
	// When the floors alone cannot all be covered, min bounds degrade to
	// the universal floor of one for this division — otherwise a single
	// min-equal-to-budget lease would keep its full target and every
	// later Acquire would block for that holder's whole run, breaking the
	// one-step bounded-wait invariant. Mins come back the moment the live
	// set shrinks enough to cover them again. The degradation is global,
	// not per-group: floors are a liveness guarantee, and liveness is a
	// whole-budget property.
	sumFloors := 0
	for _, l := range b.leases {
		sumFloors += l.floor()
	}
	degradeMins := sumFloors > b.total
	remaining := b.total
	for _, g := range groups {
		g.total = 0
		for _, l := range g.members {
			if degradeMins {
				l.target = 1
			} else {
				l.target = l.floor()
			}
			g.total += l.target
			remaining -= l.target
		}
	}
	// In the live-jobs-past-budget regime remaining is ≤ 0 and everyone
	// stays at one core; otherwise water-fill the surplus across groups.
	for remaining > 0 {
		var pick *tenantGroup
		for _, g := range groups {
			if !g.growable() {
				continue
			}
			if pick == nil || g.total < pick.total {
				pick = g // first-acquired group order is the tiebreak
			}
		}
		if pick == nil {
			break // every group is capped; surplus cores stay idle
		}
		pick.grow()
		remaining--
	}
	// Shrunk targets free cores only when their holders next poll, but
	// waiters must also re-check after, e.g., a release changed the regime.
	b.cond.Broadcast()
}

// Lease is one live job's share of a CoreBudget. It implements
// runner.WorkerLease: the runner polls Workers between steps and applies
// the share to solvers implementing runner.WorkerBudgeted.
type Lease struct {
	b         *CoreBudget
	priority  int
	seq       int
	min, max  int    // per-lease share bounds (0 = unset); see AcquireBounded
	tenant    string // fair-share group tag ("" = implicit default group)
	tenantCap int    // collective group cap carried by this lease (0 = none)
	target    int    // allocator's goal share, set by rebalance
	held      int    // claimed share — what Workers reports
	released  bool
}

// floor is the smallest target the rebalancer may assign this lease: one
// core, or the lease's min bound when set.
func (l *Lease) floor() int {
	if l.min > 1 {
		return l.min
	}
	return 1
}

// Workers returns the lease's current share, committing any pending
// rebalance: a reduced target takes effect now (cores freed for other
// jobs), an increased target is claimed as far as free capacity allows.
// The runner calls this between steps, which is exactly when the job's
// intra-step workers are quiescent and the share may change. A released
// lease reports zero.
func (l *Lease) Workers() int {
	b := l.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if l.released {
		return 0
	}
	if l.held > l.target {
		l.held = l.target
		b.cond.Broadcast()
	} else if l.held < l.target {
		if free := b.total - b.heldLocked(); free > 0 {
			grow := l.target - l.held
			if grow > free {
				grow = free
			}
			l.held += grow
		}
	}
	return l.held
}

// Release returns the lease's cores to the budget and rebalances the
// remaining live jobs. Release is idempotent.
func (l *Lease) Release() {
	b := l.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if l.released {
		return
	}
	l.released = true
	l.held = 0
	b.removeLocked(l)
}
