package advect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sineLine(n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = 2 + math.Sin(2*math.Pi*float64(i)/float64(n))
	}
	return f
}

func stepLine(n int) []float64 {
	f := make([]float64, n)
	for i := n / 4; i < 3*n/4; i++ {
		f[i] = 1
	}
	return f
}

func sum(f []float64) float64 {
	s := 0.0
	for _, v := range f {
		s += v
	}
	return s
}

func allSchemes() []Scheme {
	return []Scheme{NewSLMPP5(), NewMP5(), NewUpwind1(), NewLaxWendroff2()}
}

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Fatalf("scheme %q reports name %q", name, s.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestStageCounts(t *testing.T) {
	// The paper's cost argument: SL-MPP5 needs one flux stage, MP5+RK3 three.
	if got := NewSLMPP5().Stages(); got != 1 {
		t.Fatalf("SL-MPP5 stages = %d, want 1", got)
	}
	if got := NewMP5().Stages(); got != 3 {
		t.Fatalf("MP5-RK3 stages = %d, want 3", got)
	}
}

func TestMassConservationPeriodic(t *testing.T) {
	for _, s := range allSchemes() {
		for _, c := range []float64{0.3, -0.3, 0.9, -0.9} {
			f := stepLine(64)
			m0 := sum(f)
			for it := 0; it < 50; it++ {
				if err := s.Step(f, c); err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
			}
			if d := math.Abs(sum(f) - m0); d > 1e-10 {
				t.Fatalf("%s c=%v: mass drift %v", s.Name(), c, d)
			}
		}
	}
}

func TestMassConservationLargeCFL(t *testing.T) {
	s := NewSLMPP5()
	for _, c := range []float64{1.5, 2.7, -3.3, 17.25, -0.001} {
		f := stepLine(96)
		m0 := sum(f)
		for it := 0; it < 20; it++ {
			if err := s.Step(f, c); err != nil {
				t.Fatal(err)
			}
		}
		if d := math.Abs(sum(f) - m0); d > 1e-10 {
			t.Fatalf("c=%v: mass drift %v", c, d)
		}
	}
}

func TestIntegerShiftIsExact(t *testing.T) {
	// With an integer CFL the semi-Lagrangian update is an exact shift.
	s := NewSLMPP5()
	for _, c := range []float64{1, 3, -2, -5} {
		n := 32
		f := make([]float64, n)
		rng := rand.New(rand.NewSource(1))
		for i := range f {
			f[i] = rng.Float64()
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = f[mod(i-int(c), n)]
		}
		if err := s.Step(f, c); err != nil {
			t.Fatal(err)
		}
		for i := range f {
			if math.Abs(f[i]-want[i]) > 1e-12 {
				t.Fatalf("c=%v: cell %d = %v, want %v", c, i, f[i], want[i])
			}
		}
	}
}

// convergenceRate advects a smooth profile one full period and returns the
// measured order between resolutions n and 2n.
func convergenceRate(t *testing.T, s Scheme, n int, cfl float64) float64 {
	t.Helper()
	err1 := advectError(t, s, n, cfl)
	err2 := advectError(t, s, 2*n, cfl)
	return math.Log2(err1 / err2)
}

func advectError(t *testing.T, s Scheme, n int, cfl float64) float64 {
	t.Helper()
	f := make([]float64, n)
	exact := make([]float64, n)
	for i := range f {
		x := float64(i) / float64(n)
		f[i] = 2 + math.Sin(2*math.Pi*x)
		exact[i] = f[i]
	}
	steps := int(math.Round(float64(n) / cfl)) // one full period
	c := float64(n) / float64(steps)           // adjust so steps·c = n exactly
	for it := 0; it < steps; it++ {
		if err := s.Step(f, c); err != nil {
			t.Fatal(err)
		}
	}
	e := 0.0
	for i := range f {
		e += math.Abs(f[i] - exact[i])
	}
	return e / float64(n)
}

func TestSLMPP5FifthOrder(t *testing.T) {
	s := NewSLMPP5()
	rate := convergenceRate(t, s, 32, 0.4)
	if rate < 4.2 {
		t.Fatalf("SL-MPP5 convergence order %v, want ≥ 4.2", rate)
	}
}

func TestSLMPP5UnlimitedFifthOrder(t *testing.T) {
	s := &SLMPP5{DisableMP: true, DisablePP: true}
	rate := convergenceRate(t, s, 32, 0.4)
	if rate < 4.6 {
		t.Fatalf("unlimited CSL5 convergence order %v, want ≥ 4.6", rate)
	}
}

func TestMP5FifthOrderSpace(t *testing.T) {
	// With CFL fixed, RK3's O(Δt³) error dominates at 5th order in space;
	// use a small CFL so the spatial error is visible.
	s := NewMP5()
	rate := convergenceRate(t, s, 32, 0.1)
	if rate < 2.8 { // limited by RK3 temporal order at fixed CFL
		t.Fatalf("MP5-RK3 convergence order %v, want ≥ 2.8", rate)
	}
}

func TestUpwindFirstOrder(t *testing.T) {
	s := NewUpwind1()
	rate := convergenceRate(t, s, 64, 0.4)
	if rate < 0.7 || rate > 1.4 {
		t.Fatalf("upwind order %v, want ≈ 1", rate)
	}
}

func TestSchemeAccuracyOrdering(t *testing.T) {
	// The paper's point: SL-MPP5 is far less diffusive than low-order
	// schemes at equal resolution.
	n := 64
	eSL := advectError(t, NewSLMPP5(), n, 0.4)
	eUp := advectError(t, NewUpwind1(), n, 0.4)
	eLW := advectError(t, NewLaxWendroff2(), n, 0.4)
	if !(eSL < eLW && eLW < eUp) {
		t.Fatalf("error ordering violated: slmpp5=%v lw=%v upwind=%v", eSL, eLW, eUp)
	}
	if eUp/eSL < 100 {
		t.Fatalf("SL-MPP5 should beat upwind by ≫ 100×, got %v×", eUp/eSL)
	}
}

func TestMonotonicityOnStep(t *testing.T) {
	// Advect a step: MP schemes must not create new extrema beyond the
	// initial [0,1] range (to round-off) when run within their guaranteed
	// CFL regime. SL-MPP5's CFL-adaptive α makes it monotone at any CFL;
	// classic MP5 with α = 4 guarantees monotonicity for CFL ≤ 1/(1+α).
	cases := []struct {
		s   Scheme
		cfl float64
	}{
		{NewSLMPP5(), 0.45},
		{NewSLMPP5(), 1.37}, // beyond CFL 1, SL regime
		{NewMP5(), 0.18},
	}
	for _, tc := range cases {
		f := stepLine(64)
		for it := 0; it < 100; it++ {
			if err := tc.s.Step(f, tc.cfl); err != nil {
				t.Fatal(err)
			}
		}
		for i, v := range f {
			if v < -1e-10 || v > 1+1e-10 {
				t.Fatalf("%s cfl=%v: overshoot at %d: %v", tc.s.Name(), tc.cfl, i, v)
			}
		}
	}
}

func TestLaxWendroffOscillates(t *testing.T) {
	// Sanity check that the limiter comparison above is meaningful: the
	// unlimited second-order scheme DOES overshoot on a step.
	s := NewLaxWendroff2()
	f := stepLine(64)
	for it := 0; it < 40; it++ {
		if err := s.Step(f, 0.45); err != nil {
			t.Fatal(err)
		}
	}
	over := false
	for _, v := range f {
		if v < -1e-6 || v > 1+1e-6 {
			over = true
		}
	}
	if !over {
		t.Fatal("Lax-Wendroff unexpectedly monotone — limiter tests are vacuous")
	}
}

func TestPositivityPreservation(t *testing.T) {
	// A narrow spike with zero background must stay non-negative.
	s := NewSLMPP5()
	f := make([]float64, 64)
	f[30] = 1
	f[31] = 2
	for it := 0; it < 200; it++ {
		if err := s.Step(f, 0.37); err != nil {
			t.Fatal(err)
		}
		for i, v := range f {
			if v < 0 {
				t.Fatalf("negative value %v at cell %d, step %d", v, i, it)
			}
		}
	}
	if d := math.Abs(sum(f) - 3); d > 1e-10 {
		t.Fatalf("mass drift %v under PP clipping", d)
	}
}

func TestStepOpenLosesMassThroughBoundary(t *testing.T) {
	s := NewSLMPP5()
	f := make([]float64, 32)
	f[30] = 1
	m0 := sum(f)
	// Push mass rightward out of the open boundary.
	for it := 0; it < 10; it++ {
		if err := s.StepOpen(f, 0.8); err != nil {
			t.Fatal(err)
		}
	}
	if sum(f) >= m0 {
		t.Fatal("open boundary did not lose mass")
	}
	for i, v := range f {
		if v < 0 {
			t.Fatalf("negative value at %d: %v", i, v)
		}
	}
}

func TestStepOpenNoInflow(t *testing.T) {
	s := NewSLMPP5()
	f := make([]float64, 32) // all zero
	if err := s.StepOpen(f, 0.8); err != nil {
		t.Fatal(err)
	}
	for i, v := range f {
		if v != 0 {
			t.Fatalf("vacuum line gained mass at %d: %v", i, v)
		}
	}
}

func TestErrorsOnShortLines(t *testing.T) {
	for _, s := range allSchemes() {
		f := []float64{1}
		if err := s.Step(f, 0.5); err == nil {
			t.Fatalf("%s accepted a 1-cell line", s.Name())
		}
	}
}

func TestCFLLimitEnforced(t *testing.T) {
	for _, s := range []Scheme{NewMP5(), NewUpwind1(), NewLaxWendroff2()} {
		f := sineLine(16)
		if err := s.Step(f, 1.5); err == nil {
			t.Fatalf("%s accepted CFL 1.5", s.Name())
		}
	}
	// SL-MPP5 must accept it.
	if err := NewSLMPP5().Step(sineLine(16), 1.5); err != nil {
		t.Fatalf("SL-MPP5 rejected CFL 1.5: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	for _, s := range allSchemes() {
		c := s.Clone()
		if c.Name() != s.Name() {
			t.Fatalf("clone of %s has name %s", s.Name(), c.Name())
		}
		f1, f2 := sineLine(32), sineLine(32)
		if err := s.Step(f1, 0.5); err != nil {
			t.Fatal(err)
		}
		if err := c.Step(f2, 0.5); err != nil {
			t.Fatal(err)
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				t.Fatalf("%s: clone diverges at %d", s.Name(), i)
			}
		}
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: for random non-negative lines and random CFL, SL-MPP5
	// conserves mass and preserves positivity.
	s := NewSLMPP5()
	f := func(seed int64, craw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(48)
		line := make([]float64, n)
		for i := range line {
			line[i] = rng.Float64() * 10
		}
		c := math.Mod(craw, 8)
		m0 := sum(line)
		if err := s.Step(line, c); err != nil {
			return false
		}
		if math.Abs(sum(line)-m0) > 1e-9*(1+m0) {
			return false
		}
		for _, v := range line {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuinticInterpolatesNodes(t *testing.T) {
	w := [6]float64{0, 1, 4, 9, 16, 25}
	for m := 0; m < 6; m++ {
		if got := quintic(&w, float64(m)); math.Abs(got-w[m]) > 1e-12 {
			t.Fatalf("quintic(%d) = %v, want %v", m, got, w[m])
		}
	}
	// Quintic must reproduce any degree-5 polynomial exactly; t².
	for _, tv := range []float64{0.5, 1.7, 2.3, 4.9} {
		if got := quintic(&w, tv); math.Abs(got-tv*tv) > 1e-10 {
			t.Fatalf("quintic(%v) = %v, want %v", tv, got, tv*tv)
		}
	}
}

func TestMinmodMedian(t *testing.T) {
	if minmod2(1, 2) != 1 || minmod2(-1, -3) != -1 || minmod2(-1, 2) != 0 {
		t.Fatal("minmod2 wrong")
	}
	if minmod4(1, 2, 3, 4) != 1 || minmod4(1, -2, 3, 4) != 0 {
		t.Fatal("minmod4 wrong")
	}
	if median(0, 1, 2) != 1 || median(5, 1, 2) != 2 || median(1.5, 1, 2) != 1.5 {
		t.Fatal("median wrong")
	}
}
