package tenant

import (
	"context"
	"strings"
	"testing"
	"time"
)

const keyFile = `{
  "tenants": [
    {"name": "alice", "key": "alice-key-0123", "max_queued": 4, "max_cores": 2,
     "rate_per_sec": 2, "burst": 2},
    {"name": "bob", "key": "bob-key-4567"}
  ]
}`

func TestParseKeyFile(t *testing.T) {
	reg, err := Parse(strings.NewReader(keyFile))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := reg.Lookup("alice-key-0123")
	if !ok || a.Name != "alice" || a.MaxQueued != 4 || a.MaxCores != 2 {
		t.Fatalf("alice: %+v ok=%v", a, ok)
	}
	b, ok := reg.ByName("bob")
	if !ok || b.Key != "bob-key-4567" {
		t.Fatalf("bob by name: %+v ok=%v", b, ok)
	}
	if _, ok := reg.Lookup("no-such-key"); ok {
		t.Fatal("unknown key resolved")
	}
	if got := len(reg.Tenants()); got != 2 {
		t.Fatalf("Tenants() = %d entries", got)
	}
}

func TestParseRejectsBadFiles(t *testing.T) {
	for name, doc := range map[string]string{
		"empty set":        `{"tenants": []}`,
		"empty name":       `{"tenants": [{"name": "", "key": "k1"}]}`,
		"empty key":        `{"tenants": [{"name": "a", "key": ""}]}`,
		"dup name":         `{"tenants": [{"name": "a", "key": "k1"}, {"name": "a", "key": "k2"}]}`,
		"dup key":          `{"tenants": [{"name": "a", "key": "k"}, {"name": "b", "key": "k"}]}`,
		"negative quota":   `{"tenants": [{"name": "a", "key": "k", "max_cores": -1}]}`,
		"negative storage": `{"tenants": [{"name": "a", "key": "k", "max_storage_bytes": -1}]}`,
		"unknown field":    `{"tenants": [{"name": "a", "key": "k", "max_corse": 2}]}`,
	} {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	tn := &Tenant{Name: "a", Key: "k", RatePerSec: 10, Burst: 2}
	now := time.Unix(1000, 0)
	// Burst drains first...
	for i := 0; i < 2; i++ {
		if ok, _ := tn.Allow(now); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	// ...then the bucket is empty and the wait is ~1/rate.
	ok, wait := tn.Allow(now)
	if ok {
		t.Fatal("empty bucket allowed")
	}
	if wait <= 0 || wait > 150*time.Millisecond {
		t.Fatalf("retry-after %v for a 10/s bucket", wait)
	}
	// Refill: after 100 ms one token is back.
	if ok, _ := tn.Allow(now.Add(101 * time.Millisecond)); !ok {
		t.Fatal("refilled token denied")
	}
	// No rate configured = never limited.
	open := &Tenant{Name: "b", Key: "k2"}
	for i := 0; i < 100; i++ {
		if ok, _ := open.Allow(now); !ok {
			t.Fatal("unlimited tenant throttled")
		}
	}
}

// TestAllowClockRegression pins the non-monotonic-clock contract: a
// backwards time step must not rewind the refill anchor, or the rewound
// interval accrues tokens twice once the clock recovers. The sequence
// drains the burst at t0, steps the clock back 10 s, then returns to t0 —
// with the bug, the return "refills" 10 s worth of tokens for time that
// was already counted.
func TestAllowClockRegression(t *testing.T) {
	tn := &Tenant{Name: "a", Key: "k", RatePerSec: 1, Burst: 4}
	t0 := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		if ok, _ := tn.Allow(t0); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if ok, _ := tn.Allow(t0); ok {
		t.Fatal("empty bucket allowed at t0")
	}
	// Clock steps backwards (NTP correction): no refill, and — the fix —
	// no rewind of the anchor either.
	for _, back := range []time.Duration{10 * time.Second, 5 * time.Second, time.Second} {
		if ok, _ := tn.Allow(t0.Add(-back)); ok {
			t.Fatalf("backwards clock step -%v minted a token", back)
		}
	}
	// Clock recovers to exactly t0: zero real time has passed since the
	// burst drained, so the bucket must still be empty.
	if ok, _ := tn.Allow(t0); ok {
		t.Fatal("clock recovery to t0 re-accrued already-counted time")
	}
	// One real second later exactly one token exists.
	if ok, _ := tn.Allow(t0.Add(time.Second)); !ok {
		t.Fatal("legitimate refill denied after recovery")
	}
	if ok, _ := tn.Allow(t0.Add(time.Second)); ok {
		t.Fatal("single refilled second granted two tokens")
	}
}

// TestLookupDigests exercises the constant-time digest path: exact keys
// resolve, near-miss keys (shared prefix, differing last byte) and
// extensions do not.
func TestLookupDigests(t *testing.T) {
	reg, err := Parse(strings.NewReader(keyFile))
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{
		"alice-key-0123": "alice",
		"bob-key-4567":   "bob",
	} {
		tn, ok := reg.Lookup(key)
		if !ok || tn.Name != want {
			t.Fatalf("Lookup(%q) = %v ok=%v, want %s", key, tn, ok, want)
		}
	}
	for _, miss := range []string{"alice-key-0124", "alice-key-012", "alice-key-01234", "", "bob-key-4568"} {
		if tn, ok := reg.Lookup(miss); ok {
			t.Fatalf("near-miss %q resolved to %s", miss, tn.Name)
		}
	}
}

func TestParseAdminAndStorage(t *testing.T) {
	reg, err := Parse(strings.NewReader(`{"tenants": [
	  {"name": "ops", "key": "ops-key", "admin": true},
	  {"name": "a", "key": "a-key", "max_storage_bytes": 4096}]}`))
	if err != nil {
		t.Fatal(err)
	}
	ops, _ := reg.ByName("ops")
	if !ops.Admin {
		t.Fatal("admin flag lost in parse")
	}
	a, _ := reg.ByName("a")
	if a.Admin || a.MaxStorageBytes != 4096 {
		t.Fatalf("a: admin=%v storage=%d", a.Admin, a.MaxStorageBytes)
	}
}

func TestBurstDefaultsFromRate(t *testing.T) {
	reg, err := Parse(strings.NewReader(
		`{"tenants": [{"name": "a", "key": "k", "rate_per_sec": 0.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := reg.ByName("a")
	if a.Burst != 1 {
		t.Fatalf("burst default = %d, want 1", a.Burst)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tn := &Tenant{Name: "a", Key: "k"}
	ctx := NewContext(context.Background(), tn)
	got, ok := FromContext(ctx)
	if !ok || got != tn {
		t.Fatalf("context round trip: %+v ok=%v", got, ok)
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context produced a tenant")
	}
}
