// Package sched multiplexes many runner.Run calls over a bounded worker
// pool. It is the middle and top of the three-layer execution model the
// facade exposes:
//
//	Run       — one solver, one driver loop (internal/runner);
//	RunBatch  — a fixed slice of named jobs over a worker pool, results in
//	            job order (this package's batch layer);
//	Stream    — a long-lived, channel-fed scheduler: jobs are submitted
//	            while earlier ones run, dispatched by priority, retried on
//	            transient failure, and drained gracefully on Close or
//	            context cancellation (this package's service layer).
//
// The paper's production campaign is not one simulation but a matrix of
// them — scheme comparisons, resolution scalings, control runs — and the
// ROADMAP's north star is a service that accepts work continuously rather
// than one hand-launched binary at a time. A batch is a slice of named
// Jobs, each a solver *factory* plus run options; a stream accepts the same
// Jobs one Submit at a time. Both execute on a bounded worker pool
// (default GOMAXPROCS) under one shared context and, optionally, one shared
// wall-clock budget.
//
// Batch semantics:
//
//   - Solvers are constructed by the job's factory on the worker that runs
//     it, never up front, so a 100-job sweep holds at most `workers` live
//     simulations in memory.
//   - Results come back in job order, regardless of completion order, with
//     a per-job Status (Queued → Running → Done/Failed/Cancelled) and the
//     runner.Report of every job that ran.
//   - Cancelling the context stops running jobs through the runner's own
//     cancellation path and marks still-queued jobs Cancelled without
//     constructing their solvers.
//   - A shared wall-clock budget (WithWallClock) is a batch deadline: each
//     job starts with the remaining budget as its runner wall-clock limit.
//     Because the runner always takes at least one step under a positive
//     budget, late jobs still make forward progress after the deadline —
//     an exhausted budget degrades the batch to one-step-per-job fairness
//     instead of starving the tail of the queue.
//   - One job failing does not abort the batch (a sweep where one
//     configuration diverges should still deliver the rest); inspect each
//     Result. The batch-level error reports only scheduler-level problems:
//     an empty or invalid job list, or context cancellation.
//
// Stream semantics (see Stream for the full contract): Submit enqueues onto
// a priority heap (higher Job.Priority dispatches first, FIFO within a
// priority), Close stops intake and lets the pool drain everything already
// queued, and cancelling the context stops running jobs and reports queued
// ones Cancelled. Results are delivered on a channel in completion order.
//
// Retries (both layers): a job whose factory or Run call fails with an
// error marked retryable (runner.MarkRetryable, or any error implementing
// `Retryable() bool`) is re-run up to WithRetries times with doubling
// backoff (WithRetryBackoff), transitioning through Retrying between
// attempts. Deterministic failures — a diverging configuration fails
// identically every time — are never retried, and neither is cancellation.
//
// Checkpoint-aware resume (both layers): WithJobCheckpoints(dir) gives
// every job its own checkpoint directory dir/<sanitised job name> and wires
// the runner's checkpoint cadence and retention into each Run call. A job
// that also carries a Restore hook is auto-resumed: before calling New, the
// scheduler looks for the newest snapshot in the job's directory and hands
// it to Restore, so re-submitting a killed job (or re-running a killed
// batch) continues from its last checkpoint instead of recomputing. A
// corrupt newest snapshot is quarantined (renamed *.corrupt) and the next
// newest tried; only when no snapshot restores does the job fall back to a
// cold start through New. Job names must be unique after sanitisation —
// the name *is* the resume key.
//
// CPU budgets (both layers): WithCoreBudget makes the scheduler the owner
// of intra-step parallelism. A CoreBudget divides a fixed core count among
// the live jobs (integer shares, floor one, remainder to higher-priority /
// earlier jobs) and rebalances as the live set churns — jobs starting,
// finishing, failing, retrying. Each job's share is plumbed into its Run
// call as a runner.WithWorkerBudget lease that solvers implementing
// runner.WorkerBudgeted observe between steps, so job-level and cell-level
// parallelism compose to the machine size instead of multiplying past it.
// See budget.go for the claim/commit protocol that keeps the held shares
// within the budget while leases rebalance.
//
// Jobs combine freely with the runner's async observer pipeline
// (runner.WithAsyncObserver in a job's Opts): each job then gets its own
// bounded diagnostics/checkpoint queue with the back-pressure policy it
// selects (block = lossless, drop-oldest = the step loop never waits), so
// a sweep's per-job I/O stays off every worker's hot loop.
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"vlasov6d/internal/runner"
)

// Job is one named unit of work: a solver factory, the clock target to
// drive it to, and the runner options for its Run call. The same Job type
// feeds both the batch layer (RunBatch) and the stream layer (Submit).
type Job struct {
	// Name identifies the job in Results and progress updates. Under
	// WithJobCheckpoints it also keys the job's checkpoint directory, so it
	// must be unique (after sanitisation) among the jobs sharing that root:
	// re-submitting a Job with the same Name is how a killed job resumes.
	Name string
	// New constructs the solver. It runs on the worker goroutine executing
	// the job (not at submission), so per-job memory is bounded by the
	// worker count and an expensive construction (IC generation) counts
	// against the job's share of the batch, not the caller's.
	New func() (runner.Solver, error)
	// NewBudgeted is the budget-aware form of New: under WithCoreBudget the
	// scheduler passes the job's freshly acquired core lease, so an
	// expensive construction (IC generation fans out over the phase grid)
	// can size its parallelism to the job's share instead of bursting to
	// GOMAXPROCS before the first step. Without a budget the lease is nil
	// and the factory should fall back to its default parallelism. Exactly
	// one of New and NewBudgeted must be set.
	NewBudgeted func(lease runner.WorkerLease) (runner.Solver, error)
	// Restore rebuilds the solver from a checkpoint file (optional). When
	// set and WithJobCheckpoints is active, the scheduler resumes the job
	// from the newest restorable snapshot in its directory instead of
	// calling New; a snapshot Restore rejects is quarantined and the next
	// newest tried.
	Restore func(path string) (runner.Solver, error)
	// Until is the clock target handed to runner.Run.
	Until float64
	// Priority orders dispatch in the stream layer: higher runs first,
	// equal priorities run in submission order. The batch layer ignores it
	// (a slice is already an explicit order).
	Priority int
	// MinWorkers / MaxWorkers bound this job's share of a scheduler core
	// budget (0 = unbounded): a memory-bandwidth-bound 6D job sets
	// MinWorkers to out-lease the tiny control runs sharing the stream, a
	// serial-ish diagnostics job sets MaxWorkers 1 so its surplus cores go
	// to jobs that can use them. Bounds reshape the division, they do not
	// reserve capacity; see CoreBudget.AcquireBounded for the exact
	// semantics. Ignored without WithCoreBudget.
	MinWorkers int
	MaxWorkers int
	// Tenant tags this job's core lease with a fair-share group: the
	// budget divides cores fairly across tenants before Priority orders
	// jobs within one (see CoreBudget's package comment). Empty joins the
	// implicit default group. Ignored without WithCoreBudget.
	Tenant string
	// TenantCores caps the collective core share of all live jobs carrying
	// the same Tenant tag (0 = uncapped). Ignored without WithCoreBudget.
	TenantCores int
	// Retries overrides the scheduler's WithRetries policy for this job
	// (nil = use the scheduler default). A pointer so an explicit 0 —
	// "never retry this job" — is distinguishable from "no override".
	Retries *int
	// Opts are the runner options for this job's Run call. The scheduler
	// may append wall-clock and checkpoint options from its own
	// configuration.
	Opts []runner.Option
}

// validate checks the per-job invariants shared by Submit and RunBatch.
func (j *Job) validate() error {
	if (j.New == nil) == (j.NewBudgeted == nil) {
		if j.New == nil {
			return fmt.Errorf("sched: job %q has no solver factory", j.Name)
		}
		return fmt.Errorf("sched: job %q sets both New and NewBudgeted", j.Name)
	}
	if j.MinWorkers < 0 || j.MaxWorkers < 0 {
		return fmt.Errorf("sched: job %q: negative worker bound min=%d max=%d",
			j.Name, j.MinWorkers, j.MaxWorkers)
	}
	if j.MaxWorkers > 0 && j.MaxWorkers < j.MinWorkers {
		return fmt.Errorf("sched: job %q: MaxWorkers %d below MinWorkers %d",
			j.Name, j.MaxWorkers, j.MinWorkers)
	}
	if j.TenantCores < 0 {
		return fmt.Errorf("sched: job %q: negative tenant core cap %d", j.Name, j.TenantCores)
	}
	if j.Retries != nil && *j.Retries < 0 {
		return fmt.Errorf("sched: job %q: retry override %d must be non-negative", j.Name, *j.Retries)
	}
	return nil
}

// Status is the lifecycle state of a job.
type Status int

const (
	// Queued: not yet picked up by a worker.
	Queued Status = iota
	// Running: a worker is constructing or driving the solver.
	Running
	// Done: runner.Run returned without error (any stop reason).
	Done
	// Failed: the factory or runner.Run returned a non-cancellation error
	// that was not retried (not retryable, or attempts exhausted).
	Failed
	// Cancelled: the context was cancelled before or during the job.
	Cancelled
	// Retrying: the last attempt failed with a retryable error and the job
	// is backing off before its next attempt.
	Retrying
)

func (s Status) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	case Retrying:
		return "retrying"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Result is the outcome of one job. Batch results are returned in job
// order; stream results are delivered in completion order.
type Result struct {
	// ID identifies the job: its position in the batch, or the submission
	// id SubmitID returned in a stream — the key a service correlates
	// completion-order results back to its own records with.
	ID int
	// Name echoes the job name.
	Name string
	// Status is the job's final state.
	Status Status
	// Attempt is the 1-based attempt that produced this outcome (> 1 only
	// when retries fired).
	Attempt int
	// Report is the runner report of a job that ran (nil for jobs
	// cancelled while still queued or whose factory failed).
	Report *runner.Report
	// Err is the factory/run error of a Failed job, or the cancellation
	// error of a Cancelled job that was already running.
	Err error
}

// Update is one job status transition, delivered to the WithNotify callback
// as work executes — the hook progress tables hang off.
type Update struct {
	// Index is the job's position in the batch, or its submission sequence
	// number in a stream.
	Index int
	// Name echoes the job name.
	Name string
	// Status is the state just entered.
	Status Status
	// Attempt is the 1-based attempt this transition belongs to.
	Attempt int
	// Err accompanies Failed, Retrying and (when the job was running)
	// Cancelled.
	Err error
	// Report accompanies Done and run-level failures.
	Report *runner.Report
}

type options struct {
	workers     int
	wall        time.Duration
	notify      func(Update)
	phaseNotify func(PhaseEvent)
	retries     int
	backoff     time.Duration
	ckptDir     string
	ckptEvery   int
	ckptKeep    int
	ckptKeepSet bool
	budget      int
	budgetSet   bool
	history     int
}

// DefaultJobHistory is the number of terminal job records a stream retains
// for Snapshot/Job when WithJobHistory does not override it.
const DefaultJobHistory = 4096

// Option configures a Scheduler, a RunBatch call or a Stream.
type Option func(*options)

// WithWorkers bounds the worker pool (default GOMAXPROCS; the batch layer
// further caps it at the job count).
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithWallClock gives the whole batch (or stream) one shared wall-clock
// budget. Each job starts with the budget remaining at its start time as
// its own runner wall-clock limit; once the budget is exhausted, every
// remaining job still takes at least one step (the runner's
// forward-progress guarantee), so a checkpoint-cadenced campaign can be
// resumed job by job.
func WithWallClock(budget time.Duration) Option {
	return func(o *options) { o.wall = budget }
}

// WithNotify registers a callback for job status transitions. Calls are
// serialised by the scheduler, so the callback may print or mutate shared
// state without its own locking; it must not block for long (it stalls the
// notifying worker, not the whole pool).
func WithNotify(fn func(Update)) Option {
	return func(o *options) { o.notify = fn }
}

// PhaseEvent is one completed scheduler-level phase of a job's life,
// delivered to the WithPhaseNotify callback: the latency accounting the
// Update stream cannot carry (an Update is a state *transition*; a phase is
// a measured *interval*).
//
// Phases:
//
//	"queue"    — submission to dispatch (stream layer only; Attempt 0)
//	"dispatch" — worker pickup to first solver step: core-lease acquisition
//	             plus solver construction or checkpoint restore, per attempt
//	"backoff"  — the retry delay between two attempts, tagged with the
//	             attempt that failed
type PhaseEvent struct {
	// Index is the job's submission id (stream) or batch position.
	Index int
	// Name echoes the job name.
	Name string
	// Phase is "queue", "dispatch" or "backoff".
	Phase string
	// Attempt is the 1-based attempt the phase belongs to (0 for "queue",
	// which precedes any attempt).
	Attempt int
	// Start and End bracket the phase in wall time.
	Start, End time.Time
}

// WithPhaseNotify registers a callback for completed scheduler phases —
// queue wait, per-attempt dispatch latency, retry backoff. Unlike
// WithNotify the calls are not serialised: fn runs on whichever worker
// goroutine finished the phase and must be safe for concurrent use and
// cheap (a histogram observation, a span append — not I/O).
func WithPhaseNotify(fn func(PhaseEvent)) Option {
	return func(o *options) { o.phaseNotify = fn }
}

// WithRetries allows each job up to n additional attempts after a failure
// that runner.IsRetryable classifies as transient (default 0: fail fast).
// Non-retryable failures and cancellation are never retried.
func WithRetries(n int) Option {
	return func(o *options) { o.retries = n }
}

// WithRetryBackoff sets the delay before the first retry (default 100 ms);
// each further retry doubles it. The backoff sleep is cancellable: a
// context cancellation during backoff reports the job Cancelled.
func WithRetryBackoff(d time.Duration) Option {
	return func(o *options) { o.backoff = d }
}

// WithCoreBudget hands the scheduler ownership of intra-step parallelism: a
// CoreBudget of total cores (0 = GOMAXPROCS) is divided among the live jobs
// — integer shares, floor one, remainder to the higher-priority (then
// earlier-started) jobs — and rebalanced as jobs start, finish, fail or
// retry. Each job's share rides into its Run call as a
// runner.WithWorkerBudget lease, so a solver implementing
// runner.WorkerBudgeted resizes its intra-step worker pool between steps;
// solvers without the capability run unpinned but still hold their share in
// the accounting. A batch creates one budget per Run call; a stream creates
// one for its whole lifetime, so the division tracks the continuously
// churning live-job set. Without this option every job defaults to
// GOMAXPROCS intra-step workers and an N-job pool oversubscribes the
// machine N-fold.
func WithCoreBudget(total int) Option {
	return func(o *options) {
		o.budget = total
		o.budgetSet = true
	}
}

// WithJobHistory bounds how many *terminal* job records a stream retains
// for its Snapshot/Job status surface (0 selects DefaultJobHistory). A
// long-lived service submits indefinitely; without a bound every finished
// job's record — and the O(history) Snapshot walk — grows forever. Once
// the bound is exceeded the oldest terminal records are evicted: Job
// returns false for them, exactly like an id never issued. Live (queued,
// running, retrying) records are never evicted. The batch layer ignores
// this option.
func WithJobHistory(n int) Option {
	return func(o *options) { o.history = n }
}

// WithJobCheckpoints gives every job a private checkpoint directory
// dir/<sanitised job name> and appends the runner's WithCheckpoint (cadence
// from WithJobCheckpointEvery, default every 10 steps) and
// WithCheckpointKeep (retention from WithJobCheckpointKeep, default 3) to
// each job's run options. Jobs whose solver cannot checkpoint fail at step
// 0 — same as calling runner.WithCheckpoint directly. Combined with a Job
// Restore hook this is the kill-and-resume contract: see the package
// comment.
func WithJobCheckpoints(dir string) Option {
	return func(o *options) { o.ckptDir = dir }
}

// WithJobCheckpointEvery sets the per-job checkpoint cadence in steps used
// by WithJobCheckpoints (default 10).
func WithJobCheckpointEvery(n int) Option {
	return func(o *options) { o.ckptEvery = n }
}

// WithJobCheckpointKeep sets the per-job checkpoint retention used by
// WithJobCheckpoints (default 3; 0 keeps everything).
func WithJobCheckpointKeep(n int) Option {
	return func(o *options) {
		o.ckptKeep = n
		o.ckptKeepSet = true
	}
}

// buildOptions applies opts over defaults and validates the result.
func buildOptions(opts []Option) (options, error) {
	o := options{ckptEvery: 10, backoff: 100 * time.Millisecond}
	for _, opt := range opts {
		opt(&o)
	}
	if !o.ckptKeepSet {
		o.ckptKeep = 3
	}
	if o.workers < 0 {
		return o, fmt.Errorf("sched: worker count %d must be non-negative", o.workers)
	}
	if o.wall < 0 {
		return o, fmt.Errorf("sched: wall-clock budget %v must be non-negative", o.wall)
	}
	if o.retries < 0 {
		return o, fmt.Errorf("sched: retry count %d must be non-negative", o.retries)
	}
	if o.backoff < 0 {
		return o, fmt.Errorf("sched: retry backoff %v must be non-negative", o.backoff)
	}
	if o.ckptEvery < 1 {
		return o, fmt.Errorf("sched: checkpoint cadence %d must be ≥ 1 step", o.ckptEvery)
	}
	if o.ckptKeep < 0 {
		return o, fmt.Errorf("sched: checkpoint retention %d must be non-negative", o.ckptKeep)
	}
	if o.budgetSet && o.budget < 0 {
		return o, fmt.Errorf("sched: core budget %d must be non-negative (0 selects GOMAXPROCS)", o.budget)
	}
	if o.history < 0 {
		return o, fmt.Errorf("sched: job history %d must be non-negative (0 selects the default %d)",
			o.history, DefaultJobHistory)
	}
	if o.history == 0 {
		o.history = DefaultJobHistory
	}
	return o, nil
}

// Scheduler executes batches of jobs over a bounded worker pool. The zero
// value is not usable; construct with New. A Scheduler is stateless across
// batches and safe for concurrent Run calls.
type Scheduler struct {
	opts options
}

// New builds a scheduler with the given defaults.
func New(opts ...Option) (*Scheduler, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return &Scheduler{opts: o}, nil
}

// RunBatch executes jobs over a bounded worker pool — the one-call form of
// New(opts...).Run(ctx, jobs).
func RunBatch(ctx context.Context, jobs []Job, opts ...Option) ([]Result, error) {
	s, err := New(opts...)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx, jobs)
}

// Run executes the batch and returns one Result per job, in job order. The
// returned error is non-nil only for scheduler-level problems (invalid
// jobs, context cancellation); per-job failures are reported in Results.
func (s *Scheduler) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sched: empty batch")
	}
	seen := make(map[string]int, len(jobs))
	for i, j := range jobs {
		if err := j.validate(); err != nil {
			return nil, fmt.Errorf("sched: job %d: %w", i, err)
		}
		if s.opts.ckptDir != "" {
			// The sanitised name keys the checkpoint directory; a collision
			// would silently cross-resume two jobs.
			key := sanitizeJobName(j.Name)
			if prev, dup := seen[key]; dup {
				return nil, fmt.Errorf("sched: jobs %d (%q) and %d (%q) share checkpoint key %q",
					prev, jobs[prev].Name, i, j.Name, key)
			}
			seen[key] = i
		}
	}
	workers := s.opts.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var deadline time.Time
	if s.opts.wall > 0 {
		deadline = time.Now().Add(s.opts.wall)
	}
	// One core budget per batch: the live-job set is this batch's running
	// jobs, and the budget dies with the Run call.
	var budget *CoreBudget
	if s.opts.budgetSet {
		budget = NewCoreBudget(s.opts.budget)
	}

	results := make([]Result, len(jobs))
	for i, j := range jobs {
		results[i] = Result{ID: i, Name: j.Name, Status: Queued}
	}

	var mu sync.Mutex // guards results transitions and serialises notify
	transition := func(i int, st Status, attempt int, rep *runner.Report, err error) {
		mu.Lock()
		results[i].Status = st
		results[i].Attempt = attempt
		results[i].Report = rep
		results[i].Err = err
		fn := s.opts.notify
		if fn != nil {
			fn(Update{Index: i, Name: jobs[i].Name, Status: st, Attempt: attempt, Err: err, Report: rep})
		}
		mu.Unlock()
	}

	// Work distribution: a closed channel of job indices. Workers stop
	// pulling as soon as the context dies; the post-wait sweep below marks
	// whatever they never picked up.
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range jobs {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				i := i
				var emit phaseEmitter
				if s.opts.phaseNotify != nil {
					emit = func(phase string, attempt int, start, end time.Time) {
						s.opts.phaseNotify(PhaseEvent{Index: i, Name: jobs[i].Name,
							Phase: phase, Attempt: attempt, Start: start, End: end})
					}
				}
				executeJob(ctx, &s.opts, budget, jobs[i], deadline,
					func(st Status, attempt int, rep *runner.Report, err error) {
						transition(i, st, attempt, rep, err)
					}, emit)
			}
		}()
	}
	wg.Wait()

	// Jobs the dispatcher never handed out (context cancelled) are still
	// Queued: mark them Cancelled so every Result reaches a final state.
	if err := ctx.Err(); err != nil {
		for i := range results {
			mu.Lock()
			queued := results[i].Status == Queued
			mu.Unlock()
			if queued {
				transition(i, Cancelled, 0, nil, nil)
			}
		}
		return results, fmt.Errorf("sched: batch cancelled: %w", err)
	}
	return results, nil
}

// phaseEmitter receives completed phases from the shared executor. A nil
// emitter disables the accounting; the layers build one from
// options.phaseNotify plus their own job identity (submission id or batch
// index).
type phaseEmitter func(phase string, attempt int, start, end time.Time)

// executeJob runs one job on the calling worker goroutine: checkpoint
// resume, the attempt, and the retry-with-backoff loop around it. It is
// shared by the batch and stream layers; transition receives every status
// change with the attempt it belongs to, emit (may be nil) every completed
// dispatch/backoff phase. A non-nil budget scopes each attempt with a core
// lease: acquired before the solver is built, released when the attempt
// ends, so a job backing off between retries holds no cores.
func executeJob(ctx context.Context, o *options, budget *CoreBudget, job Job, deadline time.Time,
	transition func(st Status, attempt int, rep *runner.Report, err error), emit phaseEmitter) {
	if ctx.Err() != nil {
		transition(Cancelled, 0, nil, nil)
		return
	}
	retries := o.retries
	if job.Retries != nil {
		retries = *job.Retries
	}
	for attempt := 1; ; attempt++ {
		transition(Running, attempt, nil, nil)
		rep, err := attemptJob(ctx, o, budget, job, deadline, attempt, emit)
		switch {
		case err == nil:
			transition(Done, attempt, rep, nil)
			return
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			transition(Cancelled, attempt, rep, err)
			return
		case attempt <= retries && runner.IsRetryable(err):
			transition(Retrying, attempt, rep, err)
			// Doubling backoff, cancellable: a job killed during its
			// backoff reports Cancelled like one killed mid-run.
			backoffStart := time.Now()
			if !sleepCtx(ctx, retryDelay(o.backoff, attempt)) {
				transition(Cancelled, attempt, nil,
					fmt.Errorf("sched: job %q cancelled during retry backoff: %w", job.Name, ctx.Err()))
				return
			}
			if emit != nil {
				emit("backoff", attempt, backoffStart, time.Now())
			}
		default:
			transition(Failed, attempt, rep, err)
			return
		}
	}
}

// attemptJob performs one attempt: build (or resume) the solver and drive
// it with the job's options plus the scheduler's checkpoint, core-lease and
// wall-clock wiring. The "dispatch" phase it emits spans worker pickup to
// the hand-off into runner.Run — core-lease acquisition (which can park the
// worker on a saturated budget) plus solver construction or checkpoint
// restore, the two latencies between "Running" and actual stepping.
func attemptJob(ctx context.Context, o *options, budget *CoreBudget, job Job, deadline time.Time,
	attempt int, emit phaseEmitter) (*runner.Report, error) {
	dispatchStart := time.Now()
	var lease *Lease
	if budget != nil {
		// Acquire before the factory runs, so a heavy construction (IC
		// generation) does not start until the job holds cores; the wait is
		// cancellable and bounded by one step of a running job. The job's
		// worker bounds and tenant tag ride into the allocator here.
		l, err := budget.AcquireClaim(ctx, Claim{
			Tenant:      job.Tenant,
			TenantCores: job.TenantCores,
			Priority:    job.Priority,
			Min:         job.MinWorkers,
			Max:         job.MaxWorkers,
		})
		if err != nil {
			return nil, err
		}
		lease = l
		defer lease.Release()
	}
	solver, resumed, err := buildSolver(o, job, lease)
	if err != nil {
		return nil, fmt.Errorf("sched: job %q: factory: %w", job.Name, err)
	}
	if resumed && solver.Clock() >= job.Until {
		// The newest snapshot is already at (or past) the target: the job
		// finished before the kill and there is nothing left to run.
		if emit != nil {
			emit("dispatch", attempt, dispatchStart, time.Now())
		}
		return &runner.Report{Clock: solver.Clock(), Reason: runner.ReasonUntil}, nil
	}
	// Append scheduler-level options to a copy so a retry (or a re-run of
	// the same Job value) never sees the previous attempt's appends.
	opts := job.Opts[:len(job.Opts):len(job.Opts)]
	if lease != nil {
		opts = append(opts, runner.WithWorkerBudget(lease))
	}
	if o.ckptDir != "" {
		opts = append(opts, runner.WithCheckpoint(jobCheckpointDir(o.ckptDir, job.Name), o.ckptEvery))
		if o.ckptKeep > 0 {
			opts = append(opts, runner.WithCheckpointKeep(o.ckptKeep))
		}
	}
	if !deadline.IsZero() {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			// Budget exhausted before this job started: hand the runner the
			// smallest positive budget, which its forward-progress guarantee
			// turns into exactly one step — fairness for the queue's tail.
			remaining = time.Nanosecond
		}
		opts = append(opts, runner.WithWallClock(remaining))
	}
	if emit != nil {
		emit("dispatch", attempt, dispatchStart, time.Now())
	}
	return runner.Run(ctx, solver, job.Until, opts...)
}

// buildSolver resolves the job's solver: the newest restorable checkpoint
// when resume is wired, the cold factory otherwise. Corrupt snapshots are
// quarantined (renamed *.corrupt) so one bad file — a crash mid-rename, a
// truncated disk — cannot wedge a job into failing every resume forever.
// Quarantine is reserved for files that *read* but do not restore: a
// snapshot that cannot even be read (the checkpoint volume briefly
// unavailable) fails the attempt with a retryable error instead, so
// transient I/O never sidelines valid snapshots or silently discards a
// job's progress through a cold start. A non-nil lease (the job's already
// acquired core share) is handed to a NewBudgeted factory so even the cold
// start constructs within the job's budget.
func buildSolver(o *options, job Job, lease *Lease) (s runner.Solver, resumed bool, err error) {
	if o.ckptDir != "" && job.Restore != nil {
		ckpts, err := runner.ListCheckpoints(jobCheckpointDir(o.ckptDir, job.Name))
		if err == nil {
			for i := len(ckpts) - 1; i >= 0; i-- {
				if err := probeReadable(ckpts[i]); err != nil {
					return nil, false, runner.MarkRetryable(
						fmt.Errorf("checkpoint %s unreadable: %w", ckpts[i], err))
				}
				s, rerr := job.Restore(ckpts[i])
				if rerr == nil {
					return s, true, nil
				}
				os.Rename(ckpts[i], ckpts[i]+".corrupt")
			}
		}
	}
	if job.NewBudgeted != nil {
		// An interface holding a nil *Lease is not a nil interface; pass
		// a true nil so unbudgeted factories can test `lease == nil`.
		if lease == nil {
			return coldBuild(job.NewBudgeted(nil))
		}
		return coldBuild(job.NewBudgeted(lease))
	}
	return coldBuild(job.New())
}

// coldBuild adapts a factory return to buildSolver's three-value shape.
func coldBuild(s runner.Solver, err error) (runner.Solver, bool, error) {
	return s, false, err
}

// probeReadable distinguishes "cannot read right now" (transient I/O, do
// not quarantine) from "reads but does not decode" (corrupt, quarantine).
func probeReadable(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.Read(b[:]); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// jobCheckpointDir derives the per-job checkpoint directory under root.
func jobCheckpointDir(root, name string) string {
	return filepath.Join(root, sanitizeJobName(name))
}

// JobCheckpointDir returns the per-job checkpoint directory the scheduler
// derives under root for the given job name — the public form of the
// WithJobCheckpoints layout, so a service can list and serve a job's
// snapshot artifacts without re-implementing the name sanitisation.
func JobCheckpointDir(root, name string) string {
	return jobCheckpointDir(root, name)
}

// sanitizeJobName maps a job name to a safe single path element: anything
// outside [A-Za-z0-9._-] becomes '_', and an empty name becomes "job".
func sanitizeJobName(name string) string {
	if name == "" {
		return "job"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, name)
}

// maxRetryBackoff caps the doubling: past it every further retry waits the
// same bounded interval instead of minutes-to-overflow.
const maxRetryBackoff = time.Minute

// retryDelay returns the backoff before retrying after the given 1-based
// failed attempt: base doubled per prior failure, clamped to
// maxRetryBackoff (the clamp also absorbs shift overflow at high attempt
// counts — backoff must never collapse to a hot loop). A zero base stays
// zero: an explicit no-delay policy.
func retryDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 30 {
		shift = 30
	}
	d := base << shift
	if d <= 0 || d > maxRetryBackoff {
		return maxRetryBackoff
	}
	return d
}

// sleepCtx sleeps for d unless ctx is cancelled first; it reports whether
// the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
