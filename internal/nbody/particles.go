// Package nbody implements the particle side of the hybrid simulation: the
// CDM component evolved with the TreePM N-body method (§5.1.2), and the
// "neutrino-particle" mode used as the paper's §5.4 comparison baseline
// (the TianNu-style sampling of the neutrino distribution function).
//
// Positions are comoving (h⁻¹Mpc) in a periodic box; velocities are the
// canonical u = a²ẋ (km/s), matching the Vlasov convention, so both
// components share the same potential and the same time variable. Particle
// state is double precision, as the paper specifies for the N-body part.
package nbody

import (
	"fmt"
	"math"
)

// Particles is a structure-of-arrays store of equal-mass particles.
type Particles struct {
	N    int
	Mass float64 // mass per particle, internal units (10¹⁰ h⁻¹ M_sun)
	Box  [3]float64
	Pos  [3][]float64
	Vel  [3][]float64
}

// NewParticles allocates n particles of the given mass in a periodic box.
func NewParticles(n int, mass float64, box [3]float64) (*Particles, error) {
	if n < 1 {
		return nil, fmt.Errorf("nbody: invalid particle count %d", n)
	}
	if mass <= 0 {
		return nil, fmt.Errorf("nbody: invalid particle mass %v", mass)
	}
	for d, b := range box {
		if b <= 0 {
			return nil, fmt.Errorf("nbody: invalid box extent [%d]=%v", d, b)
		}
	}
	p := &Particles{N: n, Mass: mass, Box: box}
	for d := 0; d < 3; d++ {
		p.Pos[d] = make([]float64, n)
		p.Vel[d] = make([]float64, n)
	}
	return p, nil
}

// Clone returns a deep copy sharing no storage with p — the value snapshot
// asynchronous checkpointing serialises while the original keeps evolving.
func (p *Particles) Clone() *Particles {
	c := &Particles{N: p.N, Mass: p.Mass, Box: p.Box}
	for d := 0; d < 3; d++ {
		c.Pos[d] = append([]float64(nil), p.Pos[d]...)
		c.Vel[d] = append([]float64(nil), p.Vel[d]...)
	}
	return c
}

// Wrap maps x into [0, L) along dimension d.
func (p *Particles) Wrap(d int, x float64) float64 {
	l := p.Box[d]
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	return x
}

// Drift advances positions by Δt at scale factor a: dx/dt = u/a²
// (the paper's eq. 1 characteristic), wrapping periodically.
func (p *Particles) Drift(dt, a float64) {
	inva2 := dt / (a * a)
	for d := 0; d < 3; d++ {
		pos, vel := p.Pos[d], p.Vel[d]
		for i := range pos {
			pos[i] = p.Wrap(d, pos[i]+vel[i]*inva2)
		}
	}
}

// Kick advances canonical velocities by Δt with per-particle accelerations:
// du/dt = −∇φ = acc.
func (p *Particles) Kick(dt float64, acc [3][]float64) error {
	for d := 0; d < 3; d++ {
		if len(acc[d]) != p.N {
			return fmt.Errorf("nbody: acc[%d] length %d != %d", d, len(acc[d]), p.N)
		}
	}
	for d := 0; d < 3; d++ {
		vel, a := p.Vel[d], acc[d]
		for i := range vel {
			vel[i] += a[i] * dt
		}
	}
	return nil
}

// TotalMomentum returns the total canonical momentum per component.
func (p *Particles) TotalMomentum() [3]float64 {
	var mom [3]float64
	for d := 0; d < 3; d++ {
		s := 0.0
		for _, v := range p.Vel[d] {
			s += v
		}
		mom[d] = s * p.Mass
	}
	return mom
}

// KineticEnergy returns Σ m u²/2 in internal units.
func (p *Particles) KineticEnergy() float64 {
	e := 0.0
	for i := 0; i < p.N; i++ {
		v2 := 0.0
		for d := 0; d < 3; d++ {
			v := p.Vel[d][i]
			v2 += v * v
		}
		e += v2
	}
	return 0.5 * p.Mass * e
}

// CICDeposit adds the particles' mass density onto a periodic mesh of shape
// n covering the box, using cloud-in-cell weights. The deposited quantity is
// comoving mass density (mass per mesh-cell volume).
func (p *Particles) CICDeposit(mesh []float64, n [3]int) error {
	if len(mesh) != n[0]*n[1]*n[2] {
		return fmt.Errorf("nbody: mesh length %d != %d", len(mesh), n[0]*n[1]*n[2])
	}
	var h [3]float64
	for d := 0; d < 3; d++ {
		if n[d] < 1 {
			return fmt.Errorf("nbody: invalid mesh shape %v", n)
		}
		h[d] = p.Box[d] / float64(n[d])
	}
	cellVol := h[0] * h[1] * h[2]
	w := p.Mass / cellVol
	for i := 0; i < p.N; i++ {
		var i0, i1 [3]int
		var w0, w1 [3]float64
		for d := 0; d < 3; d++ {
			// Cell-centred CIC: s is the position in cell units offset so
			// that weights interpolate between cell centres.
			s := p.Pos[d][i]/h[d] - 0.5
			f := math.Floor(s)
			frac := s - f
			c := int(f)
			i0[d] = wrapIdx(c, n[d])
			i1[d] = wrapIdx(c+1, n[d])
			w0[d] = 1 - frac
			w1[d] = frac
		}
		for ax := 0; ax < 2; ax++ {
			ix, wx := pick(ax, i0[0], i1[0], w0[0], w1[0])
			for ay := 0; ay < 2; ay++ {
				iy, wy := pick(ay, i0[1], i1[1], w0[1], w1[1])
				base := (ix*n[1] + iy) * n[2]
				wxy := wx * wy
				for az := 0; az < 2; az++ {
					iz, wz := pick(az, i0[2], i1[2], w0[2], w1[2])
					mesh[base+iz] += w * wxy * wz
				}
			}
		}
	}
	return nil
}

// CICInterp gathers a mesh field at the particle positions with the same
// cloud-in-cell weights used for deposit (required for momentum-conserving
// PM forces) and writes the result into out.
func (p *Particles) CICInterp(field []float64, n [3]int, out []float64) error {
	if len(field) != n[0]*n[1]*n[2] {
		return fmt.Errorf("nbody: field length %d != %d", len(field), n[0]*n[1]*n[2])
	}
	if len(out) != p.N {
		return fmt.Errorf("nbody: out length %d != %d", len(out), p.N)
	}
	var h [3]float64
	for d := 0; d < 3; d++ {
		h[d] = p.Box[d] / float64(n[d])
	}
	for i := 0; i < p.N; i++ {
		var i0, i1 [3]int
		var w0, w1 [3]float64
		for d := 0; d < 3; d++ {
			s := p.Pos[d][i]/h[d] - 0.5
			f := math.Floor(s)
			frac := s - f
			c := int(f)
			i0[d] = wrapIdx(c, n[d])
			i1[d] = wrapIdx(c+1, n[d])
			w0[d] = 1 - frac
			w1[d] = frac
		}
		v := 0.0
		for ax := 0; ax < 2; ax++ {
			ix, wx := pick(ax, i0[0], i1[0], w0[0], w1[0])
			for ay := 0; ay < 2; ay++ {
				iy, wy := pick(ay, i0[1], i1[1], w0[1], w1[1])
				base := (ix*n[1] + iy) * n[2]
				wxy := wx * wy
				for az := 0; az < 2; az++ {
					iz, wz := pick(az, i0[2], i1[2], w0[2], w1[2])
					v += field[base+iz] * wxy * wz
				}
			}
		}
		out[i] = v
	}
	return nil
}

func pick(a, idx0, idx1 int, w0, w1 float64) (int, float64) {
	if a == 0 {
		return idx0, w0
	}
	return idx1, w1
}

func wrapIdx(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// MinimumImage returns the periodic minimum-image separation b−a along
// dimension d.
func (p *Particles) MinimumImage(d int, a, b float64) float64 {
	dx := b - a
	l := p.Box[d]
	if dx > l/2 {
		dx -= l
	} else if dx < -l/2 {
		dx += l
	}
	return dx
}
