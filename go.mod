module vlasov6d

go 1.24
