// Package hybrid couples the six-dimensional Vlasov solver (massive
// neutrinos) with the TreePM N-body solver (CDM) into the paper's hybrid
// simulation (§5.1.2): both components source one gravitational potential —
// the CIC-deposited particle density plus the velocity-space moment of f on
// a shared PM mesh — and both are advanced through the same kick-drift-kick
// cycle in cosmic time with comoving coordinates and canonical velocities
// u = a²ẋ.
//
// Per-step wall-clock time is accounted separately for the Vlasov, tree, PM
// and moment phases, mirroring the decomposition of the paper's Fig. 7, and
// feeds the machine model that reproduces Tables 3–4.
package hybrid

import (
	"fmt"
	"io"
	"math"
	"time"

	"vlasov6d/internal/cosmo"
	"vlasov6d/internal/ic"
	"vlasov6d/internal/nbody"
	"vlasov6d/internal/phase"
	"vlasov6d/internal/poisson"
	"vlasov6d/internal/runner"
	"vlasov6d/internal/snapio"
	"vlasov6d/internal/tree"
	"vlasov6d/internal/vlasov"
)

// Config assembles a hybrid run. The paper's ratios are the defaults: the
// PM mesh is PMFactor× finer than the Vlasov spatial grid per side
// (N_PM = 3³·N_x when N_CDM = 9³·N_x and N_PM = N_CDM/3³), and the velocity
// grid spans UMaxFactor Fermi-Dirac thermal scales.
type Config struct {
	Par cosmo.Params
	// Box is the comoving box size (h⁻¹Mpc).
	Box float64
	// NGrid is the Vlasov spatial grid per side (N_x^{1/3}).
	NGrid int
	// NU is the velocity grid per side (paper: 64).
	NU int
	// NPartSide is the CDM particle count per side (paper: 9·NGrid).
	NPartSide int
	// PMFactor is the PM-mesh refinement over the Vlasov grid (paper: 3).
	PMFactor int
	// PMMesh overrides the PM mesh side directly (0 = derive from
	// NGrid·PMFactor, or NPartSide/3 in NoNeutrino mode).
	PMMesh int
	// UMaxFactor sets UMax = UMaxFactor·u_T (default 12; the FD tail holds
	// ~1e-3 of the mass beyond 12 u_T).
	UMaxFactor float64
	// Scheme names the Vlasov advection scheme (default "slmpp5").
	Scheme string
	// Theta is the tree opening angle (default 0.5).
	Theta float64
	// CFLX, CFLU are the Vlasov CFL targets (default 0.4 each).
	CFLX, CFLU float64
	// MaxDLnA caps the expansion per step (default 0.02).
	MaxDLnA float64
	// Seed feeds the initial-condition generator.
	Seed int64
	// NoTree disables the short-range force (PM-only N-body).
	NoTree bool
	// NoNeutrino disables the Vlasov component entirely (pure N-body
	// control run).
	NoNeutrino bool
	// NuParticles switches the neutrino component from the Vlasov grid to
	// TianNu-style particles (the §5.4 baseline): NNuSide³ particles with
	// Fermi-Dirac thermal velocities, evolved with PM-only gravity.
	NuParticles bool
	// NNuSide is the neutrino particle count per side (paper: 2·N_CDM side,
	// i.e. 8× the CDM count; default 2·NPartSide).
	NNuSide int
	// Workers pins the intra-step worker count from construction onwards
	// (0 = each component's GOMAXPROCS default). Setting it makes the
	// expensive parts of construction — the 6D grid fill and the particle
	// displacement pass run through the phase grid and PM solver — respect
	// a scheduler core lease instead of bursting to GOMAXPROCS before the
	// first step; SetWorkers can still resize the simulation later.
	Workers int
}

// ApplyDefaults fills every unset (zero-valued) optional field with the
// paper's value. It never touches a field the caller set explicitly, so a
// negative or otherwise invalid setting survives to Validate and produces a
// descriptive error instead of being silently replaced.
func (c *Config) ApplyDefaults() {
	if c.PMFactor == 0 {
		c.PMFactor = 3
	}
	if c.UMaxFactor == 0 {
		c.UMaxFactor = 12
	}
	if c.Scheme == "" {
		c.Scheme = "slmpp5"
	}
	if c.Theta == 0 {
		c.Theta = 0.5
	}
	if c.CFLX == 0 {
		c.CFLX = 0.4
	}
	if c.CFLU == 0 {
		c.CFLU = 0.4
	}
	if c.MaxDLnA == 0 {
		c.MaxDLnA = 0.02
	}
	if c.NuParticles && c.NNuSide == 0 {
		c.NNuSide = 2 * c.NPartSide
	}
}

// Validate checks a defaulted Config and returns a descriptive error for
// the first problem found. Everything a later Step would trip over —
// non-positive domains, stencil-starved grids, PM meshes that are not an
// integer refinement of the Vlasov grid — is rejected here, at construction
// time.
func (c *Config) Validate() error {
	if err := c.Par.Validate(); err != nil {
		return err
	}
	if c.Box <= 0 {
		return fmt.Errorf("hybrid: Box = %g h⁻¹Mpc; the comoving box size must be positive", c.Box)
	}
	if c.NGrid < 0 || c.NU < 0 {
		return fmt.Errorf("hybrid: negative grid shape NGrid = %d, NU = %d", c.NGrid, c.NU)
	}
	if c.NuParticles && c.NoNeutrino {
		return fmt.Errorf("hybrid: NuParticles and NoNeutrino are exclusive")
	}
	if !c.NoNeutrino {
		if c.NGrid < 6 {
			return fmt.Errorf("hybrid: NGrid = %d; the SL-MPP5 stencil needs ≥ 6 spatial cells per side", c.NGrid)
		}
		if c.NU < 6 {
			return fmt.Errorf("hybrid: NU = %d; the SL-MPP5 stencil needs ≥ 6 velocity cells per side", c.NU)
		}
	}
	if c.NPartSide < 2 {
		return fmt.Errorf("hybrid: NPartSide = %d; need ≥ 2 CDM particles per side", c.NPartSide)
	}
	if c.PMFactor < 1 {
		return fmt.Errorf("hybrid: PMFactor = %d; must be ≥ 1 (zero selects the paper's 3)", c.PMFactor)
	}
	if c.UMaxFactor <= 0 {
		return fmt.Errorf("hybrid: UMaxFactor = %g; must be positive (zero selects the paper's 12)", c.UMaxFactor)
	}
	if c.Theta <= 0 {
		return fmt.Errorf("hybrid: tree opening angle Theta = %g; must be positive (zero selects 0.5)", c.Theta)
	}
	if c.CFLX <= 0 || c.CFLU <= 0 {
		return fmt.Errorf("hybrid: CFL targets (%g, %g) must be positive (zero selects 0.4)", c.CFLX, c.CFLU)
	}
	if c.MaxDLnA <= 0 {
		return fmt.Errorf("hybrid: MaxDLnA = %g; the expansion cap must be positive (zero selects 0.02)", c.MaxDLnA)
	}
	if c.PMMesh < 0 {
		return fmt.Errorf("hybrid: PMMesh = %d; must be non-negative (zero derives it from NGrid·PMFactor)", c.PMMesh)
	}
	if c.PMMesh > 0 && !c.NoNeutrino && !c.NuParticles {
		if c.PMMesh < c.NGrid || c.PMMesh%c.NGrid != 0 {
			return fmt.Errorf("hybrid: PMMesh = %d is not an integer refinement of NGrid = %d; "+
				"force downsampling and moment resampling need PMMesh = k·NGrid", c.PMMesh, c.NGrid)
		}
	}
	if c.NuParticles && c.NNuSide < 2 {
		return fmt.Errorf("hybrid: NNuSide = %d; need ≥ 2 neutrino particles per side", c.NNuSide)
	}
	if c.Workers < 0 {
		return fmt.Errorf("hybrid: Workers = %d; must be non-negative (zero selects GOMAXPROCS)", c.Workers)
	}
	return nil
}

// Timings accumulates wall-clock time per simulation part (the paper's
// Fig. 7 decomposition).
type Timings struct {
	Vlasov  time.Duration
	Tree    time.Duration
	PM      time.Duration
	Moments time.Duration
	Total   time.Duration
	Steps   int
}

// Simulation is a live hybrid run.
type Simulation struct {
	Cfg  Config
	Grid *phase.Grid // nil when NoNeutrino or NuParticles
	Part *nbody.Particles
	// NuPart holds the particle-sampled neutrinos in NuParticles mode.
	NuPart *nbody.Particles
	VSol   *vlasov.Solver
	PM     *poisson.Solver

	A    float64 // current scale factor
	Time float64 // cosmic time, internal units
	Tim  Timings

	pmMesh    [3]int
	rs        float64 // TreePM split scale
	soft      float64
	rhoPM     []float64 // scratch: total density on PM mesh
	phiLong   []float64
	phiFull   []float64
	accCell   [3][]float64   // Vlasov-grid accelerations
	accPart   [3][]float64   // particle accelerations
	accNuPart [3][]float64   // neutrino-particle accelerations (baseline mode)
	mom       *phase.Moments // reused neutrino moment buffer (one reduction per step)
	nuPM      []float64      // reused neutrino-density resample on the PM mesh
	meshAcc   [3][]float64   // reused PM-mesh acceleration components
	accShort  [3][]float64   // reused tree short-range force scratch
	uT        float64
	gen       *ic.Generator
	primed    bool // forces valid for the current state
	// workers pins the intra-step parallelism of every component (0 =
	// each component's GOMAXPROCS default); set through SetWorkers.
	workers int
}

// SetWorkers pins the intra-step worker count of every parallel component —
// the Vlasov sweeps, the phase-grid moment reductions, the PM FFTs and the
// per-step tree walks — implementing runner.WorkerBudgeted so a
// scheduler-owned core budget can resize a running hybrid simulation
// between steps (minimum 1). All component decompositions are over
// independent lines, cells or particle ranges, so the worker count never
// changes the computed physics. (The Vlasov boundary-loss *diagnostic*
// accumulates across workers in scheduling order and may differ in final
// bits; the evolved state does not.)
func (s *Simulation) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
	if s.VSol != nil {
		s.VSol.SetWorkers(n)
	}
	if s.Grid != nil {
		s.Grid.SetWorkers(n)
	}
	if s.PM != nil {
		s.PM.SetWorkers(n)
	}
}

// New builds a simulation and generates initial conditions at scale factor
// aInit.
func New(cfg Config, aInit float64) (*Simulation, error) {
	return build(cfg, aInit, true)
}

// build constructs a Simulation. With fill it generates the component
// initial conditions (the 6D grid fill and the particle displacement pass —
// by far the most expensive part of construction); without, it leaves the
// component state (Part, Grid/VSol, NuPart) nil for the caller to install,
// making a checkpoint restore O(state size) instead of O(IC generation).
func build(cfg Config, aInit float64, fill bool) (*Simulation, error) {
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if aInit <= 0 || aInit > 1 {
		return nil, fmt.Errorf("hybrid: invalid initial scale factor %v", aInit)
	}
	gen, err := ic.NewGenerator(cfg.Par, cfg.Box, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &Simulation{Cfg: cfg, A: aInit, gen: gen}
	s.workers = cfg.Workers // 0 = component defaults; applied as parts build
	s.Time = cfg.Par.CosmicTime(aInit)
	s.uT = gen.ThermalScale()

	// PM mesh: refinement of the Vlasov grid (or of the particle lattice /
	// 3 when the Vlasov part is disabled, the paper's N_PM = N_CDM/3³ rule).
	nPM := cfg.NGrid * cfg.PMFactor
	if cfg.NoNeutrino {
		nPM = cfg.NPartSide / 3
		if nPM < 4 {
			nPM = 4
		}
	}
	if cfg.PMMesh > 0 {
		nPM = cfg.PMMesh
	}
	s.pmMesh = [3]int{nPM, nPM, nPM}
	pm, err := poisson.NewSolver(s.pmMesh, [3]float64{cfg.Box, cfg.Box, cfg.Box})
	if err != nil {
		return nil, err
	}
	s.PM = pm
	if s.workers > 0 {
		pm.SetWorkers(s.workers)
	}
	cell := cfg.Box / float64(nPM)
	s.rs = 1.25 * cell
	s.soft = cell / 20
	// The tree cutoff 4.5·r_s must fit inside the half-box for the
	// minimum-image walk; on very coarse PM meshes fall back to pure PM
	// (consistent: NoTree solves the unfiltered potential).
	if 4.5*s.rs > cfg.Box/2 {
		s.Cfg.NoTree = true
	}
	s.rhoPM = make([]float64, pm.Size())
	s.phiLong = make([]float64, pm.Size())
	s.phiFull = make([]float64, pm.Size())
	if !fill {
		return s, nil
	}

	// Components.
	if cfg.NuParticles {
		nuP, err := gen.NeutrinoParticles(cfg.NNuSide, aInit)
		if err != nil {
			return nil, err
		}
		s.installNuParticles(nuP)
	} else if !cfg.NoNeutrino {
		umax := cfg.UMaxFactor * s.uT
		g, err := phase.New(cfg.NGrid, cfg.NGrid, cfg.NGrid,
			[3]int{cfg.NU, cfg.NU, cfg.NU},
			[3]float64{cfg.Box, cfg.Box, cfg.Box}, umax)
		if err != nil {
			return nil, err
		}
		if s.workers > 0 {
			// The grid fill is the single most expensive part of
			// construction; pin it before it runs, not after.
			g.SetWorkers(s.workers)
		}
		if err := gen.FillNeutrinoGrid(g, aInit); err != nil {
			return nil, err
		}
		if err := s.installGrid(g); err != nil {
			return nil, err
		}
	}
	part, err := gen.CDMParticles(cfg.NPartSide, aInit)
	if err != nil {
		return nil, err
	}
	s.installParticles(part)
	return s, nil
}

// installParticles adopts the CDM particle set and sizes its force arrays.
func (s *Simulation) installParticles(part *nbody.Particles) {
	s.Part = part
	for d := 0; d < 3; d++ {
		s.accPart[d] = make([]float64, part.N)
	}
}

// installNuParticles adopts the ν-particle set and sizes its force arrays.
func (s *Simulation) installNuParticles(nuP *nbody.Particles) {
	s.NuPart = nuP
	for d := 0; d < 3; d++ {
		s.accNuPart[d] = make([]float64, nuP.N)
	}
}

// installGrid adopts the phase-space grid, builds its Vlasov solver, and
// sizes the cell force arrays.
func (s *Simulation) installGrid(g *phase.Grid) error {
	vs, err := vlasov.New(g, s.Cfg.Scheme)
	if err != nil {
		return err
	}
	s.Grid = g
	s.VSol = vs
	if s.workers > 0 {
		// A pinned worker count survives component (re)installation, e.g. a
		// checkpoint restore into an already-budgeted simulation.
		vs.SetWorkers(s.workers)
		g.SetWorkers(s.workers)
	}
	ncell := g.NCells()
	for d := 0; d < 3; d++ {
		s.accCell[d] = make([]float64, ncell)
	}
	return nil
}

// NeutrinoDensityPM returns the neutrino density moment resampled onto the
// PM mesh (replication: density is intensive), or nil without neutrinos.
// The moment computation is charged to the Moments timer.
func (s *Simulation) NeutrinoDensityPM() []float64 {
	if s.Grid == nil {
		return nil
	}
	t0 := time.Now()
	s.mom = s.Grid.ComputeMomentsInto(s.mom)
	m := s.mom
	s.Tim.Moments += time.Since(t0)
	r := s.pmMesh[0] / s.Grid.NX
	if len(s.nuPM) != s.PM.Size() {
		s.nuPM = make([]float64, s.PM.Size())
	}
	out := s.nuPM
	nx, ny, nz := s.Grid.NX, s.Grid.NY, s.Grid.NZ
	npmY, npmZ := s.pmMesh[1], s.pmMesh[2]
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				v := m.Density[(ix*ny+iy)*nz+iz]
				for a := 0; a < r; a++ {
					for b := 0; b < r; b++ {
						base := ((ix*r+a)*npmY + iy*r + b) * npmZ
						for c := 0; c < r; c++ {
							out[base+iz*r+c] = v
						}
					}
				}
			}
		}
	}
	return out
}

// computeForces fills accCell (Vlasov-grid acceleration from the full
// potential) and accPart (particle acceleration: filtered PM + tree).
func (s *Simulation) computeForces() error {
	a := s.A
	coeff := s.Cfg.Par.PoissonCoeff(a)

	// Shared density mesh.
	t0 := time.Now()
	for i := range s.rhoPM {
		s.rhoPM[i] = 0
	}
	if err := s.Part.CICDeposit(s.rhoPM, s.pmMesh); err != nil {
		return err
	}
	if s.NuPart != nil {
		if err := s.NuPart.CICDeposit(s.rhoPM, s.pmMesh); err != nil {
			return err
		}
	}
	if nu := s.NeutrinoDensityPM(); nu != nil {
		for i, v := range nu {
			s.rhoPM[i] += v
		}
	}

	// Full (unfiltered) potential → Vlasov-grid acceleration and (in the
	// baseline mode) the PM-only neutrino-particle acceleration.
	if s.Grid != nil || s.NuPart != nil {
		if _, err := s.PM.SolveFiltered(s.rhoPM, coeff, 0, s.phiFull); err != nil {
			return err
		}
		if err := s.PM.AccelInto(s.phiFull, &s.meshAcc); err != nil {
			return err
		}
		meshAcc := s.meshAcc
		if s.Grid != nil {
			s.downsampleAccel(meshAcc)
		}
		if s.NuPart != nil {
			for d := 0; d < 3; d++ {
				if err := s.NuPart.CICInterp(meshAcc[d], s.pmMesh, s.accNuPart[d]); err != nil {
					return err
				}
			}
		}
	}

	// Filtered potential → particle PM force.
	rsUse := s.rs
	if s.Cfg.NoTree {
		rsUse = 0
	}
	if _, err := s.PM.SolveFiltered(s.rhoPM, coeff, rsUse, s.phiLong); err != nil {
		return err
	}
	// The full-potential interpolations above are complete, so the mesh
	// acceleration scratch can be reused for the filtered potential.
	if err := s.PM.AccelInto(s.phiLong, &s.meshAcc); err != nil {
		return err
	}
	for d := 0; d < 3; d++ {
		if err := s.Part.CICInterp(s.meshAcc[d], s.pmMesh, s.accPart[d]); err != nil {
			return err
		}
	}
	s.Tim.PM += time.Since(t0)

	// Tree short-range for particles.
	if !s.Cfg.NoTree {
		t1 := time.Now()
		tr, err := tree.Build(s.Part, tree.Options{
			Theta: s.Cfg.Theta, RSplit: s.rs, Soft: s.soft,
		})
		if err != nil {
			return err
		}
		if s.workers > 0 {
			tr.SetWorkers(s.workers)
		}
		short := s.accShort
		for d := 0; d < 3; d++ {
			if len(short[d]) != s.Part.N {
				short[d] = make([]float64, s.Part.N)
			}
		}
		s.accShort = short
		if err := tr.AccelAll(short); err != nil {
			return err
		}
		inva := 1 / a
		for d := 0; d < 3; d++ {
			av, sv := s.accPart[d], short[d]
			for i := range av {
				av[i] += inva * sv[i]
			}
		}
		s.Tim.Tree += time.Since(t1)
	}
	s.primed = true
	return nil
}

// ensureForces computes forces once for the current state so SuggestDT has
// valid accelerations before the first Step (and after a Restore).
func (s *Simulation) ensureForces() error {
	if s.primed {
		return nil
	}
	return s.computeForces()
}

// downsampleAccel block-averages the PM-mesh acceleration onto the Vlasov
// spatial grid.
func (s *Simulation) downsampleAccel(meshAcc [3][]float64) {
	g := s.Grid
	r := s.pmMesh[0] / g.NX
	inv := 1 / float64(r*r*r)
	npmY, npmZ := s.pmMesh[1], s.pmMesh[2]
	for d := 0; d < 3; d++ {
		dst := s.accCell[d]
		src := meshAcc[d]
		for ix := 0; ix < g.NX; ix++ {
			for iy := 0; iy < g.NY; iy++ {
				for iz := 0; iz < g.NZ; iz++ {
					sum := 0.0
					for a := 0; a < r; a++ {
						for b := 0; b < r; b++ {
							base := ((ix*r+a)*npmY + iy*r + b) * npmZ
							for c := 0; c < r; c++ {
								sum += src[base+iz*r+c]
							}
						}
					}
					dst[(ix*g.NY+iy)*g.NZ+iz] = sum * inv
				}
			}
		}
	}
}

// SuggestDT picks the global time step: Vlasov CFL targets, a particle
// displacement cap of one PM cell, and the expansion cap MaxDLnA. Forces
// are computed lazily for the first call; if that fails the expansion cap
// alone is returned and the underlying error surfaces from the next Step.
func (s *Simulation) SuggestDT() float64 {
	if err := s.ensureForces(); err != nil {
		return s.Cfg.MaxDLnA / s.Cfg.Par.Hubble(s.A)
	}
	a := s.A
	dt := math.Inf(1)
	if s.VSol != nil {
		if d := s.VSol.SuggestDT(a, s.accCell, s.Cfg.CFLX, s.Cfg.CFLU); d < dt {
			dt = d
		}
	}
	// Particle CFL: max |u|·dt/a² ≤ PM cell. The thermal neutrino particles
	// are the hot component and usually set this limit in baseline mode.
	umax := 0.0
	for d := 0; d < 3; d++ {
		for _, v := range s.Part.Vel[d] {
			if av := math.Abs(v); av > umax {
				umax = av
			}
		}
		if s.NuPart != nil {
			for _, v := range s.NuPart.Vel[d] {
				if av := math.Abs(v); av > umax {
					umax = av
				}
			}
		}
	}
	if umax > 0 {
		cell := s.Cfg.Box / float64(s.pmMesh[0])
		if d := cell * a * a / umax; d < dt {
			dt = d
		}
	}
	// Expansion cap: dt ≤ MaxDLnA / H(a).
	if d := s.Cfg.MaxDLnA / s.Cfg.Par.Hubble(a); d < dt {
		dt = d
	}
	return dt
}

// Step advances the whole coupled system by dt using kick-drift-kick with a
// force refresh at the end of the drift (standard leapfrog).
func (s *Simulation) Step(dt float64) error {
	t0 := time.Now()
	if err := s.computeForces(); err != nil {
		return err
	}
	// Half kicks.
	if err := s.kickAll(dt); err != nil {
		return err
	}
	// Drifts at the midpoint scale factor.
	tMid := s.Time + dt/2
	aMid := s.Cfg.Par.ScaleFactorAt(tMid)
	tv := time.Now()
	if s.VSol != nil {
		if err := s.VSol.Drift(dt, aMid); err != nil {
			return err
		}
		s.Tim.Vlasov += time.Since(tv)
	}
	s.Part.Drift(dt, aMid)
	if s.NuPart != nil {
		s.NuPart.Drift(dt, aMid)
	}
	// Advance time, refresh forces, second half kick.
	s.Time += dt
	s.A = s.Cfg.Par.ScaleFactorAt(s.Time)
	if err := s.computeForces(); err != nil {
		return err
	}
	if err := s.kickAll(dt); err != nil {
		return err
	}
	s.Tim.Steps++
	s.Tim.Total += time.Since(t0)
	return nil
}

// kickAll applies half-kicks (dt/2) to both components with current forces.
func (s *Simulation) kickAll(dt float64) error {
	if s.VSol != nil {
		tv := time.Now()
		if err := s.VSol.KickHalf(dt, s.accCell); err != nil {
			return err
		}
		s.Tim.Vlasov += time.Since(tv)
	}
	if s.NuPart != nil {
		if err := s.NuPart.Kick(dt/2, s.accNuPart); err != nil {
			return err
		}
	}
	return s.Part.Kick(dt/2, s.accPart)
}

// Clock returns the run coordinate driven by the runner: the scale factor.
func (s *Simulation) Clock() float64 { return s.A }

// ClampDT shrinks the cosmic-time step dt so the scale factor does not
// overshoot the target `until` (the runner's DTClamper capability: the
// simulation steps in cosmic time but clocks in scale factor).
func (s *Simulation) ClampDT(dt, until float64) float64 {
	tEnd := s.Cfg.Par.CosmicTime(until)
	if s.Time+dt > tEnd {
		dt = tEnd - s.Time
	}
	return dt
}

// Diagnostics reports the uniform per-step summary: scale factor, cosmic
// time, total mass, plus redshift, per-component masses and the Vlasov
// boundary loss under Extra. The result is a value snapshot with a fresh
// Extra map — the runner's contract for off-thread (async observer)
// delivery.
func (s *Simulation) Diagnostics() runner.Diagnostics {
	nu, cdm := s.TotalMass()
	extra := map[string]float64{
		"z":        s.Redshift(),
		"nu_mass":  nu,
		"cdm_mass": cdm,
	}
	if s.VSol != nil {
		extra["boundary_loss"] = s.VSol.BoundaryLoss
	}
	return runner.Diagnostics{Clock: s.A, Time: s.Time, Mass: nu + cdm, Extra: extra}
}

// Checkpoint writes a restorable snapshot through snapio (the runner's
// Checkpointer capability). Restore rebuilds a Simulation from it. Every
// mode can snapshot: the ν-particle baseline rides the second particle
// section of snapio format v2.
func (s *Simulation) Checkpoint(w io.Writer) (int64, error) {
	return snapio.Write(w, s.snapshot(false))
}

// CaptureCheckpoint is the runner's async-checkpointing capability: it
// deep-copies the evolving state (an O(state) memcpy) on the calling
// goroutine and returns a write function the I/O pipeline can run
// concurrently with the next Steps, so the expensive encode + checksum +
// write overlaps compute.
func (s *Simulation) CaptureCheckpoint() (func(w io.Writer) (int64, error), error) {
	snap := s.snapshot(true)
	return func(w io.Writer) (int64, error) {
		return snapio.Write(w, snap)
	}, nil
}

// snapshot bundles the current state, deep-copied when clone is set.
func (s *Simulation) snapshot(clone bool) *snapio.Snapshot {
	snap := &snapio.Snapshot{A: s.A, Time: s.Time, Part: s.Part, Grid: s.Grid, NuPart: s.NuPart}
	if clone {
		snap.Part = snap.Part.Clone()
		if snap.Grid != nil {
			snap.Grid = snap.Grid.Clone()
		}
		if snap.NuPart != nil {
			snap.NuPart = snap.NuPart.Clone()
		}
	}
	return snap
}

// TotalMass returns (ν mass, CDM mass) for conservation checks.
func (s *Simulation) TotalMass() (nu, cdm float64) {
	if s.Grid != nil {
		nu = s.Grid.TotalMass()
	}
	if s.NuPart != nil {
		nu = float64(s.NuPart.N) * s.NuPart.Mass
	}
	return nu, float64(s.Part.N) * s.Part.Mass
}

// Redshift returns the current redshift z = 1/a − 1.
func (s *Simulation) Redshift() float64 { return 1/s.A - 1 }

// Cosmo exposes the parameter set.
func (s *Simulation) Cosmo() cosmo.Params { return s.Cfg.Par }

// Restore rebuilds a Simulation from a snapshot: the particle sets and
// (when present) phase-space grid are installed directly into a simulation
// skeleton built without generating initial conditions, so resume startup
// is O(state size) rather than O(IC generation). The configuration must
// describe the same discretisation the snapshot was taken with.
func Restore(cfg Config, snap *snapio.Snapshot) (*Simulation, error) {
	if snap == nil || snap.Part == nil {
		return nil, fmt.Errorf("hybrid: restore needs a snapshot with particles")
	}
	cfgUse := cfg
	if snap.Grid == nil && !cfg.NuParticles {
		// A particle-only snapshot restores as a pure N-body run.
		cfgUse.NoNeutrino = true
	}
	s, err := build(cfgUse, snap.A, false)
	if err != nil {
		return nil, err
	}
	if cfgUse.NuParticles && snap.NuPart == nil {
		return nil, fmt.Errorf("hybrid: ν-particle config but the snapshot has no neutrino particles " +
			"(regenerating them would mix evolved CDM with fresh ICs)")
	}
	if !cfgUse.NuParticles && snap.NuPart != nil {
		return nil, fmt.Errorf("hybrid: snapshot holds ν particles but the config is not in NuParticles mode")
	}
	if want := s.Cfg.NPartSide * s.Cfg.NPartSide * s.Cfg.NPartSide; snap.Part.N != want {
		return nil, fmt.Errorf("hybrid: snapshot has %d particles, config wants %d", snap.Part.N, want)
	}
	s.installParticles(snap.Part)
	if snap.Grid != nil {
		if s.Cfg.NoNeutrino || s.Cfg.NuParticles {
			return nil, fmt.Errorf("hybrid: config has no Vlasov component for the snapshot grid")
		}
		g := snap.Grid
		if g.NX != s.Cfg.NGrid || g.NY != s.Cfg.NGrid || g.NZ != s.Cfg.NGrid ||
			g.NU != [3]int{s.Cfg.NU, s.Cfg.NU, s.Cfg.NU} {
			return nil, fmt.Errorf("hybrid: snapshot grid %d×%d×%d×%v != config %d³×%d³",
				g.NX, g.NY, g.NZ, g.NU, s.Cfg.NGrid, s.Cfg.NU)
		}
		if err := s.installGrid(g); err != nil {
			return nil, err
		}
	}
	if snap.NuPart != nil {
		if want := s.Cfg.NNuSide * s.Cfg.NNuSide * s.Cfg.NNuSide; snap.NuPart.N != want {
			return nil, fmt.Errorf("hybrid: snapshot has %d ν particles, config wants %d", snap.NuPart.N, want)
		}
		s.installNuParticles(snap.NuPart)
	}
	s.A = snap.A
	if snap.Time > 0 {
		s.Time = snap.Time
	} else {
		s.Time = s.Cfg.Par.CosmicTime(snap.A)
	}
	s.primed = false // no forces describe the installed state yet
	return s, nil
}
