package sched

import (
	"context"
	"fmt"
	"testing"

	"vlasov6d/internal/runner"
)

// trivialJob finishes in one step — the job body is ~free, so these benches
// time the scheduler's own dispatch overhead: queueing, status transitions,
// result delivery. The BENCH trajectory tracks jobs/sec of the stream path
// against the slice path so the streaming layer's extra machinery (heap,
// channels, retry plumbing) stays visibly cheap.
func trivialJob(name string) Job {
	return Job{
		Name:  name,
		Until: 1,
		New:   func() (runner.Solver, error) { return &fake{dt: 1}, nil },
	}
}

// BenchmarkSchedulerDispatch times the slice path: RunBatch over batches of
// trivial jobs.
func BenchmarkSchedulerDispatch(b *testing.B) {
	const batch = 64
	jobs := make([]Job, batch)
	for i := range jobs {
		jobs[i] = trivialJob(fmt.Sprintf("j%d", i))
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := RunBatch(ctx, jobs, WithWorkers(4))
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != batch {
			b.Fatal("short batch")
		}
	}
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkStreamThroughput times the stream path: the same trivial jobs
// submitted through the priority queue with results consumed concurrently.
func BenchmarkStreamThroughput(b *testing.B) {
	const batch = 64
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewStream(ctx, WithWorkers(4))
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan int)
		go func() {
			n := 0
			for range s.Results() {
				n++
			}
			done <- n
		}()
		for j := 0; j < batch; j++ {
			if err := s.Submit(trivialJob(fmt.Sprintf("j%d", j))); err != nil {
				b.Fatal(err)
			}
		}
		s.Close()
		if n := <-done; n != batch {
			b.Fatal("short stream")
		}
	}
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "jobs/s")
}
