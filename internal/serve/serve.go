// Package serve is the HTTP control plane over the streaming scheduler —
// simulation as a service. A Server owns one long-lived sched.Stream (with
// an optional CoreBudget and per-job checkpointing) and a catalog of
// scenarios; remote clients submit serialisable JobSpecs, watch status and
// live diagnostics, cancel jobs, and download checkpoint artifacts:
//
//	POST   /v1/jobs                      submit a catalog.JobSpec, get an id
//	GET    /v1/jobs                      list every submission's status
//	GET    /v1/jobs/{id}                 one submission's status
//	DELETE /v1/jobs/{id}                 cancel (queued or running)
//	GET    /v1/jobs/{id}/diagnostics     live SSE stream of per-step diagnostics
//	GET    /v1/jobs/{id}/checkpoints     list the job's snapshot artifacts
//	GET    /v1/jobs/{id}/checkpoints/{file}  download one artifact
//	GET    /v1/scenarios                 the catalog's contract surface
//	GET    /healthz                      liveness
//	GET    /metrics                      text-format counters
//
// Diagnostics ride the runner's async observer pipeline (value snapshots
// off the hot step loop, DropOldest back-pressure), so a slow or absent
// SSE client never stalls a solver. Shutdown is graceful: Drain stops
// intake (submissions get 503), lets queued and running jobs finish —
// checkpointing as they go — until the deadline, then cancels the
// remainder through the scheduler's own cancellation path and flushes
// every result. The paper's campaigns are hand-launched one-shot jobs;
// this is the always-on shape (SK-Gd's real-time monitor is the exemplar)
// the ROADMAP's service north star asks for.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vlasov6d/internal/catalog"
	"vlasov6d/internal/runner"
	"vlasov6d/internal/sched"
	"vlasov6d/internal/snapio"
)

// Config assembles a Server.
type Config struct {
	// Catalog is the scenario registry submissions resolve against
	// (required).
	Catalog *catalog.Catalog
	// Workers bounds the scheduler pool (0 = GOMAXPROCS).
	Workers int
	// Budget is the core budget divided among live jobs (0 = no budget:
	// every job runs unpinned).
	Budget int
	// CheckpointDir is the per-job checkpoint root (empty = no
	// checkpointing; the checkpoints endpoints then return 404).
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in steps (0 = the
	// scheduler default).
	CheckpointEvery int
	// Retries is the default retry policy for transient failures; a spec
	// may override it per job.
	Retries int
	// DiagBuffer is the per-job async diagnostics queue capacity
	// (0 = 256). The queue is lossy (DropOldest): diagnostics are a
	// monitoring surface, not the science record.
	DiagBuffer int
	// History bounds how many terminal job records the server (and its
	// stream) retain for the status endpoints (0 = sched.DefaultJobHistory).
	// An always-on daemon accepts work indefinitely; evicting the oldest
	// finished jobs keeps memory and GET /v1/jobs bounded.
	History int
}

// jobEntry is the server-side record of one submission: the spec it came
// from, the SSE subscribers watching it, and its terminal result.
type jobEntry struct {
	id        int
	spec      catalog.JobSpec
	submitted time.Time
	subs      map[chan sseEvent]struct{}
	result    *sched.Result // non-nil once terminal
}

// sseEvent is one message on a job's diagnostics stream.
type sseEvent struct {
	// Type is the SSE event name: "diag", "status" or "done".
	Type string
	// Data is the JSON payload.
	Data any
}

// Server is the control plane. Construct with New, mount Handler, and
// Drain (or Close) on shutdown.
type Server struct {
	cfg    Config
	stream *sched.Stream
	cancel context.CancelFunc
	start  time.Time

	mu       sync.Mutex
	jobs     map[int]*jobEntry
	terminal []int // terminal entry ids oldest-first — the eviction queue
	draining bool

	// counters, guarded by mu: the /metrics surface.
	submitted, completed, failed, cancelled, retried int64

	drained chan struct{} // closed when the stream's results are flushed
}

// New starts the control plane: the stream's worker pool is live when New
// returns. ctx bounds the whole service — cancelling it is the fast
// shutdown (running jobs stop mid-run); prefer Drain for the graceful one.
func New(ctx context.Context, cfg Config) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("serve: nil catalog")
	}
	if cfg.DiagBuffer == 0 {
		cfg.DiagBuffer = 256
	}
	if cfg.History == 0 {
		cfg.History = sched.DefaultJobHistory
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Server{
		cfg:     cfg,
		cancel:  cancel,
		start:   time.Now(),
		jobs:    make(map[int]*jobEntry),
		drained: make(chan struct{}),
	}
	opts := []sched.Option{
		sched.WithNotify(s.onUpdate),
		sched.WithRetries(cfg.Retries),
		sched.WithJobHistory(cfg.History),
	}
	if cfg.Workers > 0 {
		opts = append(opts, sched.WithWorkers(cfg.Workers))
	}
	if cfg.Budget > 0 {
		opts = append(opts, sched.WithCoreBudget(cfg.Budget))
	}
	if cfg.CheckpointDir != "" {
		opts = append(opts, sched.WithJobCheckpoints(cfg.CheckpointDir))
		if cfg.CheckpointEvery > 0 {
			opts = append(opts, sched.WithJobCheckpointEvery(cfg.CheckpointEvery))
		}
	}
	stream, err := sched.NewStream(sctx, opts...)
	if err != nil {
		cancel()
		return nil, err
	}
	s.stream = stream
	go s.consumeResults()
	return s, nil
}

// consumeResults drains the stream's Results channel for the server's
// lifetime, recording terminal outcomes and waking SSE watchers. The
// channel closes when the stream is fully drained (after Close or
// cancellation), which is the service's "everything flushed" signal.
func (s *Server) consumeResults() {
	for r := range s.stream.Results() {
		r := r
		s.mu.Lock()
		switch r.Status {
		case sched.Done:
			s.completed++
		case sched.Failed:
			s.failed++
		case sched.Cancelled:
			s.cancelled++
		}
		if e, ok := s.jobs[r.ID]; ok {
			e.result = &r
			s.publishLocked(e, sseEvent{Type: "done", Data: statusBody(e, s.snapshotFor(r.ID))})
			// Mirror the stream's history bound: evict the oldest terminal
			// entries so an always-on daemon's memory stays bounded.
			// Evicted entries disappear from the map only — attached SSE
			// handlers keep their pointer and still see the result.
			s.terminal = append(s.terminal, r.ID)
			for len(s.terminal) > s.cfg.History {
				delete(s.jobs, s.terminal[0])
				s.terminal = s.terminal[1:]
			}
		}
		s.mu.Unlock()
	}
	close(s.drained)
}

// snapshotFor reads the scheduler's view of one submission (zero-value
// snapshot if the id is unknown — callers pair it with their own entry).
func (s *Server) snapshotFor(id int) sched.JobSnapshot {
	js, _ := s.stream.Job(id)
	return js
}

// onUpdate receives every scheduler status transition (serialised by the
// stream) and forwards it to the job's SSE subscribers.
func (s *Server) onUpdate(u sched.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if u.Status == sched.Retrying {
		s.retried++
	}
	e, ok := s.jobs[u.Index]
	if !ok {
		return
	}
	body := map[string]any{
		"id":      u.Index,
		"name":    u.Name,
		"status":  u.Status.String(),
		"attempt": u.Attempt,
	}
	if u.Err != nil {
		body["error"] = u.Err.Error()
	}
	s.publishLocked(e, sseEvent{Type: "status", Data: body})
}

// publishLocked sends an event to every subscriber of a job without
// blocking: a slow SSE client loses events, never stalls the scheduler.
// Callers hold s.mu.
func (s *Server) publishLocked(e *jobEntry, ev sseEvent) {
	for ch := range e.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// publishDiag delivers one diagnostics snapshot to a job's subscribers; it
// runs on the job's async observer goroutine, off the step loop.
func (s *Server) publishDiag(e *jobEntry, step int, d runner.Diagnostics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(e.subs) == 0 {
		return
	}
	body := map[string]any{
		"step":  step,
		"clock": safeNum(d.Clock),
		"time":  safeNum(d.Time),
		"mass":  safeNum(d.Mass),
	}
	for k, v := range d.Extra {
		body[k] = safeNum(v)
	}
	s.publishLocked(e, sseEvent{Type: "diag", Data: body})
}

// safeNum makes a float JSON-encodable: encoding/json rejects NaN and ±Inf,
// and a diverging run's diagnostics (a client-chosen unstable dt) must
// degrade to a readable value, not silently kill the SSE stream before its
// terminal event.
func safeNum(f float64) any {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Sprintf("%g", f)
	}
	return f
}

// Stream exposes the underlying scheduler (tests and embedders).
func (s *Server) Stream() *sched.Stream { return s.stream }

// Drain is the graceful shutdown: stop accepting submissions, close the
// stream so queued and running jobs finish (checkpointing on their
// cadence), and flush every result. If ctx expires first the remaining
// jobs are cancelled through the scheduler and the drain completes on the
// fast path. Drain returns nil for a clean drain and ctx.Err() when the
// deadline forced cancellation.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stream.Close()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-s.drained
		return ctx.Err()
	}
}

// Close is the fast shutdown: cancel everything and wait for the flush.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stream.Close()
	s.cancel()
	<-s.drained
}

// Handler returns the control plane's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/diagnostics", s.handleDiagnostics)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoints", s.handleCheckpoints)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoints/{file}", s.handleCheckpointFile)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// writeErr writes a JSON error body.
func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleSubmit resolves a JobSpec through the catalog and submits it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec catalog.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad spec: %w", err))
		return
	}
	job, err := s.cfg.Catalog.Job(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	entry := &jobEntry{spec: spec, submitted: time.Now(), subs: make(map[chan sseEvent]struct{})}
	// The per-job diagnostics pipe: value snapshots delivered off the step
	// loop, dropped (oldest first) when no SSE client keeps up.
	job.Opts = append(job.Opts, runner.WithAsyncObserver(
		func(step int, d runner.Diagnostics) error {
			s.publishDiag(entry, step, d)
			return nil
		},
		runner.WithAsyncBuffer(s.cfg.DiagBuffer),
		runner.WithBackpressure(runner.DropOldest),
	))
	// Registration holds s.mu across SubmitID so the notify callback —
	// which also takes s.mu — cannot observe the job before its entry
	// exists, even though a worker may pick it up immediately.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("serve: draining, not accepting work"))
		return
	}
	id, err := s.stream.SubmitID(job)
	if err != nil {
		s.mu.Unlock()
		// A closed or cancelled stream is the service shutting down — the
		// same 503 as the draining gate. Only the duplicate-checkpoint-key
		// rejection is a true conflict with existing state.
		if errors.Is(err, sched.ErrStreamClosed) ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		writeErr(w, http.StatusConflict, err)
		return
	}
	entry.id = id
	s.jobs[id] = entry
	s.submitted++
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     id,
		"name":   job.Name,
		"status": sched.Queued.String(),
	})
}

// statusBody renders one submission's status document. A recorded terminal
// result is authoritative over the scheduler snapshot: the stream's
// bounded history may already have evicted the record (js then reads as a
// zero value), but the result the server holds is the job's true outcome.
func statusBody(e *jobEntry, js sched.JobSnapshot) map[string]any {
	name, status, attempt := js.Name, js.Status.String(), js.Attempt
	errMsg := ""
	if js.Err != nil {
		errMsg = js.Err.Error()
	}
	if r := e.result; r != nil {
		name, status, attempt = r.Name, r.Status.String(), r.Attempt
		if r.Err != nil {
			errMsg = r.Err.Error()
		}
	}
	body := map[string]any{
		"id":        e.id,
		"name":      name,
		"scenario":  e.spec.Scenario,
		"status":    status,
		"attempt":   attempt,
		"priority":  e.spec.Priority,
		"submitted": e.submitted.UTC().Format(time.RFC3339Nano),
	}
	if errMsg != "" {
		body["error"] = errMsg
	}
	if e.result != nil && e.result.Report != nil {
		rep := e.result.Report
		body["report"] = map[string]any{
			"steps":            rep.Steps,
			"clock":            safeNum(rep.Clock),
			"wall_seconds":     rep.Wall.Seconds(),
			"reason":           rep.Reason.String(),
			"checkpoints":      len(rep.Checkpoints),
			"checkpoint_bytes": rep.CheckpointBytes,
			"dropped_obs":      rep.DroppedObservations,
		}
	}
	return body
}

// lookup resolves the {id} path value to the entry and scheduler snapshot.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*jobEntry, sched.JobSnapshot, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad job id %q", r.PathValue("id")))
		return nil, sched.JobSnapshot{}, false
	}
	s.mu.Lock()
	e, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: no job %d", id))
		return nil, sched.JobSnapshot{}, false
	}
	return e, s.snapshotFor(id), true
}

// handleList reports every retained submission, newest last. The server's
// own records drive the listing (they, not the stream's bounded history,
// decide what is still reportable); the scheduler snapshot fills in the
// live statuses.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	byID := make(map[int]sched.JobSnapshot)
	for _, js := range s.stream.Snapshot() {
		byID[js.ID] = js
	}
	s.mu.Lock()
	ids := make([]int, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		out = append(out, statusBody(s.jobs[id], byID[id]))
	}
	depth := s.stream.Pending()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out, "queued": depth})
}

// handleGet reports one submission.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e, js, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	body := statusBody(e, js)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

// handleCancel cancels one submission (queued or running).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	e, js, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !s.stream.Cancel(e.id) {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("serve: job %d already %s", e.id, js.Status))
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": e.id, "status": "cancelling"})
}

// handleScenarios serves the catalog's contract surface.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": s.cfg.Catalog.Scenarios()})
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"draining":       draining,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleMetrics serves text-format counters (one "name value" per line,
// Prometheus-style exposition without the type annotations).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	submitted, completed, failed, cancelled, retried :=
		s.submitted, s.completed, s.failed, s.cancelled, s.retried
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "vlasovd_jobs_submitted_total %d\n", submitted)
	fmt.Fprintf(w, "vlasovd_jobs_completed_total %d\n", completed)
	fmt.Fprintf(w, "vlasovd_jobs_failed_total %d\n", failed)
	fmt.Fprintf(w, "vlasovd_jobs_cancelled_total %d\n", cancelled)
	fmt.Fprintf(w, "vlasovd_jobs_retried_total %d\n", retried)
	fmt.Fprintf(w, "vlasovd_queue_depth %d\n", s.stream.Pending())
	if b := s.stream.Budget(); b != nil {
		fmt.Fprintf(w, "vlasovd_budget_cores_total %d\n", b.Total())
		fmt.Fprintf(w, "vlasovd_budget_cores_in_use %d\n", b.Held())
		fmt.Fprintf(w, "vlasovd_budget_jobs_live %d\n", b.Live())
	}
}

// handleDiagnostics streams a job's per-step diagnostics as server-sent
// events: "status" on every scheduler transition, "diag" per observed step,
// and a final "done" carrying the terminal status document. A job already
// terminal yields just the "done" event.
func (s *Server) handleDiagnostics(w http.ResponseWriter, r *http.Request) {
	e, _, ok := s.lookup(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("serve: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Flush the headers now: a subscriber to a still-queued job must see
	// the stream open immediately, not block header-less until the first
	// event fires.
	fl.Flush()

	sub := make(chan sseEvent, s.cfg.DiagBuffer)
	s.mu.Lock()
	if e.result != nil {
		body := statusBody(e, s.snapshotFor(e.id))
		s.mu.Unlock()
		writeSSE(w, sseEvent{Type: "done", Data: body})
		fl.Flush()
		return
	}
	e.subs[sub] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(e.subs, sub)
		s.mu.Unlock()
	}()

	// The ticker backstops lossy delivery: if the terminal "done" event
	// was dropped (full subscriber queue), the poll notices the recorded
	// result and closes the stream anyway.
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub:
			if err := writeSSE(w, ev); err != nil {
				return
			}
			fl.Flush()
			if ev.Type == "done" {
				return
			}
		case <-tick.C:
			s.mu.Lock()
			terminal := e.result != nil
			var body map[string]any
			if terminal {
				body = statusBody(e, s.snapshotFor(e.id))
			}
			s.mu.Unlock()
			if terminal {
				writeSSE(w, sseEvent{Type: "done", Data: body})
				fl.Flush()
				return
			}
		}
	}
}

// writeSSE writes one event in text/event-stream framing.
func writeSSE(w http.ResponseWriter, ev sseEvent) error {
	data, err := json.Marshal(ev.Data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}

// checkpointInfo is one artifact in a listing.
type checkpointInfo struct {
	Name  string  `json:"name"`
	Bytes int64   `json:"bytes"`
	Clock float64 `json:"clock"`
	// Format tags what can open the file: "snapio-v1"/"snapio-v2" for the
	// cosmological snapshots, "solver" for solver-private formats.
	Format string `json:"format"`
}

// jobCheckpointDir resolves a job's checkpoint directory, or "" when the
// server does not checkpoint. The name comes from the recorded terminal
// result when the stream's bounded history has already evicted its record
// (the snapshot then reads as a zero value, whose empty name would
// silently resolve to the wrong directory).
func (s *Server) jobCheckpointDir(e *jobEntry, js sched.JobSnapshot) string {
	if s.cfg.CheckpointDir == "" {
		return ""
	}
	name := js.Name
	s.mu.Lock()
	if e.result != nil {
		name = e.result.Name
	}
	s.mu.Unlock()
	if name == "" {
		return ""
	}
	return sched.JobCheckpointDir(s.cfg.CheckpointDir, name)
}

// handleCheckpoints lists a job's snapshot artifacts, oldest first.
func (s *Server) handleCheckpoints(w http.ResponseWriter, r *http.Request) {
	e, js, ok := s.lookup(w, r)
	if !ok {
		return
	}
	dir := s.jobCheckpointDir(e, js)
	if dir == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: checkpointing disabled"))
		return
	}
	paths, err := runner.ListCheckpoints(dir)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	infos := make([]checkpointInfo, 0, len(paths))
	for _, p := range paths {
		info := checkpointInfo{Name: filepath.Base(p), Format: "solver"}
		if st, err := os.Stat(p); err == nil {
			info.Bytes = st.Size()
		}
		// The clock is embedded in the fixed-width file name.
		fmt.Sscanf(info.Name, "ckpt_%f.v6d", &info.Clock)
		if f, err := os.Open(p); err == nil {
			if v, _, ok := snapio.Probe(f); ok {
				info.Format = fmt.Sprintf("snapio-v%d", v)
			}
			f.Close()
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"job": js.Name, "checkpoints": infos})
}

// handleCheckpointFile downloads one artifact. The file name is validated
// against the checkpoint naming scheme — this endpoint serves snapshots,
// not the filesystem.
func (s *Server) handleCheckpointFile(w http.ResponseWriter, r *http.Request) {
	e, js, ok := s.lookup(w, r)
	if !ok {
		return
	}
	dir := s.jobCheckpointDir(e, js)
	if dir == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: checkpointing disabled"))
		return
	}
	name := r.PathValue("file")
	if !strings.HasPrefix(name, "ckpt_") || !strings.HasSuffix(name, ".v6d") ||
		strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: %q is not a checkpoint file name", name))
		return
	}
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("serve: no checkpoint %q", name))
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name))
	http.ServeContent(w, r, name, time.Time{}, f)
}
