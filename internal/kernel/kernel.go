// Package kernel contains the layout-aware advection micro-kernels that
// reproduce the paper's §5.3 SIMD study (Table 1 and Figures 1–3).
//
// The paper's A64FX implementation contrasts three ways of sweeping a 1D
// advection update through a multi-dimensional array:
//
//   - "w/o SIMD": scalar code whose inner loop walks along the advection
//     axis, making strided memory accesses when that axis is not the fastest
//     (innermost) one;
//   - "w/ SIMD": the inner loop runs along the fastest axis so that whole
//     SIMD vectors are loaded with unit stride (Fig. 1) — impossible when
//     the advection axis IS the fastest axis, where vectorising across
//     lines needs strided gathers (Fig. 2);
//   - "w/ LAT": load-and-transpose — load unit-stride vectors, transpose a
//     B×B tile in registers (Fig. 3), sweep, and transpose back.
//
// Go has no vector intrinsics, but the *memory-system* half of the effect —
// unit-stride streaming vs. large-stride gathers — is architecture
// independent, and the Go compiler keeps contiguous inner loops free of
// bounds checks. The three modes here reproduce the ordering of Table 1
// (Strided ≪ Contig ≈ LAT) with Go-scale ratios; the Measure harness prints
// the same rows as the paper's table.
//
// All modes compute the identical single-stage conservative semi-Lagrangian
// fifth-order (CSL5) update
//
//	f_i ← f_i − (Φ_{i+1/2} − Φ_{i−1/2}),   Φ = Σ_r a_r(ξ)·f_{i−3+r},
//
// on periodic lines, where the five coefficients a_r(ξ) come from the quintic
// primitive-function reconstruction at CFL fraction ξ ∈ [0,1] — the unlimited
// linear core of the paper's SL-MPP5 flux (a plain fifth-order
// method-of-lines flux would be unstable in a single Euler stage, which is
// precisely the cost problem SL-MPP5 solves). Tests assert bit-level
// agreement between the modes.
//
// Hot-path contract: a Brick owns per-worker scratch arenas that are reused
// across Sweep calls, so steady-state sweeping allocates nothing (asserted by
// testing.AllocsPerRun in the tests); SetWorkers parallelises a sweep over
// independent lines/blocks with results bit-identical to the serial path for
// every mode and axis.
package kernel

import (
	"fmt"
	"math"
	"sync"
)

// Mode selects the sweep implementation.
type Mode int

// The three sweep implementations of §5.3.
const (
	// Strided walks the advection axis line by line, gathering each line
	// with stride `post` ("w/o SIMD").
	Strided Mode = iota
	// Contig keeps the innermost loop on the fastest memory axis
	// ("w/ SIMD"); for a sweep along the fastest axis itself it degrades to
	// strided gathers across lines, exactly like Fig. 2.
	Contig
	// LAT transposes tiles so that sweeps along the fastest axis also
	// stream with unit stride ("w/ LAT").
	LAT
)

// String implements fmt.Stringer using the paper's column headers.
func (m Mode) String() string {
	switch m {
	case Strided:
		return "w/o SIMD"
	case Contig:
		return "w/ SIMD"
	case LAT:
		return "w/ LAT"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// TileB is the transpose tile edge, the software analogue of the paper's
// 16×16 register transpose (64 shuffle instructions on SVE). It is also the
// line-group width of the Fig. 2 gather path (the "SIMD width" being
// emulated) and the granularity the cache model rounds block widths to.
const TileB = 16

// FlopsPerCell is the flop count of one fifth-order update per cell
// (5 multiplies + 4 adds for the flux, 2 for the update, with the left flux
// reused), used to convert timings into the paper's Gflops metric.
const FlopsPerCell = 12

// CacheTarget is the working-set budget, in bytes, that the cache model fits
// one sweep block into: block widths are chosen so the data rows plus flux
// rows a block touches stay resident while the block is processed. The
// default is sized for a typical per-core L2 share; it is a variable (not a
// constant) so experiments can retune it — block partitioning reorders
// memory traffic only and never changes the computed values.
var CacheTarget = 256 << 10

// blockCols picks the column-block width for the two-phase plane update:
// a block touches n data rows plus n+1 flux rows of cw float32 columns, so
// cw is chosen to keep (2n+1)·cw·4 bytes within CacheTarget, rounded down to
// a multiple of TileB and clamped to [TileB, width]. The fixed 2048-column
// chunk this replaces overflowed L1/L2 for deep bricks (large n) and wasted
// locality for shallow ones.
func blockCols(n, width int) int {
	cw := CacheTarget / (4 * (2*n + 1))
	cw &^= TileB - 1
	if cw < TileB {
		cw = TileB
	}
	if cw > width {
		cw = width
	}
	return cw
}

// latGroupCols picks how many lines one LAT group transposes together. The
// group holds the transposed plane (n rows) plus its flux rows (n+1) in
// scratch while the source lines (another n rows' worth) stream through the
// transposes, so (3n+1)·b·4 bytes must fit CacheTarget. Wider groups than
// the historical fixed TileB amortise loop overhead over long unit-stride
// inner loops — the whole point of load-and-transpose — while the cache
// model keeps the working set resident.
func latGroupCols(n int) int {
	b := CacheTarget / (4 * (3*n + 1))
	b &^= TileB - 1
	if b < TileB {
		b = TileB
	}
	return b
}

// Brick is a dense multi-dimensional array of float32 (the paper's Vlasov
// arrays are single precision) with row-major layout: the LAST dimension is
// fastest, matching List 1's per-cell velocity cubes.
//
// A Brick also owns the sweep scratch: one arena per worker, grown on first
// use and reused for every later Sweep, so steady-state sweeping is
// allocation-free. A Brick must not be swept from multiple goroutines at
// once (Sweep itself parallelises internally via SetWorkers).
type Brick struct {
	Dims []int
	Data []float32

	// workers is the intra-sweep parallelism (≤ 1 = serial, the default).
	workers int
	// arenas holds per-worker scratch, indexed by worker id.
	arenas []*sweepArena
}

// NewBrick allocates a brick with the given dimensions.
func NewBrick(dims ...int) (*Brick, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("kernel: no dimensions")
	}
	n := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("kernel: invalid dim %d", d)
		}
		n *= d
	}
	return &Brick{Dims: append([]int(nil), dims...), Data: make([]float32, n)}, nil
}

// SetWorkers pins the number of goroutines Sweep parallelises over
// (minimum 1). Sweeps decompose into independent lines or column blocks
// whose arithmetic does not depend on the partition, so the result is
// bit-identical to the serial sweep for every mode, axis and worker count —
// the worker count trades wall-clock only.
func (b *Brick) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	b.workers = n
}

// Workers reports the pinned sweep parallelism (minimum 1).
func (b *Brick) Workers() int {
	if b.workers < 1 {
		return 1
	}
	return b.workers
}

// sweepArena is the per-worker scratch of one Brick: a gather line, a flat
// flux slab and a transpose buffer, each grown geometrically and never
// shrunk, so repeated sweeps of any axis sequence reuse the same backing
// arrays. (The old per-sweep [][]float32 scratch reallocated every row
// whenever the row count grew even when the total already fit — the growth
// policy this replaces.)
type sweepArena struct {
	line []float32 // strided line gather/scatter buffer
	flux []float32 // interface-flux slab, row-major (rows × block width)
	lat  []float32 // LAT position-major transpose buffer
}

// growF32 returns buf resized to n, reusing the backing array when it fits
// and at least doubling the capacity when it does not.
func growF32(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	c := 2 * cap(buf)
	if c < n {
		c = n
	}
	return make([]float32, n, c)
}

func (a *sweepArena) lineBuf(n int) []float32 { a.line = growF32(a.line, n); return a.line }
func (a *sweepArena) fluxBuf(n int) []float32 { a.flux = growF32(a.flux, n); return a.flux }
func (a *sweepArena) latBuf(n int) []float32  { a.lat = growF32(a.lat, n); return a.lat }

// arena returns worker w's scratch, growing the arena list on demand.
func (b *Brick) arena(w int) *sweepArena {
	for len(b.arenas) <= w {
		b.arenas = append(b.arenas, &sweepArena{})
	}
	return b.arenas[w]
}

// clampWorkers bounds the sweep parallelism by the number of independent
// work items.
func (b *Brick) clampWorkers(items int) int {
	nw := b.workers
	if nw < 1 {
		nw = 1
	}
	if nw > items {
		nw = items
	}
	return nw
}

// runRanges is the parallel dispatch path: items are split into one
// contiguous range per worker, each run with that worker's private arena.
// Callers handle the nw ≤ 1 case serially first (with arena 0 and no
// closure), which keeps the steady-state serial sweep allocation-free.
func (b *Brick) runRanges(items, nw int, run func(ar *sweepArena, lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (items + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > items {
			hi = items
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(ar *sweepArena, lo, hi int) {
			defer wg.Done()
			run(ar, lo, hi)
		}(b.arena(w), lo, hi)
	}
	wg.Wait()
}

// Shape3 returns the (pre, n, post) factorisation of the brick around axis:
// the array is equivalent to a row-major [pre][n][post] view where n is the
// advected extent.
func (b *Brick) Shape3(axis int) (pre, n, post int, err error) {
	if axis < 0 || axis >= len(b.Dims) {
		return 0, 0, 0, fmt.Errorf("kernel: axis %d out of range", axis)
	}
	pre, post = 1, 1
	for i := 0; i < axis; i++ {
		pre *= b.Dims[i]
	}
	n = b.Dims[axis]
	for i := axis + 1; i < len(b.Dims); i++ {
		post *= b.Dims[i]
	}
	return pre, n, post, nil
}

// Sweep applies one periodic fifth-order advection update with CFL c along
// axis using the requested mode. LAT is only accepted for the fastest axis
// (post == 1), where it exists to fix the Fig. 2 gather problem.
func (b *Brick) Sweep(axis int, mode Mode, c float32) error {
	pre, n, post, err := b.Shape3(axis)
	if err != nil {
		return err
	}
	if n < 6 {
		return fmt.Errorf("kernel: axis %d extent %d < 6", axis, n)
	}
	if math.IsNaN(float64(c)) || math.IsInf(float64(c), 0) || c < 0 || c > 1 {
		return fmt.Errorf("kernel: CFL %v outside [0,1] (micro-kernel handles the fractional flux only)", c)
	}
	a := cslCoefs(float64(c))
	switch mode {
	case Strided:
		b.sweepStrided(pre, n, post, a)
	case Contig:
		if post > 1 {
			b.sweepPlanes(pre, n, post, a)
		} else {
			b.sweepGather(pre, n, a)
		}
	case LAT:
		if post != 1 {
			return fmt.Errorf("kernel: LAT applies to the fastest axis only")
		}
		b.sweepLAT(pre, n, a)
	default:
		return fmt.Errorf("kernel: unknown mode %v", mode)
	}
	return nil
}

// coef5 holds the five CSL5 flux coefficients for a fixed CFL fraction ξ:
// Φ_{i+1/2} = a[0]f_{i−2} + a[1]f_{i−1} + a[2]f_i + a[3]f_{i+1} + a[4]f_{i+2}.
type coef5 [5]float32

// cslCoefs derives the coefficients from the quintic Lagrange basis on the
// primitive function: with t = 3−ξ and basis values ℓ_m(t),
// a_r = [r ≤ 3] − Σ_{m≥r} ℓ_m(t) for r = 1..5.
func cslCoefs(xi float64) coef5 {
	t := 3 - xi
	var ell [6]float64
	for m := 0; m < 6; m++ {
		num, den := 1.0, 1.0
		for j := 0; j < 6; j++ {
			if j == m {
				continue
			}
			num *= t - float64(j)
			den *= float64(m - j)
		}
		ell[m] = num / den
	}
	var a coef5
	suffix := 0.0
	for r := 5; r >= 1; r-- {
		suffix += ell[r]
		v := -suffix
		if r <= 3 {
			v += 1
		}
		a[r-1] = float32(v)
	}
	return a
}

// flux5 evaluates the CSL5 interface flux from the upwind stencil
// (f_{i−2}, …, f_{i+2}).
func flux5(a *coef5, fm2, fm1, f0, fp1, fp2 float32) float32 {
	return a[0]*fm2 + a[1]*fm1 + a[2]*f0 + a[3]*fp1 + a[4]*fp2
}

// updateLine5 applies the periodic CSL5 update to one line held contiguously
// in memory.
func updateLine5(line []float32, a *coef5) {
	n := len(line)
	f0orig, f1orig := line[0], line[1]
	fm2, fm1 := line[n-2], line[n-1]
	fc, fp1 := line[0], line[1]
	prev := flux5(a, line[n-3], fm2, fm1, fc, fp1) // Φ_{−1/2}
	for i := 0; i < n; i++ {
		var fp2 float32
		switch {
		case i+2 < n:
			fp2 = line[i+2]
		case i+2 == n:
			fp2 = f0orig
		default:
			fp2 = f1orig
		}
		cur := flux5(a, fm2, fm1, fc, fp1, fp2)
		newv := fc - (cur - prev)
		fm2, fm1, fc, fp1, prev = fm1, fc, fp1, fp2, cur
		line[i] = newv
	}
}

// sweepStrided is the "w/o SIMD" reference: every line along the advection
// axis is gathered element by element with stride `post`, updated, and
// scattered back. Lines are independent, so the parallel split over line
// ranges is bit-identical to the serial order.
func (b *Brick) sweepStrided(pre, n, post int, a coef5) {
	items := pre * post
	nw := b.clampWorkers(items)
	if nw <= 1 {
		b.stridedRange(b.arena(0), 0, items, n, post, a)
		return
	}
	b.runRanges(items, nw, func(ar *sweepArena, lo, hi int) {
		b.stridedRange(ar, lo, hi, n, post, a)
	})
}

func (b *Brick) stridedRange(ar *sweepArena, lo, hi, n, post int, a coef5) {
	line := ar.lineBuf(n)
	data := b.Data
	stride := n * post
	for t := lo; t < hi; t++ {
		p, q := t/post, t%post
		off := p*stride + q
		for i := 0; i < n; i++ {
			line[i] = data[off+i*post]
		}
		updateLine5(line, &a)
		for i := 0; i < n; i++ {
			data[off+i*post] = line[i]
		}
	}
}

// sweepPlanes is the Fig. 1 path for sweeps off the fastest axis: each
// [n][post] plane advances in place through cache-model-sized column blocks
// whose interface fluxes are computed from the original rows first, keeping
// every inner loop unit-stride with zero memmove traffic. Blocks touch
// disjoint columns, so the parallel split over (plane, block) pairs is
// bit-identical to the serial order.
func (b *Brick) sweepPlanes(pre, n, post int, a coef5) {
	cw := blockCols(n, post)
	nb := (post + cw - 1) / cw
	items := pre * nb
	nw := b.clampWorkers(items)
	if nw <= 1 {
		b.planesRange(b.arena(0), 0, items, n, post, cw, nb, a)
		return
	}
	b.runRanges(items, nw, func(ar *sweepArena, lo, hi int) {
		b.planesRange(ar, lo, hi, n, post, cw, nb, a)
	})
}

func (b *Brick) planesRange(ar *sweepArena, lo, hi, n, post, cw, nb int, a coef5) {
	for t := lo; t < hi; t++ {
		p, blk := t/nb, t%nb
		col := blk * cw
		w := cw
		if col+w > post {
			w = post - col
		}
		plane := b.Data[p*n*post : (p+1)*n*post]
		updatePlaneBlock(plane, n, post, col, w, &a, ar)
	}
}

// updatePlaneBlock updates columns [col, col+cw) of a row-major [n][width]
// plane: first every interface flux of the block is computed from the
// ORIGINAL rows (Φ_{i−1/2} uses rows i−3 … i+1, matching updateLine5), then
// each row is updated in place. The flux slab lives in the worker's arena.
func updatePlaneBlock(buf []float32, n, width, col, cw int, a *coef5, ar *sweepArena) {
	flux := blockFluxes(buf, n, width, col, cw, a, ar)
	for i := 0; i < n; i++ {
		off := i*width + col
		out := buf[off : off+cw]
		lo := flux[i*cw : i*cw+cw]
		hi := flux[(i+1)*cw : (i+1)*cw+cw]
		for q := range out {
			out[q] -= hi[q] - lo[q]
		}
	}
}

// blockFluxes computes the n+1 interface-flux rows of a column block into
// the worker's flux slab: Φ_{i−1/2} uses rows i−3 … i+1 of the ORIGINAL
// data, matching updateLine5 exactly.
func blockFluxes(buf []float32, n, width, col, cw int, a *coef5, ar *sweepArena) []float32 {
	flux := ar.fluxBuf((n + 1) * cw)
	a0, a1, a2, a3, a4 := a[0], a[1], a[2], a[3], a[4]
	row := func(i int) []float32 {
		if i >= n {
			i -= n
		} else if i < 0 {
			i += n
		}
		off := i*width + col
		return buf[off : off+cw]
	}
	for i := 0; i <= n; i++ {
		r0, r1, r2, r3, r4 := row(i-3), row(i-2), row(i-1), row(i), row(i+1)
		fl := flux[i*cw : i*cw+cw]
		for q := range fl {
			fl[q] = a0*r0[q] + a1*r1[q] + a2*r2[q] + a3*r3[q] + a4*r4[q]
		}
	}
	return flux
}

// sweepGather is the Fig. 2 path: the sweep runs along the fastest axis, and
// "vectorising" across TileB lines forces every stencil access to stride by
// the full line length n. It produces identical results to the other modes
// but at gather speed — the paper's 17.9 Gflops row. The group width stays
// pinned at TileB (the emulated SIMD width): this mode exists to exhibit the
// gather problem, not to be tuned around it.
func (b *Brick) sweepGather(pre, n int, a coef5) {
	ng := (pre + TileB - 1) / TileB
	nw := b.clampWorkers(ng)
	if nw <= 1 {
		b.gatherRange(b.arena(0), 0, ng, pre, n, a)
		return
	}
	b.runRanges(ng, nw, func(ar *sweepArena, lo, hi int) {
		b.gatherRange(ar, lo, hi, pre, n, a)
	})
}

func (b *Brick) gatherRange(ar *sweepArena, lo, hi, pre, n int, a coef5) {
	data := b.Data
	flux := ar.fluxBuf((n + 1) * TileB)
	a0, a1, a2, a3, a4 := a[0], a[1], a[2], a[3], a[4]
	for g := lo; g < hi; g++ {
		g0 := g * TileB
		bw := TileB
		if g0+bw > pre {
			bw = pre - g0
		}
		base := g0 * n
		wrap := func(i int) int {
			if i >= n {
				return i - n
			}
			if i < 0 {
				return i + n
			}
			return i
		}
		// Phase 1: every interface flux, gathered with stride n across the
		// bw lines (the Fig. 2 access pattern).
		for i := 0; i <= n; i++ {
			i0, i1, i2, i3, i4 := wrap(i-3), wrap(i-2), wrap(i-1), wrap(i), wrap(i+1)
			fl := flux[i*TileB : i*TileB+bw]
			for l := range fl {
				off := base + l*n
				fl[l] = a0*data[off+i0] + a1*data[off+i1] + a2*data[off+i2] +
					a3*data[off+i3] + a4*data[off+i4]
			}
		}
		// Phase 2: strided scatter of the update.
		for i := 0; i < n; i++ {
			lo := flux[i*TileB : i*TileB+bw]
			hi := flux[(i+1)*TileB : (i+1)*TileB+bw]
			for l := range lo {
				data[base+l*n+i] -= hi[l] - lo[l]
			}
		}
	}
}

// sweepLAT is the Fig. 3 fix: groups of lines are transposed (in TileB×TileB
// tiles, the software analogue of the in-register shuffles) into a
// position-major scratch so the update streams with unit stride, then
// transposed back. The group width comes from the cache model — wide enough
// to amortise loop overhead over long unit-stride inner loops, small enough
// that the transposed plane and its flux rows stay cache-resident. Groups
// touch disjoint lines, so the parallel split is bit-identical to serial.
func (b *Brick) sweepLAT(pre, n int, a coef5) {
	bg := latGroupCols(n)
	ng := (pre + bg - 1) / bg
	nw := b.clampWorkers(ng)
	if nw <= 1 {
		b.latRange(b.arena(0), 0, ng, pre, n, bg, a)
		return
	}
	b.runRanges(ng, nw, func(ar *sweepArena, lo, hi int) {
		b.latRange(ar, lo, hi, pre, n, bg, a)
	})
}

func (b *Brick) latRange(ar *sweepArena, lo, hi, pre, n, bg int, a coef5) {
	t := ar.latBuf(n * bg)
	for g := lo; g < hi; g++ {
		g0 := g * bg
		w := bg
		if g0+w > pre {
			w = pre - g0
		}
		src := b.Data[g0*n : (g0+w)*n]
		transposeIn(src, t, n, w)
		flux := blockFluxes(t[:n*w], n, w, 0, w, &a, ar)
		updateTransposeOut(t, flux, src, n, w)
	}
}

// updateTransposeOut fuses the row update with the outbound transpose:
// instead of updating the position-major buffer in place and copying it back,
// the updated value t − (Φ_hi − Φ_lo) is written straight to its strided
// destination, saving one full read+write pass over the transpose buffer.
// The arithmetic is the same expression in the same order as
// updatePlaneBlock's update phase, so results remain bit-identical.
func updateTransposeOut(t, flux, dst []float32, n, b int) {
	for i0 := 0; i0 < n; i0 += TileB {
		imax := i0 + TileB
		if imax > n {
			imax = n
		}
		for l0 := 0; l0 < b; l0 += TileB {
			lmax := l0 + TileB
			if lmax > b {
				lmax = b
			}
			for i := i0; i < imax; i++ {
				trow := t[i*b : i*b+b]
				lo := flux[i*b : i*b+b]
				hi := flux[(i+1)*b : (i+1)*b+b]
				for l := l0; l < lmax; l++ {
					dst[l*n+i] = trow[l] - (hi[l] - lo[l])
				}
			}
		}
	}
}

// transposeIn rearranges b lines of length n (row-major [b][n]) into a
// position-major [n][b] buffer, TileB×TileB tile by tile so both the
// scattered and the streamed side of the shuffle stay cache-resident.
func transposeIn(src, dst []float32, n, b int) {
	for i0 := 0; i0 < n; i0 += TileB {
		imax := i0 + TileB
		if imax > n {
			imax = n
		}
		for l0 := 0; l0 < b; l0 += TileB {
			lmax := l0 + TileB
			if lmax > b {
				lmax = b
			}
			for l := l0; l < lmax; l++ {
				lrow := src[l*n:]
				for i := i0; i < imax; i++ {
					dst[i*b+l] = lrow[i]
				}
			}
		}
	}
}

// transposeOut is the inverse of transposeIn.
func transposeOut(src, dst []float32, n, b int) {
	for i0 := 0; i0 < n; i0 += TileB {
		imax := i0 + TileB
		if imax > n {
			imax = n
		}
		for l0 := 0; l0 < b; l0 += TileB {
			lmax := l0 + TileB
			if lmax > b {
				lmax = b
			}
			for l := l0; l < lmax; l++ {
				lrow := dst[l*n:]
				for i := i0; i < imax; i++ {
					lrow[i] = src[i*b+l]
				}
			}
		}
	}
}
