package advect

import (
	"fmt"
	"math"
)

// MP5 is the conventional comparator of §5.2: the Suresh–Huynh (1997)
// fifth-order monotonicity-preserving finite-difference scheme advanced with
// the three-stage TVD Runge–Kutta integrator of Shu & Osher (1988). It
// requires THREE flux evaluations per step and a CFL restriction, which is
// exactly the cost the paper's single-stage SL-MPP5 eliminates.
type MP5 struct {
	s1, s2, rhs []float64
}

// NewMP5 returns a new MP5+RK3 scheme.
func NewMP5() *MP5 { return &MP5{} }

// Name implements Scheme.
func (m *MP5) Name() string { return "mp5" }

// Stages implements Scheme: three flux evaluations per step.
func (m *MP5) Stages() int { return 3 }

// MaxCFL implements Scheme.
func (m *MP5) MaxCFL() float64 { return 1.0 }

// Clone implements Scheme.
func (m *MP5) Clone() Scheme { return &MP5{} }

// Step advances a periodic line by one step of SSP-RK3 with CFL c (|c| ≤ 1).
func (m *MP5) Step(f []float64, c float64) error {
	n := len(f)
	if n < 6 {
		return fmt.Errorf("mp5: line length %d < 6", n)
	}
	if math.Abs(c) > m.MaxCFL() {
		return fmt.Errorf("mp5: CFL %v exceeds %v", c, m.MaxCFL())
	}
	if cap(m.s1) < n {
		m.s1 = make([]float64, n)
		m.s2 = make([]float64, n)
		m.rhs = make([]float64, n)
	}
	s1, s2, rhs := m.s1[:n], m.s2[:n], m.rhs[:n]

	// Stage 1: s1 = f + Δt·L(f).
	m.rhsMP5(f, c, rhs)
	for i := range s1 {
		s1[i] = f[i] + rhs[i]
	}
	// Stage 2: s2 = 3/4 f + 1/4 (s1 + Δt·L(s1)).
	m.rhsMP5(s1, c, rhs)
	for i := range s2 {
		s2[i] = 0.75*f[i] + 0.25*(s1[i]+rhs[i])
	}
	// Stage 3: f = 1/3 f + 2/3 (s2 + Δt·L(s2)).
	m.rhsMP5(s2, c, rhs)
	for i := range f {
		f[i] = f[i]/3 + 2.0/3.0*(s2[i]+rhs[i])
	}
	return nil
}

// rhsMP5 computes Δt·L(f) = −c (f̂_{i+1/2} − f̂_{i−1/2}) for periodic f using
// the upwind-biased MP5 interface reconstruction.
func (m *MP5) rhsMP5(f []float64, c float64, rhs []float64) {
	n := len(f)
	// fhat[i] is the interface value at i−1/2 (between cells i−1 and i).
	// Build it upwind: for c > 0 reconstruct from the left cell i−1's
	// stencil; for c < 0 mirror.
	prev := 0.0
	for i := 0; i <= n; i++ {
		var fh float64
		if c >= 0 {
			j := i - 1
			fh = reconstructMP5(
				periodicAt(f, j-2), periodicAt(f, j-1), periodicAt(f, j),
				periodicAt(f, j+1), periodicAt(f, j+2))
		} else {
			j := i
			fh = reconstructMP5(
				periodicAt(f, j+2), periodicAt(f, j+1), periodicAt(f, j),
				periodicAt(f, j-1), periodicAt(f, j-2))
		}
		if i > 0 {
			rhs[i-1] = -c * (fh - prev)
		}
		prev = fh
	}
}

// reconstructMP5 returns the fifth-order upwind interface value from the
// stencil (f_{j−2},…,f_{j+2}) of the donor cell j, limited by the
// Suresh–Huynh MP constraint.
func reconstructMP5(fm2, fm1, f0, fp1, fp2 float64) float64 {
	vOR := (2*fm2 - 13*fm1 + 47*f0 + 27*fp1 - 3*fp2) / 60
	return mpLimit(vOR, fm2, fm1, f0, fp1, fp2)
}
