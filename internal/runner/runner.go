// Package runner is the single driver loop every solver in this repository
// runs under. The paper's production runs (Yoshikawa, Tanaka & Yoshida,
// SC '21) are long-lived jobs with a fixed cadence of diagnostics and
// checkpoints; this package factors that loop out of the individual solvers
// so the hybrid Vlasov/N-body simulation, the 1D1V plasma solver and the
// pure N-body / ν-particle control runs all execute through one Run call
// with uniform cancellation, wall-clock budgeting, per-step observation and
// checkpointing.
//
// The contract is deliberately small: a Solver steps itself by dt, suggests
// its own stable dt, and reports a run coordinate ("clock") that Run drives
// towards the caller's target. Capabilities beyond that — clamping dt in a
// clock that is not the stepping coordinate, writing restorable snapshots —
// are optional interfaces the driver discovers at run time.
package runner

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Diagnostics is the uniform per-step health summary a Solver exposes to
// observers: enough to log progress and watch conservation without knowing
// which solver is running.
//
// A Diagnostics is a value snapshot: implementations must return freshly
// built values (in particular a fresh Extra map) that never alias solver
// state mutated by later Steps, so async observers can read them from
// another goroutine while the solver keeps stepping.
type Diagnostics struct {
	// Clock is the solver's run coordinate — the value Run drives towards
	// its target: scale factor a for the cosmological solvers, plasma time
	// ω_p·t for the 1D1V solver.
	Clock float64
	// Time is the solver's internal time coordinate (cosmic time in internal
	// units for the hybrid run; identical to Clock for the plasma solver).
	Time float64
	// Mass is the conserved total mass, the first invariant every Vlasov
	// solver is judged by.
	Mass float64
	// Extra carries solver-specific scalars (redshift, field energy,
	// boundary loss, …) keyed by short snake_case names.
	Extra map[string]float64
}

// Solver is the contract every workload implements to run under Run.
type Solver interface {
	// Step advances the solver by dt in its stepping coordinate.
	Step(dt float64) error
	// SuggestDT returns a stable time step for the current state (CFL
	// conditions, expansion caps, …).
	SuggestDT() float64
	// Clock returns the run coordinate Run compares against its `until`
	// target. It must be non-decreasing under Step.
	Clock() float64
	// Diagnostics summarises the current state for observers.
	Diagnostics() Diagnostics
}

// DTClamper is implemented by solvers whose Clock is not the coordinate dt
// is expressed in (the hybrid simulation steps in cosmic time but clocks in
// scale factor). ClampDT shrinks dt so the next Step does not carry Clock
// past until. Solvers without it are clamped directly in the clock
// coordinate: dt ≤ until − Clock().
type DTClamper interface {
	ClampDT(dt, until float64) float64
}

// Checkpointer is implemented by solvers that can write a restorable
// snapshot of their full state. Checkpoint returns the number of bytes
// written (the paper charges snapshot volume to its end-to-end
// time-to-solution, so callers get to account for it).
type Checkpointer interface {
	Checkpoint(w io.Writer) (int64, error)
}

// CheckpointPreflight lets a Checkpointer veto checkpointing for its
// current mode before the run starts, so an incompatibility fails at step 0
// instead of discarding every step up to the first cadence hit.
type CheckpointPreflight interface {
	CanCheckpoint() error
}

// Observer is a per-step diagnostics callback. It runs after each completed
// step; returning a non-nil error aborts the run with that error.
type Observer func(step int, s Solver) error

// WorkerBudgeted is implemented by solvers whose intra-step parallelism can
// be resized between steps. SetWorkers pins the number of workers the next
// Step (and SuggestDT) may use; implementations must accept any call
// ordering relative to Step and must never let the worker count change the
// computed physics — parallel decomposition is over independent lines or
// cells, so results stay bit-identical for any setting.
type WorkerBudgeted interface {
	SetWorkers(n int)
}

// WorkerLease is the runner's view of a scheduler-owned core lease (see
// sched.CoreBudget for the allocator). Workers returns the share of cores
// this run may use right now. The runner polls it once per loop iteration,
// between steps — the moment the solver's intra-step workers are quiescent
// — and implementations may use the call to commit share changes (shrink
// immediately, grow as capacity frees).
type WorkerLease interface {
	Workers() int
}

// WithWorkerBudget ties the run's intra-step parallelism to a core lease:
// before every step the runner polls lease.Workers() and, when the share
// changed and the solver implements WorkerBudgeted, applies it with
// SetWorkers — a mid-run rebalance (another job finishing, a new job
// arriving) is observed by a running job between steps. A solver without
// WorkerBudgeted runs unpinned; the poll still happens, keeping the lease's
// accounting fresh. A nil lease leaves the option unset.
func WithWorkerBudget(lease WorkerLease) Option {
	return func(o *options) { o.lease = lease }
}

// StopReason records why Run returned without error.
type StopReason int

const (
	// ReasonNone means the run ended in an error before finishing.
	ReasonNone StopReason = iota
	// ReasonUntil means the clock reached the target.
	ReasonUntil
	// ReasonMaxSteps means the WithMaxSteps budget was exhausted.
	ReasonMaxSteps
	// ReasonWallClock means the WithWallClock budget was exhausted.
	ReasonWallClock
)

func (r StopReason) String() string {
	switch r {
	case ReasonUntil:
		return "until"
	case ReasonMaxSteps:
		return "max-steps"
	case ReasonWallClock:
		return "wall-clock"
	}
	return "none"
}

// Report summarises a finished (or aborted) run. Run always returns a
// Report, even alongside an error, so partial progress is visible.
type Report struct {
	// Steps is the number of completed steps.
	Steps int
	// Clock is the solver's run coordinate after the last completed step.
	Clock float64
	// Wall is the elapsed wall-clock time of the run.
	Wall time.Duration
	// Reason records why the run stopped (ReasonNone on error).
	Reason StopReason
	// Checkpoints lists the snapshot files written and still retained
	// (WithCheckpointKeep prunes older ones), oldest first.
	Checkpoints []string
	// CheckpointBytes is the total snapshot volume written, including
	// volume later pruned by the retention policy.
	CheckpointBytes int64
	// DroppedObservations counts async observations evicted under the
	// DropOldest back-pressure policy (always zero otherwise).
	DroppedObservations int64
}

type options struct {
	maxSteps   int
	wallClock  time.Duration
	observer   Observer
	ckptDir    string
	ckptEvery  int
	ckptKeep   int
	ckptNotify func(path string, clock float64)
	stepTimer  func(d time.Duration)
	ckptTimer  func(clock float64, d time.Duration)
	fixedDT    float64
	fixedDTSet bool
	lease      WorkerLease
	async      bool
	asyncObs   AsyncObserver
	asyncOpts  asyncOptions
}

// Option configures a Run call.
type Option func(*options)

// WithMaxSteps caps the run at n steps (0 = unlimited).
func WithMaxSteps(n int) Option {
	return func(o *options) { o.maxSteps = n }
}

// WithWallClock stops the run once the elapsed wall-clock time reaches
// budget. The budget is checked between steps and at least one step is
// always taken, so a run under budget always makes forward progress that a
// later resume can build on.
func WithWallClock(budget time.Duration) Option {
	return func(o *options) { o.wallClock = budget }
}

// WithObserver invokes obs after every completed step.
func WithObserver(obs Observer) Option {
	return func(o *options) { o.observer = obs }
}

// WithCheckpoint writes a snapshot into dir every everyN completed steps.
// The solver must implement Checkpointer or Run fails before stepping.
// Files are named ckpt_<clock>.v6d with a fixed-width zero-padded clock, so
// lexicographic order is clock order even across a stop/resume cycle into
// the same directory (a per-run step counter would restart at zero and
// overwrite the earlier segment's files). Writes are atomic (temp file +
// rename): the newest complete checkpoint is always safe to resume from.
func WithCheckpoint(dir string, everyN int) Option {
	return func(o *options) {
		o.ckptDir = dir
		o.ckptEvery = everyN
	}
}

// WithCheckpointNotify calls fn after every successfully written snapshot
// with the file's path and the solver clock it captures. On the synchronous
// path fn runs on the step loop's goroutine; under WithAsync it runs on the
// pipeline goroutine — either way, one call per durable file, after the
// atomic rename. A durable control plane hangs its journal here: the
// notification is the ground truth that a restart can resume from that
// clock. fn must not block for long (it stalls stepping or checkpoint
// draining) and must be safe to call from a different goroutine than Run's
// caller.
func WithCheckpointNotify(fn func(path string, clock float64)) Option {
	return func(o *options) { o.ckptNotify = fn }
}

// WithStepTimer calls fn with the wall-clock duration of every completed
// Step, on the step loop's goroutine. fn must be cheap — an atomic
// histogram observation, not I/O — because it sits between steps on the hot
// path (the bench's allocation gate runs without it, so instrumented
// deployments pay only what their fn costs).
func WithStepTimer(fn func(d time.Duration)) Option {
	return func(o *options) { o.stepTimer = fn }
}

// WithCheckpointTimer calls fn after every durable snapshot with the solver
// clock it captures and the wall-clock duration of the write (serialisation
// through atomic rename). Like WithCheckpointNotify it fires on whichever
// goroutine performed the write — the step loop synchronously, the pipeline
// under WithAsync — so fn must be goroutine-safe.
func WithCheckpointTimer(fn func(clock float64, d time.Duration)) Option {
	return func(o *options) { o.ckptTimer = fn }
}

// WithCheckpointKeep prunes the checkpoint directory to the newest n
// snapshot files after every write (0, the default, keeps everything).
// Pruning considers every ckpt_*.v6d in the directory, so a resumed run
// into the same directory counts the earlier segment's files against the
// same budget.
func WithCheckpointKeep(n int) Option {
	return func(o *options) { o.ckptKeep = n }
}

// WithFixedDT disables SuggestDT and steps with the given dt (still clamped
// so the clock does not overshoot the target). dt must be positive; an
// explicit zero is an error, not a fallback to adaptive stepping.
func WithFixedDT(dt float64) Option {
	return func(o *options) {
		o.fixedDT = dt
		o.fixedDTSet = true
	}
}

// Run drives s until its Clock reaches until, or a step/wall-clock budget
// runs out, or ctx is cancelled. Cancellation returns a partial-progress
// error wrapping ctx.Err(); budget exhaustion is a normal stop recorded in
// Report.Reason. The returned Report is never nil.
func Run(ctx context.Context, s Solver, until float64, opts ...Option) (*Report, error) {
	rep := &Report{}
	if s == nil {
		return rep, fmt.Errorf("runner: nil solver")
	}
	rep.Clock = s.Clock()
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if until <= rep.Clock {
		return rep, fmt.Errorf("runner: target clock %v ≤ current clock %v", until, rep.Clock)
	}
	if o.fixedDTSet && o.fixedDT <= 0 {
		return rep, fmt.Errorf("runner: fixed dt %v must be positive", o.fixedDT)
	}
	if o.maxSteps < 0 {
		return rep, fmt.Errorf("runner: max steps %d must be non-negative", o.maxSteps)
	}
	if o.ckptKeep < 0 {
		return rep, fmt.Errorf("runner: checkpoint retention %d must be non-negative", o.ckptKeep)
	}
	if o.ckptKeep > 0 && o.ckptDir == "" {
		return rep, fmt.Errorf("runner: WithCheckpointKeep needs WithCheckpoint")
	}
	if o.async && o.asyncOpts.buffer < 1 {
		return rep, fmt.Errorf("runner: async observer buffer %d must be ≥ 1", o.asyncOpts.buffer)
	}
	var ckpt Checkpointer
	if o.ckptDir != "" {
		if o.ckptEvery < 1 {
			return rep, fmt.Errorf("runner: checkpoint cadence %d must be ≥ 1 step", o.ckptEvery)
		}
		var ok bool
		if ckpt, ok = s.(Checkpointer); !ok {
			return rep, fmt.Errorf("runner: solver %T does not support checkpointing", s)
		}
		if p, ok := s.(CheckpointPreflight); ok {
			if err := p.CanCheckpoint(); err != nil {
				return rep, fmt.Errorf("runner: checkpointing unsupported: %w", err)
			}
		}
		// Checkpoint I/O failures are marked retryable throughout: they are
		// the canonical transient fault (a full disk being cleared, a
		// briefly unmounted volume), and a scheduler-level retry re-runs
		// the job from its newest good snapshot.
		if err := os.MkdirAll(o.ckptDir, 0o755); err != nil {
			return rep, MarkRetryable(fmt.Errorf("runner: checkpoint dir: %w", err))
		}
	}
	// Async pipeline: started after validation so every early return above
	// leaves no goroutine behind. Checkpoints ride the pipeline only when
	// the solver can capture value snapshots of its state.
	var pipe *pipeline
	var capturer CheckpointCapturer
	if o.async {
		pipe = newPipeline(&o)
		if ckpt != nil {
			capturer, _ = s.(CheckpointCapturer)
		}
	}

	// Worker budget: resolved once; the lease is polled every iteration
	// even when the solver cannot resize, because the poll is what commits
	// this run's share changes back to the allocator.
	var budgeted WorkerBudgeted
	if o.lease != nil {
		budgeted, _ = s.(WorkerBudgeted)
	}
	lastWorkers := 0

	start := time.Now()
	finish := func(err error) (*Report, error) {
		if pipe != nil {
			// Drain on every exit path: each enqueued observation is
			// delivered and each enqueued checkpoint is on disk before Run
			// returns.
			pipe.close()
			rep.Checkpoints = append(rep.Checkpoints, pipe.written...)
			rep.CheckpointBytes += pipe.bytes
			rep.DroppedObservations = pipe.dropped
			if err == nil && pipe.err != nil {
				err = pipe.err
				rep.Reason = ReasonNone
			}
		}
		rep.Wall = time.Since(start)
		rep.Clock = s.Clock()
		return rep, err
	}
	for step := 0; ; step++ {
		if err := ctx.Err(); err != nil {
			return finish(fmt.Errorf("runner: cancelled after %d steps at clock %v: %w",
				rep.Steps, s.Clock(), err))
		}
		if pipe != nil {
			// An async observer or checkpoint error aborts the run within
			// one step, mirroring the synchronous contract.
			if err := pipe.failed(); err != nil {
				return finish(err)
			}
		}
		if s.Clock() >= until {
			rep.Reason = ReasonUntil
			break
		}
		if o.maxSteps > 0 && rep.Steps >= o.maxSteps {
			rep.Reason = ReasonMaxSteps
			break
		}
		if o.wallClock > 0 && rep.Steps > 0 && time.Since(start) >= o.wallClock {
			rep.Reason = ReasonWallClock
			break
		}
		if o.lease != nil {
			// Between steps: the solver's workers are quiescent, so a
			// rebalanced share applies cleanly before SuggestDT and Step
			// (both may parallelise).
			if n := o.lease.Workers(); n > 0 && n != lastWorkers {
				if budgeted != nil {
					budgeted.SetWorkers(n)
				}
				lastWorkers = n
			}
		}
		dt := o.fixedDT
		if !o.fixedDTSet {
			dt = s.SuggestDT()
		}
		if clamper, ok := s.(DTClamper); ok {
			dt = clamper.ClampDT(dt, until)
		} else if c := s.Clock(); c+dt > until {
			dt = until - c
		}
		if dt <= 0 {
			// dt underflow at the target: the clock cannot advance further.
			rep.Reason = ReasonUntil
			break
		}
		stepStart := time.Now()
		if err := s.Step(dt); err != nil {
			return finish(fmt.Errorf("runner: step %d: %w", rep.Steps, err))
		}
		if o.stepTimer != nil {
			o.stepTimer(time.Since(stepStart))
		}
		rep.Steps++
		rep.Clock = s.Clock()
		if o.observer != nil {
			if err := o.observer(step, s); err != nil {
				return finish(err)
			}
		}
		if pipe != nil && pipe.obs != nil {
			// Value snapshot on the step path, delivery off it. Diagnostics
			// implementations return freshly built values (see the Solver
			// contract), so the pipeline goroutine reads them race-free.
			if err := pipe.enqueue(event{step: step, diag: s.Diagnostics()}); err != nil {
				return finish(err)
			}
		}
		if ckpt != nil && rep.Steps%o.ckptEvery == 0 {
			if capturer != nil {
				write, err := capturer.CaptureCheckpoint()
				if err != nil {
					return finish(fmt.Errorf("runner: checkpoint capture at step %d: %w", rep.Steps, err))
				}
				if err := pipe.enqueue(event{step: step, clock: rep.Clock, ckpt: write}); err != nil {
					return finish(err)
				}
			} else {
				writeStart := time.Now()
				path, n, err := writeCheckpointFile(o.ckptDir, rep.Clock, ckpt.Checkpoint)
				if err != nil {
					return finish(MarkRetryable(fmt.Errorf("runner: checkpoint at step %d: %w", rep.Steps, err)))
				}
				if o.ckptTimer != nil {
					o.ckptTimer(rep.Clock, time.Since(writeStart))
				}
				rep.Checkpoints = append(rep.Checkpoints, path)
				rep.CheckpointBytes += n
				if o.ckptNotify != nil {
					o.ckptNotify(path, rep.Clock)
				}
				if o.ckptKeep > 0 {
					rep.Checkpoints, err = pruneCheckpoints(o.ckptDir, o.ckptKeep, rep.Checkpoints)
					if err != nil {
						return finish(MarkRetryable(fmt.Errorf("runner: checkpoint retention at step %d: %w", rep.Steps, err)))
					}
				}
			}
		}
	}
	return finish(nil)
}

// writeCheckpointFile atomically writes one snapshot file ckpt_<clock>.v6d,
// zero-padded so lexicographic order is clock order.
func writeCheckpointFile(dir string, clock float64, write func(io.Writer) (int64, error)) (string, int64, error) {
	final := filepath.Join(dir, fmt.Sprintf("ckpt_%014.8f.v6d", clock))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", 0, err
	}
	n, err := write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", n, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", n, err
	}
	return final, n, nil
}

// pruneCheckpoints enforces the keep-newest-n retention policy over every
// ckpt_*.v6d in dir and returns written filtered to the surviving files.
func pruneCheckpoints(dir string, keep int, written []string) ([]string, error) {
	matches, err := ListCheckpoints(dir)
	if err != nil {
		return written, err
	}
	if len(matches) <= keep {
		return written, nil
	}
	removed := make(map[string]bool, len(matches)-keep)
	for _, f := range matches[:len(matches)-keep] {
		if err := os.Remove(f); err != nil {
			return written, err
		}
		removed[f] = true
	}
	kept := written[:0]
	for _, f := range written {
		if !removed[f] {
			kept = append(kept, f)
		}
	}
	return kept, nil
}

// LatestCheckpoint returns the newest checkpoint file in dir. File names
// embed a fixed-width clock, so the newest checkpoint is the
// lexicographically last ckpt_*.v6d even across stop/resume cycles.
func LatestCheckpoint(dir string) (string, error) {
	matches, err := ListCheckpoints(dir)
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("runner: no ckpt_*.v6d files in %s", dir)
	}
	return matches[len(matches)-1], nil
}

// ListCheckpoints returns every checkpoint file in dir, oldest first (clock
// order). A missing or empty directory yields an empty list, not an error —
// the caller decides whether "nothing to resume from" is a problem. The
// directory is data, not a pattern: it is read literally, so a checkpoint
// root containing glob metacharacters ("run[1]") lists exactly the files
// the writer put there.
func ListCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var matches []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "ckpt_") && strings.HasSuffix(name, ".v6d") {
			matches = append(matches, filepath.Join(dir, name))
		}
	}
	sort.Strings(matches)
	return matches, nil
}
