package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)

	spec := json.RawMessage(`{"scenario":"landau","params":{"nv":64,"nx":32}}`)
	at := time.Unix(1700000000, 123456789)
	id := s.NextID()
	if id != 0 {
		t.Fatalf("first id = %d", id)
	}
	if err := s.Submitted(id, "alice", spec, at); err != nil {
		t.Fatal(err)
	}
	if err := s.Started(id, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointWritten(id, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointWritten(id, 5.0); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A fresh Open replays everything: the job is pending (no terminal
	// record), its spec byte-identical, its progress markers intact.
	s2 := openStore(t, dir)
	pending := s2.Pending()
	if len(pending) != 1 {
		t.Fatalf("pending = %d jobs", len(pending))
	}
	j := pending[0]
	if j.ID != 0 || j.Tenant != "alice" || j.Attempts != 1 {
		t.Fatalf("replayed state: %+v", j)
	}
	if !bytes.Equal(j.Spec, spec) {
		t.Fatalf("spec did not round-trip byte-stably: %s vs %s", j.Spec, spec)
	}
	if !j.Submitted.Equal(at) {
		t.Fatalf("submitted time %v, want %v", j.Submitted, at)
	}
	if j.LastCheckpointClock != 5.0 || j.Checkpoints == 0 {
		t.Fatalf("checkpoint state: %+v", j)
	}
	if next := s2.NextID(); next != 1 {
		t.Fatalf("NextID after replay = %d", next)
	}
}

func TestTerminalJobsCompactedAway(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	spec := json.RawMessage(`{"scenario":"landau"}`)
	now := time.Now()
	for i := 0; i < 3; i++ {
		id := s.NextID()
		if err := s.Submitted(id, "", spec, now); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Terminal(0, "done", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Terminal(2, "failed", "boom"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	sizeBefore := journalSize(t, dir)

	// Reopen: only job 1 survives, the journal shrank (compaction dropped
	// the terminal jobs' records), and the id counter did not rewind.
	s2 := openStore(t, dir)
	pending := s2.Pending()
	if len(pending) != 1 || pending[0].ID != 1 {
		t.Fatalf("pending after compaction: %+v", pending)
	}
	if got := journalSize(t, dir); got >= sizeBefore {
		t.Fatalf("journal did not shrink: %d -> %d bytes", sizeBefore, got)
	}
	if next := s2.NextID(); next != 3 {
		t.Fatalf("NextID after compaction = %d (terminal ids must not be reissued)", next)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	spec := json.RawMessage(`{"scenario":"landau"}`)
	if err := s.Submitted(s.NextID(), "", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.Submitted(s.NextID(), "", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a SIGKILL mid-append: a torn frame (header promising more
	// bytes than exist) at the tail.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x12, 0x34}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openStore(t, dir)
	if got := len(s2.Pending()); got != 2 {
		t.Fatalf("pending after torn tail = %d, want 2", got)
	}
	// The torn bytes are gone: appending and replaying again works.
	if err := s2.Submitted(s2.NextID(), "", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openStore(t, dir)
	if got := len(s3.Pending()); got != 3 {
		t.Fatalf("pending after re-append = %d, want 3", got)
	}
}

func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	spec := json.RawMessage(`{"scenario":"landau"}`)
	if err := s.Submitted(s.NextID(), "", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a payload byte: the CRC catches it and replay keeps only the
	// records before the damage (here: none after).
	path := filepath.Join(dir, journalName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	// The first frame is the compaction seq record; the damaged submitted
	// frame is dropped.
	if got := len(s2.Pending()); got != 0 {
		t.Fatalf("pending after corrupt frame = %d, want 0", got)
	}
}

func TestUserCancelIsTerminal(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	id := s.NextID()
	if err := s.Submitted(id, "", json.RawMessage(`{}`), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.Terminal(id, "cancelled", ""); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	if got := len(s2.Pending()); got != 0 {
		t.Fatalf("user-cancelled job replayed as pending")
	}
}

// TestOnlineCompaction: with auto-compaction armed, journaling terminal
// outcomes on a live store shrinks the journal in place — no reboot —
// while pending jobs and the id counter survive intact.
func TestOnlineCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.SetAutoCompact(0, 12)
	spec := json.RawMessage(`{"scenario":"landau"}`)
	now := time.Now()

	// One long-lived pending job that must survive every compaction.
	keeper := s.NextID()
	if err := s.Submitted(keeper, "alice", spec, now); err != nil {
		t.Fatal(err)
	}
	// Churn: short jobs that submit, run, and finish. Every terminal pushes
	// the record count toward the threshold; auto-compaction keeps folding
	// the finished ones away.
	var peak int64
	for i := 0; i < 40; i++ {
		id := s.NextID()
		if err := s.Submitted(id, "bob", spec, now); err != nil {
			t.Fatal(err)
		}
		if err := s.Started(id, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Terminal(id, "done", ""); err != nil {
			t.Fatal(err)
		}
		if sz := s.Size(); sz > peak {
			peak = sz
		}
	}
	// 40 jobs × 3 records would be ~120 records uncompacted; the threshold
	// caps in-file growth. The final size must reflect only live work.
	if got := len(s.Pending()); got != 1 || s.Pending()[0].ID != keeper {
		t.Fatalf("pending after churn: %+v", s.Pending())
	}
	if sz := journalSize(t, dir); sz > peak/2 {
		t.Fatalf("journal never shrank online: %d bytes on disk, peak %d", sz, peak)
	}
	// The post-compaction file is a valid journal: reopen and check.
	s.Close()
	s2 := openStore(t, dir)
	if got := s2.Pending(); len(got) != 1 || got[0].ID != keeper || got[0].Tenant != "alice" {
		t.Fatalf("replay after online compaction: %+v", got)
	}
	if next := s2.NextID(); next != 41 {
		t.Fatalf("NextID after online compaction = %d, want 41", next)
	}
}

// TestCompactConcurrentAppends drives Compact against racing appenders:
// every record journaled before its job's terminal must survive or be
// compacted away exactly according to terminal state, never torn.
func TestCompactConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	spec := json.RawMessage(`{"scenario":"landau"}`)
	now := time.Now()
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := s.NextID()
				if err := s.Submitted(id, "t", spec, now); err != nil {
					t.Error(err)
					return
				}
				if id%2 == 0 {
					if err := s.Terminal(id, "done", ""); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	wantPending := len(s.Pending())
	s.Close()
	s2 := openStore(t, dir)
	if got := len(s2.Pending()); got != wantPending {
		t.Fatalf("pending after concurrent compaction: %d, want %d", got, wantPending)
	}
}

// TestOpenIgnoresLeftoverTmp pins the crash-interrupted-compaction
// contract: a journal.v6dj.tmp left by a compaction killed between its
// write and its rename must be removed by Open and NEVER replayed — the
// tmp may describe a world the real journal contradicts.
func TestOpenIgnoresLeftoverTmp(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	spec := json.RawMessage(`{"scenario":"landau"}`)
	id := s.NextID()
	if err := s.Submitted(id, "alice", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Fabricate the killed compaction's leftovers: a tmp journal holding a
	// DIFFERENT world — a bogus job that must not come back to life.
	tmp := filepath.Join(dir, journalName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeRecord(f, record{Type: "seq", Next: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := writeRecord(f, record{Type: "submitted", ID: 77, Tenant: "ghost",
		Spec: spec, UnixNano: time.Now().UnixNano()}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openStore(t, dir)
	pending := s2.Pending()
	if len(pending) != 1 || pending[0].ID != id || pending[0].Tenant != "alice" {
		t.Fatalf("pending after leftover tmp: %+v", pending)
	}
	if next := s2.NextID(); next >= 99 {
		t.Fatalf("tmp's seq record leaked into the id counter: next = %d", next)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover tmp not removed: %v", err)
	}
}

// TestOpenIndexIgnoresLeftoverTmp is the index half of the same contract.
func TestOpenIndexIgnoresLeftoverTmp(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Put(IndexEntry{ID: 1, Name: "real", Status: "done"}); err != nil {
		t.Fatal(err)
	}
	ix.Close()

	tmp := filepath.Join(dir, indexName+".tmp")
	payload, _ := json.Marshal(IndexEntry{ID: 2, Name: "ghost", Status: "done"})
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(f, payload); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ix2, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if _, ok := ix2.Get(2); ok {
		t.Fatal("leftover index tmp was replayed")
	}
	if e, ok := ix2.Get(1); !ok || e.Name != "real" {
		t.Fatalf("real entry lost: %+v ok=%v", e, ok)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover index tmp not removed: %v", err)
	}
}

func journalSize(t *testing.T, dir string) int64 {
	t.Helper()
	st, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}
