package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vlasov6d/internal/nbody"
	"vlasov6d/internal/units"
)

func randomParticles(t *testing.T, n int, box float64, seed int64) *nbody.Particles {
	t.Helper()
	p, err := nbody.NewParticles(n, 2.0, [3]float64{box, box, box})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			p.Pos[d][i] = rng.Float64() * box
		}
	}
	return p
}

func TestBuildValidation(t *testing.T) {
	p := randomParticles(t, 10, 100, 1)
	if _, err := Build(p, Options{RSplit: 0}); err == nil {
		t.Fatal("zero RSplit accepted")
	}
	if _, err := Build(p, Options{RSplit: 30}); err == nil {
		t.Fatal("cutoff beyond half box accepted")
	}
	if _, err := Build(p, Options{RSplit: 2, Theta: -1}); err == nil {
		t.Fatal("negative theta accepted")
	}
	bad, _ := nbody.NewParticles(4, 1, [3]float64{10, 20, 10})
	if _, err := Build(bad, Options{RSplit: 1}); err == nil {
		t.Fatal("non-cubic box accepted")
	}
}

func TestSplitGLimits(t *testing.T) {
	if d := math.Abs(SplitG(0) - 1); d > 1e-14 {
		t.Fatalf("g(0) = %v, want 1", SplitG(0))
	}
	// At the GADGET-convention cutoff 4.5·r_s the residual pair force is
	// ≈1.75% of Newtonian; dropped tails cancel statistically.
	if g := SplitG(CutoffFactor); g > 2e-2 {
		t.Fatalf("g at cutoff = %v, not negligible", g)
	}
	// Monotone decreasing.
	prev := SplitG(0)
	for x := 0.1; x < 4.5; x += 0.1 {
		g := SplitG(x)
		if g > prev {
			t.Fatalf("g not monotone at %v", x)
		}
		prev = g
	}
}

func TestGTableMatchesExact(t *testing.T) {
	gt := sharedGTable()
	for _, x := range []float64{0.05, 0.26, 0.5, 1.0, 2.0, 3.3, 4.4} {
		want := SplitG(x) / (x * x * x)
		got := gt.lookup(x)
		if math.Abs(got-want)/want > 2e-4 {
			t.Fatalf("g-table at x=%v: %v vs %v", x, got, want)
		}
	}
	if gt.lookup(4.6) != 0 {
		t.Fatal("lookup beyond cutoff should vanish")
	}
}

func TestTreeExactAtThetaZero(t *testing.T) {
	p := randomParticles(t, 300, 100, 7)
	opt := Options{Theta: 0, RSplit: 5, Soft: 0.1}
	tr, err := Build(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 17, 111, 299} {
		pos := [3]float64{p.Pos[0][i], p.Pos[1][i], p.Pos[2][i]}
		got := tr.Accel(pos)
		want := DirectShortRange(p, i, opt.Soft, opt.RSplit)
		for d := 0; d < 3; d++ {
			scale := math.Abs(want[0]) + math.Abs(want[1]) + math.Abs(want[2]) + 1e-12
			if math.Abs(got[d]-want[d])/scale > 2e-3 {
				t.Fatalf("particle %d dim %d: %v vs %v", i, d, got[d], want[d])
			}
		}
	}
}

func TestTreeMonopoleAccuracy(t *testing.T) {
	p := randomParticles(t, 500, 100, 8)
	opt := Options{Theta: 0.4, RSplit: 5, Soft: 0.1}
	tr, err := Build(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	maxRel := 0.0
	for i := 0; i < 40; i++ {
		pos := [3]float64{p.Pos[0][i], p.Pos[1][i], p.Pos[2][i]}
		got := tr.Accel(pos)
		want := DirectShortRange(p, i, opt.Soft, opt.RSplit)
		norm := math.Sqrt(want[0]*want[0] + want[1]*want[1] + want[2]*want[2])
		if norm == 0 {
			continue
		}
		var d2 float64
		for d := 0; d < 3; d++ {
			d2 += (got[d] - want[d]) * (got[d] - want[d])
		}
		rel := math.Sqrt(d2) / norm
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 0.05 {
		t.Fatalf("θ=0.4 worst-case force error %v > 5%%", maxRel)
	}
}

func TestScalarAndBatchedKernelsAgree(t *testing.T) {
	p := randomParticles(t, 200, 100, 9)
	optS := Options{Theta: 0.5, RSplit: 5, Soft: 0.1, Scalar: true}
	optB := optS
	optB.Scalar = false
	trS, err := Build(p, optS)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := Build(p, optB)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		pos := [3]float64{p.Pos[0][i], p.Pos[1][i], p.Pos[2][i]}
		a := trS.Accel(pos)
		b := trB.Accel(pos)
		norm := math.Abs(a[0]) + math.Abs(a[1]) + math.Abs(a[2]) + 1e-12
		for d := 0; d < 3; d++ {
			if math.Abs(a[d]-b[d])/norm > 1e-3 {
				t.Fatalf("kernels disagree at %d dim %d: %v vs %v", i, d, a[d], b[d])
			}
		}
	}
}

func TestIsolatedPairNewton(t *testing.T) {
	// Two close particles: the short-range force alone is essentially the
	// full Newtonian force (g ≈ 1 for r ≪ r_s).
	p, _ := nbody.NewParticles(2, 3.0, [3]float64{1000, 1000, 1000})
	p.Pos[0][0], p.Pos[1][0], p.Pos[2][0] = 500, 500, 500
	p.Pos[0][1], p.Pos[1][1], p.Pos[2][1] = 501, 500, 500
	tr, err := Build(p, Options{Theta: 0, RSplit: 100, Soft: 0})
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Accel([3]float64{500, 500, 500})
	want := units.G * p.Mass // G m / r² at r = 1
	if math.Abs(a[0]-want)/want > 1e-3 {
		t.Fatalf("pair force %v, want %v", a[0], want)
	}
	if math.Abs(a[1]) > 1e-10 || math.Abs(a[2]) > 1e-10 {
		t.Fatalf("transverse force should vanish: %v", a)
	}
}

func TestNewtonThirdLawAntisymmetry(t *testing.T) {
	p, _ := nbody.NewParticles(2, 1.0, [3]float64{100, 100, 100})
	p.Pos[0][0], p.Pos[1][0], p.Pos[2][0] = 40, 50, 50
	p.Pos[0][1], p.Pos[1][1], p.Pos[2][1] = 46, 50, 50
	tr, err := Build(p, Options{Theta: 0, RSplit: 3, Soft: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	a0 := tr.Accel([3]float64{40, 50, 50})
	a1 := tr.Accel([3]float64{46, 50, 50})
	for d := 0; d < 3; d++ {
		if math.Abs(a0[d]+a1[d]) > 1e-12*(math.Abs(a0[d])+1) {
			t.Fatalf("third law violated dim %d: %v vs %v", d, a0[d], a1[d])
		}
	}
}

func TestPeriodicMinimumImageForce(t *testing.T) {
	// A particle near x=0 and one near x=L attract across the boundary.
	p, _ := nbody.NewParticles(2, 1.0, [3]float64{100, 100, 100})
	p.Pos[0][0], p.Pos[1][0], p.Pos[2][0] = 0.5, 50, 50
	p.Pos[0][1], p.Pos[1][1], p.Pos[2][1] = 99.5, 50, 50
	tr, err := Build(p, Options{Theta: 0, RSplit: 3, Soft: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Accel([3]float64{0.5, 50, 50})
	if a[0] >= 0 {
		t.Fatalf("force should pull across the periodic boundary (negative x): %v", a[0])
	}
}

func TestAccelAllMatchesAccel(t *testing.T) {
	p := randomParticles(t, 150, 100, 11)
	tr, err := Build(p, Options{Theta: 0.5, RSplit: 5, Soft: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var acc [3][]float64
	for d := 0; d < 3; d++ {
		acc[d] = make([]float64, p.N)
	}
	if err := tr.AccelAll(acc); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 42, 149} {
		want := tr.Accel([3]float64{p.Pos[0][i], p.Pos[1][i], p.Pos[2][i]})
		for d := 0; d < 3; d++ {
			if acc[d][i] != want[d] {
				t.Fatalf("AccelAll differs at %d dim %d", i, d)
			}
		}
	}
	var short [3][]float64
	short[0] = make([]float64, 3)
	short[1] = make([]float64, p.N)
	short[2] = make([]float64, p.N)
	if err := tr.AccelAll(short); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestTreeMassConservation(t *testing.T) {
	// Root node mass equals total mass; checked for random particle sets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		p, _ := nbody.NewParticles(n, 1.25, [3]float64{50, 50, 50})
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				p.Pos[d][i] = rng.Float64() * 50
			}
		}
		tr, err := Build(p, Options{Theta: 0.5, RSplit: 2})
		if err != nil {
			return false
		}
		return math.Abs(tr.nodes[0].mass-float64(n)*1.25) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredParticlesDeepTree(t *testing.T) {
	// Many particles at nearly the same point must not break the build
	// (depth cap) and forces must stay finite with softening.
	p, _ := nbody.NewParticles(100, 1.0, [3]float64{100, 100, 100})
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < p.N; i++ {
		p.Pos[0][i] = 50 + rng.Float64()*1e-8
		p.Pos[1][i] = 50 + rng.Float64()*1e-8
		p.Pos[2][i] = 50 + rng.Float64()*1e-8
	}
	tr, err := Build(p, Options{Theta: 0.5, RSplit: 5, Soft: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Accel([3]float64{50, 50, 50})
	for d := 0; d < 3; d++ {
		if math.IsNaN(a[d]) || math.IsInf(a[d], 0) {
			t.Fatalf("non-finite acceleration %v", a)
		}
	}
}

// TestAccelAllWorkerInvariance: the parallel walk partitions particles into
// disjoint ranges, so a pinned worker count returns bit-identical
// accelerations — the property a scheduler-owned core budget relies on.
func TestAccelAllWorkerInvariance(t *testing.T) {
	p := randomParticles(t, 400, 100, 11)
	tr, err := Build(p, Options{Theta: 0.5, RSplit: 5, Soft: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var def, one [3][]float64
	for d := 0; d < 3; d++ {
		def[d] = make([]float64, p.N)
		one[d] = make([]float64, p.N)
	}
	if err := tr.AccelAll(def); err != nil { // GOMAXPROCS default
		t.Fatal(err)
	}
	tr.SetWorkers(1)
	if err := tr.AccelAll(one); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		for i := 0; i < p.N; i++ {
			if def[d][i] != one[d][i] {
				t.Fatalf("acc[%d][%d]: default %v != pinned %v", d, i, def[d][i], one[d][i])
			}
		}
	}
	tr.SetWorkers(0)
	if tr.workers != 1 {
		t.Fatalf("workers %d after SetWorkers(0), want floor 1", tr.workers)
	}
}
