package vlasov6d

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"testing"
	"time"
)

func runnerTestConfig() Config {
	return Config{
		Par:       Planck2015(0.4),
		Box:       200,
		NGrid:     6,
		NU:        6,
		NPartSide: 6,
		PMFactor:  2,
		Seed:      3,
	}
}

// TestRunCancellationPartialProgress: cancelling the context mid-run stops
// the driver with a partial-progress error that wraps context.Canceled.
func TestRunCancellationPartialProgress(t *testing.T) {
	sim, err := NewSimulation(runnerTestConfig(), 1.0/11)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := Run(ctx, sim, 0.5, WithObserver(func(step int, _ Solver) error {
		if step == 1 {
			cancel()
		}
		return nil
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Steps != 2 {
		t.Fatalf("partial progress %d steps, want 2", rep.Steps)
	}
	if rep.Clock <= 1.0/11 {
		t.Fatalf("clock %v did not advance before cancellation", rep.Clock)
	}
}

// TestRunWallClockBudget: the wall-clock budget stops the run between steps
// (taking at least one) and reports the reason rather than an error.
func TestRunWallClockBudget(t *testing.T) {
	sim, err := NewSimulation(runnerTestConfig(), 1.0/11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), sim, 0.5, WithWallClock(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != ReasonWallClock {
		t.Fatalf("reason %v, want wall-clock", rep.Reason)
	}
	if rep.Steps != 1 {
		t.Fatalf("steps %d, want exactly 1 under a 1ns budget", rep.Steps)
	}
}

// TestRunObserverMonotoneScale: the observer sees strictly increasing scale
// factors, consistent between Clock and Diagnostics.
func TestRunObserverMonotoneScale(t *testing.T) {
	sim, err := NewSimulation(runnerTestConfig(), 1.0/11)
	if err != nil {
		t.Fatal(err)
	}
	var clocks []float64
	_, err = Run(context.Background(), sim, 0.5, WithMaxSteps(5),
		WithObserver(func(step int, s Solver) error {
			d := s.Diagnostics()
			if d.Clock != s.Clock() {
				t.Fatalf("step %d: diagnostics clock %v != Clock %v", step, d.Clock, s.Clock())
			}
			clocks = append(clocks, s.Clock())
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(clocks) != 5 {
		t.Fatalf("observer saw %d steps", len(clocks))
	}
	prev := 1.0 / 11
	for i, a := range clocks {
		if a <= prev {
			t.Fatalf("scale factor not monotone at step %d: %v after %v", i, a, prev)
		}
		prev = a
	}
}

// TestRunCheckpointRestore: checkpoints written at the configured cadence
// round-trip bit-identically through snapio, and a simulation restored from
// the latest checkpoint continues under Run.
func TestRunCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	cfg := runnerTestConfig()
	sim, err := NewSimulation(cfg, 1.0/11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), sim, 0.5, WithMaxSteps(4), WithCheckpoint(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpoints) != 2 {
		t.Fatalf("checkpoints %v, want 2 at cadence 2 over 4 steps", rep.Checkpoints)
	}
	raw, err := os.ReadFile(rep.Checkpoints[1])
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != rep.CheckpointBytes/2 {
		t.Fatalf("checkpoint sizes: file %d, reported total %d", len(raw), rep.CheckpointBytes)
	}
	snap, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Bit-identical round trip: the latest checkpoint holds exactly the
	// simulation's current state...
	if snap.A != sim.A || snap.Time != sim.Time {
		t.Fatalf("checkpoint a=%v t=%v, sim a=%v t=%v", snap.A, snap.Time, sim.A, sim.Time)
	}
	for d := 0; d < 3; d++ {
		for i := range snap.Part.Pos[d] {
			if snap.Part.Pos[d][i] != sim.Part.Pos[d][i] || snap.Part.Vel[d][i] != sim.Part.Vel[d][i] {
				t.Fatalf("particle %d dim %d not bit-identical", i, d)
			}
		}
	}
	for i := range snap.Grid.Data {
		if snap.Grid.Data[i] != sim.Grid.Data[i] {
			t.Fatalf("grid cell %d not bit-identical", i)
		}
	}
	// ...and re-serialising the read-back snapshot reproduces the file
	// byte for byte.
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("snapshot re-serialisation is not bit-identical")
	}
	// Resume from the checkpoint and keep running under the same driver.
	resumed, err := RestoreSimulation(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(context.Background(), resumed, 0.5, WithMaxSteps(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Steps != 2 || resumed.A <= snap.A {
		t.Fatalf("resumed run: %d steps, a %v → %v", rep2.Steps, snap.A, resumed.A)
	}
}

// TestRunPlasmaLandau: the 1D1V plasma solver runs under the identical
// driver, with clock = plasma time and conserved mass.
func TestRunPlasmaLandau(t *testing.T) {
	s, err := NewPlasmaSolver(32, 64, 4*math.Pi, 6)
	if err != nil {
		t.Fatal(err)
	}
	s.LandauInit(0.01, 0.5, 1)
	m0 := s.TotalMass()
	rep, err := Run(context.Background(), s, 1.0, WithFixedDT(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != ReasonUntil {
		t.Fatalf("reason %v", rep.Reason)
	}
	if rep.Steps < 20 || rep.Steps > 21 { // 20 + possibly one round-off step
		t.Fatalf("steps %d", rep.Steps)
	}
	if math.Abs(s.Clock()-1.0) > 1e-9 {
		t.Fatalf("clock %v, want 1.0", s.Clock())
	}
	if drift := math.Abs(s.TotalMass()-m0) / m0; drift > 1e-8 {
		t.Fatalf("mass drift %v", drift)
	}
	d := s.Diagnostics()
	if d.Extra["field_energy"] <= 0 {
		t.Fatalf("diagnostics %+v", d)
	}
	// Adaptive stepping works too: SuggestDT must be positive and stable.
	if dt := s.SuggestDT(); dt <= 0 || dt > 0.4*s.DX()/s.VMax+1e-15 {
		t.Fatalf("SuggestDT %v", dt)
	}
}

// TestRunNBodyControl: the pure N-body control run (no Vlasov component)
// drives through the same Solver interface.
func TestRunNBodyControl(t *testing.T) {
	cfg := runnerTestConfig()
	cfg.NPartSide = 12
	sim, err := NewSimulation(cfg, 0.1, WithoutNeutrinos(), WithoutTree())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Grid != nil || sim.VSol != nil {
		t.Fatal("control run built a Vlasov component")
	}
	rep, err := Run(context.Background(), sim, 0.5, WithMaxSteps(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 3 || sim.A <= 0.1 {
		t.Fatalf("steps %d, a %v", rep.Steps, sim.A)
	}
}

// snapshotlessSolver implements Solver but not Checkpointer: the plasma
// solver used to play this role until it gained checkpoint support.
type snapshotlessSolver struct{ t float64 }

func (s *snapshotlessSolver) Step(dt float64) error { s.t += dt; return nil }
func (s *snapshotlessSolver) SuggestDT() float64    { return 0.1 }
func (s *snapshotlessSolver) Clock() float64        { return s.t }
func (s *snapshotlessSolver) Diagnostics() RunDiagnostics {
	return RunDiagnostics{Clock: s.t, Time: s.t, Mass: 1}
}

// TestRunCheckpointNeedsSupport: asking the driver to checkpoint a solver
// without snapshot support fails up front, before any stepping.
func TestRunCheckpointNeedsSupport(t *testing.T) {
	rep, err := Run(context.Background(), &snapshotlessSolver{}, 1.0, WithCheckpoint(t.TempDir(), 1))
	if err == nil {
		t.Fatal("checkpointing accepted for a solver without snapshot support")
	}
	if rep.Steps != 0 {
		t.Fatalf("driver stepped %d times before rejecting", rep.Steps)
	}
}

// TestRunPlasmaCheckpointRestore: the plasma solver checkpoints under the
// driver's cadence and a snapshot restores to the exact state — the
// capability scheduler-level sweep resume is built on.
func TestRunPlasmaCheckpointRestore(t *testing.T) {
	s, err := NewPlasmaSolver(32, 64, 4*math.Pi, 6)
	if err != nil {
		t.Fatal(err)
	}
	s.LandauInit(0.01, 0.5, 1)
	dir := t.TempDir()
	rep, err := Run(context.Background(), s, 1.0, WithFixedDT(0.05), WithCheckpoint(dir, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpoints) != 2 { // steps 10 and 20
		t.Fatalf("checkpoints %v", rep.Checkpoints)
	}
	f, err := os.Open(rep.Checkpoints[len(rep.Checkpoints)-1])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := RestorePlasmaSolver(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time != s.Time {
		t.Fatalf("restored clock %v, want %v", r.Time, s.Time)
	}
	for i := range s.F {
		if r.F[i] != s.F[i] {
			t.Fatalf("restored F differs at %d", i)
		}
	}
}

// TestRunCheckpointNuParticleBaseline: the §5.4 ν-particle baseline
// checkpoints through snapio format v2 and resumes under Run.
func TestRunCheckpointNuParticleBaseline(t *testing.T) {
	dir := t.TempDir()
	cfg := runnerTestConfig()
	sim, err := NewSimulation(cfg, 0.1, WithNuParticleBaseline(0))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), sim, 0.5, WithMaxSteps(2), WithCheckpoint(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpoints) != 1 {
		t.Fatalf("checkpoints %v", rep.Checkpoints)
	}
	snap, path, err := ResumeLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != rep.Checkpoints[0] {
		t.Fatalf("latest %s, want %s", path, rep.Checkpoints[0])
	}
	if snap.NuPart == nil || snap.NuPart.N != sim.NuPart.N {
		t.Fatalf("ν particles missing from the checkpoint")
	}
	resumed, err := RestoreSimulation(cfg, snap, WithNuParticleBaseline(0))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.A != sim.A || resumed.Time != sim.Time {
		t.Fatalf("resume clock a=%v t=%v, want a=%v t=%v", resumed.A, resumed.Time, sim.A, sim.Time)
	}
	if rep2, err := Run(context.Background(), resumed, 0.5, WithMaxSteps(1)); err != nil || rep2.Steps != 1 {
		t.Fatalf("resumed baseline run: %v (%+v)", err, rep2)
	}
}

// TestNewSimulationValidatesConfig: invalid configs fail at construction
// with descriptive errors — never as deferred panics inside Step.
func TestNewSimulationValidatesConfig(t *testing.T) {
	for name, opt := range map[string]SimOption{
		"negative box":        func(c *Config) { c.Box = -100 },
		"zero box":            func(c *Config) { c.Box = 0 },
		"zero NGrid":          func(c *Config) { c.NGrid = 0 },
		"negative NU":         func(c *Config) { c.NU = -6 },
		"bad PM mesh":         WithPMMesh(7), // not a multiple of NGrid = 6
		"negative CFL":        WithCFL(-0.4, 0.4),
		"negative tree theta": WithTreeOpening(-1),
	} {
		if _, err := NewSimulation(runnerTestConfig(), 0.1, opt); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Options are applied on a copy: the caller's Config is untouched.
	cfg := runnerTestConfig()
	if _, err := NewSimulation(cfg, 0.1, WithScheme("mp5")); err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme != "" {
		t.Fatal("SimOption mutated the caller's Config")
	}
}
