// Package plasma implements the classic 1D1V electrostatic Vlasov–Poisson
// system with the same SL-MPP5 advection machinery used by the 6D
// cosmological solver. The paper (§8) singles out electrostatic and
// magnetised plasma as the natural next applications of the scheme; this
// package provides the canonical validation problems every Vlasov code is
// measured against — linear Landau damping and the two-stream instability —
// with analytically known rates.
//
// Equations (electron plasma, immobile neutralising ions, normalised units
// with ω_p = 1, Debye length = 1):
//
//	∂f/∂t + v·∂f/∂x − E(x)·∂f/∂v = 0,
//	∂E/∂x = ρ(x) − 1,   ρ = ∫ f dv.
package plasma

import (
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"

	"vlasov6d/internal/advect"
	"vlasov6d/internal/fft"
	"vlasov6d/internal/runner"
)

// Solver advances f(x, v) on a periodic x ∈ [0, L) and open v ∈ [−Vmax, Vmax).
type Solver struct {
	NX, NV int
	L      float64
	VMax   float64
	// F is the distribution, row-major [NX][NV].
	F []float64
	// Time is the elapsed plasma time ω_p·t, advanced by Step. It doubles
	// as the runner clock, so Run(ctx, s, T) integrates to t = T.
	Time float64
	// CFL is the target CFL number SuggestDT aims for (default 0.4; the
	// semi-Lagrangian scheme tolerates larger values at reduced accuracy).
	CFL float64

	per    advect.Scheme
	scheme string
	open   *advect.SLMPP5
	plan   *fft.Plan
	rho    []float64
	e      []float64
	buf    []float64
	fieldC []complex128
	// workers is the intra-step parallelism of the drift and kick sweeps
	// (default GOMAXPROCS, pinned with SetWorkers). Lines are independent,
	// so the worker count never changes the computed physics.
	workers int
	// pool holds the parallel-path sweep workers, grown on demand and
	// reused across steps (schemes hold scratch and are cloned per worker).
	pool []*pworker
}

// New allocates a solver with the paper's SL-MPP5 advection. nx and nv
// must be at least 6 (stencil width).
func New(nx, nv int, boxL, vmax float64) (*Solver, error) {
	return NewWithScheme(nx, nv, boxL, vmax, "slmpp5")
}

// NewWithScheme allocates a solver whose periodic x-drift uses the named
// advection scheme (see advect.Names) — the knob scheme-comparison sweeps
// turn. The open-boundary v-kick always uses SL-MPP5, the only scheme with
// an open-line form; the drift is where the schemes differ in dissipation
// and phase error, so the comparison isolates exactly that.
func NewWithScheme(nx, nv int, boxL, vmax float64, scheme string) (*Solver, error) {
	if nx < 6 || nv < 6 {
		return nil, fmt.Errorf("plasma: grid %dx%d below stencil width", nx, nv)
	}
	if boxL <= 0 || vmax <= 0 {
		return nil, fmt.Errorf("plasma: invalid domain L=%v Vmax=%v", boxL, vmax)
	}
	per, err := advect.New(scheme)
	if err != nil {
		return nil, err
	}
	plan, err := fft.NewPlan(nx)
	if err != nil {
		return nil, err
	}
	return &Solver{
		NX: nx, NV: nv, L: boxL, VMax: vmax,
		CFL:     0.4,
		F:       make([]float64, nx*nv),
		per:     per,
		scheme:  scheme,
		open:    advect.NewSLMPP5(),
		plan:    plan,
		rho:     make([]float64, nx),
		e:       make([]float64, nx),
		buf:     make([]float64, nx),
		fieldC:  make([]complex128, nx),
		workers: runtime.GOMAXPROCS(0),
	}, nil
}

// Scheme returns the name of the periodic x-drift advection scheme.
func (s *Solver) Scheme() string { return s.scheme }

// SetWorkers pins the intra-step worker count of the drift and kick sweeps
// (minimum 1), implementing runner.WorkerBudgeted so a scheduler-owned core
// budget can resize a running solver between steps. Every sweep line is
// independent and computed identically, so the state evolution is
// bit-identical for any worker count — the budget trades only wall-clock.
func (s *Solver) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// pworker carries per-goroutine sweep scratch: a gather buffer and private
// scheme instances (schemes hold scratch state and are not safe for
// concurrent use).
type pworker struct {
	line []float64
	per  advect.Scheme
	open *advect.SLMPP5
}

// worker returns parallel worker k's scratch, growing the pool on demand.
// Pool workers persist across steps, so steady-state parallel stepping stops
// re-cloning schemes and reallocating gather lines every sweep.
func (s *Solver) worker(k int) *pworker {
	for len(s.pool) <= k {
		s.pool = append(s.pool, &pworker{
			line: make([]float64, s.NX),
			per:  s.per.Clone(),
			open: advect.NewSLMPP5(),
		})
	}
	return s.pool[k]
}

// clampWorkers bounds the sweep parallelism by the number of independent
// lines.
func (s *Solver) clampWorkers(n int) int {
	nw := s.workers
	if nw > n {
		nw = n
	}
	if nw < 1 {
		nw = 1
	}
	return nw
}

// runRanges is the parallel dispatch path: [0, n) is split into one
// contiguous range per worker and the first reported error wins (a failing
// worker abandons its range). Callers handle nw ≤ 1 serially first with a
// direct range call on the solver's own scratch — no closures, goroutines or
// scheme clones — which keeps the steady-state serial step allocation-free.
func (s *Solver) runRanges(n, nw int, run func(w *pworker, lo, hi int) error) error {
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	chunk := (n + nw - 1) / nw
	for k := 0; k < nw; k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w *pworker, lo, hi int) {
			defer wg.Done()
			if err := run(w, lo, hi); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(s.worker(k), lo, hi)
	}
	wg.Wait()
	return firstErr
}

// DX returns the spatial cell width.
func (s *Solver) DX() float64 { return s.L / float64(s.NX) }

// DV returns the velocity cell width.
func (s *Solver) DV() float64 { return 2 * s.VMax / float64(s.NV) }

// X returns the cell-centre coordinate of spatial index i.
func (s *Solver) X(i int) float64 { return (float64(i) + 0.5) * s.DX() }

// V returns the cell-centre velocity of index j.
func (s *Solver) V(j int) float64 { return -s.VMax + (float64(j)+0.5)*s.DV() }

// Fill evaluates f(x, v) at every cell centre.
func (s *Solver) Fill(f func(x, v float64) float64) {
	for i := 0; i < s.NX; i++ {
		x := s.X(i)
		for j := 0; j < s.NV; j++ {
			s.F[i*s.NV+j] = f(x, s.V(j))
		}
	}
}

// Density returns ρ(x) = ∫ f dv.
func (s *Solver) Density() []float64 {
	dv := s.DV()
	for i := 0; i < s.NX; i++ {
		sum := 0.0
		row := s.F[i*s.NV : (i+1)*s.NV]
		for _, v := range row {
			sum += v
		}
		s.rho[i] = sum * dv
	}
	return s.rho
}

// ElectricField solves Gauss's law ∂E/∂x = ⟨ρ⟩ − ρ (the electrons carry
// negative charge against the uniform neutralising ion background; with the
// force term −E·∂f/∂v of the header this makes density clumps repel
// electrons, i.e. plasma oscillations rather than gravitational collapse).
// The mean of E is zero (no external field).
func (s *Solver) ElectricField() []float64 {
	rho := s.Density()
	data := s.fieldC
	mean := 0.0
	for _, v := range rho {
		mean += v
	}
	mean /= float64(s.NX)
	for i, v := range rho {
		data[i] = complex(mean-v, 0)
	}
	s.plan.Forward(data)
	kf := 2 * math.Pi / s.L
	for m := range data {
		mm := m
		if mm > s.NX/2 {
			mm -= s.NX
		}
		if mm == 0 {
			data[m] = 0
			continue
		}
		k := kf * float64(mm)
		// E_k = ρ_k/(i k)  ⇐  ikE_k = ρ_k.
		data[m] /= complex(0, k)
	}
	s.plan.Inverse(data)
	for i := range s.e {
		s.e[i] = real(data[i])
	}
	return s.e
}

// FieldEnergy returns ∫ E²/2 dx, the standard Landau-damping diagnostic.
func (s *Solver) FieldEnergy() float64 {
	e := s.ElectricField()
	sum := 0.0
	for _, v := range e {
		sum += v * v
	}
	return 0.5 * sum * s.DX()
}

// currentField returns E(x) for the current state without a redundant
// Poisson solve: the field cached by the last kick is still exact after a
// completed Step (kicks advect in v only, leaving ρ and hence E
// unchanged). Before the first step there is no cached field yet and it is
// computed. Every hot-path consumer (SuggestDT, Diagnostics) goes through
// here so the invariant lives in exactly one place.
func (s *Solver) currentField() []float64 {
	if s.Time == 0 {
		return s.ElectricField()
	}
	return s.e
}

// fieldEnergyCached evaluates ∫ E²/2 dx from currentField — the per-step
// diagnostics path, free of Poisson solves.
func (s *Solver) fieldEnergyCached() float64 {
	sum := 0.0
	for _, v := range s.currentField() {
		sum += v * v
	}
	return 0.5 * sum * s.DX()
}

// TotalMass returns ∫f dx dv.
func (s *Solver) TotalMass() float64 {
	sum := 0.0
	for _, v := range s.F {
		sum += v
	}
	return sum * s.DX() * s.DV()
}

// Step advances one splitting step: v-kick(dt/2), x-drift(dt), v-kick(dt/2),
// with the field refreshed before each kick.
func (s *Solver) Step(dt float64) error {
	if err := s.kick(dt / 2); err != nil {
		return err
	}
	if err := s.drift(dt); err != nil {
		return err
	}
	if err := s.kick(dt / 2); err != nil {
		return err
	}
	s.Time += dt
	return nil
}

// Clock returns the elapsed plasma time — the runner's run coordinate.
func (s *Solver) Clock() float64 { return s.Time }

// SuggestDT returns a stable step from the CFL targets: the fastest grid
// velocity crossing a spatial cell and the strongest field crossing a
// velocity cell. The drift target is additionally capped at the x-scheme's
// stability limit (SL-MPP5 is unconditional, but MP5/RK3 and the low-order
// baselines require CFL ≤ 1).
func (s *Solver) SuggestDT() float64 {
	cfl := s.CFL
	if m := s.per.MaxCFL(); m > 0 && cfl > m {
		cfl = m
	}
	dt := cfl * s.DX() / s.VMax
	e := s.currentField()
	emax := 0.0
	for _, v := range e {
		if a := math.Abs(v); a > emax {
			emax = a
		}
	}
	if emax > 0 {
		if d := s.CFL * s.DV() / emax; d < dt {
			dt = d
		}
	}
	return dt
}

// Diagnostics reports time, total mass and the field energy (the standard
// Landau-damping / two-stream observable). The result is a value snapshot
// with a fresh Extra map — the runner's contract for off-thread (async
// observer) delivery — and the field energy comes from the cached field of
// the last kick, so the step-path diagnostics cost no Poisson solve.
func (s *Solver) Diagnostics() runner.Diagnostics {
	return runner.Diagnostics{
		Clock: s.Time,
		Time:  s.Time,
		Mass:  s.TotalMass(),
		Extra: map[string]float64{"field_energy": s.fieldEnergyCached()},
	}
}

// drift advances ∂f/∂t + v ∂f/∂x = 0: for each velocity index the x-line is
// periodic with CFL v·dt/Δx. Lines (velocity indices) are independent and
// sweep in parallel over the solver's workers.
func (s *Solver) drift(dt float64) error {
	dx := s.DX()
	nw := s.clampWorkers(s.NV)
	if nw <= 1 {
		w := pworker{line: s.buf, per: s.per, open: s.open}
		return s.driftRange(&w, 0, s.NV, dt, dx)
	}
	return s.runRanges(s.NV, nw, func(w *pworker, lo, hi int) error {
		return s.driftRange(w, lo, hi, dt, dx)
	})
}

func (s *Solver) driftRange(w *pworker, lo, hi int, dt, dx float64) error {
	for j := lo; j < hi; j++ {
		c := s.V(j) * dt / dx
		if c == 0 {
			continue
		}
		line := w.line[:s.NX]
		for i := 0; i < s.NX; i++ {
			line[i] = s.F[i*s.NV+j]
		}
		if err := w.per.Step(line, c); err != nil {
			return err
		}
		for i := 0; i < s.NX; i++ {
			s.F[i*s.NV+j] = line[i]
		}
	}
	return nil
}

// kick advances ∂f/∂t − E ∂f/∂v = 0: each spatial row is an open v-line with
// CFL −E·dt/Δv. The field solve stays serial (one small FFT); the rows are
// disjoint in-place slices and sweep in parallel.
func (s *Solver) kick(dt float64) error {
	e := s.ElectricField()
	dv := s.DV()
	nw := s.clampWorkers(s.NX)
	if nw <= 1 {
		w := pworker{line: s.buf, per: s.per, open: s.open}
		return s.kickRange(&w, 0, s.NX, dt, dv, e)
	}
	return s.runRanges(s.NX, nw, func(w *pworker, lo, hi int) error {
		return s.kickRange(w, lo, hi, dt, dv, e)
	})
}

func (s *Solver) kickRange(w *pworker, lo, hi int, dt, dv float64, e []float64) error {
	for i := lo; i < hi; i++ {
		c := -e[i] * dt / dv
		if c == 0 {
			continue
		}
		row := s.F[i*s.NV : (i+1)*s.NV]
		if err := w.open.StepOpen(row, c); err != nil {
			return err
		}
	}
	return nil
}

// DriftStep applies one full x-drift sweep and KickStep one full v-kick
// (field refresh included) in isolation — the two halves of the split
// operator, exposed so the bench harness can profile them separately.
func (s *Solver) DriftStep(dt float64) error { return s.drift(dt) }

// KickStep applies one v-kick sweep with a fresh field solve; see DriftStep.
func (s *Solver) KickStep(dt float64) error { return s.kick(dt) }

// LandauInit sets the standard Landau-damping initial condition
// f = (1 + α·cos(kx))·Maxwellian(v; vth).
func (s *Solver) LandauInit(alpha, k, vth float64) {
	norm := 1 / (math.Sqrt(2*math.Pi) * vth)
	s.Fill(func(x, v float64) float64 {
		return (1 + alpha*math.Cos(k*x)) * norm * math.Exp(-v*v/(2*vth*vth))
	})
}

// TwoStreamInit sets two counter-streaming Maxwellian beams at ±v0 with a
// seed perturbation.
func (s *Solver) TwoStreamInit(alpha, k, v0, vth float64) {
	norm := 1 / (2 * math.Sqrt(2*math.Pi) * vth)
	s.Fill(func(x, v float64) float64 {
		b := math.Exp(-(v-v0)*(v-v0)/(2*vth*vth)) + math.Exp(-(v+v0)*(v+v0)/(2*vth*vth))
		return (1 + alpha*math.Cos(k*x)) * norm * b
	})
}

// LandauDampingRate returns the Landau damping rate γ (negative) of the
// Langmuir wave at wavenumber k for a Maxwellian with thermal speed vth,
// solving the kinetic dispersion relation 1 + (1+ζZ(ζ))/ (k λ_D)² = 0 for
// the least-damped root via Newton iteration on the plasma dispersion
// function Z (computed from the complex complementary error function).
func LandauDampingRate(k, vth float64) float64 {
	kl := k * vth
	// Initial guess from the Bohm-Gross branch with the textbook asymptotic
	// damping estimate.
	om := math.Sqrt(1 + 3*kl*kl)
	gamma := -math.Sqrt(math.Pi/8) / (kl * kl * kl) *
		math.Exp(-om*om/(2*kl*kl))
	zeta := complex(om, gamma) / complex(math.Sqrt2*kl, 0)
	f := func(z complex128) complex128 {
		return 1 + (1+z*plasmaZ(z))/complex(kl*kl, 0)
	}
	// Newton with numerical derivative.
	for it := 0; it < 60; it++ {
		h := complex(1e-7, 0)
		df := (f(zeta+h) - f(zeta-h)) / (2 * h)
		step := f(zeta) / df
		zeta -= step
		if cmplx.Abs(step) < 1e-14 {
			break
		}
	}
	omega := zeta * complex(math.Sqrt2*kl, 0)
	return imag(omega)
}

// plasmaZ is the plasma dispersion function Z(ζ) = i√π·w(ζ) with w the
// Faddeeva function, evaluated by a continued fraction for large |ζ| and by
// a series + Dawson relation near the origin (upper half-plane; analytic
// continuation below via the residue term).
func plasmaZ(z complex128) complex128 {
	w := faddeeva(z)
	return complex(0, math.Sqrt(math.Pi)) * w
}

// faddeeva computes w(z) = e^{-z²} erfc(−iz). For Im z > 0 it evaluates the
// defining Hilbert-transform integral
//
//	w(z) = (i/π) ∫ e^{−t²}/(z−t) dt
//
// with the trapezoid rule, which converges exponentially (error
// ~e^{−2πd/h} with d the pole distance from the real axis); the lower
// half-plane uses the reflection w(z) = 2e^{−z²} − w(−z̄)̄… specifically
// w(−z) via the standard symmetry. This path only runs inside the
// dispersion-relation Newton solve, never per grid cell, so the O(10⁴)
// quadrature points are irrelevant to performance.
func faddeeva(z complex128) complex128 {
	if imag(z) < 0 {
		return 2*cmplx.Exp(-z*z) - faddeeva(-z)
	}
	if cmplx.Abs(z) <= 4 {
		// w(z) = e^{−z²}·(1 − erf(−iz)) with erf from its Maclaurin series,
		// which converges comfortably in double precision for |z| ≤ 4.
		u := complex(0, -1) * z // −iz
		term := u
		sum := u
		u2 := u * u
		for n := 1; n < 120; n++ {
			term *= -u2 / complex(float64(n), 0)
			add := term / complex(float64(2*n+1), 0)
			sum += add
			if cmplx.Abs(add) < 1e-18*cmplx.Abs(sum) {
				break
			}
		}
		erf := sum * complex(2/math.Sqrt(math.Pi), 0)
		return cmplx.Exp(-z*z) * (1 - erf)
	}
	// Large |z|: Lentz continued fraction
	// w(z) = (i/√π)/(z − (1/2)/(z − 1/(z − (3/2)/(z − …)))).
	f := complex(0, 0)
	for n := 40; n >= 1; n-- {
		f = complex(float64(n)/2, 0) / (z - f)
	}
	return complex(0, 1/math.Sqrt(math.Pi)) / (z - f)
}
