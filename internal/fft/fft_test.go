package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 3, 5, 6, 12, 96, 100, 27} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSignal(n, int64(n))
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Fatalf("n=%d: max error %v", n, e)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{8, 96, 33, 128, 192} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSignal(n, 42)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if e := maxErr(x, y); e > 1e-10*float64(n) {
			t.Fatalf("n=%d: roundtrip error %v", n, e)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	p, err := NewPlan(96)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		x := randomSignal(96, seed)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		return maxErr(x, y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParseval(t *testing.T) {
	n := 128
	p, _ := NewPlan(n)
	x := randomSignal(n, 7)
	var eX float64
	for _, v := range x {
		eX += real(v)*real(v) + imag(v)*imag(v)
	}
	y := append([]complex128(nil), x...)
	p.Forward(y)
	var eY float64
	for _, v := range y {
		eY += real(v)*real(v) + imag(v)*imag(v)
	}
	eY /= float64(n)
	if math.Abs(eX-eY)/eX > 1e-12 {
		t.Fatalf("Parseval violated: %v vs %v", eX, eY)
	}
}

func TestDeltaFunction(t *testing.T) {
	n := 64
	p, _ := NewPlan(n)
	x := make([]complex128, n)
	x[0] = 1
	p.Forward(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("delta spectrum not flat at k=%d: %v", k, v)
		}
	}
}

func TestSingleMode(t *testing.T) {
	n := 32
	p, _ := NewPlan(n)
	x := make([]complex128, n)
	kMode := 5
	for j := range x {
		ang := 2 * math.Pi * float64(kMode) * float64(j) / float64(n)
		x[j] = cmplx.Exp(complex(0, ang))
	}
	p.Forward(x)
	for k, v := range x {
		want := complex(0, 0)
		if k == kMode {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Fatalf("mode leakage at k=%d: %v", k, v)
		}
	}
}

func TestInvalidPlan(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Fatal("NewPlan(0) accepted")
	}
	if _, err := NewPlan(-4); err == nil {
		t.Fatal("NewPlan(-4) accepted")
	}
}

func TestFFT3RoundTrip(t *testing.T) {
	for _, dims := range [][3]int{{8, 8, 8}, {4, 6, 10}, {12, 8, 6}, {16, 16, 16}} {
		nx, ny, nz := dims[0], dims[1], dims[2]
		f3, err := NewFFT3(nx, ny, nz)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSignal(nx*ny*nz, 3)
		y := append([]complex128(nil), x...)
		if err := f3.Forward(y); err != nil {
			t.Fatal(err)
		}
		if err := f3.Inverse(y); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(x, y); e > 1e-9 {
			t.Fatalf("dims %v: roundtrip error %v", dims, e)
		}
	}
}

func TestFFT3MatchesSeparableNaive(t *testing.T) {
	nx, ny, nz := 4, 4, 4
	f3, _ := NewFFT3(nx, ny, nz)
	x := randomSignal(nx*ny*nz, 11)
	got := append([]complex128(nil), x...)
	if err := f3.Forward(got); err != nil {
		t.Fatal(err)
	}
	// Brute-force 3D DFT.
	want := make([]complex128, len(x))
	for kx := 0; kx < nx; kx++ {
		for ky := 0; ky < ny; ky++ {
			for kz := 0; kz < nz; kz++ {
				var s complex128
				for jx := 0; jx < nx; jx++ {
					for jy := 0; jy < ny; jy++ {
						for jz := 0; jz < nz; jz++ {
							ph := -2 * math.Pi * (float64(kx*jx)/float64(nx) +
								float64(ky*jy)/float64(ny) + float64(kz*jz)/float64(nz))
							s += x[(jx*ny+jy)*nz+jz] * cmplx.Exp(complex(0, ph))
						}
					}
				}
				want[(kx*ny+ky)*nz+kz] = s
			}
		}
	}
	if e := maxErr(got, want); e > 1e-9 {
		t.Fatalf("3D FFT error vs naive: %v", e)
	}
}

func TestFFT3WorkerIndependence(t *testing.T) {
	nx, ny, nz := 8, 12, 16
	x := randomSignal(nx*ny*nz, 5)
	ref := append([]complex128(nil), x...)
	f1, _ := NewFFT3(nx, ny, nz)
	f1.SetWorkers(1)
	if err := f1.Forward(ref); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		y := append([]complex128(nil), x...)
		fw, _ := NewFFT3(nx, ny, nz)
		fw.SetWorkers(w)
		if err := fw.Forward(y); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(ref, y); e > 1e-12 {
			t.Fatalf("workers=%d changes result by %v", w, e)
		}
	}
}

func TestFFT3BadLength(t *testing.T) {
	f3, _ := NewFFT3(4, 4, 4)
	if err := f3.Forward(make([]complex128, 10)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
