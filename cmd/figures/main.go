// Command figures regenerates the data behind the paper's science figures
// at laptop scale:
//
//	-fig4  projected density maps: CDM, ν(0.4 eV), ν(0.2 eV)
//	-fig5  the local velocity distribution: smooth Vlasov f(ux,uy) versus
//	       the sparse neutrino-particle sampling of the same cell
//	-fig6  ν density / velocity / dispersion maps, Vlasov vs N-body, with
//	       the shot-noise comparison numbers
//	-fig8  nested-zoom density maps from the largest feasible local run
//
// Outputs are 8-bit PGM images plus CSV series under -out (default
// ./figures_out), and a textual summary of the quantitative checks.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"vlasov6d/internal/analysis"
	"vlasov6d/internal/cosmo"
	"vlasov6d/internal/hybrid"
	"vlasov6d/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		outDir = flag.String("out", "figures_out", "output directory")
		fig4   = flag.Bool("fig4", false, "generate Fig. 4 data")
		fig5   = flag.Bool("fig5", false, "generate Fig. 5 data")
		fig6   = flag.Bool("fig6", false, "generate Fig. 6 data")
		fig8   = flag.Bool("fig8", false, "generate Fig. 8 data")
		ngrid  = flag.Int("ngrid", 12, "Vlasov spatial cells per side")
		nu     = flag.Int("nu", 10, "velocity cells per side")
		npart  = flag.Int("npart", 12, "CDM particles per side")
		aEnd   = flag.Float64("aend", 0.25, "final scale factor (z=3)")
		seed   = flag.Int64("seed", 20211114, "IC random seed")
	)
	flag.Parse()
	if !(*fig4 || *fig5 || *fig6 || *fig8) {
		*fig4, *fig5, *fig6, *fig8 = true, true, true, true
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	base := hybrid.Config{
		Par:       cosmo.Planck2015(0.4),
		Box:       200,
		NGrid:     *ngrid,
		NU:        *nu,
		NPartSide: *npart,
		PMFactor:  2,
		Seed:      *seed,
	}
	if *fig4 {
		runFig4(base, *aEnd, *outDir)
	}
	if *fig5 || *fig6 {
		runFig56(base, *aEnd, *outDir, *fig5, *fig6)
	}
	if *fig8 {
		runFig8(base, *aEnd, *outDir)
	}
}

// evolve runs a simulation from z=10 to aEnd under the unified runner.
func evolve(cfg hybrid.Config, aEnd float64, label string) *hybrid.Simulation {
	sim, err := hybrid.New(cfg, 0.0909)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	log.Printf("%s: evolving z=10 → z=%.2f ...", label, 1/aEnd-1)
	rep, err := runner.Run(context.Background(), sim, aEnd, runner.WithMaxSteps(100000))
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	log.Printf("%s: done in %d steps (%.1fs wall)", label, rep.Steps, rep.Wall.Seconds())
	return sim
}

func writePGMFile(dir, name string, m []float64, w, h int, logScale bool) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := analysis.WritePGM(f, m, w, h, logScale); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", f.Name())
}

// runFig4 produces the three density maps of Fig. 4.
func runFig4(base hybrid.Config, aEnd float64, outDir string) {
	// 0.4 eV run.
	sim4 := evolve(base, aEnd, "fig4 Mν=0.4eV")
	// 0.2 eV run from the same seed.
	cfg2 := base
	cfg2.Par = cosmo.Planck2015(0.2)
	sim2 := evolve(cfg2, aEnd, "fig4 Mν=0.2eV")

	// CDM map from the 0.4 eV run.
	mesh := make([]float64, sim4.PM.Size())
	if err := sim4.Part.CICDeposit(mesh, sim4.PM.N); err != nil {
		log.Fatal(err)
	}
	cdmMap, w, h, err := analysis.Project(mesh, sim4.PM.N, 2)
	if err != nil {
		log.Fatal(err)
	}
	writePGMFile(outDir, "fig4_cdm.pgm", cdmMap, w, h, true)

	maps := map[string]*hybrid.Simulation{
		"fig4_nu_0.4eV.pgm": sim4,
		"fig4_nu_0.2eV.pgm": sim2,
	}
	var c4, c2 float64
	for name, sim := range maps {
		m := sim.Grid.ComputeMoments()
		n3 := [3]int{sim.Grid.NX, sim.Grid.NY, sim.Grid.NZ}
		numap, w, h, err := analysis.Project(m.Density, n3, 2)
		if err != nil {
			log.Fatal(err)
		}
		writePGMFile(outDir, name, numap, w, h, true)
		st := analysis.Stats(m.Density)
		if sim == sim4 {
			c4 = st.RMSContrast
		} else {
			c2 = st.RMSContrast
		}
	}
	cdmStats := analysis.Stats(mesh)
	fmt.Printf("\nFig 4 summary (z=%.2f):\n", 1/aEnd-1)
	fmt.Printf("  CDM rms contrast           : %.3f (clustered, wide log range)\n", cdmStats.RMSContrast)
	fmt.Printf("  ν rms contrast (Mν=0.4 eV) : %.4f\n", c4)
	fmt.Printf("  ν rms contrast (Mν=0.2 eV) : %.4f\n", c2)
	fmt.Printf("  paper expectation: ν maps much smoother than CDM; the heavier\n")
	fmt.Printf("  (slower) 0.4 eV neutrinos cluster MORE than 0.2 eV: %.4f > %.4f = %v\n",
		c4, c2, c4 > c2)
}

// runFig56 produces Fig. 5 (velocity distribution at a cell) and Fig. 6
// (moment maps Vlasov vs N-body).
func runFig56(base hybrid.Config, aEnd float64, outDir string, doFig5, doFig6 bool) {
	simV := evolve(base, aEnd, "fig5/6 Vlasov")
	cfgP := base
	cfgP.NuParticles = true
	cfgP.NNuSide = 2 * base.NPartSide
	simP := evolve(cfgP, aEnd, "fig5/6 N-body baseline")

	if doFig5 {
		// Pick the densest cell for an interesting velocity structure.
		mom := simV.Grid.ComputeMoments()
		best, bv := 0, 0.0
		for c, v := range mom.Density {
			if v > bv {
				best, bv = c, v
			}
		}
		nz := simV.Grid.NZ
		ny := simV.Grid.NY
		ix, iy, iz := best/(ny*nz), (best/nz)%ny, best%nz
		plane, ux, uy, err := analysis.VelocityPlane(simV.Grid, ix, iy, iz)
		if err != nil {
			log.Fatal(err)
		}
		writePGMFile(outDir, "fig5_vlasov_fuxuy.pgm", plane, len(uy), len(ux), true)
		// The N-body samples in the same cell.
		n3 := [3]int{simV.Grid.NX, simV.Grid.NY, simV.Grid.NZ}
		pux, puy := analysis.ParticlesInCell(simP.NuPart, n3, ix, iy, iz)
		f, err := os.Create(filepath.Join(outDir, "fig5_particles.csv"))
		if err != nil {
			log.Fatal(err)
		}
		if err := analysis.WriteCSV(f, []string{"ux_km_s", "uy_km_s"}, pux, puy); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("\nFig 5 summary: cell (%d,%d,%d)\n", ix, iy, iz)
		fmt.Printf("  Vlasov grid resolves f on %d×%d velocity points\n", len(ux), len(uy))
		fmt.Printf("  the N-body run has only %d ν particles in the same cell —\n", len(pux))
		fmt.Printf("  the paper's Fig. 5: the smooth long-tailed distribution vs sparse circles\n")
	}

	if doFig6 {
		momV := simV.Grid.ComputeMoments()
		n3 := [3]int{simV.Grid.NX, simV.Grid.NY, simV.Grid.NZ}
		momP, err := analysis.MomentsFromParticles(simP.NuPart, n3)
		if err != nil {
			log.Fatal(err)
		}
		// |⟨u⟩| map for the Vlasov side.
		meanV := make([]float64, len(momV.Density))
		for c := range meanV {
			var m2 float64
			for d := 0; d < 3; d++ {
				m2 += momV.MeanU[d][c] * momV.MeanU[d][c]
			}
			meanV[c] = math.Sqrt(m2)
		}
		fields := []struct {
			name   string
			vlasov []float64
			nbody  []float64
			logPGM bool
		}{
			{"density", momV.Density, momP.Density, true},
			{"velocity", meanV, momP.MeanV, false},
			{"dispersion", momV.Sigma, momP.Sigma, false},
		}
		fmt.Printf("\nFig 6 summary (cell-to-cell RMS fluctuation, Vlasov vs N-body):\n")
		for _, fset := range fields {
			mv, w, h, err := analysis.Project(fset.vlasov, n3, 2)
			if err != nil {
				log.Fatal(err)
			}
			writePGMFile(outDir, "fig6_"+fset.name+"_vlasov.pgm", mv, w, h, fset.logPGM)
			mp, _, _, err := analysis.Project(fset.nbody, n3, 2)
			if err != nil {
				log.Fatal(err)
			}
			writePGMFile(outDir, "fig6_"+fset.name+"_nbody.pgm", mp, w, h, fset.logPGM)
			nc := analysis.CompareNoise(fset.vlasov, fset.nbody)
			fmt.Printf("  %-11s Vlasov %.4f  N-body %.4f  (noise ratio %.1f×)\n",
				fset.name, nc.VlasovRMS, nc.ParticleRMS, nc.ParticleRMS/math.Max(nc.VlasovRMS, 1e-12))
		}
	}
}

// runFig8 produces nested-zoom projections from the largest feasible run.
func runFig8(base hybrid.Config, aEnd float64, outDir string) {
	cfg := base
	cfg.Box = 400 // the paper's U1024 covers 1200 h⁻¹Mpc; scale accordingly
	sim := evolve(cfg, aEnd, "fig8")
	m := sim.Grid.ComputeMoments()
	n3 := [3]int{sim.Grid.NX, sim.Grid.NY, sim.Grid.NZ}
	mesh := make([]float64, sim.PM.Size())
	if err := sim.Part.CICDeposit(mesh, sim.PM.N); err != nil {
		log.Fatal(err)
	}
	// Full box and a 2× zoom of the central region, CDM and ν.
	full, w, h, err := analysis.Project(mesh, sim.PM.N, 2)
	if err != nil {
		log.Fatal(err)
	}
	writePGMFile(outDir, "fig8_cdm_full.pgm", full, w, h, true)
	nuMap, wn, hn, err := analysis.Project(m.Density, n3, 2)
	if err != nil {
		log.Fatal(err)
	}
	writePGMFile(outDir, "fig8_nu_full.pgm", nuMap, wn, hn, true)
	zoom := centreCrop(full, w, h, 2)
	writePGMFile(outDir, "fig8_cdm_zoom.pgm", zoom, w/2, h/2, true)
	zoomNu := centreCrop(nuMap, wn, hn, 2)
	writePGMFile(outDir, "fig8_nu_zoom.pgm", zoomNu, wn/2, hn/2, true)
	fmt.Printf("\nFig 8 summary: %.0f h⁻¹Mpc box at z=%.2f, full + 2× zoom maps written\n",
		cfg.Box, 1/aEnd-1)
}

func centreCrop(m []float64, w, h, factor int) []float64 {
	cw, ch := w/factor, h/factor
	x0, y0 := (w-cw)/2, (h-ch)/2
	out := make([]float64, cw*ch)
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			out[y*cw+x] = m[(y0+y)*w+x0+x]
		}
	}
	return out
}
