// The per-job diagnostics ring: the replay buffer behind the SSE surface.
// Every event a job emits — scheduler status transitions, per-step
// diagnostics, the terminal document — is stamped with a monotonic
// sequence number and retained in a bounded ring, so a subscriber is a
// *cursor over the ring*, not a queue the publisher pushes into. That
// single inversion fixes the old surface's two losses at once: a slow
// client can no longer silently miss events (its cursor just falls
// behind, and catches up from the ring), and a disconnected client
// resumes exactly where it left off by sending the last id it saw
// (Last-Event-ID). The only loss left is ring eviction, and that loss is
// *visible*: since() reports how many events fell off the tail, and the
// handler turns the count into an explicit "gap" event.
package serve

import "encoding/json"

// ringEvent is one retained event: its sequence number (the SSE id), the
// event type, and the pre-marshalled JSON payload. Data is immutable once
// appended, so handlers may write it after dropping the server lock.
type ringEvent struct {
	seq  int64
	typ  string
	data []byte
}

// eventRing is a bounded ring of a job's events with monotonic sequence
// numbers starting at 1. Not internally synchronised — the serve layer
// guards every ring with the server mutex.
type eventRing struct {
	buf   []ringEvent
	start int   // index of the oldest retained event
	count int   // retained events
	next  int64 // next sequence number to assign
}

// newEventRing returns a ring retaining up to capacity events (minimum 1:
// the terminal event must always be retainable).
func newEventRing(capacity int) *eventRing {
	return newEventRingFrom(capacity, 1)
}

// newEventRingFrom returns a ring whose first event will carry sequence
// number next — how a restarted daemon continues a job's numbering after
// the journaled reservation instead of resetting to 1. Everything before
// next is treated as evicted: a resuming client with an older cursor gets
// a gap, not a reset.
func newEventRingFrom(capacity int, next int64) *eventRing {
	if capacity < 1 {
		capacity = 1
	}
	if next < 1 {
		next = 1
	}
	return &eventRing{buf: make([]ringEvent, capacity), next: next}
}

// append stamps the event with the next sequence number and retains it,
// evicting the oldest event when full. It returns the assigned sequence.
func (r *eventRing) append(typ string, data []byte) int64 {
	seq := r.next
	r.next++
	i := (r.start + r.count) % len(r.buf)
	r.buf[i] = ringEvent{seq: seq, typ: typ, data: data}
	if r.count < len(r.buf) {
		r.count++
	} else {
		r.start = (r.start + 1) % len(r.buf)
	}
	return seq
}

// head returns the newest assigned sequence number (0 before any append).
func (r *eventRing) head() int64 { return r.next - 1 }

// firstRetained returns the oldest retained sequence (0 when empty).
func (r *eventRing) firstRetained() int64 {
	if r.count == 0 {
		return 0
	}
	return r.buf[r.start].seq
}

// since returns every retained event with sequence > after, in order, plus
// the number of events that existed in (after, firstRetained) but have
// been evicted — the gap a resuming client must be told about instead of
// being shown a seamless-but-wrong sequence.
func (r *eventRing) since(after int64) (evs []ringEvent, missed int64) {
	if r.count == 0 {
		// An empty ring can still be *advanced*: a restart-continued ring
		// starts past 1, so a cursor behind r.next has missed everything in
		// between and must be told so.
		if after+1 < r.next {
			missed = r.next - 1 - after
		}
		return nil, missed
	}
	first := r.firstRetained()
	if after+1 < first {
		missed = first - after - 1
	}
	from := after + 1
	if from < first {
		from = first
	}
	if from > r.head() {
		return nil, missed
	}
	n := int(r.head() - from + 1)
	evs = make([]ringEvent, 0, n)
	// Sequences are dense: the event with seq q lives at offset q-first.
	off := int(from - first)
	for i := off; i < r.count; i++ {
		evs = append(evs, r.buf[(r.start+i)%len(r.buf)])
	}
	return evs, missed
}

// trimTo shrinks retention to the newest n events (the terminal tail a
// finished job keeps: full rings on thousands of retained terminal jobs
// would dominate the daemon's memory for history nobody replays).
func (r *eventRing) trimTo(n int) {
	if n < 1 {
		n = 1
	}
	for r.count > n {
		r.buf[r.start] = ringEvent{}
		r.start = (r.start + 1) % len(r.buf)
		r.count--
	}
}

// eventSchema is the version tag stamped into every SSE event payload.
// External consumers pin on it: a breaking change to any event's shape
// bumps the tag, an additive change does not. See README "Event stream
// contract".
const eventSchema = "v1"

// marshalEvent marshals an event payload, degrading a marshal failure to
// an "error"-typed event carrying the failure string: the stream must end
// (or continue) with a visible reason, never die silently mid-sequence.
// Map payloads (every event the daemon emits) are stamped with the schema
// version before marshalling.
func marshalEvent(typ string, body any) (string, []byte) {
	if m, ok := body.(map[string]any); ok {
		if _, exists := m["schema"]; !exists {
			m["schema"] = eventSchema
		}
	}
	data, err := json.Marshal(body)
	if err != nil {
		fallback, _ := json.Marshal(map[string]string{
			"schema": eventSchema,
			"error":  "encoding " + typ + " event: " + err.Error(),
		})
		return "error", fallback
	}
	return typ, data
}
