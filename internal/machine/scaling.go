package machine

import (
	"fmt"
	"io"
	"sort"
)

// Parts are the table rows of Tables 3–4 in paper order.
var Parts = []string{"total", "vlasov", "tree", "pm"}

// WeakScaling computes the weak-scaling efficiencies of a constant-per-node
// sequence: eff(run) = T(first)/T(run) per part (Table 3).
func (m *Model) WeakScaling(seq []Run) (map[string][]float64, error) {
	if len(seq) < 2 {
		return nil, fmt.Errorf("machine: weak sequence needs ≥ 2 runs")
	}
	out := map[string][]float64{}
	ref := m.Step(seq[0])
	for _, part := range Parts {
		tRef, err := ref.PartTime(part)
		if err != nil {
			return nil, err
		}
		effs := make([]float64, 0, len(seq)-1)
		for _, r := range seq[1:] {
			t, err := m.Step(r).PartTime(part)
			if err != nil {
				return nil, err
			}
			effs = append(effs, tRef/t)
		}
		out[part] = effs
	}
	return out, nil
}

// StrongScaling computes per-group strong-scaling efficiencies between the
// smallest and largest runs of a group:
// eff = T(n₀)·n₀ / (T(n)·n) (Table 4).
func (m *Model) StrongScaling(group []Run) (map[string]float64, error) {
	if len(group) < 2 {
		return nil, fmt.Errorf("machine: strong group needs ≥ 2 runs")
	}
	sorted := append([]Run(nil), group...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Nodes < sorted[j].Nodes })
	first, last := sorted[0], sorted[len(sorted)-1]
	b0, b1 := m.Step(first), m.Step(last)
	out := map[string]float64{}
	for _, part := range Parts {
		t0, err := b0.PartTime(part)
		if err != nil {
			return nil, err
		}
		t1, err := b1.PartTime(part)
		if err != nil {
			return nil, err
		}
		out[part] = t0 * float64(first.Nodes) / (t1 * float64(last.Nodes))
	}
	return out, nil
}

// PaperTable3 holds the published weak-scaling efficiencies (%) for
// S2→M16, S2→L128, S2→H1024.
var PaperTable3 = map[string][3]float64{
	"total":  {96.0, 91.1, 82.3},
	"vlasov": {99.0, 99.2, 94.4},
	"tree":   {88.4, 76.8, 82.0},
	"pm":     {79.5, 48.7, 17.1},
}

// PaperTable4 holds the published strong-scaling efficiencies (%) per group.
var PaperTable4 = map[string]map[string]float64{
	"S": {"total": 87.7, "vlasov": 87.5, "tree": 90.9, "pm": 72.9},
	"M": {"total": 93.3, "vlasov": 93.9, "tree": 97.1, "pm": 60.6},
	"L": {"total": 91.1, "vlasov": 99.6, "tree": 85.7, "pm": 36.2},
	"H": {"total": 82.4, "vlasov": 93.0, "tree": 77.5, "pm": 34.1},
}

// WriteTable3 renders the modelled weak scaling next to the paper's values.
func (m *Model) WriteTable3(w io.Writer) error {
	effs, err := m.WeakScaling(WeakSequence())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 3: weak scaling efficiency (model vs paper), S2 baseline")
	fmt.Fprintf(w, "%-8s %22s %22s %22s\n", "part", "S2–M16", "S2–L128", "S2–H1024")
	for _, part := range Parts {
		e := effs[part]
		p := PaperTable3[part]
		fmt.Fprintf(w, "%-8s %9.1f%% (%5.1f%%) %9.1f%% (%5.1f%%) %9.1f%% (%5.1f%%)\n",
			part, 100*e[0], p[0], 100*e[1], p[1], 100*e[2], p[2])
	}
	return nil
}

// WriteTable4 renders the modelled strong scaling next to the paper's
// values.
func (m *Model) WriteTable4(w io.Writer) error {
	fmt.Fprintln(w, "Table 4: strong scaling efficiency per run group (model vs paper)")
	fmt.Fprintf(w, "%-8s", "part")
	groups := []string{"S", "M", "L", "H"}
	for _, g := range groups {
		fmt.Fprintf(w, " %16s", g)
	}
	fmt.Fprintln(w)
	eff := map[string]map[string]float64{}
	for _, g := range groups {
		e, err := m.StrongScaling(Group(g))
		if err != nil {
			return err
		}
		eff[g] = e
	}
	for _, part := range Parts {
		fmt.Fprintf(w, "%-8s", part)
		for _, g := range groups {
			fmt.Fprintf(w, " %6.1f%% (%5.1f%%)", 100*eff[g][part], PaperTable4[g][part])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig7Row is one point of the Fig. 7 series.
type Fig7Row struct {
	Run Run
	B   Breakdown
}

// Fig7Series returns the per-run breakdowns for every Table 2 run (the data
// behind both panels of Fig. 7).
func (m *Model) Fig7Series() []Fig7Row {
	rows := make([]Fig7Row, 0, len(Table2))
	for _, r := range Table2 {
		rows = append(rows, Fig7Row{Run: r, B: m.Step(r)})
	}
	return rows
}

// WriteFig7 renders the wall-time-per-step decomposition against node count.
func (m *Model) WriteFig7(w io.Writer) {
	fmt.Fprintln(w, "Fig 7: modelled wall time per step [s] vs nodes")
	fmt.Fprintf(w, "%-8s %8s %9s %9s %9s %9s %9s %9s %9s\n",
		"run", "nodes", "total", "vlasov", "tree", "pm", "commV", "commN", "s/step")
	for _, row := range m.Fig7Series() {
		b := row.B
		fmt.Fprintf(w, "%-8s %8d %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
			row.Run.ID, row.Run.Nodes, b.Total, b.Vlasov, b.Tree, b.PM,
			b.CommVlasov, b.CommNbody, b.Total)
	}
}
