// Example client: the remote half of simulation-as-a-service. It talks to
// a running vlasovd daemon over plain HTTP — no import of the simulation
// code at all, which is the point: the scenario catalog and the JSON job
// language make every workload submittable from anywhere.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/vlasovd -addr :8080 &
//	go run ./examples/client -addr http://localhost:8080
//
// The client submits a scheme × resolution grid of Landau-damping jobs
// (the same campaign cmd/sweep runs in-process), tails the live SSE
// diagnostics of one of them, polls until the whole grid is terminal, and
// prints the final table plus the daemon's metrics.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"
)

type submitResp struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

type jobStatus struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	Status  string `json:"status"`
	Attempt int    `json:"attempt"`
	Error   string `json:"error"`
	Report  *struct {
		Steps       int     `json:"steps"`
		Clock       float64 `json:"clock"`
		WallSeconds float64 `json:"wall_seconds"`
		Reason      string  `json:"reason"`
		Checkpoints int     `json:"checkpoints"`
	} `json:"report"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("client: ")
	var (
		addr    = flag.String("addr", "http://localhost:8080", "vlasovd base URL")
		schemes = flag.String("schemes", "slmpp5,mp5", "advection schemes to submit")
		res     = flag.String("res", "16x32,32x64", "NXxNV resolutions to submit")
		until   = flag.Float64("until", 10, "integration time ω_p·t")
	)
	flag.Parse()
	base := strings.TrimRight(*addr, "/")

	// Submit the grid: one JSON spec per scheme × resolution cell.
	var ids []int
	for _, sc := range strings.Split(*schemes, ",") {
		for _, rs := range strings.Split(*res, ",") {
			var nx, nv int
			if _, err := fmt.Sscanf(strings.TrimSpace(rs), "%dx%d", &nx, &nv); err != nil {
				log.Fatalf("resolution %q: %v", rs, err)
			}
			spec := map[string]any{
				"scenario": "landau",
				"params":   map[string]any{"scheme": strings.TrimSpace(sc), "nx": nx, "nv": nv},
				"until":    *until,
				// Small grids first, exactly like cmd/sweep.
				"priority": -nx * nv,
			}
			body, _ := json.Marshal(spec)
			resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
			if err != nil {
				log.Fatalf("submit: %v", err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				log.Fatalf("submit %s@%s: %d %s", sc, rs, resp.StatusCode, raw)
			}
			var sub submitResp
			if err := json.Unmarshal(raw, &sub); err != nil {
				log.Fatalf("submit response: %v", err)
			}
			log.Printf("submitted #%d %s", sub.ID, sub.Name)
			ids = append(ids, sub.ID)
		}
	}

	// Tail the first job's live diagnostics over SSE while the grid runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		tailDiagnostics(base, ids[0])
	}()

	// Poll the grid to completion.
	final := make(map[int]jobStatus, len(ids))
	for len(final) < len(ids) {
		for _, id := range ids {
			if _, ok := final[id]; ok {
				continue
			}
			st, err := getStatus(base, id)
			if err != nil {
				log.Fatalf("poll #%d: %v", id, err)
			}
			switch st.Status {
			case "done", "failed", "cancelled":
				final[id] = st
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	<-done

	fmt.Printf("\n%-28s %-10s %8s %10s %8s\n", "job", "status", "steps", "clock", "wall s")
	for _, id := range ids {
		st := final[id]
		if st.Report == nil {
			fmt.Printf("%-28s %-10s %8s %10s %8s  %s\n", st.Name, st.Status, "—", "—", "—", st.Error)
			continue
		}
		fmt.Printf("%-28s %-10s %8d %10.3f %8.2f\n",
			st.Name, st.Status, st.Report.Steps, st.Report.Clock, st.Report.WallSeconds)
	}

	// The daemon's counters after the campaign.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\ndaemon metrics:\n%s", metrics)
}

// getStatus fetches one job's status document.
func getStatus(base string, id int) (jobStatus, error) {
	var st jobStatus
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", base, id))
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return st, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// tailDiagnostics streams one job's SSE diagnostics to the log until the
// terminal "done" event, printing every ~20th step.
func tailDiagnostics(base string, id int) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/diagnostics", base, id))
	if err != nil {
		log.Printf("diagnostics #%d: %v", id, err)
		return
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	var event string
	lastPrinted := -20
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		data := strings.TrimPrefix(line, "data: ")
		switch event {
		case "diag":
			var d struct {
				Step        int     `json:"step"`
				Clock       float64 `json:"clock"`
				FieldEnergy float64 `json:"field_energy"`
			}
			if json.Unmarshal([]byte(data), &d) == nil && d.Step >= lastPrinted+20 {
				log.Printf("#%d step %5d  t = %7.3f  E² = %.3e", id, d.Step, d.Clock, d.FieldEnergy)
				lastPrinted = d.Step
			}
		case "status":
			log.Printf("#%d %s", id, data)
		case "done":
			log.Printf("#%d terminal: %s", id, data)
			return
		}
	}
}
