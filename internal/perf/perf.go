// Package perf defines the named benchmark suite behind the repo's recorded
// performance trajectory (BENCH_*.json): one stable spec per hot path —
// kernel sweeps per mode, phase-grid moments, plasma drift/kick/step, the 6D
// Vlasov step, the PM FFT, the tree walk and the snapshot encoder — with the
// workload shapes frozen so numbers stay comparable across PRs.
//
// The suite runs three ways from one definition: `go test -bench Suite` in
// this package, the cmd/bench harness (which emits the committed JSON
// report), and the steady-state allocation gate (TestSteadySpecsZeroAlloc
// here, `cmd/bench -check-allocs` in CI). Specs marked Steady carry the
// zero-allocation contract: after one warm-up op, repeating the op must not
// allocate — the arena/buffer-reuse guarantee the step loops advertise.
//
// Steady specs pin one worker: the contract is about per-op buffer reuse,
// not goroutine fan-out (the parallel dispatch paths allocate their range
// closures by design), and single-worker runs keep the trajectory
// comparable across machines with different core counts.
package perf

import (
	"fmt"
	"io"
	"math"
	"testing"

	"vlasov6d/internal/fft"
	"vlasov6d/internal/kernel"
	"vlasov6d/internal/nbody"
	"vlasov6d/internal/phase"
	"vlasov6d/internal/plasma"
	"vlasov6d/internal/snapio"
	"vlasov6d/internal/tree"
	"vlasov6d/internal/vlasov"
)

// Spec is one named benchmark: New builds the workload and returns the
// per-op function (plus the bytes one op processes, for MB/s), and the
// remaining fields describe how to run and judge it.
type Spec struct {
	// Name is the stable trajectory identifier, e.g. "kernel/sweep/uz/lat".
	Name string
	// Legacy is the matching `go test -bench` name in the repository root
	// (empty for benches introduced with the harness), recorded so reports
	// stay traceable to the historical baseline numbers.
	Legacy string
	// Steady marks the zero-allocation contract: after a warm-up op,
	// repeating the op must report 0 allocs/op.
	Steady bool
	// Flops is the floating-point work of one op (0 = no Gflops metric).
	Flops float64
	// New builds the workload and returns (op, bytesPerOp).
	New func() (func() error, int64, error)
}

// Bench runs the spec under the standard testing harness: build, one
// warm-up op (fills reusable scratch so Steady specs measure their
// steady state), then the timed loop.
func (s Spec) Bench(b *testing.B) {
	op, bytes, err := s.New()
	if err != nil {
		b.Fatal(err)
	}
	if err := op(); err != nil {
		b.Fatal(err)
	}
	if bytes > 0 {
		b.SetBytes(bytes)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(); err != nil {
			b.Fatal(err)
		}
	}
	if s.Flops > 0 {
		b.ReportMetric(s.Flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflops")
	}
}

// SteadyAllocs measures the steady-state allocations per op: the workload is
// built, warmed with two ops, and then sampled with testing.AllocsPerRun.
// Zero is the passing value for Steady specs.
func (s Spec) SteadyAllocs() (float64, error) {
	op, _, err := s.New()
	if err != nil {
		return 0, err
	}
	for i := 0; i < 2; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	var opErr error
	allocs := testing.AllocsPerRun(10, func() {
		if err := op(); err != nil && opErr == nil {
			opErr = err
		}
	})
	return allocs, opErr
}

// sweepCells is the kernel bench brick volume (the shape the historical
// Table 1 benches used: a 6³ spatial block of 24³ velocity cubes).
var sweepDims = []int{6, 6, 6, 24, 24, 24}

func sweepSpec(name, legacy string, axis int, mode kernel.Mode) Spec {
	return Spec{
		Name:   name,
		Legacy: legacy,
		Steady: true,
		Flops: func() float64 {
			cells := 1
			for _, d := range sweepDims {
				cells *= d
			}
			return float64(kernel.FlopsPerCell * cells)
		}(),
		New: func() (func() error, int64, error) {
			b, err := kernel.NewBrick(sweepDims...)
			if err != nil {
				return nil, 0, err
			}
			for i := range b.Data {
				b.Data[i] = float32(1 + 0.3*math.Sin(float64(i)*0.003))
			}
			op := func() error { return b.Sweep(axis, mode, 0.3) }
			return op, int64(4 * len(b.Data)), nil
		},
	}
}

// benchGrid builds the 8³×8³ phase grid of the historical moment and 6D
// step benches, pinned to one worker.
func benchGrid() (*phase.Grid, error) {
	g, err := phase.New(8, 8, 8, [3]int{8, 8, 8}, [3]float64{100, 100, 100}, 3000)
	if err != nil {
		return nil, err
	}
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		return math.Exp(-(ux*ux + uy*uy + uz*uz) / (2 * 800 * 800))
	})
	g.SetWorkers(1)
	return g, nil
}

func benchPlasma() (*plasma.Solver, error) {
	s, err := plasma.New(64, 256, 4*math.Pi, 8)
	if err != nil {
		return nil, err
	}
	s.LandauInit(0.01, 0.5, 1)
	s.SetWorkers(1)
	return s, nil
}

// Suite returns the trajectory benchmark set. Workload shapes are frozen —
// changing one breaks comparability with every committed BENCH_*.json and
// needs a new spec name instead.
func Suite() []Spec {
	specs := []Spec{
		sweepSpec("kernel/sweep/ux/strided", "BenchmarkTable1_ux_woSIMD", 3, kernel.Strided),
		sweepSpec("kernel/sweep/ux/contig", "BenchmarkTable1_ux_wSIMD", 3, kernel.Contig),
		sweepSpec("kernel/sweep/uy/contig", "BenchmarkTable1_uy_wSIMD", 4, kernel.Contig),
		sweepSpec("kernel/sweep/uz/gather", "BenchmarkTable1_uz_gather", 5, kernel.Contig),
		sweepSpec("kernel/sweep/uz/lat", "BenchmarkTable1_uz_LAT", 5, kernel.LAT),
		sweepSpec("kernel/sweep/x/contig", "BenchmarkTable1_x_wSIMD", 0, kernel.Contig),

		{
			Name:   "phase/moments",
			Legacy: "BenchmarkMoments",
			Steady: true,
			New: func() (func() error, int64, error) {
				g, err := benchGrid()
				if err != nil {
					return nil, 0, err
				}
				var m *phase.Moments
				op := func() error {
					m = g.ComputeMomentsInto(m)
					return nil
				}
				return op, int64(4 * len(g.Data)), nil
			},
		},

		{
			Name:   "plasma/step",
			Legacy: "BenchmarkPlasmaStep",
			Steady: true,
			New: func() (func() error, int64, error) {
				s, err := benchPlasma()
				if err != nil {
					return nil, 0, err
				}
				return func() error { return s.Step(0.05) }, int64(8 * len(s.F)), nil
			},
		},
		{
			Name:   "plasma/drift",
			Steady: true,
			New: func() (func() error, int64, error) {
				s, err := benchPlasma()
				if err != nil {
					return nil, 0, err
				}
				return func() error { return s.DriftStep(0.05) }, int64(8 * len(s.F)), nil
			},
		},
		{
			Name:   "plasma/kick",
			Steady: true,
			New: func() (func() error, int64, error) {
				s, err := benchPlasma()
				if err != nil {
					return nil, 0, err
				}
				return func() error { return s.KickStep(0.05) }, int64(8 * len(s.F)), nil
			},
		},

		{
			Name:   "vlasov/step6d",
			Legacy: "BenchmarkVlasovStep6D",
			Steady: true,
			New: func() (func() error, int64, error) {
				g, err := benchGrid()
				if err != nil {
					return nil, 0, err
				}
				s, err := vlasov.New(g, "slmpp5")
				if err != nil {
					return nil, 0, err
				}
				s.SetWorkers(1)
				var acc [3][]float64
				for d := 0; d < 3; d++ {
					acc[d] = make([]float64, g.NCells())
					for c := range acc[d] {
						acc[d][c] = 30
					}
				}
				op := func() error { return s.Step(0.001, 1.0, acc) }
				return op, int64(4 * len(g.Data)), nil
			},
		},

		{
			Name:   "pm/fft3",
			Legacy: "BenchmarkFFT3",
			New: func() (func() error, int64, error) {
				const n = 64
				f3, err := fft.NewFFT3(n, n, n)
				if err != nil {
					return nil, 0, err
				}
				f3.SetWorkers(1)
				data := make([]complex128, n*n*n)
				for i := range data {
					data[i] = complex(float64(i%17), 0)
				}
				op := func() error { return f3.Forward(data) }
				return op, int64(16 * len(data)), nil
			},
		},

		{
			Name:   "tree/walk",
			Legacy: "BenchmarkPhantomGRAPEBatched",
			New: func() (func() error, int64, error) {
				const n = 3000
				p, err := nbody.NewParticles(n, 1, [3]float64{100, 100, 100})
				if err != nil {
					return nil, 0, err
				}
				for i := 0; i < n; i++ {
					p.Pos[0][i] = math.Mod(float64(i)*17.77, 100)
					p.Pos[1][i] = math.Mod(float64(i)*5.33, 100)
					p.Pos[2][i] = math.Mod(float64(i)*29.1, 100)
				}
				tr, err := tree.Build(p, tree.Options{Theta: 0.5, RSplit: 5, Soft: 0.1})
				if err != nil {
					return nil, 0, err
				}
				op := func() error {
					tr.Accel([3]float64{50, 50, 50})
					return nil
				}
				return op, 0, nil
			},
		},

		{
			Name: "snapio/encode",
			New: func() (func() error, int64, error) {
				const n = 4096
				p, err := nbody.NewParticles(n, 1, [3]float64{100, 100, 100})
				if err != nil {
					return nil, 0, err
				}
				for i := 0; i < n; i++ {
					p.Pos[0][i] = math.Mod(float64(i)*17.77, 100)
					p.Pos[1][i] = math.Mod(float64(i)*5.33, 100)
					p.Pos[2][i] = math.Mod(float64(i)*29.1, 100)
					p.Vel[0][i] = float64(i % 13)
				}
				g, err := phase.New(4, 4, 4, [3]int{6, 6, 6}, [3]float64{100, 100, 100}, 3000)
				if err != nil {
					return nil, 0, err
				}
				g.Fill(func(x, y, z, ux, uy, uz float64) float64 { return 1 })
				snap := &snapio.Snapshot{A: 1, Time: 0.5, Part: p, Grid: g}
				size, err := snapio.Write(io.Discard, snap)
				if err != nil {
					return nil, 0, err
				}
				op := func() error {
					_, err := snapio.Write(io.Discard, snap)
					return err
				}
				return op, size, nil
			},
		},
	}
	return specs
}

// Find returns the spec with the given name.
func Find(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("perf: unknown spec %q", name)
}
