package treepm

import (
	"math"
	"math/rand"
	"testing"

	"vlasov6d/internal/nbody"
	"vlasov6d/internal/units"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Mesh: [3]int{0, 8, 8}, Box: [3]float64{1, 1, 1}}); err == nil {
		t.Fatal("bad mesh accepted")
	}
	if _, err := New(Config{Mesh: [3]int{8, 8, 8}, Box: [3]float64{0, 1, 1}}); err == nil {
		t.Fatal("bad box accepted")
	}
	if _, err := New(Config{Mesh: [3]int{8, 8, 8}, Box: [3]float64{1, 1, 1}, RSplitCells: -1}); err == nil {
		t.Fatal("negative split accepted")
	}
	s, err := New(Config{Mesh: [3]int{8, 8, 8}, Box: [3]float64{80, 80, 80}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.RSplit()-1.25*10) > 1e-12 {
		t.Fatalf("RSplit = %v, want 12.5", s.RSplit())
	}
}

// isolatedPairAccel computes the TreePM acceleration of particle 0 in a
// two-particle configuration.
func isolatedPairAccel(t *testing.T, sep float64, pmOnly bool) (ax, want float64) {
	t.Helper()
	box := 256.0
	p, err := nbody.NewParticles(2, 5.0, [3]float64{box, box, box})
	if err != nil {
		t.Fatal(err)
	}
	p.Pos[0][0], p.Pos[1][0], p.Pos[2][0] = 128-sep/2, 128, 128
	p.Pos[0][1], p.Pos[1][1], p.Pos[2][1] = 128+sep/2, 128, 128
	s, err := New(Config{
		Mesh:   [3]int{64, 64, 64},
		Box:    [3]float64{box, box, box},
		PMOnly: pmOnly,
		Soft:   1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var acc [3][]float64
	for d := 0; d < 3; d++ {
		acc[d] = make([]float64, 2)
	}
	// a = 1: pmCoeff = 4πG, shortScale = 1.
	if err := s.Accel(p, nil, 4*math.Pi*units.G, 1.0, acc); err != nil {
		t.Fatal(err)
	}
	return acc[0][0], units.G * p.Mass / (sep * sep)
}

func TestTotalForceMatchesNewton(t *testing.T) {
	// PM+tree must reproduce Newton across the split scale (r_s = 5 here):
	// below, at, and above it. Periodic images at sep ≪ box are negligible.
	for _, sep := range []float64{2, 5, 12, 25} {
		ax, want := isolatedPairAccel(t, sep, false)
		if ax <= 0 {
			t.Fatalf("sep %v: attraction expected, got %v", sep, ax)
		}
		if math.Abs(ax-want)/want > 0.06 {
			t.Fatalf("sep %v: TreePM force %v, Newton %v (err %.1f%%)",
				sep, ax, want, 100*math.Abs(ax-want)/want)
		}
	}
}

func TestPMOnlyMissesShortRange(t *testing.T) {
	// The control experiment for the split: pure PM underestimates the
	// force well below the mesh scale but matches far above it.
	axClose, wantClose := isolatedPairAccel(t, 2, true)
	if axClose > 0.7*wantClose {
		t.Fatalf("pure PM should lose short-range force: %v vs %v", axClose, wantClose)
	}
	axFar, wantFar := isolatedPairAccel(t, 25, true)
	if math.Abs(axFar-wantFar)/wantFar > 0.06 {
		t.Fatalf("pure PM should be exact at long range: %v vs %v", axFar, wantFar)
	}
}

func TestMomentumConservation(t *testing.T) {
	// Σ m·a must vanish: CIC deposit/interp are adjoint and the tree is
	// antisymmetric.
	box := 100.0
	p, _ := nbody.NewParticles(64, 2.0, [3]float64{box, box, box})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < p.N; i++ {
		for d := 0; d < 3; d++ {
			p.Pos[d][i] = rng.Float64() * box
		}
	}
	s, err := New(Config{Mesh: [3]int{16, 16, 16}, Box: [3]float64{box, box, box}})
	if err != nil {
		t.Fatal(err)
	}
	var acc [3][]float64
	for d := 0; d < 3; d++ {
		acc[d] = make([]float64, p.N)
	}
	if err := s.Accel(p, nil, 4*math.Pi*units.G, 1.0, acc); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		sum, norm := 0.0, 0.0
		for i := 0; i < p.N; i++ {
			sum += acc[d][i]
			norm += math.Abs(acc[d][i])
		}
		if norm == 0 {
			continue
		}
		if math.Abs(sum)/norm > 1e-6 {
			t.Fatalf("dim %d: net force fraction %v", d, math.Abs(sum)/norm)
		}
	}
}

func TestExtraRhoCouplesIn(t *testing.T) {
	// A single particle feels no self-force; adding an external density
	// blob (the "neutrino" component) must pull it.
	box := 64.0
	p, _ := nbody.NewParticles(1, 1.0, [3]float64{box, box, box})
	p.Pos[0][0], p.Pos[1][0], p.Pos[2][0] = 16, 32, 32
	s, err := New(Config{Mesh: [3]int{32, 32, 32}, Box: [3]float64{box, box, box}})
	if err != nil {
		t.Fatal(err)
	}
	extra := make([]float64, 32*32*32)
	// Overdense blob at mesh cell (16,16,16) → position (33,33,33):
	// Δx = +17 < L/2, so the minimum-image pull is in +x.
	extra[(16*32+16)*32+16] = 50
	var acc [3][]float64
	for d := 0; d < 3; d++ {
		acc[d] = make([]float64, 1)
	}
	if err := s.Accel(p, extra, 4*math.Pi*units.G, 1.0, acc); err != nil {
		t.Fatal(err)
	}
	if acc[0][0] <= 0 {
		t.Fatalf("particle not pulled toward the external blob: %v", acc[0][0])
	}
	bad := make([]float64, 7)
	if err := s.Accel(p, bad, 1, 1, acc); err == nil {
		t.Fatal("bad extraRho length accepted")
	}
}

func TestScalarKernelAgrees(t *testing.T) {
	box := 100.0
	mk := func(scalar bool) [3][]float64 {
		p, _ := nbody.NewParticles(32, 2.0, [3]float64{box, box, box})
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < p.N; i++ {
			for d := 0; d < 3; d++ {
				p.Pos[d][i] = rng.Float64() * box
			}
		}
		s, err := New(Config{
			Mesh: [3]int{16, 16, 16}, Box: [3]float64{box, box, box},
			ScalarKernel: scalar,
		})
		if err != nil {
			t.Fatal(err)
		}
		var acc [3][]float64
		for d := 0; d < 3; d++ {
			acc[d] = make([]float64, p.N)
		}
		if err := s.Accel(p, nil, 4*math.Pi*units.G, 1.0, acc); err != nil {
			t.Fatal(err)
		}
		return acc
	}
	a := mk(true)
	b := mk(false)
	for d := 0; d < 3; d++ {
		for i := range a[d] {
			norm := math.Abs(a[d][i]) + 1e-9
			if math.Abs(a[d][i]-b[d][i])/norm > 1e-2 {
				t.Fatalf("kernels disagree at %d dim %d: %v vs %v", i, d, a[d][i], b[d][i])
			}
		}
	}
}
