// Package tree implements the short-range half of the TreePM gravity solver
// (§5.1.2): a Barnes–Hut octree whose pairwise interactions use the standard
// Gaussian force splitting, so that tree + PM sum to the full Newtonian
// force,
//
//	F_short(r) = G m m' r̂/r² · g(r/r_s),
//	g(x) = erfc(x/2) + (x/√π)·exp(−x²/4),
//
// with the complementary long-range filter exp(−k²·r_s²) applied in the PM
// Green's function. Interactions are cut off at r_cut = 4.5·r_s where g has
// decayed below 10⁻⁴.
//
// The inner force loop follows the Phantom-GRAPE design the paper ported to
// SVE: the tree walk produces a flat interaction list, and a branch-free
// batched kernel with a tabulated g(x) profile evaluates it; the scalar
// erfc-per-pair kernel is retained as the "w/o SIMD" baseline for the
// ablation benchmarks.
package tree

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"vlasov6d/internal/nbody"
	"vlasov6d/internal/units"
)

// CutoffFactor is r_cut/r_s, beyond which the short-range force is dropped.
const CutoffFactor = 4.5

// Options configures the tree build and force evaluation.
type Options struct {
	// Theta is the Barnes–Hut opening angle; 0 forces exact pair summation.
	Theta float64
	// RSplit is the force-split scale r_s (h⁻¹Mpc); typically ~1.25 PM
	// cell widths.
	RSplit float64
	// Soft is the Plummer softening length (h⁻¹Mpc).
	Soft float64
	// LeafSize caps particles per leaf (default 8).
	LeafSize int
	// Scalar switches to the erfc-per-pair kernel (the w/o-SIMD baseline).
	Scalar bool
}

func (o *Options) setDefaults() error {
	if o.LeafSize <= 0 {
		o.LeafSize = 8
	}
	if o.RSplit <= 0 {
		return fmt.Errorf("tree: RSplit must be positive")
	}
	if o.Theta < 0 {
		return fmt.Errorf("tree: negative Theta")
	}
	if o.Soft < 0 {
		return fmt.Errorf("tree: negative softening")
	}
	return nil
}

// node is one octree cell.
type node struct {
	centre [3]float64 // geometric centre of the cell
	half   float64    // half-width
	com    [3]float64
	mass   float64
	// children indices into Tree.nodes (−1 when absent); leaf when count>=0.
	children [8]int32
	leaf     bool
	lo, hi   int32 // particle index range [lo,hi) for leaves
}

// Tree is the built octree plus the particle reference.
type Tree struct {
	opt   Options
	p     *nbody.Particles
	nodes []node
	// perm is the particle permutation applied during the build; px/py/pz
	// are the permuted coordinate arrays for cache-friendly leaf scans.
	perm       []int32
	px, py, pz []float64
	rcut       float64
	gtab       *gTable
	// workers pins the AccelAll parallelism (0 = GOMAXPROCS at call time,
	// the historical default). Set through SetWorkers so a scheduler-owned
	// core budget can see — and bound — the walk's goroutines.
	workers int
}

// SetWorkers pins the number of goroutines AccelAll parallelises the walk
// over (minimum 1). Without it the walk reads GOMAXPROCS at call time,
// which is invisible to any core budget. The worker count never changes
// the computed accelerations: particles are partitioned into disjoint
// ranges, each evaluated identically.
func (t *Tree) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	t.workers = n
}

// Build constructs an octree over the particles.
func Build(p *nbody.Particles, opt Options) (*Tree, error) {
	if err := opt.setDefaults(); err != nil {
		return nil, err
	}
	if p.Box[0] != p.Box[1] || p.Box[1] != p.Box[2] {
		return nil, fmt.Errorf("tree: cubic boxes only (got %v)", p.Box)
	}
	t := &Tree{
		opt:  opt,
		p:    p,
		rcut: CutoffFactor * opt.RSplit,
		gtab: sharedGTable(),
		perm: make([]int32, p.N),
		px:   make([]float64, p.N),
		py:   make([]float64, p.N),
		pz:   make([]float64, p.N),
	}
	if t.rcut > p.Box[0]/2 {
		return nil, fmt.Errorf("tree: cutoff %v exceeds half box %v", t.rcut, p.Box[0]/2)
	}
	for i := range t.perm {
		t.perm[i] = int32(i)
		t.px[i] = p.Pos[0][i]
		t.py[i] = p.Pos[1][i]
		t.pz[i] = p.Pos[2][i]
	}
	l := p.Box[0]
	root := node{centre: [3]float64{l / 2, l / 2, l / 2}, half: l / 2}
	t.nodes = append(t.nodes, root)
	t.build(0, 0, int32(p.N), 0)
	return t, nil
}

const maxDepth = 48

// build recursively partitions particle range [lo,hi) under node ni.
func (t *Tree) build(ni int32, lo, hi int32, depth int) {
	n := &t.nodes[ni]
	// Compute mass and centre of mass.
	var m, cx, cy, cz float64
	for i := lo; i < hi; i++ {
		cx += t.px[i]
		cy += t.py[i]
		cz += t.pz[i]
	}
	cnt := float64(hi - lo)
	m = cnt * t.p.Mass
	n.mass = m
	if cnt > 0 {
		n.com = [3]float64{cx / cnt, cy / cnt, cz / cnt}
	} else {
		n.com = n.centre
	}
	if hi-lo <= int32(t.opt.LeafSize) || depth >= maxDepth {
		n.leaf = true
		n.lo, n.hi = lo, hi
		for c := range n.children {
			n.children[c] = -1
		}
		return
	}
	// Partition the range into octants about the cell centre (in-place
	// three-level Hoare-style splits).
	var bounds [9]int32
	bounds[0], bounds[8] = lo, hi
	mid := t.partition(lo, hi, 0, n.centre[0])
	q1 := t.partition(lo, mid, 1, n.centre[1])
	q2 := t.partition(mid, hi, 1, n.centre[1])
	bounds[2], bounds[4], bounds[6] = q1, mid, q2
	bounds[1] = t.partition(lo, q1, 2, n.centre[2])
	bounds[3] = t.partition(q1, mid, 2, n.centre[2])
	bounds[5] = t.partition(mid, q2, 2, n.centre[2])
	bounds[7] = t.partition(q2, hi, 2, n.centre[2])
	half := n.half / 2
	centre := n.centre
	for oct := 0; oct < 8; oct++ {
		clo, chi := bounds[oct], bounds[oct+1]
		if clo >= chi {
			t.nodes[ni].children[oct] = -1
			continue
		}
		var cc [3]float64
		// Octant encoding: bit2 = x-high, bit1 = y-high, bit0 = z-high.
		if oct&4 != 0 {
			cc[0] = centre[0] + half
		} else {
			cc[0] = centre[0] - half
		}
		if oct&2 != 0 {
			cc[1] = centre[1] + half
		} else {
			cc[1] = centre[1] - half
		}
		if oct&1 != 0 {
			cc[2] = centre[2] + half
		} else {
			cc[2] = centre[2] - half
		}
		ci := int32(len(t.nodes))
		t.nodes = append(t.nodes, node{centre: cc, half: half})
		t.nodes[ni].children[oct] = ci
		t.build(ci, clo, chi, depth+1)
	}
	t.nodes[ni].leaf = false
}

// partition reorders [lo,hi) so that coords[dim] < pivot come first and
// returns the split point.
func (t *Tree) partition(lo, hi int32, dim int, pivot float64) int32 {
	coord := t.px
	if dim == 1 {
		coord = t.py
	} else if dim == 2 {
		coord = t.pz
	}
	i, j := lo, hi
	for i < j {
		for i < j && coord[i] < pivot {
			i++
		}
		for i < j && coord[j-1] >= pivot {
			j--
		}
		if i < j-1 {
			t.swap(i, j-1)
			i++
			j--
		}
	}
	return i
}

func (t *Tree) swap(a, b int32) {
	t.px[a], t.px[b] = t.px[b], t.px[a]
	t.py[a], t.py[b] = t.py[b], t.py[a]
	t.pz[a], t.pz[b] = t.pz[b], t.pz[a]
	t.perm[a], t.perm[b] = t.perm[b], t.perm[a]
}

// interaction is one entry of the Phantom-GRAPE interaction list.
type interaction struct {
	dx, dy, dz float64 // minimum-image displacement source − target
	mass       float64
}

// Accel returns the short-range acceleration (du/dt contribution before the
// 1/a gravity normalisation applied by the caller) on target position pos,
// excluding any particle closer than exclRadius... self-interaction is
// excluded by skipping zero-distance pairs.
func (t *Tree) Accel(pos [3]float64) [3]float64 {
	list := t.walk(pos, nil)
	if t.opt.Scalar {
		return kernelScalar(list, t.opt.Soft, t.opt.RSplit)
	}
	return kernelBatched(list, t.opt.Soft, t.opt.RSplit, t.gtab)
}

// walk gathers the interaction list for a target position.
func (t *Tree) walk(pos [3]float64, list []interaction) []interaction {
	l := t.p.Box[0]
	rc2 := t.rcut * t.rcut
	stack := make([]int32, 1, 512)
	stack[0] = 0
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[ni]
		if n.mass == 0 {
			continue
		}
		dx := minImage(n.com[0]-pos[0], l)
		dy := minImage(n.com[1]-pos[1], l)
		dz := minImage(n.com[2]-pos[2], l)
		r2 := dx*dx + dy*dy + dz*dz
		// Cull nodes entirely outside the cutoff sphere (conservatively via
		// the bounding-sphere radius √3·half).
		br := math.Sqrt(3) * n.half
		rmin := math.Sqrt(r2) - br
		if rmin > t.rcut {
			continue
		}
		if !n.leaf {
			// Monopole acceptance: s/r < θ and the node is fully inside the
			// cutoff-safe region.
			if t.opt.Theta > 0 && 2*n.half < t.opt.Theta*math.Sqrt(r2) {
				list = append(list, interaction{dx, dy, dz, n.mass})
				continue
			}
			for _, c := range n.children {
				if c >= 0 {
					stack = append(stack, c)
				}
			}
			continue
		}
		for i := n.lo; i < n.hi; i++ {
			ddx := minImage(t.px[i]-pos[0], l)
			ddy := minImage(t.py[i]-pos[1], l)
			ddz := minImage(t.pz[i]-pos[2], l)
			pr2 := ddx*ddx + ddy*ddy + ddz*ddz
			if pr2 == 0 || pr2 > rc2 {
				continue
			}
			list = append(list, interaction{ddx, ddy, ddz, t.p.Mass})
		}
	}
	return list
}

func minImage(dx, l float64) float64 {
	if dx > l/2 {
		return dx - l
	}
	if dx < -l/2 {
		return dx + l
	}
	return dx
}

// AccelAll computes short-range accelerations for every particle in
// parallel, writing into acc (three arrays of length N).
func (t *Tree) AccelAll(acc [3][]float64) error {
	for d := 0; d < 3; d++ {
		if len(acc[d]) != t.p.N {
			return fmt.Errorf("tree: acc[%d] length %d != %d", d, len(acc[d]), t.p.N)
		}
	}
	nw := t.workers
	if nw == 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	chunk := (t.p.N + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > t.p.N {
			hi = t.p.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var list []interaction
			for i := lo; i < hi; i++ {
				pos := [3]float64{t.p.Pos[0][i], t.p.Pos[1][i], t.p.Pos[2][i]}
				list = t.walk(pos, list[:0])
				var a [3]float64
				if t.opt.Scalar {
					a = kernelScalar(list, t.opt.Soft, t.opt.RSplit)
				} else {
					a = kernelBatched(list, t.opt.Soft, t.opt.RSplit, t.gtab)
				}
				acc[0][i] = a[0]
				acc[1][i] = a[1]
				acc[2][i] = a[2]
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// SplitG returns the short-range force-shape factor g(x); exported for the
// PM/tree consistency tests.
func SplitG(x float64) float64 {
	return math.Erfc(x/2) + x/math.Sqrt(math.Pi)*math.Exp(-x*x/4)
}

// kernelScalar is the per-pair baseline: one erfc and one exp per
// interaction (the paper's 2.4×10⁷ interactions/s analogue).
func kernelScalar(list []interaction, soft, rs float64) [3]float64 {
	var ax, ay, az float64
	e2 := soft * soft
	for _, it := range list {
		r2 := it.dx*it.dx + it.dy*it.dy + it.dz*it.dz + e2
		r := math.Sqrt(r2)
		g := SplitG(r / rs)
		f := units.G * it.mass / (r2 * r) * g
		ax += f * it.dx
		ay += f * it.dy
		az += f * it.dz
	}
	return [3]float64{ax, ay, az}
}

// gTable tabulates g(x)/x³·(…) — specifically the combined factor
// g(x)/x³ — on x ∈ (0, CutoffFactor], the Phantom-GRAPE profile table.
type gTable struct {
	dxInv float64
	vals  []float64
}

const gTableSize = 4096

var (
	gtabOnce sync.Once
	gtabVal  *gTable
)

func sharedGTable() *gTable {
	gtabOnce.Do(func() {
		gt := &gTable{vals: make([]float64, gTableSize+2)}
		dx := CutoffFactor / gTableSize
		gt.dxInv = 1 / dx
		for i := 1; i < len(gt.vals); i++ {
			x := float64(i) * dx
			gt.vals[i] = SplitG(x) / (x * x * x)
		}
		// x → 0: g → 1, so g/x³ diverges like 1/x³; the kernel handles the
		// first bin analytically. Store a sentinel equal to bin 1.
		gt.vals[0] = gt.vals[1]
		gtabVal = gt
	})
	return gtabVal
}

// gTableMinX bounds the tabulated region from below: g(x)/x³ ~ 1/x³ diverges
// as x → 0, where linear interpolation loses accuracy, so very close pairs
// (rare — they sit inside the softening anyway) fall back to the exact form.
const gTableMinX = 0.25

// lookup returns g(x)/x³ by linear interpolation, exact below gTableMinX.
func (g *gTable) lookup(x float64) float64 {
	if x < gTableMinX {
		return SplitG(x) / (x * x * x)
	}
	s := x * g.dxInv
	i := int(s)
	if i >= gTableSize {
		return 0
	}
	fr := s - float64(i)
	return g.vals[i]*(1-fr) + g.vals[i+1]*fr
}

// kernelBatched is the Phantom-GRAPE analogue: a branch-light loop over the
// interaction list using the tabulated profile. Acceleration factor:
// G·m·g(r/rs)/r³ = G·m/rs³ · [g(x)/x³] with x = r/rs.
func kernelBatched(list []interaction, soft, rs float64, gt *gTable) [3]float64 {
	var ax, ay, az float64
	e2 := soft * soft
	invRs := 1 / rs
	norm := units.G / (rs * rs * rs)
	for _, it := range list {
		r2 := it.dx*it.dx + it.dy*it.dy + it.dz*it.dz + e2
		x := math.Sqrt(r2) * invRs
		f := norm * it.mass * gt.lookup(x)
		ax += f * it.dx
		ay += f * it.dy
		az += f * it.dz
	}
	return [3]float64{ax, ay, az}
}

// DirectShortRange evaluates the exact short-range acceleration on particle
// i by direct summation over all particles (minimum image, cutoff applied) —
// the reference for tree accuracy tests.
func DirectShortRange(p *nbody.Particles, i int, soft, rs float64) [3]float64 {
	l := p.Box[0]
	rcut := CutoffFactor * rs
	var list []interaction
	for j := 0; j < p.N; j++ {
		if j == i {
			continue
		}
		dx := minImage(p.Pos[0][j]-p.Pos[0][i], l)
		dy := minImage(p.Pos[1][j]-p.Pos[1][i], l)
		dz := minImage(p.Pos[2][j]-p.Pos[2][i], l)
		if dx*dx+dy*dy+dz*dz > rcut*rcut {
			continue
		}
		list = append(list, interaction{dx, dy, dz, p.Mass})
	}
	return kernelScalar(list, soft, rs)
}
