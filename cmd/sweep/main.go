// Command sweep runs a parameter-sweep campaign — the batch-scheduler
// counterpart of the single-run vlasov6d binary. The default sweep is a
// scheme × resolution grid of Landau-damping validation runs: every
// advection scheme at every phase-space resolution is driven through the
// streaming scheduler's shared worker pool, each job measures its own
// damping rate from the field-energy peaks (delivered through the async
// observer pipeline, off the job's step loop), and the final table compares
// every cell of the grid against the kinetic-theory rate from the plasma
// dispersion function.
//
// The grid feeds a Stream: small grids carry higher priority so the table
// fills coarse-to-fine, transient failures retry with backoff (-retries),
// and with -resume-dir every job checkpoints into its own directory and a
// re-invoked sweep resumes each job from its newest snapshot — kill a
// campaign with Ctrl-C and run the same command again to continue it
// instead of recomputing.
//
// Example:
//
//	sweep -schemes slmpp5,mp5,upwind1 -res 32x64,64x128 -workers 4 \
//	      -budget 8 -wall 2m -resume-dir /tmp/sweep-ckpts -retries 2
//
// With -budget the scheduler owns intra-step parallelism: the given core
// count is divided among the live jobs (floor one, remainder to the
// higher-priority cells) and rebalanced as the queue drains, so job-level
// and cell-level parallelism compose to the machine instead of
// oversubscribing it N-fold.
//
// Job status transitions stream as they happen (running → done/failed,
// with attempt counts and the queued depth), so a long sweep is observable
// while it runs; the pool shares one wall-clock budget, and Ctrl-C cancels
// running jobs and skips queued ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"vlasov6d"
	"vlasov6d/internal/analysis"
)

// cell is one point of the scheme × resolution grid plus the damping-rate
// fit its observer accumulates. Each cell's observer runs on its own job's
// async pipeline goroutine, so the fields need no locking.
type cell struct {
	scheme string
	nx, nv int
	fit    analysis.DecayFit
}

func (c *cell) name() string { return fmt.Sprintf("%s@%dx%d", c.scheme, c.nx, c.nv) }

// observe feeds the field energy to the damping-rate fit. It rides the
// async observer pipeline: the job's step loop only enqueues diagnostics
// snapshots.
func (c *cell) observe(step int, d vlasov6d.RunDiagnostics) error {
	c.fit.Add(d.Time, d.Extra["field_energy"])
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		schemes    = flag.String("schemes", "slmpp5,mp5,upwind1", "comma-separated x-drift advection schemes")
		res        = flag.String("res", "32x64,64x128", "comma-separated NXxNV phase-space resolutions")
		k          = flag.Float64("k", 0.5, "perturbation wavenumber (Debye-length units)")
		alpha      = flag.Float64("alpha", 0.01, "perturbation amplitude")
		until      = flag.Float64("until", 25, "integration time ω_p·t")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		budget     = flag.Int("budget", 0, "CPU core budget divided among live jobs, rebalanced as the queue drains; 0 disables (every job then runs GOMAXPROCS intra-step workers and an N-job pool oversubscribes the machine N-fold). -budget with the machine's core count is the paper's fixed-partition accounting.")
		wall       = flag.Duration("wall", 0, "shared wall-clock budget for the whole sweep (0 = unlimited)")
		resumeDir  = flag.String("resume-dir", "", "per-job checkpoint root; a re-invoked sweep resumes each job from its newest snapshot")
		retries    = flag.Int("retries", 0, "extra attempts per job after a transient (retryable) failure")
		ckptEvery  = flag.Int("ckpt-every", 25, "checkpoint cadence in steps (with -resume-dir)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at sweep end to this file")
	)
	flag.Parse()

	stopProfiles := startProfiles(*cpuprofile, *memprofile)

	var grid []*cell
	for _, sc := range strings.Split(*schemes, ",") {
		sc = strings.TrimSpace(sc)
		if sc == "" {
			continue
		}
		for _, rs := range strings.Split(*res, ",") {
			nx, nv, err := parseRes(rs)
			if err != nil {
				log.Fatal(err)
			}
			grid = append(grid, &cell{scheme: sc, nx: nx, nv: nv})
		}
	}
	if len(grid) == 0 {
		log.Fatal("empty sweep: no schemes or resolutions")
	}

	theory := vlasov6d.LandauDampingRate(*k, 1)
	fmt.Printf("Landau sweep: %d jobs (%s × %s), k·λ_D = %.2f, theory γ = %.4f\n",
		len(grid), *schemes, *res, *k, theory)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var stream *vlasov6d.Stream
	streamOpts := []vlasov6d.BatchOption{
		vlasov6d.WithBatchNotify(func(u vlasov6d.BatchUpdate) {
			depth := stream.Pending()
			switch u.Status {
			case vlasov6d.JobRunning:
				log.Printf("%-18s running   (attempt %d, %d queued)", u.Name, u.Attempt, depth)
			case vlasov6d.JobRetrying:
				log.Printf("%-18s retrying  (attempt %d failed: %v)", u.Name, u.Attempt, u.Err)
			case vlasov6d.JobDone:
				log.Printf("%-18s done in %6.2fs (%d steps, attempt %d, stop: %v, %d queued)",
					u.Name, u.Report.Wall.Seconds(), u.Report.Steps, u.Attempt, u.Report.Reason, depth)
			case vlasov6d.JobFailed:
				log.Printf("%-18s FAILED after %d attempt(s): %v", u.Name, u.Attempt, u.Err)
			case vlasov6d.JobCancelled:
				log.Printf("%-18s cancelled", u.Name)
			}
		}),
		vlasov6d.WithBatchRetries(*retries),
	}
	if *workers > 0 {
		streamOpts = append(streamOpts, vlasov6d.WithBatchWorkers(*workers))
	}
	if *budget > 0 {
		streamOpts = append(streamOpts, vlasov6d.WithBatchCoreBudget(*budget))
	}
	if *wall > 0 {
		streamOpts = append(streamOpts, vlasov6d.WithBatchWallClock(*wall))
	}
	if *resumeDir != "" {
		streamOpts = append(streamOpts,
			vlasov6d.WithJobCheckpoints(*resumeDir),
			vlasov6d.WithJobCheckpointEvery(*ckptEvery))
	}

	stream, err := vlasov6d.NewStream(ctx, streamOpts...)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	for _, c := range grid {
		c := c
		job := vlasov6d.BatchJob{
			Name:  c.name(),
			Until: *until,
			// Smaller grids first: the table fills coarse-to-fine, so a
			// budgeted (or killed) sweep still delivers the cheap cells.
			Priority: -c.nx * c.nv,
			New: func() (vlasov6d.Solver, error) {
				// A retried attempt restarts the time series; the fit must
				// not mix it with the failed attempt's samples (DecayFit
				// requires monotone t).
				c.fit = analysis.DecayFit{}
				s, err := vlasov6d.NewPlasmaSolverWithScheme(c.nx, c.nv, 2*math.Pi/(*k), 8, c.scheme)
				if err != nil {
					return nil, err
				}
				s.LandauInit(*alpha, *k, 1)
				return s, nil
			},
			Opts: []vlasov6d.RunOption{
				vlasov6d.WithAsyncObserver(c.observe, vlasov6d.WithAsyncBuffer(256)),
			},
		}
		if *resumeDir != "" {
			job.Restore = func(path string) (vlasov6d.Solver, error) {
				// The fit state lives in this process, not the snapshot: a
				// resumed job refits γ over the remaining time window only
				// (resumed near the target it reports "—", never a number
				// fitted on a broken series).
				c.fit = analysis.DecayFit{}
				f, err := os.Open(path)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				s, err := vlasov6d.RestorePlasmaSolver(f)
				if err != nil {
					return nil, err
				}
				if s.NX != c.nx || s.NV != c.nv || s.Scheme() != c.scheme {
					return nil, fmt.Errorf("snapshot %s is %s@%dx%d, job wants %s",
						path, s.Scheme(), s.NX, s.NV, c.name())
				}
				return s, nil
			}
		}
		if err := stream.Submit(job); err != nil {
			log.Fatal(err)
		}
	}
	stream.Close()

	byName := make(map[string]vlasov6d.BatchResult, len(grid))
	for r := range stream.Results() {
		byName[r.Name] = r
	}

	fmt.Printf("\n%-12s %9s %10s %10s %8s %8s  %s\n",
		"scheme", "NX×NV", "γ fit", "γ theory", "err %", "attempt", "status")
	for _, c := range grid {
		r := byName[c.name()]
		label := fmt.Sprintf("%d×%d", c.nx, c.nv)
		if r.Status != vlasov6d.JobDone || c.fit.Peaks() < 3 {
			fmt.Printf("%-12s %9s %10s %10.4f %8s %8d  %s\n",
				c.scheme, label, "—", theory, "—", r.Attempt, r.Status)
			continue
		}
		gamma := c.fit.Gamma()
		errPct := 100 * math.Abs(gamma-theory) / math.Abs(theory)
		fmt.Printf("%-12s %9s %10.4f %10.4f %8.1f %8d  %s\n",
			c.scheme, label, gamma, theory, errPct, r.Attempt, r.Status)
	}
	fmt.Printf("\nsweep finished in %.2fs wall\n", time.Since(start).Seconds())
	stopProfiles()
	if ctx.Err() != nil {
		os.Exit(1)
	}
}

// startProfiles starts a CPU profile (if requested) and returns a function
// that stops it and writes the heap profile. The returned function must run
// before os.Exit, which skips deferred calls.
func startProfiles(cpuPath, memPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// parseRes parses "NXxNV" (e.g. "64x128").
func parseRes(s string) (nx, nv int, err error) {
	parts := strings.Split(strings.TrimSpace(s), "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("resolution %q is not NXxNV", s)
	}
	if nx, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, fmt.Errorf("resolution %q: %w", s, err)
	}
	if nv, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, fmt.Errorf("resolution %q: %w", s, err)
	}
	return nx, nv, nil
}
