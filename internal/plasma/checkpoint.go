// Checkpoint I/O for the 1D1V solver, in the same spirit as snapio: a
// checksummed little-endian binary snapshot of the full phase-space state.
// With it the plasma validation problems gain the same kill-and-resume
// contract the 6D hybrid run has had since PR 1 — which is what lets a
// scheme × resolution sweep (cmd/sweep) survive a restart mid-campaign.
//
// Layout: magic "V6DP", scheme-name length + bytes, NX, NV as uint64,
// L, VMax, Time, CFL as float64 bits, the F array as float64 bits, and a
// trailing CRC-32 (IEEE) over everything before it.
package plasma

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ckptMagic identifies a plasma checkpoint ("V6DP").
const ckptMagic = 0x56364450

// snapState is the deep-copied state a checkpoint serialises; captured on
// the step path, written off it (see CaptureCheckpoint).
type snapState struct {
	nx, nv  int
	l, vmax float64
	time    float64
	cfl     float64
	scheme  string
	f       []float64
}

func (s *Solver) captureState() snapState {
	f := make([]float64, len(s.F))
	copy(f, s.F)
	return snapState{
		nx: s.NX, nv: s.NV, l: s.L, vmax: s.VMax,
		time: s.Time, cfl: s.CFL, scheme: s.scheme, f: f,
	}
}

// Checkpoint writes a restorable snapshot of the solver state, implementing
// runner.Checkpointer. It returns the number of bytes written.
func (s *Solver) Checkpoint(w io.Writer) (int64, error) {
	return writeState(w, s.captureState())
}

// CaptureCheckpoint deep-copies the state and returns a write closure over
// the copy, implementing runner.CheckpointCapturer: the async observer
// pipeline calls the closure while the solver keeps stepping, so the encode
// + checksum + write overlaps compute and only the O(state) copy stays on
// the step path.
func (s *Solver) CaptureCheckpoint() (func(w io.Writer) (int64, error), error) {
	st := s.captureState()
	return func(w io.Writer) (int64, error) { return writeState(w, st) }, nil
}

func writeState(w io.Writer, st snapState) (int64, error) {
	var n int64
	bw := bufio.NewWriterSize(w, 1<<16)
	sum := crc32.NewIEEE()
	le := binary.LittleEndian
	put := func(v uint64) error {
		var b [8]byte
		le.PutUint64(b[:], v)
		sum.Write(b[:])
		k, err := bw.Write(b[:])
		n += int64(k)
		return err
	}
	putF := func(v float64) error { return put(math.Float64bits(v)) }

	if err := put(ckptMagic); err != nil {
		return n, err
	}
	name := []byte(st.scheme)
	if err := put(uint64(len(name))); err != nil {
		return n, err
	}
	sum.Write(name)
	k, err := bw.Write(name)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, v := range []uint64{uint64(st.nx), uint64(st.nv)} {
		if err := put(v); err != nil {
			return n, err
		}
	}
	for _, v := range []float64{st.l, st.vmax, st.time, st.cfl} {
		if err := putF(v); err != nil {
			return n, err
		}
	}
	for _, v := range st.f {
		if err := putF(v); err != nil {
			return n, err
		}
	}
	var b [8]byte
	le.PutUint64(b[:], uint64(sum.Sum32()))
	k, err = bw.Write(b[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// Restore rebuilds a solver from a checkpoint written by Checkpoint (or by
// the runner's WithCheckpoint cadence), verifying the checksum. The restored
// solver is ready to Step: the field cache is rebuilt from the restored
// distribution so SuggestDT and Diagnostics are valid before the first step.
func Restore(r io.Reader) (*Solver, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	sum := crc32.NewIEEE()
	le := binary.LittleEndian
	get := func(check bool) (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		if check {
			sum.Write(b[:])
		}
		return le.Uint64(b[:]), nil
	}
	getF := func() (float64, error) {
		v, err := get(true)
		return math.Float64frombits(v), err
	}

	magic, err := get(true)
	if err != nil {
		return nil, fmt.Errorf("plasma: checkpoint header: %w", err)
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("plasma: bad checkpoint magic %#x", magic)
	}
	nameLen, err := get(true)
	if err != nil {
		return nil, err
	}
	if nameLen > 256 {
		return nil, fmt.Errorf("plasma: implausible scheme-name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	sum.Write(name)
	nx64, err := get(true)
	if err != nil {
		return nil, err
	}
	nv64, err := get(true)
	if err != nil {
		return nil, err
	}
	var l, vmax, tm, cfl float64
	for _, dst := range []*float64{&l, &vmax, &tm, &cfl} {
		if *dst, err = getF(); err != nil {
			return nil, err
		}
	}
	// Bound the dimensions AND their product: a corrupt header must fail
	// here with an error the caller can quarantine on, never reach a
	// makeslice panic or an OOM allocation inside NewWithScheme.
	if nx64 > 1<<24 || nv64 > 1<<24 || nx64*nv64 > 1<<28 {
		return nil, fmt.Errorf("plasma: implausible grid %dx%d", nx64, nv64)
	}
	s, err := NewWithScheme(int(nx64), int(nv64), l, vmax, string(name))
	if err != nil {
		return nil, fmt.Errorf("plasma: checkpoint rebuild: %w", err)
	}
	for i := range s.F {
		if s.F[i], err = getF(); err != nil {
			return nil, err
		}
	}
	want := sum.Sum32()
	got, err := get(false)
	if err != nil {
		return nil, err
	}
	if uint32(got) != want {
		return nil, fmt.Errorf("plasma: checkpoint checksum mismatch")
	}
	s.Time = tm
	s.CFL = cfl
	// Rebuild the field cache: currentField assumes the last kick left a
	// valid E(x) whenever Time > 0, and a restored solver has taken no kick.
	s.ElectricField()
	return s, nil
}
