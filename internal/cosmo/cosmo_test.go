package cosmo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	p := Planck2015(0.4)
	if err := p.Validate(); err != nil {
		t.Fatalf("fiducial params invalid: %v", err)
	}
	bad := p
	bad.H = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative h accepted")
	}
	bad = p
	bad.SumMNuEV = 1e5
	if err := bad.Validate(); err == nil {
		t.Fatal("OmegaNu > OmegaM accepted")
	}
}

func TestEOfA(t *testing.T) {
	p := Planck2015(0.4)
	if got := p.E(1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("E(1) = %v, want 1", got)
	}
	// Matter-dominated limit: E ≈ sqrt(Ωm) a^{-3/2}.
	a := 0.01
	want := math.Sqrt(p.OmegaM) * math.Pow(a, -1.5)
	if got := p.E(a); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("E(%v) = %v, want ≈ %v", a, got, want)
	}
}

func TestOmegaNuFraction(t *testing.T) {
	p := Planck2015(0.4)
	fnu := p.FNu()
	if fnu < 1e-3 || fnu > 1e-1 {
		t.Fatalf("fν = %v outside plausible range", fnu)
	}
	if math.Abs(p.OmegaCB()+p.OmegaNu()-p.OmegaM) > 1e-14 {
		t.Fatal("OmegaCB + OmegaNu != OmegaM")
	}
}

func TestCosmicTimeAge(t *testing.T) {
	p := Planck2015(0.0)
	// Age of a Planck-like universe ≈ 13.8 Gyr ≈ 13.8/9.778*h in internal
	// units: t_internal = t_Gyr/(9.778/h)... internal time unit is
	// h⁻¹Mpc/(km/s) = 977.79 h⁻¹ Gyr... so age ≈ 13.8 Gyr / (977.79/h Gyr)
	// = 13.8·h/977.79 ≈ 0.00953 for h=0.6774.
	age := p.CosmicTime(1)
	want := 13.8 * p.H / 977.79
	if math.Abs(age-want)/want > 0.02 {
		t.Fatalf("age = %v internal units, want ≈ %v", age, want)
	}
}

func TestScaleFactorAtInvertsCosmicTime(t *testing.T) {
	p := Planck2015(0.4)
	for _, a := range []float64{0.05, 0.0909, 0.25, 0.5, 1.0} {
		tt := p.CosmicTime(a)
		got := p.ScaleFactorAt(tt)
		if math.Abs(got-a)/a > 1e-6 {
			t.Fatalf("ScaleFactorAt(CosmicTime(%v)) = %v", a, got)
		}
	}
}

func TestGrowthFactor(t *testing.T) {
	p := Planck2015(0.0)
	if got := p.GrowthFactor(1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("D(1) = %v, want 1", got)
	}
	// Matter domination: D ∝ a.
	d1, d2 := p.GrowthFactor(0.01), p.GrowthFactor(0.02)
	if math.Abs(d2/d1-2) > 0.01 {
		t.Fatalf("growth not ∝ a in matter era: D(0.02)/D(0.01) = %v", d2/d1)
	}
	// Λ suppresses growth: D(1) < a·D'(matter extrapolation), i.e.
	// D(0.5) > 0.5 for ΛCDM.
	if d := p.GrowthFactor(0.5); d <= 0.5 {
		t.Fatalf("D(0.5) = %v, want > 0.5 under Λ suppression of late growth", d)
	}
}

func TestGrowthRate(t *testing.T) {
	p := Planck2015(0.0)
	// Matter domination: f → 1.
	if f := p.GrowthRate(0.01); math.Abs(f-1) > 0.01 {
		t.Fatalf("f(0.01) = %v, want ≈ 1", f)
	}
	// Today: f ≈ Ωm^0.55 ≈ 0.52.
	f0 := p.GrowthRate(1)
	want := math.Pow(p.OmegaM, 0.55)
	if math.Abs(f0-want) > 0.03 {
		t.Fatalf("f(1) = %v, want ≈ %v", f0, want)
	}
}

func TestPoissonCoeffScaling(t *testing.T) {
	p := Planck2015(0.4)
	c1, c2 := p.PoissonCoeff(1), p.PoissonCoeff(0.5)
	if math.Abs(c2/c1-2) > 1e-12 {
		t.Fatalf("PoissonCoeff should scale as 1/a: ratio %v", c2/c1)
	}
}

func TestFreeStreamingWavenumber(t *testing.T) {
	p := Planck2015(0.4)
	kfs := p.FreeStreamingWavenumber(1)
	// For Mν=0.4 eV the z=0 free-streaming scale is of order 0.1–1 h/Mpc.
	if kfs < 0.05 || kfs > 5 {
		t.Fatalf("k_fs = %v h/Mpc implausible", kfs)
	}
	// Heavier ν → shorter free-streaming length → larger k_fs.
	p2 := Planck2015(0.8)
	if p2.FreeStreamingWavenumber(1) <= kfs {
		t.Fatal("k_fs should increase with neutrino mass")
	}
}

func TestPowerSpectrumNormalisation(t *testing.T) {
	p := Planck2015(0.0)
	ps := NewPowerSpectrum(p)
	got := ps.SigmaR(8)
	if math.Abs(got-p.Sigma8)/p.Sigma8 > 1e-6 {
		t.Fatalf("σ8 = %v, want %v", got, p.Sigma8)
	}
}

func TestPowerSpectrumShape(t *testing.T) {
	ps := NewPowerSpectrum(Planck2015(0.0))
	// P(k) rises as k^ns at low k and falls at high k.
	if ps.Total(1e-4) >= ps.Total(2e-2) {
		t.Fatal("P(k) should rise toward the turnover")
	}
	if ps.Total(0.1) <= ps.Total(10) {
		t.Fatal("P(k) should fall past the turnover")
	}
}

func TestNeutrinoSuppression(t *testing.T) {
	p0 := NewPowerSpectrum(Planck2015(0.0))
	p4 := NewPowerSpectrum(Planck2015(0.4))
	// At small scales (k ≫ k_fs) the massive-ν spectrum is suppressed
	// relative to its own large-scale amplitude more than the massless case.
	// Compare the small/large-scale ratio of the two models.
	kLo, kHi := 0.01, 5.0
	r0 := p0.Total(kHi) / p0.Total(kLo)
	r4 := p4.Total(kHi) / p4.Total(kLo)
	if r4 >= r0 {
		t.Fatalf("massive-ν small-scale power not suppressed: %v vs %v", r4, r0)
	}
}

func TestNuComponentSuppressed(t *testing.T) {
	ps := NewPowerSpectrum(Planck2015(0.4))
	k := 5 * ps.par.FreeStreamingWavenumber(1)
	if ps.Nu(k) >= ps.CB(k) {
		t.Fatal("neutrino power should be below CDM power beyond k_fs")
	}
	kbig := 0.01 * ps.par.FreeStreamingWavenumber(1)
	rr := ps.Nu(kbig) / ps.CB(kbig)
	if math.Abs(rr-1) > 0.01 {
		t.Fatalf("ν traces CDM on large scales: ratio = %v", rr)
	}
}

func TestPowerPositivityProperty(t *testing.T) {
	ps := NewPowerSpectrum(Planck2015(0.4))
	f := func(lk float64) bool {
		k := math.Pow(10, -4+math.Mod(math.Abs(lk), 7)) // k in [1e-4, 1e3)
		return ps.Total(k) >= 0 && ps.CB(k) >= 0 && ps.Nu(k) >= 0 &&
			ps.Nu(k) <= ps.CB(k)*1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthScaling(t *testing.T) {
	ps := NewPowerSpectrum(Planck2015(0.0))
	d := ps.par.GrowthFactor(0.5)
	k := 0.1
	if got, want := ps.At(k, 0.5), d*d*ps.Total(k); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("At() growth scaling wrong: %v vs %v", got, want)
	}
}

func TestEHTransferShape(t *testing.T) {
	p := Planck2015(0.0)
	// T(k→0) → 1, monotone decreasing, strongly suppressed at high k.
	if d := math.Abs(ehNoWiggle(p, 1e-6) - 1); d > 1e-3 {
		t.Fatalf("EH T(0) = %v", ehNoWiggle(p, 1e-6))
	}
	prev := 1.0
	for _, k := range []float64{0.001, 0.01, 0.1, 1, 10} {
		tk := ehNoWiggle(p, k)
		if tk > prev {
			t.Fatalf("EH transfer not monotone at k=%v", k)
		}
		prev = tk
	}
	if ehNoWiggle(p, 10) > 1e-3 {
		t.Fatalf("EH high-k tail %v", ehNoWiggle(p, 10))
	}
}

func TestEHSpectrumNormalisedAndClose(t *testing.T) {
	p := Planck2015(0.0)
	eh := NewPowerSpectrumKind(p, TransferEH)
	bbks := NewPowerSpectrumKind(p, TransferBBKS)
	if s8 := eh.SigmaR(8); math.Abs(s8-p.Sigma8)/p.Sigma8 > 1e-6 {
		t.Fatalf("EH σ8 = %v", s8)
	}
	// The two σ8-normalised fits agree to tens of percent over the
	// quasi-linear range — they are alternative fits to the same physics.
	for _, k := range []float64{0.02, 0.05, 0.1, 0.3} {
		r := eh.Total(k) / bbks.Total(k)
		if r < 0.6 || r > 1.6 {
			t.Fatalf("EH/BBKS ratio %v at k=%v", r, k)
		}
	}
	// EH models the baryon suppression: with baryons the small-scale
	// transfer is lower than the zero-baryon limit of the same Ωm.
	noB := p
	noB.OmegaB = 1e-4
	if ehNoWiggle(p, 1.0) >= ehNoWiggle(noB, 1.0) {
		t.Fatal("baryons should suppress the small-scale transfer")
	}
}
