package machine

import (
	"fmt"
	"math"
)

// Params holds the calibrated hardware and algorithm constants. Defaults
// encode the A64FX/Tofu-D numbers from the paper (§5.3, §6.1) together with
// algorithm constants derived from the run geometry (e.g. the tree
// interaction count follows from the 4.5·r_s cutoff volume at the paper's
// particle density).
type Params struct {
	// CMGsPerNode: an A64FX has four CMGs (12 cores + 8 GB HBM2 each).
	CMGsPerNode int
	// CoresPerCMG on A64FX.
	CoresPerCMG int
	// VlasovRateU is the sustained single-precision rate of a velocity-
	// space sweep per CMG (Table 1 "w/ SIMD"/"w/ LAT": ≈220 Gflop/s).
	VlasovRateU float64
	// VlasovRateX is the physical-space sweep rate (the ghost-copy overhead
	// is included in the paper's ≈150 Gflop/s rows).
	VlasovRateX float64
	// VlasovFlopsPerCellSweep is the effective flop cost of one 1D SL-MPP5
	// update per phase-space cell — reconstruction, MP limiter, positivity
	// clip and the gather/scatter overhead expressed in flop-equivalents.
	VlasovFlopsPerCellSweep float64
	// TreeInteractionsPerSec per CORE: the Phantom-GRAPE SVE kernel rate
	// (1.2×10⁹ on A64FX §5.1.2; the non-SIMD kernel runs at 2.4×10⁷).
	TreeInteractionsPerSec float64
	// TreeInteractionsPerParticle: with r_cut = 4.5·1.25 PM cells and the
	// paper's 9³ particles per Vlasov cell, the cutoff sphere holds
	// (4π/3)·(r_cut·n̄^{1/3})³ ≈ 2×10⁴ neighbours.
	TreeInteractionsPerParticle float64
	// TreeWalkOverhead is the fractional cost of tree build + walk on top
	// of the pair kernel.
	TreeWalkOverhead float64
	// MeshSecPerParticleCore is the per-core time of the scalable PM mesh
	// work (CIC deposit + force interpolation, latency-bound scattered
	// access) per particle.
	MeshSecPerParticleCore float64
	// FFTEffRate is the effective per-CMG throughput of the 2D-decomposed
	// FFT including its internal transposes (far below the arithmetic peak;
	// the FFT is redistribution-bound).
	FFTEffRate float64
	// LinkBandwidth is the per-link Tofu-D injection bandwidth (bytes/s);
	// each node has links of 6.8 GB/s.
	LinkBandwidth float64
	// LinkLatency is the one-hop message latency (s).
	LinkLatency float64
	// AlltoallEfficiency derates the transpose bandwidth for the
	// many-small-messages pattern of the 3D→2D layout exchange.
	AlltoallEfficiency float64
	// GhostWidth is the stencil ghost depth (3 for SL-MPP5).
	GhostWidth int
	// BytesPerPhaseCell is 4 (float32).
	BytesPerPhaseCell float64
	// BytesPerParticle for the boundary exchange (pos+vel+id ≈ 56 B).
	BytesPerParticle float64
	// TreeBoundaryFraction is the fraction of local particles exported to
	// neighbours per step.
	TreeBoundaryFraction float64
	// PMGridFactor: N_PM side = NCDMSide/3 (the paper's N_PM = N_CDM/3³).
	PMGridFactor int
}

// Defaults returns the paper-calibrated constants.
func Defaults() Params {
	return Params{
		CMGsPerNode:                 4,
		CoresPerCMG:                 12,
		VlasovRateU:                 220e9,
		VlasovRateX:                 150e9,
		VlasovFlopsPerCellSweep:     430,
		TreeInteractionsPerSec:      1.2e9,
		TreeInteractionsPerParticle: 2.0e4,
		TreeWalkOverhead:            0.2,
		MeshSecPerParticleCore:      5.0e-6,
		FFTEffRate:                  3.1e8,
		LinkBandwidth:               6.8e9,
		LinkLatency:                 2e-6,
		AlltoallEfficiency:          0.30,
		GhostWidth:                  3,
		BytesPerPhaseCell:           4,
		BytesPerParticle:            56,
		TreeBoundaryFraction:        0.08,
		PMGridFactor:                3,
	}
}

// Breakdown is the modelled wall-clock time per step, decomposed as in
// Fig. 7.
type Breakdown struct {
	Vlasov     float64 // velocity+position sweeps, compute
	CommVlasov float64 // ghost exchange
	Tree       float64 // short-range force build+walk+kernel
	CommNbody  float64 // particle boundary exchange
	PM         float64 // mesh ops + 2D-decomposed FFT + transpose
	Total      float64
}

// Model predicts per-step times for Table 2 runs.
type Model struct {
	P Params
}

// New returns a model with the given parameters.
func New(p Params) (*Model, error) {
	if p.CMGsPerNode < 1 || p.CoresPerCMG < 1 || p.VlasovRateU <= 0 ||
		p.VlasovRateX <= 0 || p.TreeInteractionsPerSec <= 0 ||
		p.FFTEffRate <= 0 || p.LinkBandwidth <= 0 {
		return nil, fmt.Errorf("machine: invalid parameters")
	}
	return &Model{P: p}, nil
}

// Step predicts the per-step time breakdown of a run.
func (m *Model) Step(r Run) Breakdown {
	p := m.P
	nProc := float64(r.NProc())
	cmgPerProc := float64(p.CMGsPerNode) / float64(r.ProcsPerNode)
	coresPerProc := cmgPerProc * float64(p.CoresPerCMG)
	// Local sizes.
	nxLoc := [3]float64{
		float64(r.NxSide) / float64(r.Proc[0]),
		float64(r.NxSide) / float64(r.Proc[1]),
		float64(r.NxSide) / float64(r.Proc[2]),
	}
	nu3 := math.Pow(float64(r.NuSide), 3)
	cellsLoc := nxLoc[0] * nxLoc[1] * nxLoc[2] * nu3

	// ---- Vlasov compute: per step, eq. (5) runs six velocity half-sweeps
	// and three position sweeps at their Table 1 rates.
	fl := cellsLoc * p.VlasovFlopsPerCellSweep
	tV := 6*fl/(p.VlasovRateU*cmgPerProc) + 3*fl/(p.VlasovRateX*cmgPerProc)

	// ---- Vlasov ghost exchange: two faces × GhostWidth planes per
	// decomposed axis, three position sweeps per step.
	ghostBytes := 0.0
	faceArea := [3]float64{
		nxLoc[1] * nxLoc[2], nxLoc[0] * nxLoc[2], nxLoc[0] * nxLoc[1],
	}
	for d := 0; d < 3; d++ {
		if r.Proc[d] > 1 {
			ghostBytes += 2 * float64(p.GhostWidth) * faceArea[d] * nu3 * p.BytesPerPhaseCell
		}
	}
	tCommV := ghostBytes/(2*p.LinkBandwidth) + 6*p.LinkLatency

	// ---- Tree: Phantom-GRAPE kernel over the cutoff-volume interaction
	// list, plus build/walk overhead.
	partLoc := r.Particles() / nProc
	kernelRate := p.TreeInteractionsPerSec * coresPerProc
	tTree := (1 + p.TreeWalkOverhead) * partLoc * p.TreeInteractionsPerParticle / kernelRate

	// ---- N-body communication: boundary particles both ways.
	nbBytes := 2 * partLoc * p.TreeBoundaryFraction * p.BytesPerParticle
	tCommN := nbBytes/(2*p.LinkBandwidth) + 6*p.LinkLatency

	// ---- PM: a perfectly-scaling mesh part (CIC deposit + interpolation,
	// particle-count bound) plus the 2D-decomposed FFT, which is
	// parallelised over only n_x·n_y processes (§5.1.3) — the scaling
	// bottleneck the paper calls out — plus the 3D→2D transpose.
	tPM := partLoc * p.MeshSecPerParticleCore / coresPerProc
	npm := float64(r.NCDMSide) / float64(p.PMGridFactor)
	fftFlops := 2 * 5 * npm * npm * npm * 3 * math.Log2(npm) // fwd+inv pair
	fftProcs := float64(r.Proc[0] * r.Proc[1])
	if fftProcs > nProc {
		fftProcs = nProc
	}
	tPM += fftFlops / (p.FFTEffRate * cmgPerProc * fftProcs)
	meshBytes := npm * npm * npm * 8 / fftProcs
	tPM += 4 * meshBytes / (p.AlltoallEfficiency * p.LinkBandwidth)

	b := Breakdown{
		Vlasov:     tV,
		CommVlasov: tCommV,
		Tree:       tTree,
		CommNbody:  tCommN,
		PM:         tPM,
	}
	b.Total = tV + tCommV + tTree + tCommN + tPM
	return b
}

// PartTime extracts a named part from a breakdown, with communication
// folded into its owning part as the paper's tables do.
func (b Breakdown) PartTime(part string) (float64, error) {
	switch part {
	case "total":
		return b.Total, nil
	case "vlasov":
		return b.Vlasov + b.CommVlasov, nil
	case "tree":
		return b.Tree + b.CommNbody, nil
	case "pm":
		return b.PM, nil
	}
	return 0, fmt.Errorf("machine: unknown part %q", part)
}
