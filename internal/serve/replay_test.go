package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"vlasov6d/internal/tenant"
)

// sseEvt is one parsed server-sent event.
type sseEvt struct {
	id   int64 // 0 when the event carried no id line
	typ  string
	data map[string]any
}

// readSSE parses events off an open SSE body, calling fn per event until
// fn returns false or the stream ends.
func readSSE(body io.Reader, fn func(sseEvt) bool) {
	scanner := bufio.NewScanner(body)
	var ev sseEvt
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			ev.id, _ = strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "event: "):
			ev.typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = nil
			json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.data)
		case line == "":
			if ev.typ != "" && !fn(ev) {
				return
			}
			ev = sseEvt{}
		}
	}
}

// openSSE connects to a job's diagnostics stream, optionally resuming.
func openSSE(t *testing.T, base string, id int, lastEventID int64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%d/diagnostics", base, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastEventID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// metricValue greps one un-labelled sample out of a /metrics body.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(blob), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("metric %s: unparsable line %q", name, line)
			}
			return v
		}
	}
	t.Fatalf("metric %s absent", name)
	return 0
}

// TestSSEResumeContiguous is the tentpole's core contract: disconnect
// mid-run, reconnect with Last-Event-ID, and receive every ring event
// exactly once — ids contiguous across the break, no gap event (the window
// was retained), terminal "done" closing the resumed stream.
func TestSSEResumeContiguous(t *testing.T) {
	// The job emits thousands of events per second; the ring must retain
	// the whole resume window for the test's lifetime (incl. the eta
	// polling below) or this flakes into TestSSEEvictionGap's territory.
	_, ts := newTestServer(t, Config{Workers: 2, RingSize: 1 << 18})
	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","name":"resume","until":1000,"fixed_dt":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	pollStatus(t, ts.URL, id, "running")

	// First connection: consume until a mid-run diag, remember the last id.
	var lastID int64
	resp := openSSE(t, ts.URL, id, 0)
	readSSE(resp.Body, func(ev sseEvt) bool {
		if ev.id > 0 {
			if lastID > 0 && ev.id != lastID+1 {
				t.Errorf("first connection ids not dense: %d after %d", ev.id, lastID)
			}
			lastID = ev.id
		}
		step, _ := ev.data["step"].(float64)
		return !(ev.typ == "diag" && step >= 10)
	})
	resp.Body.Close()
	if lastID == 0 {
		t.Fatal("first connection saw no id-stamped events")
	}

	// While running, the status document carries the clock target and an
	// ETA projection from the machine model.
	st := pollStatus(t, ts.URL, id, "running")
	if until, _ := st["until"].(float64); until != 1000 {
		t.Fatalf("status until = %v, want 1000", st["until"])
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if eta, ok := st["eta_seconds"].(float64); ok {
			if eta <= 0 {
				t.Fatalf("eta_seconds = %v, want positive", eta)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("running status never grew an eta_seconds projection")
		}
		time.Sleep(20 * time.Millisecond)
		st = pollStatus(t, ts.URL, id, "running")
	}

	// Reconnect with Last-Event-ID: the replay must pick up at exactly
	// lastID+1 — nothing skipped, nothing repeated, no gap.
	resp = openSSE(t, ts.URL, id, lastID)
	first := true
	cursor := lastID
	sawReplay := false
	readSSE(resp.Body, func(ev sseEvt) bool {
		if ev.typ == "gap" {
			t.Errorf("gap on a retained-window resume: %v", ev.data)
		}
		if ev.id > 0 {
			if first && ev.id != lastID+1 {
				t.Errorf("resume started at id %d, want %d", ev.id, lastID+1)
			}
			if !first && ev.id != cursor+1 {
				t.Errorf("resumed ids not dense: %d after %d", ev.id, cursor)
			}
			cursor = ev.id
			first = false
			sawReplay = true
		}
		// A few resumed events are enough; then cancel mid-stream below.
		return !(ev.id >= lastID+5)
	})
	resp.Body.Close()
	if !sawReplay {
		t.Fatal("resumed connection delivered no events")
	}
	if replayed := metricValue(t, ts.URL, "vlasovd_sse_replayed_total"); replayed == 0 {
		t.Fatal("vlasovd_sse_replayed_total did not count the resume")
	}

	// Cancel, then a final resume must replay through to the terminal
	// "done" event and close.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), nil)
	if dr, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		dr.Body.Close()
	}
	pollStatus(t, ts.URL, id, "cancelled")
	resp = openSSE(t, ts.URL, id, cursor)
	sawDone := false
	readSSE(resp.Body, func(ev sseEvt) bool {
		if ev.typ == "done" {
			sawDone = true
			if ev.data["status"] != "cancelled" {
				t.Errorf("done document: %v", ev.data)
			}
			return false
		}
		return true
	})
	resp.Body.Close()
	if !sawDone {
		t.Fatal("terminal resume never delivered done")
	}
}

// TestSSEEvictionGap: a resume pointing before the ring's retained window
// gets an explicit gap event carrying the evicted count, then the retained
// events — loss is visible, never silent. An id from a previous daemon
// life (past the ring head) is answered with a reset gap.
func TestSSEEvictionGap(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, RingSize: 8})
	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","name":"evict","until":1000,"fixed_dt":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	pollStatus(t, ts.URL, id, "running")

	// Let the ring wrap a few times.
	resp := openSSE(t, ts.URL, id, 0)
	readSSE(resp.Body, func(ev sseEvt) bool {
		step, _ := ev.data["step"].(float64)
		return !(ev.typ == "diag" && step >= 40)
	})
	resp.Body.Close()

	dropped := metricValue(t, ts.URL, "vlasovd_sse_dropped_total")

	// Resume from id 1: events 2..firstRetained-1 are gone.
	resp = openSSE(t, ts.URL, id, 1)
	var gapMissed float64
	var firstID int64
	readSSE(resp.Body, func(ev sseEvt) bool {
		if ev.typ == "gap" && gapMissed == 0 {
			gapMissed, _ = ev.data["missed"].(float64)
			if src := ev.data["source"]; src != "ring" {
				t.Errorf("gap source %v, want ring", src)
			}
			if ev.id != 0 {
				t.Errorf("synthetic gap carried id %d", ev.id)
			}
			return true
		}
		if ev.id > 0 {
			firstID = ev.id
			return false
		}
		return true
	})
	resp.Body.Close()
	if gapMissed <= 0 {
		t.Fatal("eviction resume produced no gap event")
	}
	if firstID != int64(gapMissed)+2 {
		t.Fatalf("first replayed id %d does not line up with gap of %v after cursor 1", firstID, gapMissed)
	}
	if after := metricValue(t, ts.URL, "vlasovd_sse_dropped_total"); after < dropped+gapMissed {
		t.Fatalf("vlasovd_sse_dropped_total %v did not count the %v-event gap (was %v)", after, gapMissed, dropped)
	}

	// A cursor past the head cannot resolve: the stream opens with an
	// explicit reset gap instead of silently pretending to resume.
	resp = openSSE(t, ts.URL, id, 1<<40)
	sawReset := false
	readSSE(resp.Body, func(ev sseEvt) bool {
		sawReset = ev.typ == "gap" && ev.data["source"] == "reset"
		return false // first event decides
	})
	resp.Body.Close()
	if !sawReset {
		t.Fatal("unresolvable Last-Event-ID not answered with a reset gap")
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), nil)
	if dr, err := http.DefaultClient.Do(req); err == nil {
		dr.Body.Close()
	}
}

// TestArtifactIndexAnswersAfterEviction: with a StoreDir, a finished job
// evicted from the bounded in-memory history keeps answering — status from
// the artifact index (marked archived), checkpoints from the indexed
// listing, the files themselves still downloadable — while the live-only
// surfaces degrade explicitly (diagnostics 404, cancel 409).
func TestArtifactIndexAnswersAfterEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:         2,
		History:         1,
		StoreDir:        t.TempDir(),
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 2,
	})
	submit := func(name string) int {
		code, body := postJSON(t, ts.URL+"/v1/jobs", fmt.Sprintf(
			`{"scenario":"landau","name":%q,"until":0.06,"fixed_dt":0.01}`, name))
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %v", name, code, body)
		}
		return int(body["id"].(float64))
	}
	idA := submit("first")
	pollStatus(t, ts.URL, idA, "done")
	idB := submit("second")
	pollStatus(t, ts.URL, idB, "done")

	// History 1: B's completion evicts A from the in-memory map. The
	// eviction happens in the results consumer, so give it a beat.
	deadline := time.Now().Add(5 * time.Second)
	var code int
	var st map[string]any
	for {
		code, st = getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, idA))
		if st["archived"] == true || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code != http.StatusOK {
		t.Fatalf("evicted job status: %d %v", code, st)
	}
	if st["archived"] != true || st["status"] != "done" || st["name"] != "first" {
		t.Fatalf("archived status document: %v", st)
	}
	rep, ok := st["report"].(map[string]any)
	if !ok || rep["steps"].(float64) < 1 {
		t.Fatalf("archived report: %v", st["report"])
	}

	// The checkpoint listing answers from the index.
	code, ck := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d/checkpoints", ts.URL, idA))
	if code != http.StatusOK || ck["archived"] != true {
		t.Fatalf("archived checkpoints: %d %v", code, ck)
	}
	list, _ := ck["checkpoints"].([]any)
	if len(list) == 0 {
		t.Fatal("archived checkpoint listing empty; the run checkpointed every 2 steps")
	}
	// ... and the artifact itself still downloads.
	name := list[0].(map[string]any)["name"].(string)
	dl, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/checkpoints/%s", ts.URL, idA, name))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(dl.Body)
	dl.Body.Close()
	if dl.StatusCode != http.StatusOK || len(blob) == 0 {
		t.Fatalf("archived artifact download: %d, %d bytes", dl.StatusCode, len(blob))
	}

	// Live-only surfaces refuse explicitly.
	if dg, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/diagnostics", ts.URL, idA)); err == nil {
		if dg.StatusCode != http.StatusNotFound {
			t.Fatalf("evicted diagnostics: %d", dg.StatusCode)
		}
		dg.Body.Close()
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, idA), nil)
	if dr, err := http.DefaultClient.Do(req); err == nil {
		if dr.StatusCode != http.StatusConflict {
			t.Fatalf("evicted cancel: %d", dr.StatusCode)
		}
		dr.Body.Close()
	}
}

// TestMetricsLabelEscaping pins the exposition-format fix: a non-ASCII
// tenant name must appear as raw UTF-8 (the format is UTF-8; %q's \uXXXX
// is unparsable), while quotes and backslashes get the three mandated
// escapes — and plain ASCII names stay byte-identical.
func TestMetricsLabelEscaping(t *testing.T) {
	reg, err := tenant.Parse(strings.NewReader(`{
	  "tenants": [
	    {"name": "alice", "key": "alice-key"},
	    {"name": "プラズマ団", "key": "utf8-key"},
	    {"name": "quo\"te\\back", "key": "esc-key"}
	  ]}`))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Tenants: reg})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(blob)
	for _, want := range []string{
		`vlasovd_tenant_queue_depth{tenant="alice"} 0`,
		`vlasovd_tenant_queue_depth{tenant="プラズマ団"} 0`,
		`vlasovd_tenant_queue_depth{tenant="quo\"te\\back"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	if strings.Contains(body, `\u`) {
		t.Error("metrics still contain \\uXXXX escapes — not valid exposition format")
	}
}
