// Command vlasovd is the simulation daemon: the always-on form of the
// repository's solver stack. It serves the HTTP control plane
// (internal/serve) over a long-lived streaming scheduler, so every
// scenario in the catalog — the plasma validation problems, the hybrid
// Vlasov/N-body runs, the control baselines — becomes remotely
// submittable as a JSON spec instead of a hand-launched binary.
//
//	vlasovd -addr :8080 -budget 8 -ckpt-dir /var/lib/vlasovd/ckpts \
//	        -store-dir /var/lib/vlasovd/store -keys /etc/vlasovd/keys.json
//
// Quickstart against a running daemon (drop the -H line when no -keys):
//
//	curl -s -H 'Authorization: Bearer <key>' localhost:8080/v1/scenarios | jq .
//	curl -s -H 'Authorization: Bearer <key>' -X POST localhost:8080/v1/jobs \
//	     -d '{"scenario":"landau","params":{"nx":64,"nv":128}}'
//	curl -s -H 'Authorization: Bearer <key>' localhost:8080/v1/jobs/0 | jq .
//	curl -N -H 'Authorization: Bearer <key>' localhost:8080/v1/jobs/0/diagnostics
//	curl -N -H 'Authorization: Bearer <key>' -H 'Last-Event-ID: 42' \
//	     localhost:8080/v1/jobs/0/diagnostics     # resume, replaying events 43+
//	curl -s -H 'Authorization: Bearer <key>' localhost:8080/v1/jobs/0/checkpoints | jq .
//	curl -s -H 'Authorization: Bearer <key>' localhost:8080/v1/jobs/0/trace | jq .
//	curl -s -H 'Authorization: Bearer <key>' 'localhost:8080/v1/jobs?archived=1' | jq .
//	curl -s localhost:8080/metrics                        # unauthenticated
//
// Every job carries a lifecycle trace — admission, queue wait, dispatch
// attempts, running segments, checkpoint writes — served live at
// /v1/jobs/{id}/trace and archived into the artifact index at terminal
// time; -trace-spans bounds the per-job buffer. The same measurements
// feed the latency histograms on /metrics. Admin tenants get runtime
// profiles at /v1/admin/pprof/ (heap, profile, goroutine, trace, …).
//
// SIGTERM/SIGINT starts the graceful drain: intake stops (submissions get
// 503 with Retry-After), queued and running jobs finish — checkpointing on
// their cadence — until -drain expires, then the remainder is cancelled
// through the scheduler and every result is flushed before exit.
//
// SIGHUP hot-reloads the -keys file: new keys and quotas apply to the next
// request, running jobs keep their admitted tenant identity, and a file
// that fails validation is rejected wholesale (the old keys stay live).
// Admin tenants can trigger the same reload with POST /v1/admin/reload.
//
// With -store-dir the daemon is durable: every submission's lifecycle is
// journaled, and a restart — graceful OR a straight SIGKILL — replays the
// journal, re-queues every unfinished job under its original id, and
// resumes it from its newest checkpoint (with -ckpt-dir). With -keys the
// /v1 surface requires bearer keys and enforces the per-tenant quotas the
// key file declares; see internal/tenant for the file format.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vlasov6d/internal/catalog"
	"vlasov6d/internal/serve"
	"vlasov6d/internal/tenant"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vlasovd: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers   = flag.Int("workers", 0, "scheduler worker pool size (0 = GOMAXPROCS)")
		budget    = flag.Int("budget", 0, "CPU core budget divided among live jobs (0 = no budget; the machine's core count gives the paper's fixed-partition accounting)")
		ckptDir   = flag.String("ckpt-dir", "", "per-job checkpoint root (empty disables checkpointing and resume)")
		ckptEvery = flag.Int("ckpt-every", 25, "checkpoint cadence in steps (with -ckpt-dir)")
		retries   = flag.Int("retries", 1, "default extra attempts per job after a transient failure (specs may override)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM before running jobs are cancelled")
		storeDir  = flag.String("store-dir", "", "durable job-journal directory (empty = in-memory only; with it, restarts recover unfinished jobs)")
		keys      = flag.String("keys", "", "tenant key file enabling bearer-key auth and per-tenant quotas (empty = open access; SIGHUP or POST /v1/admin/reload re-reads it live)")
		diagRing  = flag.Int("diag-ring", 0, "per-job diagnostics replay ring size (0 = 512): how far back an SSE client can resume with Last-Event-ID before hitting an explicit gap")
		compactB  = flag.Int64("journal-compact-bytes", 0, "journal size that triggers online compaction (0 = 1 MiB default, negative disables)")
		compactN  = flag.Int("journal-compact-records", 0, "journal record count that triggers online compaction (0 = 4096 default, negative disables)")
		traceSpan = flag.Int("trace-spans", 0, "per-job lifecycle-trace span buffer (0 = 256): oldest spans are evicted, counted, and reported by /v1/jobs/{id}/trace")
	)
	flag.Parse()

	var reg *tenant.Registry
	if *keys != "" {
		var err error
		if reg, err = tenant.Load(*keys); err != nil {
			log.Fatal(err)
		}
		log.Printf("tenancy on: %d tenants from %s", len(reg.Tenants()), *keys)
	}

	srv, err := serve.New(context.Background(), serve.Config{
		Catalog:               catalog.Default(),
		Workers:               *workers,
		Budget:                *budget,
		CheckpointDir:         *ckptDir,
		CheckpointEvery:       *ckptEvery,
		Retries:               *retries,
		RingSize:              *diagRing,
		StoreDir:              *storeDir,
		Tenants:               reg,
		KeysPath:              *keys,
		JournalCompactBytes:   *compactB,
		JournalCompactRecords: *compactN,
		TraceSpans:            *traceSpan,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	log.Printf("listening on %s (budget %d cores, checkpoint dir %q, store dir %q)",
		ln.Addr(), *budget, *ckptDir, *storeDir)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt, syscall.SIGHUP)
loop:
	for {
		select {
		case s := <-sig:
			if s == syscall.SIGHUP {
				// Hot key reload: re-read -keys and swap the registry whole.
				// A file that fails validation is rejected wholesale — the
				// old keys keep working, the daemon keeps running.
				if *keys == "" {
					log.Printf("SIGHUP: no -keys file to reload")
					continue
				}
				if n, err := srv.ReloadKeys(); err != nil {
					log.Printf("SIGHUP: key file rejected, previous keys stay live: %v", err)
				} else {
					log.Printf("SIGHUP: key file reloaded, %d tenants live", n)
				}
				continue
			}
			log.Printf("%v: draining (budget %v)", s, *drain)
			break loop
		case err := <-errCh:
			log.Fatalf("http server: %v", err)
		}
	}

	// Graceful drain: scheduler first (stop intake, let work finish or
	// checkpoint, flush results), then the HTTP listener — SSE watchers
	// receive their terminal events before the sockets close.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain deadline hit, remaining jobs cancelled: %v", err)
	} else {
		log.Printf("drained clean")
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
}
