// Command sweep runs a parameter-sweep campaign — the batch-scheduler
// counterpart of the single-run vlasov6d binary. The default sweep is a
// scheme × resolution grid of Landau-damping validation runs: every
// advection scheme at every phase-space resolution is driven through the
// shared RunBatch worker pool, each job measures its own damping rate from
// the field-energy peaks (delivered through the async observer pipeline,
// off the job's step loop), and the final table compares every cell of the
// grid against the kinetic-theory rate from the plasma dispersion function.
//
// Example:
//
//	sweep -schemes slmpp5,mp5,upwind1 -res 32x64,64x128 -workers 4 -wall 2m
//
// Job status transitions stream as they happen (running → done/failed), so
// a long sweep is observable while it runs; the batch shares one wall-clock
// budget, and Ctrl-C cancels running jobs and skips queued ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"vlasov6d"
	"vlasov6d/internal/analysis"
)

// cell is one point of the scheme × resolution grid plus the damping-rate
// fit its observer accumulates. Each cell's observer runs on its own job's
// async pipeline goroutine, so the fields need no locking.
type cell struct {
	scheme string
	nx, nv int
	fit    analysis.DecayFit
}

// observe feeds the field energy to the damping-rate fit. It rides the
// async observer pipeline: the job's step loop only enqueues diagnostics
// snapshots.
func (c *cell) observe(step int, d vlasov6d.RunDiagnostics) error {
	c.fit.Add(d.Time, d.Extra["field_energy"])
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		schemes = flag.String("schemes", "slmpp5,mp5,upwind1", "comma-separated x-drift advection schemes")
		res     = flag.String("res", "32x64,64x128", "comma-separated NXxNV phase-space resolutions")
		k       = flag.Float64("k", 0.5, "perturbation wavenumber (Debye-length units)")
		alpha   = flag.Float64("alpha", 0.01, "perturbation amplitude")
		until   = flag.Float64("until", 25, "integration time ω_p·t")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		wall    = flag.Duration("wall", 0, "shared wall-clock budget for the whole sweep (0 = unlimited)")
	)
	flag.Parse()

	var grid []*cell
	for _, sc := range strings.Split(*schemes, ",") {
		sc = strings.TrimSpace(sc)
		if sc == "" {
			continue
		}
		for _, rs := range strings.Split(*res, ",") {
			nx, nv, err := parseRes(rs)
			if err != nil {
				log.Fatal(err)
			}
			grid = append(grid, &cell{scheme: sc, nx: nx, nv: nv})
		}
	}
	if len(grid) == 0 {
		log.Fatal("empty sweep: no schemes or resolutions")
	}

	theory := vlasov6d.LandauDampingRate(*k, 1)
	fmt.Printf("Landau sweep: %d jobs (%s × %s), k·λ_D = %.2f, theory γ = %.4f\n",
		len(grid), *schemes, *res, *k, theory)

	jobs := make([]vlasov6d.BatchJob, len(grid))
	for i, c := range grid {
		c := c
		jobs[i] = vlasov6d.BatchJob{
			Name:  fmt.Sprintf("%s@%dx%d", c.scheme, c.nx, c.nv),
			Until: *until,
			New: func() (vlasov6d.Solver, error) {
				s, err := vlasov6d.NewPlasmaSolverWithScheme(c.nx, c.nv, 2*math.Pi/(*k), 8, c.scheme)
				if err != nil {
					return nil, err
				}
				s.LandauInit(*alpha, *k, 1)
				return s, nil
			},
			Opts: []vlasov6d.RunOption{
				vlasov6d.WithAsyncObserver(c.observe, vlasov6d.WithAsyncBuffer(256)),
			},
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	batchOpts := []vlasov6d.BatchOption{
		vlasov6d.WithBatchNotify(func(u vlasov6d.BatchUpdate) {
			switch u.Status {
			case vlasov6d.JobRunning:
				log.Printf("%-18s running", u.Name)
			case vlasov6d.JobDone:
				log.Printf("%-18s done in %6.2fs (%d steps, stop: %v)",
					u.Name, u.Report.Wall.Seconds(), u.Report.Steps, u.Report.Reason)
			case vlasov6d.JobFailed:
				log.Printf("%-18s FAILED: %v", u.Name, u.Err)
			case vlasov6d.JobCancelled:
				log.Printf("%-18s cancelled", u.Name)
			}
		}),
	}
	if *workers > 0 {
		batchOpts = append(batchOpts, vlasov6d.WithBatchWorkers(*workers))
	}
	if *wall > 0 {
		batchOpts = append(batchOpts, vlasov6d.WithBatchWallClock(*wall))
	}

	start := time.Now()
	results, err := vlasov6d.RunBatch(ctx, jobs, batchOpts...)
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %9s %10s %10s %8s  %s\n",
		"scheme", "NX×NV", "γ fit", "γ theory", "err %", "status")
	for i, r := range results {
		c := grid[i]
		label := fmt.Sprintf("%d×%d", c.nx, c.nv)
		if r.Status != vlasov6d.JobDone || c.fit.Peaks() < 3 {
			fmt.Printf("%-12s %9s %10s %10.4f %8s  %s\n",
				c.scheme, label, "—", theory, "—", r.Status)
			continue
		}
		gamma := c.fit.Gamma()
		errPct := 100 * math.Abs(gamma-theory) / math.Abs(theory)
		fmt.Printf("%-12s %9s %10.4f %10.4f %8.1f  %s\n",
			c.scheme, label, gamma, theory, errPct, r.Status)
	}
	fmt.Printf("\nsweep finished in %.2fs wall\n", time.Since(start).Seconds())
	if ctx.Err() != nil {
		os.Exit(1)
	}
}

// parseRes parses "NXxNV" (e.g. "64x128").
func parseRes(s string) (nx, nv int, err error) {
	parts := strings.Split(strings.TrimSpace(s), "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("resolution %q is not NXxNV", s)
	}
	if nx, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, fmt.Errorf("resolution %q: %w", s, err)
	}
	if nv, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, fmt.Errorf("resolution %q: %w", s, err)
	}
	return nx, nv, nil
}
