// Example client: the remote half of simulation-as-a-service. It talks to
// a running vlasovd daemon over plain HTTP — no import of the simulation
// code at all, which is the point: the scenario catalog and the JSON job
// language make every workload submittable from anywhere.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/vlasovd -addr :8080 &
//	go run ./examples/client -addr http://localhost:8080
//
// Against a daemon started with -keys, pass the tenant's bearer key via
// -token; every request then carries "Authorization: Bearer <token>". The
// client explains 401/403/429 responses in plain language and, when a
// submission is rate-limited (429) or hits the drain window (503), honours
// the Retry-After header and retries a bounded number of times.
//
// The client submits a scheme × resolution grid of Landau-damping jobs
// (the same campaign cmd/sweep runs in-process), tails the live SSE
// diagnostics of one of them, polls until the whole grid is terminal, and
// prints the final table plus the daemon's metrics.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

type submitResp struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

type jobStatus struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	Status  string `json:"status"`
	Attempt int    `json:"attempt"`
	Error   string `json:"error"`
	Report  *struct {
		Steps       int     `json:"steps"`
		Clock       float64 `json:"clock"`
		WallSeconds float64 `json:"wall_seconds"`
		Reason      string  `json:"reason"`
		Checkpoints int     `json:"checkpoints"`
	} `json:"report"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("client: ")
	var (
		addr    = flag.String("addr", "http://localhost:8080", "vlasovd base URL")
		schemes = flag.String("schemes", "slmpp5,mp5", "advection schemes to submit")
		res     = flag.String("res", "16x32,32x64", "NXxNV resolutions to submit")
		until   = flag.Float64("until", 10, "integration time ω_p·t")
		tok     = flag.String("token", "", "tenant bearer key for a daemon started with -keys (empty = anonymous)")
		reload  = flag.Bool("reload", false, "POST /v1/admin/reload (hot key-file reload; -token must be an admin tenant's key) and exit")
		traceID = flag.Int("trace", -1, "fetch /v1/jobs/{id}/trace, print the job's lifecycle span timeline, and exit")
	)
	flag.Parse()
	base := strings.TrimRight(*addr, "/")
	token = *tok

	if *reload {
		// The operator path: ask the daemon to re-read its key file. A 403
		// means the token's tenant lacks "admin": true; a 422 means the new
		// file failed validation and the old keys are still live.
		resp, err := do(http.MethodPost, base+"/v1/admin/reload", nil)
		if err != nil {
			log.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatal(explain(resp.StatusCode, raw))
		}
		var out struct {
			Tenants int `json:"tenants"`
		}
		json.Unmarshal(raw, &out)
		log.Printf("key file reloaded: %d tenants live", out.Tenants)
		return
	}

	if *traceID >= 0 {
		if err := printTrace(base, *traceID); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Submit the grid: one JSON spec per scheme × resolution cell.
	var ids []int
	for _, sc := range strings.Split(*schemes, ",") {
		for _, rs := range strings.Split(*res, ",") {
			var nx, nv int
			if _, err := fmt.Sscanf(strings.TrimSpace(rs), "%dx%d", &nx, &nv); err != nil {
				log.Fatalf("resolution %q: %v", rs, err)
			}
			spec := map[string]any{
				"scenario": "landau",
				"params":   map[string]any{"scheme": strings.TrimSpace(sc), "nx": nx, "nv": nv},
				"until":    *until,
				// Small grids first, exactly like cmd/sweep.
				"priority": -nx * nv,
			}
			body, _ := json.Marshal(spec)
			sub, err := submit(base, body)
			if err != nil {
				log.Fatalf("submit %s@%s: %v", sc, rs, err)
			}
			log.Printf("submitted #%d %s", sub.ID, sub.Name)
			ids = append(ids, sub.ID)
		}
	}

	// Tail the first job's live diagnostics over SSE while the grid runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		tailDiagnostics(base, ids[0])
	}()

	// Poll the grid to completion.
	final := make(map[int]jobStatus, len(ids))
	for len(final) < len(ids) {
		for _, id := range ids {
			if _, ok := final[id]; ok {
				continue
			}
			st, err := getStatus(base, id)
			if err != nil {
				log.Fatalf("poll #%d: %v", id, err)
			}
			switch st.Status {
			case "done", "failed", "cancelled":
				final[id] = st
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	<-done

	fmt.Printf("\n%-28s %-10s %8s %10s %8s\n", "job", "status", "steps", "clock", "wall s")
	for _, id := range ids {
		st := final[id]
		if st.Report == nil {
			fmt.Printf("%-28s %-10s %8s %10s %8s  %s\n", st.Name, st.Status, "—", "—", "—", st.Error)
			continue
		}
		fmt.Printf("%-28s %-10s %8d %10.3f %8.2f\n",
			st.Name, st.Status, st.Report.Steps, st.Report.Clock, st.Report.WallSeconds)
	}

	// The daemon's counters after the campaign.
	resp, err := get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\ndaemon metrics:\n%s", metrics)
}

// token is the bearer key every request carries when non-empty (-token).
var token string

// do sends one request with the Authorization header applied.
func do(method, url string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	return http.DefaultClient.Do(req)
}

func get(url string) (*http.Response, error) { return do(http.MethodGet, url, nil) }

// explain turns the daemon's auth/quota failures into actionable messages;
// other statuses fall through to the raw body.
func explain(status int, raw []byte) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		msg = body.Error
	}
	switch status {
	case http.StatusUnauthorized:
		return fmt.Errorf("401 unauthorized: %s (daemon runs with -keys; pass your tenant key via -token)", msg)
	case http.StatusForbidden:
		return fmt.Errorf("403 forbidden: %s (that job belongs to another tenant)", msg)
	case http.StatusTooManyRequests:
		return fmt.Errorf("429 quota exceeded: %s", msg)
	default:
		return fmt.Errorf("status %d: %s", status, msg)
	}
}

// retryAfter parses the Retry-After header (delta-seconds form), with a
// floor of one second and a fallback when absent or unparsable.
func retryAfter(h http.Header) time.Duration {
	if s, err := strconv.Atoi(strings.TrimSpace(h.Get("Retry-After"))); err == nil && s >= 1 {
		return time.Duration(s) * time.Second
	}
	return time.Second
}

// submit posts one job spec, honouring Retry-After on 429 (quota/rate
// limit) and 503 (drain) for a bounded number of attempts.
func submit(base string, body []byte) (submitResp, error) {
	var sub submitResp
	for attempt := 1; ; attempt++ {
		resp, err := do(http.MethodPost, base+"/v1/jobs", strings.NewReader(string(body)))
		if err != nil {
			return sub, err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			return sub, json.Unmarshal(raw, &sub)
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if attempt >= 5 {
				return sub, fmt.Errorf("gave up after %d attempts: %w", attempt, explain(resp.StatusCode, raw))
			}
			wait := retryAfter(resp.Header)
			log.Printf("submit: %v — retrying in %v", explain(resp.StatusCode, raw), wait)
			time.Sleep(wait)
		default:
			return sub, explain(resp.StatusCode, raw)
		}
	}
}

// getStatus fetches one job's status document.
func getStatus(base string, id int) (jobStatus, error) {
	var st jobStatus
	resp, err := get(fmt.Sprintf("%s/v1/jobs/%d", base, id))
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return st, explain(resp.StatusCode, raw)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// tailDiagnostics streams one job's SSE diagnostics to the log until the
// terminal "done" event, printing every ~20th step. The daemon stamps each
// event with an `id:` line; the client remembers the last one it saw and,
// when the connection drops mid-run, reconnects with Last-Event-ID so the
// daemon replays the missed window from the job's ring — no event is seen
// twice and none is silently skipped (an evicted window arrives as an
// explicit "gap" event instead).
func tailDiagnostics(base string, id int) {
	var lastEventID string
	lastPrinted := -20
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Second)
			log.Printf("#%d reconnecting diagnostics (Last-Event-ID %s)", id, lastEventID)
		}
		req, err := http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/v1/jobs/%d/diagnostics", base, id), nil)
		if err != nil {
			log.Printf("diagnostics #%d: %v", id, err)
			return
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		if lastEventID != "" {
			req.Header.Set("Last-Event-ID", lastEventID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Printf("diagnostics #%d: %v", id, err)
			continue
		}
		terminal := tailOnce(resp.Body, id, &lastEventID, &lastPrinted)
		resp.Body.Close()
		if terminal {
			return
		}
	}
}

// tailOnce consumes one SSE connection, tracking the resume cursor, and
// reports whether the terminal event arrived (true = stop reconnecting).
func tailOnce(body io.Reader, id int, lastEventID *string, lastPrinted *int) bool {
	scanner := bufio.NewScanner(body)
	var event string
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "id: ") {
			*lastEventID = strings.TrimPrefix(line, "id: ")
			continue
		}
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		data := strings.TrimPrefix(line, "data: ")
		switch event {
		case "diag":
			var d struct {
				Step        int     `json:"step"`
				Clock       float64 `json:"clock"`
				FieldEnergy float64 `json:"field_energy"`
			}
			if json.Unmarshal([]byte(data), &d) == nil && d.Step >= *lastPrinted+20 {
				log.Printf("#%d step %5d  t = %7.3f  E² = %.3e", id, d.Step, d.Clock, d.FieldEnergy)
				*lastPrinted = d.Step
			}
		case "gap":
			log.Printf("#%d gap: %s", id, data)
		case "status":
			log.Printf("#%d %s", id, data)
		case "done":
			log.Printf("#%d terminal: %s", id, data)
			return true
		}
	}
	return false
}

// printTrace fetches one job's lifecycle trace and renders it as a
// timeline: each span's name, offset from the trace start, duration, and
// attributes — "where did this job's wall clock go", answered from the
// daemon's own records (live or archived).
func printTrace(base string, id int) error {
	resp, err := get(fmt.Sprintf("%s/v1/jobs/%d/trace", base, id))
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return explain(resp.StatusCode, raw)
	}
	var doc struct {
		ID       int  `json:"id"`
		Archived bool `json:"archived"`
		Spans    []struct {
			Name            string            `json:"name"`
			StartUnixNano   int64             `json:"start_unix_nano"`
			EndUnixNano     int64             `json:"end_unix_nano"`
			DurationSeconds float64           `json:"duration_seconds"`
			Open            bool              `json:"open"`
			Attrs           map[string]string `json:"attrs"`
		} `json:"spans"`
		DroppedSpans int64 `json:"dropped_spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("trace for job %d: %w", id, err)
	}
	label := "live"
	if doc.Archived {
		label = "archived"
	}
	log.Printf("trace for job #%d (%s): %d spans, %d dropped", doc.ID, label, len(doc.Spans), doc.DroppedSpans)
	if len(doc.Spans) == 0 {
		return nil
	}
	t0 := doc.Spans[0].StartUnixNano
	for _, sp := range doc.Spans {
		if t0 > sp.StartUnixNano {
			t0 = sp.StartUnixNano
		}
	}
	for _, sp := range doc.Spans {
		offset := float64(sp.StartUnixNano-t0) / 1e9
		dur := "open"
		if !sp.Open {
			dur = fmt.Sprintf("%.6fs", sp.DurationSeconds)
		}
		attrs := ""
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, k+"="+sp.Attrs[k])
			}
			attrs = "  " + strings.Join(parts, " ")
		}
		log.Printf("  +%10.6fs  %-14s %10s%s", offset, sp.Name, dur, attrs)
	}
	return nil
}
