// Distributed: the §5.1.3 parallelisation demonstrated live. The phase-space
// grid is decomposed 2×2×1 across four in-process "MPI" ranks, each rank
// kicks its velocity cubes locally (no communication — velocity space is
// never decomposed), and position drifts exchange three ghost planes per
// axis. The run verifies bit-faithful agreement with the serial solver and
// reports the communication volume actually exchanged.
//
// Threading follows the paper's fixed-partition accounting (Table 2's
// Nodes × ProcsPerNode grid with a fixed thread count per process) through
// a CoreBudget: the serial reference leases the whole machine while it is
// the only live work, then the four ranks lease the same budget
// concurrently and split it — process-level and thread-level parallelism
// composing to the machine size instead of each rank assuming it owns all
// of GOMAXPROCS. The worker count never changes the physics (lines are
// independent), so the bit-faithfulness check also covers the budget path.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"vlasov6d"
	"vlasov6d/internal/decomp"
	"vlasov6d/internal/mpisim"
	"vlasov6d/internal/phase"
	"vlasov6d/internal/vlasov"
)

const (
	boxL   = 100.0
	nGlob  = 12
	nu     = 8
	umax   = 2500.0
	dtStep = 0.0015
)

func fill(g *phase.Grid, ox, oy float64) {
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		w := 1 + 0.4*math.Sin(2*math.Pi*(x+ox)/boxL)*math.Cos(2*math.Pi*(y+oy)/boxL)
		return w * math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*800*800))
	})
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	// One CPU budget for the whole process, GOMAXPROCS cores: every phase
	// of the demo leases its threads from it instead of assuming it owns
	// the machine.
	budget := vlasov6d.NewCoreBudget(0)

	// Serial reference: the only live lease, so it holds every core.
	gs, err := phase.New(nGlob, nGlob, nGlob, [3]int{nu, nu, nu},
		[3]float64{boxL, boxL, boxL}, umax)
	if err != nil {
		log.Fatal(err)
	}
	serialLease, err := budget.Acquire(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	serialWorkers := serialLease.Workers()
	gs.SetWorkers(serialWorkers)
	fill(gs, 0, 0)
	vs, err := vlasov.New(gs, "slmpp5")
	if err != nil {
		log.Fatal(err)
	}
	vs.SetWorkers(serialWorkers)
	if err := vs.Drift(dtStep, 1.0); err != nil {
		log.Fatal(err)
	}
	ref := gs.ComputeMoments()
	serialLease.Release()

	// Distributed run: 4 ranks on a 2×2×1 process grid splitting the cores
	// the serial phase just returned. The rank leases are acquired as one
	// atomic group (AcquireAll): ranks synchronise with each other inside
	// the drift's ghost exchange, so none of them may start computing —
	// let alone block a neighbour — before every rank holds its share.
	rankLeases, err := budget.AcquireAll(ctx, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	world, err := mpisim.NewWorld(4)
	if err != nil {
		log.Fatal(err)
	}
	cart, err := mpisim.NewCart(4, [3]int{2, 2, 1})
	if err != nil {
		log.Fatal(err)
	}
	var rho []float64
	var mass float64
	rankWorkers := make([]int, 4)
	err = world.Run(func(c *mpisim.Comm) error {
		lease := rankLeases[c.Rank()]
		defer lease.Release()
		b, err := decomp.NewBlock(c, cart, [3]int{nGlob, nGlob, nGlob},
			[3]int{nu, nu, nu}, [3]float64{boxL, boxL, boxL}, umax)
		if err != nil {
			return err
		}
		rankWorkers[c.Rank()] = lease.Workers()
		b.G.SetWorkers(lease.Workers())
		fill(b.G, float64(b.GlobalOrigin(0))*b.G.DX(0), float64(b.GlobalOrigin(1))*b.G.DX(1))
		if err := b.Drift(dtStep, 1.0); err != nil {
			return err
		}
		m, err := b.GlobalMass()
		if err != nil {
			return err
		}
		d, err := b.GatherDensity()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			rho = d
			mass = m
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	worst := 0.0
	mean := 0.0
	for i := range rho {
		if d := math.Abs(rho[i] - ref.Density[i]); d > worst {
			worst = d
		}
		mean += ref.Density[i]
	}
	mean /= float64(len(rho))
	fmt.Printf("distributed Vlasov drift on 4 ranks (2×2×1), %d³ cells × %d³ velocities\n", nGlob, nu)
	fmt.Printf("  core budget            : %d cores; serial phase leased %d, rank shares %v\n",
		budget.Total(), serialWorkers, rankWorkers)
	fmt.Printf("  global mass            : %.6e (serial %.6e)\n", mass, gs.TotalMass())
	fmt.Printf("  worst density mismatch : %.3e of mean %.3e (%.1e relative)\n",
		worst, mean, worst/mean)
	fmt.Printf("  ghost traffic          : %.2f MiB in %d messages\n",
		float64(world.BytesSent())/(1<<20), world.MessagesSent())
	fmt.Printf("  velocity moments needed ZERO communication — the §5.1.3 design point\n")
}
