package serve

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// traceSpanNames fetches a job's trace and returns the span-name multiset
// plus the decoded document.
func traceSpanNames(t *testing.T, base string, id int) (map[string]int, map[string]any) {
	t.Helper()
	code, body := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d/trace", base, id))
	if code != http.StatusOK {
		t.Fatalf("trace %d: %d %v", id, code, body)
	}
	names := make(map[string]int)
	spans, _ := body["spans"].([]any)
	for _, raw := range spans {
		sp, _ := raw.(map[string]any)
		name, _ := sp["name"].(string)
		names[name]++
	}
	return names, body
}

// TestTraceLifecycle is the tentpole proof: a job's trace covers every
// phase of its life — admission, queue wait, dispatch, the running
// segment, checkpoint writes — while live, and the identical timeline
// survives history eviction via the artifact index.
func TestTraceLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Workers:         1,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 10,
		StoreDir:        t.TempDir(),
		History:         1, // second terminal job evicts the first
	})
	defer srv.Close()

	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","name":"traced","until":0.5,"fixed_dt":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	pollStatus(t, ts.URL, id, "done")

	names, doc := traceSpanNames(t, ts.URL, id)
	for _, want := range []string{"admission", "queue", "dispatch", "run", "checkpoint"} {
		if names[want] == 0 {
			t.Fatalf("live trace missing %q span: %v", want, names)
		}
	}
	if doc["archived"] != nil {
		t.Fatalf("live trace marked archived: %v", doc["archived"])
	}
	if dropped := doc["dropped_spans"].(float64); dropped != 0 {
		t.Fatalf("live trace dropped %v spans", dropped)
	}
	liveSpans := len(doc["spans"].([]any))

	// The run span must be closed (the job is terminal) and carry the
	// attempt attribute; the checkpoint spans carry the snapshot clock.
	for _, raw := range doc["spans"].([]any) {
		sp := raw.(map[string]any)
		if sp["open"] == true {
			t.Fatalf("terminal job has open span: %v", sp)
		}
		attrs, _ := sp["attrs"].(map[string]any)
		switch sp["name"] {
		case "run":
			if attrs["attempt"] == nil {
				t.Fatalf("run span missing attempt attr: %v", sp)
			}
		case "checkpoint":
			if attrs["clock"] == nil {
				t.Fatalf("checkpoint span missing clock attr: %v", sp)
			}
		}
	}

	// A second terminal job evicts the first from live history
	// (History: 1); its trace must come back unchanged from the index.
	code, body = postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","name":"evictor","until":0.1,"fixed_dt":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit evictor: %d %v", code, body)
	}
	pollStatus(t, ts.URL, int(body["id"].(float64)), "done")

	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		_, live := srv.jobs[id]
		srv.mu.Unlock()
		if !live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never evicted from live history")
		}
		time.Sleep(10 * time.Millisecond)
	}

	archivedNames, archivedDoc := traceSpanNames(t, ts.URL, id)
	if archivedDoc["archived"] != true {
		t.Fatalf("evicted trace not marked archived: %v", archivedDoc["archived"])
	}
	for _, want := range []string{"admission", "queue", "dispatch", "run", "checkpoint"} {
		if archivedNames[want] == 0 {
			t.Fatalf("archived trace missing %q span: %v", want, archivedNames)
		}
	}
	if got := len(archivedDoc["spans"].([]any)); got != liveSpans {
		t.Fatalf("archived trace has %d spans, live had %d", got, liveSpans)
	}
}

// TestArchivedListing pins the ?archived=1 satellite: finished jobs stay
// listable from the artifact index after live-history eviction, scoped to
// the requesting tenant.
func TestArchivedListing(t *testing.T) {
	storeDir := t.TempDir()
	keysPath := storeDir + "/keys.json"
	reg := writeKeys(t, keysPath, `{"tenants": [
		{"name": "alice", "key": "alice-key"},
		{"name": "bob", "key": "bob-key"}
	]}`)
	srv, ts := newTestServer(t, Config{
		Workers:  1,
		StoreDir: storeDir,
		Tenants:  reg,
		KeysPath: keysPath,
		History:  1,
	})
	defer srv.Close()

	submit := func(key, name string) int {
		code, _, body := authJSON(t, http.MethodPost, ts.URL+"/v1/jobs", key,
			fmt.Sprintf(`{"scenario":"landau","name":%q,"until":0.1,"fixed_dt":0.01}`, name))
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %v", name, code, body)
		}
		id := int(body["id"].(float64))
		pollStatusAuth(t, ts.URL, id, key, "done")
		return id
	}
	aliceID := submit("alice-key", "alice-job")
	submit("bob-key", "bob-job")

	code, _, body := authJSON(t, http.MethodGet, ts.URL+"/v1/jobs?archived=1", "alice-key", "")
	if code != http.StatusOK {
		t.Fatalf("archived listing: %d %v", code, body)
	}
	jobs, _ := body["jobs"].([]any)
	if len(jobs) != 1 {
		t.Fatalf("alice sees %d archived jobs, want exactly her own: %v", len(jobs), body)
	}
	entry := jobs[0].(map[string]any)
	if int(entry["id"].(float64)) != aliceID || entry["archived"] != true {
		t.Fatalf("archived entry wrong: %v", entry)
	}

	// Without a store there is no index to list.
	srv2, ts2 := newTestServer(t, Config{Workers: 1})
	defer srv2.Close()
	if code, body := getJSON(t, ts2.URL+"/v1/jobs?archived=1"); code != http.StatusNotFound {
		t.Fatalf("archived listing without store: %d %v", code, body)
	}
}

// TestMetricsHistograms pins the exposition shape of the four latency
// histogram families after real work flowed: HELP/TYPE annotations,
// cumulative buckets ending at +Inf, and _count equal to the +Inf bucket.
func TestMetricsHistograms(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Workers:         1,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 10,
	})
	defer srv.Close()

	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","name":"measured","until":0.5,"fixed_dt":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	pollStatus(t, ts.URL, int(body["id"].(float64)), "done")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)

	families := []string{
		"vlasovd_queue_wait_seconds",
		"vlasovd_dispatch_latency_seconds",
		"vlasovd_step_duration_seconds",
		"vlasovd_checkpoint_write_seconds",
	}
	for _, fam := range families {
		if !strings.Contains(text, "# TYPE "+fam+" histogram") {
			t.Fatalf("missing TYPE line for %s", fam)
		}
		if !strings.Contains(text, "# HELP "+fam+" ") {
			t.Fatalf("missing HELP line for %s", fam)
		}
		var lastBucket, count int64 = -1, -1
		var infBucket int64 = -1
		sawSum := false
		for _, line := range strings.Split(text, "\n") {
			switch {
			case strings.HasPrefix(line, fam+"_bucket{le=\""):
				rest := strings.TrimPrefix(line, fam+"_bucket{le=\"")
				i := strings.Index(rest, "\"} ")
				if i < 0 {
					t.Fatalf("unparsable bucket line %q", line)
				}
				v, err := strconv.ParseInt(rest[i+3:], 10, 64)
				if err != nil {
					t.Fatalf("bucket value in %q: %v", line, err)
				}
				if v < lastBucket {
					t.Fatalf("%s buckets not cumulative: %q after %d", fam, line, lastBucket)
				}
				lastBucket = v
				if rest[:i] == "+Inf" {
					infBucket = v
				}
			case strings.HasPrefix(line, fam+"_sum "):
				sawSum = true
			case strings.HasPrefix(line, fam+"_count "):
				count, _ = strconv.ParseInt(strings.TrimPrefix(line, fam+"_count "), 10, 64)
			}
		}
		if !sawSum || infBucket < 0 || count < 0 {
			t.Fatalf("%s incomplete exposition (sum %v, +Inf %d, count %d)", fam, sawSum, infBucket, count)
		}
		if count != infBucket {
			t.Fatalf("%s count %d != +Inf bucket %d", fam, count, infBucket)
		}
		if count == 0 {
			t.Fatalf("%s recorded no observations after a completed job", fam)
		}
	}
}

// readSSEEvents reads SSE frames until fn says stop, returning the last
// event id seen.
func readSSEEvents(t *testing.T, body io.Reader, fn func(id int64, event, data string) bool) int64 {
	t.Helper()
	scanner := bufio.NewScanner(body)
	var event string
	var id, lastID int64
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id, _ = strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if id > 0 {
				lastID = id
			}
			if !fn(id, event, strings.TrimPrefix(line, "data: ")) {
				return lastID
			}
			id = 0
		}
	}
	return lastID
}

// TestEventSchemaStamped pins the SSE contract satellite: every event
// payload the daemon emits carries "schema":"v1".
func TestEventSchemaStamped(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	defer srv.Close()

	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","name":"schema","until":0.2,"fixed_dt":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/diagnostics", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	checked := 0
	readSSEEvents(t, resp.Body, func(_ int64, event, data string) bool {
		if !strings.Contains(data, `"schema":"v1"`) {
			t.Fatalf("%s event without schema stamp: %s", event, data)
		}
		checked++
		return event != "done"
	})
	if checked < 3 {
		t.Fatalf("only %d events observed", checked)
	}
}

// TestRingSequenceContinuesAcrossRestart pins the restart-reset fix: event
// sequence numbers journaled per job mean a daemon restart continues a
// recovered job's numbering past the reservation instead of restarting at
// 1 — a resuming client keeps its cursor and is told about the (bounded)
// gap explicitly.
func TestRingSequenceContinuesAcrossRestart(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	srv, ts := newTestServer(t, Config{
		Workers:         1,
		CheckpointDir:   ckptDir,
		CheckpointEvery: 10,
		StoreDir:        storeDir,
	})

	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"scenario":"landau","name":"reborn","until":1000,"fixed_dt":0.01}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := int(body["id"].(float64))
	pollStatus(t, ts.URL, id, "running")

	// Read a few live events to establish a client cursor.
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/diagnostics", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	cursor := readSSEEvents(t, resp.Body, func(evID int64, _, _ string) bool {
		if evID > 0 {
			seen++
		}
		return seen < 5
	})
	resp.Body.Close()
	if cursor < 1 {
		t.Fatalf("no event ids observed before restart (cursor %d)", cursor)
	}

	// SIGKILL-equivalent restart over the same store.
	srv.Close()
	srv2, ts2 := newTestServer(t, Config{
		Workers:         1,
		CheckpointDir:   ckptDir,
		CheckpointEvery: 10,
		StoreDir:        storeDir,
	})
	defer srv2.Close()
	pollStatus(t, ts2.URL, id, "running", "done")

	// Resume with the pre-restart cursor: the new life's sequence numbers
	// must continue past it (no reset to 1), and the missed window is an
	// explicit ring gap, not a "reset" (which would mean the cursor did
	// not resolve against this ring's numbering).
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%d/diagnostics?last_event_id=%d", ts2.URL, id, cursor))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var firstID int64
	sawReset := false
	readSSEEvents(t, resp.Body, func(evID int64, event, data string) bool {
		if event == "gap" && strings.Contains(data, `"source":"reset"`) {
			sawReset = true
			return false
		}
		if evID > 0 {
			firstID = evID
			return false
		}
		return true
	})
	if sawReset {
		t.Fatalf("restart produced a cursor reset; sequences should continue via the journaled reservation")
	}
	if firstID <= cursor {
		t.Fatalf("post-restart event id %d not past pre-restart cursor %d", firstID, cursor)
	}
	if firstID <= eventSeqReserveBlock {
		t.Fatalf("post-restart id %d inside the first reservation block; ring did not continue from the journal", firstID)
	}
}

// TestPprofAdminGate pins the profiling satellite: /v1/admin/pprof/ serves
// profiles to admin tenants only — 200 for ops, 403 for a plain tenant,
// 401 unauthenticated, 404 in open mode (no admin surface exists).
func TestPprofAdminGate(t *testing.T) {
	keysPath := t.TempDir() + "/keys.json"
	reg := writeKeys(t, keysPath, `{"tenants": [
		{"name": "ops", "key": "ops-key", "admin": true},
		{"name": "alice", "key": "alice-key"}
	]}`)
	srv, ts := newTestServer(t, Config{Workers: 1, Tenants: reg, KeysPath: keysPath})
	defer srv.Close()

	get := func(token string) int {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/admin/pprof/heap?debug=1", nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("ops-key"); code != http.StatusOK {
		t.Fatalf("admin pprof: %d", code)
	}
	if code := get("alice-key"); code != http.StatusForbidden {
		t.Fatalf("non-admin pprof: %d, want 403", code)
	}
	if code := get(""); code != http.StatusUnauthorized {
		t.Fatalf("anonymous pprof: %d, want 401", code)
	}

	srvOpen, tsOpen := newTestServer(t, Config{Workers: 1})
	defer srvOpen.Close()
	resp, err := http.Get(tsOpen.URL + "/v1/admin/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("open-mode pprof: %d, want 404", resp.StatusCode)
	}
}
