// Quickstart: a minimal hybrid Vlasov/N-body run through the public API —
// the smallest simulation that exercises the full pipeline (6D neutrino
// grid + TreePM dark matter + shared potential) and prints physically
// meaningful output: growth of structure and conservation checks.
package main

import (
	"context"
	"fmt"
	"log"

	"vlasov6d"
)

func main() {
	log.SetFlags(0)
	cfg := vlasov6d.Config{
		Par:       vlasov6d.Planck2015(0.4), // ΣMν = 0.4 eV
		Box:       200,                      // h⁻¹Mpc
		NGrid:     8,                        // 8³ spatial cells
		NU:        8,                        // 8³ velocity cells per spatial cell
		NPartSide: 8,                        // 8³ CDM particles
		Seed:      42,
	}
	// Start at z = 10, as the paper's end-to-end runs do; the options make
	// the remaining knobs explicit instead of relying on zero-value magic.
	sim, err := vlasov6d.NewSimulation(cfg, 1.0/11, vlasov6d.WithPMFactor(2))
	if err != nil {
		log.Fatal(err)
	}
	nu0, cdm0 := sim.TotalMass()
	fmt.Printf("initial state: z = %.1f, fν = %.4f\n", sim.Redshift(), cfg.Par.FNu())
	fmt.Printf("  ν mass %.4e, CDM mass %.4e (10¹⁰ h⁻¹ M_sun)\n", nu0, cdm0)

	// Drive to z = 4 through the unified runner: every solver in the
	// package runs under this same loop.
	rep, err := vlasov6d.Run(context.Background(), sim, 0.2,
		vlasov6d.WithMaxSteps(100000),
		vlasov6d.WithObserver(func(step int, s vlasov6d.Solver) error {
			if (step+1)%10 == 0 {
				fmt.Printf("  step %3d: z = %5.2f\n", step+1, 1/s.Clock()-1)
			}
			return nil
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runner stopped on %q after %d steps\n", rep.Reason, rep.Steps)

	nu1, _ := sim.TotalMass()
	m := sim.Grid.ComputeMoments()
	mn, mx := m.Density[0], m.Density[0]
	for _, v := range m.Density {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	fmt.Printf("\nfinal state: z = %.2f after %d steps (%.1fs wall)\n",
		sim.Redshift(), rep.Steps, rep.Wall.Seconds())
	fmt.Printf("  ν mass conservation: drift %+.2e (boundary loss %.2e)\n",
		(nu1+sim.VSol.BoundaryLoss-nu0)/nu0, sim.VSol.BoundaryLoss/nu0)
	fmt.Printf("  ν density contrast range: %.4f – %.4f of mean\n",
		mn/sim.Cosmo().MeanNuDensity(), mx/sim.Cosmo().MeanNuDensity())
	fmt.Printf("  (neutrinos stay smooth — the free-streaming signature of Fig. 4)\n")
}
