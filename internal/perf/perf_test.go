package perf

import "testing"

// TestSuiteShape pins structural invariants of the suite: unique names,
// buildable workloads, and a working first op for every spec.
func TestSuiteShape(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Suite() {
		if seen[s.Name] {
			t.Fatalf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		op, bytes, err := s.New()
		if err != nil {
			t.Fatalf("%s: New: %v", s.Name, err)
		}
		if bytes < 0 {
			t.Fatalf("%s: negative bytes %d", s.Name, bytes)
		}
		if err := op(); err != nil {
			t.Fatalf("%s: op: %v", s.Name, err)
		}
	}
	if _, err := Find("kernel/sweep/uz/lat"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("no/such/bench"); err == nil {
		t.Fatal("Find accepted an unknown name")
	}
}

// TestSteadySpecsZeroAlloc is the allocation gate: every spec that claims
// the steady-state contract must run allocation-free once warmed. This is
// the same check `cmd/bench -check-allocs` applies in CI.
func TestSteadySpecsZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state sampling is slow")
	}
	for _, s := range Suite() {
		if !s.Steady {
			continue
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			allocs, err := s.SteadyAllocs()
			if err != nil {
				t.Fatal(err)
			}
			if allocs != 0 {
				t.Fatalf("steady-state %s allocates %.1f allocs/op, want 0", s.Name, allocs)
			}
		})
	}
}

// BenchmarkSuite exposes every spec under `go test -bench`, e.g.
//
//	go test -bench 'Suite/kernel' -benchmem ./internal/perf
func BenchmarkSuite(b *testing.B) {
	for _, s := range Suite() {
		b.Run(s.Name, s.Bench)
	}
}
