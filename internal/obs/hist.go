// The histogram half of the observability core: fixed-bucket,
// Prometheus-shaped, and entirely atomic. The control plane's old /metrics
// surface exported totals (jobs completed, steps observed) — enough to
// plot throughput, useless for "how long does a checkpoint write take at
// the p99". A Histogram keeps the full distribution at fixed cost: one
// atomic add into the right bucket, one atomic add on the count, one CAS
// loop folding the value into the float sum. Observe is safe from any
// goroutine — including the runner's hot step loop — with no lock and no
// allocation.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram exposed in the Prometheus text
// format: cumulative `_bucket{le="…"}` samples, `_sum` and `_count`.
// Construct with NewHistogram; the bucket layout is immutable afterwards
// (Prometheus requires a stable series set across scrapes).
type Histogram struct {
	name, help string
	upper      []float64 // sorted upper bounds; +Inf is implicit
	counts     []atomic.Int64
	count      atomic.Int64
	sumBits    atomic.Uint64 // float64 bits, CAS-updated
}

// DurationBuckets is the shared bucket layout for the daemon's latency
// families: 100 µs to 5 minutes in roughly ×2.5 steps, wide enough that
// one layout serves per-step durations (sub-millisecond on small grids),
// checkpoint writes (milliseconds), dispatch latencies (construction can
// take seconds) and queue waits (minutes on a saturated daemon).
func DurationBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
	}
}

// NewHistogram builds a histogram with the given sorted bucket upper
// bounds (the +Inf bucket is implicit and always present). Unsorted input
// is sorted; duplicate bounds are collapsed.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	dedup := upper[:0]
	for _, b := range upper {
		if math.IsInf(b, +1) {
			continue // +Inf is implicit
		}
		if len(dedup) == 0 || b > dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	upper = dedup
	return &Histogram{
		name:   name,
		help:   help,
		upper:  upper,
		counts: make([]atomic.Int64, len(upper)+1), // +1: the +Inf bucket
	}
}

// Name returns the metric family name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value. Safe for concurrent use from any goroutine;
// no locks, no allocation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bucket whose upper bound holds v; the
	// +Inf bucket (index len(upper)) catches everything past the last
	// bound. NaN observations are dropped — Prometheus has no bucket for
	// them and a poisoned sum would break every rate() over the family.
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the unit every *_seconds
// family exports.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// WriteProm writes the family in the Prometheus text exposition format
// (v0.0.4): # HELP, # TYPE histogram, cumulative _bucket samples ending in
// le="+Inf", then _sum and _count. Buckets are read newest-first so the
// cumulative counts are monotone within one exposition even while Observe
// runs concurrently; _count is taken from the +Inf bucket, which the
// format requires to equal it.
func (h *Histogram) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	// Snapshot the per-bucket counters once, then emit cumulatively: a
	// concurrent Observe between bucket reads could otherwise make the
	// running sum dip, which some scrapers reject.
	snap := make([]int64, len(h.counts))
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
	}
	cum := int64(0)
	for i, ub := range h.upper {
		cum += snap[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatBound(ub), cum)
	}
	cum += snap[len(snap)-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
}

// formatBound renders a bucket bound the way Prometheus conventionally
// writes them: shortest round-trip decimal ("0.005", not "5e-03").
func formatBound(b float64) string {
	return fmt.Sprintf("%v", b)
}
