package snapio

import (
	"bytes"
	"math/rand"
	"testing"

	"vlasov6d/internal/nbody"
	"vlasov6d/internal/phase"
)

func sampleSnapshot(t *testing.T, withGrid bool) *Snapshot {
	t.Helper()
	p, err := nbody.NewParticles(100, 2.5, [3]float64{50, 50, 50})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < p.N; i++ {
		for d := 0; d < 3; d++ {
			p.Pos[d][i] = rng.Float64() * 50
			p.Vel[d][i] = rng.NormFloat64() * 100
		}
	}
	s := &Snapshot{A: 0.5, Time: 0.0042, Part: p}
	if withGrid {
		g, err := phase.New(4, 4, 4, [3]int{6, 6, 6}, [3]float64{50, 50, 50}, 1000)
		if err != nil {
			t.Fatal(err)
		}
		for i := range g.Data {
			g.Data[i] = rng.Float32()
		}
		s.Grid = g
	}
	return s
}

func TestRoundTripWithGrid(t *testing.T) {
	s := sampleSnapshot(t, true)
	var buf bytes.Buffer
	n, err := Write(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.A != s.A || got.Time != s.Time {
		t.Fatal("scalars differ")
	}
	if got.Part.N != s.Part.N || got.Part.Mass != s.Part.Mass {
		t.Fatal("particle meta differs")
	}
	for d := 0; d < 3; d++ {
		for i := 0; i < s.Part.N; i++ {
			if got.Part.Pos[d][i] != s.Part.Pos[d][i] || got.Part.Vel[d][i] != s.Part.Vel[d][i] {
				t.Fatalf("particle %d dim %d differs", i, d)
			}
		}
	}
	if got.Grid == nil {
		t.Fatal("grid missing")
	}
	for i := range s.Grid.Data {
		if got.Grid.Data[i] != s.Grid.Data[i] {
			t.Fatalf("grid value %d differs", i)
		}
	}
	if got.Grid.UMax != s.Grid.UMax {
		t.Fatal("UMax differs")
	}
}

func TestRoundTripParticlesOnly(t *testing.T) {
	s := sampleSnapshot(t, false)
	var buf bytes.Buffer
	if _, err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grid != nil {
		t.Fatal("phantom grid appeared")
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := sampleSnapshot(t, true)
	var buf bytes.Buffer
	if _, err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the particle payload region.
	data := buf.Bytes()
	data[200] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("zero stream accepted")
	}
}

func TestTruncated(t *testing.T) {
	s := sampleSnapshot(t, false)
	var buf bytes.Buffer
	if _, err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(half)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func addNuParticles(t *testing.T, s *Snapshot) {
	t.Helper()
	nu, err := nbody.NewParticles(64, 0.125, s.Part.Box)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < nu.N; i++ {
		for d := 0; d < 3; d++ {
			nu.Pos[d][i] = rng.Float64() * 50
			nu.Vel[d][i] = rng.NormFloat64() * 2000 // thermal neutrinos are fast
		}
	}
	s.NuPart = nu
}

func TestRoundTripV2NuParticles(t *testing.T) {
	s := sampleSnapshot(t, false)
	addNuParticles(t, s)
	var buf bytes.Buffer
	n, err := Write(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	raw := append([]byte(nil), buf.Bytes()...)
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NuPart == nil || got.NuPart.N != s.NuPart.N || got.NuPart.Mass != s.NuPart.Mass {
		t.Fatalf("ν-particle meta lost: %+v", got.NuPart)
	}
	for d := 0; d < 3; d++ {
		for i := 0; i < s.NuPart.N; i++ {
			if got.NuPart.Pos[d][i] != s.NuPart.Pos[d][i] || got.NuPart.Vel[d][i] != s.NuPart.Vel[d][i] {
				t.Fatalf("ν particle %d dim %d differs", i, d)
			}
		}
	}
	// Re-serialisation is bit-identical, so checkpoint → restore →
	// checkpoint cycles are stable in v2 exactly as in v1.
	var buf2 bytes.Buffer
	if _, err := Write(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), raw) {
		t.Fatal("v2 re-serialisation not bit-identical")
	}
}

func TestV1FilesStayByteIdentical(t *testing.T) {
	// A snapshot without neutrino particles must produce the v1 magic and
	// layout, so files from earlier versions of the code keep reading and
	// new grid-mode files keep opening under v1-era readers.
	s := sampleSnapshot(t, true)
	var buf bytes.Buffer
	if _, err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	le := buf.Bytes()[:8]
	magic := uint64(le[0]) | uint64(le[1])<<8 | uint64(le[2])<<16 | uint64(le[3])<<24 |
		uint64(le[4])<<32 | uint64(le[5])<<40 | uint64(le[6])<<48 | uint64(le[7])<<56
	if magic != Magic {
		t.Fatalf("magic %#x, want v1 %#x for a NuPart-less snapshot", magic, uint64(Magic))
	}
}

func TestV2CorruptionInNuSectionDetected(t *testing.T) {
	s := sampleSnapshot(t, false)
	addNuParticles(t, s)
	var buf bytes.Buffer
	if _, err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte inside the ν section: past the header and the CDM
	// particle payload (100 particles × 6 × 8 bytes).
	idx := len(data) - 100
	data[idx] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("ν-section corruption not detected")
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := Write(&buf, &Snapshot{}); err == nil {
		t.Fatal("missing particles accepted")
	}
}

func TestProbe(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, sampleSnapshot(t, false)); err != nil {
		t.Fatal(err)
	}
	v, a, ok := Probe(bytes.NewReader(buf.Bytes()))
	if !ok || v != 1 || a != 0.5 {
		t.Fatalf("Probe(v1) = %d, %v, %v", v, a, ok)
	}
	// A v2 snapshot (ν-particle section present) probes as version 2.
	s := sampleSnapshot(t, false)
	nu, err := nbody.NewParticles(8, 0.1, [3]float64{50, 50, 50})
	if err != nil {
		t.Fatal(err)
	}
	s.NuPart = nu
	buf.Reset()
	if _, err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if v, _, ok := Probe(bytes.NewReader(buf.Bytes())); !ok || v != 2 {
		t.Fatalf("Probe(v2) = %d, %v", v, ok)
	}
	// Foreign bytes (a solver-private checkpoint) are not snapio's.
	if _, _, ok := Probe(bytes.NewReader([]byte("PLASMA-CKPT-FORMAT-0123456789"))); ok {
		t.Fatal("Probe accepted a non-snapio file")
	}
	// A file shorter than the header prefix is not ok rather than an error.
	if _, _, ok := Probe(bytes.NewReader(buf.Bytes()[:7])); ok {
		t.Fatal("Probe accepted a truncated prefix")
	}
}
