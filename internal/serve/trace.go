// The trace and profiling surface: per-job lifecycle timelines, the
// archived-job listing, and the admin-gated pprof endpoints.
//
// A job's trace is the per-job face of the paper's §7 time accounting:
// where TimeToSolution predicts how a run's wall clock divides across
// phases, the trace records how THIS job's wall clock actually divided —
// admission, queue wait, each dispatch attempt, each running segment,
// each checkpoint write, recovery after a restart. The trace follows the
// job through its whole afterlife: served from the live entry while the
// job is retained, and from the artifact index (where consumeResults
// snapshots it at terminal time) once the bounded history evicts it.
package serve

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strings"

	"vlasov6d/internal/obs"
	"vlasov6d/internal/tenant"
)

// handleTrace serves GET /v1/jobs/{id}/trace: the job's span timeline,
// tenant-scoped like every other per-job route. A live job shows open
// spans (end_unix_nano absent, "open": true); an evicted job serves the
// terminal snapshot from the artifact index with "archived": true.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	e, _, ie, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if ie != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"id":            ie.ID,
			"name":          ie.Name,
			"archived":      true,
			"spans":         spanDocs(ie.Trace),
			"dropped_spans": ie.TraceDropped,
		})
		return
	}
	spans, dropped := e.trace.Snapshot()
	s.mu.Lock()
	id := e.id
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":            id,
		"spans":         spanDocs(spans),
		"dropped_spans": dropped,
	})
}

// spanDocs renders spans for the wire: the JSON shape plus a derived
// duration and an explicit "open" marker, so clients don't have to infer
// in-flight phases from a zero end timestamp.
func spanDocs(spans []obs.Span) []map[string]any {
	out := make([]map[string]any, 0, len(spans))
	for _, sp := range spans {
		doc := map[string]any{
			"name":            sp.Name,
			"start_unix_nano": sp.StartUnixNano,
		}
		if sp.EndUnixNano == 0 {
			doc["open"] = true
		} else {
			doc["end_unix_nano"] = sp.EndUnixNano
			doc["duration_seconds"] = sp.DurationSeconds()
		}
		if len(sp.Attrs) > 0 {
			doc["attrs"] = sp.Attrs
		}
		out = append(out, doc)
	}
	return out
}

// handleListArchived serves GET /v1/jobs?archived=1: the tenant's finished
// jobs from the durable artifact index — everything the daemon ever
// completed under this store, including jobs evicted from live history and
// jobs finished by previous lives of the process.
func (s *Server) handleListArchived(w http.ResponseWriter, r *http.Request) {
	if s.index == nil {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("serve: no artifact index (daemon runs without a store directory)"))
		return
	}
	tn, authed := tenant.FromContext(r.Context())
	out := make([]map[string]any, 0)
	for _, ie := range s.index.Entries() {
		if authed && ie.Tenant != tn.Name {
			continue
		}
		ie := ie
		out = append(out, statusBodyIndex(&ie))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out, "archived": true})
}

// handlePprof exposes net/http/pprof under /v1/admin/pprof/, gated on the
// authenticated tenant's admin capability — the same gate as the key
// reload: profiles leak process internals no ordinary tenant should see.
// Open mode (no tenancy) has no admin surface, so the routes 404 there;
// run a tenancy-enabled daemon to profile it.
func (s *Server) handlePprof(w http.ResponseWriter, r *http.Request) {
	tn, authed := tenant.FromContext(r.Context())
	if !authed {
		writeErr(w, http.StatusNotFound, fmt.Errorf("serve: no tenancy configured"))
		return
	}
	if !tn.Admin {
		s.recordAdmission(tn.Name, "403", "admin capability required for /v1/admin/pprof", "", 0)
		writeErr(w, http.StatusForbidden, fmt.Errorf("serve: tenant %q is not an admin", tn.Name))
		return
	}
	suffix := strings.TrimPrefix(r.URL.Path, "/v1/admin/pprof/")
	switch suffix {
	case "cmdline":
		pprof.Cmdline(w, r)
	case "profile":
		pprof.Profile(w, r)
	case "symbol":
		pprof.Symbol(w, r)
	case "trace":
		pprof.Trace(w, r)
	default:
		// Index serves the listing and every named runtime profile (heap,
		// goroutine, block, …), keyed off the URL path — it expects the
		// /debug/pprof/ prefix, so hand it a shallow request clone with the
		// path rewritten rather than mutating the caller's request.
		r2 := new(http.Request)
		*r2 = *r
		r2.URL = new(url.URL)
		*r2.URL = *r.URL
		r2.URL.Path = "/debug/pprof/" + suffix
		pprof.Index(w, r2)
	}
}
