package vlasov

import (
	"math"
	"testing"

	"vlasov6d/internal/phase"
)

// TestStepSteadyStateZeroAlloc asserts the hot-loop contract: with one
// worker, a warmed-up 6D solver advances whole kick–drift–kick steps
// without allocating (pooled workers, cached CFL table, reused geometry).
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	g, err := phase.New(6, 6, 6, [3]int{6, 6, 6}, [3]float64{100, 100, 100}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		return math.Exp(-(ux*ux + uy*uy + uz*uz) / (2 * 800 * 800))
	})
	g.SetWorkers(1)
	s, err := New(g, "slmpp5")
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(1)
	var acc [3][]float64
	for d := 0; d < 3; d++ {
		acc[d] = make([]float64, g.NCells())
		for c := range acc[d] {
			acc[d][c] = 30
		}
	}
	for i := 0; i < 2; i++ { // warm the worker pool and CFL table
		if err := s.Step(0.001, 1.0, acc); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := s.Step(0.001, 1.0, acc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestMomentsIntoSteadyStateZeroAlloc asserts that the reusable-buffer
// moment reduction is allocation-free once warmed, and agrees exactly with
// the allocating API.
func TestMomentsIntoSteadyStateZeroAlloc(t *testing.T) {
	g, err := phase.New(6, 6, 6, [3]int{6, 6, 6}, [3]float64{100, 100, 100}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	g.Fill(func(x, y, z, ux, uy, uz float64) float64 {
		return 1 + 0.1*math.Sin(x/10) + math.Exp(-(ux*ux+uy*uy+uz*uz)/(2*500*500))
	})
	g.SetWorkers(1)
	fresh := g.ComputeMoments()
	var m *phase.Moments
	m = g.ComputeMomentsInto(m)
	allocs := testing.AllocsPerRun(10, func() {
		m = g.ComputeMomentsInto(m)
	})
	if allocs != 0 {
		t.Fatalf("warmed ComputeMomentsInto allocates %.1f allocs/op, want 0", allocs)
	}
	for c := range fresh.Density {
		if fresh.Density[c] != m.Density[c] || fresh.Sigma[c] != m.Sigma[c] {
			t.Fatalf("reused moments differ from fresh at cell %d", c)
		}
		for d := 0; d < 3; d++ {
			if fresh.MeanU[d][c] != m.MeanU[d][c] {
				t.Fatalf("reused MeanU[%d] differs from fresh at cell %d", d, c)
			}
		}
	}
}
