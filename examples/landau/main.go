// Landau damping: the canonical kinetic validation of any Vlasov solver.
// A Langmuir wave in a Maxwellian plasma decays at the collisionless rate
// first derived by Landau — a pure phase-mixing effect that fluid models
// cannot capture and that particle codes bury in shot noise.
//
// The example runs the 1D1V solver (the same SL-MPP5 advection as the 6D
// code) at three phase-space resolutions *concurrently* through the batch
// scheduler: each resolution is one RunBatch job, each job measures its own
// field-energy decay through a per-step observer, and the final table shows
// the measured rate converging to the kinetic-theory value from the plasma
// dispersion function.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"vlasov6d"
	"vlasov6d/internal/analysis"
)

const (
	k     = 0.5  // wavenumber in Debye-length units
	vth   = 1.0  // thermal speed
	alpha = 0.01 // perturbation amplitude
	dt    = 0.05
	steps = 500
)

func main() {
	log.SetFlags(0)
	resolutions := []struct{ nx, nv int }{{32, 128}, {64, 256}, {128, 512}}
	// One damping-rate fit per job; observers of different jobs run on
	// different workers, so no shared state.
	fits := make([]*analysis.DecayFit, len(resolutions))
	jobs := make([]vlasov6d.BatchJob, len(resolutions))
	for i, r := range resolutions {
		f := &analysis.DecayFit{}
		fits[i] = f
		r := r
		jobs[i] = vlasov6d.BatchJob{
			Name:  fmt.Sprintf("%dx%d", r.nx, r.nv),
			Until: steps * dt,
			New: func() (vlasov6d.Solver, error) {
				s, err := vlasov6d.NewPlasmaSolver(r.nx, r.nv, 2*math.Pi/k, 8)
				if err != nil {
					return nil, err
				}
				s.LandauInit(alpha, k, vth)
				return s, nil
			},
			Opts: []vlasov6d.RunOption{
				vlasov6d.WithFixedDT(dt),
				vlasov6d.WithMaxSteps(steps),
				// The peak bookkeeping rides along as a per-step observer,
				// exactly as in a production diagnostics pipeline.
				vlasov6d.WithObserver(func(i int, s vlasov6d.Solver) error {
					d := s.Diagnostics()
					f.Add(d.Time, d.Extra["field_energy"])
					return nil
				}),
			},
		}
	}

	fmt.Printf("Landau damping: k·λ_D = %.2f, α = %.3f — %d resolutions on one worker pool\n",
		k, alpha, len(jobs))
	results, err := vlasov6d.RunBatch(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}

	theory := vlasov6d.LandauDampingRate(k, vth)
	fmt.Printf("\n%10s %12s %12s %10s\n", "NX×NV", "measured γ", "theory γ", "error %")
	for i, r := range results {
		if r.Status != vlasov6d.JobDone {
			log.Fatalf("job %s: %v (%v)", r.Name, r.Status, r.Err)
		}
		if fits[i].Peaks() < 3 {
			log.Fatalf("job %s: too few oscillation peaks to fit", r.Name)
		}
		g := fits[i].Gamma()
		fmt.Printf("%10s %12.4f %12.4f %10.1f\n",
			r.Name, g, theory, 100*math.Abs(g-theory)/math.Abs(theory))
	}
	fmt.Println("\nthe damping rate is kinetic theory's at every resolution — phase mixing,")
	fmt.Println("not numerical dissipation: even the coarsest grid resolves the linear wave.")
}
