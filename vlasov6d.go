// Package vlasov6d is a pure-Go reproduction of "A 400 Trillion-Grid Vlasov
// Simulation on Fugaku Supercomputer: Large-Scale Distribution of Cosmic
// Relic Neutrinos in a Six-dimensional Phase Space" (Yoshikawa, Tanaka &
// Yoshida, SC '21).
//
// It provides, as a single public facade over the internal packages:
//
//   - the unified Runner API (Solver, Run, RunOption): one driver loop with
//     context cancellation, wall-clock budgets, per-step observers and a
//     checkpoint cadence, shared by every solver in the package;
//   - the hybrid Vlasov/N-body cosmological simulation (Config, Simulation):
//     massive neutrinos on a six-dimensional phase-space grid advanced with
//     the single-stage fifth-order SL-MPP5 scheme, coupled through one
//     gravitational potential to TreePM cold dark matter — plus its pure
//     N-body and ν-particle control modes;
//   - the background cosmology and linear theory (CosmologyParams,
//     LinearPower) used for initial conditions;
//   - the 1D advection schemes themselves (NewScheme) and the 1D1V
//     electrostatic plasma solver (PlasmaSolver) for validation problems;
//   - the calibrated Fugaku machine model (MachineModel, RunTable) that
//     replays the paper's Tables 2–4 and Figures at full 147,456-node scale;
//   - analysis utilities (power spectra, projections, moment maps) behind
//     the science figures.
//
// Quick start — build a simulation with explicit options, then drive it to
// z = 1 under the unified runner, checkpointing every 50 steps:
//
//	cfg := vlasov6d.Config{
//	    Par:       vlasov6d.Planck2015(0.4), // ΣMν = 0.4 eV
//	    Box:       200,                      // h⁻¹Mpc
//	    NGrid:     12, NU: 10, NPartSide: 12,
//	    Seed:      1,
//	}
//	sim, err := vlasov6d.NewSimulation(cfg, 1.0/11, // z = 10
//	    vlasov6d.WithScheme("slmpp5"), vlasov6d.WithPMFactor(2))
//	...
//	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
//	defer stop()
//	report, err := vlasov6d.Run(ctx, sim, 0.5, // to z = 1
//	    vlasov6d.WithWallClock(2*time.Hour),
//	    vlasov6d.WithCheckpoint("ckpts", 50),
//	    vlasov6d.WithObserver(func(step int, s vlasov6d.Solver) error {
//	        log.Printf("a = %.4f", s.Diagnostics().Clock)
//	        return nil
//	    }))
//
// The same Run call drives a PlasmaSolver (Landau damping, two-stream) or a
// pure N-body control run (WithoutNeutrinos); a checkpoint written by Run is
// resumed with ReadSnapshot + RestoreSimulation.
package vlasov6d

import (
	"fmt"
	"io"

	"vlasov6d/internal/advect"
	"vlasov6d/internal/analysis"
	"vlasov6d/internal/cosmo"
	"vlasov6d/internal/hybrid"
	"vlasov6d/internal/machine"
	"vlasov6d/internal/nbody"
	"vlasov6d/internal/phase"
	"vlasov6d/internal/plasma"
	"vlasov6d/internal/snapio"
	"vlasov6d/internal/vlasov"
)

// CosmologyParams is the cosmological parameter set (h, Ωm, ΩΛ, ΣMν, ns,
// σ8).
type CosmologyParams = cosmo.Params

// Planck2015 returns the paper's fiducial cosmology with the given total
// neutrino mass ΣMν in eV.
func Planck2015(sumMNuEV float64) CosmologyParams { return cosmo.Planck2015(sumMNuEV) }

// LinearPower is the σ8-normalised linear matter power spectrum with
// massive-neutrino free-streaming suppression.
type LinearPower = cosmo.PowerSpectrum

// NewLinearPower builds the linear power spectrum for a parameter set.
func NewLinearPower(p CosmologyParams) *LinearPower { return cosmo.NewPowerSpectrum(p) }

// Config assembles a hybrid simulation (see internal/hybrid for the field
// documentation; the zero value of optional fields selects the paper's
// ratios).
type Config = hybrid.Config

// Simulation is a live hybrid Vlasov/N-body run.
type Simulation = hybrid.Simulation

// SimOption adjusts a Config before construction. Options make the paper's
// defaulting explicit: every knob a zero Config field would silently select
// has a named, documented option, and anything left zero is filled by
// Config.ApplyDefaults with the paper's value.
type SimOption func(*Config)

// WithScheme selects the Vlasov advection scheme by name (default
// "slmpp5"; see SchemeNames).
func WithScheme(name string) SimOption { return func(c *Config) { c.Scheme = name } }

// WithPMFactor sets the PM-mesh refinement over the Vlasov grid per side
// (the paper's value is 3).
func WithPMFactor(f int) SimOption { return func(c *Config) { c.PMFactor = f } }

// WithPMMesh overrides the PM mesh side directly; it must be an integer
// multiple of NGrid when the Vlasov grid is active.
func WithPMMesh(n int) SimOption { return func(c *Config) { c.PMMesh = n } }

// WithUMaxFactor sets the velocity-space extent in Fermi-Dirac thermal
// scales (the paper's value is 12).
func WithUMaxFactor(f float64) SimOption { return func(c *Config) { c.UMaxFactor = f } }

// WithTreeOpening sets the tree opening angle θ (default 0.5).
func WithTreeOpening(theta float64) SimOption { return func(c *Config) { c.Theta = theta } }

// WithCFL sets the Vlasov CFL targets in position and velocity space
// (default 0.4 each).
func WithCFL(x, u float64) SimOption {
	return func(c *Config) { c.CFLX, c.CFLU = x, u }
}

// WithMaxDLnA caps the expansion per step (default 0.02).
func WithMaxDLnA(d float64) SimOption { return func(c *Config) { c.MaxDLnA = d } }

// WithoutTree disables the short-range force (PM-only N-body gravity).
func WithoutTree() SimOption { return func(c *Config) { c.NoTree = true } }

// WithoutNeutrinos disables the Vlasov component entirely — the pure N-body
// control run.
func WithoutNeutrinos() SimOption { return func(c *Config) { c.NoNeutrino = true } }

// WithWorkers pins the simulation's intra-step worker count from
// construction onwards (0 = GOMAXPROCS). Unlike a post-construction
// SetWorkers call it also bounds the expensive initial-condition pass (the
// 6D grid fill), which is what a scheduler core budget needs to keep
// construction from bursting past a job's share.
func WithWorkers(n int) SimOption { return func(c *Config) { c.Workers = n } }

// WithNuParticleBaseline switches the neutrino component to TianNu-style
// particles (the §5.4 baseline) with nnuSide³ particles; nnuSide = 0
// selects the paper's 2·NPartSide.
func WithNuParticleBaseline(nnuSide int) SimOption {
	return func(c *Config) {
		c.NuParticles = true
		c.NNuSide = nnuSide
	}
}

// NewSimulation builds a simulation with initial conditions at scale factor
// aInit (z = 1/aInit − 1), after applying the options to cfg. The config is
// validated up front: invalid shapes or domains fail here with a
// descriptive error, never as a panic inside the first Step.
func NewSimulation(cfg Config, aInit float64, opts ...SimOption) (*Simulation, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	return hybrid.New(cfg, aInit)
}

// RestoreSimulation rebuilds a simulation from a snapshot (for example a
// checkpoint written by Run under WithCheckpoint). The config must describe
// the same discretisation the snapshot was taken with. Construction
// allocates without regenerating initial conditions, so resume startup
// costs O(state size), not O(IC generation).
func RestoreSimulation(cfg Config, snap *Snapshot, opts ...SimOption) (*Simulation, error) {
	if snap == nil {
		return nil, fmt.Errorf("vlasov6d: nil snapshot")
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return hybrid.Restore(cfg, snap)
}

// PhaseGrid is the six-dimensional phase-space distribution grid.
type PhaseGrid = phase.Grid

// Moments are the velocity moments (density, mean velocity, dispersion) of
// a phase-space grid.
type Moments = phase.Moments

// Particles is the structure-of-arrays N-body particle store.
type Particles = nbody.Particles

// Scheme is a one-dimensional advection scheme (SL-MPP5, MP5+RK3, …).
type Scheme = advect.Scheme

// NewScheme constructs an advection scheme by name: "slmpp5" (the paper's
// single-stage fifth-order MP/PP scheme), "mp5", "upwind1", "laxwendroff2".
func NewScheme(name string) (Scheme, error) { return advect.New(name) }

// SchemeNames lists the available advection schemes.
func SchemeNames() []string { return advect.Names() }

// PlasmaSolver is the 1D1V electrostatic Vlasov–Poisson solver built on the
// same advection machinery (Landau damping, two-stream instability).
type PlasmaSolver = plasma.Solver

// NewPlasmaSolver allocates a 1D1V solver on x ∈ [0, L), v ∈ [−vmax, vmax).
func NewPlasmaSolver(nx, nv int, boxL, vmax float64) (*PlasmaSolver, error) {
	return plasma.New(nx, nv, boxL, vmax)
}

// NewPlasmaSolverWithScheme is NewPlasmaSolver with the periodic x-drift
// advection scheme selected by name (see SchemeNames) — the knob
// scheme-comparison sweeps turn.
func NewPlasmaSolverWithScheme(nx, nv int, boxL, vmax float64, scheme string) (*PlasmaSolver, error) {
	return plasma.NewWithScheme(nx, nv, boxL, vmax, scheme)
}

// RestorePlasmaSolver rebuilds a 1D1V solver from a checkpoint written by
// its Checkpoint method (for example by Run under WithCheckpoint, or by a
// scheduler under WithJobCheckpoints), verifying the checksum. The scheme,
// grid and elapsed time are restored from the file.
func RestorePlasmaSolver(r io.Reader) (*PlasmaSolver, error) {
	return plasma.Restore(r)
}

// LandauDampingRate returns the kinetic-theory Landau damping rate γ for
// wavenumber k and thermal speed vth (normalised units).
func LandauDampingRate(k, vth float64) float64 { return plasma.LandauDampingRate(k, vth) }

// MachineModel is the calibrated A64FX/Tofu-D performance model used to
// replay the paper's scaling study at full Fugaku scale.
type MachineModel = machine.Model

// MachineRun is one row of the paper's Table 2 run matrix.
type MachineRun = machine.Run

// NewMachineModel returns the model with paper-calibrated constants.
func NewMachineModel() (*MachineModel, error) { return machine.New(machine.Defaults()) }

// RunTable is the paper's Table 2 run matrix (S1 … U1024).
func RunTable() []MachineRun { return machine.Table2 }

// EffectiveResolution evaluates the paper's eq. (9): the effective spatial
// resolution of an N-body neutrino run with nuSide³ particles at
// signal-to-noise snr, for box size boxL.
func EffectiveResolution(boxL float64, nuSide int, snr float64) float64 {
	return machine.EffectiveResolution(boxL, nuSide, snr)
}

// MeasurePowerSpectrum bins the 3D power spectrum of a density mesh
// (n³ row-major cells over a boxL-sided cube) into nbins logarithmic
// shells, returning bin-centre k, P(k) and per-shell mode counts.
func MeasurePowerSpectrum(rho []float64, n int, boxL float64, nbins int) (ks, pk, counts []float64, err error) {
	return analysis.PowerSpectrum(rho, n, boxL, nbins)
}

// Snapshot bundles simulation state for checksummed binary I/O.
type Snapshot = snapio.Snapshot

// WriteSnapshot and ReadSnapshot serialise state; see internal/snapio.
var (
	WriteSnapshot = snapio.Write
	ReadSnapshot  = snapio.Read
)

// CrossSpectrum bins the cross-correlation coefficient r(k) of two density
// meshes — the quantitative version of "the neutrinos trace the CDM on
// large scales".
func CrossSpectrum(rhoA, rhoB []float64, n int, boxL float64, nbins int) (ks, r []float64, err error) {
	return analysis.CrossSpectrum(rhoA, rhoB, n, boxL, nbins)
}

// TransferKind selects the linear transfer function for NewLinearPowerKind.
type TransferKind = cosmo.TransferKind

// The available transfer functions.
const (
	TransferBBKS = cosmo.TransferBBKS
	TransferEH   = cosmo.TransferEH
)

// NewLinearPowerKind builds the spectrum with an explicit transfer choice.
func NewLinearPowerKind(p CosmologyParams, kind TransferKind) *LinearPower {
	return cosmo.NewPowerSpectrumKind(p, kind)
}

// VlasovDiagnostics bundles the solver's global invariants (mass, L2 norm,
// Casimir entropy) used to monitor limiter dissipation.
type VlasovDiagnostics = vlasov.Diagnostics

// ComputeVlasovDiagnostics evaluates the invariants over a phase grid.
func ComputeVlasovDiagnostics(g *PhaseGrid) VlasovDiagnostics {
	return vlasov.ComputeDiagnostics(g)
}
