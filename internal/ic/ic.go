// Package ic generates the cosmological initial conditions of the hybrid
// simulation at the starting redshift (the paper uses z = 10 for the
// time-to-solution runs):
//
//   - a Gaussian random density field with the linear power spectrum of
//     package cosmo, scaled to the start epoch with the growth factor;
//   - CDM particles on a lattice, displaced and kicked with the Zel'dovich
//     approximation;
//   - the neutrino distribution function f(x,u) = n(x)·F_FD(|u|) — the
//     homogeneous relativistic Fermi-Dirac velocity distribution modulated
//     by the (free-streaming-suppressed) neutrino density perturbation.
//
// The CDM and neutrino fields are generated from the SAME white-noise
// realisation, so the two components are phase-coherent exactly as the
// physical adiabatic perturbations are.
package ic

import (
	"fmt"
	"math"
	"math/rand"

	"vlasov6d/internal/cosmo"
	"vlasov6d/internal/fft"
	"vlasov6d/internal/nbody"
	"vlasov6d/internal/phase"
	"vlasov6d/internal/units"
)

// Generator produces coherent initial conditions for both components.
type Generator struct {
	Par  cosmo.Params
	PS   *cosmo.PowerSpectrum
	Box  float64 // box size, h⁻¹Mpc
	Seed int64
}

// NewGenerator validates parameters and builds the power spectrum.
func NewGenerator(par cosmo.Params, box float64, seed int64) (*Generator, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if box <= 0 {
		return nil, fmt.Errorf("ic: invalid box %v", box)
	}
	return &Generator{Par: par, PS: cosmo.NewPowerSpectrum(par), Box: box, Seed: seed}, nil
}

// Component selects which species' transfer function shapes the field.
type Component int

// The two matter components of the hybrid scheme.
const (
	CDM Component = iota
	Neutrino
)

// whiteNoise returns the deterministic unit-variance real white-noise field
// for mesh size n (shared across components for phase coherence).
func (g *Generator) whiteNoise(n int) []float64 {
	rng := rand.New(rand.NewSource(g.Seed))
	w := make([]float64, n*n*n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

// DeltaField returns the linear overdensity field δ(x) for the component on
// an n³ mesh at scale factor a. The normalisation follows the standard
// estimator P(k) = V·⟨|δ̂_k|²⟩/N⁶: white noise is coloured with
// A(k) = sqrt(P(k)/V_cell).
func (g *Generator) DeltaField(n int, a float64, comp Component) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("ic: mesh %d too small", n)
	}
	w := g.whiteNoise(n)
	data := make([]complex128, len(w))
	for i, v := range w {
		data[i] = complex(v, 0)
	}
	f3, err := fft.NewFFT3(n, n, n)
	if err != nil {
		return nil, err
	}
	if err := f3.Forward(data); err != nil {
		return nil, err
	}
	vcell := math.Pow(g.Box/float64(n), 3)
	growth := g.Par.GrowthFactor(a)
	pk := func(k float64) float64 {
		switch comp {
		case Neutrino:
			return g.PS.Nu(k)
		default:
			return g.PS.CB(k)
		}
	}
	g.colour(data, n, func(k float64) float64 {
		return growth * math.Sqrt(pk(k)/vcell)
	})
	if err := f3.Inverse(data); err != nil {
		return nil, err
	}
	out := make([]float64, len(w))
	for i := range out {
		out[i] = real(data[i])
	}
	return out, nil
}

// colour multiplies each Fourier mode by amp(|k|), zeroing the DC mode.
func (g *Generator) colour(data []complex128, n int, amp func(k float64) float64) {
	kf := 2 * math.Pi / g.Box
	idx := 0
	for ix := 0; ix < n; ix++ {
		mx := modeIndex(ix, n)
		for iy := 0; iy < n; iy++ {
			my := modeIndex(iy, n)
			for iz := 0; iz < n; iz++ {
				mz := modeIndex(iz, n)
				k := kf * math.Sqrt(float64(mx*mx+my*my+mz*mz))
				if k == 0 {
					data[idx] = 0
				} else {
					data[idx] *= complex(amp(k), 0)
				}
				idx++
			}
		}
	}
}

func modeIndex(i, n int) int {
	if i > n/2 {
		return i - n
	}
	return i
}

// displacementField returns the three Zel'dovich displacement component
// fields Ψ = ∇∇⁻²δ on the n³ mesh for the CDM component at scale factor a.
func (g *Generator) displacementField(n int, a float64) ([3][]float64, error) {
	var psi [3][]float64
	w := g.whiteNoise(n)
	f3, err := fft.NewFFT3(n, n, n)
	if err != nil {
		return psi, err
	}
	vcell := math.Pow(g.Box/float64(n), 3)
	growth := g.Par.GrowthFactor(a)
	base := make([]complex128, len(w))
	for i, v := range w {
		base[i] = complex(v, 0)
	}
	if err := f3.Forward(base); err != nil {
		return psi, err
	}
	g.colour(base, n, func(k float64) float64 {
		return growth * math.Sqrt(g.PS.CB(k)/vcell)
	})
	kf := 2 * math.Pi / g.Box
	for d := 0; d < 3; d++ {
		comp := append([]complex128(nil), base...)
		idx := 0
		for ix := 0; ix < n; ix++ {
			for iy := 0; iy < n; iy++ {
				for iz := 0; iz < n; iz++ {
					m := [3]int{modeIndex(ix, n), modeIndex(iy, n), modeIndex(iz, n)}
					k2 := 0.0
					for dd := 0; dd < 3; dd++ {
						kk := kf * float64(m[dd])
						k2 += kk * kk
					}
					if k2 == 0 {
						comp[idx] = 0
					} else {
						kd := kf * float64(m[d])
						// Ψ̂ = i k δ̂ / k².
						comp[idx] *= complex(0, kd/k2)
					}
					idx++
				}
			}
		}
		if err := f3.Inverse(comp); err != nil {
			return psi, err
		}
		psi[d] = make([]float64, len(w))
		for i := range psi[d] {
			psi[d][i] = real(comp[i])
		}
	}
	return psi, nil
}

// CDMParticles places nside³ equal-mass particles with Zel'dovich
// displacements and velocities at scale factor a. The particle mass
// reproduces the CDM+baryon mean density of the parameter set.
func (g *Generator) CDMParticles(nside int, a float64) (*nbody.Particles, error) {
	if nside < 2 {
		return nil, fmt.Errorf("ic: nside %d too small", nside)
	}
	psi, err := g.displacementField(nside, a)
	if err != nil {
		return nil, err
	}
	n3 := nside * nside * nside
	totalMass := g.Par.MeanCBDensity() * g.Box * g.Box * g.Box
	p, err := nbody.NewParticles(n3, totalMass/float64(n3), [3]float64{g.Box, g.Box, g.Box})
	if err != nil {
		return nil, err
	}
	h := g.Box / float64(nside)
	// Zel'dovich velocity: ẋ = H(a)·f(a)·Ψ comoving, canonical u = a²ẋ.
	vfac := a * a * g.Par.Hubble(a) * g.Par.GrowthRate(a)
	i := 0
	for ix := 0; ix < nside; ix++ {
		for iy := 0; iy < nside; iy++ {
			for iz := 0; iz < nside; iz++ {
				q := [3]float64{
					(float64(ix) + 0.5) * h,
					(float64(iy) + 0.5) * h,
					(float64(iz) + 0.5) * h,
				}
				for d := 0; d < 3; d++ {
					p.Pos[d][i] = p.Wrap(d, q[d]+psi[d][i])
					p.Vel[d][i] = vfac * psi[d][i]
				}
				i++
			}
		}
	}
	return p, nil
}

// NeutrinoParticles samples the neutrino component with particles (the
// TianNu-style baseline of §5.4): lattice positions perturbed by the
// neutrino displacement field, plus a thermal velocity drawn from the
// relativistic Fermi-Dirac distribution. The thermal sampling is the source
// of the shot noise the Vlasov method eliminates.
func (g *Generator) NeutrinoParticles(nside int, a float64) (*nbody.Particles, error) {
	if nside < 2 {
		return nil, fmt.Errorf("ic: nside %d too small", nside)
	}
	// Reuse the CDM displacement machinery but colour with the ν spectrum:
	// approximate Ψν = Ψ_cb·(δν/δ_cb) ratio at the box's fundamental mode.
	psi, err := g.displacementField(nside, a)
	if err != nil {
		return nil, err
	}
	n3 := nside * nside * nside
	totalMass := g.Par.MeanNuDensity() * g.Box * g.Box * g.Box
	p, err := nbody.NewParticles(n3, totalMass/float64(n3), [3]float64{g.Box, g.Box, g.Box})
	if err != nil {
		return nil, err
	}
	h := g.Box / float64(nside)
	vfac := a * a * g.Par.Hubble(a) * g.Par.GrowthRate(a)
	uT := g.ThermalScale()
	rng := rand.New(rand.NewSource(g.Seed + 1))
	i := 0
	for ix := 0; ix < nside; ix++ {
		for iy := 0; iy < nside; iy++ {
			for iz := 0; iz < nside; iz++ {
				q := [3]float64{
					(float64(ix) + 0.5) * h,
					(float64(iy) + 0.5) * h,
					(float64(iz) + 0.5) * h,
				}
				th := sampleFermiDirac(rng, uT)
				for d := 0; d < 3; d++ {
					p.Pos[d][i] = p.Wrap(d, q[d]+psi[d][i])
					p.Vel[d][i] = vfac*psi[d][i] + th[d]
				}
				i++
			}
		}
	}
	return p, nil
}

// ThermalScale returns the canonical-velocity Fermi-Dirac scale
// u_T = kTν0·c/(mν c²) in km/s (constant in time for u = a²ẋ).
func (g *Generator) ThermalScale() float64 {
	// NeutrinoThermalVelocity returns 3.15137·u_T (the FD mean speed).
	return units.NeutrinoThermalVelocity(g.Par.SumMNuEV/3, 1) / 3.15137
}

// sampleFermiDirac draws an isotropic velocity from the relativistic FD
// speed distribution p(y) ∝ y²/(e^y+1) by rejection, scaled by uT.
func sampleFermiDirac(rng *rand.Rand, uT float64) [3]float64 {
	// Envelope: y²e^{-y} scaled; p(y) ≤ y²e^{-y} for y ≥ 0 … since
	// 1/(e^y+1) ≤ e^{-y}. Sample y from Gamma(3,1) via sum of three
	// exponentials and accept with probability e^y/(e^y+1).
	for {
		y := -math.Log(rng.Float64()) - math.Log(rng.Float64()) - math.Log(rng.Float64())
		if rng.Float64() < 1/(1+math.Exp(-y)) {
			// Isotropic direction.
			cosT := 2*rng.Float64() - 1
			sinT := math.Sqrt(1 - cosT*cosT)
			phi := 2 * math.Pi * rng.Float64()
			v := y * uT
			return [3]float64{v * sinT * math.Cos(phi), v * sinT * math.Sin(phi), v * cosT}
		}
	}
}

// FillNeutrinoGrid initialises the phase-space grid with
// f(x,u) = ρ̄ν·(1+δν(x))·F(|u|), where F is the relativistic Fermi-Dirac
// velocity profile normalised so that ∫F d³u = 1 on the DISCRETE velocity
// grid (making the density moment exact at round-off). The spatial mesh of
// the grid must match n³ = NX·NY·NZ of the δν field, which is generated
// internally at scale factor a.
func (g *Generator) FillNeutrinoGrid(grid *phase.Grid, a float64) error {
	if grid.NX != grid.NY || grid.NY != grid.NZ {
		return fmt.Errorf("ic: cubic spatial grids only")
	}
	delta, err := g.DeltaField(grid.NX, a, Neutrino)
	if err != nil {
		return err
	}
	uT := g.ThermalScale()
	// Discrete normalisation of the FD profile on this velocity grid.
	norm := 0.0
	du3 := grid.DU(0) * grid.DU(1) * grid.DU(2)
	for jx := 0; jx < grid.NU[0]; jx++ {
		ux := grid.U(0, jx)
		for jy := 0; jy < grid.NU[1]; jy++ {
			uy := grid.U(1, jy)
			for jz := 0; jz < grid.NU[2]; jz++ {
				uz := grid.U(2, jz)
				y := math.Sqrt(ux*ux+uy*uy+uz*uz) / uT
				norm += units.FermiDirac(y)
			}
		}
	}
	norm *= du3
	if norm <= 0 {
		return fmt.Errorf("ic: velocity grid does not resolve the FD profile (UMax=%v, uT=%v)", grid.UMax, uT)
	}
	rhoBar := g.Par.MeanNuDensity()
	grid.ParallelCells(func(ix, iy, iz int) {
		cell := grid.CellIndex(ix, iy, iz)
		d := delta[cell]
		if d < -0.999 {
			d = -0.999 // guard against unphysical linear excursions
		}
		amp := rhoBar * (1 + d) / norm
		cube := grid.Cube(ix, iy, iz)
		idx := 0
		for jx := 0; jx < grid.NU[0]; jx++ {
			ux := grid.U(0, jx)
			for jy := 0; jy < grid.NU[1]; jy++ {
				uy := grid.U(1, jy)
				for jz := 0; jz < grid.NU[2]; jz++ {
					uz := grid.U(2, jz)
					y := math.Sqrt(ux*ux+uy*uy+uz*uz) / uT
					cube[idx] = float32(amp * units.FermiDirac(y))
					idx++
				}
			}
		}
	})
	return nil
}
